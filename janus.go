// Package janus is the public API of Janus-Go, a reproduction of
// "Janus: A Unified Distributed Training Framework for Sparse
// Mixture-of-Experts Models" (SIGCOMM 2023) as a deterministic
// flow-level cluster simulator plus a real TCP pull protocol.
//
// The package re-exports the pieces a downstream user needs:
//
//   - model presets and custom model construction (Model, MoEBERT, ...)
//   - cluster hardware description (Spec, DefaultSpec)
//   - the two training engines: TrainExpertCentric (the Tutel-like
//     All-to-All baseline) and TrainJanus (the unified data-centric
//     system with the Janus Task Queue)
//   - the paper's evaluation suite (Experiments, RunExperiment)
//   - the live TCP deployment (StartLiveCluster)
//
// A minimal comparison:
//
//	model := janus.MoEBERT(32)
//	spec := janus.DefaultSpec(4) // 4 machines × 8 GPUs
//	base, _ := janus.TrainExpertCentric(janus.BaselineConfig{Model: model, Spec: spec})
//	fast, _ := janus.TrainJanus(janus.JanusConfig{Model: model, Spec: spec,
//		TopoAware: true, Prefetch: true})
//	fmt.Printf("speedup: %.2fx\n", base.IterationTime/fast.IterationTime)
package janus

import (
	"janus/internal/checkpoint"
	"janus/internal/config"
	"janus/internal/core"
	"janus/internal/engine"
	"janus/internal/experiments"
	"janus/internal/expertcentric"
	"janus/internal/faultinject"
	"janus/internal/gate"
	"janus/internal/livecluster"
	"janus/internal/metrics"
	"janus/internal/topology"
	"janus/internal/trainrun"
	"janus/internal/transport"
)

// Model is a model configuration: training shape (B, S, topK, H) and
// the block structure. Use the presets or build one by hand.
type Model = config.Model

// Block is one layer of a Model.
type Block = config.Block

// Paradigm selects expert-centric or data-centric communication.
type Paradigm = config.Paradigm

// Paradigm values.
const (
	ExpertCentric = config.ExpertCentric
	DataCentric   = config.DataCentric
)

// Model presets from the paper's evaluation (Table 1, §7.5).
var (
	MoEBERT            = config.MoEBERT
	MoEGPT             = config.MoEGPT
	MoETransformerXL   = config.MoETransformerXL
	PRMoETransformerXL = config.PRMoETransformerXL
)

// Spec describes cluster hardware; DefaultSpec models the paper's
// testbed (8×A100 machines with NVSwitch, 4×200 Gbps NICs).
type Spec = topology.Spec

// DefaultSpec returns the paper-testbed hardware model for the given
// machine count.
func DefaultSpec(numMachines int) Spec { return topology.DefaultSpec(numMachines) }

// Assignment is a token→expert routing histogram for one MoE block.
type Assignment = gate.Assignment

// BalancedAssignment routes every worker's tokens evenly over experts.
func BalancedAssignment(numWorkers, numExperts, tokensPerWorker int) Assignment {
	return gate.Balanced(numWorkers, numExperts, tokensPerWorker)
}

// ZipfAssignment routes tokens with a Zipf-skewed expert popularity —
// the imbalanced workload the paper profiles in §3.1.
func ZipfAssignment(numWorkers, numExperts, tokensPerWorker int, skew float64, seed int64) Assignment {
	return gate.Zipf(numWorkers, numExperts, tokensPerWorker, skew, seed)
}

// Report is the outcome of one simulated training iteration.
type Report = engine.Report

// Policy decides per-block paradigms from the gain metric R.
type Policy = config.Policy

// NominalPolicy applies the paper's stated rule (data-centric iff R>1).
func NominalPolicy() Policy { return config.NominalPolicy() }

// ConservativePolicy applies the rule §7.5 actually uses (R>2,
// accounting for the PCIe ceiling on fetches).
func ConservativePolicy() Policy { return config.ConservativePolicy() }

// BaselineConfig configures the expert-centric (Tutel-like) engine.
type BaselineConfig struct {
	Model Model
	Spec  Spec
	// Assignment returns each MoE block's routing; nil means balanced.
	Assignment func(block int) Assignment
	// Hierarchical selects Tutel's 2D All-to-All.
	Hierarchical bool
	// SkipMemoryCheck disables the OOM model.
	SkipMemoryCheck bool
	// Trace records a timeline in the report.
	Trace bool
	// ComputeFactors optionally slows individual GPUs (straggler
	// injection); nil means nominal speed everywhere.
	ComputeFactors []float64
	// Jitter stretches each compute op by a uniform draw from
	// [1, 1+Jitter] (deterministic from JitterSeed).
	Jitter     float64
	JitterSeed int64
	// ForwardOnly runs inference: the iteration ends after forward (§9).
	ForwardOnly bool
}

// TrainExpertCentric simulates one iteration of the expert-centric
// baseline and returns its report (Report.OOM is set instead of an
// error when the memory model rejects the configuration).
func TrainExpertCentric(cfg BaselineConfig) (Report, error) {
	return expertcentric.Run(expertcentric.Config{
		Model: cfg.Model, Spec: cfg.Spec,
		Assignment:      cfg.Assignment,
		Hierarchical:    cfg.Hierarchical,
		SkipMemoryCheck: cfg.SkipMemoryCheck,
		Trace:           cfg.Trace,
		ComputeFactors:  cfg.ComputeFactors,
		Jitter:          cfg.Jitter, JitterSeed: cfg.JitterSeed,
		ForwardOnly: cfg.ForwardOnly,
	})
}

// JanusConfig configures the Janus engine.
type JanusConfig struct {
	Model Model
	Spec  Spec
	// Policy picks per-block paradigms; zero value = NominalPolicy.
	Policy Policy
	// ForceParadigm overrides the policy for every MoE block.
	ForceParadigm *Paradigm
	// Assignment returns each MoE block's routing; nil means balanced.
	Assignment func(block int) Assignment
	// CreditSize is the credit-based buffer capacity (experts); 0 = 4.
	CreditSize int
	// TopoAware enables the §5.2 priority strategy.
	TopoAware bool
	// Prefetch enables the §5.3 provident prefetch.
	Prefetch bool
	// SkipMemoryCheck disables the OOM model.
	SkipMemoryCheck bool
	// Trace records a timeline in the report.
	Trace bool
	// ComputeFactors optionally slows individual GPUs (straggler
	// injection); nil means nominal speed everywhere.
	ComputeFactors []float64
	// Jitter stretches each compute op by a uniform draw from
	// [1, 1+Jitter] (deterministic from JitterSeed).
	Jitter     float64
	JitterSeed int64
	// DisableCache ablates the Cache Manager: external experts are
	// pulled per worker instead of once per machine (§5.1.2 ablation).
	DisableCache bool
	// ForwardOnly runs inference: the iteration ends after forward (§9).
	ForwardOnly bool
}

// TrainJanus simulates one iteration of the unified Janus engine.
func TrainJanus(cfg JanusConfig) (Report, error) {
	return core.Run(core.Config{
		Model: cfg.Model, Spec: cfg.Spec,
		Policy: cfg.Policy, ForceParadigm: cfg.ForceParadigm,
		Assignment: cfg.Assignment, CreditSize: cfg.CreditSize,
		TopoAware: cfg.TopoAware, Prefetch: cfg.Prefetch,
		SkipMemoryCheck: cfg.SkipMemoryCheck, Trace: cfg.Trace,
		ComputeFactors: cfg.ComputeFactors,
		Jitter:         cfg.Jitter, JitterSeed: cfg.JitterSeed,
		DisableCache: cfg.DisableCache, ForwardOnly: cfg.ForwardOnly,
	})
}

// BlockParadigms previews the per-block paradigm choice a JanusConfig
// makes on the given cluster, without running a simulation.
func BlockParadigms(cfg JanusConfig) []Paradigm {
	return core.Paradigms(core.Config{
		Model: cfg.Model, Spec: cfg.Spec,
		Policy: cfg.Policy, ForceParadigm: cfg.ForceParadigm,
	}, cfg.Spec.NumMachines, cfg.Spec.TotalGPUs())
}

// Experiment is one reproducible table/figure from the paper.
type Experiment = experiments.Experiment

// ExperimentResult is a rendered experiment outcome.
type ExperimentResult = experiments.Result

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []Experiment { return experiments.Registry() }

// RunExperiment runs one experiment by id ("table1", "fig14", ...).
func RunExperiment(id string) (ExperimentResult, bool, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, false, nil
	}
	res, err := e.Run()
	return res, true, err
}

// LiveConfig shapes a real (non-simulated) miniature deployment: one
// TCP server per "machine" on loopback, real expert weights, real
// bytes through the §6 pull protocol.
type LiveConfig = livecluster.Config

// LiveCluster is a running live deployment.
type LiveCluster = livecluster.Cluster

// LiveResult reports one live iteration.
type LiveResult = livecluster.Result

// LiveTrainOptions configures the live trainer: step count, microbatch
// split, and the lockstep-vs-pipelined schedule choice.
type LiveTrainOptions = livecluster.TrainOptions

// LiveTrainMigration schedules one fenced live expert handoff inside a
// training run (see LiveTrainOptions.Migrations).
type LiveTrainMigration = livecluster.TrainMigration

// LiveTrainResult reports one live training run, including the
// pipeline-depth and version-wait telemetry.
type LiveTrainResult = livecluster.TrainResult

// StartLiveCluster brings up a live deployment.
func StartLiveCluster(cfg LiveConfig) (*LiveCluster, error) {
	return livecluster.Start(cfg)
}

// FaultInjector is a deterministic, policy-driven network fault
// injector for live deployments: seeded rules delay, drop, corrupt,
// reset, or kill traffic per labelled endpoint over step windows.
type FaultInjector = faultinject.Injector

// FaultRule activates a Fault for one labelled endpoint over a window
// of training steps.
type FaultRule = faultinject.Rule

// Fault describes injected behaviour: delay, drop, corrupt, reset,
// kill.
type Fault = faultinject.Fault

// NewFaultInjector returns an injector whose decisions derive from
// seed alone, so failure scenarios replay identically.
func NewFaultInjector(seed int64) *FaultInjector { return faultinject.New(seed) }

// MachineLabel is the fault-injection label of live machine m's
// endpoints (its server listener; dial-side wraps use
// MachineLabel(m)+".client").
func MachineLabel(m int) string { return livecluster.MachineLabel(m) }

// RobustnessSnapshot is a point-in-time view of fault-tolerance
// counters: retries, timeouts, reconnects, gradient dedups, stale
// serves, degraded steps, failovers, re-homed experts, checkpoint
// saves/restores.
type RobustnessSnapshot = metrics.RobustnessSnapshot

// Checkpoint is a crash-consistent snapshot of training state: expert
// weights by id, dense parameters, and the step counter. On disk each
// version is CRC-verified per entry and committed by atomic rename, so
// a torn or bit-flipped file is rejected at restore rather than loaded.
type Checkpoint = checkpoint.Snapshot

// SaveCheckpoint commits snap as a new version under dir and returns
// the bytes written.
func SaveCheckpoint(dir string, snap *Checkpoint) (int64, error) {
	return checkpoint.Save(dir, snap)
}

// LoadLatestCheckpoint restores the newest version under dir that
// passes verification, returning the snapshot and its version. It
// returns ErrNoCheckpoint when dir holds no loadable version.
func LoadLatestCheckpoint(dir string) (*Checkpoint, int, error) {
	return checkpoint.LoadLatest(dir)
}

// ErrNoCheckpoint reports that a checkpoint directory holds no loadable
// version.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// DefaultDeadManSteps is the live cluster's default consecutive-miss
// heartbeat budget before a machine is declared permanently dead.
const DefaultDeadManSteps = livecluster.DefaultDeadManSteps

// ErrFencedEpoch reports that a request was rejected because its
// sender's membership epoch is older than the receiver's — the
// split-brain guard: a partitioned ex-owner's writes are refused
// instead of merged. Match with errors.Is; the full rejection (remote
// epoch, readmission state) is carried by transport.FencedEpochError.
var ErrFencedEpoch = transport.ErrFencedEpoch

// TrainRunConfig describes a multi-iteration training run with a gate
// whose routing drifts over the run (§3.1's averaged-profile
// methodology).
type TrainRunConfig = trainrun.Config

// TrainRunResult aggregates a multi-iteration run.
type TrainRunResult = trainrun.Result

// Engine identifiers for TrainRun.
const (
	TutelEngine = trainrun.Tutel
	JanusEngine = trainrun.Janus
)

// TrainRun simulates a sequence of iterations and aggregates the
// per-iteration statistics.
func TrainRun(cfg TrainRunConfig) (TrainRunResult, error) {
	return trainrun.Run(cfg)
}
