// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so `make bench` can record the performance
// trajectory (BENCH_4.json) in a diffable, machine-readable form.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | go run ./cmd/benchjson > BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Extra holds every additional "<value> <unit>" pair the line
	// reported (B/op, allocs/op, MB/s, custom b.ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the whole document. GoMaxProcs and NumCPU are recorded from
// the recording process (benchjson runs on the same machine, piped
// from `go test -bench`), so a scaling curve can be read in context:
// on a GOMAXPROCS=1 box, goroutines overlap network waits, never
// compute. Per-benchmark machine counts ride in each entry's "extra"
// map under "machines" (from b.ReportMetric).
type Doc struct {
	Goos       string          `json:"goos,omitempty"`
	Goarch     string          `json:"goarch,omitempty"`
	CPU        string          `json:"cpu,omitempty"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Benchmarks []Benchmark     `json:"benchmarks"`
	Baseline   json.RawMessage `json:"baseline,omitempty"`
}

func main() {
	baseline := flag.String("baseline", "", "JSON file of frozen baseline measurements to embed verbatim")
	flag.Parse()
	var doc Doc
	doc.GoMaxProcs = runtime.GOMAXPROCS(0)
	doc.NumCPU = runtime.NumCPU()
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(pkg, line); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s is not valid JSON\n", *baseline)
			os.Exit(1)
		}
		doc.Baseline = json.RawMessage(raw)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses "BenchmarkName-8  120  999 ns/op  12 B/op ...".
func parseLine(pkg, line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimSuffix(f[0], "-"+lastDashSuffix(f[0]))
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Package: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		unit := f[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Extra == nil {
			b.Extra = make(map[string]float64)
		}
		b.Extra[unit] = v
	}
	return b, b.NsPerOp != 0
}

// lastDashSuffix returns the trailing "<digits>" of a -GOMAXPROCS
// suffix, or "" when the name has none.
func lastDashSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	suf := name[i+1:]
	for _, r := range suf {
		if r < '0' || r > '9' {
			return ""
		}
	}
	return suf
}
