// Command janusserve runs the overload-robust serving plane against a
// real miniature cluster on loopback TCP: a seeded open-loop traffic
// generator (Zipf expert popularity, diurnal ramp, optional flash-crowd
// burst) offers load to the request front-end, which admits or sheds,
// batches into bounded micro-batches, propagates each request's
// deadline budget down to the expert stores, and degrades along the
// explicit SLO ladder (full → replica → stale → top-1 → shed) instead
// of collapsing.
//
// The tool is its own smoke gate: it re-checks every serving invariant
// after the drill — terminal-state arithmetic (each submitted request
// answered, expired, or shed exactly once), "a shed request never also
// answered", p99 of answered requests within the deadline, goodput at
// the heaviest load ≥ 80% of peak — and exits non-zero on the first
// violation.
//
//	janusserve -rate 4000 -deadline 150ms -shed-queue 64
//
// With -rate 0 the knee is calibrated closed-loop first and the sweep
// offers 0.5x, 1x, 2x, and 4x the knee. -canary-frac rolls a canary
// checkpoint (same weights, new version) onto that fraction of
// traffic; -canary-regress injects a latency regression into the
// candidate so the SLO monitor's auto-rollback (and its fence: zero
// candidate answers afterwards) can be drilled:
//
//	janusserve -canary-frac 0.5 -canary-regress 20ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"janus/internal/faultinject"
	"janus/internal/livecluster"
	"janus/internal/metrics"
	"janus/internal/serving"
)

func main() { os.Exit(run()) }

func run() int {
	machines := flag.Int("machines", 3, "cluster machines (TCP servers)")
	experts := flag.Int("experts", 9, "experts in the MoE layer")
	hidden := flag.Int("hidden", 16, "hidden dimension H")
	topk := flag.Int("topk", 2, "experts routed per request")
	zipf := flag.Float64("zipf", 1.1, "expert popularity Zipf exponent")
	seed := flag.Int64("seed", 77, "traffic/routing/content seed")
	rows := flag.Int("rows", 2, "token rows per request")
	workers := flag.Int("workers", 2, "front-end workers")
	maxBatch := flag.Int("max-batch", 8, "micro-batch bound")
	rate := flag.Float64("rate", 0, "offered load in req/s (0 = calibrate the knee and sweep 0.5x..4x)")
	deadline := flag.Duration("deadline", 150*time.Millisecond, "per-request deadline budget")
	shedQueue := flag.Int("shed-queue", 64, "admission queue bound (full = shed)")
	staleness := flag.Int("staleness", 5, "stale-rung bound in steps")
	top1At := flag.Int("top1-pressure", 32, "queue depth that degrades routing to top-1 (0 = never)")
	hedge := flag.Duration("hedge-delay", 0, "hedge pulls against gray-slow owners after this delay (0 = off)")
	ticks := flag.Int("ticks", 60, "drill ticks per load point")
	tick := flag.Duration("tick", 5*time.Millisecond, "tick length")
	diurnal := flag.Float64("diurnal", 0.25, "diurnal ramp amplitude in [0,1)")
	burstMult := flag.Float64("burst-mult", 1.5, "flash-crowd rate multiplier on the heaviest point (1 = off)")
	canaryFrac := flag.Float64("canary-frac", 0, "fraction of traffic for the canary drill (0 = skip)")
	canaryRegress := flag.Duration("canary-regress", 20*time.Millisecond, "injected latency regression in the canary")
	canarySLO := flag.Duration("canary-slo", 2*time.Millisecond, "canary per-answer SLO bound")
	flag.Parse()

	inj := faultinject.New(*seed)
	cl, err := livecluster.Start(livecluster.Config{
		Machines: *machines, WorkersPerNode: 1,
		NumExperts: *experts, TopK: min(3, *experts), Hidden: *hidden,
		TokensPerWorker: 24, Seed: 42, Credits: 8,
		Injector:         inj,
		PullTimeout:      300 * time.Millisecond,
		PullRetries:      2,
		RetryBackoff:     2 * time.Millisecond,
		FailoverEnabled:  true,
		HeartbeatTimeout: 200 * time.Millisecond,
		Replicas:         1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "janusserve:", err)
		return 1
	}
	defer cl.Close()
	cl.SyncReplicas()
	backend := cl.ServeBackend()
	defer backend.Close()

	front, err := serving.New(serving.Config{
		Backend: backend, Seed: *seed, TopK: *topk, Zipf: *zipf,
		RowsPerRequest: *rows, QueueCap: *shedQueue,
		Deadline: *deadline, Workers: *workers, MaxBatch: *maxBatch,
		MaxStalenessSteps: *staleness, Top1Pressure: *top1At,
		HedgeDelay: *hedge,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "janusserve:", err)
		return 1
	}
	defer front.Close()

	violations := 0
	fail := func(format string, args ...any) {
		violations++
		fmt.Fprintf(os.Stderr, "janusserve: INVARIANT: "+format+"\n", args...)
	}

	// Offered rates: explicit, or a sweep around the calibrated knee.
	var rates []float64
	if *rate > 0 {
		rates = []float64{*rate}
	} else {
		start := time.Now()
		const kneeReqs = 200
		for id := uint64(1); id <= kneeReqs; id++ {
			if r := front.Submit(context.Background(), id); r.Err != nil {
				fmt.Fprintln(os.Stderr, "janusserve: knee calibration:", r.Err)
				return 1
			}
		}
		knee := kneeReqs / time.Since(start).Seconds()
		fmt.Printf("calibrated knee: %.0f req/s\n", knee)
		rates = []float64{0.5 * knee, knee, 2 * knee, 4 * knee}
	}

	fmt.Printf("%10s %9s %9s %7s %8s %9s %10s %8s %8s\n",
		"offered/s", "submitted", "answered", "shed", "expired", "degraded", "goodput/s", "p50 ms", "p99 ms")
	var peak, lastGoodput float64
	nextID := uint64(10000)
	for pi, offered := range rates {
		if pi == len(rates)-1 && *burstMult > 1 {
			inj.Burst("traffic", *ticks/3, 2**ticks/3, *burstMult)
		}
		tr := serving.Traffic{
			BaseRate:      offered * tick.Seconds(),
			DiurnalAmp:    *diurnal,
			DiurnalPeriod: *ticks,
			Injector:      inj,
			Label:         "traffic",
			Seed:          *seed + int64(pi),
		}
		before := front.Stats()
		var (
			mu        sync.Mutex
			latencies []float64
			wg        sync.WaitGroup
			submitted int64
		)
		start := time.Now()
		for t := 0; t < *ticks; t++ {
			inj.SetStep(t)
			for i := 0; i < tr.Arrivals(t); i++ {
				id := nextID
				nextID++
				submitted++
				wg.Add(1)
				go func(id uint64) {
					defer wg.Done()
					if r := front.Submit(context.Background(), id); r.Err == nil {
						mu.Lock()
						latencies = append(latencies, float64(r.Latency)/float64(time.Millisecond))
						mu.Unlock()
					}
				}(id)
			}
			time.Sleep(*tick)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		inj.SetStep(0)
		d := front.Stats().Sub(before)
		lat := metrics.Summarize(latencies)
		goodput := float64(d.AnsweredTotal()) / elapsed
		fmt.Printf("%10.0f %9d %9d %7d %8d %9d %10.0f %8.2f %8.2f\n",
			float64(submitted)/elapsed, submitted, d.AnsweredTotal(), d.Shed,
			d.DeadlineExpired, d.DegradedTotal(), goodput, lat.P50, lat.P99)

		if got := d.AnsweredTotal() + d.DeadlineExpired + d.Shed; got != submitted {
			fail("point %d lost requests: %d terminals of %d submitted", pi, got, submitted)
		}
		if d.Shed != d.Answered[metrics.RungShed] {
			fail("point %d: shed %d vs shed-rung terminals %d — a shed request answered",
				pi, d.Shed, d.Answered[metrics.RungShed])
		}
		deadlineMs := float64(*deadline) / float64(time.Millisecond)
		if lat.P99 > deadlineMs {
			fail("point %d: p99 %.2fms over the %.0fms deadline", pi, lat.P99, deadlineMs)
		}
		if goodput > peak {
			peak = goodput
		}
		lastGoodput = goodput
	}
	if len(rates) > 1 && lastGoodput < 0.8*peak {
		fail("goodput collapsed past the knee: %.0f/s at the heaviest point vs %.0f/s peak", lastGoodput, peak)
	}

	if *canaryFrac > 0 {
		plane, err := livecluster.DecodeExpertPlane(cl.ExportSnapshot(0, 2))
		if err != nil {
			fmt.Fprintln(os.Stderr, "janusserve:", err)
			return 1
		}
		err = front.StartCanary(serving.Canary{
			Version: 2, Plane: plane, Frac: *canaryFrac,
			SLO: *canarySLO, Delay: *canaryRegress,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "janusserve:", err)
			return 1
		}
		pre := front.Stats()
		for i := 0; i < 200 && front.Stats().RolledBack == pre.RolledBack; i++ {
			front.Submit(context.Background(), nextID)
			nextID++
		}
		rolled := front.Stats()
		if *canaryRegress > *canarySLO && rolled.RolledBack != pre.RolledBack+1 {
			fail("regressed canary not rolled back")
		}
		postFence := int64(0)
		for i := 0; i < 60; i++ {
			if r := front.Submit(context.Background(), nextID); r.Canary {
				postFence++
			}
			nextID++
		}
		postFence += front.Stats().CanaryServed - rolled.CanaryServed
		if rolled.RolledBack > pre.RolledBack && postFence != 0 {
			fail("%d answers from the rolled-back canary", postFence)
		}
		fmt.Printf("canary: %d candidate answers, rollbacks=%d, post-fence answers=%d\n",
			rolled.CanaryServed-pre.CanaryServed, rolled.RolledBack-pre.RolledBack, postFence)
	}

	fmt.Printf("final counters: %s\n", front.Stats())
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "janusserve: %d invariant violation(s)\n", violations)
		return 1
	}
	fmt.Println("all serving invariants held")
	return 0
}
