// Command janussim runs a single simulated training iteration with
// full control over the model, cluster, engine and Janus optimizations,
// and prints the resulting report (optionally with an ASCII timeline).
//
// Examples:
//
//	janussim -model bert -experts 32 -machines 4
//	janussim -model xl -engine tutel -skew 0.5
//	janussim -model gpt -credit 12 -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"janus"
)

func main() {
	modelName := flag.String("model", "bert", "model preset: bert, gpt, xl, prmoe")
	experts := flag.Int("experts", 32, "experts per MoE block (prmoe: shallow count; deep is 4x)")
	machines := flag.Int("machines", 4, "number of machines")
	gpusPerNode := flag.Int("gpus-per-node", 8, "GPUs per machine")
	engineName := flag.String("engine", "janus", "engine: janus or tutel")
	topo := flag.Bool("topo", true, "janus: topology-aware priority")
	prefetch := flag.Bool("prefetch", true, "janus: provident prefetch")
	credit := flag.Int("credit", 0, "janus: credit buffer size (0 = default)")
	conservative := flag.Bool("conservative", false, "janus: use the conservative R>2 policy")
	skew := flag.Float64("skew", 0, "gate Zipf skew (0 = balanced)")
	seed := flag.Int64("seed", 1, "gate seed")
	batch := flag.Int("batch", 0, "override per-worker batch size")
	seqLen := flag.Int("seq", 0, "override sequence length")
	topk := flag.Int("topk", 0, "override gate topK")
	trace := flag.Bool("trace", false, "print block completions and a worker-0 gantt")
	chrome := flag.String("chrome", "", "write a Chrome trace-event JSON to this path (implies -trace)")
	flag.Parse()
	if *chrome != "" {
		*trace = true
	}

	var model janus.Model
	switch *modelName {
	case "bert":
		model = janus.MoEBERT(*experts)
	case "gpt":
		model = janus.MoEGPT(*experts)
	case "xl":
		model = janus.MoETransformerXL(*experts)
	case "prmoe":
		model = janus.PRMoETransformerXL(*experts, 4**experts, 32)
	default:
		fmt.Fprintf(os.Stderr, "janussim: unknown model %q\n", *modelName)
		os.Exit(2)
	}
	if *batch > 0 {
		model.B = *batch
	}
	if *seqLen > 0 {
		model.S = *seqLen
	}
	if *topk > 0 {
		model.K = *topk
	}

	spec := janus.DefaultSpec(*machines)
	spec.GPUsPerNode = *gpusPerNode

	var assign func(int) janus.Assignment
	if *skew > 0 {
		workers := spec.TotalGPUs()
		m := model
		s := *seed
		sk := *skew
		assign = func(block int) janus.Assignment {
			return janus.ZipfAssignment(workers, m.Blocks[block].NumExperts,
				int(m.TokensPerWorker()), sk, s+int64(block))
		}
	}

	var rep janus.Report
	var err error
	switch *engineName {
	case "tutel":
		rep, err = janus.TrainExpertCentric(janus.BaselineConfig{
			Model: model, Spec: spec, Assignment: assign, Trace: *trace,
		})
	case "janus":
		cfg := janus.JanusConfig{
			Model: model, Spec: spec, Assignment: assign,
			TopoAware: *topo, Prefetch: *prefetch, CreditSize: *credit,
			Trace: *trace,
		}
		if *conservative {
			cfg.Policy = janus.ConservativePolicy()
		}
		rep, err = janus.TrainJanus(cfg)
	default:
		fmt.Fprintf(os.Stderr, "janussim: unknown engine %q\n", *engineName)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "janussim:", err)
		os.Exit(1)
	}
	fmt.Println(rep.String())
	if rep.OOM {
		os.Exit(0)
	}

	fmt.Println("\ntraffic by link class:")
	classes := make([]string, 0, len(rep.TrafficByClass))
	for c := range rep.TrafficByClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Printf("  %-10s %10.3f GiB\n", c, rep.TrafficByClass[c]/(1<<30))
	}
	fmt.Println("\nper-block paradigms:")
	for i, p := range rep.Paradigms {
		if model.Blocks[i].NumExperts > 0 {
			fmt.Printf("  block %2d (%3d experts): %v\n", i, model.Blocks[i].NumExperts, p)
		}
	}

	if *chrome != "" && rep.Timeline != nil {
		out, err := rep.Timeline.ChromeJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "janussim:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*chrome, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "janussim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}

	if *trace && rep.Timeline != nil {
		fmt.Println("\nblock completions (worker 0):")
		for _, m := range rep.Timeline.MarksNamed("fwd.block") {
			fmt.Printf("  %-18s %8.1f ms\n", m.Name, m.At*1e3)
		}
		fmt.Println("\nworker gantt (m0g0..m0g3):")
		fmt.Print(rep.Timeline.Gantt([]string{"m0g0", "m0g1", "m0g2", "m0g3"}, 100))
	}
}
