// Command janusbench regenerates the tables and figures of the Janus
// paper's evaluation on the simulated testbed.
//
// Usage:
//
//	janusbench -list            # show available experiments
//	janusbench -run fig14       # run one experiment
//	janusbench -run table1,fig3 # run several
//	janusbench -json            # machine-readable results on stdout
//	janusbench                  # run everything, in paper order
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"janus/internal/experiments"
)

// jsonEntry is one experiment's machine-readable outcome: the typed
// result struct (whose exported fields are the table rows) plus the
// rendered text for convenience.
type jsonEntry struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Seconds float64            `json:"seconds"`
	Error   string             `json:"error,omitempty"`
	Result  experiments.Result `json:"result,omitempty"`
	Render  string             `json:"render,omitempty"`
}

func main() { os.Exit(run()) }

func run() int {
	list := flag.Bool("list", false, "list available experiments and exit")
	runIDs := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	asJSON := flag.Bool("json", false, "emit a JSON array of results on stdout instead of tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "janusbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "janusbench:", err)
			return 1
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "janusbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "janusbench:", err)
			}
		}()
	}

	var ids []string
	if *runIDs == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*runIDs, ",")
	}
	failed := false
	var entries []jsonEntry
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "janusbench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := e.Run()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %s: %v\n", id, err)
			failed = true
			if *asJSON {
				entries = append(entries, jsonEntry{ID: e.ID, Title: e.Title,
					Seconds: elapsed.Seconds(), Error: err.Error()})
			}
			continue
		}
		if *asJSON {
			entries = append(entries, jsonEntry{ID: e.ID, Title: e.Title,
				Seconds: elapsed.Seconds(), Result: res, Render: res.Render()})
		} else {
			fmt.Printf("=== %s — %s (ran in %v)\n\n%s\n", e.ID, e.Title,
				elapsed.Round(time.Millisecond), res.Render())
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(entries); err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: encode: %v\n", err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}
