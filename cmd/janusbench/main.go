// Command janusbench regenerates the tables and figures of the Janus
// paper's evaluation on the simulated testbed.
//
// Usage:
//
//	janusbench -list            # show available experiments
//	janusbench -run fig14       # run one experiment
//	janusbench -run table1,fig3 # run several
//	janusbench                  # run everything, in paper order
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"janus/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	failed := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "janusbench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "janusbench: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Printf("=== %s — %s (ran in %v)\n\n%s\n", e.ID, e.Title,
			time.Since(start).Round(time.Millisecond), res.Render())
	}
	if failed {
		os.Exit(1)
	}
}
