// Command benchdiff compares a fresh benchjson document against the
// frozen one committed in the repo (BENCH_5.json) and fails when the
// allocation count of any shared benchmark regresses by more than the
// tolerance. It is the CI gate for the zero-alloc steady-state work:
// steady allocs/op are deterministic (every buffer is pooled), so a
// regression means an escape or a dropped pool, not noise.
//
// It can also extract the scaling curve — every benchmark that
// reported a "machines" metric — into a small JSON artifact for the CI
// run to upload.
//
// Usage:
//
//	go run ./cmd/benchdiff -frozen BENCH_5.json -current bench-smoke.json [-curve scaling-curve.json]
//
// Exit status 1 on regression, 2 on usage/IO errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Benchmark mirrors cmd/benchjson's output entry.
type Benchmark struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Extra   map[string]float64 `json:"extra"`
}

// Doc mirrors cmd/benchjson's document (fields benchdiff reads).
type Doc struct {
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// CurvePoint is one scaling-curve sample: a benchmark that reported
// its cluster size via the "machines" metric.
type CurvePoint struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Machines    float64 `json:"machines"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// allocSlack absorbs the one nondeterministic contribution to
// allocs/op: a GC cycle during the run empties sync.Pool victim
// caches, and the refill shows up as a burst of allocations that a
// single-iteration CI smoke run cannot amortize away. Real
// regressions (an escaped local, a dropped pool) recur per operation
// and clear this by orders of magnitude.
const allocSlack = 64

func main() {
	frozen := flag.String("frozen", "BENCH_5.json", "frozen benchjson document (the committed reference)")
	current := flag.String("current", "", "fresh benchjson document to check (required)")
	curve := flag.String("curve", "", "write the scaling curve (machines-metric benchmarks) of the current run here")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative allocs/op regression")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	ref, err := load(*frozen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	if *curve != "" {
		if err := writeCurve(*curve, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}

	refAllocs := make(map[string]float64)
	for _, b := range ref.Benchmarks {
		if a, ok := b.Extra["allocs/op"]; ok {
			refAllocs[b.Package+"."+b.Name] = a
		}
	}
	failed := false
	compared := 0
	for _, b := range cur.Benchmarks {
		key := b.Package + "." + b.Name
		refA, ok := refAllocs[key]
		if !ok {
			continue // new benchmark: nothing frozen to hold it to
		}
		curA, ok := b.Extra["allocs/op"]
		if !ok {
			continue
		}
		compared++
		limit := refA*(1+*tolerance) + allocSlack
		if curA > limit {
			failed = true
			fmt.Printf("REGRESSION %s: %.0f allocs/op, frozen %.0f (limit %.0f)\n", key, curA, refA, limit)
		} else {
			fmt.Printf("ok %s: %.0f allocs/op (frozen %.0f)\n", key, curA, refA)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks in common — wrong files?")
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func load(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func writeCurve(path string, d *Doc) error {
	var pts []CurvePoint
	for _, b := range d.Benchmarks {
		m, ok := b.Extra["machines"]
		if !ok {
			continue
		}
		pts = append(pts, CurvePoint{
			Package:     b.Package,
			Name:        b.Name,
			Machines:    m,
			NsPerOp:     b.NsPerOp,
			AllocsPerOp: b.Extra["allocs/op"],
			BytesPerOp:  b.Extra["B/op"],
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Machines != pts[j].Machines {
			return pts[i].Machines < pts[j].Machines
		}
		return pts[i].Name < pts[j].Name
	})
	raw, err := json.MarshalIndent(pts, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
