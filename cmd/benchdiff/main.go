// Command benchdiff compares a fresh benchjson document against the
// frozen one committed in the repo (BENCH_6.json) and fails when the
// allocation count of any shared benchmark regresses by more than the
// tolerance. It is the CI gate for the zero-alloc steady-state work:
// steady allocs/op are deterministic (every buffer is pooled), so a
// regression means an escape or a dropped pool, not noise.
//
// Wall-clock is gated separately and opt-in: benchmarks whose names
// match -ns-pattern must stay within -ns-tolerance (default 50%) of
// the frozen ns/op. The wide tolerance absorbs machine-speed and
// single-iteration noise; the gate exists for algorithmic cliffs — the
// hierarchical allocator falling back to component-wide settles is a
// 30× step, not a 50% one — so anything it catches is structural.
//
// It can also extract the scaling curve — every benchmark that
// reported a "machines" metric — into a small JSON artifact for the CI
// run to upload.
//
// Usage:
//
//	go run ./cmd/benchdiff -frozen BENCH_6.json -current bench-smoke.json \
//	    [-curve scaling-curve.json] [-ns-pattern 'A2AScale|AdmissionScale']
//
// Exit status 1 on regression, 2 on usage/IO errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Benchmark mirrors cmd/benchjson's output entry.
type Benchmark struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra"`
}

// Doc mirrors cmd/benchjson's document (fields benchdiff reads).
type Doc struct {
	GoMaxProcs int         `json:"gomaxprocs"`
	NumCPU     int         `json:"numcpu"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// CurvePoint is one scaling-curve sample: a benchmark that reported
// its cluster size via the "machines" metric.
type CurvePoint struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Machines    float64 `json:"machines"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// allocSlack absorbs the one nondeterministic contribution to
// allocs/op: a GC cycle during the run empties sync.Pool victim
// caches, and the refill shows up as a burst of allocations that a
// single-iteration CI smoke run cannot amortize away. Real
// regressions (an escaped local, a dropped pool) recur per operation
// and clear this by orders of magnitude.
const allocSlack = 64

// refillSlack bounds the pool-refill burst itself: the testing package
// forces a GC before the measured run, so a 1-iteration smoke pays the
// whole refill of a large pool inventory (the livecluster iteration
// refills >1k pooled buffers) in its single op. The burst is one-shot,
// so its per-op contribution scales as 1/iterations — at `make bench`
// iteration counts it vanishes and the gate is tight; only the smoke
// tier gets the allowance, and a recurring per-op regression still
// dwarfs it there.
const refillSlack = 2048

func main() {
	frozen := flag.String("frozen", "BENCH_6.json", "frozen benchjson document (the committed reference)")
	current := flag.String("current", "", "fresh benchjson document to check (required)")
	curve := flag.String("curve", "", "write the scaling curve (machines-metric benchmarks) of the current run here")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative allocs/op regression")
	nsPattern := flag.String("ns-pattern", "", "also gate ns/op for benchmarks matching this regexp (empty disables)")
	nsTolerance := flag.Float64("ns-tolerance", 0.50, "allowed relative ns/op regression for -ns-pattern matches")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	ref, err := load(*frozen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	if *curve != "" {
		if err := writeCurve(*curve, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}

	refAllocs := make(map[string]float64)
	for _, b := range ref.Benchmarks {
		if a, ok := b.Extra["allocs/op"]; ok {
			refAllocs[b.Package+"."+b.Name] = a
		}
	}
	failed := false
	compared := 0
	for _, b := range cur.Benchmarks {
		key := b.Package + "." + b.Name
		refA, ok := refAllocs[key]
		if !ok {
			continue // new benchmark: nothing frozen to hold it to
		}
		curA, ok := b.Extra["allocs/op"]
		if !ok {
			continue
		}
		compared++
		iters := b.Iterations
		if iters < 1 {
			iters = 1
		}
		limit := refA*(1+*tolerance) + allocSlack + refillSlack/float64(iters)
		if curA > limit {
			failed = true
			fmt.Printf("REGRESSION %s: %.0f allocs/op, frozen %.0f (limit %.0f)\n", key, curA, refA, limit)
		} else {
			fmt.Printf("ok %s: %.0f allocs/op (frozen %.0f)\n", key, curA, refA)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks in common — wrong files?")
		os.Exit(2)
	}

	if *nsPattern != "" {
		re, err := regexp.Compile(*nsPattern)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: bad -ns-pattern: %v\n", err)
			os.Exit(2)
		}
		refNs := make(map[string]float64)
		for _, b := range ref.Benchmarks {
			if re.MatchString(b.Name) {
				refNs[b.Package+"."+b.Name] = b.NsPerOp
			}
		}
		gated := 0
		for _, b := range cur.Benchmarks {
			if !re.MatchString(b.Name) {
				continue
			}
			key := b.Package + "." + b.Name
			refT, ok := refNs[key]
			if !ok || refT <= 0 {
				continue // new benchmark: nothing frozen to hold it to
			}
			gated++
			limit := refT * (1 + *nsTolerance)
			if b.NsPerOp > limit {
				failed = true
				fmt.Printf("REGRESSION %s: %.3gms/op, frozen %.3gms (limit %.3gms)\n",
					key, b.NsPerOp/1e6, refT/1e6, limit/1e6)
			} else {
				fmt.Printf("ok %s: %.3gms/op (frozen %.3gms)\n", key, b.NsPerOp/1e6, refT/1e6)
			}
		}
		if gated == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: -ns-pattern %q matched no shared benchmarks\n", *nsPattern)
			os.Exit(2)
		}
	}

	if failed {
		os.Exit(1)
	}
}

func load(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func writeCurve(path string, d *Doc) error {
	var pts []CurvePoint
	for _, b := range d.Benchmarks {
		m, ok := b.Extra["machines"]
		if !ok {
			continue
		}
		pts = append(pts, CurvePoint{
			Package:     b.Package,
			Name:        b.Name,
			Machines:    m,
			NsPerOp:     b.NsPerOp,
			AllocsPerOp: b.Extra["allocs/op"],
			BytesPerOp:  b.Extra["B/op"],
		})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Machines != pts[j].Machines {
			return pts[i].Machines < pts[j].Machines
		}
		return pts[i].Name < pts[j].Name
	})
	raw, err := json.MarshalIndent(pts, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
