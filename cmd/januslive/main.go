// Command januslive runs a real (non-simulated) miniature Janus
// deployment on loopback TCP: every "machine" hosts its experts behind
// a pull server, workers execute a real numeric MoE forward pass by
// pulling expert weights through the §6 protocol, and the tool verifies
// the result against the in-process expert-centric reference and
// reports the measured wire traffic against the token-exchange volume.
//
// Fault injection: -kill-machine with -kill-from/-kill-to kills one
// machine's server for a window of steps, and -drop/-delay inject
// probabilistic write loss and latency on every machine. With faults
// enabled the cluster runs in stale-weights degradation mode (§5.1.2)
// and the per-step robustness counters (retries, timeouts, reconnects,
// stale serves, degraded steps) are printed so a fault run is
// observable without a debugger:
//
//	januslive -steps 6 -kill-machine 1 -kill-from 3 -kill-to 5
//
// Permanent loss: -fail-permanent makes the kill irreversible and turns
// on heartbeat membership, checkpointing (-checkpoint-dir,
// -checkpoint-every), and deterministic failover — the dead machine's
// experts are re-homed onto survivors from the last committed
// checkpoint and the run completes bit-identically on every survivor:
//
//	januslive -machines 3 -workers 1 -experts 9 -topk 3 -steps 8 \
//	  -kill-machine 2 -kill-from 3 -fail-permanent -checkpoint-dir /tmp/janus-ckpt
//
// Partition drill: -partition-machine cuts one machine off from the
// rest for the window -partition-from/-partition-to. The majority
// quorum declares it dead and re-homes its experts; the minority
// freezes its dead-man clocks instead of forking ownership. With
// -partition-oneway the cut is asymmetric — the minority's writes still
// arrive — and the membership-epoch fence rejects every one (disable it
// with -no-fencing to watch the split brain it prevents):
//
//	januslive -machines 3 -workers 1 -experts 9 -topk 3 -steps 6 \
//	  -partition-machine 2 -partition-from 2 -partition-to 4 -partition-oneway
//
// Gray failure: -slow-machine/-slow-delay make one machine answer
// slowly without dying. Per-peer EWMA scoring flags it past -slow-after
// and pulls hedge to the freshest local replica after -hedge-delay:
//
//	januslive -steps 4 -slow-machine 1 -slow-delay 20ms \
//	  -slow-after 2ms -hedge-delay 5ms
//
// Elastic membership: -join-machine M admits a brand-new machine into
// the running cluster after step -join-at, seeded through member M —
// no restart, the heartbeat absorbs it within two rounds. -rebalance N
// runs the popularity-weighted rebalancer every N steps, migrating the
// hottest experts onto the least-loaded machines through the fenced
// three-phase handoff (with -train the joined machine hosts migrated
// experts while the weights stay bitwise identical to a static run):
//
//	januslive -machines 3 -workers 1 -experts 9 -topk 3 -train \
//	  -steps 8 -join-machine 0 -join-at 2 -rebalance 4
//
// Synchronous replication: -replicas N keeps N in-sync copies of every
// expert on owner-disjoint machines, streamed at each step barrier.
// Combined with -fail-permanent the kill becomes lossless — failover
// promotes a replica that acked the dead owner's last merged version,
// and the tool fails the run if any staleness leaks through:
//
//	januslive -machines 3 -workers 1 -experts 9 -topk 3 -train \
//	  -steps 8 -replicas 2 -kill-machine 2 -kill-from 4 -fail-permanent
//
// Training: -train switches from the forward-only iteration loop to the
// real trainer (backward pass, pre-reduced gradient pushes, SGD merges
// on the owners). -pipelined streams microbatches through the fetch →
// compute → push stages and overlaps steps where the fault policy
// permits; a pipelined run is re-executed in lockstep on a twin cluster
// and the final weights are compared bitwise:
//
//	januslive -train -pipelined -steps 8 -microbatches 4 -delay 100us
//
// Profiling: -cpuprofile/-memprofile write pprof files for any mode.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"janus"
	"janus/internal/tensor"
)

func main() { os.Exit(run()) }

func run() int {
	machines := flag.Int("machines", 2, "number of machines (TCP servers)")
	workers := flag.Int("workers", 2, "workers per machine")
	experts := flag.Int("experts", 8, "experts in the MoE layer")
	hidden := flag.Int("hidden", 32, "hidden dimension H")
	tokens := flag.Int("tokens", 256, "tokens per worker")
	topk := flag.Int("topk", 2, "gate topK")
	seed := flag.Int64("seed", 42, "weight/token/fault seed")
	steps := flag.Int("steps", 1, "training iterations to run")
	killMachine := flag.Int("kill-machine", -1, "machine whose server to kill (-1 = none)")
	killFrom := flag.Int("kill-from", 0, "first step (1-based) the killed server is down")
	killTo := flag.Int("kill-to", 0, "first step the killed server is back (0 = never)")
	drop := flag.Float64("drop", 0, "per-write drop probability on every machine")
	delay := flag.Duration("delay", 0, "added latency per network op on every machine")
	pullTimeout := flag.Duration("pull-timeout", 500*time.Millisecond, "per-attempt pull/push deadline under faults")
	retries := flag.Int("retries", 3, "attempts per pull/push under faults")
	failPermanent := flag.Bool("fail-permanent", false, "treat the kill as a permanent machine loss: heartbeat membership, dead-man declaration, deterministic failover")
	partMachine := flag.Int("partition-machine", -1, "machine to cut off from every other machine (-1 = none); implies failover membership")
	partFrom := flag.Int("partition-from", 0, "first step (1-based) of the partition window")
	partTo := flag.Int("partition-to", 0, "first step the partition is healed (0 = never)")
	partOneWay := flag.Bool("partition-oneway", false, "asymmetric cut: the partitioned machine's writes still arrive (zombie writer), only responses and inbound traffic are lost")
	noFencing := flag.Bool("no-fencing", false, "disable the membership-epoch fence on the wire (demonstrates the split brain fencing prevents)")
	slowMachine := flag.Int("slow-machine", -1, "machine whose server answers slowly — a gray failure (-1 = none)")
	slowDelay := flag.Duration("slow-delay", 20*time.Millisecond, "added latency per network op on the slow machine")
	slowAfter := flag.Duration("slow-after", 0, "per-peer EWMA latency past which a peer is flagged slow (0 = scoring off)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "hedge an expert pull to the local replica after this delay when the owner is flagged slow (0 = off)")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for crash-consistent checkpoints (failover restores from here)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "checkpoint cadence in steps")
	deadman := flag.Int("deadman", janus.DefaultDeadManSteps, "consecutive missed heartbeat rounds before a machine is declared dead")
	joinSeed := flag.Int("join-machine", -1, "seed member a brand-new machine dials to join the running cluster (-1 = no join); implies failover membership")
	joinAt := flag.Int("join-at", 1, "step (1-based) after which the new machine joins")
	rebalance := flag.Int("rebalance", 0, "run the popularity-weighted expert rebalancer every N steps (0 = off); implies failover membership")
	replicas := flag.Int("replicas", 0, "in-sync replicas per expert, streamed at every step barrier (0 = off); implies failover membership")
	replicateTop := flag.Int("replicate-top", 0, "with -replicas: only replicate the N hottest experts (0 = all)")
	train := flag.Bool("train", false, "run the real trainer (backward + SGD merges) instead of forward-only iterations")
	pipelined := flag.Bool("pipelined", false, "with -train: stream microbatches and overlap steps (verified bitwise against a lockstep twin)")
	microbatches := flag.Int("microbatches", 1, "with -train: contiguous token microbatches per worker batch")
	depth := flag.Int("depth", 0, "with -train -pipelined: cross-step in-flight window (0 = default)")
	lr := flag.Float64("lr", 0, "with -train: SGD learning rate (0 = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *failPermanent && *killMachine < 0 {
		fmt.Fprintln(os.Stderr, "januslive: -fail-permanent needs -kill-machine")
		return 2
	}
	if *failPermanent {
		*killTo = 0 // permanent means the server never comes back
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "januslive:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "januslive:", err)
			return 1
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "januslive:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "januslive:", err)
			}
		}()
	}

	faulted := *killMachine >= 0 || *drop > 0 || *delay > 0 || *partMachine >= 0 || *slowMachine >= 0
	// buildCfg returns a fresh config with a fresh injector: injectors
	// are stateful, so the pipelined run and its lockstep twin each get
	// their own.
	buildCfg := func() janus.LiveConfig {
		cfg := janus.LiveConfig{
			Machines: *machines, WorkersPerNode: *workers,
			NumExperts: *experts, TopK: *topk, Hidden: *hidden,
			TokensPerWorker: *tokens, Seed: *seed, Credits: 4,
		}
		if faulted {
			inj := janus.NewFaultInjector(*seed)
			if *killMachine >= 0 {
				inj.Kill(janus.MachineLabel(*killMachine), *killFrom, *killTo)
			}
			if *drop > 0 || *delay > 0 {
				inj.AddRule(janus.FaultRule{Fault: janus.Fault{DropProb: *drop, Delay: *delay}})
			}
			if *partMachine >= 0 {
				for m := 0; m < *machines; m++ {
					if m == *partMachine {
						continue
					}
					if *partOneWay {
						inj.PartitionOneWay(janus.MachineLabel(m), janus.MachineLabel(*partMachine), *partFrom, *partTo)
					} else {
						inj.Partition(janus.MachineLabel(m), janus.MachineLabel(*partMachine), *partFrom, *partTo)
					}
				}
			}
			if *slowMachine >= 0 {
				inj.Slow(janus.MachineLabel(*slowMachine), *slowDelay, 0, 1)
			}
			cfg.Injector = inj
			cfg.StaleFallback = true
			cfg.PullTimeout = *pullTimeout
			cfg.PullRetries = *retries
			cfg.RetryBackoff = 5 * time.Millisecond
		}
		if *failPermanent || *partMachine >= 0 || *joinSeed >= 0 || *rebalance > 0 || *replicas > 0 {
			cfg.FailoverEnabled = true
			cfg.DeadManSteps = *deadman
		}
		cfg.Replicas = *replicas
		cfg.ReplicateTop = *replicateTop
		cfg.FencingDisabled = *noFencing
		cfg.SlowAfter = *slowAfter
		cfg.HedgeDelay = *hedgeDelay
		if *checkpointDir != "" {
			cfg.CheckpointDir = *checkpointDir
			cfg.CheckpointEvery = *checkpointEvery
		}
		return cfg
	}

	fmt.Printf("live cluster: %d machines x %d workers, %d experts (H=%d), %d tokens/worker, topK=%d\n",
		*machines, *workers, *experts, *hidden, *tokens, *topk)
	if faulted {
		fmt.Printf("fault policy: kill-machine=%d window=[%d,%d) drop=%.2f delay=%v (stale-weights fallback on)\n",
			*killMachine, *killFrom, *killTo, *drop, *delay)
	}
	if *partMachine >= 0 {
		dir, fence := "two-way", "on"
		if *partOneWay {
			dir = "one-way (zombie writes arrive)"
		}
		if *noFencing {
			fence = "OFF"
		}
		fmt.Printf("partition: machine %d cut off (%s) window=[%d,%d), epoch fencing %s\n",
			*partMachine, dir, *partFrom, *partTo, fence)
	}
	if *slowMachine >= 0 {
		fmt.Printf("gray failure: machine %d +%v/op, slow-after=%v hedge-delay=%v\n",
			*slowMachine, *slowDelay, *slowAfter, *hedgeDelay)
	}
	if *joinSeed >= 0 || *rebalance > 0 {
		ev := ""
		if *joinSeed >= 0 {
			ev = fmt.Sprintf("machine %d joins live via member %d after step %d", *machines, *joinSeed, *joinAt)
		}
		if *rebalance > 0 {
			if ev != "" {
				ev += "; "
			}
			ev += fmt.Sprintf("rebalance every %d steps", *rebalance)
		}
		fmt.Println("elastic membership:", ev)
	}
	if *replicas > 0 {
		scope := "all experts"
		if *replicateTop > 0 {
			scope = fmt.Sprintf("top %d experts", *replicateTop)
		}
		fmt.Printf("replication: %d in-sync replica(s) per expert (%s), streamed at every step barrier\n",
			*replicas, scope)
	}

	if *train {
		opts := janus.LiveTrainOptions{
			Steps: *steps, Microbatches: *microbatches,
			Pipelined: *pipelined, Depth: *depth, LR: float32(*lr),
			RebalanceEvery: *rebalance,
		}
		if *joinSeed >= 0 {
			opts.JoinAfterStep = *joinAt
			opts.JoinSeed = *joinSeed
		}
		return runTrain(buildCfg, opts, *replicas, *failPermanent)
	}
	return runForward(buildCfg(), *steps, faulted, *failPermanent || *partMachine >= 0, *machines,
		elasticPlan{joinSeed: *joinSeed, joinAt: *joinAt, rebalanceEvery: *rebalance})
}

// elasticPlan is the forward-mode membership-event schedule.
type elasticPlan struct {
	joinSeed, joinAt, rebalanceEvery int
}

func (p elasticPlan) active() bool { return p.joinSeed >= 0 || p.rebalanceEvery > 0 }

// runTrain executes the trainer; a pipelined run is verified bitwise
// against a lockstep twin cluster driven by an identical fault policy.
// With replication armed against a permanent kill, the run is held to
// the lossless bar: a promotion must happen and no staleness may leak.
func runTrain(buildCfg func() janus.LiveConfig, opts janus.LiveTrainOptions, replicas int, failPermanent bool) int {
	cl, err := janus.StartLiveCluster(buildCfg())
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive:", err)
		return 1
	}
	defer cl.Close()

	mode := "lockstep"
	if opts.Pipelined {
		mode = "pipelined"
	}
	start := time.Now()
	res, err := cl.Train(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive: train:", err)
		return 1
	}
	el := time.Since(start)
	fmt.Printf("train (%s): %d steps x %d microbatches in %.1fms (%.1f steps/sec)\n",
		mode, res.Steps, opts.Microbatches, float64(el.Microseconds())/1e3,
		float64(res.Steps)/el.Seconds())
	if opts.Pipelined && res.Synced {
		fmt.Println("schedule: step-synced (fault policy is not outcome-neutral; cross-step overlap disabled)")
	}
	fmt.Printf("pipeline: %v\n", res.Pipeline)
	if res.DegradedSteps > 0 {
		fmt.Printf("degraded: %d/%d steps (stale=%d max-staleness=%d dropped-grads=%d) alive=%d\n",
			res.DegradedSteps, res.Steps, res.StaleFetches, res.MaxStalenessSteps,
			res.DroppedGrads, res.AliveMachines)
	}
	if opts.JoinAfterStep > 0 || opts.RebalanceEvery > 0 {
		if err := cl.ViewConsistency(); err != nil {
			fmt.Fprintln(os.Stderr, "januslive:", err)
			return 1
		}
		tot := cl.RobustnessTotals()
		fmt.Printf("elastic: %d join(s), %d migration(s), %d rollback(s), epoch %d, owners %v (views consistent)\n",
			tot.Joins, tot.Migrations, tot.MigrationRollbacks, cl.Epoch(), cl.OwnerView())
	}
	if replicas > 0 {
		if err := cl.ViewConsistency(); err != nil {
			fmt.Fprintln(os.Stderr, "januslive:", err)
			return 1
		}
		tot := cl.RobustnessTotals()
		fmt.Printf("replication: %d stream(s), %d failure(s), %d promotion(s), %d repair(s), %d retarget(s), %d in-sync hedge(s)\n",
			tot.ReplPushes, tot.ReplFailures, tot.Promotions, tot.ReplRepairs, tot.ReplRetargets, tot.InSyncHedges)
		if failPermanent {
			// The lossless bar: the kill must have promoted an in-sync
			// replica and the run must show zero staleness end to end.
			if tot.Promotions == 0 {
				fmt.Fprintln(os.Stderr, "januslive: permanent kill with replication armed promoted no replica")
				return 1
			}
			if res.MaxStalenessSteps != 0 || res.StaleFetches != 0 {
				fmt.Fprintf(os.Stderr, "januslive: replicated failover leaked staleness (max=%d fetches=%d)\n",
					res.MaxStalenessSteps, res.StaleFetches)
				return 1
			}
			fmt.Println("OK: lossless failover — in-sync replica promoted, zero staleness")
		}
	}

	if !opts.Pipelined {
		return 0
	}
	// Bit-identity check: replay the identical schedule in lockstep on
	// a twin cluster and compare every expert's final weights. The twin
	// must not share -checkpoint-dir: it would restore from the first
	// run's (newer) checkpoints on failover instead of its own.
	tcfg := buildCfg()
	if tcfg.CheckpointDir != "" {
		dir, err := os.MkdirTemp("", "januslive-twin-ckpt-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "januslive: twin:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		tcfg.CheckpointDir = dir
	}
	twin, err := janus.StartLiveCluster(tcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive: twin:", err)
		return 1
	}
	defer twin.Close()
	lockOpts := opts
	lockOpts.Pipelined = false
	if _, err := twin.Train(lockOpts); err != nil {
		fmt.Fprintln(os.Stderr, "januslive: twin train:", err)
		return 1
	}
	got, err := cl.ExpertState()
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive:", err)
		return 1
	}
	want, err := twin.ExpertState()
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive:", err)
		return 1
	}
	for e := range got {
		if !bytes.Equal(got[e], want[e]) {
			fmt.Fprintf(os.Stderr, "januslive: expert %d weights diverged from the lockstep twin\n", e)
			return 1
		}
	}
	fmt.Printf("OK: pipelined weights bit-identical to the lockstep twin (%d experts)\n", len(got))
	return 0
}

func runForward(cfg janus.LiveConfig, steps int, faulted, failPermanent bool, machines int, plan elasticPlan) int {
	cl, err := janus.StartLiveCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive:", err)
		return 1
	}
	defer cl.Close()

	ref := cl.RunExpertCentricReference()
	var last janus.LiveResult
	degradedTotal := 0
	for s := 1; s <= steps; s++ {
		start := time.Now()
		res, err := cl.RunDataCentric()
		if err != nil {
			fmt.Fprintf(os.Stderr, "januslive: step %d: %v\n", s, err)
			return 1
		}
		if plan.joinSeed >= 0 && s == plan.joinAt {
			j, err := cl.Join(plan.joinSeed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "januslive: join after step %d: %v\n", s, err)
				return 1
			}
			fmt.Printf("step %2d: machine %d joined live via member %d\n", s, j, plan.joinSeed)
		}
		if plan.rebalanceEvery > 0 && s%plan.rebalanceEvery == 0 {
			n, err := cl.Rebalance(1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "januslive: rebalance after step %d: %v\n", s, err)
				return 1
			}
			if n > 0 {
				fmt.Printf("step %2d: rebalanced %d expert(s), owners now %v\n", s, n, cl.OwnerView())
			}
		}
		if plan.active() {
			if err := cl.ViewConsistency(); err != nil {
				fmt.Fprintln(os.Stderr, "januslive:", err)
				return 1
			}
		}
		last = res
		degradedTotal += res.DegradedSteps
		if steps > 1 || faulted {
			mode := "ok"
			if res.Degraded() {
				mode = fmt.Sprintf("DEGRADED (stale=%d max-staleness=%d dropped-grads=%d)",
					res.StaleFetches, res.MaxStalenessSteps, res.DroppedGrads)
			}
			alive := ""
			if failPermanent {
				alive = fmt.Sprintf("  alive=%d/%d", res.AliveMachines, machines)
				if res.PartitionedMachines > 0 {
					alive += fmt.Sprintf(" parted=%d", res.PartitionedMachines)
				}
			}
			fmt.Printf("step %2d: %6.1fms  %s%s  [%v]\n",
				s, float64(time.Since(start).Microseconds())/1e3, mode, alive, res.Robust)
		}
	}

	// A permanently dead machine's workers compute nothing: their output
	// slots are nil and only survivors are compared.
	maxDiff, survivors := 0.0, 0
	for w := range ref {
		if last.Outputs[w] == nil {
			continue
		}
		survivors++
		if d := tensor.MaxAbsDiff(last.Outputs[w], ref[w]); d > maxDiff {
			maxDiff = d
		}
	}
	tokenBytes := cl.TokenExchangeBytes()
	fmt.Printf("paradigm equivalence:   max |Δ| vs expert-centric reference = %g\n", maxDiff)
	fmt.Printf("expert pulls served:    %d (single flight per machine)\n", last.PullsServed)
	fmt.Printf("cross-machine traffic:  data-centric %d bytes, token exchange would be %d bytes",
		last.CrossMachineBytes, tokenBytes)
	if last.CrossMachineBytes > 0 {
		fmt.Printf("  (%.1fx reduction)", float64(tokenBytes)/float64(last.CrossMachineBytes))
	}
	fmt.Println()
	if faulted || degradedTotal > 0 {
		fmt.Printf("robustness:             %d/%d steps degraded; cumulative %v\n",
			degradedTotal, steps, cl.RobustnessTotals())
	}
	if failPermanent {
		fmt.Printf("membership:             %d/%d machines alive after the run\n",
			last.AliveMachines, machines)
	}
	if plan.active() {
		tot := cl.RobustnessTotals()
		fmt.Printf("elastic:                %d join(s), %d migration(s), %d rollback(s), epoch %d, owners %v (views consistent)\n",
			tot.Joins, tot.Migrations, tot.MigrationRollbacks, cl.Epoch(), cl.OwnerView())
	}
	if cfg.Replicas > 0 {
		if err := cl.ViewConsistency(); err != nil {
			fmt.Fprintln(os.Stderr, "januslive:", err)
			return 1
		}
		tot := cl.RobustnessTotals()
		fmt.Printf("replication:            %d stream(s), %d failure(s), %d promotion(s), %d repair(s), %d in-sync hedge(s)\n",
			tot.ReplPushes, tot.ReplFailures, tot.Promotions, tot.ReplRepairs, tot.InSyncHedges)
	}
	if maxDiff != 0 {
		fmt.Fprintln(os.Stderr, "januslive: outputs differ from reference")
		return 1
	}
	if survivors < len(ref) {
		fmt.Printf("OK: all %d surviving workers bit-identical to the reference (failed machine's workers excluded)\n", survivors)
		return 0
	}
	fmt.Println("OK: data-centric execution over real sockets is bit-identical to the reference")
	return 0
}
