// Command januslive runs a real (non-simulated) miniature Janus
// deployment on loopback TCP: every "machine" hosts its experts behind
// a pull server, workers execute a real numeric MoE forward pass by
// pulling expert weights through the §6 protocol, and the tool verifies
// the result against the in-process expert-centric reference and
// reports the measured wire traffic against the token-exchange volume.
package main

import (
	"flag"
	"fmt"
	"os"

	"janus"
	"janus/internal/tensor"
)

func main() {
	machines := flag.Int("machines", 2, "number of machines (TCP servers)")
	workers := flag.Int("workers", 2, "workers per machine")
	experts := flag.Int("experts", 8, "experts in the MoE layer")
	hidden := flag.Int("hidden", 32, "hidden dimension H")
	tokens := flag.Int("tokens", 256, "tokens per worker")
	topk := flag.Int("topk", 2, "gate topK")
	seed := flag.Int64("seed", 42, "weight/token seed")
	flag.Parse()

	cfg := janus.LiveConfig{
		Machines: *machines, WorkersPerNode: *workers,
		NumExperts: *experts, TopK: *topk, Hidden: *hidden,
		TokensPerWorker: *tokens, Seed: *seed, Credits: 4,
	}
	cl, err := janus.StartLiveCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive:", err)
		os.Exit(1)
	}
	defer cl.Close()

	res, err := cl.RunDataCentric()
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive:", err)
		os.Exit(1)
	}
	ref := cl.RunExpertCentricReference()
	maxDiff := 0.0
	for w := range ref {
		if d := tensor.MaxAbsDiff(res.Outputs[w], ref[w]); d > maxDiff {
			maxDiff = d
		}
	}

	tokenBytes := cl.TokenExchangeBytes()
	fmt.Printf("live cluster: %d machines x %d workers, %d experts (H=%d), %d tokens/worker, topK=%d\n",
		*machines, *workers, *experts, *hidden, *tokens, *topk)
	fmt.Printf("paradigm equivalence:   max |Δ| vs expert-centric reference = %g\n", maxDiff)
	fmt.Printf("expert pulls served:    %d (single flight per machine)\n", res.PullsServed)
	fmt.Printf("cross-machine traffic:  data-centric %d bytes, token exchange would be %d bytes",
		res.CrossMachineBytes, tokenBytes)
	if res.CrossMachineBytes > 0 {
		fmt.Printf("  (%.1fx reduction)", float64(tokenBytes)/float64(res.CrossMachineBytes))
	}
	fmt.Println()
	if maxDiff != 0 {
		fmt.Fprintln(os.Stderr, "januslive: outputs differ from reference")
		os.Exit(1)
	}
	fmt.Println("OK: data-centric execution over real sockets is bit-identical to the reference")
}
