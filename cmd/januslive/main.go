// Command januslive runs a real (non-simulated) miniature Janus
// deployment on loopback TCP: every "machine" hosts its experts behind
// a pull server, workers execute a real numeric MoE forward pass by
// pulling expert weights through the §6 protocol, and the tool verifies
// the result against the in-process expert-centric reference and
// reports the measured wire traffic against the token-exchange volume.
//
// Fault injection: -kill-machine with -kill-from/-kill-to kills one
// machine's server for a window of steps, and -drop/-delay inject
// probabilistic write loss and latency on every machine. With faults
// enabled the cluster runs in stale-weights degradation mode (§5.1.2)
// and the per-step robustness counters (retries, timeouts, reconnects,
// stale serves, degraded steps) are printed so a fault run is
// observable without a debugger:
//
//	januslive -steps 6 -kill-machine 1 -kill-from 3 -kill-to 5
//
// Permanent loss: -fail-permanent makes the kill irreversible and turns
// on heartbeat membership, checkpointing (-checkpoint-dir,
// -checkpoint-every), and deterministic failover — the dead machine's
// experts are re-homed onto survivors from the last committed
// checkpoint and the run completes bit-identically on every survivor:
//
//	januslive -machines 3 -workers 1 -experts 9 -topk 3 -steps 8 \
//	  -kill-machine 2 -kill-from 3 -fail-permanent -checkpoint-dir /tmp/janus-ckpt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"janus"
	"janus/internal/tensor"
)

func main() {
	machines := flag.Int("machines", 2, "number of machines (TCP servers)")
	workers := flag.Int("workers", 2, "workers per machine")
	experts := flag.Int("experts", 8, "experts in the MoE layer")
	hidden := flag.Int("hidden", 32, "hidden dimension H")
	tokens := flag.Int("tokens", 256, "tokens per worker")
	topk := flag.Int("topk", 2, "gate topK")
	seed := flag.Int64("seed", 42, "weight/token/fault seed")
	steps := flag.Int("steps", 1, "training iterations to run")
	killMachine := flag.Int("kill-machine", -1, "machine whose server to kill (-1 = none)")
	killFrom := flag.Int("kill-from", 0, "first step (1-based) the killed server is down")
	killTo := flag.Int("kill-to", 0, "first step the killed server is back (0 = never)")
	drop := flag.Float64("drop", 0, "per-write drop probability on every machine")
	delay := flag.Duration("delay", 0, "added latency per network op on every machine")
	pullTimeout := flag.Duration("pull-timeout", 500*time.Millisecond, "per-attempt pull/push deadline under faults")
	retries := flag.Int("retries", 3, "attempts per pull/push under faults")
	failPermanent := flag.Bool("fail-permanent", false, "treat the kill as a permanent machine loss: heartbeat membership, dead-man declaration, deterministic failover")
	checkpointDir := flag.String("checkpoint-dir", "", "directory for crash-consistent checkpoints (failover restores from here)")
	checkpointEvery := flag.Int("checkpoint-every", 1, "checkpoint cadence in steps")
	deadman := flag.Int("deadman", janus.DefaultDeadManSteps, "consecutive missed heartbeat rounds before a machine is declared dead")
	flag.Parse()

	if *failPermanent && *killMachine < 0 {
		fmt.Fprintln(os.Stderr, "januslive: -fail-permanent needs -kill-machine")
		os.Exit(2)
	}
	if *failPermanent {
		*killTo = 0 // permanent means the server never comes back
	}
	faulted := *killMachine >= 0 || *drop > 0 || *delay > 0
	cfg := janus.LiveConfig{
		Machines: *machines, WorkersPerNode: *workers,
		NumExperts: *experts, TopK: *topk, Hidden: *hidden,
		TokensPerWorker: *tokens, Seed: *seed, Credits: 4,
	}
	if faulted {
		inj := janus.NewFaultInjector(*seed)
		if *killMachine >= 0 {
			inj.Kill(janus.MachineLabel(*killMachine), *killFrom, *killTo)
		}
		if *drop > 0 || *delay > 0 {
			inj.AddRule(janus.FaultRule{Fault: janus.Fault{DropProb: *drop, Delay: *delay}})
		}
		cfg.Injector = inj
		cfg.StaleFallback = true
		cfg.PullTimeout = *pullTimeout
		cfg.PullRetries = *retries
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if *failPermanent {
		cfg.FailoverEnabled = true
		cfg.DeadManSteps = *deadman
	}
	if *checkpointDir != "" {
		cfg.CheckpointDir = *checkpointDir
		cfg.CheckpointEvery = *checkpointEvery
	}

	cl, err := janus.StartLiveCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "januslive:", err)
		os.Exit(1)
	}
	defer cl.Close()

	fmt.Printf("live cluster: %d machines x %d workers, %d experts (H=%d), %d tokens/worker, topK=%d\n",
		*machines, *workers, *experts, *hidden, *tokens, *topk)
	if faulted {
		fmt.Printf("fault policy: kill-machine=%d window=[%d,%d) drop=%.2f delay=%v (stale-weights fallback on)\n",
			*killMachine, *killFrom, *killTo, *drop, *delay)
	}

	ref := cl.RunExpertCentricReference()
	var last janus.LiveResult
	degradedTotal := 0
	for s := 1; s <= *steps; s++ {
		start := time.Now()
		res, err := cl.RunDataCentric()
		if err != nil {
			fmt.Fprintf(os.Stderr, "januslive: step %d: %v\n", s, err)
			os.Exit(1)
		}
		last = res
		degradedTotal += res.DegradedSteps
		if *steps > 1 || faulted {
			mode := "ok"
			if res.Degraded() {
				mode = fmt.Sprintf("DEGRADED (stale=%d max-staleness=%d dropped-grads=%d)",
					res.StaleFetches, res.MaxStalenessSteps, res.DroppedGrads)
			}
			alive := ""
			if *failPermanent {
				alive = fmt.Sprintf("  alive=%d/%d", res.AliveMachines, *machines)
			}
			fmt.Printf("step %2d: %6.1fms  %s%s  [%v]\n",
				s, float64(time.Since(start).Microseconds())/1e3, mode, alive, res.Robust)
		}
	}

	// A permanently dead machine's workers compute nothing: their output
	// slots are nil and only survivors are compared.
	maxDiff, survivors := 0.0, 0
	for w := range ref {
		if last.Outputs[w] == nil {
			continue
		}
		survivors++
		if d := tensor.MaxAbsDiff(last.Outputs[w], ref[w]); d > maxDiff {
			maxDiff = d
		}
	}
	tokenBytes := cl.TokenExchangeBytes()
	fmt.Printf("paradigm equivalence:   max |Δ| vs expert-centric reference = %g\n", maxDiff)
	fmt.Printf("expert pulls served:    %d (single flight per machine)\n", last.PullsServed)
	fmt.Printf("cross-machine traffic:  data-centric %d bytes, token exchange would be %d bytes",
		last.CrossMachineBytes, tokenBytes)
	if last.CrossMachineBytes > 0 {
		fmt.Printf("  (%.1fx reduction)", float64(tokenBytes)/float64(last.CrossMachineBytes))
	}
	fmt.Println()
	if faulted || degradedTotal > 0 {
		fmt.Printf("robustness:             %d/%d steps degraded; cumulative %v\n",
			degradedTotal, *steps, cl.RobustnessTotals())
	}
	if *failPermanent {
		fmt.Printf("membership:             %d/%d machines alive after the run\n",
			last.AliveMachines, *machines)
	}
	if maxDiff != 0 {
		fmt.Fprintln(os.Stderr, "januslive: outputs differ from reference")
		os.Exit(1)
	}
	if survivors < len(ref) {
		fmt.Printf("OK: all %d surviving workers bit-identical to the reference (failed machine's workers excluded)\n", survivors)
		return
	}
	fmt.Println("OK: data-centric execution over real sockets is bit-identical to the reference")
}
