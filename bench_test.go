// Benchmarks regenerating every table and figure of the Janus paper's
// evaluation, plus ablations of the design choices DESIGN.md calls out.
// Each benchmark runs the corresponding experiment end to end and
// attaches the headline reproduced numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the full reproduction alongside timing. EXPERIMENTS.md records
// paper-vs-measured for each.
package janus

import (
	"testing"

	"janus/internal/config"
	"janus/internal/experiments"
	"janus/internal/livecluster"
	"janus/internal/topology"
	"janus/internal/trainrun"
)

// runExp runs a registered experiment b.N times, keeping the last
// result for metric reporting.
func runExp(b *testing.B, id string) experiments.Result {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = e.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1Traffic regenerates Table 1 (per-machine inter-node
// traffic under both paradigms, analytic and measured).
func BenchmarkTable1Traffic(b *testing.B) {
	res := runExp(b, "table1").(*experiments.Table1Result)
	for _, row := range res.Rows {
		if row.Model == "MoE-TransformerXL" && row.NumGPUs == 32 {
			b.ReportMetric(row.ECMeasuredGiB/row.DCMeasuredGiB, "xl32-traffic-ratio")
		}
	}
}

// BenchmarkFig3A2AShare regenerates Figure 3 (All-to-All share of the
// iteration under the expert-centric paradigm).
func BenchmarkFig3A2AShare(b *testing.B) {
	res := runExp(b, "fig3").(*experiments.Fig3Result)
	var min, max float64 = 1, 0
	for _, row := range res.Rows {
		if row.A2AShare < min {
			min = row.A2AShare
		}
		if row.A2AShare > max {
			max = row.A2AShare
		}
	}
	b.ReportMetric(min*100, "min-share-%")
	b.ReportMetric(max*100, "max-share-%")
}

// BenchmarkGoodput regenerates the §3.1 goodput stress test.
func BenchmarkGoodput(b *testing.B) {
	res := runExp(b, "goodput").(*experiments.GoodputResult)
	b.ReportMetric(res.IntraGbps, "intra-Gbps")
	b.ReportMetric(res.InterGbps, "inter-Gbps")
}

// BenchmarkFig7Stagger regenerates Figure 7 (same-order vs staggered
// internal pulls).
func BenchmarkFig7Stagger(b *testing.B) {
	res := runExp(b, "fig7").(*experiments.Fig7Result)
	b.ReportMetric(res.Speedup, "staggered-speedup")
}

// BenchmarkFig9PCIe regenerates Figure 9 (PCIe-switch-aware copies).
func BenchmarkFig9PCIe(b *testing.B) {
	res := runExp(b, "fig9").(*experiments.Fig9Result)
	b.ReportMetric(res.Speedup, "switch-aware-speedup")
}

// BenchmarkFig12Ablation regenerates Figure 12 (data-centric, +topo,
// +prefetch over the expert-centric paradigm in Janus).
func BenchmarkFig12Ablation(b *testing.B) {
	res := runExp(b, "fig12").(*experiments.Fig12Result)
	for _, row := range res.Rows {
		if row.Model == "MoE-GPT" {
			b.ReportMetric(row.PlusPrefetch, "gpt-all-opts-speedup")
		}
	}
}

// BenchmarkFig13Overlap regenerates Figure 13 (prefetch overlap on the
// MoE-GPT forward pass).
func BenchmarkFig13Overlap(b *testing.B) {
	res := runExp(b, "fig13").(*experiments.Fig13Result)
	b.ReportMetric(res.ForwardMs, "fwd-ms")
	b.ReportMetric(res.OverlapMs, "overlap-ms")
	b.ReportMetric(float64(res.ExpertsEarly), "experts-early")
}

// BenchmarkFig14EndToEnd regenerates Figure 14 (Janus vs Tutel).
func BenchmarkFig14EndToEnd(b *testing.B) {
	res := runExp(b, "fig14").(*experiments.Fig14Result)
	for _, row := range res.Rows {
		switch row.Model {
		case "MoE-BERT":
			b.ReportMetric(row.Speedup, "bert-speedup")
		case "MoE-GPT":
			b.ReportMetric(row.Speedup, "gpt-speedup")
		case "MoE-TransformerXL":
			b.ReportMetric(row.Speedup, "xl-speedup")
		}
	}
}

// BenchmarkFig15BatchSize regenerates Figure 15 (batch sensitivity).
func BenchmarkFig15BatchSize(b *testing.B) {
	res := runExp(b, "fig15").(*experiments.SensitivityResult)
	for _, row := range res.Rows {
		if row.Model == "MoE-GPT" && row.Value == 128 {
			b.ReportMetric(row.Speedup, "gpt-b128-speedup")
		}
	}
}

// BenchmarkFig16SeqLen regenerates Figure 16 (sequence-length
// sensitivity, including the Tutel OOM at MoE-BERT S=512).
func BenchmarkFig16SeqLen(b *testing.B) {
	res := runExp(b, "fig16").(*experiments.SensitivityResult)
	for _, row := range res.Rows {
		if row.Model == "MoE-BERT" && row.Value == 512 && row.TutelOOM {
			b.ReportMetric(1, "tutel-oom-reproduced")
		}
	}
}

// BenchmarkFig17PRMoE regenerates Figure 17 (the unified paradigm on
// PR-MoE at 16 and 32 GPUs).
func BenchmarkFig17PRMoE(b *testing.B) {
	res := runExp(b, "fig17").(*experiments.Fig17Result)
	for _, row := range res.Rows {
		if row.Scale == "16 GPUs" {
			b.ReportMetric(row.SpeedupEC, "16gpu-unified-speedup")
		} else {
			b.ReportMetric(row.SpeedupEC, "32gpu-unified-speedup")
		}
	}
}

// --- ablation benches for DESIGN.md's called-out choices -------------------

// BenchmarkAblationCreditSize sweeps the credit-based buffer capacity:
// the §5.1.1 design says a small buffer suffices because compute
// overlaps the next fetch; the sweep shows diminishing returns past a
// few credits.
func BenchmarkAblationCreditSize(b *testing.B) {
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)
	for _, credits := range []int{1, 2, 4, 8, 16} {
		credits := credits
		b.Run(benchName("credits", credits), func(b *testing.B) {
			var iter float64
			for i := 0; i < b.N; i++ {
				rep, err := TrainJanus(JanusConfig{
					Model: model, Spec: spec,
					TopoAware: true, Prefetch: true,
					CreditSize: credits, SkipMemoryCheck: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				iter = rep.IterationTime
			}
			b.ReportMetric(iter*1e3, "iter-ms")
		})
	}
}

// BenchmarkAblationPolicyThreshold sweeps the R threshold of the
// unified policy on PR-MoE: too low converts low-gain blocks and loses
// to the PCIe ceiling; too high leaves high-gain blocks on All-to-All.
func BenchmarkAblationPolicyThreshold(b *testing.B) {
	model := config.PRMoETransformerXL(32, 128, 64)
	spec := topology.DefaultSpec(4)
	for _, thr := range []float64{0.5, 1, 2, 4, 16} {
		thr := thr
		b.Run(benchName("threshold", int(thr*10)), func(b *testing.B) {
			var iter float64
			for i := 0; i < b.N; i++ {
				rep, err := TrainJanus(JanusConfig{
					Model: model, Spec: spec,
					Policy:    Policy{RThreshold: thr},
					TopoAware: true, Prefetch: true, SkipMemoryCheck: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				iter = rep.IterationTime
			}
			b.ReportMetric(iter*1e3, "iter-ms")
		})
	}
}

// BenchmarkAblationHierarchicalA2A compares the baseline's flat and 2D
// All-to-All algorithms (Tutel's hierarchical optimization).
func BenchmarkAblationHierarchicalA2A(b *testing.B) {
	model := config.MoETransformerXL(32)
	spec := topology.DefaultSpec(4)
	for _, hier := range []bool{false, true} {
		hier := hier
		name := "flat"
		if hier {
			name = "hierarchical"
		}
		b.Run(name, func(b *testing.B) {
			var iter float64
			for i := 0; i < b.N; i++ {
				rep, err := TrainExpertCentric(BaselineConfig{
					Model: model, Spec: spec, Hierarchical: hier, SkipMemoryCheck: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				iter = rep.IterationTime
			}
			b.ReportMetric(iter*1e3, "iter-ms")
		})
	}
}

// BenchmarkAblationCacheManager compares the hierarchical fetch (§5.1.2)
// against per-worker direct pulls: the Cache Manager cuts the forward
// cross-node fetch volume by m.
func BenchmarkAblationCacheManager(b *testing.B) {
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "cache"
		if disabled {
			name = "no-cache"
		}
		b.Run(name, func(b *testing.B) {
			var rep Report
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = TrainJanus(JanusConfig{
					Model: model, Spec: spec, TopoAware: true, Prefetch: true,
					DisableCache: disabled, SkipMemoryCheck: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.IterationTime*1e3, "iter-ms")
			b.ReportMetric(rep.InterNodeEgressBytes/(1<<30), "inter-GiB")
		})
	}
}

// BenchmarkStragglerJitter regenerates the §3.2 jitter extension.
func BenchmarkStragglerJitter(b *testing.B) {
	res := runExp(b, "straggler").(*experiments.StragglerResult)
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.TutelAddedMs, "tutel-added-ms")
	b.ReportMetric(last.JanusAddedMs, "janus-added-ms")
}

// BenchmarkTrainRun measures a short multi-iteration training run with
// gate drift (the paper's averaged-profile methodology).
func BenchmarkTrainRun(b *testing.B) {
	var res trainrun.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = trainrun.Run(trainrun.Config{
			Engine: trainrun.Janus, Model: config.MoEGPT(32),
			Spec: topology.DefaultSpec(4), Iterations: 4,
			SkewStart: 0.1, SkewEnd: 0.8, Seed: 5,
			TopoAware: true, Prefetch: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Time.Mean*1e3, "mean-iter-ms")
	b.ReportMetric(res.Throughput()/1e6, "Mtokens/s")
}

// BenchmarkLivePullProtocol measures the real TCP pull path end to end:
// one data-centric forward pass of a small live cluster per iteration.
func BenchmarkLivePullProtocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl, err := livecluster.Start(livecluster.Config{
			Machines: 2, WorkersPerNode: 2, NumExperts: 8, TopK: 2,
			Hidden: 32, TokensPerWorker: 128, Seed: 1, Credits: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cl.RunDataCentric(); err != nil {
			cl.Close()
			b.Fatal(err)
		}
		cl.Close()
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "=" + string(buf[i:])
}
