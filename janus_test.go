package janus

import (
	"testing"
)

// The quickstart path: both engines run through the public API and
// Janus wins on a Table-1 config.
func TestPublicAPIQuickstart(t *testing.T) {
	model := MoEBERT(16)
	spec := DefaultSpec(2)
	base, err := TrainExpertCentric(BaselineConfig{Model: model, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := TrainJanus(JanusConfig{Model: model, Spec: spec, TopoAware: true, Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.IterationTime < base.IterationTime) {
		t.Fatalf("janus %.1fms not faster than baseline %.1fms",
			fast.IterationTime*1e3, base.IterationTime*1e3)
	}
}

func TestBlockParadigmsPreview(t *testing.T) {
	cfg := JanusConfig{
		Model:  PRMoETransformerXL(16, 64, 32),
		Spec:   func() Spec { s := DefaultSpec(4); s.GPUsPerNode = 4; return s }(),
		Policy: ConservativePolicy(),
	}
	p := BlockParadigms(cfg)
	if p[2] != DataCentric || p[8] != ExpertCentric {
		t.Fatalf("paradigm preview wrong: %v", p)
	}
}

func TestAssignmentHelpers(t *testing.T) {
	bal := BalancedAssignment(4, 8, 64)
	if bal.ImbalanceFactor() != 1 {
		t.Fatal("balanced assignment imbalanced")
	}
	z := ZipfAssignment(4, 8, 64, 1.2, 1)
	if !(z.ImbalanceFactor() > 1) {
		t.Fatal("zipf assignment balanced")
	}
}

func TestExperimentRegistryAccessible(t *testing.T) {
	if len(Experiments()) != 18 {
		t.Fatalf("experiments = %d, want 18", len(Experiments()))
	}
	if _, ok, _ := RunExperiment("does-not-exist"); ok {
		t.Fatal("unknown experiment found")
	}
	res, ok, err := RunExperiment("goodput")
	if !ok || err != nil {
		t.Fatalf("goodput: ok=%v err=%v", ok, err)
	}
	if len(res.Render()) == 0 {
		t.Fatal("empty render")
	}
}

func TestLiveClusterThroughAPI(t *testing.T) {
	cl, err := StartLiveCluster(LiveConfig{
		Machines: 2, WorkersPerNode: 2, NumExperts: 8, TopK: 2,
		Hidden: 8, TokensPerWorker: 16, Seed: 3, Credits: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 4 {
		t.Fatalf("outputs = %d", len(res.Outputs))
	}
}
