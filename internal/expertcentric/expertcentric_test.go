package expertcentric

import (
	"math"
	"testing"

	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/engine"
	"janus/internal/gate"
	"janus/internal/metrics"
	"janus/internal/topology"
)

func run(t *testing.T, cfg Config) (rep struct {
	IterationTime, ForwardTime, CommBlockedTime, InterNodeEgressBytes float64
	OOM                                                               bool
	PerMachineEgress                                                  []float64
}) {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep.IterationTime = r.IterationTime
	rep.ForwardTime = r.ForwardTime
	rep.CommBlockedTime = r.CommBlockedTime
	rep.InterNodeEgressBytes = r.InterNodeEgressBytes
	rep.OOM = r.OOM
	rep.PerMachineEgress = r.PerMachineEgress
	return rep
}

func TestRunCompletesBERT(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	cfg := Config{Model: config.MoEBERT(32), Spec: topology.DefaultSpec(4)}
	r := run(t, cfg)
	if r.OOM {
		t.Fatal("unexpected OOM")
	}
	if r.IterationTime <= 0 || r.ForwardTime <= 0 || r.ForwardTime >= r.IterationTime {
		t.Fatalf("times: iter=%v fwd=%v", r.IterationTime, r.ForwardTime)
	}
	if r.CommBlockedTime <= 0 || r.CommBlockedTime >= r.IterationTime {
		t.Fatalf("comm blocked %v of %v", r.CommBlockedTime, r.IterationTime)
	}
}

// TestTrafficMatchesClosedForm: with balanced routing, the measured
// inter-node egress must match Table 1's Comm_EC formula
// (forward+backward, times MoE blocks, times machines) plus the
// analytically-known cross-machine share of the dense-gradient ring
// AllReduce.
func TestTrafficMatchesClosedForm(t *testing.T) {
	spec := topology.DefaultSpec(2)
	model := config.MoEGPT(16)
	r := run(t, Config{Model: model, Spec: spec})

	costs := engine.NewCosts(spec, model)
	nGPU := 16
	dgb := costs.DenseGradBytes(nGPU)
	// Ring over 16 GPUs: 2(N-1) steps, each step crosses the 2 machine
	// boundaries with one chunk of dgb/N each.
	arCross := float64(2*(nGPU-1)) * 2 * dgb / float64(nGPU)
	want := 2*costmodel.CommECForwardPerMachine(model.B, model.S, model.K, model.H, 8, 2)*2 + arCross
	if math.Abs(r.InterNodeEgressBytes-want)/want > 0.001 {
		t.Fatalf("inter-node bytes = %.0f, closed form %.0f", r.InterNodeEgressBytes, want)
	}
}

func TestEgressBalancedAcrossMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	r := run(t, Config{Model: config.MoEBERT(32), Spec: topology.DefaultSpec(4)})
	mean := 0.0
	for _, e := range r.PerMachineEgress {
		mean += e
	}
	mean /= float64(len(r.PerMachineEgress))
	for i, e := range r.PerMachineEgress {
		if math.Abs(e-mean)/mean > 0.05 {
			t.Fatalf("machine %d egress %.0f deviates from mean %.0f", i, e, mean)
		}
	}
}

func TestImbalanceSlowsIteration(t *testing.T) {
	spec := topology.DefaultSpec(2)
	model := config.MoEGPT(16)
	bal := run(t, Config{Model: model, Spec: spec})
	skew := run(t, Config{
		Model: model, Spec: spec,
		Assignment: func(block int) gate.Assignment {
			return gate.Zipf(16, 16, int(model.TokensPerWorker()), 1.2, 7)
		},
	})
	if skew.IterationTime <= bal.IterationTime {
		t.Fatalf("skewed iteration %.4f not slower than balanced %.4f",
			skew.IterationTime, bal.IterationTime)
	}
}

func TestHierarchicalNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	spec := topology.DefaultSpec(4)
	model := config.MoETransformerXL(32)
	flat := run(t, Config{Model: model, Spec: spec})
	hier := run(t, Config{Model: model, Spec: spec, Hierarchical: true})
	if hier.IterationTime > 1.5*flat.IterationTime {
		t.Fatalf("hierarchical %.4f much slower than flat %.4f", hier.IterationTime, flat.IterationTime)
	}
	if math.Abs(hier.InterNodeEgressBytes-flat.InterNodeEgressBytes)/flat.InterNodeEgressBytes > 0.01 {
		t.Fatal("hierarchical changed inter-node volume")
	}
}

// TestFig16OOM: MoE-BERT with S=512 (and the Fig. 16 sensitivity k=4)
// must OOM under the expert-centric paradigm on 80 GB GPUs.
func TestFig16OOM(t *testing.T) {
	model := config.MoEBERT(32)
	model.S = 512
	model.K = 4
	r := run(t, Config{Model: model, Spec: topology.DefaultSpec(4)})
	if !r.OOM {
		t.Fatal("expected OOM at S=512")
	}
	if r.IterationTime != 0 {
		t.Fatal("OOM run should not report a time")
	}
	model.S = 256
	r2 := run(t, Config{Model: model, Spec: topology.DefaultSpec(4)})
	if r2.OOM {
		t.Fatal("S=256 should fit")
	}
}

func TestSkipMemoryCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	model := config.MoEBERT(32)
	model.S = 512
	model.K = 4
	r := run(t, Config{Model: model, Spec: topology.DefaultSpec(4), SkipMemoryCheck: true})
	if r.OOM || r.IterationTime <= 0 {
		t.Fatal("SkipMemoryCheck did not bypass OOM")
	}
}

func TestTraceRecordsBlocksAndA2A(t *testing.T) {
	cfg := Config{Model: config.MoEGPT(16), Spec: topology.DefaultSpec(2), Trace: true}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	marks := r.Timeline.MarksNamed("fwd.block")
	if len(marks) != 12 {
		t.Fatalf("block marks = %d, want 12", len(marks))
	}
	for i := 1; i < len(marks); i++ {
		if marks[i].At < marks[i-1].At {
			t.Fatal("block completion marks out of order")
		}
	}
	a2a := r.Timeline.SpansOn("net")
	// 1 MoE block: 2 forward A2A + 2 backward A2A.
	if len(a2a) != 4 {
		t.Fatalf("a2a spans = %d, want 4", len(a2a))
	}
	if r.Timeline.BusyOn("m0g0") <= 0 {
		t.Fatal("no compute spans recorded")
	}
}

// Determinism: two identical runs produce identical timings and bytes.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Model: config.MoEBERT(16), Spec: topology.DefaultSpec(2)}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.IterationTime != b.IterationTime || a.InterNodeEgressBytes != b.InterNodeEgressBytes {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v",
			a.IterationTime, a.InterNodeEgressBytes, b.IterationTime, b.InterNodeEgressBytes)
	}
}

func TestInvalidModelRejected(t *testing.T) {
	if _, err := Run(Config{Model: config.MoEBERT(16), Spec: topology.DefaultSpec(4)}); err == nil {
		t.Fatal("16 experts on 32 GPUs accepted")
	}
}

// The Figure 3 shape: across the Table 1 configs, the A2A share of
// iteration time lands in the paper's reported 35-70% band.
func TestFig3ShareBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	for _, sc := range config.Table1Scenarios() {
		spec := topology.DefaultSpec(sc.NumGPUs / 8)
		model := sc.Model
		r := run(t, Config{Model: model, Spec: spec, Assignment: func(block int) gate.Assignment {
			return gate.Zipf(sc.NumGPUs, model.Blocks[block].NumExperts,
				int(model.TokensPerWorker()), 0.4, int64(block))
		}})
		share := r.CommBlockedTime / r.IterationTime
		if share < 0.25 || share > 0.88 {
			t.Errorf("%s/%d: A2A share %.1f%% outside the plausible band",
				model.Name, sc.NumGPUs, share*100)
		}
		t.Logf("%s/%d: iter %.1fms share %.1f%% traffic %.2f GiB",
			model.Name, sc.NumGPUs, r.IterationTime*1e3, share*100,
			metrics.GiB(r.InterNodeEgressBytes))
	}
}
