// Package expertcentric simulates one training iteration of an MoE
// model under the expert-centric paradigm: experts stay put and tokens
// travel through two synchronous All-to-All operations per MoE block
// per pass, exactly the communication structure of Tutel/DeepSpeed-MoE
// (§2.2 of the Janus paper). It is the baseline every Janus experiment
// compares against.
package expertcentric

import (
	"fmt"
	"math/rand"

	"janus/internal/collective"
	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/engine"
	"janus/internal/gate"
	"janus/internal/topology"
	"janus/internal/trace"
)

// Config describes one simulated iteration.
type Config struct {
	Model config.Model
	Spec  topology.Spec

	// Assignment returns the token routing for an MoE block. Nil means
	// balanced routing.
	Assignment func(block int) gate.Assignment

	// Hierarchical selects the 2D All-to-All (Tutel's hierarchical
	// optimization) instead of the flat pairwise algorithm.
	Hierarchical bool

	// SkipMemoryCheck disables the OOM check (used by experiments that
	// only care about timing).
	SkipMemoryCheck bool

	// Trace enables timeline recording (compute spans, A2A spans, block
	// completion marks).
	Trace bool

	// ComputeFactors optionally slows individual GPUs: the compute time
	// of global rank i is multiplied by ComputeFactors[i] (nil or 1.0
	// means nominal speed). Used by the straggler experiments — under
	// the synchronous All-to-All, one slow GPU gates everyone.
	ComputeFactors []float64

	// Jitter adds uniform per-op compute noise: each submitted op is
	// stretched by a factor drawn from [1, 1+Jitter], deterministically
	// from JitterSeed. Under synchronous collectives the iteration pays
	// the *maximum* draw at every block (§3.2's "fast machines wait for
	// slow machines").
	Jitter     float64
	JitterSeed int64

	// ForwardOnly runs inference: the iteration ends after the forward
	// pass (no backward All-to-Alls, no AllReduce, no optimizer).
	ForwardOnly bool
}

// factor returns the compute slowdown of a rank.
func (c Config) factor(rank int) float64 {
	if rank < len(c.ComputeFactors) && c.ComputeFactors[rank] > 0 {
		return c.ComputeFactors[rank]
	}
	return 1
}

type runner struct {
	cfg    Config
	c      *topology.Cluster
	costs  engine.Costs
	report engine.Report
	tl     *trace.Timeline

	ownerOf  func(block, expert int) int // expert -> owning worker
	assignOf map[int]gate.Assignment
	jrng     *rand.Rand
	bwdStart float64
}

// Run simulates one iteration and returns its report.
func Run(cfg Config) (engine.Report, error) {
	if err := cfg.Model.Validate(cfg.Spec.TotalGPUs()); err != nil {
		return engine.Report{}, err
	}
	c, err := topology.New(cfg.Spec)
	if err != nil {
		return engine.Report{}, err
	}
	r := &runner{
		cfg:   cfg,
		c:     c,
		costs: engine.NewCosts(cfg.Spec, cfg.Model),
		tl:    &trace.Timeline{},
		jrng:  rand.New(rand.NewSource(cfg.JitterSeed + 1)),
	}
	r.report.Model = cfg.Model.Name
	r.report.NumGPUs = c.NumGPUs()
	r.report.Paradigms = make([]config.Paradigm, len(cfg.Model.Blocks))
	r.report.Timeline = r.tl

	in := r.costs.FootprintInput(c.NumGPUs())
	r.report.PeakMemBytes = costmodel.WorkerFootprintEC(in, costmodel.DefaultMemoryParams())
	if !cfg.SkipMemoryCheck && r.report.PeakMemBytes > cfg.Spec.GPUMemBytes {
		r.report.OOM = true
		return r.report, nil
	}

	r.assignOf = make(map[int]gate.Assignment)
	for _, bi := range cfg.Model.MoEBlockIndices() {
		var a gate.Assignment
		if cfg.Assignment != nil {
			a = cfg.Assignment(bi)
		} else {
			a = gate.Balanced(c.NumGPUs(), cfg.Model.Blocks[bi].NumExperts, int(cfg.Model.TokensPerWorker()))
		}
		if err := a.Validate(); err != nil {
			return engine.Report{}, fmt.Errorf("expertcentric: block %d assignment: %w", bi, err)
		}
		r.assignOf[bi] = a
	}
	r.ownerOf = func(block, expert int) int {
		e := cfg.Model.ExpertsPerWorker(block, c.NumGPUs())
		return expert / e
	}
	if cfg.Trace {
		for _, g := range c.GPUs() {
			g := g
			g.Compute.OnSpan = func(name string, s, e float64) {
				r.tl.AddSpan(g.String(), name, s, e)
			}
		}
	}

	r.forwardBlock(0)
	c.Engine.Run()

	r.report.IterationTime = r.iterationEnd()
	r.report.FinishTraffic(c)
	return r.report, nil
}

func (r *runner) iterationEnd() float64 {
	return r.c.Engine.Now()
}

// dur applies a rank's straggler factor and the per-op jitter draw.
func (r *runner) dur(rank int, d float64) float64 {
	d *= r.cfg.factor(rank)
	if r.cfg.Jitter > 0 {
		d *= 1 + r.cfg.Jitter*r.jrng.Float64()
	}
	return d
}

// computeAll submits the same nominal-duration op to every GPU (scaled
// by its straggler factor and jitter) and fires then when all complete.
func (r *runner) computeAll(name string, dur float64, then func()) {
	b := engine.NewBarrier(r.c.NumGPUs(), then)
	for i, g := range r.c.GPUs() {
		g.Compute.Submit(name, r.dur(i, dur), b.Arrive)
	}
}

// computeEach submits a per-GPU duration (scaled likewise).
func (r *runner) computeEach(name string, durs []float64, then func()) {
	b := engine.NewBarrier(r.c.NumGPUs(), then)
	for i, g := range r.c.GPUs() {
		g.Compute.Submit(name, r.dur(i, durs[i]), b.Arrive)
	}
}

// dispatchSizes returns the All-to-All byte matrix for an MoE block's
// token dispatch: tokens of worker w routed to experts owned by worker
// v, in bytes.
func (r *runner) dispatchSizes(block int) [][]float64 {
	a := r.assignOf[block]
	nw := r.c.NumGPUs()
	sizes := make([][]float64, nw)
	tokB := costmodel.TokenBytes(r.cfg.Model.H)
	for w := 0; w < nw; w++ {
		sizes[w] = make([]float64, nw)
		for e := 0; e < a.NumExperts; e++ {
			v := r.ownerOf(block, e)
			if v != w {
				sizes[w][v] += float64(a.Counts[w][e]) * tokB
			}
		}
	}
	return sizes
}

func transpose(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range out {
		out[i] = make([]float64, len(m))
		for j := range m {
			out[i][j] = m[j][i]
		}
	}
	return out
}

// expertComputeDurs returns, per worker, the duration of computing its
// owned experts: one kernel per expert over that expert's global load
// (forward; scale by the backward factor at the call site by choosing
// the bwd variant).
func (r *runner) expertComputeDurs(block int, backward bool) []float64 {
	a := r.assignOf[block]
	nw := r.c.NumGPUs()
	durs := make([]float64, nw)
	for e := 0; e < a.NumExperts; e++ {
		owner := r.ownerOf(block, e)
		load := a.ExpertLoad(e)
		if backward {
			durs[owner] += r.costs.ExpertBwd(load)
		} else {
			durs[owner] += r.costs.ExpertFwd(load)
		}
	}
	return durs
}

// allToAll runs the configured A2A variant and accounts its wall time
// as communication-blocked time (every GPU waits on it).
func (r *runner) allToAll(name string, sizes [][]float64, then func()) {
	start := r.c.Engine.Now()
	done := func() {
		dur := r.c.Engine.Now() - start
		r.report.CommBlockedTime += dur
		if r.cfg.Trace {
			r.tl.AddSpan("net", name, start, r.c.Engine.Now())
		}
		then()
	}
	if r.cfg.Hierarchical {
		collective.HierarchicalAllToAll(r.c, sizes, name, done)
	} else {
		collective.AllToAll(r.c, r.c.GPUs(), sizes, name, done)
	}
}

func (r *runner) forwardBlock(b int) {
	model := r.cfg.Model
	if b == len(model.Blocks) {
		r.report.ForwardTime = r.c.Engine.Now()
		if r.cfg.ForwardOnly {
			return
		}
		r.backwardBlock(len(model.Blocks) - 1)
		return
	}
	blk := model.Blocks[b]
	next := func() {
		if r.cfg.Trace {
			r.tl.AddMark(fmt.Sprintf("fwd.block%d.done", b), r.c.Engine.Now())
		}
		r.forwardBlock(b + 1)
	}
	attn := fmt.Sprintf("attn.fwd.%d", b)
	if blk.Kind == config.Dense {
		r.computeAll(attn, r.costs.AttentionFwd(), func() {
			r.computeAll(fmt.Sprintf("ffn.fwd.%d", b), r.costs.DenseFFNFwd(), next)
		})
		return
	}
	r.report.Paradigms[b] = config.ExpertCentric
	dispatch := r.dispatchSizes(b)
	expertDurs := r.expertComputeDurs(b, false)
	r.computeAll(attn, r.costs.AttentionFwd(), func() {
		r.computeAll(fmt.Sprintf("gate.fwd.%d", b), r.costs.GateFwd(blk.NumExperts), func() {
			r.allToAll(fmt.Sprintf("a2a.dispatch.fwd.%d", b), dispatch, func() {
				r.computeEach(fmt.Sprintf("expert.fwd.%d", b), expertDurs, func() {
					r.allToAll(fmt.Sprintf("a2a.combine.fwd.%d", b), transpose(dispatch), next)
				})
			})
		})
	})
}

func (r *runner) backwardBlock(b int) {
	model := r.cfg.Model
	if r.bwdStart == 0 {
		r.bwdStart = r.c.Engine.Now()
		// The dense-gradient AllReduce overlaps with backward compute;
		// it shares the NICs with the token traffic, which is exactly
		// the contention real systems see.
		// The AllReduce has no completion dependency beyond the engine
		// draining: the iteration ends at the later of the compute chain
		// and this collective.
		collective.RingAllReduce(r.c, r.c.GPUs(), r.costs.DenseGradBytes(r.c.NumGPUs()),
			"allreduce.dense", nil)
	}
	if b < 0 {
		r.computeAll("optimizer", r.costs.OptimizerStep(r.c.NumGPUs()), func() {
			r.report.BackwardTime = r.c.Engine.Now() - r.report.ForwardTime
		})
		return
	}
	blk := model.Blocks[b]
	next := func() { r.backwardBlock(b - 1) }
	if blk.Kind == config.Dense {
		r.computeAll(fmt.Sprintf("dense.bwd.%d", b), r.costs.AttentionBwd()+r.costs.DenseFFNBwd(), next)
		return
	}
	dispatch := r.dispatchSizes(b)
	expertDurs := r.expertComputeDurs(b, true)
	// Backward mirrors forward: upstream gradients dY travel the
	// dispatch pattern, experts compute their gradients, then dX
	// returns along the combine pattern, then attention backward.
	r.allToAll(fmt.Sprintf("a2a.dy.bwd.%d", b), dispatch, func() {
		r.computeEach(fmt.Sprintf("expert.bwd.%d", b), expertDurs, func() {
			r.allToAll(fmt.Sprintf("a2a.dx.bwd.%d", b), transpose(dispatch), func() {
				r.computeAll(fmt.Sprintf("attn.bwd.%d", b), r.costs.AttentionBwd(), next)
			})
		})
	})
}
