package metrics

import (
	"fmt"
	"sync/atomic"
)

// Degradation-ladder rungs. Every answered request is counted at the
// rung that produced its bytes (the worst rung any of its expert pulls
// used); shed requests never produce an answer and are counted once at
// RungShed. The rungs are ordered best-first so "max rung" is the
// natural fold across a request's expert pulls.
const (
	RungFull    = 0 // full quality: every pull answered by the owner
	RungReplica = 1 // at least one pull served from an in-sync replica
	RungStale   = 2 // stale local weights within MaxStalenessSteps
	RungTop1    = 3 // routed top-1 instead of top-k under pressure
	RungShed    = 4 // rejected with retry-after; never answered
)

// ServingRungs is the number of ladder rungs.
const ServingRungs = 5

// RungName returns the short human label of a ladder rung.
func RungName(r int) string {
	switch r {
	case RungFull:
		return "full"
	case RungReplica:
		return "replica"
	case RungStale:
		return "stale"
	case RungTop1:
		return "top1"
	case RungShed:
		return "shed"
	}
	return fmt.Sprintf("rung%d", r)
}

// servingShards spreads the per-request counters across cache lines,
// the same treatment the transport's wire counters get: every request
// on every front-end worker bumps these, so a single atomic set would
// become a contended line under a flash crowd. Writers add through a
// per-worker handle; readers fold the shards.
const servingShards = 8

type servingShard struct {
	admitted        atomic.Int64
	shed            atomic.Int64
	deadlineExpired atomic.Int64
	hedged          atomic.Int64
	canaryServed    atomic.Int64
	rolledBack      atomic.Int64
	answered        [ServingRungs]atomic.Int64
	_               [40]byte // pad the 88-byte shard to two cache lines
}

// Serving tracks the request plane's counter family, usable
// concurrently. Hot-path writers go through a Handle (one per worker);
// reads fold the shards into an immutable ServingSnapshot.
type Serving struct {
	shards [servingShards]servingShard
	seq    atomic.Uint32
}

// Handle returns a write handle bound to one shard, round-robin across
// callers. A worker keeps its handle for its lifetime so its adds stay
// on one cache line.
func (s *Serving) Handle() *ServingHandle {
	return &ServingHandle{shard: &s.shards[s.seq.Add(1)%servingShards]}
}

// ServingHandle is one worker's write port into a Serving family.
type ServingHandle struct{ shard *servingShard }

// AddAdmitted counts a request accepted past admission control.
func (h *ServingHandle) AddAdmitted() { h.shard.admitted.Add(1) }

// AddShed counts a request rejected with retry-after. The caller also
// records the terminal rung via AddAnswered(RungShed) — kept separate
// so "shed and never answered" is checkable as an invariant.
func (h *ServingHandle) AddShed() { h.shard.shed.Add(1) }

// AddDeadlineExpired counts work cancelled because its budget ran out
// (at admission, batching, the remote store, or answer emission).
func (h *ServingHandle) AddDeadlineExpired() { h.shard.deadlineExpired.Add(1) }

// AddHedged counts an expert pull that opened a hedge leg against a
// gray-slow owner.
func (h *ServingHandle) AddHedged() { h.shard.hedged.Add(1) }

// AddAnswered counts a request's terminal state at the ladder rung that
// produced it. Out-of-range rungs are clamped to RungShed.
func (h *ServingHandle) AddAnswered(rung int) {
	if rung < 0 || rung >= ServingRungs {
		rung = RungShed
	}
	h.shard.answered[rung].Add(1)
}

// AddCanaryServed counts an answer computed from the canary checkpoint.
func (h *ServingHandle) AddCanaryServed() { h.shard.canaryServed.Add(1) }

// AddRolledBack counts a canary generation fenced off after an SLO
// regression.
func (h *ServingHandle) AddRolledBack() { h.shard.rolledBack.Add(1) }

// Snapshot folds the shards into an immutable view.
func (s *Serving) Snapshot() ServingSnapshot {
	var out ServingSnapshot
	for i := range s.shards {
		sh := &s.shards[i]
		out.Admitted += sh.admitted.Load()
		out.Shed += sh.shed.Load()
		out.DeadlineExpired += sh.deadlineExpired.Load()
		out.Hedged += sh.hedged.Load()
		out.CanaryServed += sh.canaryServed.Load()
		out.RolledBack += sh.rolledBack.Load()
		for r := 0; r < ServingRungs; r++ {
			out.Answered[r] += sh.answered[r].Load()
		}
	}
	return out
}

// ServingSnapshot is an immutable view of a Serving counter family.
type ServingSnapshot struct {
	Admitted        int64
	Shed            int64
	DeadlineExpired int64
	Hedged          int64
	CanaryServed    int64
	RolledBack      int64
	Answered        [ServingRungs]int64
}

// Sub returns the events accumulated since an earlier snapshot.
func (s ServingSnapshot) Sub(earlier ServingSnapshot) ServingSnapshot {
	out := ServingSnapshot{
		Admitted:        s.Admitted - earlier.Admitted,
		Shed:            s.Shed - earlier.Shed,
		DeadlineExpired: s.DeadlineExpired - earlier.DeadlineExpired,
		Hedged:          s.Hedged - earlier.Hedged,
		CanaryServed:    s.CanaryServed - earlier.CanaryServed,
		RolledBack:      s.RolledBack - earlier.RolledBack,
	}
	for r := 0; r < ServingRungs; r++ {
		out.Answered[r] = s.Answered[r] - earlier.Answered[r]
	}
	return out
}

// Add returns the element-wise sum of two snapshots.
func (s ServingSnapshot) Add(o ServingSnapshot) ServingSnapshot {
	out := ServingSnapshot{
		Admitted:        s.Admitted + o.Admitted,
		Shed:            s.Shed + o.Shed,
		DeadlineExpired: s.DeadlineExpired + o.DeadlineExpired,
		Hedged:          s.Hedged + o.Hedged,
		CanaryServed:    s.CanaryServed + o.CanaryServed,
		RolledBack:      s.RolledBack + o.RolledBack,
	}
	for r := 0; r < ServingRungs; r++ {
		out.Answered[r] = s.Answered[r] + o.Answered[r]
	}
	return out
}

// IsZero reports whether no serving events were recorded.
func (s ServingSnapshot) IsZero() bool { return s == ServingSnapshot{} }

// AnsweredTotal returns the answers across the non-shed rungs.
func (s ServingSnapshot) AnsweredTotal() int64 {
	var n int64
	for r := 0; r < RungShed; r++ {
		n += s.Answered[r]
	}
	return n
}

// DegradedTotal returns the answers produced below full quality.
func (s ServingSnapshot) DegradedTotal() int64 {
	var n int64
	for r := RungReplica; r < RungShed; r++ {
		n += s.Answered[r]
	}
	return n
}

func (s ServingSnapshot) String() string {
	return fmt.Sprintf("admitted=%d shed=%d deadline-expired=%d hedged=%d full=%d replica=%d stale=%d top1=%d shed-terminal=%d canary=%d rolled-back=%d",
		s.Admitted, s.Shed, s.DeadlineExpired, s.Hedged,
		s.Answered[RungFull], s.Answered[RungReplica], s.Answered[RungStale],
		s.Answered[RungTop1], s.Answered[RungShed], s.CanaryServed, s.RolledBack)
}
