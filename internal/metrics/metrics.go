// Package metrics aggregates simulation measurements: traffic by link
// class, distribution summaries, and the speedup tables the paper's
// figures report.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"janus/internal/fabric"
)

// TrafficByClass sums carried bytes over links grouped by their class
// label ("nvlink", "nic", "pcie-gpu", "pcie-host").
func TrafficByClass(links []*fabric.Link) map[string]float64 {
	out := make(map[string]float64)
	for _, l := range links {
		out[l.Class()] += l.CarriedBytes()
	}
	return out
}

// Summary describes a sample distribution.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Sum            float64
}

// Summarize computes a Summary; an empty input returns the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(s)-1))
		return s[idx]
	}
	return Summary{
		N: len(s), Mean: sum / float64(len(s)),
		Min: s[0], Max: s[len(s)-1],
		P50: q(0.50), P90: q(0.90), P99: q(0.99),
		Sum: sum,
	}
}

// SpeedupRow is one line of a figure-style comparison.
type SpeedupRow struct {
	Name     string
	Baseline float64 // e.g. Tutel iteration seconds
	Value    float64 // e.g. Janus iteration seconds
}

// Speedup returns Baseline/Value (higher is better for the new system).
func (r SpeedupRow) Speedup() float64 {
	if r.Value == 0 {
		return 0
	}
	return r.Baseline / r.Value
}

// FormatSpeedupTable renders rows as an aligned ASCII table.
func FormatSpeedupTable(title string, rows []SpeedupRow, baselineLabel, valueLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := len("config")
	for _, r := range rows {
		if len(r.Name) > w {
			w = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s\n", w, "config", baselineLabel, valueLabel, "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %10.1fms  %10.1fms  %7.2fx\n",
			w, r.Name, r.Baseline*1e3, r.Value*1e3, r.Speedup())
	}
	return b.String()
}

// GiB converts bytes to binary gigabytes (the unit of Table 1).
func GiB(bytes float64) float64 { return bytes / (1024 * 1024 * 1024) }

// Gbps converts a bytes-and-seconds pair to gigabits per second.
func Gbps(bytes, seconds float64) float64 {
	if seconds == 0 {
		return 0
	}
	return bytes * 8 / seconds / 1e9
}
