// Package metrics aggregates simulation measurements: traffic by link
// class, distribution summaries, and the speedup tables the paper's
// figures report.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"janus/internal/fabric"
)

// TrafficByClass sums carried bytes over links grouped by their class
// label ("nvlink", "nic", "pcie-gpu", "pcie-host").
func TrafficByClass(links []*fabric.Link) map[string]float64 {
	out := make(map[string]float64)
	for _, l := range links {
		out[l.Class()] += l.CarriedBytes()
	}
	return out
}

// Summary describes a sample distribution.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	Sum            float64
}

// Summarize computes a Summary; an empty input returns the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	q := func(p float64) float64 {
		idx := int(p * float64(len(s)-1))
		return s[idx]
	}
	return Summary{
		N: len(s), Mean: sum / float64(len(s)),
		Min: s[0], Max: s[len(s)-1],
		P50: q(0.50), P90: q(0.90), P99: q(0.99),
		Sum: sum,
	}
}

// SpeedupRow is one line of a figure-style comparison.
type SpeedupRow struct {
	Name     string
	Baseline float64 // e.g. Tutel iteration seconds
	Value    float64 // e.g. Janus iteration seconds
}

// Speedup returns Baseline/Value (higher is better for the new system).
func (r SpeedupRow) Speedup() float64 {
	if r.Value == 0 {
		return 0
	}
	return r.Baseline / r.Value
}

// FormatSpeedupTable renders rows as an aligned ASCII table.
func FormatSpeedupTable(title string, rows []SpeedupRow, baselineLabel, valueLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := len("config")
	for _, r := range rows {
		if len(r.Name) > w {
			w = len(r.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %12s  %12s  %8s\n", w, "config", baselineLabel, valueLabel, "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %10.1fms  %10.1fms  %7.2fx\n",
			w, r.Name, r.Baseline*1e3, r.Value*1e3, r.Speedup())
	}
	return b.String()
}

// Robustness counts fault-tolerance events on a live transport path:
// retried requests, per-attempt deadline expiries, re-established peer
// connections, deduplicated gradient retransmits, experts served from a
// stale local cache, and iterations that completed in degraded mode.
// The zero value is ready to use; all methods are safe for concurrent
// use.
type Robustness struct {
	retries       atomic.Int64
	timeouts      atomic.Int64
	reconnects    atomic.Int64
	gradDups      atomic.Int64
	staleServes   atomic.Int64
	degradedSteps atomic.Int64

	// Permanent-failure counters: membership transitions, experts
	// re-homed to a survivor, checkpoint saves (with volume and
	// latency), and restores from a checkpoint during failover.
	failovers       atomic.Int64
	rehomedExperts  atomic.Int64
	restores        atomic.Int64
	checkpoints     atomic.Int64
	checkpointBytes atomic.Int64
	checkpointNanos atomic.Int64

	// Partition/gray-failure counters: requests rejected by epoch
	// fencing, heartbeat rounds a machine froze for lack of quorum, and
	// expert pulls hedged to a replica because the owner looked slow
	// (with how many the hedge actually won).
	fenceRejections atomic.Int64
	quorumStalls    atomic.Int64
	hedgedPulls     atomic.Int64
	hedgesWon       atomic.Int64

	// Elastic-membership counters: machines admitted into a running
	// cluster, experts whose ownership moved through a completed live
	// migration, and migrations that were interrupted and rolled back to
	// the old owner.
	joins              atomic.Int64
	migrations         atomic.Int64
	migrationRollbacks atomic.Int64

	// Replication counters: versioned weight streams acked by replicas,
	// streams that could not be delivered (the replica lags until the
	// next sync or anti-entropy sweep), in-sync replicas promoted to
	// owner on failover, versioned pulls served from an in-sync replica
	// with zero staleness, hedges won by an in-sync replica, replicas
	// re-streamed by the anti-entropy sweep, and replica-set membership
	// retargets (migration FENCE substitutions and sweep top-ups).
	replPushes    atomic.Int64
	replFailures  atomic.Int64
	promotions    atomic.Int64
	replicaServes atomic.Int64
	inSyncHedges  atomic.Int64
	replRepairs   atomic.Int64
	replRetargets atomic.Int64
}

// AddRetry records one retried request attempt.
func (r *Robustness) AddRetry() { r.retries.Add(1) }

// AddTimeout records one per-attempt deadline expiry.
func (r *Robustness) AddTimeout() { r.timeouts.Add(1) }

// AddReconnect records one re-dial of a previously connected peer.
func (r *Robustness) AddReconnect() { r.reconnects.Add(1) }

// AddGradDup records one deduplicated gradient retransmit.
func (r *Robustness) AddGradDup() { r.gradDups.Add(1) }

// AddStaleServe records one expert served from a stale local cache.
func (r *Robustness) AddStaleServe() { r.staleServes.Add(1) }

// AddDegradedStep records one iteration completed in degraded mode.
func (r *Robustness) AddDegradedStep() { r.degradedSteps.Add(1) }

// AddFailover records one machine declared permanently dead and its
// experts re-homed.
func (r *Robustness) AddFailover() { r.failovers.Add(1) }

// AddRehomedExperts records n experts whose ownership moved to another
// machine (during failover or a rejoin reclaim).
func (r *Robustness) AddRehomedExperts(n int64) { r.rehomedExperts.Add(n) }

// AddRestore records one expert's weights reloaded from a checkpoint.
func (r *Robustness) AddRestore() { r.restores.Add(1) }

// AddCheckpoint records one committed checkpoint with its payload
// bytes and wall-clock save latency.
func (r *Robustness) AddCheckpoint(bytes int64, elapsedNanos int64) {
	r.checkpoints.Add(1)
	r.checkpointBytes.Add(bytes)
	r.checkpointNanos.Add(elapsedNanos)
}

// AddFenceRejection records one request rejected because its sender's
// membership epoch was stale.
func (r *Robustness) AddFenceRejection() { r.fenceRejections.Add(1) }

// AddQuorumStall records one heartbeat round in which a machine could
// not reach a majority and froze its membership transitions.
func (r *Robustness) AddQuorumStall() { r.quorumStalls.Add(1) }

// AddHedgedPull records one expert pull hedged to a local replica
// because the owning peer was flagged slow.
func (r *Robustness) AddHedgedPull() { r.hedgedPulls.Add(1) }

// AddHedgeWon records one hedged pull whose replica answer was used
// before the slow peer responded.
func (r *Robustness) AddHedgeWon() { r.hedgesWon.Add(1) }

// AddJoin records one machine admitted into the running cluster.
func (r *Robustness) AddJoin() { r.joins.Add(1) }

// AddMigration records one expert ownership handoff completed live.
func (r *Robustness) AddMigration() { r.migrations.Add(1) }

// AddMigrationRollback records one interrupted migration rolled back
// to the (still fenced-off) old owner.
func (r *Robustness) AddMigrationRollback() { r.migrationRollbacks.Add(1) }

// AddReplPush records one versioned weight stream acked by a replica.
func (r *Robustness) AddReplPush() { r.replPushes.Add(1) }

// AddReplFailure records one replica stream that could not be
// delivered; the replica lags until a later sync repairs it.
func (r *Robustness) AddReplFailure() { r.replFailures.Add(1) }

// AddPromotion records one in-sync replica promoted to owner during
// failover — a lossless recovery, no staleness accounted.
func (r *Robustness) AddPromotion() { r.promotions.Add(1) }

// AddReplicaServe records one versioned pull served from an in-sync
// replica at exactly the requested version (not counted stale).
func (r *Robustness) AddReplicaServe() { r.replicaServes.Add(1) }

// AddInSyncHedge records one hedged pull won by a replica holding the
// owner's current version (not counted stale).
func (r *Robustness) AddInSyncHedge() { r.inSyncHedges.Add(1) }

// AddReplRepair records one replica re-streamed by the anti-entropy
// sweep because its version digest diverged from the owner's.
func (r *Robustness) AddReplRepair() { r.replRepairs.Add(1) }

// AddReplRetarget records one replica-set membership fix: a migration
// FENCE substituting the new owner out of the set, or the anti-entropy
// sweep replacing a dead or promoted replica holder.
func (r *Robustness) AddReplRetarget() { r.replRetargets.Add(1) }

// Snapshot returns a point-in-time copy of the counters.
func (r *Robustness) Snapshot() RobustnessSnapshot {
	return RobustnessSnapshot{
		Retries:         r.retries.Load(),
		Timeouts:        r.timeouts.Load(),
		Reconnects:      r.reconnects.Load(),
		GradDups:        r.gradDups.Load(),
		StaleServes:     r.staleServes.Load(),
		DegradedSteps:   r.degradedSteps.Load(),
		Failovers:       r.failovers.Load(),
		RehomedExperts:  r.rehomedExperts.Load(),
		Restores:        r.restores.Load(),
		Checkpoints:     r.checkpoints.Load(),
		CheckpointBytes: r.checkpointBytes.Load(),
		CheckpointNanos: r.checkpointNanos.Load(),
		FenceRejections: r.fenceRejections.Load(),
		QuorumStalls:    r.quorumStalls.Load(),
		HedgedPulls:     r.hedgedPulls.Load(),
		HedgesWon:       r.hedgesWon.Load(),

		Joins:              r.joins.Load(),
		Migrations:         r.migrations.Load(),
		MigrationRollbacks: r.migrationRollbacks.Load(),

		ReplPushes:    r.replPushes.Load(),
		ReplFailures:  r.replFailures.Load(),
		Promotions:    r.promotions.Load(),
		ReplicaServes: r.replicaServes.Load(),
		InSyncHedges:  r.inSyncHedges.Load(),
		ReplRepairs:   r.replRepairs.Load(),
		ReplRetargets: r.replRetargets.Load(),
	}
}

// RobustnessSnapshot is an immutable view of a Robustness counter set.
type RobustnessSnapshot struct {
	Retries       int64
	Timeouts      int64
	Reconnects    int64
	GradDups      int64
	StaleServes   int64
	DegradedSteps int64

	Failovers       int64
	RehomedExperts  int64
	Restores        int64
	Checkpoints     int64
	CheckpointBytes int64
	CheckpointNanos int64

	FenceRejections int64
	QuorumStalls    int64
	HedgedPulls     int64
	HedgesWon       int64

	Joins              int64
	Migrations         int64
	MigrationRollbacks int64

	ReplPushes    int64
	ReplFailures  int64
	Promotions    int64
	ReplicaServes int64
	InSyncHedges  int64
	ReplRepairs   int64
	ReplRetargets int64
}

// Sub returns the event counts accumulated since an earlier snapshot.
func (s RobustnessSnapshot) Sub(earlier RobustnessSnapshot) RobustnessSnapshot {
	return RobustnessSnapshot{
		Retries:         s.Retries - earlier.Retries,
		Timeouts:        s.Timeouts - earlier.Timeouts,
		Reconnects:      s.Reconnects - earlier.Reconnects,
		GradDups:        s.GradDups - earlier.GradDups,
		StaleServes:     s.StaleServes - earlier.StaleServes,
		DegradedSteps:   s.DegradedSteps - earlier.DegradedSteps,
		Failovers:       s.Failovers - earlier.Failovers,
		RehomedExperts:  s.RehomedExperts - earlier.RehomedExperts,
		Restores:        s.Restores - earlier.Restores,
		Checkpoints:     s.Checkpoints - earlier.Checkpoints,
		CheckpointBytes: s.CheckpointBytes - earlier.CheckpointBytes,
		CheckpointNanos: s.CheckpointNanos - earlier.CheckpointNanos,
		FenceRejections: s.FenceRejections - earlier.FenceRejections,
		QuorumStalls:    s.QuorumStalls - earlier.QuorumStalls,
		HedgedPulls:     s.HedgedPulls - earlier.HedgedPulls,
		HedgesWon:       s.HedgesWon - earlier.HedgesWon,

		Joins:              s.Joins - earlier.Joins,
		Migrations:         s.Migrations - earlier.Migrations,
		MigrationRollbacks: s.MigrationRollbacks - earlier.MigrationRollbacks,

		ReplPushes:    s.ReplPushes - earlier.ReplPushes,
		ReplFailures:  s.ReplFailures - earlier.ReplFailures,
		Promotions:    s.Promotions - earlier.Promotions,
		ReplicaServes: s.ReplicaServes - earlier.ReplicaServes,
		InSyncHedges:  s.InSyncHedges - earlier.InSyncHedges,
		ReplRepairs:   s.ReplRepairs - earlier.ReplRepairs,
		ReplRetargets: s.ReplRetargets - earlier.ReplRetargets,
	}
}

// Add returns the element-wise sum of two snapshots.
func (s RobustnessSnapshot) Add(o RobustnessSnapshot) RobustnessSnapshot {
	return RobustnessSnapshot{
		Retries:         s.Retries + o.Retries,
		Timeouts:        s.Timeouts + o.Timeouts,
		Reconnects:      s.Reconnects + o.Reconnects,
		GradDups:        s.GradDups + o.GradDups,
		StaleServes:     s.StaleServes + o.StaleServes,
		DegradedSteps:   s.DegradedSteps + o.DegradedSteps,
		Failovers:       s.Failovers + o.Failovers,
		RehomedExperts:  s.RehomedExperts + o.RehomedExperts,
		Restores:        s.Restores + o.Restores,
		Checkpoints:     s.Checkpoints + o.Checkpoints,
		CheckpointBytes: s.CheckpointBytes + o.CheckpointBytes,
		CheckpointNanos: s.CheckpointNanos + o.CheckpointNanos,
		FenceRejections: s.FenceRejections + o.FenceRejections,
		QuorumStalls:    s.QuorumStalls + o.QuorumStalls,
		HedgedPulls:     s.HedgedPulls + o.HedgedPulls,
		HedgesWon:       s.HedgesWon + o.HedgesWon,

		Joins:              s.Joins + o.Joins,
		Migrations:         s.Migrations + o.Migrations,
		MigrationRollbacks: s.MigrationRollbacks + o.MigrationRollbacks,

		ReplPushes:    s.ReplPushes + o.ReplPushes,
		ReplFailures:  s.ReplFailures + o.ReplFailures,
		Promotions:    s.Promotions + o.Promotions,
		ReplicaServes: s.ReplicaServes + o.ReplicaServes,
		InSyncHedges:  s.InSyncHedges + o.InSyncHedges,
		ReplRepairs:   s.ReplRepairs + o.ReplRepairs,
		ReplRetargets: s.ReplRetargets + o.ReplRetargets,
	}
}

// IsZero reports whether no robustness events were recorded.
func (s RobustnessSnapshot) IsZero() bool { return s == RobustnessSnapshot{} }

func (s RobustnessSnapshot) String() string {
	base := fmt.Sprintf("retries=%d timeouts=%d reconnects=%d grad-dups=%d stale-serves=%d degraded-steps=%d",
		s.Retries, s.Timeouts, s.Reconnects, s.GradDups, s.StaleServes, s.DegradedSteps)
	if s.Failovers != 0 || s.RehomedExperts != 0 || s.Restores != 0 || s.Checkpoints != 0 {
		base += fmt.Sprintf(" failovers=%d rehomed=%d restores=%d checkpoints=%d ckpt-bytes=%d ckpt-ms=%.1f",
			s.Failovers, s.RehomedExperts, s.Restores, s.Checkpoints,
			s.CheckpointBytes, float64(s.CheckpointNanos)/1e6)
	}
	if s.FenceRejections != 0 || s.QuorumStalls != 0 || s.HedgedPulls != 0 || s.HedgesWon != 0 {
		base += fmt.Sprintf(" fence-rejections=%d quorum-stalls=%d hedged-pulls=%d hedges-won=%d",
			s.FenceRejections, s.QuorumStalls, s.HedgedPulls, s.HedgesWon)
	}
	if s.Joins != 0 || s.Migrations != 0 || s.MigrationRollbacks != 0 {
		base += fmt.Sprintf(" joins=%d migrations=%d migration-rollbacks=%d",
			s.Joins, s.Migrations, s.MigrationRollbacks)
	}
	if s.ReplPushes != 0 || s.ReplFailures != 0 || s.Promotions != 0 || s.ReplicaServes != 0 ||
		s.InSyncHedges != 0 || s.ReplRepairs != 0 || s.ReplRetargets != 0 {
		base += fmt.Sprintf(" repl-pushes=%d repl-failures=%d promotions=%d replica-serves=%d in-sync-hedges=%d repl-repairs=%d repl-retargets=%d",
			s.ReplPushes, s.ReplFailures, s.Promotions, s.ReplicaServes,
			s.InSyncHedges, s.ReplRepairs, s.ReplRetargets)
	}
	return base
}

// Pipeline counts live-cluster training-pipeline events: microbatches
// executed, stalls on the bounded cross-step window (with time spent),
// pulls blocked waiting for an expert version to be published (with
// time spent), and gradient merges by trigger (count-complete vs. step
// flush). The zero value is ready to use; all methods are safe for
// concurrent use.
type Pipeline struct {
	microbatches     atomic.Int64
	depthStalls      atomic.Int64
	depthStallNanos  atomic.Int64
	versionWaits     atomic.Int64
	versionWaitNanos atomic.Int64
	merges           atomic.Int64
	flushes          atomic.Int64
	depthShrinks     atomic.Int64
}

// AddMicrobatch records one executed (worker, microbatch) piece.
func (p *Pipeline) AddMicrobatch() { p.microbatches.Add(1) }

// AddMicrobatches records n executed pieces at once. The trainer batches
// its per-piece counts into one add per (machine, step) so the hot loop
// does not contend on this cache line once per microbatch.
func (p *Pipeline) AddMicrobatches(n int64) { p.microbatches.Add(n) }

// AddDepthStall records one wait on the bounded in-flight step window.
func (p *Pipeline) AddDepthStall(nanos int64) {
	p.depthStalls.Add(1)
	p.depthStallNanos.Add(nanos)
}

// AddVersionWait records one pull that blocked until the requested
// expert version was published.
func (p *Pipeline) AddVersionWait(nanos int64) {
	p.versionWaits.Add(1)
	p.versionWaitNanos.Add(nanos)
}

// AddMerge records one gradient merge applied because every expected
// contribution arrived (the overlap pipeline's trigger).
func (p *Pipeline) AddMerge() { p.merges.Add(1) }

// AddFlush records one gradient merge applied at a step barrier (the
// lockstep / step-synced trigger, which folds whatever arrived).
func (p *Pipeline) AddFlush() { p.flushes.Add(1) }

// AddDepthShrink records one overlap step that ran with a reduced
// in-flight window because a peer was flagged slow (gray failure).
func (p *Pipeline) AddDepthShrink() { p.depthShrinks.Add(1) }

// Snapshot returns a point-in-time copy of the counters.
func (p *Pipeline) Snapshot() PipelineSnapshot {
	return PipelineSnapshot{
		Microbatches:     p.microbatches.Load(),
		DepthStalls:      p.depthStalls.Load(),
		DepthStallNanos:  p.depthStallNanos.Load(),
		VersionWaits:     p.versionWaits.Load(),
		VersionWaitNanos: p.versionWaitNanos.Load(),
		Merges:           p.merges.Load(),
		Flushes:          p.flushes.Load(),
		DepthShrinks:     p.depthShrinks.Load(),
	}
}

// PipelineSnapshot is an immutable view of a Pipeline counter set.
type PipelineSnapshot struct {
	Microbatches     int64
	DepthStalls      int64
	DepthStallNanos  int64
	VersionWaits     int64
	VersionWaitNanos int64
	Merges           int64
	Flushes          int64
	DepthShrinks     int64
}

// Sub returns the event counts accumulated since an earlier snapshot.
func (s PipelineSnapshot) Sub(earlier PipelineSnapshot) PipelineSnapshot {
	return PipelineSnapshot{
		Microbatches:     s.Microbatches - earlier.Microbatches,
		DepthStalls:      s.DepthStalls - earlier.DepthStalls,
		DepthStallNanos:  s.DepthStallNanos - earlier.DepthStallNanos,
		VersionWaits:     s.VersionWaits - earlier.VersionWaits,
		VersionWaitNanos: s.VersionWaitNanos - earlier.VersionWaitNanos,
		Merges:           s.Merges - earlier.Merges,
		Flushes:          s.Flushes - earlier.Flushes,
		DepthShrinks:     s.DepthShrinks - earlier.DepthShrinks,
	}
}

// Add returns the element-wise sum of two snapshots.
func (s PipelineSnapshot) Add(o PipelineSnapshot) PipelineSnapshot {
	return PipelineSnapshot{
		Microbatches:     s.Microbatches + o.Microbatches,
		DepthStalls:      s.DepthStalls + o.DepthStalls,
		DepthStallNanos:  s.DepthStallNanos + o.DepthStallNanos,
		VersionWaits:     s.VersionWaits + o.VersionWaits,
		VersionWaitNanos: s.VersionWaitNanos + o.VersionWaitNanos,
		Merges:           s.Merges + o.Merges,
		Flushes:          s.Flushes + o.Flushes,
		DepthShrinks:     s.DepthShrinks + o.DepthShrinks,
	}
}

// IsZero reports whether no pipeline events were recorded.
func (s PipelineSnapshot) IsZero() bool { return s == PipelineSnapshot{} }

func (s PipelineSnapshot) String() string {
	return fmt.Sprintf("microbatches=%d depth-stalls=%d depth-stall-ms=%.1f version-waits=%d version-wait-ms=%.1f merges=%d flushes=%d depth-shrinks=%d",
		s.Microbatches, s.DepthStalls, float64(s.DepthStallNanos)/1e6,
		s.VersionWaits, float64(s.VersionWaitNanos)/1e6, s.Merges, s.Flushes, s.DepthShrinks)
}

// ExpertLoad accumulates per-expert routing popularity: how many
// tokens the gating function sent to each expert. The rebalancer
// samples it to decide which hot experts to migrate off overloaded
// machines. Safe for concurrent use.
type ExpertLoad struct {
	counts []atomic.Int64
}

// NewExpertLoad returns a load sampler for n experts.
func NewExpertLoad(n int) *ExpertLoad {
	return &ExpertLoad{counts: make([]atomic.Int64, n)}
}

// AddRouted records tokens routed to expert during one step.
func (l *ExpertLoad) AddRouted(expert int, tokens int64) {
	if l == nil || expert < 0 || expert >= len(l.counts) {
		return
	}
	l.counts[expert].Add(tokens)
}

// Counts returns a point-in-time copy of the per-expert token counts.
func (l *ExpertLoad) Counts() []int64 {
	if l == nil {
		return nil
	}
	out := make([]int64, len(l.counts))
	for i := range l.counts {
		out[i] = l.counts[i].Load()
	}
	return out
}

// Total returns the sum over all experts.
func (l *ExpertLoad) Total() int64 {
	var sum int64
	if l == nil {
		return 0
	}
	for i := range l.counts {
		sum += l.counts[i].Load()
	}
	return sum
}

// GiB converts bytes to binary gigabytes (the unit of Table 1).
func GiB(bytes float64) float64 { return bytes / (1024 * 1024 * 1024) }

// Gbps converts a bytes-and-seconds pair to gigabits per second.
func Gbps(bytes, seconds float64) float64 {
	if seconds == 0 {
		return 0
	}
	return bytes * 8 / seconds / 1e9
}
