package metrics

import (
	"strings"
	"testing"
)

func TestPipelineSnapshotSubAdd(t *testing.T) {
	var p Pipeline
	p.AddMicrobatch()
	p.AddMicrobatch()
	p.AddDepthStall(100)
	p.AddVersionWait(250)
	p.AddMerge()
	p.AddFlush()
	before := p.Snapshot()
	p.AddMicrobatch()
	p.AddFlush()
	delta := p.Snapshot().Sub(before)
	if delta.Microbatches != 1 || delta.Flushes != 1 || delta.Merges != 0 {
		t.Fatalf("delta = %+v", delta)
	}
	sum := before.Add(delta)
	if sum != p.Snapshot() {
		t.Fatalf("before+delta = %+v, want %+v", sum, p.Snapshot())
	}
}

func TestPipelineSnapshotString(t *testing.T) {
	var p Pipeline
	if !p.Snapshot().IsZero() {
		t.Fatal("fresh pipeline not zero")
	}
	p.AddMerge()
	s := p.Snapshot().String()
	if !strings.Contains(s, "merges=1") {
		t.Fatalf("String() = %q, want merges=1", s)
	}
}
