package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"janus/internal/fabric"
	"janus/internal/sim"
)

func TestTrafficByClass(t *testing.T) {
	eng := sim.NewEngine()
	net := fabric.NewNetwork(eng)
	nv := net.NewLink("nv", "nvlink", 100, 0)
	nic := net.NewLink("nic", "nic", 100, 0)
	net.StartFlow("a", 300, []*fabric.Link{nv}, nil)
	net.StartFlow("b", 200, []*fabric.Link{nv, nic}, nil)
	eng.Run()
	got := TrafficByClass(net.Links())
	if got["nvlink"] != 500 || got["nic"] != 200 {
		t.Fatalf("traffic = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 || s.Sum != 15 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

// Property: Min <= P50 <= Max, Mean within [Min, Max], Sum consistent.
func TestSummaryInvariantsProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Keep magnitudes where the sum cannot overflow; the model's
			// samples are seconds and bytes, nowhere near float limits.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				clean = append(clean, math.Mod(x, 1e12))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupRow(t *testing.T) {
	r := SpeedupRow{Name: "x", Baseline: 2, Value: 1}
	if r.Speedup() != 2 {
		t.Fatalf("speedup = %v", r.Speedup())
	}
	if (SpeedupRow{Baseline: 2}).Speedup() != 0 {
		t.Fatal("zero value speedup should be 0")
	}
}

func TestFormatSpeedupTable(t *testing.T) {
	out := FormatSpeedupTable("Figure X", []SpeedupRow{
		{Name: "MoE-BERT", Baseline: 0.5, Value: 0.25},
	}, "tutel", "janus")
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "2.00x") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestUnitHelpers(t *testing.T) {
	if GiB(1024*1024*1024) != 1 {
		t.Fatal("GiB conversion wrong")
	}
	if g := Gbps(125e6, 1); math.Abs(g-1) > 1e-12 {
		t.Fatalf("Gbps = %v, want 1", g)
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("zero-time Gbps should be 0")
	}
}

// robustFixture populates every Robustness counter with a distinct
// value so element-wise mistakes (a swapped or forgotten field in
// Sub/Add) cannot cancel out.
func robustFixture(scale int64) *Robustness {
	var r Robustness
	for i := int64(0); i < 1*scale; i++ {
		r.AddRetry()
	}
	for i := int64(0); i < 2*scale; i++ {
		r.AddTimeout()
	}
	for i := int64(0); i < 3*scale; i++ {
		r.AddReconnect()
	}
	for i := int64(0); i < 4*scale; i++ {
		r.AddGradDup()
	}
	for i := int64(0); i < 5*scale; i++ {
		r.AddStaleServe()
	}
	for i := int64(0); i < 6*scale; i++ {
		r.AddDegradedStep()
	}
	for i := int64(0); i < 7*scale; i++ {
		r.AddFailover()
	}
	r.AddRehomedExperts(8 * scale)
	for i := int64(0); i < 9*scale; i++ {
		r.AddRestore()
	}
	for i := int64(0); i < 10*scale; i++ {
		r.AddCheckpoint(100*scale, 1000*scale)
	}
	return &r
}

func TestRobustnessSnapshotSubDeltas(t *testing.T) {
	r := robustFixture(1)
	before := r.Snapshot()

	// One more of everything: the delta must be exactly the increment,
	// field by field, regardless of the totals underneath.
	r.AddRetry()
	r.AddTimeout()
	r.AddReconnect()
	r.AddGradDup()
	r.AddStaleServe()
	r.AddDegradedStep()
	r.AddFailover()
	r.AddRehomedExperts(3)
	r.AddRestore()
	r.AddCheckpoint(64, 2_000_000)

	delta := r.Snapshot().Sub(before)
	want := RobustnessSnapshot{
		Retries: 1, Timeouts: 1, Reconnects: 1, GradDups: 1,
		StaleServes: 1, DegradedSteps: 1,
		Failovers: 1, RehomedExperts: 3, Restores: 1,
		Checkpoints: 1, CheckpointBytes: 64, CheckpointNanos: 2_000_000,
	}
	if delta != want {
		t.Fatalf("delta = %+v, want %+v", delta, want)
	}
	// Sub against itself is the zero snapshot, and IsZero agrees.
	if self := r.Snapshot().Sub(r.Snapshot()); !self.IsZero() {
		t.Fatalf("x.Sub(x) = %+v, want zero", self)
	}
	if delta.IsZero() {
		t.Fatal("non-empty delta claims IsZero")
	}
}

func TestRobustnessSnapshotAddSubRoundTrip(t *testing.T) {
	a := robustFixture(2).Snapshot()
	b := robustFixture(5).Snapshot()
	sum := a.Add(b)
	if got := sum.Sub(b); got != a {
		t.Fatalf("(a+b)-b = %+v, want %+v", got, a)
	}
	if got := sum.Sub(a); got != b {
		t.Fatalf("(a+b)-a = %+v, want %+v", got, b)
	}
	if a.Add(b) != b.Add(a) {
		t.Fatal("Add is not commutative")
	}
}

func TestRobustnessSnapshotString(t *testing.T) {
	base := RobustnessSnapshot{Retries: 2}
	if s := base.String(); strings.Contains(s, "failovers") {
		t.Fatalf("failover section shown with no failover events: %q", s)
	}
	full := RobustnessSnapshot{Failovers: 1, RehomedExperts: 3, Restores: 2,
		Checkpoints: 4, CheckpointBytes: 1 << 20, CheckpointNanos: 5e6}
	s := full.String()
	for _, frag := range []string{"failovers=1", "rehomed=3", "restores=2", "checkpoints=4", "ckpt-ms=5.0"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}
