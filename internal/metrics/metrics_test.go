package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"janus/internal/fabric"
	"janus/internal/sim"
)

func TestTrafficByClass(t *testing.T) {
	eng := sim.NewEngine()
	net := fabric.NewNetwork(eng)
	nv := net.NewLink("nv", "nvlink", 100, 0)
	nic := net.NewLink("nic", "nic", 100, 0)
	net.StartFlow("a", 300, []*fabric.Link{nv}, nil)
	net.StartFlow("b", 200, []*fabric.Link{nv, nic}, nil)
	eng.Run()
	got := TrafficByClass(net.Links())
	if got["nvlink"] != 500 || got["nic"] != 200 {
		t.Fatalf("traffic = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 || s.Sum != 15 {
		t.Fatalf("summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

// Property: Min <= P50 <= Max, Mean within [Min, Max], Sum consistent.
func TestSummaryInvariantsProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Keep magnitudes where the sum cannot overflow; the model's
			// samples are seconds and bytes, nowhere near float limits.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e300 {
				clean = append(clean, math.Mod(x, 1e12))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupRow(t *testing.T) {
	r := SpeedupRow{Name: "x", Baseline: 2, Value: 1}
	if r.Speedup() != 2 {
		t.Fatalf("speedup = %v", r.Speedup())
	}
	if (SpeedupRow{Baseline: 2}).Speedup() != 0 {
		t.Fatal("zero value speedup should be 0")
	}
}

func TestFormatSpeedupTable(t *testing.T) {
	out := FormatSpeedupTable("Figure X", []SpeedupRow{
		{Name: "MoE-BERT", Baseline: 0.5, Value: 0.25},
	}, "tutel", "janus")
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "2.00x") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestUnitHelpers(t *testing.T) {
	if GiB(1024*1024*1024) != 1 {
		t.Fatal("GiB conversion wrong")
	}
	if g := Gbps(125e6, 1); math.Abs(g-1) > 1e-12 {
		t.Fatalf("Gbps = %v, want 1", g)
	}
	if Gbps(100, 0) != 0 {
		t.Fatal("zero-time Gbps should be 0")
	}
}
