package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestServingCountersFoldAcrossHandles(t *testing.T) {
	var sv Serving
	const workers, per = 16, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := sv.Handle()
			for i := 0; i < per; i++ {
				h.AddAdmitted()
				h.AddAnswered(RungFull)
			}
			h.AddShed()
			h.AddAnswered(RungShed)
			h.AddDeadlineExpired()
			h.AddHedged()
			h.AddCanaryServed()
		}()
	}
	wg.Wait()
	s := sv.Snapshot()
	if s.Admitted != workers*per || s.Answered[RungFull] != workers*per {
		t.Fatalf("admitted/full = %d/%d, want %d", s.Admitted, s.Answered[RungFull], workers*per)
	}
	if s.Shed != workers || s.Answered[RungShed] != workers {
		t.Fatalf("shed = %d/%d, want %d", s.Shed, s.Answered[RungShed], workers)
	}
	if s.DeadlineExpired != workers || s.Hedged != workers || s.CanaryServed != workers {
		t.Fatalf("expired/hedged/canary = %d/%d/%d, want %d each",
			s.DeadlineExpired, s.Hedged, s.CanaryServed, workers)
	}
	if s.AnsweredTotal() != workers*per {
		t.Fatalf("AnsweredTotal = %d, want %d", s.AnsweredTotal(), workers*per)
	}
	if s.DegradedTotal() != 0 {
		t.Fatalf("DegradedTotal = %d, want 0", s.DegradedTotal())
	}
}

func TestServingSnapshotSubAdd(t *testing.T) {
	var sv Serving
	h := sv.Handle()
	h.AddAdmitted()
	h.AddAnswered(RungReplica)
	before := sv.Snapshot()
	h.AddAdmitted()
	h.AddAnswered(RungTop1)
	h.AddRolledBack()
	after := sv.Snapshot()
	d := after.Sub(before)
	if d.Admitted != 1 || d.Answered[RungTop1] != 1 || d.RolledBack != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Answered[RungReplica] != 0 {
		t.Fatalf("delta leaked earlier events: %+v", d)
	}
	if d.DegradedTotal() != 1 {
		t.Fatalf("DegradedTotal = %d, want 1", d.DegradedTotal())
	}
	sum := before.Add(d)
	if sum != after {
		t.Fatalf("Add(Sub) not inverse: %+v vs %+v", sum, after)
	}
	if (ServingSnapshot{}).IsZero() != true || after.IsZero() {
		t.Fatal("IsZero broken")
	}
}

func TestServingAnsweredClampsRung(t *testing.T) {
	var sv Serving
	h := sv.Handle()
	h.AddAnswered(-1)
	h.AddAnswered(ServingRungs + 3)
	if s := sv.Snapshot(); s.Answered[RungShed] != 2 {
		t.Fatalf("out-of-range rungs = %+v, want clamped to shed", s)
	}
}

func TestServingStringAndRungNames(t *testing.T) {
	var sv Serving
	h := sv.Handle()
	h.AddAdmitted()
	h.AddAnswered(RungStale)
	out := sv.Snapshot().String()
	for _, frag := range []string{"admitted=1", "stale=1", "rolled-back=0"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("String() = %q missing %q", out, frag)
		}
	}
	want := []string{"full", "replica", "stale", "top1", "shed"}
	for r, w := range want {
		if RungName(r) != w {
			t.Fatalf("RungName(%d) = %q, want %q", r, RungName(r), w)
		}
	}
	if RungName(9) != "rung9" {
		t.Fatalf("RungName(9) = %q", RungName(9))
	}
}
