package livecluster

import (
	"testing"

	"janus/internal/moe"
	"janus/internal/tensor"
)

func defaultCfg() Config {
	return Config{
		Machines: 2, WorkersPerNode: 2,
		NumExperts: 8, TopK: 2, Hidden: 16,
		TokensPerWorker: 12, Seed: 42, Credits: 4,
	}
}

func TestValidate(t *testing.T) {
	if err := defaultCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	// Uneven splits are legal now (joins and migrations make per-machine
	// counts uneven anyway); only an empty or machine-starved expert set
	// is rejected.
	ok := defaultCfg()
	ok.NumExperts = 7
	if err := ok.Validate(); err != nil {
		t.Fatalf("uneven expert split rejected: %v", err)
	}
	bad := defaultCfg()
	bad.NumExperts = 0
	if bad.Validate() == nil {
		t.Fatal("zero experts accepted")
	}
	bad = defaultCfg()
	bad.Machines = 9
	bad.NumExperts = 8
	if bad.Validate() == nil {
		t.Fatal("fewer experts than machines accepted")
	}
	bad = defaultCfg()
	bad.InitialOwners = []int{0}
	if bad.Validate() == nil {
		t.Fatal("short InitialOwners accepted")
	}
	bad = defaultCfg()
	bad.InitialOwners = []int{0, 0, 0, 0, 1, 1, 1, 7}
	if bad.Validate() == nil {
		t.Fatal("out-of-range initial owner accepted")
	}
	bad = defaultCfg()
	bad.TopK = 99
	if bad.Validate() == nil {
		t.Fatal("topK out of range accepted")
	}
	bad = defaultCfg()
	bad.Machines = 0
	if bad.Validate() == nil {
		t.Fatal("zero machines accepted")
	}
	bad = defaultCfg()
	bad.Hidden = 0
	if bad.Validate() == nil {
		t.Fatal("zero hidden accepted")
	}
}

// The headline live test: the data-centric forward over real TCP equals
// the in-process expert-centric reference bit for bit.
func TestLiveEquivalence(t *testing.T) {
	cl, err := Start(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatal(err)
	}
	ref := cl.RunExpertCentricReference()
	if len(res.Outputs) != len(ref) {
		t.Fatalf("output counts differ: %d vs %d", len(res.Outputs), len(ref))
	}
	for w := range ref {
		if res.Outputs[w] == nil {
			t.Fatalf("worker %d produced no output", w)
		}
		if !tensor.Equal(res.Outputs[w], ref[w]) {
			t.Fatalf("worker %d output differs: max diff %v", w,
				tensor.MaxAbsDiff(res.Outputs[w], ref[w]))
		}
	}
}

// Hierarchical fetch: each machine pulls each external expert exactly
// once, no matter how many local workers need it.
func TestLiveSingleFetchPerMachine(t *testing.T) {
	cfg := defaultCfg()
	cfg.WorkersPerNode = 4 // more workers sharing the cache
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatal(err)
	}
	// 8 experts, 2 machines -> 4 external per machine -> 8 pulls total,
	// assuming every expert is needed by someone on each machine (with
	// 4 workers x 12 tokens x top-2 over 8 experts this is essentially
	// certain; assert <= as the invariant and > 0 as liveness).
	if res.PullsServed > 8 {
		t.Fatalf("pulls served = %d, want <= 8 (single flight per machine)", res.PullsServed)
	}
	if res.PullsServed == 0 {
		t.Fatal("no pulls at all")
	}
}

// The live traffic comparison: expert exchange moves fewer bytes than
// token exchange whenever R > 1 for the live shape.
func TestLiveTrafficReduction(t *testing.T) {
	cfg := defaultCfg()
	cfg.TokensPerWorker = 256 // R = T/(4nHE) = 256*2/(4*2*16*2) = 2
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatal(err)
	}
	tokenBytes := cl.TokenExchangeBytes()
	if res.CrossMachineBytes >= tokenBytes {
		t.Fatalf("expert fetch moved %d bytes, token exchange %d — no reduction",
			res.CrossMachineBytes, tokenBytes)
	}
	t.Logf("live traffic: data-centric %d bytes vs expert-centric %d bytes (%.1fx reduction)",
		res.CrossMachineBytes, tokenBytes, float64(tokenBytes)/float64(res.CrossMachineBytes))
}

// Each machine pushes exactly one (pre-reduced) gradient per external
// expert to the owner.
func TestLiveGradientPreReduce(t *testing.T) {
	cl, err := Start(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err != nil {
		t.Fatal(err)
	}
	grads := cl.GradsAccepted()
	// 8 experts on 2 machines: machine 0 owns 0-3, machine 1 owns 4-7;
	// each receives one gradient per owned expert from the other machine.
	for mi, g := range grads {
		if g != 4 {
			t.Fatalf("machine %d accepted %d grads, want 4", mi, g)
		}
	}
}

func TestExpertCodecRoundTrip(t *testing.T) {
	e := moe.NewExpert(8, 99)
	buf := encodeExpert(e)
	got, err := decodeExpert(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(e.W1, got.W1) || !tensor.Equal(e.W2, got.W2) {
		t.Fatal("codec round trip mismatch")
	}
}

func TestExpertCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeExpert(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := decodeExpert([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err == nil {
		t.Fatal("bad shape accepted")
	}
	e := moe.NewExpert(4, 1)
	buf := encodeExpert(e)
	if _, err := decodeExpert(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestLiveDeterministicOutputs(t *testing.T) {
	run := func() []*tensor.Matrix {
		cl, err := Start(defaultCfg())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		res, err := cl.RunDataCentric()
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for w := range a {
		if !tensor.Equal(a[w], b[w]) {
			t.Fatal("live runs nondeterministic")
		}
	}
}

func TestSingleMachineNoNetwork(t *testing.T) {
	cfg := defaultCfg()
	cfg.Machines = 1
	cfg.WorkersPerNode = 4
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossMachineBytes != 0 || res.PullsServed != 0 {
		t.Fatalf("single machine used the network: %d bytes, %d pulls",
			res.CrossMachineBytes, res.PullsServed)
	}
	ref := cl.RunExpertCentricReference()
	for w := range ref {
		if !tensor.Equal(res.Outputs[w], ref[w]) {
			t.Fatal("single-machine outputs differ from reference")
		}
	}
}
