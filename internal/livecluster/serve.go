// Serving entrypoints: the cluster-side half of the inference plane.
// A serving front-end (internal/serving) drives the cluster through
// the ServeBackend adapter — ownership lookups, in-sync replica
// targets, gray-failure scores, and the SERVE wire call — while each
// machine's store answers SERVE micro-batches from its hosted experts
// (or its in-sync replica copies) under the same epoch fence as every
// other request.
package livecluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"janus/internal/checkpoint"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// ServeExpert implements transport.ServingStore: decode the
// micro-batch, find the expert (hosted copy first, then an in-sync
// replica copy — the store-side half of the replica-serve rung), run
// the forward pass, and answer with provenance. The deadline budget is
// enforced at both ends of the compute: work that arrives already
// expired is refused before the forward pass, and work whose budget
// ran out during the pass is cancelled instead of answered late — the
// front-end has long since hedged or degraded, so a late answer is
// wasted wire bytes.
//
// The forward pass runs under the store lock: a training merge mutates
// expert weights in place, and serving must never read a half-merged
// matrix. Serving drills against a non-training cluster never contend.
func (s *machineStore) ServeExpert(id transport.ExpertID, payload []byte) ([]byte, error) {
	start := time.Now()
	budgetMicros, rows, cols, data, err := transport.DecodeServe(payload)
	if err != nil {
		return nil, err
	}
	if cols != s.h {
		return nil, fmt.Errorf("livecluster: serve batch is %d wide, experts are %d", cols, s.h)
	}
	if budgetMicros == 0 {
		return nil, fmt.Errorf("%w: %v arrived with no budget", transport.ErrServeExpired, id)
	}
	budget := time.Duration(budgetMicros) * time.Microsecond
	if d := s.serveDelay.Load(); d > 0 {
		// Drill knob: a gray-overloaded expert machine computing slowly.
		time.Sleep(time.Duration(d))
	}

	s.mu.Lock()
	prov := byte(transport.ProvOwner)
	ex, ok := s.experts[id]
	if !ok {
		if ent, rok := s.replicas[id]; rok {
			ex, prov = ent.ex, transport.ProvReplica
		}
	}
	if ex == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("livecluster: %v not hosted or replicated here", id)
	}
	x := tensor.New(rows, cols)
	copy(x.Data, data)
	y, cache := ex.Forward(x)
	cache.Release()
	s.mu.Unlock()

	if time.Since(start) > budget {
		// Computed but expired: cancel at this stage rather than ship an
		// answer the front-end must discard at emission.
		tensor.Put(y)
		return nil, fmt.Errorf("%w: %v expired during compute", transport.ErrServeExpired, id)
	}
	out, err := transport.EncodeServeOut(prov, y.Data)
	tensor.Put(y)
	return out, err
}

// SetServeDelay injects a fixed compute delay into machine m's serving
// path — the deadline-propagation drills use it to make server-side
// budget expiry deterministic.
func (cl *Cluster) SetServeDelay(m int, d time.Duration) {
	cl.stores[m].serveDelay.Store(int64(d))
}

// ServeBackend adapts the cluster for a serving front-end. It owns a
// dedicated transport client (the front-end is not one of the cluster's
// machines) whose requests are epoch-stamped from the authoritative
// membership view, so serve traffic obeys the same fencing as training
// traffic: a request routed with a pre-failover view is rejected by
// every correctly fenced server.
type ServeBackend struct {
	cl     *Cluster
	client *transport.Client
}

// serveMachineID is the sender id stamped on front-end requests —
// outside any real machine's range, so membership never mistakes the
// front-end for a cluster member.
const serveMachineID = 1 << 16

// ServeBackend builds the serving adapter. Callers must Close it.
func (cl *Cluster) ServeBackend() *ServeBackend {
	cfg := cl.cfg
	opts := transport.Options{
		Credits:        cfg.Credits,
		RequestTimeout: cfg.PullTimeout,
		MaxAttempts:    cfg.PullRetries,
		BackoffBase:    cfg.RetryBackoff,
		Seed:           cfg.Seed + serveMachineID,
		MachineID:      serveMachineID,
		SlowAfter:      cfg.SlowAfter,
	}
	if inj := cfg.Injector; inj != nil {
		timeout := cfg.PullTimeout
		if timeout <= 0 {
			timeout = transport.DefaultRequestTimeout
		}
		opts.Dial = func(addr string) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			if dst := cl.machineOfAddr(addr); dst >= 0 {
				return inj.WrapConnPair(conn, "serve.client", "serve", MachineLabel(dst)), nil
			}
			return inj.WrapConn(conn, "serve.client"), nil
		}
	}
	b := &ServeBackend{cl: cl, client: transport.NewClientOptions(opts)}
	b.client.SetEpoch(uint64(cl.Epoch()))
	return b
}

// Close releases the backend's transport client.
func (b *ServeBackend) Close() { b.client.Close() }

// NumExperts returns the width of the expert plane.
func (b *ServeBackend) NumExperts() int { return b.cl.cfg.NumExperts }

// Hidden returns the model's hidden width H.
func (b *ServeBackend) Hidden() int { return b.cl.cfg.Hidden }

// Step returns the cluster's current training step — the staleness
// clock the front-end's local weight cache ages against.
func (b *ServeBackend) Step() int { return b.cl.step }

// OwnerAddr returns the dial address of the expert's current owner
// under the authoritative membership view, when one is alive.
func (b *ServeBackend) OwnerAddr(expert int) (string, bool) {
	o := b.cl.currentOwner(expert)
	if o < 0 || o >= len(b.cl.addrs) || !b.cl.isAlive(o) {
		return "", false
	}
	return b.cl.addrs[o], true
}

// ReplicaAddr returns the dial address of an alive in-sync replica
// holder of the expert (never the owner), when one exists.
func (b *ServeBackend) ReplicaAddr(expert int) (string, bool) {
	b.cl.viewMu.Lock()
	set := append([]int(nil), b.cl.replicas[expert]...)
	b.cl.viewMu.Unlock()
	owner := b.cl.currentOwner(expert)
	for _, r := range set {
		if r != owner && r >= 0 && r < len(b.cl.addrs) && b.cl.isAlive(r) {
			return b.cl.addrs[r], true
		}
	}
	return "", false
}

// PeerSlow reports the serving client's gray-failure verdict for addr.
func (b *ServeBackend) PeerSlow(addr string) bool { return b.client.PeerSlow(addr) }

// Serve runs one SERVE round trip against addr, restamping the client
// with the authoritative epoch first so a failover between requests is
// picked up immediately.
func (b *ServeBackend) Serve(ctx context.Context, addr string, expert int, payload []byte) (byte, []float32, error) {
	b.client.SetEpoch(uint64(b.cl.Epoch()))
	return b.client.ServeExpert(ctx, addr, transport.ExpertID{Expert: uint32(expert)}, payload)
}

// FetchExpert clones the current owner's weights of an expert — the
// front-end's stale-cache warmup/refresh path, stamped with the step
// the copy was taken at. The in-process read stands in for a bulk
// weight pull a multi-process deployment would do over the wire.
func (b *ServeBackend) FetchExpert(expert int) (*moe.Expert, int, error) {
	o := b.cl.currentOwner(expert)
	if o < 0 || o >= len(b.cl.stores) {
		return nil, 0, fmt.Errorf("livecluster: expert %d has no owner", expert)
	}
	ex, ok := b.cl.stores[o].get(transport.ExpertID{Expert: uint32(expert)})
	if !ok {
		return nil, 0, fmt.Errorf("livecluster: expert %d missing from owner %d", expert, o)
	}
	return ex.Clone(), b.cl.step, nil
}

// SyncReplicas arms the replica plan (when not yet armed) and runs one
// synchronous replication round. A serving-only deployment calls this
// once after Start so the ladder's replica rung has in-sync copies to
// fall back on without running any training steps; under training the
// step barrier keeps replicas synced and this is unnecessary.
func (cl *Cluster) SyncReplicas() { cl.replicateStep() }

// ExportSnapshot captures the cluster's current expert weights as a
// checkpoint snapshot stamped with a model version — the canary rollout
// builds its candidate from one of these.
func (cl *Cluster) ExportSnapshot(step, modelVersion int) *checkpoint.Snapshot {
	snap := &checkpoint.Snapshot{
		Step:         step,
		ModelVersion: modelVersion,
		Experts:      make(map[uint32][]byte, cl.cfg.NumExperts),
		Dense:        encodeMatrix(cl.layer.Gate.W),
	}
	for e := 0; e < cl.cfg.NumExperts; e++ {
		owner := cl.currentOwner(e)
		if owner < 0 || !cl.isAlive(owner) {
			continue
		}
		if ex, ok := cl.stores[owner].get(transport.ExpertID{Expert: uint32(e)}); ok {
			snap.Experts[uint32(e)] = encodeExpert(ex)
		}
	}
	return snap
}

// DecodeExpertPlane decodes a snapshot's expert entries into live
// weights — the canary serving plane a front-end computes candidate
// answers from.
func DecodeExpertPlane(snap *checkpoint.Snapshot) (map[int]*moe.Expert, error) {
	out := make(map[int]*moe.Expert, len(snap.Experts))
	for id, raw := range snap.Experts {
		ex, err := decodeExpert(raw)
		if err != nil {
			return nil, fmt.Errorf("livecluster: canary expert %d: %w", id, err)
		}
		out[int(id)] = ex
	}
	return out, nil
}

// compile-time: the machine store really is a ServingStore, so the
// transport's capability pre-check admits SERVE frames.
var _ transport.ServingStore = (*machineStore)(nil)
