// Synchronous hot-expert replication: lossless failover, in-sync
// hedging, and anti-entropy repair.
//
// The planner assigns each replicated expert Replicas machines besides
// its owner — popularity-ordered (the hottest experts claim capacity
// first, reusing the rebalancer's routed-token signal), capacity-aware,
// seeded-rendezvous scored, and entirely deterministic. After every
// step's gradient merge the owner streams each replicated expert's
// post-merge weights to its replica set on the REPL wire message:
// versioned, acked, epoch-fenced like every other frame, with a bounded
// in-flight window so replication lag is capped and observable.
//
// Failover promotes an in-sync replica: when the dead owner's last
// merged version survives on a replica, that replica becomes the owner
// inside the same quorum-gated, epoch-fenced recompute PR 5 failover
// uses — and the run continues bit-for-bit as if the owner had never
// died. Only when no replica acked that version does recovery fall back
// to the lossy stale-replica/checkpoint path. Hedged pulls and stale
// fallbacks prefer in-sync replicas too, and serve them without any
// staleness accounting.
//
// The anti-entropy sweep runs on a seeded cadence: it repairs replica
// membership (dead or promoted holders are replaced deterministically)
// and compares per-expert version digests owner-vs-replica, re-streaming
// any replica that lags — a torn stream was rejected whole at apply
// time, so divergence always surfaces as a version gap the sweep closes.
package livecluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"janus/internal/moe"
	"janus/internal/transport"
)

// DefaultReplWindow bounds concurrent in-flight replica streams per
// sync round when Config.ReplWindow is zero.
const DefaultReplWindow = 4

// DefaultAntiEntropyEvery is the anti-entropy sweep cadence, in steps,
// when Config.AntiEntropyEvery is zero.
const DefaultAntiEntropyEvery = 4

// replicaEntry is one in-sync copy of an expert this machine replicates
// but does not own: decoded weights, the owner's canonical wire
// encoding, and the merge version they belong to. Entries are replaced
// wholesale and never mutated in place, so an object handed out to
// compute stays immutable even as newer versions arrive.
type replicaEntry struct {
	ex  *moe.Expert
	enc []byte
	ver uint64
}

// promotionRecord is one in-sync replica promotion, kept for the
// ViewConsistency invariant: a promotion must happen inside a fenced
// epoch (epoch > 0, never ahead of the authoritative view's).
type promotionRecord struct {
	expert  int
	machine int
	epoch   uint64
}

// AcceptReplica implements transport.ReplicationSink: it applies one
// whole versioned snapshot to this machine's replica store,
// monotonically — a delayed retransmission can never roll a replica
// backwards, and a torn stream was already rejected whole by the REPL
// framing, so a replica is always at some exact owner version.
func (s *machineStore) AcceptReplica(id transport.ExpertID, payload []byte) error {
	ver, raw, err := transport.DecodeRepl(payload)
	if err != nil {
		return err
	}
	enc := make([]byte, len(raw))
	copy(enc, raw) // raw aliases the frame buffer, which is recycled
	ex, err := decodeExpert(enc)
	if err != nil {
		return fmt.Errorf("livecluster: replica stream for %v: %w", id, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replicas == nil {
		s.replicas = make(map[transport.ExpertID]*replicaEntry)
	}
	if cur, ok := s.replicas[id]; ok && ver < cur.ver {
		return nil // stale retransmission: idempotent, version-monotone
	}
	s.replicas[id] = &replicaEntry{ex: ex, enc: enc, ver: ver}
	return nil
}

// replicaAt returns this machine's replica entry for an expert, if any.
func (s *machineStore) replicaAt(id transport.ExpertID) (*replicaEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.replicas[id]
	return ent, ok
}

// setReplica installs a replica entry locally — the migration RELEASE
// path, where the outgoing owner's copy fills the replica slot the
// FENCE vacated, already at the transferred version.
func (s *machineStore) setReplica(id transport.ExpertID, ex *moe.Expert, enc []byte, ver uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replicas == nil {
		s.replicas = make(map[transport.ExpertID]*replicaEntry)
	}
	if cur, ok := s.replicas[id]; ok && ver < cur.ver {
		return
	}
	s.replicas[id] = &replicaEntry{ex: ex, enc: enc, ver: ver}
}

// dropReplica discards a replica entry — a machine that starts owning
// an expert stops backing it up.
func (s *machineStore) dropReplica(id transport.ExpertID) {
	s.mu.Lock()
	delete(s.replicas, id)
	s.mu.Unlock()
}

// versionOf reads an expert's merge version (0 when not training or
// not hosted).
func (s *machineStore) versionOf(id transport.ExpertID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ver[id]
}

// replicationOn reports whether the replication subsystem is armed.
func (cl *Cluster) replicationOn() bool { return cl.cfg.Replicas > 0 }

// setReplAcked records owner-side that replica r acked expert e at ver
// — the skip signal that keeps the sync loop from re-streaming an
// already in-sync replica.
func (cl *Cluster) setReplAcked(e, r int, ver uint64) {
	cl.replMu.Lock()
	m := cl.replAcked[e]
	if m == nil {
		m = make(map[int]uint64)
		cl.replAcked[e] = m
	}
	if cur, ok := m[r]; !ok || ver >= cur {
		m[r] = ver
	}
	cl.replMu.Unlock()
}

// replAckedVer returns the newest version replica r has acked for
// expert e, and whether it ever acked at all.
func (cl *Cluster) replAckedVer(e, r int) (uint64, bool) {
	cl.replMu.Lock()
	defer cl.replMu.Unlock()
	v, ok := cl.replAcked[e][r]
	return v, ok
}

// stripReplicaLocked removes machine m from expert e's replica set.
// Callers hold viewMu and invoke this wherever ownership lands on m, so
// a machine never backs up an expert it owns — the failure domain the
// replica exists to widen would otherwise silently collapse.
func (cl *Cluster) stripReplicaLocked(e, m int) {
	set := cl.replicas[e]
	for i, r := range set {
		if r == m {
			cl.replicas[e] = append(set[:i], set[i+1:]...)
			return
		}
	}
}

// PlanReplicas assigns each replicated expert Replicas machines:
// popularity-ordered (hottest experts claim capacity first, by the same
// routed-token counts the rebalancer plans from), owner-disjoint,
// capacity-aware (the candidate carrying the fewest experts plus
// already-planned replicas wins), with seeded rendezvous scores
// breaking capacity ties. Fully deterministic — remaining ties break
// toward the lower machine id, and expert order ties toward the lower
// expert index — so seeded runs plan identical replica sets.
func (cl *Cluster) PlanReplicas() map[int][]int {
	n := cl.cfg.Replicas
	if n <= 0 {
		return nil
	}
	counts := cl.load.Counts()
	cl.viewMu.Lock()
	rep := cl.repViewLocked()
	owner := append([]int(nil), rep.owner...)
	alive := append([]bool(nil), rep.alive...)
	cl.viewMu.Unlock()

	order := make([]int, len(owner))
	for e := range order {
		order[e] = e
	}
	sort.SliceStable(order, func(i, j int) bool {
		ei, ej := order[i], order[j]
		if counts[ei] != counts[ej] {
			return counts[ei] > counts[ej]
		}
		return ei < ej
	})
	if top := cl.cfg.ReplicateTop; top > 0 && top < len(order) {
		order = order[:top]
	}

	// Capacity signal: experts hosted now plus replicas planned so far.
	assigned := make([]int, len(alive))
	for _, o := range owner {
		if o >= 0 && o < len(assigned) {
			assigned[o]++
		}
	}
	plan := make(map[int][]int, len(order))
	for _, e := range order {
		o := owner[e]
		var cand []int
		for m, a := range alive {
			if a && m != o {
				cand = append(cand, m)
			}
		}
		sort.SliceStable(cand, func(i, j int) bool {
			mi, mj := cand[i], cand[j]
			if assigned[mi] != assigned[mj] {
				return assigned[mi] < assigned[mj]
			}
			si := cl.replicaScore(e, mi)
			sj := cl.replicaScore(e, mj)
			if si != sj {
				return si > sj
			}
			return mi < mj
		})
		k := n
		if k > len(cand) {
			k = len(cand)
		}
		if k == 0 {
			continue
		}
		set := append([]int(nil), cand[:k]...)
		for _, m := range set {
			assigned[m]++
		}
		sort.Ints(set)
		plan[e] = set
	}
	return plan
}

// replicaScore is the seeded rendezvous score of (expert, machine) for
// replica placement — a different stream than ownership rendezvous so
// replica picks do not shadow the owner assignment.
func (cl *Cluster) replicaScore(e, m int) uint64 {
	return mix64(uint64(cl.cfg.Seed)*0xD6E8FEB86659FD93 ^
		uint64(e)<<32 ^ uint64(m) ^ 0xA5A5A5A5A5A5A5A5)
}

// ensureReplicaPlan arms the replica plan exactly once, lazily at the
// first sync round — after at least one step's routing counts exist, so
// popularity ordering has a real signal. Seeded runs arm identically.
func (cl *Cluster) ensureReplicaPlan() {
	cl.viewMu.Lock()
	planned := cl.replicaPlanned
	cl.viewMu.Unlock()
	if planned {
		return
	}
	plan := cl.PlanReplicas()
	cl.viewMu.Lock()
	if !cl.replicaPlanned {
		cl.replicaPlanned = true
		for e, set := range plan {
			cl.replicas[e] = set
		}
	}
	cl.viewMu.Unlock()
}

// ReplicaView returns a copy of the current replica plan
// (expert -> ascending replica machines).
func (cl *Cluster) ReplicaView() map[int][]int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	out := make(map[int][]int, len(cl.replicas))
	for e, set := range cl.replicas {
		out[e] = append([]int(nil), set...)
	}
	return out
}

// replicateStep is the synchronous sync round, run at the step barrier
// after every store merged to the step's version: each replicated
// expert's owner streams its post-merge weights to every replica that
// has not already acked them, bounded by the in-flight window. The
// round blocks until every stream acked or failed, so "in-sync" is a
// property the owner can assert at the barrier, and a failed stream is
// observable lag (ReplFailures) the anti-entropy sweep repairs — never
// silent divergence.
func (cl *Cluster) replicateStep() {
	if !cl.replicationOn() {
		return
	}
	cl.ensureReplicaPlan()
	cl.viewMu.Lock()
	rep := cl.repViewLocked()
	owner := append([]int(nil), rep.owner...)
	alive := append([]bool(nil), rep.alive...)
	plan := make(map[int][]int, len(cl.replicas))
	for e, set := range cl.replicas {
		plan[e] = append([]int(nil), set...)
	}
	cl.viewMu.Unlock()

	window := cl.cfg.ReplWindow
	if window <= 0 {
		window = DefaultReplWindow
	}
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	for e := 0; e < cl.cfg.NumExperts; e++ {
		set := plan[e]
		if len(set) == 0 {
			continue
		}
		o := owner[e]
		if o < 0 || o >= len(alive) || !alive[o] {
			continue // a dead owner's experts are promotion's problem
		}
		id := transport.ExpertID{Expert: uint32(e)}
		payload, ver, err := cl.stores[o].exportExpert(id)
		if err != nil {
			continue // not hosted (unrecoverable expert): nothing to sync
		}
		stream, err := transport.EncodeRepl(ver, payload)
		if err != nil {
			continue
		}
		for _, r := range set {
			if r == o || r < 0 || r >= len(alive) || !alive[r] {
				continue
			}
			if av, ok := cl.replAckedVer(e, r); ok && av >= ver {
				continue // already in sync: nothing to stream
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(e, o, r int, ver uint64, stream []byte) {
				defer func() { <-sem; wg.Done() }()
				if err := cl.clients[o].Replicate(context.Background(), cl.addrs[r], id, stream); err != nil {
					cl.robust.AddReplFailure()
					return
				}
				cl.robust.AddReplPush()
				cl.setReplAcked(e, r, ver)
			}(e, o, r, ver, stream)
		}
	}
	wg.Wait()
}

// antiEntropy runs the seeded repair sweep on its configured cadence.
func (cl *Cluster) antiEntropy(step int) {
	if !cl.replicationOn() {
		return
	}
	every := cl.cfg.AntiEntropyEvery
	if every <= 0 {
		every = DefaultAntiEntropyEvery
	}
	if step%every != 0 {
		return
	}
	cl.sweepReplicas(step)
}

// sweepReplicas walks every replicated expert — scan origin rotated by
// the seed and step, so over time each expert is swept first equally
// often — repairing replica membership and re-streaming any replica
// whose version digest diverged from the owner's.
func (cl *Cluster) sweepReplicas(step int) {
	cl.viewMu.Lock()
	rep := cl.repViewLocked()
	owner := append([]int(nil), rep.owner...)
	alive := append([]bool(nil), rep.alive...)
	exps := make([]int, 0, len(cl.replicas))
	for e := range cl.replicas {
		exps = append(exps, e)
	}
	cl.viewMu.Unlock()
	if len(exps) == 0 {
		return
	}
	sort.Ints(exps)
	off := int(mix64(uint64(cl.cfg.Seed)^uint64(step)*0x9E3779B97F4A7C15) % uint64(len(exps)))
	for i := range exps {
		cl.repairExpert(exps[(i+off)%len(exps)], owner, alive)
	}
}

// repairExpert is one expert's anti-entropy pass: membership repair
// under viewMu (dead or promoted-away holders are dropped, the set is
// topped back up to Replicas with a deterministic seeded pick), then a
// version-digest exchange against the owner — any replica missing the
// owner's version gets the snapshot re-streamed. Direct store reads
// stand in for the digest RPC of a multi-process deployment; the repair
// stream itself goes over the fenced wire like every sync.
func (cl *Cluster) repairExpert(e int, owner []int, alive []bool) {
	o := owner[e]
	if o < 0 || o >= len(alive) || !alive[o] {
		return // ownerless experts are failover's problem, not repair's
	}
	id := transport.ExpertID{Expert: uint32(e)}

	cl.viewMu.Lock()
	set := cl.replicas[e]
	keep := make([]int, 0, len(set))
	for _, r := range set {
		if r != o && r >= 0 && r < len(alive) && alive[r] {
			keep = append(keep, r)
		}
	}
	retargets := len(set) - len(keep)
	if len(keep) < cl.cfg.Replicas {
		in := make(map[int]bool, len(keep))
		for _, r := range keep {
			in[r] = true
		}
		var cand []int
		for m, a := range alive {
			if a && m != o && !in[m] {
				cand = append(cand, m)
			}
		}
		sort.SliceStable(cand, func(i, j int) bool {
			si, sj := cl.replicaScore(e, cand[i]), cl.replicaScore(e, cand[j])
			if si != sj {
				return si > sj
			}
			return cand[i] < cand[j]
		})
		for _, m := range cand {
			if len(keep) >= cl.cfg.Replicas {
				break
			}
			keep = append(keep, m)
			retargets++
		}
		sort.Ints(keep)
	}
	cl.replicas[e] = keep
	cl.viewMu.Unlock()
	for i := 0; i < retargets; i++ {
		cl.robust.AddReplRetarget()
	}

	payload, ver, err := cl.stores[o].exportExpert(id)
	if err != nil {
		return
	}
	var stream []byte
	for _, r := range keep {
		if ent, ok := cl.stores[r].replicaAt(id); ok && ent.ver >= ver {
			cl.setReplAcked(e, r, ent.ver)
			continue // digests agree: in sync
		}
		if stream == nil {
			if stream, err = transport.EncodeRepl(ver, payload); err != nil {
				return
			}
		}
		if err := cl.clients[o].Replicate(context.Background(), cl.addrs[r], id, stream); err != nil {
			cl.robust.AddReplFailure()
			continue
		}
		cl.robust.AddReplRepair()
		cl.setReplAcked(e, r, ver)
	}
}

// promoteInSync attempts the lossless failover path for expert e, whose
// owner `dead` was just declared lost inside the fenced epoch: a
// surviving replica that acked the dead owner's last merged version is
// promoted to owner. The promoted weights are exactly the bytes the
// owner last published, so pulls parked on the step's expected version
// proceed with zero staleness and the run stays bit-identical to an
// unfailed one. Returns the promoted machine, or -1 when no in-sync
// replica survives (recovery then falls back to the lossy
// stale-replica/checkpoint path). The first quorum viewer to process
// the loss commits the promotion through the migration-style override —
// atomic with the ownership flip under viewMu — and later viewers adopt
// it; the replica scan is ascending, so every viewer picks identically.
func (cl *Cluster) promoteInSync(e, dead, step int, aliveList []int, epoch uint64) int {
	if !cl.replicationOn() {
		return -1
	}
	id := transport.ExpertID{Expert: uint32(e)}
	alive := make(map[int]bool, len(aliveList))
	for _, m := range aliveList {
		alive[m] = true
	}
	cl.viewMu.Lock()
	if o, ok := cl.overrides[e]; ok && o != dead && alive[o] {
		cl.viewMu.Unlock()
		if _, hosted := cl.stores[o].get(id); hosted {
			return o // an earlier viewer already promoted this round
		}
		return -1
	}
	set := append([]int(nil), cl.replicas[e]...)
	cl.viewMu.Unlock()
	if len(set) == 0 {
		return -1
	}
	var want uint64
	if cl.train != nil {
		want = uint64(step - 1)
	}
	pick := -1
	var ent *replicaEntry
	for _, r := range set {
		if r == dead || !alive[r] || r < 0 || r >= len(cl.stores) {
			continue
		}
		if re, ok := cl.stores[r].replicaAt(id); ok && re.ver == want {
			pick, ent = r, re
			break
		}
	}
	if pick < 0 {
		return -1
	}
	// Install a clone: the replica entry's object may still be handed
	// out by replica serves, and the promoted copy is about to be
	// mutated by merges.
	ex := ent.ex.Clone()
	if cl.train != nil {
		cl.stores[pick].installAt(id, ex, ent.ver)
	} else {
		cl.stores[pick].install(id, ex)
	}
	cl.stores[pick].dropReplica(id)
	cl.viewMu.Lock()
	cl.overrides[e] = pick
	cl.stripReplicaLocked(e, pick)
	cl.promotions = append(cl.promotions, promotionRecord{expert: e, machine: pick, epoch: epoch})
	cl.viewMu.Unlock()
	cl.robust.AddPromotion()
	return pick
}

// replicaServe returns a surviving replica's copy of expert e at
// exactly version want, or nil. The serve is lossless — the bytes are
// the owner's own published snapshot for that version — so callers
// account no staleness and do not enter degradation mode.
func (cl *Cluster) replicaServe(e int, want uint64) *moe.Expert {
	if !cl.replicationOn() {
		return nil
	}
	cl.viewMu.Lock()
	rep := cl.repViewLocked()
	set := make([]int, 0, len(cl.replicas[e]))
	for _, r := range cl.replicas[e] {
		if r >= 0 && r < len(rep.alive) && rep.alive[r] {
			set = append(set, r)
		}
	}
	cl.viewMu.Unlock()
	id := transport.ExpertID{Expert: uint32(e)}
	for _, r := range set {
		if ent, ok := cl.stores[r].replicaAt(id); ok && ent.ver == want {
			return ent.ex
		}
	}
	return nil
}

// localInSyncReplica returns machine m's own replica copy of expert e
// when it matches the owner's current version — the hedge's lossless
// serving copy. The owner is slow, not dead, so its version counter is
// still readable; the in-process read stands in for the version-digest
// probe a multi-process deployment would piggyback on the hedge timer.
func (cl *Cluster) localInSyncReplica(m, e int) (*moe.Expert, bool) {
	if !cl.replicationOn() || m < 0 || m >= len(cl.stores) {
		return nil, false
	}
	id := transport.ExpertID{Expert: uint32(e)}
	ent, ok := cl.stores[m].replicaAt(id)
	if !ok {
		return nil, false
	}
	owner := cl.currentOwner(e)
	if owner < 0 || owner >= len(cl.stores) || owner == m {
		return nil, false
	}
	if cl.stores[owner].versionOf(id) != ent.ver {
		return nil, false
	}
	return ent.ex, true
}
