// Permanent-failure handling: heartbeat-driven membership, quorum-gated
// deterministic expert re-homing, and checkpoint-backed recovery.
//
// The data-centric paradigm (§3.2) is what makes this tractable: an
// expert is an independently pullable object, not a participant in a
// collective, so losing a machine for good means re-homing its experts
// — not rebuilding a world-sized communicator. Every transition here is
// a pure function of the config seed and the injected fault schedule,
// so a failover scenario replays identically run after run.
//
// Partition model (DESIGN.md §4): each machine keeps its *own*
// membership view and may only declare peers dead — and re-home their
// experts — when it can reach a strict majority of the configured
// cluster (with a deterministic lowest-id tiebreak for even splits). A
// minority side freezes its dead-man clocks and keeps computing in the
// stale-weights degradation mode instead of forking ownership. Every
// transition bumps the view's epoch; clients stamp their epoch into
// every request and servers fence anything older (transport.ErrFencedEpoch),
// so a zombie ex-owner's pushes can never be merged after failover. A
// fenced machine freezes until the majority readmits it, then adopts
// the majority's epoch and rebuilds its view memorylessly.
package livecluster

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"janus/internal/checkpoint"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// Membership defaults.
const (
	// DefaultDeadManSteps is how many consecutive heartbeat rounds a
	// machine may miss before survivors declare it dead.
	DefaultDeadManSteps = 2
	// DefaultHeartbeatTimeout bounds one liveness probe.
	DefaultHeartbeatTimeout = 250 * time.Millisecond
	// DefaultCheckpointKeep is how many committed checkpoint versions
	// are retained on disk.
	DefaultCheckpointKeep = 3
)

// memberView is one machine's private membership state. Nothing here is
// shared: under a partition the two sides legitimately disagree, and
// the quorum rule decides which side may act on its view. All views are
// guarded by the cluster's viewMu.
type memberView struct {
	self   int
	alive  []bool // per machine, as this machine sees it
	missed []int  // consecutive missed heartbeat rounds, per machine
	owner  []int  // expert -> owning machine under this view
	epoch  uint64 // bumps on every transition this view observes or adopts
	quorum bool   // last round reached a strict majority
	frozen bool   // fenced without readmission: halt compute until taken back
	catch  bool   // fenced with readmission: epoch is stale, reconcile next round
}

// homeMachine is the static (seed-time) owner of an expert: a balanced
// contiguous split of the expert range over the configured machines.
// When NumExperts divides evenly this is the classic block partition;
// when it does not, the leading machines carry one extra expert each —
// no divisibility requirement.
func (cl *Cluster) homeMachine(expert int) int {
	return expert * cl.cfg.Machines / cl.cfg.NumExperts
}

// canonicalOwner is the memoryless ownership rule every machine
// recomputes from (seed, expert, alive-set) alone — no coordination
// round: the home machine while it lives, else the seeded rendezvous
// pick among the living.
func canonicalOwner(seed int64, expert, home int, alive []int) int {
	for _, m := range alive {
		if m == home {
			return home
		}
	}
	return rendezvousOwner(seed, expert, alive)
}

// canonicalOwnerLocked is canonicalOwner with the cluster's migration
// overrides folded in: a live migration (or an InitialOwners placement)
// pins an expert to a specific machine, and that pin wins over the home
// assignment for as long as the pinned machine lives. Requires viewMu —
// overrides only mutate inside fence critical sections.
func (cl *Cluster) canonicalOwnerLocked(expert int, alive []int) int {
	if o, ok := cl.overrides[expert]; ok {
		for _, m := range alive {
			if m == o {
				return o
			}
		}
	}
	return canonicalOwner(cl.cfg.Seed, expert, cl.homeMachine(expert), alive)
}

// repViewLocked is the representative view the public accessors report:
// the lowest-id machine whose last round had quorum and is not fenced
// out — i.e. a member of the authoritative side. Requires viewMu.
func (cl *Cluster) repViewLocked() *memberView {
	for _, v := range cl.views {
		if v.quorum && !v.frozen {
			return v
		}
	}
	return cl.views[0]
}

// currentOwner returns the machine that owns an expert under the
// authoritative membership view.
func (cl *Cluster) currentOwner(expert int) int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.repViewLocked().owner[expert]
}

// ownerFor returns the owner of an expert as machine m sees it — the
// view m's own pulls and pushes route by (a partitioned minority keeps
// its stale view, which is exactly what the epoch fence defends against).
func (cl *Cluster) ownerFor(m, expert int) int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.views[m].owner[expert]
}

// OwnerView returns a copy of the authoritative expert→machine
// ownership view.
func (cl *Cluster) OwnerView() []int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return append([]int(nil), cl.repViewLocked().owner...)
}

// Epoch returns the authoritative membership epoch: it increments on
// every failover re-home and every rejoin reclaim.
func (cl *Cluster) Epoch() int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return int(cl.repViewLocked().epoch)
}

// isAlive reports the membership state of machine m under the
// authoritative view.
func (cl *Cluster) isAlive(m int) bool {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.repViewLocked().alive[m]
}

// AliveMachines returns how many machines the authoritative view
// considers alive.
func (cl *Cluster) AliveMachines() int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	n := 0
	for _, a := range cl.repViewLocked().alive {
		if a {
			n++
		}
	}
	return n
}

// PartitionedMachines counts machines currently outside the
// authoritative side: without quorum in their own view, or frozen by
// the epoch fence. Zero in a healthy cluster.
func (cl *Cluster) PartitionedMachines() int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	n := 0
	for _, v := range cl.views {
		if !v.quorum || v.frozen {
			n++
		}
	}
	return n
}

// machineRuns reports whether machine m's own view lets it compute this
// step. A machine fenced out of the cluster freezes; a machine that
// merely lost quorum keeps computing in degradation mode (its pushes
// are fenced on the wire, so it cannot corrupt the majority).
func (cl *Cluster) machineRuns(m int) bool {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return !cl.views[m].frozen
}

// noteFenced records that one of machine m's requests was rejected with
// a stale epoch. Without readmission the cluster has moved on without
// us: freeze until the majority takes us back (reconcile, phase 2b).
// With readmission only the epoch is stale: catch up next round but
// keep computing.
func (cl *Cluster) noteFenced(m int, fe *transport.FencedEpochError) {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	if fe.Readmitted {
		cl.views[m].catch = true
	} else {
		cl.views[m].frozen = true
	}
}

// epochGate adapts machine m's membership view to the transport
// server's fencing hook.
type epochGate struct {
	cl *Cluster
	m  int
}

func (g *epochGate) Epoch() uint64 {
	g.cl.viewMu.Lock()
	defer g.cl.viewMu.Unlock()
	return g.cl.views[g.m].epoch
}

func (g *epochGate) MachineAlive(machine uint32) bool {
	g.cl.viewMu.Lock()
	defer g.cl.viewMu.Unlock()
	v := g.cl.views[g.m]
	if int(machine) >= len(v.alive) {
		return false
	}
	return v.alive[machine]
}

// mix64 is the splitmix64 finalizer — a cheap, seedable, well-mixed
// hash for rendezvous scoring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rendezvousOwner picks the new owner of an expert among candidate
// machines by highest seeded rendezvous score. Every survivor computes
// the same answer from (seed, expert, candidates) alone — no
// coordination round needed — and removing a machine only moves the
// experts that machine owned (the rendezvous minimal-reshuffle
// property).
func rendezvousOwner(seed int64, expert int, candidates []int) int {
	best, bestScore := -1, uint64(0)
	for _, m := range candidates {
		h := mix64(uint64(seed)*0x9E3779B97F4A7C15 ^
			uint64(expert+1)*0xBF58476D1CE4E5B9 ^
			uint64(m+1)*0x94D049BB133111EB)
		if best == -1 || h > bestScore || (h == bestScore && m < best) {
			best, bestScore = m, h
		}
	}
	return best
}

// probeResult is one (src, dst) liveness probe's outcome.
type probeResult struct {
	ok         bool   // pong received
	fenced     bool   // typed stale-epoch rejection (the peer is up!)
	readmitted bool   // the peer's view has src alive
	epoch      uint64 // the peer's epoch, when a response carried one
}

// probe sends one liveness probe from src to dst. A fenced rejection is
// evidence of reachability — the peer answered — it just refuses to
// serve our epoch.
func (cl *Cluster) probe(ctx context.Context, src, dst int) probeResult {
	info, err := cl.clients[src].Ping(ctx, cl.addrs[dst])
	var fe *transport.FencedEpochError
	switch {
	case err == nil:
		return probeResult{ok: true, readmitted: info.Readmitted, epoch: info.Epoch}
	case errors.As(err, &fe):
		return probeResult{fenced: true, readmitted: fe.Readmitted, epoch: fe.RemoteEpoch}
	default:
		return probeResult{}
	}
}

// quorumFor reports whether machine m's probe row reaches a strict
// majority of the configured cluster: itself plus every peer that
// answered (pong or fence). An exact half is broken deterministically
// in favour of the side holding the lowest machine id, so an even split
// elects exactly one acting side with no coordination.
func (cl *Cluster) quorumFor(m int, row []probeResult) bool {
	M := len(row) // current membership size, including joined machines
	reach := 1
	minOwn, minOther := m, -1
	for t := 0; t < M; t++ {
		if t == m {
			continue
		}
		if row[t].ok || row[t].fenced {
			reach++
			if t < minOwn {
				minOwn = t
			}
		} else if minOther == -1 || t < minOther {
			minOther = t
		}
	}
	if 2*reach > M {
		return true
	}
	return 2*reach == M && (minOther == -1 || minOwn < minOther)
}

// heartbeatRound runs one membership round for the given step, in two
// phases:
//
//	Phase 1: every non-fenced machine probes every peer, all pairs
//	concurrently under one bounded, cancellable round context — a hung
//	peer costs the probe budget once, not once per pair, and can never
//	stall the round past it.
//
//	Phase 2a: per-machine transitions in ascending machine order. A
//	machine first checks its fences (a stale-epoch rejection without
//	readmission freezes it), then its quorum; only with quorum do its
//	dead-man clocks advance, peers fail over, and healed peers rejoin.
//	Without quorum the view is left exactly as it was — a minority
//	cannot fork ownership, it can only degrade.
//
//	Phase 2b: fenced and catch-up machines re-probe and reconcile —
//	after 2a, so a machine the majority readmitted this very round
//	adopts the post-rejoin epoch in the same round it healed.
func (cl *Cluster) heartbeatRound(step int) {
	cfg := cl.cfg
	deadman := cfg.DeadManSteps
	if deadman <= 0 {
		deadman = DefaultDeadManSteps
	}
	hbTimeout := cfg.HeartbeatTimeout
	if hbTimeout <= 0 {
		hbTimeout = DefaultHeartbeatTimeout
	}
	M := cl.numMachines() // joined machines heartbeat like everyone else

	cl.viewMu.Lock()
	sidelined := make([]bool, M) // frozen or catching up: handled in 2b
	for m, v := range cl.views {
		sidelined[m] = v.frozen || v.catch
	}
	cl.viewMu.Unlock()

	// Phase 1: concurrent all-pairs probes under one bounded context.
	res := make([][]probeResult, M)
	for m := range res {
		res[m] = make([]probeResult, M)
	}
	roundCtx, cancel := context.WithTimeout(context.Background(), hbTimeout)
	var wg sync.WaitGroup
	for src := 0; src < M; src++ {
		if sidelined[src] {
			continue
		}
		for dst := 0; dst < M; dst++ {
			if dst == src {
				continue
			}
			wg.Add(1)
			go func(src, dst int) {
				defer wg.Done()
				res[src][dst] = cl.probe(roundCtx, src, dst)
			}(src, dst)
		}
	}
	wg.Wait()
	cancel()

	// The checkpoint read is shared across every machine's transitions
	// this round (each would load the same committed version).
	var snap *checkpoint.Snapshot
	snapLoaded := false
	loadSnap := func() *checkpoint.Snapshot {
		if !snapLoaded {
			snapLoaded = true
			if cfg.CheckpointDir != "" {
				// The full CRC-verified restore path on purpose: a torn
				// or bit-flipped checkpoint is skipped here, not trusted.
				if s, _, err := checkpoint.LoadLatest(cfg.CheckpointDir); err == nil {
					snap = s
				}
			}
		}
		return snap
	}

	// Phase 2a: quorum-gated per-machine transitions, ascending order.
	for m := 0; m < M; m++ {
		if sidelined[m] {
			continue
		}
		fencedOut, catching := false, false
		for t := 0; t < M; t++ {
			if t == m || !res[m][t].fenced {
				continue
			}
			if res[m][t].readmitted {
				catching = true
			} else {
				fencedOut = true
			}
		}
		if fencedOut || catching {
			cl.viewMu.Lock()
			if fencedOut {
				cl.views[m].frozen = true
			} else {
				cl.views[m].catch = true
			}
			cl.viewMu.Unlock()
			sidelined[m] = true // reconcile below
			continue
		}
		if !cl.quorumFor(m, res[m]) {
			cl.viewMu.Lock()
			cl.views[m].quorum = false
			cl.viewMu.Unlock()
			cl.robust.AddQuorumStall()
			continue // minority: dead-man clocks freeze, nothing transitions
		}
		cl.viewMu.Lock()
		v := cl.views[m]
		v.quorum = true
		// Epoch adoption: a reachable peer with a newer epoch proves we
		// missed a transition; adopt it so our traffic stays unfenced.
		for t := 0; t < M; t++ {
			if t != m && res[m][t].ok && res[m][t].epoch > v.epoch {
				v.epoch = res[m][t].epoch
			}
		}
		epoch := v.epoch
		cl.viewMu.Unlock()
		cl.clients[m].SetEpoch(epoch)
		for t := 0; t < M; t++ {
			if t == m {
				continue
			}
			alive := func() bool {
				cl.viewMu.Lock()
				defer cl.viewMu.Unlock()
				return cl.views[m].alive[t]
			}()
			switch {
			case res[m][t].ok && !alive:
				cl.rejoinView(m, t, step)
			case res[m][t].ok:
				cl.viewMu.Lock()
				cl.views[m].missed[t] = 0
				cl.viewMu.Unlock()
			case alive:
				cl.viewMu.Lock()
				cl.views[m].missed[t]++
				dead := cl.views[m].missed[t] >= deadman
				cl.viewMu.Unlock()
				if dead {
					cl.failoverView(m, t, step, loadSnap())
				}
			}
		}
	}

	// Phase 2b: fenced / catch-up machines re-probe and reconcile.
	for m := 0; m < M; m++ {
		if sidelined[m] {
			cl.reconcile(m, hbTimeout)
		}
	}
}

// failoverView declares machine dead in m's view and re-homes the
// experts it owned under the canonical rule, restoring into m's own
// store every expert the rule assigns to m — from the freshest
// recoverable state, the newest of (last committed checkpoint, newest
// stale replica held by any survivor). An expert with no recoverable
// state anywhere keeps its dead owner in the view — pulls for it keep
// degrading exactly as under a transient outage, and it is reclaimed
// when (if ever) the machine rejoins. Each quorum machine runs the same
// pure recompute, so the survivors' views agree without a coordination
// round; the lowest alive machine records the cluster-level counters
// exactly once.
func (cl *Cluster) failoverView(m, dead, step int, snap *checkpoint.Snapshot) {
	cl.viewMu.Lock()
	v := cl.views[m]
	if !v.alive[dead] {
		cl.viewMu.Unlock()
		return
	}
	v.alive[dead] = false
	v.missed[dead] = 0
	var aliveList []int
	for mm, a := range v.alive {
		if a {
			aliveList = append(aliveList, mm)
		}
	}
	v.epoch++
	epoch := v.epoch
	var owned []int
	for e := 0; e < cl.cfg.NumExperts; e++ {
		if v.owner[e] == dead {
			owned = append(owned, e)
		}
	}
	cl.viewMu.Unlock()
	cl.clients[m].SetEpoch(epoch)
	recorder := len(aliveList) > 0 && aliveList[0] == m
	if recorder {
		cl.robust.AddFailover()
	}
	if len(aliveList) == 0 {
		return // nothing left to re-home onto
	}

	rehomed := 0
	maxAge := 0
	for _, e := range owned {
		// Lossless path first: promote a surviving in-sync replica — it
		// acked the dead owner's last merged version, so the run
		// continues with zero staleness. Quorum-gated like the rest of
		// this recompute and committed inside the epoch just fenced.
		if p := cl.promoteInSync(e, dead, step, aliveList, epoch); p >= 0 {
			cl.viewMu.Lock()
			v.owner[e] = p
			cl.viewMu.Unlock()
			rehomed++
			continue
		}

		cl.viewMu.Lock()
		next := cl.canonicalOwnerLocked(e, aliveList)
		// The lossy re-home may land on a machine anti-entropy drafted
		// into the replica set; ownership and backup must stay disjoint.
		cl.stripReplicaLocked(e, next)
		cl.viewMu.Unlock()

		// Pick the freshest recoverable copy of the expert's weights.
		var ex *moe.Expert
		srcStep := -1
		fromCkpt := false
		if snap != nil {
			if payload, ok := snap.Experts[uint32(e)]; ok {
				if dec, err := decodeExpert(payload); err == nil {
					ex, srcStep, fromCkpt = dec, snap.Step, true
				}
			}
		}
		cl.staleMu.Lock()
		for _, s := range aliveList {
			if ent, ok := cl.stale[s][e]; ok && ent.step > srcStep {
				ex, srcStep, fromCkpt = ent.ex.Clone(), ent.step, false
			}
		}
		cl.staleMu.Unlock()
		if ex == nil {
			continue // unrecoverable: no durable copy and no replica
		}
		cl.viewMu.Lock()
		v.owner[e] = next
		cl.viewMu.Unlock()
		rehomed++
		if next != m {
			continue // the new owner installs when it processes the loss
		}
		if fromCkpt {
			cl.robust.AddRestore()
		}
		if age := step - srcStep; age > maxAge {
			maxAge = age
		}
		id := transport.ExpertID{Expert: uint32(e)}
		cl.stores[m].dropReplica(id) // owning supersedes backing up
		if cl.train != nil {
			// During training the re-homed weights stand in for the
			// version pulls of step `step` expect (the pre-step state),
			// so parked pullers resume deterministically.
			cl.stores[m].installAt(id, ex, uint64(step-1))
		} else {
			cl.stores[m].install(id, ex)
		}
	}
	if recorder && rehomed > 0 {
		cl.robust.AddRehomedExperts(int64(rehomed))
	}
	if maxAge > 0 {
		cl.viewMu.Lock()
		if maxAge > cl.pendingStaleness {
			cl.pendingStaleness = maxAge
		}
		cl.viewMu.Unlock()
	}
}

// rejoinView marks machine t alive again in m's view and hands the
// canonical owners their experts back: for each expert m interim-owned,
// m installs its live object into the new owner's store — the heal-time
// re-sync, so a machine returning from a partition adopts the
// majority's current weights rather than serving its frozen
// pre-partition copies — and drops its own.
func (cl *Cluster) rejoinView(m, t, step int) {
	cl.viewMu.Lock()
	v := cl.views[m]
	if v.alive[t] {
		cl.viewMu.Unlock()
		return
	}
	v.alive[t] = true
	v.missed[t] = 0
	var aliveList []int
	for mm, a := range v.alive {
		if a {
			aliveList = append(aliveList, mm)
		}
	}
	v.epoch++
	epoch := v.epoch
	type move struct{ e, from, to int }
	var moves []move
	for e := 0; e < cl.cfg.NumExperts; e++ {
		next := cl.canonicalOwnerLocked(e, aliveList)
		if v.owner[e] != next {
			moves = append(moves, move{e, v.owner[e], next})
			v.owner[e] = next
			// A reclaiming home owner may sit in the replica set it was
			// drafted into while it did not own the expert; strip it so
			// ownership and backup stay disjoint.
			cl.stripReplicaLocked(e, next)
		}
	}
	cl.viewMu.Unlock()
	cl.clients[m].SetEpoch(epoch)
	for _, mv := range moves {
		if mv.from != m {
			continue // that interim owner hands off in its own view
		}
		id := transport.ExpertID{Expert: uint32(mv.e)}
		if ex, ok := cl.stores[m].get(id); ok && cl.stores[mv.to] != cl.stores[m] {
			if cl.train != nil {
				cl.stores[mv.to].installAt(id, ex, uint64(step-1))
			} else {
				cl.stores[mv.to].install(id, ex)
			}
		}
		cl.stores[mv.to].dropReplica(id) // owning supersedes backing up
		cl.stores[m].remove(id)
	}
	if aliveList[0] == m && len(moves) > 0 {
		cl.robust.AddRehomedExperts(int64(len(moves)))
	}
}

// reconcile is the heal path of a fenced or catch-up machine: re-probe
// every peer with the stale epoch and, if the majority has readmitted
// us (a pong, or a fence carrying the readmitted flag) and a quorum
// answers, adopt the highest observed epoch, rebuild the membership
// view memorylessly from the canonical rule, and resume. Otherwise stay
// frozen — the majority has moved on and not yet taken us back.
func (cl *Cluster) reconcile(m int, hbTimeout time.Duration) {
	M := cl.numMachines()
	row := make([]probeResult, M)
	ctx, cancel := context.WithTimeout(context.Background(), hbTimeout)
	var wg sync.WaitGroup
	for t := 0; t < M; t++ {
		if t == m {
			continue
		}
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			row[t] = cl.probe(ctx, m, t)
		}(t)
	}
	wg.Wait()
	cancel()

	readmitted := false
	var maxEpoch uint64
	for t := 0; t < M; t++ {
		if t == m {
			continue
		}
		if row[t].ok || (row[t].fenced && row[t].readmitted) {
			readmitted = true
		}
		if (row[t].ok || row[t].fenced) && row[t].epoch > maxEpoch {
			maxEpoch = row[t].epoch
		}
	}
	if !readmitted || !cl.quorumFor(m, row) {
		cl.viewMu.Lock()
		cl.views[m].quorum = false
		cl.viewMu.Unlock()
		cl.robust.AddQuorumStall()
		return
	}
	cl.viewMu.Lock()
	v := cl.views[m]
	// Prefer adopting an answering authoritative peer's view wholesale
	// (its pong conceptually carries the membership snapshot, exactly
	// like an ADMIT). Rebuilding liveness from this one probe round
	// can demote a peer the majority still holds inside its dead-man
	// budget — same epoch, different owners: an ownership fork the
	// churn property test pins. Only when no authoritative peer at the
	// adopted epoch answered do we fall back to the memoryless
	// recompute from our own probes.
	var donor *memberView
	for t := 0; t < M; t++ {
		if t == m || !(row[t].ok || row[t].fenced) {
			continue
		}
		dv := cl.views[t]
		if dv.quorum && !dv.frozen && !dv.catch && dv.epoch == maxEpoch && dv.epoch >= v.epoch {
			donor = dv
			break
		}
	}
	if donor != nil {
		v.epoch = donor.epoch
		copy(v.alive, donor.alive)
		copy(v.missed, donor.missed)
		copy(v.owner, donor.owner)
		v.alive[m] = true
		v.missed[m] = 0
	} else {
		if maxEpoch > v.epoch {
			v.epoch = maxEpoch
		}
		for t := 0; t < M; t++ {
			v.alive[t] = t == m || row[t].ok || row[t].fenced
			v.missed[t] = 0
		}
		var aliveList []int
		for mm, a := range v.alive {
			if a {
				aliveList = append(aliveList, mm)
			}
		}
		for e := 0; e < cl.cfg.NumExperts; e++ {
			v.owner[e] = cl.canonicalOwnerLocked(e, aliveList)
		}
	}
	v.frozen = false
	v.catch = false
	v.quorum = true
	epoch := v.epoch
	cl.viewMu.Unlock()
	cl.clients[m].SetEpoch(epoch)
}

// maybeCheckpoint commits a crash-consistent snapshot after the given
// step when checkpointing is configured and the step hits the cadence.
// The snapshot covers every expert whose owner is alive (a shard that
// died with its owner has nothing current to persist), the dense gate
// parameters, and the step counter.
func (cl *Cluster) maybeCheckpoint(step int) error {
	dir := cl.cfg.CheckpointDir
	if dir == "" {
		return nil
	}
	every := cl.cfg.CheckpointEvery
	if every < 1 {
		every = 1
	}
	if step%every != 0 {
		return nil
	}
	start := time.Now()
	snap := &checkpoint.Snapshot{
		Step:    step,
		Experts: make(map[uint32][]byte, cl.cfg.NumExperts),
		Dense:   encodeMatrix(cl.layer.Gate.W),
	}
	for e := 0; e < cl.cfg.NumExperts; e++ {
		owner := cl.currentOwner(e)
		if !cl.isAlive(owner) {
			continue
		}
		if ex, ok := cl.stores[owner].get(transport.ExpertID{Expert: uint32(e)}); ok {
			snap.Experts[uint32(e)] = encodeExpert(ex)
		}
	}
	bytes, err := checkpoint.Save(dir, snap)
	if err != nil {
		return fmt.Errorf("livecluster: checkpoint step %d: %w", step, err)
	}
	cl.robust.AddCheckpoint(bytes, time.Since(start).Nanoseconds())
	keep := cl.cfg.CheckpointKeep
	if keep < 1 {
		keep = DefaultCheckpointKeep
	}
	if err := checkpoint.Prune(dir, keep); err != nil {
		return fmt.Errorf("livecluster: checkpoint prune: %w", err)
	}
	return nil
}

// encodeMatrix serialises an arbitrary matrix (the dense-parameter
// entry of a checkpoint) as rows, cols, then little-endian float32s.
func encodeMatrix(m *tensor.Matrix) []byte {
	buf := make([]byte, 8+4*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(m.Cols))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(buf[8+4*i:], math.Float32bits(v))
	}
	return buf
}

// decodeMatrix reverses encodeMatrix.
func decodeMatrix(buf []byte) (*tensor.Matrix, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("livecluster: matrix payload too short")
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	if rows <= 0 || cols <= 0 || len(buf) != 8+4*rows*cols {
		return nil, fmt.Errorf("livecluster: bad matrix payload (%dx%d, %d bytes)", rows, cols, len(buf))
	}
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[8+4*i:]))
	}
	return m, nil
}
