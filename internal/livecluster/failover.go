// Permanent-failure handling: heartbeat-driven membership, deterministic
// expert re-homing, and checkpoint-backed recovery.
//
// The data-centric paradigm (§3.2) is what makes this tractable: an
// expert is an independently pullable object, not a participant in a
// collective, so losing a machine for good means re-homing its experts
// — not rebuilding a world-sized communicator. Every transition here is
// a pure function of the config seed and the injected fault schedule,
// so a failover scenario replays identically run after run.
package livecluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"janus/internal/checkpoint"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// Membership defaults.
const (
	// DefaultDeadManSteps is how many consecutive heartbeat rounds a
	// machine may miss before survivors declare it dead.
	DefaultDeadManSteps = 2
	// DefaultHeartbeatTimeout bounds one liveness probe.
	DefaultHeartbeatTimeout = 250 * time.Millisecond
	// DefaultCheckpointKeep is how many committed checkpoint versions
	// are retained on disk.
	DefaultCheckpointKeep = 3
)

// homeMachine is the static (seed-time) owner of an expert — the
// assignment every machine starts from and a rejoining machine
// reclaims. Validate guarantees divisibility, so the index is in range.
func (cl *Cluster) homeMachine(expert int) int {
	return expert / (cl.cfg.NumExperts / cl.cfg.Machines)
}

// currentOwner returns the machine that owns an expert under the
// current membership view.
func (cl *Cluster) currentOwner(expert int) int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.owner[expert]
}

// OwnerView returns a copy of the expert→machine ownership view.
func (cl *Cluster) OwnerView() []int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return append([]int(nil), cl.owner...)
}

// Epoch returns the membership epoch: it increments on every failover
// re-home and every rejoin reclaim.
func (cl *Cluster) Epoch() int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.epoch
}

// isAlive reports the membership state of machine m.
func (cl *Cluster) isAlive(m int) bool {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	return cl.alive[m]
}

// AliveMachines returns how many machines the membership view considers
// alive.
func (cl *Cluster) AliveMachines() int {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	n := 0
	for _, a := range cl.alive {
		if a {
			n++
		}
	}
	return n
}

// mix64 is the splitmix64 finalizer — a cheap, seedable, well-mixed
// hash for rendezvous scoring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rendezvousOwner picks the new owner of an expert among candidate
// machines by highest seeded rendezvous score. Every survivor computes
// the same answer from (seed, expert, candidates) alone — no
// coordination round needed — and removing a machine only moves the
// experts that machine owned (the rendezvous minimal-reshuffle
// property).
func rendezvousOwner(seed int64, expert int, candidates []int) int {
	best, bestScore := -1, uint64(0)
	for _, m := range candidates {
		h := mix64(uint64(seed)*0x9E3779B97F4A7C15 ^
			uint64(expert+1)*0xBF58476D1CE4E5B9 ^
			uint64(m+1)*0x94D049BB133111EB)
		if best == -1 || h > bestScore || (h == bestScore && m < best) {
			best, bestScore = m, h
		}
	}
	return best
}

// heartbeatRound runs one membership round for the given step: every
// alive machine probes every other machine over the regular transport
// connections, consecutive-miss counters advance, machines past the
// dead-man budget fail over, and previously dead machines that answer
// again rejoin and reclaim their home experts.
//
// A machine counts as reachable when at least one *other* alive machine
// can ping it; a lone survivor never declares itself dead.
func (cl *Cluster) heartbeatRound(step int) {
	cfg := cl.cfg
	deadman := cfg.DeadManSteps
	if deadman <= 0 {
		deadman = DefaultDeadManSteps
	}
	hbTimeout := cfg.HeartbeatTimeout
	if hbTimeout <= 0 {
		hbTimeout = DefaultHeartbeatTimeout
	}

	cl.viewMu.Lock()
	alive := append([]bool(nil), cl.alive...)
	cl.viewMu.Unlock()

	reachable := make([]bool, cfg.Machines)
	for target := 0; target < cfg.Machines; target++ {
		probed := false
		for src := 0; src < cfg.Machines && !reachable[target]; src++ {
			if src == target || !alive[src] {
				continue
			}
			probed = true
			ctx, cancel := context.WithTimeout(context.Background(), hbTimeout)
			if cl.clients[src].Ping(ctx, cl.addrs[target]) == nil {
				reachable[target] = true
			}
			cancel()
		}
		if !probed && alive[target] {
			// No other alive machine exists to probe this one: a lone
			// survivor stays alive by definition.
			reachable[target] = true
		}
	}

	for m := 0; m < cfg.Machines; m++ {
		switch {
		case reachable[m] && !alive[m]:
			cl.rejoin(m)
		case reachable[m]:
			cl.viewMu.Lock()
			cl.missed[m] = 0
			cl.viewMu.Unlock()
		case alive[m]:
			cl.viewMu.Lock()
			cl.missed[m]++
			dead := cl.missed[m] >= deadman
			cl.viewMu.Unlock()
			if dead {
				cl.failover(m, step)
			}
		}
	}
}

// failover declares machine dead and deterministically re-homes every
// expert it owned onto a surviving machine, reloading the freshest
// recoverable state: the newest of (last committed checkpoint, newest
// stale replica held by any survivor). An expert with no recoverable
// state anywhere keeps its dead owner in the view — pulls for it keep
// degrading exactly as under a transient outage, and it is reclaimed
// when (if ever) the machine rejoins.
func (cl *Cluster) failover(dead, step int) {
	cl.viewMu.Lock()
	if !cl.alive[dead] {
		cl.viewMu.Unlock()
		return
	}
	cl.alive[dead] = false
	var survivors []int
	for m, a := range cl.alive {
		if a {
			survivors = append(survivors, m)
		}
	}
	cl.viewMu.Unlock()
	cl.robust.AddFailover()
	if len(survivors) == 0 {
		return // nothing left to re-home onto
	}

	// The freshest durable state, if checkpointing is configured. The
	// read goes through the full CRC-verified restore path on purpose:
	// a torn or bit-flipped checkpoint is skipped here, not trusted.
	var snap *checkpoint.Snapshot
	if cl.cfg.CheckpointDir != "" {
		if s, _, err := checkpoint.LoadLatest(cl.cfg.CheckpointDir); err == nil {
			snap = s
		}
	}

	rehomed := 0
	maxAge := 0
	for e := 0; e < cl.cfg.NumExperts; e++ {
		if cl.currentOwner(e) != dead {
			continue
		}
		next := rendezvousOwner(cl.cfg.Seed, e, survivors)

		// Pick the freshest recoverable copy of the expert's weights.
		var ex *moe.Expert
		srcStep := -1
		fromCkpt := false
		if snap != nil {
			if payload, ok := snap.Experts[uint32(e)]; ok {
				if dec, err := decodeExpert(payload); err == nil {
					ex, srcStep, fromCkpt = dec, snap.Step, true
				}
			}
		}
		cl.staleMu.Lock()
		for _, s := range survivors {
			if ent, ok := cl.stale[s][e]; ok && ent.step > srcStep {
				ex, srcStep, fromCkpt = ent.ex.Clone(), ent.step, false
			}
		}
		cl.staleMu.Unlock()
		if ex == nil {
			continue // unrecoverable: no durable copy and no replica
		}
		if fromCkpt {
			cl.robust.AddRestore()
		}
		if age := step - srcStep; age > maxAge {
			maxAge = age
		}
		if cl.train != nil {
			// During training the re-homed weights stand in for the
			// version pulls of step `step` expect (the pre-step state),
			// so parked pullers resume deterministically.
			cl.stores[next].installAt(transport.ExpertID{Expert: uint32(e)}, ex, uint64(step-1))
		} else {
			cl.stores[next].install(transport.ExpertID{Expert: uint32(e)}, ex)
		}
		cl.viewMu.Lock()
		cl.owner[e] = next
		cl.viewMu.Unlock()
		rehomed++
	}
	if rehomed > 0 {
		cl.robust.AddRehomedExperts(int64(rehomed))
		cl.viewMu.Lock()
		cl.epoch++
		if maxAge > cl.pendingStaleness {
			cl.pendingStaleness = maxAge
		}
		cl.viewMu.Unlock()
	}
}

// rejoin marks a machine alive again and hands its home experts back.
// The restarted machine serves from its own store (the stand-in for a
// process that restarted and reloaded its shard from the checkpoint);
// the interim owners drop their copies so ownership stays unambiguous.
func (cl *Cluster) rejoin(m int) {
	cl.viewMu.Lock()
	cl.alive[m] = true
	cl.missed[m] = 0
	var reclaimed []int
	for e := 0; e < cl.cfg.NumExperts; e++ {
		if cl.homeMachine(e) == m && cl.owner[e] != m {
			reclaimed = append(reclaimed, e)
		}
	}
	cl.viewMu.Unlock()
	for _, e := range reclaimed {
		id := transport.ExpertID{Expert: uint32(e)}
		cl.viewMu.Lock()
		interim := cl.owner[e]
		cl.owner[e] = m
		cl.viewMu.Unlock()
		if interim != m && cl.stores[interim] != cl.stores[m] {
			cl.stores[interim].remove(id)
		}
	}
	if len(reclaimed) > 0 {
		cl.robust.AddRehomedExperts(int64(len(reclaimed)))
		cl.viewMu.Lock()
		cl.epoch++
		cl.viewMu.Unlock()
	}
}

// maybeCheckpoint commits a crash-consistent snapshot after the given
// step when checkpointing is configured and the step hits the cadence.
// The snapshot covers every expert whose owner is alive (a shard that
// died with its owner has nothing current to persist), the dense gate
// parameters, and the step counter.
func (cl *Cluster) maybeCheckpoint(step int) error {
	dir := cl.cfg.CheckpointDir
	if dir == "" {
		return nil
	}
	every := cl.cfg.CheckpointEvery
	if every < 1 {
		every = 1
	}
	if step%every != 0 {
		return nil
	}
	start := time.Now()
	snap := &checkpoint.Snapshot{
		Step:    step,
		Experts: make(map[uint32][]byte, cl.cfg.NumExperts),
		Dense:   encodeMatrix(cl.layer.Gate.W),
	}
	for e := 0; e < cl.cfg.NumExperts; e++ {
		owner := cl.currentOwner(e)
		if !cl.isAlive(owner) {
			continue
		}
		if ex, ok := cl.stores[owner].get(transport.ExpertID{Expert: uint32(e)}); ok {
			snap.Experts[uint32(e)] = encodeExpert(ex)
		}
	}
	bytes, err := checkpoint.Save(dir, snap)
	if err != nil {
		return fmt.Errorf("livecluster: checkpoint step %d: %w", step, err)
	}
	cl.robust.AddCheckpoint(bytes, time.Since(start).Nanoseconds())
	keep := cl.cfg.CheckpointKeep
	if keep < 1 {
		keep = DefaultCheckpointKeep
	}
	if err := checkpoint.Prune(dir, keep); err != nil {
		return fmt.Errorf("livecluster: checkpoint prune: %w", err)
	}
	return nil
}

// encodeMatrix serialises an arbitrary matrix (the dense-parameter
// entry of a checkpoint) as rows, cols, then little-endian float32s.
func encodeMatrix(m *tensor.Matrix) []byte {
	buf := make([]byte, 8+4*len(m.Data))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(m.Rows))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(m.Cols))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint32(buf[8+4*i:], math.Float32bits(v))
	}
	return buf
}

// decodeMatrix reverses encodeMatrix.
func decodeMatrix(buf []byte) (*tensor.Matrix, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("livecluster: matrix payload too short")
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	if rows <= 0 || cols <= 0 || len(buf) != 8+4*rows*cols {
		return nil, fmt.Errorf("livecluster: bad matrix payload (%dx%d, %d bytes)", rows, cols, len(buf))
	}
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[8+4*i:]))
	}
	return m, nil
}
