package livecluster

import (
	"bytes"
	"testing"
	"time"

	"janus/internal/faultinject"
	"janus/internal/metrics"
)

// partitionCfg is the split-brain harness: 3 machines, an aggressive
// one-round dead-man (so the majority fails over while the minority is
// still writing), and checkpoints every step so failover restores the
// exact pre-partition weights.
func partitionCfg(inj *faultinject.Injector, ckptDir string) Config {
	return Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 24, Seed: 42, Credits: 4,
		Injector:         inj,
		StaleFallback:    true,
		PullTimeout:      120 * time.Millisecond,
		PullRetries:      2,
		RetryBackoff:     2 * time.Millisecond,
		FailoverEnabled:  true,
		DeadManSteps:     1,
		HeartbeatTimeout: 150 * time.Millisecond,
		CheckpointDir:    ckptDir,
		CheckpointEvery:  1,
	}
}

// splitBrainProfile captures everything one partitioned training run
// exposes, for differential comparison.
type splitBrainProfile struct {
	state   [][]byte
	perStep []TrainResult
	totals  metrics.RobustnessSnapshot
	owners  []int
	alive   int
	parted  int
	epochs  []uint64
}

// runSplitBrain trains through a 2-vs-1 partition of steps [2,4).
// oneWay leaves the minority's writes flowing (the zombie-writer
// asymmetry: its requests arrive, the responses are lost); a two-way
// cut is the clean reference where zombie traffic physically cannot
// arrive. Training is driven one step at a time so membership can be
// observed mid-run (split calls are bitwise-equivalent to one call).
func runSplitBrain(t *testing.T, oneWay, fencingDisabled bool) splitBrainProfile {
	t.Helper()
	inj := faultinject.New(11)
	if oneWay {
		inj.PartitionOneWay(MachineLabel(0), MachineLabel(2), 2, 4)
		inj.PartitionOneWay(MachineLabel(1), MachineLabel(2), 2, 4)
	} else {
		inj.Partition(MachineLabel(0), MachineLabel(2), 2, 4)
		inj.Partition(MachineLabel(1), MachineLabel(2), 2, 4)
	}
	cfg := partitionCfg(inj, t.TempDir())
	cfg.FencingDisabled = fencingDisabled
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	p := splitBrainProfile{}
	for s := 1; s <= 7; s++ {
		res, err := cl.Train(TrainOptions{Steps: 1})
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		p.perStep = append(p.perStep, res)
	}
	p.state, err = cl.ExpertState()
	if err != nil {
		t.Fatal(err)
	}
	p.totals = cl.RobustnessTotals()
	p.owners = cl.OwnerView()
	p.alive = cl.AliveMachines()
	p.parted = cl.PartitionedMachines()
	cl.viewMu.Lock()
	for _, v := range cl.views {
		p.epochs = append(p.epochs, v.epoch)
	}
	cl.viewMu.Unlock()
	return p
}

func statesDiffer(a, b [][]byte) bool {
	for e := range a {
		if !bytes.Equal(a[e], b[e]) {
			return true
		}
	}
	return false
}

// The seeded split-brain differential. Three runs of the same seeded
// training schedule:
//
//	A: one-way partition (zombie writes arrive), fencing ON
//	B: two-way partition (zombie writes physically blocked) — the
//	   single-owner reference: exactly one side can make progress
//	C: one-way partition, fencing OFF
//
// With fencing the majority must reject every stale-epoch push, so A's
// final weights match B's bitwise even though the minority's gradients
// kept landing on the majority's doorstep. With fencing disabled those
// same pushes are accepted and merged, and C provably diverges.
func TestSplitBrainDifferential(t *testing.T) {
	a := runSplitBrain(t, true, false)
	b := runSplitBrain(t, false, false)
	c := runSplitBrain(t, true, true)

	// Fencing neutralised the zombie: bitwise identical to the run
	// where its traffic never arrived.
	assertSameState(t, "fenced one-way vs two-way", a.state, b.state)
	assertSameOutputs(t, "fenced one-way vs two-way",
		a.perStep[6].FinalOutputs, b.perStep[6].FinalOutputs)
	if !statesDiffer(c.state, b.state) {
		t.Fatal("unfenced zombie pushes left no trace: differential proves nothing")
	}

	// The fence actually fired in A (the zombie's pulls, pushes and
	// probes all carried the pre-failover epoch), and never in C.
	if a.totals.FenceRejections == 0 {
		t.Fatal("one-way partition with fencing on rejected nothing")
	}
	if c.totals.FenceRejections != 0 {
		t.Fatalf("fencing disabled but %d requests fenced", c.totals.FenceRejections)
	}
	// The minority froze its dead-man clocks instead of forking
	// ownership: quorum stalls recorded, exactly one failover, no
	// second view ever re-homed the majority's experts.
	if a.totals.QuorumStalls == 0 {
		t.Fatal("minority side never recorded a quorum stall")
	}
	for _, p := range []splitBrainProfile{a, b, c} {
		if p.totals.Failovers != 1 {
			t.Fatalf("failovers = %d, want exactly 1", p.totals.Failovers)
		}
	}

	// Mid-partition membership: the majority declared the minority dead
	// (2 alive) and the minority sat outside the authoritative side.
	mid := a.perStep[2] // step 3: partition active, failover done
	if mid.AliveMachines != 2 || mid.PartitionedMachines != 1 {
		t.Fatalf("mid-partition membership: alive=%d parted=%d, want 2/1",
			mid.AliveMachines, mid.PartitionedMachines)
	}

	// Post-heal: every run converged back to the full, home-owned
	// cluster; in the fenced runs every view adopted the same epoch.
	for _, p := range []splitBrainProfile{a, b, c} {
		if p.alive != 3 || p.parted != 0 {
			t.Fatalf("post-heal membership: alive=%d parted=%d, want 3/0", p.alive, p.parted)
		}
		for e, owner := range p.owners {
			if home := e / 3; owner != home {
				t.Fatalf("post-heal owner of expert %d = %d, want home %d", e, owner, home)
			}
		}
		final := p.perStep[6]
		if final.DegradedSteps != 0 {
			t.Fatalf("final step still degraded after heal: %+v", final)
		}
	}
	for _, p := range []splitBrainProfile{a, b} {
		for m, e := range p.epochs {
			if e != p.epochs[0] {
				t.Fatalf("machine %d epoch %d != machine 0 epoch %d after heal", m, e, p.epochs[0])
			}
		}
	}
}

// A gray failure: machine 2's server answers everything, just slowly.
// The EWMA score flags it, expert pulls hedge to the local replica
// after the deterministic delay, outputs stay bit-exact, and the
// dead-man never fires — slow is not dead.
func TestGrayFailureHedgedPulls(t *testing.T) {
	inj := faultinject.New(5)
	inj.Slow(MachineLabel(2), 25*time.Millisecond, 0, 1)
	cfg := partitionCfg(inj, "")
	cfg.PullTimeout = 2 * time.Second // the slow wire pull must succeed in the background
	cfg.DeadManSteps = 2
	cfg.HeartbeatTimeout = time.Second
	cfg.SlowAfter = 4 * time.Millisecond
	cfg.HedgeDelay = 8 * time.Millisecond
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	var hedgedSteps int
	for s := 1; s <= 4; s++ {
		res, err := cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if res.Degraded() {
			t.Fatalf("step %d degraded: a hedge-served replica is not a stale serve", s)
		}
		checkSurvivors(t, cl, res, ref)
		if res.Robust.HedgedPulls > 0 {
			hedgedSteps++
		}
	}
	totals := cl.RobustnessTotals()
	if totals.HedgedPulls == 0 || totals.HedgesWon == 0 {
		t.Fatalf("no hedges fired/won against a flagged-slow peer: %+v", totals)
	}
	if hedgedSteps == 0 {
		t.Fatal("no step reported hedged pulls")
	}
	// Throughput recovered without any membership change: slow != dead.
	if totals.Failovers != 0 {
		t.Fatalf("dead-man fired on a merely slow peer: %d failovers", totals.Failovers)
	}
	if cl.AliveMachines() != 3 || cl.PartitionedMachines() != 0 {
		t.Fatalf("membership changed under gray failure: alive=%d parted=%d",
			cl.AliveMachines(), cl.PartitionedMachines())
	}
}

// Under the same gray failure the pipelined trainer narrows its
// cross-step window instead of stalling deeper — and stays bitwise
// identical to the clean lockstep run, because depth is pure schedule.
func TestGrayFailureShrinksPipelineDepth(t *testing.T) {
	mkSlow := func() Config {
		inj := faultinject.New(6)
		inj.Slow(MachineLabel(1), 10*time.Millisecond, 0, 1)
		cfg := defaultCfg()
		cfg.Injector = inj
		cfg.SlowAfter = 2 * time.Millisecond
		cfg.PullTimeout = 2 * time.Second
		return cfg
	}
	opts := TrainOptions{Steps: 4, Microbatches: 2, Pipelined: true, Depth: 2}
	slowState, pres, _ := runTrain(t, mkSlow, opts)
	lockState, _, _ := runTrain(t, defaultCfg, TrainOptions{Steps: 4, Microbatches: 2})
	assertSameState(t, "depth-shrink", lockState, slowState)
	if pres.Synced {
		t.Fatal("pure-delay gray failure forced the step-synced schedule")
	}
	if pres.Pipeline.DepthShrinks == 0 {
		t.Fatal("flagged-slow peer did not shrink the pipeline window")
	}
}

// The heal race: with a one-round dead-man and a one-step partition,
// the checkpoint restore (round 2) and the heal (round 3) land in
// back-to-back membership rounds — the rejoin hands ownership home
// while the restored replicas are one step old, and the fenced
// minority reconciles in the same round the majority readmits it.
// Ownership must converge in every private view and the counters must
// reconcile exactly.
func TestHealRaceCheckpointRestoreConverges(t *testing.T) {
	inj := faultinject.New(9)
	inj.PartitionOneWay(MachineLabel(0), MachineLabel(2), 2, 3)
	inj.PartitionOneWay(MachineLabel(1), MachineLabel(2), 2, 3)
	cl, err := Start(partitionCfg(inj, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	var fenceSum int64
	for s := 1; s <= 6; s++ {
		res, err := cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		fenceSum += res.Robust.FenceRejections
		checkSurvivors(t, cl, res, ref)
		if s == 2 {
			// Restore in flight: the dead-man fired this very round.
			if res.Robust.Failovers != 1 || res.Robust.Restores != 3 {
				t.Fatalf("round-2 failover/restore: %+v", res.Robust)
			}
			// Only the majority side is asserted here: the minority's
			// own probes at partition onset may still be answered by
			// responses already in flight (TCP delivers them), so its
			// quorum loss can lag one round.
			if res.AliveMachines != 2 {
				t.Fatalf("round-2 membership: alive=%d, want 2", res.AliveMachines)
			}
		}
		if s >= 3 && res.Degraded() {
			t.Fatalf("step %d degraded after the same-round heal", s)
		}
	}

	// Every private view converged: full membership, home ownership,
	// one shared epoch, nobody frozen or catching up.
	cl.viewMu.Lock()
	for m, v := range cl.views {
		for tgt, a := range v.alive {
			if !a {
				t.Errorf("machine %d still sees %d dead after heal", m, tgt)
			}
		}
		for e, owner := range v.owner {
			if owner != e/3 {
				t.Errorf("machine %d sees expert %d on %d, want home %d", m, e, owner, e/3)
			}
		}
		if v.epoch != cl.views[0].epoch {
			t.Errorf("machine %d epoch %d != machine 0 epoch %d", m, v.epoch, cl.views[0].epoch)
		}
		if v.frozen || v.catch || !v.quorum {
			t.Errorf("machine %d not fully reconciled: frozen=%v catch=%v quorum=%v",
				m, v.frozen, v.catch, v.quorum)
		}
	}
	cl.viewMu.Unlock()

	totals := cl.RobustnessTotals()
	if totals.Failovers != 1 || totals.Restores != 3 {
		t.Fatalf("failovers=%d restores=%d, want 1/3", totals.Failovers, totals.Restores)
	}
	// 3 experts re-homed out at failover, 3 handed home at rejoin.
	if totals.RehomedExperts != 6 {
		t.Fatalf("rehomed = %d, want 6", totals.RehomedExperts)
	}
	if totals.FenceRejections == 0 {
		t.Fatal("the zombie's stale-epoch traffic was never fenced")
	}
	if fenceSum != totals.FenceRejections {
		t.Fatalf("per-step fence deltas sum to %d, totals say %d", fenceSum, totals.FenceRejections)
	}
}

// Regression: a hung peer (reads stall forever, writes vanish) must
// cost one bounded probe budget per membership round, not one per
// machine pair — the round is a single cancellable context, so its
// wall time stays near one heartbeat timeout no matter how many probes
// hang.
func TestHeartbeatRoundBoundedByHungPeer(t *testing.T) {
	inj := faultinject.New(8)
	inj.Partition(MachineLabel(0), MachineLabel(2), 1, 0)
	inj.Partition(MachineLabel(1), MachineLabel(2), 1, 0)
	cfg := partitionCfg(inj, "")
	cfg.DeadManSteps = 2
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	inj.SetStep(1)
	start := time.Now()
	cl.heartbeatRound(1)
	elapsed := time.Since(start)
	// 4 of the 6 probes hang until their context expires. Sequential
	// probing would take >= 4x the heartbeat timeout; the concurrent
	// round must stay near 1x.
	if budget := 3 * cfg.HeartbeatTimeout; elapsed > budget {
		t.Fatalf("hung peer stalled the round for %v (budget %v)", elapsed, budget)
	}
	// The bounded round still did its membership job.
	if cl.AliveMachines() != 3 {
		t.Fatalf("one missed round below the dead-man already changed membership: alive=%d", cl.AliveMachines())
	}
	if cl.PartitionedMachines() != 1 {
		t.Fatalf("cut-off machine still counted inside quorum: parted=%d", cl.PartitionedMachines())
	}
	if cl.RobustnessTotals().QuorumStalls == 0 {
		t.Fatal("minority machine recorded no quorum stall")
	}

	// The dead-man still fires through the bounded path.
	inj.SetStep(2)
	start = time.Now()
	cl.heartbeatRound(2)
	if elapsed := time.Since(start); elapsed > 3*cfg.HeartbeatTimeout {
		t.Fatalf("failover round overran its budget: %v", elapsed)
	}
	if cl.AliveMachines() != 2 {
		t.Fatalf("dead-man did not fire after %d missed rounds: alive=%d", cfg.DeadManSteps, cl.AliveMachines())
	}
}
