package livecluster

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"janus/internal/faultinject"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// elasticCfg is the base shape for the join/migration tests: three
// machines, nine experts (uneven-split capable), failover on so the
// heartbeat runs, no checkpointing — recovery paths that need it build
// on failoverCfg instead.
func elasticCfg() Config {
	return Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 24, Seed: 42, Credits: 4,
		PullTimeout: 500 * time.Millisecond, PullRetries: 3,
		RetryBackoff:    2 * time.Millisecond,
		FailoverEnabled: true, DeadManSteps: 2,
		HeartbeatTimeout: 200 * time.Millisecond,
	}
}

// checkViewAgreement enforces the two elastic-membership safety
// invariants at a step boundary: per-machine epochs never move
// backwards, and no two machines on the authoritative side (quorum,
// not fenced, not catching up) that share an epoch disagree on any
// expert's owner. Returns the epoch vector for the next call.
func checkViewAgreement(t *testing.T, cl *Cluster, prev []uint64) []uint64 {
	t.Helper()
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	auth := func(v *memberView) bool { return v.quorum && !v.frozen && !v.catch }
	cur := make([]uint64, len(cl.views))
	for m, v := range cl.views {
		cur[m] = v.epoch
		if m < len(prev) && v.epoch < prev[m] {
			t.Fatalf("machine %d epoch went backwards: %d -> %d", m, prev[m], v.epoch)
		}
	}
	for i, vi := range cl.views {
		if !auth(vi) {
			continue
		}
		for j := i + 1; j < len(cl.views); j++ {
			vj := cl.views[j]
			if !auth(vj) || vi.epoch != vj.epoch {
				continue
			}
			for e := range vi.owner {
				if vi.owner[e] != vj.owner[e] {
					t.Fatalf("ownership fork at epoch %d: machines %d and %d disagree on expert %d (%d vs %d)",
						vi.epoch, i, j, e, vi.owner[e], vj.owner[e])
				}
			}
		}
	}
	return cur
}

// A machine joins a running cluster over the wire and the heartbeat
// absorbs it within two rounds — no restart, no output change.
func TestJoinLiveMachine(t *testing.T) {
	cl, err := Start(elasticCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatal(err)
	}
	ref := cl.RunExpertCentricReference()
	for w := range ref {
		if !tensor.Equal(res.Outputs[w], ref[w]) {
			t.Fatalf("worker %d diverged before the join", w)
		}
	}

	j, err := cl.Join(0)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if j != 3 {
		t.Fatalf("joiner index = %d, want 3", j)
	}
	if cl.numMachines() != 4 {
		t.Fatalf("membership size = %d, want 4", cl.numMachines())
	}
	epochs := checkViewAgreement(t, cl, nil)

	// Two more steps: round one the quorum machines rejoin the newcomer
	// (epoch bump), round two the newcomer reconciles onto the bumped
	// epoch. Outputs must stay bit-identical throughout — the joiner
	// hosts nothing and runs no workers.
	for s := 0; s < 2; s++ {
		res, err = cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step after join: %v", err)
		}
		epochs = checkViewAgreement(t, cl, epochs)
		for w := range ref {
			if !tensor.Equal(res.Outputs[w], ref[w]) {
				t.Fatalf("worker %d diverged after the join", w)
			}
		}
	}
	if got := cl.AliveMachines(); got != 4 {
		t.Fatalf("alive machines = %d, want 4", got)
	}
	if got := cl.PartitionedMachines(); got != 0 {
		t.Fatalf("partitioned machines = %d, want 0", got)
	}
	for m, e := range epochs {
		if e != epochs[0] {
			t.Fatalf("machine %d epoch %d has not converged with machine 0's %d", m, e, epochs[0])
		}
	}
	if tot := cl.RobustnessTotals(); tot.Joins != 1 {
		t.Fatalf("joins counted = %d, want 1", tot.Joins)
	}
}

// A refused or failed JOIN leaves the cluster exactly as it was, and a
// later join still works; membership events without failover are
// rejected up front.
func TestJoinRefusedRollsBack(t *testing.T) {
	cfg := elasticCfg()
	cfg.FailoverEnabled = false
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Join(0); err == nil {
		t.Fatal("join without failover accepted")
	}
	if _, err := cl.Train(TrainOptions{Steps: 1, JoinAfterStep: 1}); err == nil {
		t.Fatal("membership events without failover accepted")
	}
	cl.Close()

	cl, err = Start(elasticCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Join(-1); err == nil {
		t.Fatal("negative seed accepted")
	}
	if _, err := cl.Join(99); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	// Force the seed machine off the authoritative side: it must refuse
	// the ADMIT and the half-registered joiner must be rolled back.
	cl.viewMu.Lock()
	cl.views[0].quorum = false
	cl.viewMu.Unlock()
	if _, err := cl.Join(0); err == nil {
		t.Fatal("non-quorum member admitted a join")
	}
	if cl.numMachines() != 3 {
		t.Fatalf("failed join left membership at %d machines, want 3", cl.numMachines())
	}
	cl.viewMu.Lock()
	views, rows := len(cl.views), len(cl.views[1].alive)
	cl.views[0].quorum = true
	cl.viewMu.Unlock()
	if views != 3 || rows != 3 {
		t.Fatalf("failed join left %d views with %d rows, want 3x3", views, rows)
	}
	// The rollback left the cluster fully usable: join for real and run.
	j, err := cl.Join(0)
	if err != nil {
		t.Fatalf("join after rollback: %v", err)
	}
	if j != 3 {
		t.Fatalf("joiner index = %d, want 3", j)
	}
	if _, err := cl.RunDataCentric(); err != nil {
		t.Fatalf("step after rollback+join: %v", err)
	}
}

// A completed migration flips ownership under one epoch bump, the new
// owner serves, the old owner keeps only a demoted stale replica, and
// forward outputs are unchanged (placement never touches the math).
func TestMigrateExpertLive(t *testing.T) {
	cl, err := Start(elasticCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range cl.ExpertLoadCounts() {
		total += c
	}
	if total == 0 {
		t.Fatal("no routed-token load recorded after a forward step")
	}

	if got := cl.currentOwner(0); got != 0 {
		t.Fatalf("expert 0 starts on machine %d, want 0", got)
	}
	epoch0 := cl.Epoch()
	if err := cl.MigrateExpert(0, 2); err != nil {
		t.Fatalf("MigrateExpert: %v", err)
	}
	if got := cl.currentOwner(0); got != 2 {
		t.Fatalf("expert 0 owned by machine %d after migration, want 2", got)
	}
	if got := cl.Epoch(); got != epoch0+1 {
		t.Fatalf("epoch = %d after migration, want %d", got, epoch0+1)
	}
	id := transport.ExpertID{Expert: 0}
	if _, ok := cl.stores[2].get(id); !ok {
		t.Fatal("target does not host the migrated expert")
	}
	if _, ok := cl.stores[0].get(id); ok {
		t.Fatal("source still hosts the migrated expert")
	}
	cl.staleMu.Lock()
	ent := cl.stale[0][0]
	cl.staleMu.Unlock()
	if ent == nil {
		t.Fatal("source did not demote its copy to a stale replica")
	}
	// Migrating to the current owner is a counted-free no-op.
	if err := cl.MigrateExpert(0, 2); err != nil {
		t.Fatalf("no-op migration: %v", err)
	}
	if tot := cl.RobustnessTotals(); tot.Migrations != 1 || tot.MigrationRollbacks != 0 {
		t.Fatalf("migration counters = %d/%d, want 1/0", tot.Migrations, tot.MigrationRollbacks)
	}
	checkViewAgreement(t, cl, nil)

	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatalf("step after migration: %v", err)
	}
	ref := cl.RunExpertCentricReference()
	for w := range ref {
		if !tensor.Equal(res.Outputs[w], ref[w]) {
			t.Fatalf("worker %d output changed after migration", w)
		}
	}
}

// The acceptance differential: a live join plus three live migrations
// (two onto the joiner) under injected gray-slow and drop faults land
// exactly the weights and outputs of an undisturbed static-placement
// run — bit for bit.
func TestTrainElasticDifferential(t *testing.T) {
	opts := TrainOptions{Steps: 8, LR: 0.05, Microbatches: 2}
	refState, _, refOuts := runTrain(t, elasticCfg, opts)

	inj := faultinject.New(7)
	// A gray-slow member and a lossy (but retry-survivable) one: drops
	// are bounded by the Times budget and every affected op retries
	// under an exactly-once token, so no gradient or pull is lost.
	inj.Slow("m1", 2*time.Millisecond, time.Millisecond, 1)
	inj.AddRule(faultinject.Rule{
		Label: "m2", FromStep: 3, ToStep: 6, Times: 2,
		Fault: faultinject.Fault{DropProb: 1},
	})
	cfg := elasticCfg()
	cfg.Injector = inj
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	eopts := opts
	eopts.JoinAfterStep = 2 // machine 3 joins after step 2, alive by step 3
	eopts.Migrations = []TrainMigration{
		{AfterStep: 4, Expert: 0, To: 3},
		{AfterStep: 5, Expert: 4, To: 3},
		{AfterStep: 6, Expert: 8, To: 0},
	}
	res, err := cl.Train(eopts)
	if err != nil {
		t.Fatalf("elastic train: %v", err)
	}
	state, err := cl.ExpertState()
	if err != nil {
		t.Fatalf("ExpertState: %v", err)
	}
	assertSameState(t, "elastic vs static", state, refState)
	assertSameOutputs(t, "elastic vs static", res.FinalOutputs, refOuts)

	tot := cl.RobustnessTotals()
	if tot.Joins != 1 {
		t.Fatalf("joins = %d, want 1", tot.Joins)
	}
	if tot.Migrations != 3 {
		t.Fatalf("migrations = %d (rollbacks %d), want 3", tot.Migrations, tot.MigrationRollbacks)
	}
	if o0, o4, o8 := cl.currentOwner(0), cl.currentOwner(4), cl.currentOwner(8); o0 != 3 || o4 != 3 || o8 != 0 {
		t.Fatalf("post-migration owners = %d/%d/%d, want 3/3/0", o0, o4, o8)
	}
	checkViewAgreement(t, cl, nil)
}

// Killing the migration driver after each phase must never fork
// ownership: a pre-fence crash rolls back completely (training
// continues on the old owner), a post-fence crash leaves the handoff in
// effect (training continues on the new owner). Either way the final
// weights match an undisturbed run bitwise.
func TestMigrationAbandonAtEachPhase(t *testing.T) {
	refState, _, refOuts := runTrain(t, elasticCfg, TrainOptions{Steps: 5, LR: 0.05})

	for phase := 1; phase <= 3; phase++ {
		name := fmt.Sprintf("abandon after phase %d", phase)
		cl, err := Start(elasticCfg())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Train(TrainOptions{Steps: 2, LR: 0.05}); err != nil {
			t.Fatalf("%s: pre-train: %v", name, err)
		}
		cl.migrateAbandon = func(p int) bool { return p == phase }
		err = cl.MigrateExpert(0, 1)
		cl.migrateAbandon = nil
		if !errors.Is(err, errMigrationAbandoned) {
			t.Fatalf("%s: err = %v, want abandoned", name, err)
		}

		id := transport.ExpertID{Expert: 0}
		tot := cl.RobustnessTotals()
		if phase < 3 {
			// Pre-fence crash: complete rollback. The source still owns
			// and hosts; anything parked on the target is inert.
			if got := cl.currentOwner(0); got != 0 {
				t.Fatalf("%s: ownership moved to %d despite pre-fence crash", name, got)
			}
			if tot.Migrations != 0 || tot.MigrationRollbacks != 1 {
				t.Fatalf("%s: counters = %d/%d, want 0 migrations / 1 rollback", name, tot.Migrations, tot.MigrationRollbacks)
			}
			if _, ok := cl.stores[0].get(id); !ok {
				t.Fatalf("%s: source dropped the expert", name)
			}
			ts := cl.stores[1]
			ts.mu.Lock()
			_, staged := ts.staged[id]
			_, hosted := ts.experts[id]
			ts.mu.Unlock()
			if phase == 1 && (!staged || hosted) {
				t.Fatalf("%s: target staged=%v hosted=%v, want staged-only", name, staged, hosted)
			}
			if phase == 2 && (staged || !hosted) {
				t.Fatalf("%s: target staged=%v hosted=%v, want committed-but-unrouted", name, staged, hosted)
			}
		} else {
			// Post-fence crash: the handoff is already in effect; only
			// the source-side cleanup was lost.
			if got := cl.currentOwner(0); got != 1 {
				t.Fatalf("%s: ownership on %d despite committed fence", name, got)
			}
			if tot.Migrations != 1 || tot.MigrationRollbacks != 0 {
				t.Fatalf("%s: counters = %d/%d, want 1 migration / 0 rollbacks", name, tot.Migrations, tot.MigrationRollbacks)
			}
			if _, ok := cl.stores[1].get(id); !ok {
				t.Fatalf("%s: new owner does not host the expert", name)
			}
		}
		checkViewAgreement(t, cl, nil)

		// The run continues to the same bitwise endpoint either way.
		res, err := cl.Train(TrainOptions{Steps: 3, LR: 0.05})
		if err != nil {
			t.Fatalf("%s: resumed train: %v", name, err)
		}
		state, err := cl.ExpertState()
		if err != nil {
			t.Fatalf("%s: ExpertState: %v", name, err)
		}
		assertSameState(t, name, state, refState)
		assertSameOutputs(t, name, res.FinalOutputs, refOuts)
		cl.Close()
	}
}

// A TRANSFER that dies on the wire rolls back cleanly, and the same
// migration succeeds once the fault heals.
func TestMigrationTransferFailureRollsBack(t *testing.T) {
	inj := faultinject.New(3)
	inj.Kill("m1", 5, 7) // target's server is dead for steps 5-6 only
	cfg := elasticCfg()
	cfg.Injector = inj
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err != nil {
		t.Fatal(err)
	}

	inj.SetStep(5)
	if err := cl.MigrateExpert(0, 1); err == nil {
		t.Fatal("transfer into a dead machine succeeded")
	}
	if got := cl.currentOwner(0); got != 0 {
		t.Fatalf("failed transfer moved ownership to %d", got)
	}
	if tot := cl.RobustnessTotals(); tot.MigrationRollbacks != 1 || tot.Migrations != 0 {
		t.Fatalf("counters = %d/%d, want 0 migrations / 1 rollback", tot.Migrations, tot.MigrationRollbacks)
	}
	id := transport.ExpertID{Expert: 0}
	if _, ok := cl.stores[0].get(id); !ok {
		t.Fatal("source dropped the expert on a failed transfer")
	}
	if _, ok := cl.stores[1].get(id); ok {
		t.Fatal("dead target hosts the expert")
	}
	checkViewAgreement(t, cl, nil)

	inj.SetStep(7) // healed
	if err := cl.MigrateExpert(0, 1); err != nil {
		t.Fatalf("healed migration: %v", err)
	}
	if got := cl.currentOwner(0); got != 1 {
		t.Fatalf("healed migration left owner %d, want 1", got)
	}
	res, err := cl.RunDataCentric() // advances to step 2, outside the window
	if err != nil {
		t.Fatalf("step after healed migration: %v", err)
	}
	ref := cl.RunExpertCentricReference()
	for w := range ref {
		if !tensor.Equal(res.Outputs[w], ref[w]) {
			t.Fatalf("worker %d output changed after healed migration", w)
		}
	}
}

// Satellite regression: a cluster that migrated experts restarts with
// the migrated (uneven, off-home) ownership map — Validate accepts it,
// Start honours it, and the forward pass still matches the reference.
func TestRestartWithMigratedPlacement(t *testing.T) {
	cl, err := Start(elasticCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunDataCentric(); err != nil {
		t.Fatal(err)
	}
	if err := cl.MigrateExpert(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := cl.MigrateExpert(4, 0); err != nil {
		t.Fatal(err)
	}
	owners := cl.OwnerView()
	cl.Close()

	cfg := elasticCfg()
	cfg.InitialOwners = owners
	if err := cfg.Validate(); err != nil {
		t.Fatalf("migrated ownership map rejected at restart: %v", err)
	}
	cl2, err := Start(cfg)
	if err != nil {
		t.Fatalf("restart with migrated placement: %v", err)
	}
	defer cl2.Close()
	for e, want := range owners {
		if got := cl2.currentOwner(e); got != want {
			t.Fatalf("expert %d restarted on machine %d, want %d", e, got, want)
		}
	}
	res, err := cl2.RunDataCentric()
	if err != nil {
		t.Fatalf("forward after restart: %v", err)
	}
	ref := cl2.RunExpertCentricReference()
	for w := range ref {
		if !tensor.Equal(res.Outputs[w], ref[w]) {
			t.Fatalf("worker %d output differs under restarted placement", w)
		}
	}
}

// The popularity-weighted rebalancer: deterministic plans, strict
// improvement only, and execution through the fenced handoff.
func TestRebalanceMovesHotExperts(t *testing.T) {
	cl, err := Start(elasticCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Machine 0 (experts 0-2) is scorching: two hot experts plus a
	// uniform background. The greedy planner must hand the hottest
	// expert to the coldest machine (lowest id wins the tie).
	cl.load.AddRouted(0, 10)
	cl.load.AddRouted(1, 10)
	for e := 2; e < 9; e++ {
		cl.load.AddRouted(e, 1)
	}
	moves := cl.PlanRebalance(1)
	if !reflect.DeepEqual(moves, cl.PlanRebalance(1)) {
		t.Fatal("rebalance plan is not deterministic")
	}
	want := []Move{{Expert: 0, From: 0, To: 1}}
	if !reflect.DeepEqual(moves, want) {
		t.Fatalf("plan = %+v, want %+v", moves, want)
	}
	n, err := cl.Rebalance(1)
	if err != nil || n != 1 {
		t.Fatalf("Rebalance = %d, %v, want 1 move", n, err)
	}
	if got := cl.currentOwner(0); got != 1 {
		t.Fatalf("rebalanced expert 0 owned by %d, want 1", got)
	}
	if tot := cl.RobustnessTotals(); tot.Migrations != 1 {
		t.Fatalf("rebalance executed %d migrations, want 1", tot.Migrations)
	}
	// With the load now spread, a fresh plan must not ping-pong the
	// hot expert straight back.
	for _, mv := range cl.PlanRebalance(1) {
		if mv.Expert == 0 && mv.To == 0 {
			t.Fatalf("plan ping-pongs expert 0 back: %+v", mv)
		}
	}
}

// Satellite property test: under interleaved crash, heal, gray flap,
// join, migration, and rebalancing, every machine's epoch is monotonic
// and no two same-epoch authoritative views ever disagree on ownership
// — sampled at every step boundary across seeds. Replication rides
// along (Replicas=1), so every boundary also checks the replica
// invariants via ViewConsistency: no set contains its owner, no replica
// version leads its owner, promotions only from fenced epochs.
func TestElasticChurnInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			inj.Kill("m2", 4, 6) // crash + heal: failover then rejoin
			inj.Kill("m2.client", 4, 6)
			inj.Flap("m1", 6, 10, 1, 2) // gray flapper under the dead-man budget
			cfg := failoverCfg(inj, t.TempDir())
			cfg.Replicas = 1
			cl, err := Start(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()

			prev := checkViewAgreement(t, cl, nil)
			step := TrainOptions{Steps: 1, LR: 0.05}
			for s := 1; s <= 10; s++ {
				if _, err := cl.Train(step); err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				prev = checkViewAgreement(t, cl, prev)
				if err := cl.ViewConsistency(); err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				switch s {
				case 2:
					if _, err := cl.Join(0); err != nil {
						t.Fatalf("step %d: join: %v", s, err)
					}
				case 5:
					// Best effort mid-churn: a refusal is fine, a fork is not.
					_ = cl.MigrateExpert(1, 3)
				case 7:
					_, _ = cl.Rebalance(1)
				}
				prev = checkViewAgreement(t, cl, prev)
			}
			if _, err := cl.ExpertState(); err != nil {
				t.Fatalf("training state unreadable after churn: %v", err)
			}
			if tot := cl.RobustnessTotals(); tot.Joins != 1 {
				t.Fatalf("joins = %d, want 1", tot.Joins)
			}
		})
	}
}
