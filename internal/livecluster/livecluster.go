// Package livecluster runs a real (non-simulated) miniature Janus
// deployment: every worker is a goroutine with actual expert weights,
// every machine runs a transport.Server on a loopback TCP port, and one
// training iteration moves real bytes through the §6 pull protocol.
//
// It exists to demonstrate, end to end and with measured wire traffic,
// the two claims the flow-level simulator takes as premises:
//
//  1. the data-centric paradigm computes exactly what the
//     expert-centric paradigm computes (outputs compared numerically);
//  2. with the hierarchical Cache-Manager fetch, the bytes crossing
//     "machine" boundaries shrink by the paper's R factor relative to
//     token exchange.
//
// Scale is laptop-sized (a few workers, small H); the protocol and
// bookkeeping are the real thing.
package livecluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"janus/internal/faultinject"
	"janus/internal/metrics"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// Config shapes a live cluster.
type Config struct {
	Machines        int // number of simulated "machines" (one server each)
	WorkersPerNode  int
	NumExperts      int // experts in the single MoE layer
	TopK            int
	Hidden          int // H
	TokensPerWorker int
	Seed            int64
	Credits         int // client in-flight pull window

	// Robustness knobs (all optional; zero values give the previous
	// fail-fast behaviour with the transport's default retry budget).

	// Injector, when set, wraps every machine's listener and every
	// client dial so failure scenarios can be injected; machine m's
	// endpoints carry the label MachineLabel(m).
	Injector *faultinject.Injector
	// PullTimeout bounds each pull/push attempt (0 = transport default).
	PullTimeout time.Duration
	// PullRetries is the attempt budget per pull/push (0 = transport
	// default).
	PullRetries int
	// RetryBackoff is the base retry delay (0 = transport default).
	RetryBackoff time.Duration
	// StaleFallback enables §5.1.2-style graceful degradation: when an
	// expert's owner stays unreachable past the retry budget, serve the
	// last locally cached version of that expert instead of aborting
	// the iteration, and drop (rather than fail on) unreachable
	// gradient pushes. Recovery is automatic: the next iteration
	// re-pulls from the owner and refreshes the cache.
	StaleFallback bool
}

// MachineLabel is the fault-injection label of machine m's endpoints.
func MachineLabel(m int) string { return fmt.Sprintf("m%d", m) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Machines < 1 || c.WorkersPerNode < 1:
		return fmt.Errorf("livecluster: need at least one machine and worker")
	case c.NumExperts%(c.Machines*c.WorkersPerNode) != 0:
		return fmt.Errorf("livecluster: %d experts not divisible by %d workers",
			c.NumExperts, c.Machines*c.WorkersPerNode)
	case c.TopK < 1 || c.TopK > c.NumExperts:
		return fmt.Errorf("livecluster: topK %d out of range", c.TopK)
	case c.Hidden < 1 || c.TokensPerWorker < 1:
		return fmt.Errorf("livecluster: non-positive shape")
	}
	return nil
}

func (c Config) numWorkers() int { return c.Machines * c.WorkersPerNode }

// expertsPerWorker returns E.
func (c Config) expertsPerWorker() int { return c.NumExperts / c.numWorkers() }

// Result reports one live iteration.
type Result struct {
	// Outputs per worker (each TokensPerWorker × H).
	Outputs []*tensor.Matrix
	// CrossMachineBytes is the wire traffic that crossed machine
	// boundaries (sum over machine pairs of TCP payloads).
	CrossMachineBytes int64
	// PullsServed is the total pull requests served by all machines.
	PullsServed int64

	// DegradedSteps is 1 if this iteration completed in degraded mode
	// (at least one expert served stale or gradient push dropped),
	// 0 otherwise.
	DegradedSteps int
	// StaleFetches counts experts served from a machine's last-known
	// local copy because the owner stayed unreachable.
	StaleFetches int64
	// MaxStalenessSteps is the largest age, in iterations, of a stale
	// expert served this iteration (0 when nothing was stale).
	MaxStalenessSteps int
	// DroppedGrads counts gradient pushes abandoned because the owner
	// stayed unreachable past the retry budget.
	DroppedGrads int64
	// Robust aggregates the client-side retry/timeout/reconnect events
	// of this iteration (deltas, summed over all machines' clients).
	Robust metrics.RobustnessSnapshot
}

// Degraded reports whether the iteration used any fallback path.
func (r Result) Degraded() bool { return r.DegradedSteps > 0 }

// staleEntry is one machine's last successfully fetched copy of an
// external expert, with the step of that fetch.
type staleEntry struct {
	ex   *moe.Expert
	step int
}

// Cluster is a running live deployment.
type Cluster struct {
	cfg     Config
	layer   *moe.Layer
	servers []*transport.Server
	stores  []*machineStore
	addrs   []string
	clients []*transport.Client // one per machine (the Inter-Node Scheduler's)

	step          int // iterations started (advances the injector's clock)
	degradedTotal int // iterations completed in degraded mode

	staleMu sync.Mutex
	stale   []map[int]*staleEntry // per machine: expert -> last good copy
}

// machineStore hosts the experts owned by one machine's workers and
// accumulates gradients pushed back to them.
type machineStore struct {
	mu      sync.Mutex
	experts map[transport.ExpertID]*moe.Expert
	grads   map[transport.ExpertID]int
	h       int
}

func (s *machineStore) ExpertBytes(id transport.ExpertID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.experts[id]
	if !ok {
		return nil, fmt.Errorf("livecluster: expert %v not hosted", id)
	}
	return encodeExpert(e), nil
}

func (s *machineStore) AddGradient(id transport.ExpertID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.experts[id]; !ok {
		return fmt.Errorf("livecluster: expert %v not hosted", id)
	}
	if len(payload) == 0 {
		return fmt.Errorf("livecluster: empty gradient for %v", id)
	}
	s.grads[id]++
	return nil
}

// encodeExpert serialises expert weights as little-endian float32s:
// W1 then W2. decodeExpert reverses it.
func encodeExpert(e *moe.Expert) []byte {
	n1, n2 := len(e.W1.Data), len(e.W2.Data)
	buf := make([]byte, 8+4*(n1+n2))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.W1.Rows))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(e.W1.Cols))
	off := 8
	for _, v := range e.W1.Data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	for _, v := range e.W2.Data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

func decodeExpert(buf []byte) (*moe.Expert, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("livecluster: expert payload too short")
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	if rows <= 0 || cols != 4*rows {
		return nil, fmt.Errorf("livecluster: bad expert shape %dx%d", rows, cols)
	}
	n1 := rows * cols
	n2 := n1
	if len(buf) != 8+4*(n1+n2) {
		return nil, fmt.Errorf("livecluster: expert payload %d bytes, want %d", len(buf), 8+4*(n1+n2))
	}
	e := &moe.Expert{W1: tensor.New(rows, cols), W2: tensor.New(cols, rows)}
	off := 8
	for i := range e.W1.Data {
		e.W1.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := range e.W2.Data {
		e.W2.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return e, nil
}

// Start builds the layer, partitions experts over machines, and brings
// up one TCP server per machine on loopback.
func Start(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layer := moe.NewLayer(cfg.Hidden, cfg.NumExperts, cfg.TopK, cfg.Seed)
	cl := &Cluster{cfg: cfg, layer: layer}
	perMachine := cfg.NumExperts / cfg.Machines
	for m := 0; m < cfg.Machines; m++ {
		store := &machineStore{
			experts: make(map[transport.ExpertID]*moe.Expert),
			grads:   make(map[transport.ExpertID]int),
			h:       cfg.Hidden,
		}
		for e := m * perMachine; e < (m+1)*perMachine; e++ {
			store.experts[transport.ExpertID{Expert: uint32(e)}] = layer.Experts[e]
		}
		srv := transport.NewServer(store)
		addr, err := cl.startServer(srv, m)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.stores = append(cl.stores, store)
		cl.servers = append(cl.servers, srv)
		cl.addrs = append(cl.addrs, addr)
		cl.clients = append(cl.clients, cl.newClient(m))
		cl.stale = append(cl.stale, make(map[int]*staleEntry))
	}
	return cl, nil
}

// startServer brings up machine m's pull server, routing through the
// fault injector when one is configured.
func (cl *Cluster) startServer(srv *transport.Server, m int) (string, error) {
	if cl.cfg.Injector == nil {
		return srv.Start("127.0.0.1:0")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("livecluster: listen: %w", err)
	}
	return srv.StartListener(cl.cfg.Injector.WrapListener(ln, MachineLabel(m)))
}

// newClient builds machine m's transport client with the configured
// robustness knobs; dials are wrapped by the injector under the
// machine's own label so client-side faults can also be targeted.
func (cl *Cluster) newClient(m int) *transport.Client {
	cfg := cl.cfg
	opts := transport.Options{
		Credits:        cfg.Credits,
		RequestTimeout: cfg.PullTimeout,
		MaxAttempts:    cfg.PullRetries,
		BackoffBase:    cfg.RetryBackoff,
		Seed:           cfg.Seed + int64(m),
	}
	if inj := cfg.Injector; inj != nil {
		label := MachineLabel(m) + ".client"
		timeout := cfg.PullTimeout
		if timeout <= 0 {
			timeout = transport.DefaultRequestTimeout
		}
		opts.Dial = func(addr string) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			return inj.WrapConn(conn, label), nil
		}
	}
	return transport.NewClientOptions(opts)
}

// Close shuts down all servers and clients.
func (cl *Cluster) Close() {
	for _, c := range cl.clients {
		c.Close()
	}
	for _, s := range cl.servers {
		s.Close()
	}
}

// ownerMachine returns the machine hosting an expert.
func (cl *Cluster) ownerMachine(expert int) int {
	return expert / (cl.cfg.NumExperts / cl.cfg.Machines)
}

// workerTokens builds each worker's deterministic input batch.
func (cl *Cluster) workerTokens() []*tensor.Matrix {
	xs := make([]*tensor.Matrix, cl.cfg.numWorkers())
	for w := range xs {
		xs[w] = tensor.NewRandom(cl.cfg.TokensPerWorker, cl.cfg.Hidden, 1, cl.cfg.Seed+1000+int64(w))
	}
	return xs
}

// RunDataCentric executes one forward pass the Janus way: each machine's
// Inter-Node Scheduler pulls every external expert exactly once over
// TCP (single flight), local workers share the cached copy, gradients
// are pre-reduced per machine and pushed back once per expert.
// For verifiability it runs forward only and pushes synthetic gradients
// (the numeric backward equivalence is covered by internal/moe).
func (cl *Cluster) RunDataCentric() (Result, error) {
	cfg := cl.cfg
	cl.step++
	step := cl.step
	if cfg.Injector != nil {
		cfg.Injector.SetStep(step)
	}
	robustBefore := cl.robustSnapshot()
	xs := cl.workerTokens()
	outputs := make([]*tensor.Matrix, cfg.numWorkers())

	var firstErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Degradation bookkeeping for this iteration.
	var degMu sync.Mutex
	var staleFetches, droppedGrads int64
	maxStaleness := 0
	noteStale := func(age int) {
		degMu.Lock()
		staleFetches++
		if age > maxStaleness {
			maxStaleness = age
		}
		degMu.Unlock()
	}

	var wg sync.WaitGroup
	for m := 0; m < cfg.Machines; m++ {
		m := m
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The machine's Cache Manager: local experts direct; each
			// external expert is fetched by exactly one wire pull, with
			// later requesters waiting on the first (single flight owned
			// here, not delegated to the transport, so an entry survives
			// after the wire call returns).
			type cacheEntry struct {
				done chan struct{}
				ex   *moe.Expert
				err  error
			}
			var cacheMu sync.Mutex
			cache := make(map[int]*cacheEntry)
			fetch := func(e int) (*moe.Expert, error) {
				owner := cl.ownerMachine(e)
				if owner == m {
					return cl.layer.Experts[e], nil
				}
				cacheMu.Lock()
				if ent, ok := cache[e]; ok {
					cacheMu.Unlock()
					<-ent.done
					return ent.ex, ent.err
				}
				ent := &cacheEntry{done: make(chan struct{})}
				cache[e] = ent
				cacheMu.Unlock()

				payload, err := cl.clients[m].Pull(context.Background(),
					cl.addrs[owner], transport.ExpertID{Expert: uint32(e)})
				if err == nil {
					ent.ex, ent.err = decodeExpert(payload)
				} else {
					ent.err = err
				}
				if ent.err == nil {
					// Refresh the machine's last-known copy (the §5.1.2
					// Cache Manager's durable layer).
					cl.staleMu.Lock()
					cl.stale[m][e] = &staleEntry{ex: ent.ex, step: step}
					cl.staleMu.Unlock()
				} else if cfg.StaleFallback {
					// Owner unreachable past the retry budget: degrade to
					// the last-known copy instead of aborting the step.
					cl.staleMu.Lock()
					old, ok := cl.stale[m][e]
					cl.staleMu.Unlock()
					if ok {
						cl.clients[m].Robust.AddStaleServe()
						noteStale(step - old.step)
						ent.ex, ent.err = old.ex, nil
					}
				}
				close(ent.done)
				return ent.ex, ent.err
			}

			var mwg sync.WaitGroup
			for lw := 0; lw < cfg.WorkersPerNode; lw++ {
				w := m*cfg.WorkersPerNode + lw
				mwg.Add(1)
				go func() {
					defer mwg.Done()
					out, err := cl.forwardWorker(xs[w], fetch)
					if err != nil {
						setErr(err)
						return
					}
					outputs[w] = out
				}()
			}
			mwg.Wait()

			// Gradient pre-reduce: one synthetic gradient per external
			// expert per machine (backward numeric path is exercised in
			// internal/moe; here we exercise the wire protocol).
			for e := 0; e < cfg.NumExperts; e++ {
				owner := cl.ownerMachine(e)
				if owner == m {
					continue
				}
				grad := make([]byte, 8)
				binary.LittleEndian.PutUint64(grad, uint64(e))
				if err := cl.clients[m].PushGradient(context.Background(), cl.addrs[owner],
					transport.ExpertID{Expert: uint32(e)}, grad); err != nil {
					if cfg.StaleFallback {
						// Owner unreachable: the contribution is dropped
						// this step (it would be retried from fresh
						// activations next step in a real trainer).
						degMu.Lock()
						droppedGrads++
						degMu.Unlock()
					} else {
						setErr(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}
	res := Result{
		Outputs:           outputs,
		CrossMachineBytes: cl.wireBytes(),
		PullsServed:       cl.pullsServed(),
		StaleFetches:      staleFetches,
		MaxStalenessSteps: maxStaleness,
		DroppedGrads:      droppedGrads,
		Robust:            cl.robustSnapshot().Sub(robustBefore),
	}
	if staleFetches > 0 || droppedGrads > 0 {
		res.DegradedSteps = 1
		res.Robust.DegradedSteps = 1
		cl.degradedTotal++
	}
	return res, nil
}

// robustSnapshot sums all machine clients' robustness counters.
func (cl *Cluster) robustSnapshot() metrics.RobustnessSnapshot {
	var sum metrics.RobustnessSnapshot
	for _, c := range cl.clients {
		sum = sum.Add(c.Robust.Snapshot())
	}
	return sum
}

// Step returns how many iterations the cluster has started.
func (cl *Cluster) Step() int { return cl.step }

// RobustnessTotals returns the cumulative client-side robustness
// counters since the cluster started (plus server-side gradient
// dedups folded into GradDups).
func (cl *Cluster) RobustnessTotals() metrics.RobustnessSnapshot {
	sum := cl.robustSnapshot()
	for _, s := range cl.servers {
		sum.GradDups += s.GradsDeduped()
	}
	sum.DegradedSteps = int64(cl.degradedTotal)
	return sum
}

// forwardWorker computes one worker's tokens against every routed
// expert using fetched weights, combining in expert-index order (the
// same order as the reference implementation in internal/moe, so the
// outputs compare bit-for-bit).
func (cl *Cluster) forwardWorker(x *tensor.Matrix, fetch func(int) (*moe.Expert, error)) (*tensor.Matrix, error) {
	routing := cl.layer.Gate.Assign(x)
	out := tensor.New(x.Rows, cl.cfg.Hidden)
	type contrib struct {
		row map[int]int
		ye  *tensor.Matrix
	}
	contribs := make([]*contrib, cl.cfg.NumExperts)
	for e := 0; e < cl.cfg.NumExperts; e++ {
		var tokens []int
		for t := 0; t < x.Rows; t++ {
			for _, te := range routing.Experts[t] {
				if te == e {
					tokens = append(tokens, t)
				}
			}
		}
		if len(tokens) == 0 {
			continue
		}
		expert, err := fetch(e)
		if err != nil {
			return nil, err
		}
		xe := tensor.New(len(tokens), cl.cfg.Hidden)
		for i, t := range tokens {
			xe.CopyRow(i, x, t)
		}
		ye, _ := expert.Forward(xe)
		c := &contrib{row: make(map[int]int, len(tokens)), ye: ye}
		for i, t := range tokens {
			c.row[t] = i
		}
		contribs[e] = c
	}
	for t := 0; t < x.Rows; t++ {
		// ascending expert order for a fixed summation order
		for e := 0; e < cl.cfg.NumExperts; e++ {
			c := contribs[e]
			if c == nil {
				continue
			}
			i, ok := c.row[t]
			if !ok {
				continue
			}
			for k, te := range routing.Experts[t] {
				if te == e {
					out.AddScaledRow(t, c.ye.Row(i), routing.Weights[t][k])
				}
			}
		}
	}
	return out, nil
}

// RunExpertCentricReference computes the same forward pass with the
// in-process expert-centric reference (no network), for comparison.
func (cl *Cluster) RunExpertCentricReference() []*tensor.Matrix {
	return cl.layer.ForwardBackwardExpertCentric(cl.workerTokens(), nil).Outputs
}

// TokenExchangeBytes returns the bytes an expert-centric token exchange
// would push across machine boundaries for this workload (dispatch +
// combine, fp32 like the live payloads), for the traffic comparison.
func (cl *Cluster) TokenExchangeBytes() int64 {
	cfg := cl.cfg
	xs := cl.workerTokens()
	var cross int64
	perMachine := cfg.NumExperts / cfg.Machines
	for w, x := range xs {
		machine := w / cfg.WorkersPerNode
		routing := cl.layer.Gate.Assign(x)
		for t := 0; t < x.Rows; t++ {
			for _, e := range routing.Experts[t] {
				if e/perMachine != machine {
					cross += int64(4 * cfg.Hidden * 2) // token there + result back
				}
			}
		}
	}
	return cross
}

func (cl *Cluster) wireBytes() int64 {
	var sum int64
	for _, c := range cl.clients {
		sum += c.Counters.Sent() + c.Counters.Received()
	}
	return sum
}

func (cl *Cluster) pullsServed() int64 {
	var sum int64
	for _, s := range cl.servers {
		sum += s.PullsServed()
	}
	return sum
}

// GradsAccepted returns per-machine accepted gradient pushes.
func (cl *Cluster) GradsAccepted() []int64 {
	out := make([]int64, len(cl.servers))
	for i, s := range cl.servers {
		out[i] = s.GradsAccepted()
	}
	return out
}
