// Package livecluster runs a real (non-simulated) miniature Janus
// deployment: every worker is a goroutine with actual expert weights,
// every machine runs a transport.Server on a loopback TCP port, and one
// training iteration moves real bytes through the §6 pull protocol.
//
// It exists to demonstrate, end to end and with measured wire traffic,
// the two claims the flow-level simulator takes as premises:
//
//  1. the data-centric paradigm computes exactly what the
//     expert-centric paradigm computes (outputs compared numerically);
//  2. with the hierarchical Cache-Manager fetch, the bytes crossing
//     "machine" boundaries shrink by the paper's R factor relative to
//     token exchange.
//
// Scale is laptop-sized (a few workers, small H); the protocol and
// bookkeeping are the real thing.
package livecluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"janus/internal/faultinject"
	"janus/internal/metrics"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// Config shapes a live cluster.
type Config struct {
	Machines        int // number of simulated "machines" (one server each)
	WorkersPerNode  int
	NumExperts      int // experts in the single MoE layer
	TopK            int
	Hidden          int // H
	TokensPerWorker int
	Seed            int64
	Credits         int // client in-flight pull window

	// InitialOwners, when non-nil, places each expert on a specific
	// machine at Start instead of the balanced contiguous home split —
	// the shape a cluster restarted after live migrations is in. Length
	// must be NumExperts; every entry must name a configured machine.
	// Placements that differ from an expert's home machine persist as
	// migration overrides, exactly as if MigrateExpert had moved them.
	InitialOwners []int

	// Robustness knobs (all optional; zero values give the previous
	// fail-fast behaviour with the transport's default retry budget).

	// Injector, when set, wraps every machine's listener and every
	// client dial so failure scenarios can be injected; machine m's
	// endpoints carry the label MachineLabel(m).
	Injector *faultinject.Injector
	// PullTimeout bounds each pull/push attempt (0 = transport default).
	PullTimeout time.Duration
	// PullRetries is the attempt budget per pull/push (0 = transport
	// default).
	PullRetries int
	// RetryBackoff is the base retry delay (0 = transport default).
	RetryBackoff time.Duration
	// StaleFallback enables §5.1.2-style graceful degradation: when an
	// expert's owner stays unreachable past the retry budget, serve the
	// last locally cached version of that expert instead of aborting
	// the iteration, and drop (rather than fail on) unreachable
	// gradient pushes. Recovery is automatic: the next iteration
	// re-pulls from the owner and refreshes the cache.
	StaleFallback bool

	// Permanent-failure knobs (see failover.go). All optional: with
	// FailoverEnabled false the cluster behaves exactly as before.

	// FailoverEnabled turns on heartbeat membership: every step, alive
	// machines probe each other over the transport; a machine missing
	// DeadManSteps consecutive rounds is declared dead and its experts
	// are deterministically re-homed onto survivors. A machine that
	// answers again rejoins and reclaims its home experts.
	FailoverEnabled bool
	// DeadManSteps is the consecutive-miss budget before a machine is
	// declared dead (0 = DefaultDeadManSteps).
	DeadManSteps int
	// HeartbeatTimeout bounds one liveness probe (0 = default).
	HeartbeatTimeout time.Duration
	// CheckpointDir enables crash-consistent checkpoints of expert
	// weights, dense params, and the step counter ("" = disabled).
	// Failover restores a dead owner's experts from the freshest of
	// (latest checkpoint, newest surviving stale replica).
	CheckpointDir string
	// CheckpointEvery is the step cadence of checkpoints (0 = every
	// step when CheckpointDir is set).
	CheckpointEvery int
	// CheckpointKeep is how many committed versions to retain
	// (0 = DefaultCheckpointKeep).
	CheckpointKeep int

	// Partition-tolerance knobs (see failover.go). With failover on,
	// membership is quorum-gated and every request is epoch-fenced by
	// default; these knobs tune or disable the protections.

	// FencingDisabled turns off the wire-level epoch fence (requests
	// from machines with a stale membership epoch are then accepted).
	// Exists for the split-brain differential experiment; leave false.
	FencingDisabled bool
	// SlowAfter is the per-peer EWMA latency threshold past which a
	// peer is flagged as a gray failure (0 = never flag).
	SlowAfter time.Duration
	// HedgeDelay, when positive, arms hedged pulls: a pull whose target
	// is flagged slow is raced against this deterministic delay, and if
	// the wire has not answered in time the freshest local replica is
	// served instead (forward path only; versioned training pulls are
	// never hedged). The wire result still refreshes the replica cache
	// in the background.
	HedgeDelay time.Duration

	// Synchronous-replication knobs (see replication.go). All optional:
	// with Replicas 0 the cluster behaves exactly as before.

	// Replicas is the synchronous replication factor: each replicated
	// expert keeps this many in-sync copies on machines other than its
	// owner, streamed the owner's versioned post-merge weights (acked,
	// epoch-fenced) at every step barrier. Failover promotes an in-sync
	// replica losslessly; hedges and stale fallbacks serve in-sync
	// replicas without staleness accounting.
	Replicas int
	// ReplicateTop restricts replication to the N hottest experts by
	// routed-token count (0 = replicate every expert).
	ReplicateTop int
	// ReplWindow bounds in-flight replica streams per sync round, so
	// replication lag is capped and observable (0 = DefaultReplWindow).
	ReplWindow int
	// AntiEntropyEvery is the step cadence of the anti-entropy repair
	// sweep (0 = DefaultAntiEntropyEvery).
	AntiEntropyEvery int
}

// MachineLabel is the fault-injection label of machine m's endpoints.
func MachineLabel(m int) string { return fmt.Sprintf("m%d", m) }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Machines < 1 || c.WorkersPerNode < 1:
		return fmt.Errorf("livecluster: need at least one machine and worker")
	case c.NumExperts < c.Machines:
		// The balanced contiguous home split places experts without any
		// divisibility requirement (joins and migrations make counts
		// uneven anyway), but fewer experts than machines would leave
		// seed-time machines empty-handed.
		return fmt.Errorf("livecluster: %d experts cannot cover %d machines",
			c.NumExperts, c.Machines)
	case c.TopK < 1 || c.TopK > c.NumExperts:
		return fmt.Errorf("livecluster: topK %d out of range", c.TopK)
	case c.Hidden < 1 || c.TokensPerWorker < 1:
		return fmt.Errorf("livecluster: non-positive shape")
	case c.DeadManSteps < 0 || c.CheckpointEvery < 0 || c.CheckpointKeep < 0:
		return fmt.Errorf("livecluster: negative failover/checkpoint knob")
	case c.Replicas < 0 || c.ReplicateTop < 0 || c.ReplWindow < 0 || c.AntiEntropyEvery < 0:
		return fmt.Errorf("livecluster: negative replication knob")
	case c.Replicas >= c.Machines:
		// Replica sets are owner-disjoint, so the factor must leave at
		// least one machine besides the owner per replica copy.
		return fmt.Errorf("livecluster: replication factor %d needs more than %d machines",
			c.Replicas, c.Machines)
	}
	if c.InitialOwners != nil {
		// Validated against the ownership map, not a divisibility rule:
		// a cluster restarted after joins and migrations legitimately
		// carries uneven per-machine expert counts.
		if len(c.InitialOwners) != c.NumExperts {
			return fmt.Errorf("livecluster: %d initial owners for %d experts",
				len(c.InitialOwners), c.NumExperts)
		}
		for e, m := range c.InitialOwners {
			if m < 0 || m >= c.Machines {
				return fmt.Errorf("livecluster: expert %d placed on unknown machine %d", e, m)
			}
		}
	}
	return nil
}

func (c Config) numWorkers() int { return c.Machines * c.WorkersPerNode }

// Result reports one live iteration.
type Result struct {
	// Outputs per worker (each TokensPerWorker × H).
	Outputs []*tensor.Matrix
	// CrossMachineBytes is the wire traffic that crossed machine
	// boundaries (sum over machine pairs of TCP payloads).
	CrossMachineBytes int64
	// PullsServed is the total pull requests served by all machines.
	PullsServed int64

	// DegradedSteps is 1 if this iteration completed in degraded mode
	// (at least one expert served stale or gradient push dropped),
	// 0 otherwise.
	DegradedSteps int
	// StaleFetches counts experts served from a machine's last-known
	// local copy because the owner stayed unreachable.
	StaleFetches int64
	// MaxStalenessSteps is the largest age, in iterations, of a stale
	// expert served this iteration (0 when nothing was stale).
	MaxStalenessSteps int
	// DroppedGrads counts gradient pushes abandoned because the owner
	// stayed unreachable past the retry budget.
	DroppedGrads int64
	// AliveMachines is how many machines the membership view considered
	// alive at the end of the iteration (equals Machines when failover
	// is disabled or nothing died).
	AliveMachines int
	// PartitionedMachines counts machines outside the authoritative
	// side at the end of the iteration: without quorum in their own
	// membership view, or frozen by the epoch fence.
	PartitionedMachines int
	// Robust aggregates the client-side retry/timeout/reconnect events
	// of this iteration (deltas, summed over all machines' clients).
	Robust metrics.RobustnessSnapshot
}

// Degraded reports whether the iteration used any fallback path.
func (r Result) Degraded() bool { return r.DegradedSteps > 0 }

// staleEntry is one machine's last successfully fetched copy of an
// external expert, with the step of that fetch.
type staleEntry struct {
	ex      *moe.Expert
	payload []byte   // wire bytes ex was decoded from
	spares  [][]byte // retired payload buffers, reused as pull destinations
	step    int
}

// Cluster is a running live deployment.
type Cluster struct {
	cfg     Config
	layer   *moe.Layer
	servers []*transport.Server
	stores  []*machineStore
	addrs   []string
	clients []*transport.Client // one per machine (the Inter-Node Scheduler's)

	step          int // iterations started (advances the injector's clock)
	degradedTotal int // iterations completed in degraded mode

	// Per-worker static state, built once at Start: the deterministic
	// token batches, their gate routing, the derived per-expert /
	// per-token index, and the pre-gathered expert input slices. The
	// gate never changes between iterations, so recomputing any of this
	// per step would do identical work (fast path of ISSUE 3).
	xs       []*tensor.Matrix
	routings []moe.Routing
	rindex   []*routeIndex
	xes      [][]*tensor.Matrix // worker -> expert -> gathered token rows
	needs    [][]int            // machine -> union of routed experts, ascending
	needIdx  [][]int32          // machine -> expert -> index in needs[m], -1 absent

	// loadTotals precomputes, per machine, the total tokens each needed
	// expert receives across the machine's workers, so the per-step
	// popularity recording is one add per (machine, expert) instead of a
	// workers × needed map walk.
	loadTotals [][]loadCount

	// staleInPlace permits decoding a pulled expert into the previous
	// stale copy's matrices instead of allocating fresh ones. Only safe
	// when nothing else can alias the cached object: failover restore
	// and migration RELEASE both seed stale/replica entries that share
	// experts, so the gate is computed once at Start from the config.
	staleInPlace bool

	staleMu sync.Mutex
	stale   []map[int]*staleEntry // per machine: expert -> last good copy

	// robust counts cluster-level events (failovers, re-homed experts,
	// checkpoint saves/restores); client-side counters live on the
	// transport clients and both are summed into snapshots.
	robust metrics.Robustness

	// Membership views, one per machine (guarded by viewMu; see
	// failover.go): under a partition the sides legitimately disagree,
	// and the quorum rule decides which side may act on its view.
	viewMu           sync.Mutex
	views            []*memberView
	pendingStaleness int // staleness of replica-recovered experts, folded into the next Result

	// overrides pins migrated experts to their new owners (guarded by
	// viewMu; see elastic.go): expert -> machine, consulted by the
	// canonical ownership recompute ahead of the home assignment. An
	// override only mutates inside the migration fence's critical
	// section, where every authoritative view transitions atomically.
	overrides map[int]int

	// load counts routed tokens per expert across executed steps — the
	// popularity signal the rebalancer plans migrations from.
	load *metrics.ExpertLoad

	// Synchronous-replication state (see replication.go). replicas maps
	// each replicated expert to its replica machines (ascending, never
	// containing the owner); guarded by viewMu so the migration FENCE
	// and failover promotion retarget a set atomically with the
	// ownership flip. promotions records every in-sync promotion for
	// the ViewConsistency invariant.
	replicas       map[int][]int
	replicaPlanned bool
	promotions     []promotionRecord

	// replAcked tracks owner-side, per expert, the newest version each
	// replica machine has acked — the sync loop's skip signal. Guarded
	// by replMu (leaf lock: never held across store or view locks).
	replMu    sync.Mutex
	replAcked map[int]map[int]uint64

	// migrateAbandon, when set (tests only), is consulted after each
	// migration phase completes; returning true abandons the handoff
	// there, simulating a driver crash mid-migration.
	migrateAbandon func(phase int) bool

	// train is the pipelined trainer's state (nil until Train runs).
	train *trainState
}

// encEntry is one memoized wire encoding of a hosted expert, refcounted
// so its buffer returns to the store's freelist only after every
// transport handler that was serving it finished copying it to the
// wire. refs counts handed-out references; dead marks an encoding a
// merge or install superseded while references were still out.
type encEntry struct {
	buf  []byte
	refs int32
	dead bool
}

// machineStore hosts the experts owned by one machine's workers and
// accumulates gradients pushed back to them.
type machineStore struct {
	mu      sync.Mutex
	cond    *sync.Cond // broadcast on version advance / install / remove / abort
	experts map[transport.ExpertID]*moe.Expert

	// Serving-encoding memo (refcounted; see encRefLocked). encByPtr
	// maps a live buffer's first byte back to its entry so the
	// transport's release carries no extra bookkeeping; encFree and
	// entFree recycle buffers and entry headers (every hosted expert
	// encodes to the same size, so any free buffer fits).
	enc      map[transport.ExpertID]*encEntry
	encByPtr map[*byte]*encEntry
	encFree  [][]byte
	entFree  []*encEntry

	grads map[transport.ExpertID]int
	h     int

	// Versioned-training state (see train.go; zero until enableTraining).
	trainOn      bool
	countTrigger bool
	aborted      bool
	lr           float32
	expect       [][]int   // shared: expert index -> ascending contributor machines
	expectIdx    [][]int32 // shared: expert -> machine -> position in expect, -1 absent
	ver          map[transport.ExpertID]uint64
	pending      map[transport.ExpertID][]*pendingMerge
	sorted       []transport.ExpertID // hosted ids ascending; nil after hosting changes
	pipe         *metrics.Pipeline

	// staged holds expert weights delivered by a migration's TRANSFER
	// phase, inert until the handoff's COMMIT installs them (elastic.go).
	staged map[transport.ExpertID]*stagedExpert

	// replicas holds in-sync copies of experts this machine replicates
	// but does not own, applied whole from REPL streams (replication.go;
	// lazily allocated so every store constructor stays replica-ready).
	replicas map[transport.ExpertID]*replicaEntry

	// serveDelay (nanoseconds) injects compute slowness into the serving
	// path; the deadline drills set it via Cluster.SetServeDelay.
	serveDelay atomic.Int64
}

func (s *machineStore) ExpertBytes(id transport.ExpertID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.experts[id]
	if !ok {
		return nil, fmt.Errorf("livecluster: expert %v not hosted", id)
	}
	// Expert weights only change through install/remove/merge (which
	// drop the memo), so repeated pulls of the same version reuse one
	// encoding. Refcounted: the transport releases it after the copy to
	// the wire.
	return s.encRefLocked(id, e), nil
}

// encRefLocked returns the memoized serving encoding for a hosted
// expert, encoding into a recycled buffer on a miss, and takes one
// reference on it. Callers are the transport-facing serve paths only
// (ExpertBytes, ExpertBytesAt) — the transport pairs each with exactly
// one ReleaseExpertBytes once the bytes are on the wire.
func (s *machineStore) encRefLocked(id transport.ExpertID, e *moe.Expert) []byte {
	ent := s.enc[id]
	if ent == nil {
		var buf []byte
		if n := len(s.encFree); n > 0 {
			buf = s.encFree[n-1]
			s.encFree = s.encFree[:n-1]
		}
		buf = encodeExpertInto(buf, e)
		if n := len(s.entFree); n > 0 {
			ent = s.entFree[n-1]
			s.entFree = s.entFree[:n-1]
		} else {
			ent = new(encEntry)
		}
		ent.buf, ent.refs, ent.dead = buf, 0, false
		s.enc[id] = ent
		if s.encByPtr == nil {
			s.encByPtr = make(map[*byte]*encEntry)
		}
		s.encByPtr[&buf[0]] = ent
	}
	ent.refs++
	return ent.buf
}

// ReleaseExpertBytes implements transport.BytesReleaser: called exactly
// once per successfully answered pull, after the payload was copied to
// the wire. The last release of a superseded encoding recycles it.
func (s *machineStore) ReleaseExpertBytes(id transport.ExpertID, b []byte) {
	if len(b) == 0 {
		return
	}
	s.mu.Lock()
	if ent := s.encByPtr[&b[0]]; ent != nil {
		ent.refs--
		if ent.refs == 0 && ent.dead {
			s.recycleEncLocked(ent)
		}
	}
	s.mu.Unlock()
}

// invalidateEncLocked drops id's memoized encoding: the next serve
// re-encodes. A buffer still referenced by in-flight serves is marked
// dead and recycled by its last release instead.
func (s *machineStore) invalidateEncLocked(id transport.ExpertID) {
	ent := s.enc[id]
	if ent == nil {
		return
	}
	delete(s.enc, id)
	if ent.refs > 0 {
		ent.dead = true
		return
	}
	s.recycleEncLocked(ent)
}

func (s *machineStore) recycleEncLocked(ent *encEntry) {
	delete(s.encByPtr, &ent.buf[0])
	s.encFree = append(s.encFree, ent.buf)
	ent.buf = nil
	ent.dead = false
	s.entFree = append(s.entFree, ent)
}

// expertBytesCopy returns a freshly allocated encoding of the hosted
// expert — for callers that keep the bytes (snapshots, state dumps)
// and must not touch the refcounted serving memo.
func (s *machineStore) expertBytesCopy(id transport.ExpertID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.experts[id]
	if !ok {
		return nil, fmt.Errorf("livecluster: expert %v not hosted", id)
	}
	return encodeExpert(e), nil
}

// get returns the hosted expert, if any.
func (s *machineStore) get(id transport.ExpertID) (*moe.Expert, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.experts[id]
	return e, ok
}

// install hosts (or replaces) an expert — the failover re-home path.
func (s *machineStore) install(id transport.ExpertID, e *moe.Expert) {
	s.mu.Lock()
	s.experts[id] = e
	s.invalidateEncLocked(id)
	s.sorted = nil
	if s.trainOn {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// remove stops hosting an expert — the rejoin reclaim path.
func (s *machineStore) remove(id transport.ExpertID) {
	s.mu.Lock()
	delete(s.experts, id)
	s.invalidateEncLocked(id)
	s.sorted = nil
	if s.trainOn {
		s.releasePendingLocked(id)
		s.cond.Broadcast() // wake version waiters into the not-hosted error
	}
	s.mu.Unlock()
}

func (s *machineStore) AddGradient(id transport.ExpertID, payload []byte) error {
	if isTrainGrad(payload) {
		return s.addTrainGradWire(id, payload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.experts[id]; !ok {
		return fmt.Errorf("livecluster: expert %v not hosted", id)
	}
	if len(payload) == 0 {
		return fmt.Errorf("livecluster: empty gradient for %v", id)
	}
	s.grads[id]++
	return nil
}

// encodeExpert serialises expert weights as little-endian float32s:
// W1 then W2. decodeExpert reverses it.
func encodeExpert(e *moe.Expert) []byte {
	return encodeExpertInto(nil, e)
}

// encodeExpertInto is encodeExpert writing into buf, grown only when
// too small — the zero-allocation serve path.
func encodeExpertInto(buf []byte, e *moe.Expert) []byte {
	n1, n2 := len(e.W1.Data), len(e.W2.Data)
	need := 8 + 4*(n1+n2)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(e.W1.Rows))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(e.W1.Cols))
	off := 8
	for _, v := range e.W1.Data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	for _, v := range e.W2.Data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

func decodeExpert(buf []byte) (*moe.Expert, error) {
	return decodeExpertInto(nil, buf)
}

// decodeExpertInto is decodeExpert reusing dst's matrices when it has
// the payload's shape (allocating fresh ones otherwise). The payload is
// fully validated before dst is touched, so a bad payload never leaves
// dst half-written.
func decodeExpertInto(dst *moe.Expert, buf []byte) (*moe.Expert, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("livecluster: expert payload too short")
	}
	rows := int(binary.LittleEndian.Uint32(buf[0:4]))
	cols := int(binary.LittleEndian.Uint32(buf[4:8]))
	if rows <= 0 || cols != 4*rows {
		return nil, fmt.Errorf("livecluster: bad expert shape %dx%d", rows, cols)
	}
	n1 := rows * cols
	n2 := n1
	if len(buf) != 8+4*(n1+n2) {
		return nil, fmt.Errorf("livecluster: expert payload %d bytes, want %d", len(buf), 8+4*(n1+n2))
	}
	e := dst
	if e == nil || e.W1.Rows != rows || e.W1.Cols != cols {
		e = &moe.Expert{W1: tensor.New(rows, cols), W2: tensor.New(cols, rows)}
	}
	off := 8
	for i := range e.W1.Data {
		e.W1.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	for i := range e.W2.Data {
		e.W2.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return e, nil
}

// routeIndex is one worker's routing, inverted for the per-iteration
// forward: which tokens each expert sees and, per token, its combine
// terms in ascending-expert order — the exact summation order of the
// reference combine loop, so outputs stay bit-identical.
type routeIndex struct {
	tokens  [][]int     // expert -> routed tokens, ascending
	byToken [][]combTerm // token -> combine terms, ascending expert
	needed  []int       // experts with at least one token, ascending
}

// combTerm is one (expert output row × weight) contribution to a token.
type combTerm struct {
	expert int
	row    int // row of this token in the expert's gathered batch
	weight float32
}

// buildRouteIndex inverts one worker's routing decision.
func buildRouteIndex(numExperts int, r moe.Routing) *routeIndex {
	ri := &routeIndex{
		tokens:  make([][]int, numExperts),
		byToken: make([][]combTerm, len(r.Experts)),
	}
	rowOf := make([]map[int]int, numExperts)
	for t, experts := range r.Experts {
		for _, e := range experts {
			if rowOf[e] == nil {
				rowOf[e] = make(map[int]int)
			}
			rowOf[e][t] = len(ri.tokens[e])
			ri.tokens[e] = append(ri.tokens[e], t)
		}
	}
	for e := 0; e < numExperts; e++ {
		if len(ri.tokens[e]) > 0 {
			ri.needed = append(ri.needed, e)
		}
	}
	for t, experts := range r.Experts {
		terms := make([]combTerm, 0, len(experts))
		// Ascending expert order fixes the summation order (the
		// reference loop scans experts 0..E-1 per token).
		for _, e := range ri.needed {
			for k, te := range experts {
				if te == e {
					terms = append(terms, combTerm{expert: e, row: rowOf[e][t], weight: r.Weights[t][k]})
				}
			}
		}
		ri.byToken[t] = terms
	}
	return ri
}

// Start builds the layer, partitions experts over machines, and brings
// up one TCP server per machine on loopback.
func Start(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layer := moe.NewLayer(cfg.Hidden, cfg.NumExperts, cfg.TopK, cfg.Seed)
	cl := &Cluster{
		cfg:       cfg,
		layer:     layer,
		overrides: make(map[int]int),
		replicas:  make(map[int][]int),
		replAcked: make(map[int]map[int]uint64),
	}
	cl.load = metrics.NewExpertLoad(cfg.NumExperts)
	// Seed-time placement: the balanced contiguous home split, unless
	// InitialOwners pins experts elsewhere (the restart-after-migration
	// shape); off-home placements persist as migration overrides.
	owner0 := make([]int, cfg.NumExperts)
	for e := range owner0 {
		owner0[e] = cl.homeMachine(e)
		if cfg.InitialOwners != nil && cfg.InitialOwners[e] != owner0[e] {
			owner0[e] = cfg.InitialOwners[e]
			cl.overrides[e] = owner0[e]
		}
	}
	for m := 0; m < cfg.Machines; m++ {
		store := &machineStore{
			experts: make(map[transport.ExpertID]*moe.Expert),
			enc:     make(map[transport.ExpertID]*encEntry),
			grads:   make(map[transport.ExpertID]int),
			h:       cfg.Hidden,
		}
		store.cond = sync.NewCond(&store.mu)
		for e := 0; e < cfg.NumExperts; e++ {
			if owner0[e] == m {
				store.experts[transport.ExpertID{Expert: uint32(e)}] = layer.Experts[e]
			}
		}
		srv := transport.NewServer(store)
		addr, err := cl.startServer(srv, m)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.stores = append(cl.stores, store)
		cl.servers = append(cl.servers, srv)
		cl.addrs = append(cl.addrs, addr)
		cl.clients = append(cl.clients, cl.newClient(m))
		cl.stale = append(cl.stale, make(map[int]*staleEntry))
	}
	cl.views = make([]*memberView, cfg.Machines)
	for m := range cl.views {
		v := &memberView{
			self:   m,
			alive:  make([]bool, cfg.Machines),
			missed: make([]int, cfg.Machines),
			owner:  make([]int, cfg.NumExperts),
			quorum: true,
		}
		for i := range v.alive {
			v.alive[i] = true
		}
		copy(v.owner, owner0)
		cl.views[m] = v
	}
	for m, srv := range cl.servers {
		srv.SetJoinHandler(&joinGate{cl: cl, m: m})
	}
	if cfg.FailoverEnabled && !cfg.FencingDisabled {
		// Epoch fencing on the wire: each server rejects requests whose
		// membership epoch lags its own machine's view, so a zombie
		// ex-owner's pushes can never be merged after failover.
		for m, srv := range cl.servers {
			srv.SetEpochGate(&epochGate{cl: cl, m: m})
		}
	}

	// Precompute everything that is invariant across iterations: token
	// batches, routing, its inverted index, the gathered per-expert
	// inputs, and each machine's union of routed experts.
	cl.xs = cl.workerTokens()
	cl.routings = make([]moe.Routing, len(cl.xs))
	cl.rindex = make([]*routeIndex, len(cl.xs))
	cl.xes = make([][]*tensor.Matrix, len(cl.xs))
	for w, x := range cl.xs {
		cl.routings[w] = layer.Gate.Assign(x)
		ri := buildRouteIndex(cfg.NumExperts, cl.routings[w])
		cl.rindex[w] = ri
		cl.xes[w] = make([]*tensor.Matrix, cfg.NumExperts)
		for _, e := range ri.needed {
			xe := tensor.New(len(ri.tokens[e]), cfg.Hidden)
			for i, t := range ri.tokens[e] {
				xe.CopyRow(i, x, t)
			}
			cl.xes[w][e] = xe
		}
	}
	cl.needs = make([][]int, cfg.Machines)
	for m := 0; m < cfg.Machines; m++ {
		seen := make([]bool, cfg.NumExperts)
		for lw := 0; lw < cfg.WorkersPerNode; lw++ {
			for _, e := range cl.rindex[m*cfg.WorkersPerNode+lw].needed {
				seen[e] = true
			}
		}
		for e, s := range seen {
			if s {
				cl.needs[m] = append(cl.needs[m], e)
			}
		}
	}
	cl.needIdx = make([][]int32, cfg.Machines)
	for m := range cl.needIdx {
		row := make([]int32, cfg.NumExperts)
		for i := range row {
			row[i] = -1
		}
		for i, e := range cl.needs[m] {
			row[e] = int32(i)
		}
		cl.needIdx[m] = row
	}
	cl.loadTotals = make([][]loadCount, cfg.Machines)
	for m := 0; m < cfg.Machines; m++ {
		totals := make([]loadCount, 0, len(cl.needs[m]))
		for _, e := range cl.needs[m] {
			var n int64
			for lw := 0; lw < cfg.WorkersPerNode; lw++ {
				n += int64(len(cl.rindex[m*cfg.WorkersPerNode+lw].tokens[e]))
			}
			if n > 0 {
				totals = append(totals, loadCount{e: int32(e), n: n})
			}
		}
		cl.loadTotals[m] = totals
	}
	// In-place reuse of cached pulled experts is only safe when no
	// failover/checkpoint/migration path can alias the cached object.
	cl.staleInPlace = !cfg.FailoverEnabled && cfg.CheckpointDir == ""
	return cl, nil
}

// loadCount is one precomputed (expert, routed tokens) total.
type loadCount struct {
	e int32
	n int64
}

// startServer brings up machine m's pull server, routing through the
// fault injector when one is configured.
func (cl *Cluster) startServer(srv *transport.Server, m int) (string, error) {
	if cl.cfg.Injector == nil {
		return srv.Start("127.0.0.1:0")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("livecluster: listen: %w", err)
	}
	return srv.StartListener(cl.cfg.Injector.WrapListener(ln, MachineLabel(m)))
}

// newClient builds machine m's transport client with the configured
// robustness knobs; dials are wrapped by the injector under the
// machine's own label so client-side faults can also be targeted.
func (cl *Cluster) newClient(m int) *transport.Client {
	cfg := cl.cfg
	opts := transport.Options{
		Credits:        cfg.Credits,
		RequestTimeout: cfg.PullTimeout,
		MaxAttempts:    cfg.PullRetries,
		BackoffBase:    cfg.RetryBackoff,
		Seed:           cfg.Seed + int64(m),
		MachineID:      uint32(m),
		SlowAfter:      cfg.SlowAfter,
	}
	if inj := cfg.Injector; inj != nil {
		label := MachineLabel(m) + ".client"
		src := MachineLabel(m)
		timeout := cfg.PullTimeout
		if timeout <= 0 {
			timeout = transport.DefaultRequestTimeout
		}
		opts.Dial = func(addr string) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, timeout)
			if err != nil {
				return nil, err
			}
			// Pair-wrapped so directional rules (one-way partitions)
			// can match the src→dst direction of this dial.
			if dst := cl.machineOfAddr(addr); dst >= 0 {
				return inj.WrapConnPair(conn, label, src, MachineLabel(dst)), nil
			}
			return inj.WrapConn(conn, label), nil
		}
	}
	return transport.NewClientOptions(opts)
}

// machineOfAddr maps a server address back to its machine index (-1 if
// unknown). Addresses are fixed once Start returns, and dials only
// happen afterwards.
func (cl *Cluster) machineOfAddr(addr string) int {
	for m, a := range cl.addrs {
		if a == addr {
			return m
		}
	}
	return -1
}

// peerSlow reports whether any peer of machine m is currently flagged
// as a gray failure by the client's EWMA latency/loss score.
func (cl *Cluster) peerSlow(m int) bool {
	for t, addr := range cl.addrs {
		if t != m && cl.clients[m].PeerSlow(addr) {
			return true
		}
	}
	return false
}

// Close shuts down all servers and clients.
func (cl *Cluster) Close() {
	// Unpark any version waiters first: a blocked ExpertBytesAt holds a
	// server handler goroutine, and Server.Close waits for handlers.
	for _, s := range cl.stores {
		s.abortTraining()
	}
	if cl.train != nil && cl.train.rt != nil {
		cl.train.rt.shutdown()
	}
	for _, c := range cl.clients {
		c.Close()
	}
	for _, s := range cl.servers {
		s.Close()
	}
}

// workerTokens builds each worker's deterministic input batch.
func (cl *Cluster) workerTokens() []*tensor.Matrix {
	xs := make([]*tensor.Matrix, cl.cfg.numWorkers())
	for w := range xs {
		xs[w] = tensor.NewRandom(cl.cfg.TokensPerWorker, cl.cfg.Hidden, 1, cl.cfg.Seed+1000+int64(w))
	}
	return xs
}

// RunDataCentric executes one forward pass the Janus way: each machine's
// Inter-Node Scheduler pulls every external expert exactly once over
// TCP (single flight), local workers share the cached copy, gradients
// are pre-reduced per machine and pushed back once per expert.
// For verifiability it runs forward only and pushes synthetic gradients
// (the numeric backward equivalence is covered by internal/moe).
func (cl *Cluster) RunDataCentric() (Result, error) {
	cfg := cl.cfg
	cl.step++
	step := cl.step
	if cfg.Injector != nil {
		cfg.Injector.SetStep(step)
	}
	robustBefore := cl.robustSnapshot()
	if cfg.FailoverEnabled {
		// Membership first: a machine past its dead-man budget fails
		// over before any worker routes to it this step.
		cl.heartbeatRound(step)
	}
	outputs := make([]*tensor.Matrix, cfg.numWorkers())

	// Per-step context: a fatally failed step cancels its own in-flight
	// pulls and pushes instead of letting them run on in the background.
	stepCtx, cancelStep := context.WithCancel(context.Background())
	defer cancelStep()

	var firstErr error
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancelStep()
	}

	// Degradation bookkeeping for this iteration.
	var degMu sync.Mutex
	var staleFetches, droppedGrads int64
	maxStaleness := 0
	noteStale := func(age int) {
		degMu.Lock()
		staleFetches++
		if age > maxStaleness {
			maxStaleness = age
		}
		degMu.Unlock()
	}

	var wg sync.WaitGroup
	for m := 0; m < cfg.Machines; m++ {
		m := m
		if !cl.machineRuns(m) {
			// Frozen by the epoch fence: the cluster failed this machine
			// over and has not readmitted it, so it computes nothing.
			// (A machine that merely lost quorum keeps computing in
			// degraded mode — its pushes are fenced on the wire.)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The machine's Cache Manager: local experts direct; each
			// external expert is fetched by exactly one wire pull, with
			// later requesters waiting on the first (single flight owned
			// here, not delegated to the transport, so an entry survives
			// after the wire call returns).
			type cacheEntry struct {
				done    chan struct{}
				ex      *moe.Expert
				err     error
				retried bool // this entry is already the one-shot replacement
			}
			var cacheMu sync.Mutex
			cache := make(map[int]*cacheEntry)
			retrying := make(map[int]bool)
			fetch := func(e int) (*moe.Expert, error) {
				owner := cl.ownerFor(m, e)
				if owner == m {
					return cl.localExpert(m, e)
				}
			join:
				cacheMu.Lock()
				if ent, ok := cache[e]; ok {
					cacheMu.Unlock()
					<-ent.done
					if ent.err == nil || ent.retried {
						return ent.ex, ent.err
					}
					// The in-flight pull we joined — typically one of the
					// advisory prefetch wave, whose correlated timeouts
					// under fault injection can exhaust a whole retry
					// budget at once — failed. Drop the entry and pull
					// again with a fresh budget rather than inheriting
					// the failure; the replacement entry is marked so a
					// second failure is final, bounding the loop.
					cacheMu.Lock()
					if cache[e] == ent {
						delete(cache, e)
					}
					cacheMu.Unlock()
					goto join
				}
				ent := &cacheEntry{done: make(chan struct{}), retried: retrying[e]}
				retrying[e] = true
				cache[e] = ent
				cacheMu.Unlock()

				// Failover-aware pull: the target follows this machine's
				// ownership view, and a RemoteError from a machine that
				// turns out not to own the expert triggers a bounded
				// re-resolve against the (possibly updated) view.
				pullWire := func() ([]byte, error) {
					owner := owner
					var payload []byte
					var err error
					for resolve := 0; resolve < 3; resolve++ {
						payload, err = cl.clients[m].Pull(stepCtx,
							cl.addrs[owner], transport.ExpertID{Expert: uint32(e)})
						var re *transport.RemoteError
						if err == nil || !errors.As(err, &re) {
							break
						}
						next := cl.ownerFor(m, e)
						if next == owner || next == m {
							break // view agrees with the responder (or moved here)
						}
						owner = next
					}
					return payload, err
				}

				var payload []byte
				var err error
				pulled, hedged := false, false
				if cfg.HedgeDelay > 0 && cl.clients[m].PeerSlow(cl.addrs[owner]) {
					cl.staleMu.Lock()
					old := cl.stale[m][e]
					cl.staleMu.Unlock()
					// An in-sync replica held by this machine outranks the
					// stale cache as the hedge copy: it matches the owner's
					// current version, so a hedge it wins is a lossless
					// serve — no StaleFetches, no degradation mode.
					hedgeEx, inSync := cl.localInSyncReplica(m, e)
					if hedgeEx == nil && old != nil {
						hedgeEx = old.ex
					}
					if hedgeEx != nil {
						// Gray-failure hedge: the owner is flagged slow and a
						// local copy exists, so race the wire pull against
						// a deterministic delay and serve the copy if the
						// wire has not answered in time. The slow pull still
						// refreshes the replica cache in the background.
						pulled = true
						cl.clients[m].Robust.AddHedgedPull()
						type pullOut struct {
							payload []byte
							err     error
						}
						ch := make(chan pullOut, 1)
						go func() {
							p, perr := pullWire()
							ch <- pullOut{p, perr}
						}()
						timer := time.NewTimer(cfg.HedgeDelay)
						select {
						case r := <-ch:
							timer.Stop()
							payload, err = r.payload, r.err
						case <-timer.C:
							cl.clients[m].Robust.AddHedgeWon()
							if inSync {
								cl.clients[m].Robust.AddInSyncHedge()
							}
							hedged = true
							ent.ex = hedgeEx
							go func() {
								r := <-ch
								if r.err != nil {
									return
								}
								if ex2, derr := decodeExpert(r.payload); derr == nil {
									cl.staleMu.Lock()
									if cur := cl.stale[m][e]; cur == nil || cur.step <= step {
										cl.stale[m][e] = &staleEntry{ex: ex2, payload: r.payload, step: step}
									}
									cl.staleMu.Unlock()
								}
							}()
						}
					}
				}
				if !pulled {
					payload, err = pullWire()
				}
				if hedged {
					// The replica is already in ent.ex; skip decode/fallback.
				} else if err == nil {
					// Decode is a pure function of the wire bytes, so if the
					// payload is byte-identical to the last fetch's, the
					// previously decoded copy is exactly what decode would
					// produce — reuse it instead of re-decoding.
					cl.staleMu.Lock()
					old := cl.stale[m][e]
					cl.staleMu.Unlock()
					if old != nil && bytes.Equal(old.payload, payload) {
						ent.ex = old.ex
					} else {
						ent.ex, ent.err = decodeExpert(payload)
					}
				} else {
					var fe *transport.FencedEpochError
					if errors.As(err, &fe) {
						// Our membership epoch is stale: the cluster moved on
						// without us. Record it (freezes this machine unless
						// readmitted) and degrade this fetch like any other
						// unreachable-owner case.
						cl.noteFenced(m, fe)
					}
					ent.err = err
				}
				if ent.err == nil {
					// Refresh the machine's last-known copy (the §5.1.2
					// Cache Manager's durable layer). A hedge-served replica
					// skips this: its cache entry is refreshed by the
					// background pull instead.
					if !hedged {
						cl.staleMu.Lock()
						cl.stale[m][e] = &staleEntry{ex: ent.ex, payload: payload, step: step}
						cl.staleMu.Unlock()
					}
				} else if cfg.StaleFallback {
					// Lossless first: a surviving in-sync replica is
					// bit-identical to the copy the unreachable owner would
					// have served (forward-mode weights are immutable, so
					// every applied replica is at version 0 = in sync) — no
					// staleness to account. Only without one degrade to the
					// last-known copy instead of aborting the step.
					if rep := cl.replicaServe(e, 0); rep != nil {
						cl.clients[m].Robust.AddReplicaServe()
						ent.ex, ent.err = rep, nil
					} else {
						cl.staleMu.Lock()
						old, ok := cl.stale[m][e]
						cl.staleMu.Unlock()
						if ok {
							cl.clients[m].Robust.AddStaleServe()
							noteStale(step - old.step)
							ent.ex, ent.err = old.ex, nil
						}
					}
				}
				close(ent.done)
				return ent.ex, ent.err
			}

			// Prefetch: kick off the pull for every external expert the
			// machine's workers will need, all overlapped (bounded by the
			// client's credit window). Workers join the in-flight entries
			// through the single-flight cache, so each expert is still
			// fetched exactly once and wire traffic is unchanged — only
			// the fetch latency stops serialising the forward pass.
			var pwg sync.WaitGroup
			for _, e := range cl.needs[m] {
				if cl.ownerFor(m, e) == m {
					continue
				}
				e := e
				pwg.Add(1)
				go func() {
					defer pwg.Done()
					fetch(e) // outcome is consumed via the cache entry
				}()
			}

			var mwg sync.WaitGroup
			for lw := 0; lw < cfg.WorkersPerNode; lw++ {
				w := m*cfg.WorkersPerNode + lw
				mwg.Add(1)
				go func() {
					defer mwg.Done()
					out, err := cl.forwardWorker(w, fetch)
					if err != nil {
						setErr(err)
						return
					}
					outputs[w] = out
				}()
			}
			mwg.Wait()
			pwg.Wait()

			// Gradient pre-reduce: one synthetic gradient per external
			// expert per machine (backward numeric path is exercised in
			// internal/moe; here we exercise the wire protocol). Pushes
			// to distinct owners are independent, so they run overlapped.
			var gwg sync.WaitGroup
			for e := 0; e < cfg.NumExperts; e++ {
				owner := cl.ownerFor(m, e)
				if owner == m {
					continue
				}
				e, owner := e, owner
				gwg.Add(1)
				go func() {
					defer gwg.Done()
					grad := make([]byte, 8)
					binary.LittleEndian.PutUint64(grad, uint64(e))
					if err := cl.clients[m].PushGradient(stepCtx, cl.addrs[owner],
						transport.ExpertID{Expert: uint32(e)}, grad); err != nil {
						var fe *transport.FencedEpochError
						if errors.As(err, &fe) {
							cl.noteFenced(m, fe)
						}
						if cfg.StaleFallback {
							// Owner unreachable (or fenced us out): the
							// contribution is dropped this step (it would be
							// retried from fresh activations next step in a
							// real trainer).
							degMu.Lock()
							droppedGrads++
							degMu.Unlock()
						} else {
							setErr(err)
						}
					}
				}()
			}
			gwg.Wait()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}
	cl.recordExpertLoad()
	// Synchronous replication barrier: owners stream this iteration's
	// weights to their replica sets (acked) before the result is up, and
	// the anti-entropy sweep repairs any divergence on its cadence.
	cl.replicateStep()
	cl.antiEntropy(step)
	// A machine outside the authoritative view may still have computed
	// (a zombie ex-member, or a fenced machine that froze mid-step); its
	// workers' outputs are discarded — the cluster's answer is the
	// authoritative side's.
	if cfg.FailoverEnabled {
		for m := 0; m < cfg.Machines; m++ {
			if cl.isAlive(m) {
				continue
			}
			for lw := 0; lw < cfg.WorkersPerNode; lw++ {
				outputs[m*cfg.WorkersPerNode+lw] = nil
			}
		}
	}
	if err := cl.maybeCheckpoint(step); err != nil {
		return Result{}, err
	}
	// Fold in the staleness of any replica-recovered experts from a
	// failover that ran at the top of this step.
	cl.viewMu.Lock()
	if cl.pendingStaleness > maxStaleness {
		maxStaleness = cl.pendingStaleness
	}
	cl.pendingStaleness = 0
	cl.viewMu.Unlock()
	res := Result{
		Outputs:           outputs,
		CrossMachineBytes: cl.wireBytes(),
		PullsServed:       cl.pullsServed(),
		StaleFetches:      staleFetches,
		MaxStalenessSteps: maxStaleness,
		DroppedGrads:        droppedGrads,
		AliveMachines:       cl.AliveMachines(),
		PartitionedMachines: cl.PartitionedMachines(),
		Robust:              cl.robustSnapshot().Sub(robustBefore),
	}
	if staleFetches > 0 || droppedGrads > 0 {
		res.DegradedSteps = 1
		res.Robust.DegradedSteps = 1
		cl.degradedTotal++
	}
	return res, nil
}

// localExpert serves an expert this machine currently owns, from its
// store (the authoritative copy — after a failover that is the
// restored object, not the seed layer's).
func (cl *Cluster) localExpert(m, e int) (*moe.Expert, error) {
	if ex, ok := cl.stores[m].get(transport.ExpertID{Expert: uint32(e)}); ok {
		return ex, nil
	}
	return nil, fmt.Errorf("livecluster: machine %d owns expert %d but does not host it", m, e)
}

// robustSnapshot sums all machine clients' robustness counters plus the
// cluster-level failover/checkpoint counters and the servers' fence
// rejections.
func (cl *Cluster) robustSnapshot() metrics.RobustnessSnapshot {
	sum := cl.robust.Snapshot()
	for _, c := range cl.clients {
		sum = sum.Add(c.Robust.Snapshot())
	}
	for _, s := range cl.servers {
		sum.FenceRejections += s.FencedRequests()
	}
	return sum
}

// Step returns how many iterations the cluster has started.
func (cl *Cluster) Step() int { return cl.step }

// RobustnessTotals returns the cumulative client-side robustness
// counters since the cluster started (plus server-side gradient
// dedups folded into GradDups).
func (cl *Cluster) RobustnessTotals() metrics.RobustnessSnapshot {
	sum := cl.robustSnapshot()
	for _, s := range cl.servers {
		sum.GradDups += s.GradsDeduped()
	}
	sum.DegradedSteps = int64(cl.degradedTotal)
	return sum
}

// forwardWorker computes one worker's tokens against every routed
// expert using fetched weights, combining in expert-index order (the
// same order as the reference implementation in internal/moe, so the
// outputs compare bit-for-bit). The token gather and the routing
// inversion are precomputed at Start; per iteration only the expert
// matmuls and the combine run.
func (cl *Cluster) forwardWorker(w int, fetch func(int) (*moe.Expert, error)) (*tensor.Matrix, error) {
	ri := cl.rindex[w]
	x := cl.xs[w]
	out := tensor.New(x.Rows, cl.cfg.Hidden)
	yes := make([]*tensor.Matrix, cl.cfg.NumExperts)
	for _, e := range ri.needed {
		expert, err := fetch(e)
		if err != nil {
			return nil, err
		}
		ye, fc := expert.Forward(cl.xes[w][e])
		fc.Release() // forward-only: the backward scratch goes straight back
		yes[e] = ye
	}
	for t := 0; t < x.Rows; t++ {
		for _, c := range ri.byToken[t] {
			out.AddScaledRow(t, yes[c.expert].Row(c.row), c.weight)
		}
	}
	for _, e := range ri.needed {
		tensor.Put(yes[e])
	}
	return out, nil
}

// RunExpertCentricReference computes the same forward pass with the
// in-process expert-centric reference (no network), for comparison.
func (cl *Cluster) RunExpertCentricReference() []*tensor.Matrix {
	return cl.layer.ForwardBackwardExpertCentric(cl.xs, nil).Outputs
}

// TokenExchangeBytes returns the bytes an expert-centric token exchange
// would push across machine boundaries for this workload (dispatch +
// combine, fp32 like the live payloads), for the traffic comparison.
func (cl *Cluster) TokenExchangeBytes() int64 {
	cfg := cl.cfg
	var cross int64
	for w, x := range cl.xs {
		machine := w / cfg.WorkersPerNode
		routing := cl.routings[w]
		for t := 0; t < x.Rows; t++ {
			for _, e := range routing.Experts[t] {
				if cl.homeMachine(e) != machine {
					cross += int64(4 * cfg.Hidden * 2) // token there + result back
				}
			}
		}
	}
	return cross
}

func (cl *Cluster) wireBytes() int64 {
	var sum int64
	for _, c := range cl.clients {
		sum += c.Counters.Sent() + c.Counters.Received()
	}
	return sum
}

func (cl *Cluster) pullsServed() int64 {
	var sum int64
	for _, s := range cl.servers {
		sum += s.PullsServed()
	}
	return sum
}

// GradsAccepted returns per-machine accepted gradient pushes.
func (cl *Cluster) GradsAccepted() []int64 {
	out := make([]int64, len(cl.servers))
	for i, s := range cl.servers {
		out[i] = s.GradsAccepted()
	}
	return out
}
