// The pipelined live trainer. Train runs real training steps —
// versioned expert pulls, fused forward/backward over microbatches,
// pre-reduced gradient pushes, deterministic SGD merges — in one of two
// schedules:
//
//   - Lockstep (the reference): fetch every expert, then compute every
//     microbatch, then push every gradient, with a global barrier and a
//     flush merge between steps.
//   - Pipelined: microbatches stream — each (worker, microbatch) piece
//     fetches, computes and hands off its gradients independently, so
//     expert pulls, forward/backward and pushes overlap. When the fault
//     configuration permits (see syncedTraining), steps overlap too:
//     step s+1's pulls and compute start while step s's pushes drain,
//     bounded by a depth window; otherwise the step barrier is kept and
//     only the intra-step phases overlap.
//
// Both schedules fold gradients at the same fixed points in the same
// fixed order (see train.go), so their final weights are bitwise equal.
package livecluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"janus/internal/metrics"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// DefaultPipelineDepth is the cross-step in-flight window: a machine
// may start step s+Depth's compute only once step s's pushes drained.
const DefaultPipelineDepth = 2

// DefaultTrainLR is the SGD learning rate when TrainOptions.LR is zero.
const DefaultTrainLR = 0.05

// TrainOptions configures one Train call.
type TrainOptions struct {
	// Steps is the number of training steps to run (default 1).
	Steps int
	// Microbatches splits each worker's batch into M contiguous token
	// ranges (default 1; clamped to TokensPerWorker). Bitwise
	// comparisons between runs require equal M — gradient sums are not
	// reassociation-free across different splits.
	Microbatches int
	// Pipelined selects the streaming schedule; false is the lockstep
	// reference.
	Pipelined bool
	// Depth bounds cross-step overlap in pipelined mode (default
	// DefaultPipelineDepth). Ignored in lockstep mode.
	Depth int
	// LR is the SGD learning rate (default DefaultTrainLR).
	LR float32

	// Elastic-membership events (all require FailoverEnabled, which
	// forces the step-synced schedule; they run at step boundaries,
	// after the step's flush merge and checkpoint).

	// JoinAfterStep, when positive, admits one new machine into the
	// cluster after that absolute training step completes, seeded
	// through machine JoinSeed. The newcomer hosts migrated experts
	// but runs no workers, so the gradient fold schedule — and the
	// final weights — stay bitwise identical to a static run.
	JoinAfterStep int
	JoinSeed      int
	// Migrations schedules fenced live expert handoffs. A handoff that
	// cannot complete rolls back and the run continues.
	Migrations []TrainMigration
	// RebalanceEvery, when positive, runs the popularity-weighted
	// rebalancer after every such step, executing at most
	// RebalanceMoves migrations (default 1) per invocation.
	RebalanceEvery int
	RebalanceMoves int
}

// TrainMigration schedules one live handoff: after absolute training
// step AfterStep's merge, Expert moves to machine To.
type TrainMigration struct {
	AfterStep int
	Expert    int
	To        int
}

// TrainResult reports one Train call.
type TrainResult struct {
	Steps        int
	// FinalOutputs holds each worker's combined layer output from the
	// last step (nil for workers on dead machines).
	FinalOutputs []*tensor.Matrix
	// Synced reports whether a pipelined run kept the per-step barrier
	// because the fault configuration required it.
	Synced            bool
	StaleFetches      int64
	DroppedGrads      int64
	MaxStalenessSteps int
	DegradedSteps     int
	AliveMachines     int
	// PartitionedMachines counts machines outside the authoritative
	// membership side when the run finished (no quorum, or fenced out).
	PartitionedMachines int
	Robust              metrics.RobustnessSnapshot
	Pipeline            metrics.PipelineSnapshot
}

// syncedTraining reports whether pipelined training must keep the
// global step barrier. Free-running overlap changes when operations
// happen relative to the injector's step clock and RNG draw order, so
// it is only deterministic (and failover's step-boundary view changes
// only sound) when faults cannot change outcomes and membership cannot
// change: any failover, checkpointing, or non-outcome-neutral injector
// rule forces the step-synced schedule.
func (cl *Cluster) syncedTraining() bool {
	cfg := cl.cfg
	if cfg.FailoverEnabled || cfg.CheckpointDir != "" {
		return true
	}
	return cfg.Injector != nil && !cfg.Injector.OutcomeNeutral()
}

// Train runs opts.Steps training steps. Not safe for concurrent use
// with itself or RunDataCentric; successive calls continue the same
// weight trajectory.
func (cl *Cluster) Train(opts TrainOptions) (TrainResult, error) {
	cfg := cl.cfg
	if opts.Steps <= 0 {
		opts.Steps = 1
	}
	if opts.Microbatches <= 0 {
		opts.Microbatches = 1
	}
	if opts.Microbatches > cfg.TokensPerWorker {
		opts.Microbatches = cfg.TokensPerWorker
	}
	if opts.Depth <= 0 {
		opts.Depth = DefaultPipelineDepth
	}
	if opts.LR == 0 {
		opts.LR = DefaultTrainLR
	}
	if (opts.JoinAfterStep > 0 || len(opts.Migrations) > 0 || opts.RebalanceEvery > 0) &&
		!cfg.FailoverEnabled {
		return TrainResult{}, errors.New("livecluster: membership events require FailoverEnabled")
	}
	synced := cl.syncedTraining()
	overlap := opts.Pipelined && !synced
	cl.trainInit(opts, overlap)
	if overlap {
		return cl.trainOverlap(opts)
	}
	return cl.trainSynced(opts, opts.Pipelined)
}

// runDeg accumulates a Train call's degradation telemetry.
type runDeg struct {
	mu           sync.Mutex
	stale        int64
	dropped      int64
	maxStaleness int
	steps        map[int]bool // training steps that saw degradation
}

func (d *runDeg) noteStale(age, step int) {
	d.mu.Lock()
	d.stale++
	if age > d.maxStaleness {
		d.maxStaleness = age
	}
	if d.steps == nil {
		d.steps = make(map[int]bool)
	}
	d.steps[step] = true
	d.mu.Unlock()
}

func (d *runDeg) noteDropped(step int) {
	d.mu.Lock()
	d.dropped++
	if d.steps == nil {
		d.steps = make(map[int]bool)
	}
	d.steps[step] = true
	d.mu.Unlock()
}

// trainFetch is one single-flight versioned expert fetch within a step.
type trainFetch struct {
	done chan struct{}
	ex   *moe.Expert
	err  error
}

// stepRun is one machine's execution of one training step.
type stepRun struct {
	cl     *Cluster
	opts   TrainOptions
	m      int
	s      int  // training step number (1-based, monotonic across calls)
	final  bool // assemble worker outputs this step
	phased bool // lockstep: fetch-all, compute-all, push-all phases
	ctx    context.Context
	deg    *runDeg
	errf   func(error)

	fetchMu sync.Mutex
	fetch   map[int]*trainFetch

	slotMu sync.Mutex
	parts  map[int][]*moe.ExpertGrad // expert -> grads in fold-slot order
	left   map[int]int               // expert -> undelivered slots

	pushWG sync.WaitGroup
	outs   map[int]*tensor.Matrix // worker -> combined output (final step)
}

func (cl *Cluster) newStepRun(opts TrainOptions, m, s int, final bool, ctx context.Context, deg *runDeg, errf func(error)) *stepRun {
	r := &stepRun{
		cl: cl, opts: opts, m: m, s: s, final: final,
		phased: !opts.Pipelined,
		ctx:    ctx, deg: deg, errf: errf,
		fetch: make(map[int]*trainFetch),
		parts: make(map[int][]*moe.ExpertGrad),
		left:  make(map[int]int),
	}
	for e, n := range cl.train.plan.slots[m] {
		r.parts[e] = make([]*moe.ExpertGrad, n)
		r.left[e] = n
	}
	if final {
		r.outs = make(map[int]*tensor.Matrix)
		for lw := 0; lw < cl.cfg.WorkersPerNode; lw++ {
			w := m*cl.cfg.WorkersPerNode + lw
			r.outs[w] = tensor.New(cl.cfg.TokensPerWorker, cl.cfg.Hidden)
		}
	}
	return r
}

// runTrainStep executes the step's compute and launches its pushes; the
// caller decides when to wait on r.pushWG (immediately in synced mode,
// lazily in overlap mode — that lag is the cross-step pipeline).
func (cl *Cluster) runTrainStep(r *stepRun) {
	pieces := cl.train.plan.pieces[r.m]
	if r.phased {
		// Phase 1: pull every needed expert, overlapped, and wait.
		var fwg sync.WaitGroup
		for _, e := range cl.needs[r.m] {
			fwg.Add(1)
			go func(e int) { defer fwg.Done(); r.fetchExpert(e) }(e)
		}
		fwg.Wait()
	} else {
		// Prefetch wave: pieces join the in-flight pulls as they go.
		for _, e := range cl.needs[r.m] {
			go r.fetchExpert(e)
		}
	}
	var cwg sync.WaitGroup
	for _, p := range pieces {
		cwg.Add(1)
		go func(p *workPiece) { defer cwg.Done(); r.runPiece(p) }(p)
	}
	cwg.Wait()
	if r.phased {
		// Phase 3: fold and push everything after all compute is done.
		for _, p := range pieces {
			for _, pe := range p.exps {
				if pe.slot != 0 {
					continue // one push per expert
				}
				r.pushWG.Add(1)
				go func(e int) { defer r.pushWG.Done(); r.foldPush(e) }(pe.e)
			}
		}
	}
}

// fetchExpert resolves expert e's version-(s-1) weights: the owner's
// live object when local, otherwise a single-flight versioned pull.
func (r *stepRun) fetchExpert(e int) (*moe.Expert, error) {
	cl := r.cl
	want := uint64(r.s - 1)
	id := transport.ExpertID{Expert: uint32(e)}
	if cl.ownerFor(r.m, e) == r.m {
		return cl.stores[r.m].waitLocalAt(id, want)
	}
	r.fetchMu.Lock()
	if f, ok := r.fetch[e]; ok {
		r.fetchMu.Unlock()
		<-f.done
		return f.ex, f.err
	}
	f := &trainFetch{done: make(chan struct{})}
	r.fetch[e] = f
	r.fetchMu.Unlock()
	f.ex, f.err = r.pullVersioned(e, want)
	close(f.done)
	return f.ex, f.err
}

// pullVersioned pulls (e, version) from its current owner, re-resolving
// ownership on remote rejections and falling back to the freshest stale
// copy when the pull cannot complete and StaleFallback allows it.
func (r *stepRun) pullVersioned(e int, want uint64) (*moe.Expert, error) {
	cl := r.cl
	id := transport.ExpertID{Expert: uint32(e)}
	owner := cl.ownerFor(r.m, e)
	var payload []byte
	var err error
	for resolve := 0; resolve < 3; resolve++ {
		if owner == r.m {
			return cl.stores[r.m].waitLocalAt(id, want)
		}
		payload, err = cl.clients[r.m].PullVersion(r.ctx, cl.addrs[owner], id, want)
		var re *transport.RemoteError
		if err == nil || !errors.As(err, &re) {
			break
		}
		next := cl.ownerFor(r.m, e)
		if next == owner {
			break
		}
		owner = next
	}
	var fe *transport.FencedEpochError
	if errors.As(err, &fe) {
		// The cluster's membership epoch moved past ours: freeze or
		// catch up (see noteFenced) and degrade this fetch.
		cl.noteFenced(r.m, fe)
	}
	if err == nil {
		cl.staleMu.Lock()
		old := cl.stale[r.m][e]
		cl.staleMu.Unlock()
		var ex *moe.Expert
		if old != nil && bytes.Equal(old.payload, payload) {
			ex = old.ex // identical bits: reuse the decoded weights
		} else {
			ex, err = decodeExpert(payload)
		}
		if err == nil {
			cl.staleMu.Lock()
			cl.stale[r.m][e] = &staleEntry{ex: ex, payload: payload, step: r.s}
			cl.staleMu.Unlock()
			return ex, nil
		}
	}
	// Lossless fallback first: a surviving in-sync replica at exactly
	// the wanted version holds the owner's own published bytes for that
	// version, so serving it is not degradation — no staleness, and no
	// StaleFallback opt-in required. Replica entries are replaced
	// wholesale and never mutated, so the shared object is safe to
	// compute with.
	if rep := cl.replicaServe(e, want); rep != nil {
		cl.clients[r.m].Robust.AddReplicaServe()
		return rep, nil
	}
	if cl.cfg.StaleFallback {
		cl.staleMu.Lock()
		old := cl.stale[r.m][e]
		cl.staleMu.Unlock()
		if old != nil {
			cl.clients[r.m].Robust.AddStaleServe()
			r.deg.noteStale(r.s-old.step, r.s)
			return old.ex, nil
		}
	}
	return nil, fmt.Errorf("livecluster: machine %d pull expert %d@%d: %w", r.m, e, want, err)
}

// runPiece computes one (worker, microbatch) unit: for each expert with
// tokens in the range, fetch its weights, build the upstream gradient
// rows, run the fused forward/backward, and deliver the weight gradient
// into its fold slot. On the final step it also combines the outputs.
func (r *stepRun) runPiece(p *workPiece) {
	cl := r.cl
	dout := cl.train.douts[p.w]
	var ys []*tensor.Matrix
	if r.final {
		ys = make([]*tensor.Matrix, len(p.exps))
	}
	for i, pe := range p.exps {
		ex, err := r.fetchExpert(pe.e)
		if err != nil {
			r.errf(err)
			return
		}
		dy := tensor.Get(len(pe.toks), cl.cfg.Hidden)
		for j, t := range pe.toks {
			dy.AddScaledRow(j, dout.Row(t), pe.ws[j])
		}
		y, grad := ex.ForwardBackward(pe.x, dy)
		tensor.Put(dy)
		if r.final {
			ys[i] = y
		} else {
			tensor.Put(y)
		}
		r.deliver(pe.e, pe.slot, grad)
	}
	cl.train.pipe.AddMicrobatch()
	if r.final {
		out := r.outs[p.w] // pieces write disjoint token rows
		for _, c := range p.comb {
			out.AddScaledRow(c.t, ys[c.expIdx].Row(c.row), c.weight)
		}
		for _, y := range ys {
			tensor.Put(y)
		}
	}
}

// deliver stores a piece's gradient in its fold slot; in streamed mode
// the last slot for an expert triggers its fold-and-push immediately,
// overlapping the push with the remaining compute.
func (r *stepRun) deliver(e, slot int, g *moe.ExpertGrad) {
	r.slotMu.Lock()
	r.parts[e][slot] = g
	r.left[e]--
	ready := r.left[e] == 0 && !r.phased
	r.slotMu.Unlock()
	if ready {
		r.pushWG.Add(1)
		go func() { defer r.pushWG.Done(); r.foldPush(e) }()
	}
}

// foldPush pre-reduces the machine's gradient slots for expert e in
// (worker, microbatch) order and delivers the sum to the owner —
// locally when this machine owns it, otherwise over the wire with
// ownership re-resolution. A push that cannot reach the owner is a
// dropped contribution when StaleFallback degradation is on, fatal
// otherwise.
func (r *stepRun) foldPush(e int) {
	cl := r.cl
	r.slotMu.Lock()
	parts := r.parts[e]
	r.slotMu.Unlock()
	acc := moe.NewExpertGrad(cl.cfg.Hidden)
	for _, g := range parts {
		acc.Accumulate(g)
	}
	id := transport.ExpertID{Expert: uint32(e)}
	step := uint64(r.s)
	owner := cl.ownerFor(r.m, e)
	var payload []byte
	var err error
	for resolve := 0; resolve < 3; resolve++ {
		if owner == r.m {
			if aerr := cl.stores[r.m].addTrainGrad(id, step, r.m, acc); aerr != nil {
				r.errf(aerr)
			}
			return
		}
		if payload == nil {
			payload = encodeTrainGrad(step, r.m, acc)
		}
		err = cl.clients[r.m].PushGradient(r.ctx, cl.addrs[owner], id, payload)
		var re *transport.RemoteError
		if err == nil || !errors.As(err, &re) {
			break
		}
		next := cl.ownerFor(r.m, e)
		if next == owner {
			break
		}
		owner = next
	}
	var fe *transport.FencedEpochError
	if errors.As(err, &fe) {
		// A fenced push is the split-brain guard working: the receiver
		// refused a stale-epoch gradient. Never fatal — the contribution
		// is dropped exactly like an unreachable-owner push.
		cl.noteFenced(r.m, fe)
		r.deg.noteDropped(r.s)
		return
	}
	if err != nil {
		if cl.cfg.StaleFallback {
			r.deg.noteDropped(r.s)
			return
		}
		r.errf(fmt.Errorf("livecluster: machine %d push grad expert %d step %d: %w", r.m, e, r.s, err))
	}
}

// trainSynced is the barriered driver: lockstep (streamed=false, the
// phased reference) and step-synced pipelined (streamed=true, phases
// overlap within a step but the step barrier and flush merge are kept).
func (cl *Cluster) trainSynced(opts TrainOptions, streamed bool) (TrainResult, error) {
	cfg := cl.cfg
	st := cl.train
	deg := &runDeg{}
	robustBefore := cl.robustSnapshot()
	pipeBefore := st.pipe.Snapshot()
	base := st.steps
	outputs := make([]*tensor.Matrix, cfg.numWorkers())

	for i := 0; i < opts.Steps; i++ {
		s := base + i + 1
		if cfg.Injector != nil {
			cfg.Injector.SetStep(s)
		}
		if cfg.FailoverEnabled {
			cl.heartbeatRound(s)
		}
		final := i == opts.Steps-1
		stepCtx, cancel := context.WithCancel(context.Background())
		var errMu sync.Mutex
		var firstErr error
		setErr := func(err error) {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			cancel() // a failed step cancels its in-flight pulls and pushes
			for _, store := range cl.stores {
				store.abortTraining()
			}
		}
		var wg sync.WaitGroup
		runs := make([]*stepRun, cfg.Machines)
		for m := 0; m < cfg.Machines; m++ {
			if !cl.machineRuns(m) {
				// Fenced out of the cluster: frozen until readmitted. A
				// machine that merely lost quorum keeps computing in
				// degraded mode (its pushes are fenced on the wire).
				continue
			}
			r := cl.newStepRun(opts, m, s, final, stepCtx, deg, setErr)
			if streamed {
				r.phased = false
			}
			runs[m] = r
			wg.Add(1)
			go func(r *stepRun) {
				defer wg.Done()
				cl.runTrainStep(r)
				r.pushWG.Wait()
			}(r)
		}
		wg.Wait()
		cancel()
		errMu.Lock()
		err := firstErr
		errMu.Unlock()
		if err != nil {
			return TrainResult{}, err
		}
		// Barrier merge: every store folds what arrived for step s.
		for _, store := range cl.stores {
			store.flushTo(uint64(s))
		}
		if err := cl.maybeCheckpoint(s); err != nil {
			return TrainResult{}, err
		}
		cl.recordExpertLoad()
		// Synchronous replication barrier: owners stream step s's merged
		// weights to their replica sets (acked) before any membership
		// event can move or kill what the replicas back up, and the
		// anti-entropy sweep repairs divergence on its cadence.
		cl.replicateStep()
		cl.antiEntropy(s)
		cl.runMembershipEvents(opts, s)
		if final {
			for _, r := range runs {
				if r == nil {
					continue
				}
				for w, out := range r.outs {
					outputs[w] = out
				}
			}
		}
		st.steps = s
	}
	return cl.trainResult(opts, outputs, deg, robustBefore, pipeBefore, true), nil
}

// runMembershipEvents executes the step's scheduled elastic-membership
// transitions, after the flush merge so every store sits exactly at
// version s. Failures are never fatal to the run: a failed join leaves
// the cluster at its current size, a failed handoff rolls back, and
// both are visible in the robustness counters.
func (cl *Cluster) runMembershipEvents(opts TrainOptions, s int) {
	if opts.JoinAfterStep == s {
		_, _ = cl.Join(opts.JoinSeed)
	}
	for _, mg := range opts.Migrations {
		if mg.AfterStep == s {
			_ = cl.MigrateExpert(mg.Expert, mg.To)
		}
	}
	if opts.RebalanceEvery > 0 && s%opts.RebalanceEvery == 0 {
		moves := opts.RebalanceMoves
		if moves <= 0 {
			moves = 1
		}
		_, _ = cl.Rebalance(moves)
	}
}

// trainOverlap is the free-running driver: each machine advances its
// own step counter, bounded by the depth window — a machine may compute
// step s+Depth only after step s's gradient pushes drained. Merges are
// count-triggered on the owners, so the only cross-machine
// synchronisation left is the versioned pulls themselves.
func (cl *Cluster) trainOverlap(opts TrainOptions) (TrainResult, error) {
	cfg := cl.cfg
	st := cl.train
	deg := &runDeg{}
	robustBefore := cl.robustSnapshot()
	pipeBefore := st.pipe.Snapshot()
	base := st.steps
	outputs := make([]*tensor.Matrix, cfg.numWorkers())
	var outMu sync.Mutex

	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
		for _, store := range cl.stores {
			store.abortTraining()
		}
	}
	if cfg.Injector != nil {
		// Outcome-neutral, window-free rules only (syncedTraining
		// guarantees it), so the step clock can sit still.
		cfg.Injector.SetStep(base + 1)
	}
	var wg sync.WaitGroup
	for m := 0; m < cfg.Machines; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			drained := make([]chan struct{}, opts.Steps)
			for i := 0; i < opts.Steps; i++ {
				if runCtx.Err() != nil {
					return
				}
				depth := opts.Depth
				if depth > 1 && cfg.SlowAfter > 0 && cl.peerSlow(m) {
					// Gray failure: a peer is flagged slow, so shrink the
					// in-flight window instead of queueing more work
					// behind it — the pipeline slows but never stalls on
					// a dead-man timeout. Scheduling-only: fold points
					// and order are unchanged, so outputs stay bitwise.
					depth = 1
					st.pipe.AddDepthShrink()
				}
				if j := i - depth; j >= 0 {
					// Backpressure: block until step j's pushes drained.
					select {
					case <-drained[j]:
					default:
						start := time.Now()
						select {
						case <-drained[j]:
							st.pipe.AddDepthStall(time.Since(start).Nanoseconds())
						case <-runCtx.Done():
							return
						}
					}
				}
				s := base + i + 1
				final := i == opts.Steps-1
				r := cl.newStepRun(opts, m, s, final, runCtx, deg, setErr)
				r.phased = false
				cl.runTrainStep(r)
				ch := make(chan struct{})
				drained[i] = ch
				go func(r *stepRun, ch chan struct{}) {
					r.pushWG.Wait()
					close(ch)
				}(r, ch)
				if final {
					outMu.Lock()
					for w, out := range r.outs {
						outputs[w] = out
					}
					outMu.Unlock()
				}
			}
			// Drain the tail before the machine retires.
			for i := max(0, opts.Steps-opts.Depth); i < opts.Steps; i++ {
				if drained[i] == nil {
					continue
				}
				select {
				case <-drained[i]:
				case <-runCtx.Done():
					return
				}
			}
		}(m)
	}
	wg.Wait()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return TrainResult{}, err
	}
	st.steps = base + opts.Steps
	return cl.trainResult(opts, outputs, deg, robustBefore, pipeBefore, false), nil
}

func (cl *Cluster) trainResult(opts TrainOptions, outputs []*tensor.Matrix, deg *runDeg, robustBefore metrics.RobustnessSnapshot, pipeBefore metrics.PipelineSnapshot, synced bool) TrainResult {
	// Workers outside the authoritative membership side (zombies that
	// kept computing without quorum) do not contribute outputs.
	if cl.cfg.FailoverEnabled {
		for m := 0; m < cl.cfg.Machines; m++ {
			if cl.isAlive(m) {
				continue
			}
			for lw := 0; lw < cl.cfg.WorkersPerNode; lw++ {
				outputs[m*cl.cfg.WorkersPerNode+lw] = nil
			}
		}
	}
	deg.mu.Lock()
	maxStale := deg.maxStaleness
	if cl.pendingStaleness > maxStale {
		maxStale = cl.pendingStaleness
	}
	cl.pendingStaleness = 0
	res := TrainResult{
		Steps:               opts.Steps,
		FinalOutputs:        outputs,
		Synced:              opts.Pipelined && synced,
		StaleFetches:        deg.stale,
		DroppedGrads:        deg.dropped,
		MaxStalenessSteps:   maxStale,
		DegradedSteps:       len(deg.steps),
		AliveMachines:       cl.AliveMachines(),
		PartitionedMachines: cl.PartitionedMachines(),
		Robust:              cl.robustSnapshot().Sub(robustBefore),
		Pipeline:            cl.train.pipe.Snapshot().Sub(pipeBefore),
	}
	deg.mu.Unlock()
	cl.degradedTotal += res.DegradedSteps
	return res
}
