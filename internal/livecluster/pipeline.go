// The pipelined live trainer. Train runs real training steps —
// versioned expert pulls, fused forward/backward over microbatches,
// pre-reduced gradient pushes, deterministic SGD merges — in one of two
// schedules:
//
//   - Lockstep (the reference): fetch every expert, then compute every
//     microbatch, then push every gradient, with a global barrier and a
//     flush merge between steps.
//   - Pipelined: microbatches stream — each (worker, microbatch) piece
//     fetches, computes and hands off its gradients independently, so
//     expert pulls, forward/backward and pushes overlap. When the fault
//     configuration permits (see syncedTraining), steps overlap too:
//     step s+1's pulls and compute start while step s's pushes drain,
//     bounded by a depth window; otherwise the step barrier is kept and
//     only the intra-step phases overlap.
//
// Both schedules fold gradients at the same fixed points in the same
// fixed order (see train.go), so their final weights are bitwise equal.
// Execution runs on the persistent runtime in runtime.go; this file is
// the per-call drivers.
package livecluster

import (
	"errors"
	"sync"

	"janus/internal/metrics"
	"janus/internal/tensor"
)

// DefaultPipelineDepth is the cross-step in-flight window: a machine
// may start step s+Depth's compute only once step s's pushes drained.
const DefaultPipelineDepth = 2

// DefaultTrainLR is the SGD learning rate when TrainOptions.LR is zero.
const DefaultTrainLR = 0.05

// TrainOptions configures one Train call.
type TrainOptions struct {
	// Steps is the number of training steps to run (default 1).
	Steps int
	// Microbatches splits each worker's batch into M contiguous token
	// ranges (default 1; clamped to TokensPerWorker). Bitwise
	// comparisons between runs require equal M — gradient sums are not
	// reassociation-free across different splits.
	Microbatches int
	// Pipelined selects the streaming schedule; false is the lockstep
	// reference.
	Pipelined bool
	// Depth bounds cross-step overlap in pipelined mode (default
	// DefaultPipelineDepth). Ignored in lockstep mode.
	Depth int
	// LR is the SGD learning rate (default DefaultTrainLR).
	LR float32
	// ReuseOutputs makes successive Train calls return the same
	// FinalOutputs matrices, zeroed and refilled in place — the
	// zero-allocation steady state for benchmarks and long drivers.
	// Leave false (the default) if results are retained across calls.
	ReuseOutputs bool

	// Elastic-membership events (all require FailoverEnabled, which
	// forces the step-synced schedule; they run at step boundaries,
	// after the step's flush merge and checkpoint).

	// JoinAfterStep, when positive, admits one new machine into the
	// cluster after that absolute training step completes, seeded
	// through machine JoinSeed. The newcomer hosts migrated experts
	// but runs no workers, so the gradient fold schedule — and the
	// final weights — stay bitwise identical to a static run.
	JoinAfterStep int
	JoinSeed      int
	// Migrations schedules fenced live expert handoffs. A handoff that
	// cannot complete rolls back and the run continues.
	Migrations []TrainMigration
	// RebalanceEvery, when positive, runs the popularity-weighted
	// rebalancer after every such step, executing at most
	// RebalanceMoves migrations (default 1) per invocation.
	RebalanceEvery int
	RebalanceMoves int
}

// TrainMigration schedules one live handoff: after absolute training
// step AfterStep's merge, Expert moves to machine To.
type TrainMigration struct {
	AfterStep int
	Expert    int
	To        int
}

// TrainResult reports one Train call.
type TrainResult struct {
	Steps int
	// FinalOutputs holds each worker's combined layer output from the
	// last step (nil for workers on dead machines).
	FinalOutputs []*tensor.Matrix
	// Synced reports whether a pipelined run kept the per-step barrier
	// because the fault configuration required it.
	Synced            bool
	StaleFetches      int64
	DroppedGrads      int64
	MaxStalenessSteps int
	DegradedSteps     int
	AliveMachines     int
	// PartitionedMachines counts machines outside the authoritative
	// membership side when the run finished (no quorum, or fenced out).
	PartitionedMachines int
	Robust              metrics.RobustnessSnapshot
	Pipeline            metrics.PipelineSnapshot
}

// syncedTraining reports whether pipelined training must keep the
// global step barrier. Free-running overlap changes when operations
// happen relative to the injector's step clock and RNG draw order, so
// it is only deterministic (and failover's step-boundary view changes
// only sound) when faults cannot change outcomes and membership cannot
// change: any failover, checkpointing, or non-outcome-neutral injector
// rule forces the step-synced schedule.
func (cl *Cluster) syncedTraining() bool {
	cfg := cl.cfg
	if cfg.FailoverEnabled || cfg.CheckpointDir != "" {
		return true
	}
	return cfg.Injector != nil && !cfg.Injector.OutcomeNeutral()
}

// Train runs opts.Steps training steps. Not safe for concurrent use
// with itself or RunDataCentric; successive calls continue the same
// weight trajectory.
func (cl *Cluster) Train(opts TrainOptions) (TrainResult, error) {
	cfg := cl.cfg
	if opts.Steps <= 0 {
		opts.Steps = 1
	}
	if opts.Microbatches <= 0 {
		opts.Microbatches = 1
	}
	if opts.Microbatches > cfg.TokensPerWorker {
		opts.Microbatches = cfg.TokensPerWorker
	}
	if opts.Depth <= 0 {
		opts.Depth = DefaultPipelineDepth
	}
	if opts.LR == 0 {
		opts.LR = DefaultTrainLR
	}
	if (opts.JoinAfterStep > 0 || len(opts.Migrations) > 0 || opts.RebalanceEvery > 0) &&
		!cfg.FailoverEnabled {
		return TrainResult{}, errors.New("livecluster: membership events require FailoverEnabled")
	}
	synced := cl.syncedTraining()
	overlap := opts.Pipelined && !synced
	cl.trainInit(opts, overlap)
	if overlap {
		return cl.trainOverlap(opts)
	}
	return cl.trainSynced(opts, opts.Pipelined)
}

// runDeg accumulates a Train call's degradation telemetry.
type runDeg struct {
	mu           sync.Mutex
	stale        int64
	dropped      int64
	maxStaleness int
	steps        map[int]bool // training steps that saw degradation
}

func (d *runDeg) reset() {
	d.mu.Lock()
	d.stale, d.dropped, d.maxStaleness = 0, 0, 0
	clear(d.steps)
	d.mu.Unlock()
}

func (d *runDeg) noteStale(age, step int) {
	d.mu.Lock()
	d.stale++
	if age > d.maxStaleness {
		d.maxStaleness = age
	}
	if d.steps == nil {
		d.steps = make(map[int]bool)
	}
	d.steps[step] = true
	d.mu.Unlock()
}

func (d *runDeg) noteDropped(step int) {
	d.mu.Lock()
	d.dropped++
	if d.steps == nil {
		d.steps = make(map[int]bool)
	}
	d.steps[step] = true
	d.mu.Unlock()
}

// trainSynced is the barriered driver: lockstep (streamed=false, the
// phased reference) and step-synced pipelined (streamed=true, phases
// overlap within a step but the step barrier and flush merge are kept).
func (cl *Cluster) trainSynced(opts TrainOptions, streamed bool) (TrainResult, error) {
	cfg := cl.cfg
	st := cl.train
	tr := st.rt
	robustBefore := cl.robustSnapshot()
	pipeBefore := st.pipe.Snapshot()
	base := st.steps
	outputs := tr.callOutputs(opts.ReuseOutputs)

	for i := 0; i < opts.Steps; i++ {
		s := base + i + 1
		if cfg.Injector != nil {
			cfg.Injector.SetStep(s)
		}
		if cfg.FailoverEnabled {
			cl.heartbeatRound(s)
		}
		final := i == opts.Steps-1
		for m := 0; m < cfg.Machines; m++ {
			if !cl.machineRuns(m) {
				// Fenced out of the cluster: frozen until readmitted. A
				// machine that merely lost quorum keeps computing in
				// degraded mode (its pushes are fenced on the wire).
				tr.ran[m] = false
				continue
			}
			tr.ran[m] = true
			rt := tr.machines[m]
			r := rt.runs[i%len(rt.runs)]
			r.waitDrained() // trivially drained: synced steps leave runs drained
			r.reset(s, final, !streamed, opts.ReuseOutputs)
			// Dispatch to the machine's persistent driver goroutine —
			// same fold slots and order as a dedicated goroutine, no
			// per-step closure or stack.
			tr.stepWG.Add(1)
			rt.stepCh <- r
		}
		tr.stepWG.Wait()
		if err := tr.cs.err(); err != nil {
			return TrainResult{}, err
		}
		// Barrier merge: every store folds what arrived for step s.
		for _, store := range cl.stores {
			store.flushTo(uint64(s))
		}
		if err := cl.maybeCheckpoint(s); err != nil {
			return TrainResult{}, err
		}
		cl.recordExpertLoad()
		// Synchronous replication barrier: owners stream step s's merged
		// weights to their replica sets (acked) before any membership
		// event can move or kill what the replicas back up, and the
		// anti-entropy sweep repairs divergence on its cadence.
		cl.replicateStep()
		cl.antiEntropy(s)
		cl.runMembershipEvents(opts, s)
		if final {
			for m := 0; m < cfg.Machines; m++ {
				if !tr.ran[m] {
					continue
				}
				rt := tr.machines[m]
				r := rt.runs[i%len(rt.runs)]
				for lw, out := range r.outs {
					outputs[m*cfg.WorkersPerNode+lw] = out
				}
			}
		}
		st.steps = s
	}
	return cl.trainResult(opts, outputs, &tr.deg, robustBefore, pipeBefore, true), nil
}

// runMembershipEvents executes the step's scheduled elastic-membership
// transitions, after the flush merge so every store sits exactly at
// version s. Failures are never fatal to the run: a failed join leaves
// the cluster at its current size, a failed handoff rolls back, and
// both are visible in the robustness counters.
func (cl *Cluster) runMembershipEvents(opts TrainOptions, s int) {
	if opts.JoinAfterStep == s {
		_, _ = cl.Join(opts.JoinSeed)
	}
	for _, mg := range opts.Migrations {
		if mg.AfterStep == s {
			_ = cl.MigrateExpert(mg.Expert, mg.To)
		}
	}
	if opts.RebalanceEvery > 0 && s%opts.RebalanceEvery == 0 {
		moves := opts.RebalanceMoves
		if moves <= 0 {
			moves = 1
		}
		_, _ = cl.Rebalance(moves)
	}
}

// trainOverlap is the free-running driver: it hands the call to every
// machine's persistent driver goroutine (runtime.go runCall) and waits.
func (cl *Cluster) trainOverlap(opts TrainOptions) (TrainResult, error) {
	cfg := cl.cfg
	st := cl.train
	tr := st.rt
	robustBefore := cl.robustSnapshot()
	pipeBefore := st.pipe.Snapshot()
	base := st.steps
	outputs := tr.callOutputs(opts.ReuseOutputs)
	if cfg.Injector != nil {
		// Outcome-neutral, window-free rules only (syncedTraining
		// guarantees it), so the step clock can sit still.
		cfg.Injector.SetStep(base + 1)
	}
	tr.callWG.Add(cfg.Machines)
	call := trainCall{steps: opts.Steps, depth: opts.Depth, base: base, outputs: outputs, reuseOut: opts.ReuseOutputs}
	for m := 0; m < cfg.Machines; m++ {
		tr.machines[m].callCh <- call
	}
	tr.callWG.Wait()
	if err := tr.cs.err(); err != nil {
		return TrainResult{}, err
	}
	st.steps = base + opts.Steps
	return cl.trainResult(opts, outputs, &tr.deg, robustBefore, pipeBefore, false), nil
}

func (cl *Cluster) trainResult(opts TrainOptions, outputs []*tensor.Matrix, deg *runDeg, robustBefore metrics.RobustnessSnapshot, pipeBefore metrics.PipelineSnapshot, synced bool) TrainResult {
	// Workers outside the authoritative membership side (zombies that
	// kept computing without quorum) do not contribute outputs.
	if cl.cfg.FailoverEnabled {
		for m := 0; m < cl.cfg.Machines; m++ {
			if cl.isAlive(m) {
				continue
			}
			for lw := 0; lw < cl.cfg.WorkersPerNode; lw++ {
				outputs[m*cl.cfg.WorkersPerNode+lw] = nil
			}
		}
	}
	deg.mu.Lock()
	maxStale := deg.maxStaleness
	if cl.pendingStaleness > maxStale {
		maxStale = cl.pendingStaleness
	}
	cl.pendingStaleness = 0
	res := TrainResult{
		Steps:               opts.Steps,
		FinalOutputs:        outputs,
		Synced:              opts.Pipelined && synced,
		StaleFetches:        deg.stale,
		DroppedGrads:        deg.dropped,
		MaxStalenessSteps:   maxStale,
		DegradedSteps:       len(deg.steps),
		AliveMachines:       cl.AliveMachines(),
		PartitionedMachines: cl.PartitionedMachines(),
		Robust:              cl.robustSnapshot().Sub(robustBefore),
		Pipeline:            cl.train.pipe.Snapshot().Sub(pipeBefore),
	}
	deg.mu.Unlock()
	cl.degradedTotal += res.DegradedSteps
	return res
}
