// The trainer's persistent execution runtime. The per-step drivers in
// pipeline.go schedule work onto structures that live across steps and
// across Train calls — persistent worker goroutines fed by task
// channels, a ring of reusable stepRun records per machine, worker-local
// encode scratch, and a rotating set of pull destination buffers — so a
// steady-state training step performs zero heap allocations: goroutine
// launches, closures, maps and per-step buffers are all replaced by
// resets of preallocated state.
//
// Scheduling only: the work items, their fold slots and their fold
// order are exactly the ones the static plan fixes (train.go), so this
// runtime produces bitwise the same weights as the per-step-goroutine
// execution it replaced.
package livecluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// trainCtx is a reusable context.Context: cancellable, resettable, and
// allocation-free on the steady-state path (Done's channel is created
// once and only remade after an actual cancellation).
type trainCtx struct {
	mu        sync.Mutex
	done      chan struct{}
	cancelled bool
}

func (c *trainCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

func (c *trainCtx) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
	}
	return c.done
}

func (c *trainCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelled {
		return context.Canceled
	}
	return nil
}

func (c *trainCtx) Value(any) any { return nil }

func (c *trainCtx) cancel() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelled {
		return
	}
	c.cancelled = true
	if c.done == nil {
		c.done = make(chan struct{})
	}
	close(c.done)
}

func (c *trainCtx) reset() {
	c.mu.Lock()
	if c.cancelled {
		c.cancelled = false
		c.done = nil
	}
	c.mu.Unlock()
}

// callState is one Train call's failure latch: the first error wins,
// cancels every in-flight pull and push, and aborts the stores so
// parked version waiters unblock into errors.
type callState struct {
	cl  *Cluster
	ctx trainCtx

	mu       sync.Mutex
	firstErr error
}

func (cs *callState) reset() {
	cs.mu.Lock()
	cs.firstErr = nil
	cs.mu.Unlock()
	cs.ctx.reset()
}

func (cs *callState) fail(err error) {
	cs.mu.Lock()
	if cs.firstErr == nil {
		cs.firstErr = err
	}
	cs.mu.Unlock()
	cs.ctx.cancel()
	for _, store := range cs.cl.stores {
		store.abortTraining()
	}
}

func (cs *callState) err() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.firstErr
}

// task points a persistent worker at one unit of a step's work.
type task struct {
	r   *stepRun
	idx int32
}

// trainCall is one Train invocation handed to the overlap drivers.
type trainCall struct {
	steps    int
	depth    int
	base     int
	outputs  []*tensor.Matrix
	reuseOut bool
}

// trainRuntime is the cluster-wide persistent execution state, built by
// trainInit and rebuilt only when the microbatch plan or the depth
// window outgrows it.
type trainRuntime struct {
	cl       *Cluster
	depthCap int
	machines []*machineRuntime
	cs       callState
	deg      runDeg
	callWG   sync.WaitGroup
	stepWG   sync.WaitGroup   // synced-schedule per-step barrier
	outputs  []*tensor.Matrix // persistent FinalOutputs slice (ReuseOutputs)
	ran      []bool           // scratch: which machines ran the current step
}

// machineRuntime is one machine's share: its plan slice with precomputed
// fold-slot layout, its worker pools, and its ring of stepRuns.
type machineRuntime struct {
	tr *trainRuntime
	cl *Cluster
	m  int

	pieces  []*workPiece
	pieceYs [][]*tensor.Matrix // per piece: final-step output scratch

	// Per-expert gradient fold layout, ascending expert order: expert
	// pushExperts[i] folds slotCount[i] pieces at parts[slotBase[i]:].
	pushExperts []int32
	slotBase    []int32
	slotCount   []int32
	slotTotal   int

	fetchCh chan task
	pieceCh chan task
	pushCh  chan task
	callCh  chan trainCall
	stepCh  chan *stepRun // synced-schedule step dispatch (see driverLoop)
	quit    chan struct{}

	runs    []*stepRun
	outMats []*tensor.Matrix // per local worker: persistent final outputs
}

// stepRun is one machine's reusable execution record for one training
// step. All slices are preallocated to the plan's shape; reset()
// restores them between steps.
type stepRun struct {
	rt *machineRuntime

	s      int  // training step number (1-based, monotonic across calls)
	final  bool // assemble worker outputs this step
	phased bool // lockstep: fetch-all, compute-all, push-all phases

	mu   sync.Mutex
	cond sync.Cond

	// Fetch slots, indexed like cl.needs[m] (resolved via cl.needIdx).
	fetchEx   []*moe.Expert
	fetchErr  []error
	fetchDone []bool
	fetchLeft int

	parts []*moe.ExpertGrad // dense fold slots (see slotBase/slotCount)
	left  []int32           // per pushExperts entry: undelivered slots

	computed    int // pieces finished (with or without error)
	computedOK  int
	pushPending int
	enqueuedAll bool // no further pushes will be enqueued for this run
	idle        bool // never started (fresh ring slot) — trivially drained

	outs []*tensor.Matrix // per local worker (final step only)
}

func newStepRun(rt *machineRuntime) *stepRun {
	r := &stepRun{rt: rt, idle: true}
	r.cond.L = &r.mu
	nf := len(rt.cl.needs[rt.m])
	r.fetchEx = make([]*moe.Expert, nf)
	r.fetchErr = make([]error, nf)
	r.fetchDone = make([]bool, nf)
	r.parts = make([]*moe.ExpertGrad, rt.slotTotal)
	r.left = make([]int32, len(rt.pushExperts))
	r.outs = make([]*tensor.Matrix, rt.cl.cfg.WorkersPerNode)
	return r
}

// newTrainRuntime builds the persistent runtime for a plan: fold-slot
// layout, stepRun rings sized depth+2, and the worker pools. Worker
// counts reproduce the concurrency of the per-step-goroutine scheduler:
// every piece of a step can run at once, and fetches/pushes from up to
// ring steps can be in flight together.
func newTrainRuntime(cl *Cluster, plan *microPlan, depth int) *trainRuntime {
	tr := &trainRuntime{cl: cl, depthCap: depth}
	tr.cs.cl = cl
	tr.machines = make([]*machineRuntime, cl.cfg.Machines)
	tr.ran = make([]bool, cl.cfg.Machines)
	ring := depth + 2
	for m := range tr.machines {
		rt := &machineRuntime{tr: tr, cl: cl, m: m}
		rt.pieces = plan.pieces[m]
		for e := range plan.slots[m] {
			rt.pushExperts = append(rt.pushExperts, int32(e))
		}
		sortInt32s(rt.pushExperts)
		rt.slotBase = make([]int32, len(rt.pushExperts))
		rt.slotCount = make([]int32, len(rt.pushExperts))
		pidxOf := make(map[int]int32, len(rt.pushExperts))
		for i, e := range rt.pushExperts {
			rt.slotBase[i] = int32(rt.slotTotal)
			rt.slotCount[i] = int32(plan.slots[m][int(e)])
			rt.slotTotal += int(rt.slotCount[i])
			pidxOf[int(e)] = int32(i)
		}
		for _, p := range rt.pieces {
			for _, pe := range p.exps {
				pe.pidx = pidxOf[pe.e]
			}
		}
		rt.pieceYs = make([][]*tensor.Matrix, len(rt.pieces))
		for i, p := range rt.pieces {
			rt.pieceYs[i] = make([]*tensor.Matrix, len(p.exps))
		}
		nf := len(cl.needs[m])
		rt.fetchCh = make(chan task, ring*max(nf, 1))
		rt.pieceCh = make(chan task, ring*max(len(rt.pieces), 1))
		rt.pushCh = make(chan task, ring*max(len(rt.pushExperts), 1))
		rt.callCh = make(chan trainCall, 1)
		rt.stepCh = make(chan *stepRun, 1)
		rt.quit = make(chan struct{})
		rt.runs = make([]*stepRun, ring)
		for i := range rt.runs {
			rt.runs[i] = newStepRun(rt)
		}
		rt.outMats = make([]*tensor.Matrix, cl.cfg.WorkersPerNode)
		tr.machines[m] = rt
		for i := 0; i < ring*nf; i++ {
			go rt.fetchWorker()
		}
		for range rt.pieces {
			go rt.pieceWorker()
		}
		for i := 0; i < ring*len(rt.pushExperts); i++ {
			go rt.pushWorker()
		}
		go rt.driverLoop()
	}
	return tr
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// shutdown stops every worker and driver. In-flight tasks finish first
// (their runs were aborted via the stores, so they finish fast).
func (tr *trainRuntime) shutdown() {
	for _, rt := range tr.machines {
		if rt != nil {
			close(rt.quit)
		}
	}
}

// callOutputs returns the FinalOutputs slice for one Train call: the
// persistent one under ReuseOutputs, a fresh one otherwise (callers may
// retain results across calls by default).
func (tr *trainRuntime) callOutputs(reuse bool) []*tensor.Matrix {
	if !reuse {
		return make([]*tensor.Matrix, tr.cl.cfg.numWorkers())
	}
	if tr.outputs == nil {
		tr.outputs = make([]*tensor.Matrix, tr.cl.cfg.numWorkers())
	}
	return tr.outputs
}

func (rt *machineRuntime) fetchWorker() {
	for {
		select {
		case <-rt.quit:
			return
		case t := <-rt.fetchCh:
			t.r.doFetch(int(t.idx))
		}
	}
}

func (rt *machineRuntime) pieceWorker() {
	for {
		select {
		case <-rt.quit:
			return
		case t := <-rt.pieceCh:
			t.r.runPiece(int(t.idx))
		}
	}
}

func (rt *machineRuntime) pushWorker() {
	var scratch []byte // worker-local JGR1 encode buffer
	for {
		select {
		case <-rt.quit:
			return
		case t := <-rt.pushCh:
			t.r.doPush(int(t.idx), &scratch)
		}
	}
}

// startStep enqueues a step's fetch wave and pieces. Channel capacities
// cover ring steps, so the sends never block.
func (rt *machineRuntime) startStep(r *stepRun) {
	for i := range rt.cl.needs[rt.m] {
		rt.fetchCh <- task{r, int32(i)}
	}
	for i := range rt.pieces {
		rt.pieceCh <- task{r, int32(i)}
	}
}

// reset prepares a ring slot for a new step. Must only run on a drained
// slot; leftover parts (error runs abandon delivered gradients) return
// to the pool here.
func (r *stepRun) reset(s int, final, phased, reuseOut bool) {
	rt := r.rt
	r.mu.Lock()
	r.s, r.final, r.phased = s, final, phased
	for i := range r.fetchDone {
		r.fetchDone[i] = false
		r.fetchErr[i] = nil
		r.fetchEx[i] = nil
	}
	r.fetchLeft = len(r.fetchDone)
	for i, g := range r.parts {
		if g != nil {
			moe.PutExpertGrad(g)
			r.parts[i] = nil
		}
	}
	copy(r.left, rt.slotCount)
	r.computed, r.computedOK, r.pushPending = 0, 0, 0
	r.enqueuedAll = len(rt.pieces) == 0 // no pieces → no pushes ever enqueued
	r.idle = false
	for lw := range r.outs {
		r.outs[lw] = nil
	}
	if final {
		cfg := rt.cl.cfg
		for lw := range r.outs {
			if reuseOut {
				m := rt.outMats[lw]
				if m == nil {
					m = tensor.New(cfg.TokensPerWorker, cfg.Hidden)
					rt.outMats[lw] = m
				} else {
					m.Zero()
				}
				r.outs[lw] = m
			} else {
				r.outs[lw] = tensor.New(cfg.TokensPerWorker, cfg.Hidden)
			}
		}
	}
	r.mu.Unlock()
}

func (r *stepRun) fail(err error) { r.rt.tr.cs.fail(err) }

// doFetch resolves fetch slot idx (expert cl.needs[m][idx] at version
// s-1) and publishes the result for waiting pieces.
func (r *stepRun) doFetch(idx int) {
	rt := r.rt
	e := rt.cl.needs[rt.m][idx]
	ex, err := r.resolveExpert(e)
	r.mu.Lock()
	r.fetchEx[idx], r.fetchErr[idx] = ex, err
	r.fetchDone[idx] = true
	r.fetchLeft--
	r.mu.Unlock()
	r.cond.Broadcast()
}

// waitFetch blocks until fetch slot idx resolved.
func (r *stepRun) waitFetch(idx int) (*moe.Expert, error) {
	r.mu.Lock()
	for !r.fetchDone[idx] {
		r.cond.Wait()
	}
	ex, err := r.fetchEx[idx], r.fetchErr[idx]
	r.mu.Unlock()
	return ex, err
}

// waitAllFetched blocks until every fetch slot resolved (phase 1 of the
// lockstep schedule).
func (r *stepRun) waitAllFetched() {
	r.mu.Lock()
	for r.fetchLeft > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// waitComputed blocks until every piece finished (with or without
// error).
func (r *stepRun) waitComputed() {
	r.mu.Lock()
	for r.computed < len(r.rt.pieces) {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

func (r *stepRun) computedOKCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.computedOK
}

func (r *stepRun) drainedLocked() bool {
	return r.idle || (r.enqueuedAll && r.pushPending == 0)
}

func (r *stepRun) drainedNow() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drainedLocked()
}

// waitDrained blocks until the run's pushes drained (or the run never
// started). After it returns the ring slot is safe to reset.
func (r *stepRun) waitDrained() {
	r.mu.Lock()
	for !r.drainedLocked() {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// resolveExpert resolves expert e's version-(s-1) weights: the owner's
// live object when local, otherwise a versioned pull.
func (r *stepRun) resolveExpert(e int) (*moe.Expert, error) {
	cl := r.rt.cl
	want := uint64(r.s - 1)
	if cl.ownerFor(r.rt.m, e) == r.rt.m {
		return cl.stores[r.rt.m].waitLocalAt(transport.ExpertID{Expert: uint32(e)}, want)
	}
	return r.pullVersioned(e, want)
}

// pullVersioned pulls (e, version) from its current owner into a
// recycled destination buffer, re-resolving ownership on remote
// rejections and falling back to the freshest stale copy when the pull
// cannot complete and StaleFallback allows it. Up to ring consecutive
// steps can have pulls of the same expert in flight (later ones parked
// on the owner's version), so each (machine, expert) cache entry keeps
// a small pool of retired payload buffers as pull destinations.
func (r *stepRun) pullVersioned(e int, want uint64) (*moe.Expert, error) {
	rt := r.rt
	cl := rt.cl
	m := rt.m
	id := transport.ExpertID{Expert: uint32(e)}
	owner := cl.ownerFor(m, e)

	cl.staleMu.Lock()
	ent := cl.stale[m][e]
	if ent == nil {
		ent = &staleEntry{}
		cl.stale[m][e] = ent
	}
	var dst []byte
	if n := len(ent.spares); n > 0 {
		dst = ent.spares[n-1]
		ent.spares = ent.spares[:n-1]
	}
	cl.staleMu.Unlock()

	var payload []byte
	var err error
	for resolve := 0; resolve < 3; resolve++ {
		if owner == m {
			// Ownership moved here mid-resolve: serve locally and return
			// the unused destination buffer.
			if dst != nil {
				r.returnSpare(e, dst)
			}
			return cl.stores[m].waitLocalAt(id, want)
		}
		payload, err = cl.clients[m].PullVersionInto(&rt.tr.cs.ctx, cl.addrs[owner], id, want, dst)
		if payload != nil {
			dst = payload // may have grown; keep ownership of the buffer
		}
		if err == nil {
			break
		}
		// Declared after the nil check so the escaping errors.As target
		// is only allocated on the error path, never per steady pull.
		var re *transport.RemoteError
		if !errors.As(err, &re) {
			break
		}
		next := cl.ownerFor(m, e)
		if next == owner {
			break
		}
		owner = next
	}
	if err != nil {
		var fe *transport.FencedEpochError
		if errors.As(err, &fe) {
			// The cluster's membership epoch moved past ours: freeze or
			// catch up (see noteFenced) and degrade this fetch.
			cl.noteFenced(m, fe)
		}
	}
	if err == nil {
		cl.staleMu.Lock()
		var ex *moe.Expert
		if ent.ex != nil && bytes.Equal(ent.payload, payload) {
			ex = ent.ex // identical bits: reuse the decoded weights
		} else if cl.staleInPlace && ent.ex != nil {
			// Decode into the cached object. Safe: the pull⟺contribute
			// invariant orders this strictly after every compute that
			// read the previous version on this machine, and the
			// staleInPlace gate rules out any path that aliases the
			// cached object elsewhere.
			ex, err = decodeExpertInto(ent.ex, payload)
		} else {
			ex, err = decodeExpert(payload)
		}
		if err == nil {
			if old := ent.payload; old != nil {
				ent.spares = append(ent.spares, old)
			}
			ent.payload = payload
			ent.ex = ex
			ent.step = r.s
			cl.staleMu.Unlock()
			return ex, nil
		}
		cl.staleMu.Unlock()
	}
	if dst != nil {
		r.returnSpare(e, dst)
	}
	// Lossless fallback first: a surviving in-sync replica at exactly
	// the wanted version holds the owner's own published bytes for that
	// version, so serving it is not degradation — no staleness, and no
	// StaleFallback opt-in required. Replica entries are replaced
	// wholesale and never mutated, so the shared object is safe to
	// compute with.
	if rep := cl.replicaServe(e, want); rep != nil {
		cl.clients[m].Robust.AddReplicaServe()
		return rep, nil
	}
	if cl.cfg.StaleFallback {
		cl.staleMu.Lock()
		old := cl.stale[m][e]
		cl.staleMu.Unlock()
		if old != nil && old.ex != nil {
			cl.clients[m].Robust.AddStaleServe()
			rt.tr.deg.noteStale(r.s-old.step, r.s)
			return old.ex, nil
		}
	}
	return nil, fmt.Errorf("livecluster: machine %d pull expert %d@%d: %w", m, e, want, err)
}

// returnSpare gives an unused pull destination buffer back to the
// (machine, expert) cache entry.
func (r *stepRun) returnSpare(e int, dst []byte) {
	cl := r.rt.cl
	cl.staleMu.Lock()
	if ent := cl.stale[r.rt.m][e]; ent != nil {
		ent.spares = append(ent.spares, dst)
	}
	cl.staleMu.Unlock()
}

// runPiece computes piece idx and books its completion; in streamed
// mode the last computed piece marks the run fully enqueued (all
// delivers — and hence all push enqueues — happened before the last
// piece's completion was counted).
func (r *stepRun) runPiece(idx int) {
	rt := r.rt
	ok := r.computePiece(rt.pieces[idx], rt.pieceYs[idx])
	r.mu.Lock()
	r.computed++
	if ok {
		r.computedOK++
	}
	fin := r.computed == len(rt.pieces)
	if fin && !r.phased {
		r.enqueuedAll = true
	}
	r.mu.Unlock()
	if fin {
		r.cond.Broadcast()
	}
}

// computePiece is one (worker, microbatch) unit: for each expert with
// tokens in the range, wait for its weights, build the upstream
// gradient rows, run the fused forward/backward, and deliver the weight
// gradient into its fold slot. On the final step it also combines the
// outputs. ys is this piece's persistent output scratch.
func (r *stepRun) computePiece(p *workPiece, ys []*tensor.Matrix) bool {
	rt := r.rt
	cl := rt.cl
	dout := cl.train.douts[p.w]
	cleanup := func() {
		for i, y := range ys {
			if y != nil {
				tensor.Put(y)
				ys[i] = nil
			}
		}
	}
	for i, pe := range p.exps {
		ex, err := r.waitFetch(int(cl.needIdx[rt.m][pe.e]))
		if err != nil {
			cleanup()
			r.fail(err)
			return false
		}
		dy := tensor.Get(len(pe.toks), cl.cfg.Hidden)
		for j, t := range pe.toks {
			dy.AddScaledRow(j, dout.Row(t), pe.ws[j])
		}
		y, grad := ex.ForwardBackward(pe.x, dy)
		tensor.Put(dy)
		if r.final {
			ys[i] = y
		} else {
			tensor.Put(y)
		}
		r.deliver(pe, grad)
	}
	if r.final {
		out := r.outs[p.w-rt.m*cl.cfg.WorkersPerNode] // pieces write disjoint token rows
		for _, c := range p.comb {
			out.AddScaledRow(c.t, ys[c.expIdx].Row(c.row), c.weight)
		}
		cleanup()
	}
	return true
}

// deliver stores a piece's gradient in its fold slot; in streamed mode
// the last slot for an expert enqueues its fold-and-push immediately,
// overlapping the push with the remaining compute.
func (r *stepRun) deliver(pe *pieceExpert, g *moe.ExpertGrad) {
	rt := r.rt
	r.mu.Lock()
	r.parts[rt.slotBase[pe.pidx]+int32(pe.slot)] = g
	r.left[pe.pidx]--
	ready := r.left[pe.pidx] == 0 && !r.phased
	if ready {
		r.pushPending++
	}
	r.mu.Unlock()
	if ready {
		rt.pushCh <- task{r, pe.pidx}
	}
}

// doPush pre-reduces the machine's gradient slots for one expert in
// (worker, microbatch) order — the slice order of its dense slot range
// — and delivers the sum to the owner: locally when this machine owns
// it, otherwise over the wire with ownership re-resolution. A push that
// cannot reach the owner is a dropped contribution when StaleFallback
// degradation is on, fatal otherwise. scratch is the worker's reusable
// encode buffer.
//
// Reading parts without the run lock is safe: every deliver to this
// expert happened before the push was enqueued (mutex edges), and the
// enqueue's channel send happened before this worker's receive.
func (r *stepRun) doPush(pidx int, scratch *[]byte) {
	defer r.pushDone()
	rt := r.rt
	cl := rt.cl
	e := int(rt.pushExperts[pidx])
	base, cnt := rt.slotBase[pidx], rt.slotCount[pidx]
	acc := moe.GetExpertGrad(cl.cfg.Hidden)
	for i := base; i < base+cnt; i++ {
		if g := r.parts[i]; g != nil { // nil slots: pieces that errored out
			acc.Accumulate(g)
			moe.PutExpertGrad(g)
			r.parts[i] = nil
		}
	}
	id := transport.ExpertID{Expert: uint32(e)}
	step := uint64(r.s)
	owner := cl.ownerFor(rt.m, e)
	var payload []byte
	var err error
	for resolve := 0; resolve < 3; resolve++ {
		if owner == rt.m {
			// acc's ownership transfers to the store on success.
			if aerr := cl.stores[rt.m].addTrainGrad(id, step, rt.m, acc); aerr != nil {
				moe.PutExpertGrad(acc)
				r.fail(aerr)
			}
			return
		}
		if payload == nil {
			*scratch = encodeTrainGradInto(*scratch, step, rt.m, acc)
			payload = *scratch
		}
		err = cl.clients[rt.m].PushGradient(&rt.tr.cs.ctx, cl.addrs[owner], id, payload)
		if err == nil {
			break
		}
		// Declared after the nil check so the escaping errors.As target
		// is only allocated on the error path, never per steady push.
		var re *transport.RemoteError
		if !errors.As(err, &re) {
			break
		}
		next := cl.ownerFor(rt.m, e)
		if next == owner {
			break
		}
		owner = next
	}
	moe.PutExpertGrad(acc)
	if err != nil {
		var fe *transport.FencedEpochError
		if errors.As(err, &fe) {
			// A fenced push is the split-brain guard working: the
			// receiver refused a stale-epoch gradient. Never fatal —
			// the contribution is dropped exactly like an
			// unreachable-owner push.
			cl.noteFenced(rt.m, fe)
			rt.tr.deg.noteDropped(r.s)
			return
		}
		if cl.cfg.StaleFallback {
			rt.tr.deg.noteDropped(r.s)
			return
		}
		r.fail(fmt.Errorf("livecluster: machine %d push grad expert %d step %d: %w", rt.m, e, r.s, err))
	}
}

func (r *stepRun) pushDone() {
	r.mu.Lock()
	r.pushPending--
	done := r.pushPending == 0 && r.enqueuedAll
	r.mu.Unlock()
	if done {
		r.cond.Broadcast()
	}
}

// runStepSynced drives one machine through one barriered step: phased
// (lockstep: fetch-all, compute-all, push-all) or streamed (phases
// overlap within the step). Returns with the run drained.
func (rt *machineRuntime) runStepSynced(r *stepRun) {
	cl := rt.cl
	if r.phased {
		for i := range cl.needs[rt.m] {
			rt.fetchCh <- task{r, int32(i)}
		}
		r.waitAllFetched()
		for i := range rt.pieces {
			rt.pieceCh <- task{r, int32(i)}
		}
		r.waitComputed()
		r.mu.Lock()
		r.pushPending = len(rt.pushExperts)
		r.enqueuedAll = true
		drained := r.pushPending == 0
		r.mu.Unlock()
		if drained {
			r.cond.Broadcast()
		}
		for i := range rt.pushExperts {
			rt.pushCh <- task{r, int32(i)}
		}
	} else {
		rt.startStep(r)
		r.waitComputed()
	}
	cl.train.pipe.AddMicrobatches(int64(r.computedOKCount()))
	r.waitDrained()
}

// driverLoop is a machine's free-running driver: it waits for whole
// overlap Train calls (callCh) or single synced steps (stepCh) and
// runs them. Synced steps go through the same persistent goroutine as
// overlap calls — spawning a per-step goroutine in the synced
// scheduler was one closure + stack allocation per machine per step.
func (rt *machineRuntime) driverLoop() {
	for {
		select {
		case <-rt.quit:
			return
		case c := <-rt.callCh:
			rt.runCall(c)
			rt.tr.callWG.Done()
		case r := <-rt.stepCh:
			rt.runStepSynced(r)
			rt.tr.stepWG.Done()
		}
	}
}

// runCall executes one Train call's steps on this machine: a machine
// may compute step s+depth only after step s's gradient pushes drained.
// Merges are count-triggered on the owners, so the only cross-machine
// synchronisation left is the versioned pulls themselves.
func (rt *machineRuntime) runCall(c trainCall) {
	cl := rt.cl
	tr := rt.tr
	st := cl.train
	cfg := cl.cfg
	ring := len(rt.runs)
	started := 0
	for i := 0; i < c.steps; i++ {
		if tr.cs.ctx.Err() != nil {
			break
		}
		depth := c.depth
		if depth > 1 && cfg.SlowAfter > 0 && cl.peerSlow(rt.m) {
			// Gray failure: a peer is flagged slow, so shrink the
			// in-flight window instead of queueing more work behind it —
			// the pipeline slows but never stalls on a dead-man timeout.
			// Scheduling-only: fold points and order are unchanged, so
			// outputs stay bitwise.
			depth = 1
			st.pipe.AddDepthShrink()
		}
		if j := i - depth; j >= 0 {
			// Backpressure: block until step j's pushes drained.
			rj := rt.runs[j%ring]
			if !rj.drainedNow() {
				start := time.Now()
				rj.waitDrained()
				st.pipe.AddDepthStall(time.Since(start).Nanoseconds())
			}
		}
		r := rt.runs[i%ring]
		r.waitDrained() // ring-slot reuse guard (a no-op past the window wait)
		final := i == c.steps-1
		r.reset(c.base+i+1, final, false, c.reuseOut)
		started = i + 1
		rt.startStep(r)
		r.waitComputed()
		st.pipe.AddMicrobatches(int64(r.computedOKCount()))
		if final {
			// Disjoint indices per machine; the caller's callWG.Wait
			// orders these writes before its reads.
			for lw, out := range r.outs {
				c.outputs[rt.m*cfg.WorkersPerNode+lw] = out
			}
		}
	}
	// Drain the tail before the machine retires from this call.
	for i := max(0, started-ring); i < started; i++ {
		rt.runs[i%ring].waitDrained()
	}
}
