package livecluster

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"janus/internal/checkpoint"
	"janus/internal/faultinject"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// failoverCfg is the standard permanent-failure harness: 3 machines so
// a kill leaves a real quorum of survivors to re-home onto.
func failoverCfg(inj *faultinject.Injector, ckptDir string) Config {
	return Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 24, Seed: 42, Credits: 4,
		Injector:         inj,
		StaleFallback:    true,
		PullTimeout:      300 * time.Millisecond,
		PullRetries:      2,
		RetryBackoff:     2 * time.Millisecond,
		FailoverEnabled:  true,
		DeadManSteps:     2,
		HeartbeatTimeout: 200 * time.Millisecond,
		CheckpointDir:    ckptDir,
		CheckpointEvery:  1,
	}
}

// checkSurvivors asserts every alive machine's worker output is
// bit-identical to the expert-centric reference and dead machines'
// slots are nil.
func checkSurvivors(t *testing.T, cl *Cluster, res Result, ref []*tensor.Matrix) {
	t.Helper()
	for w, out := range res.Outputs {
		machine := w / cl.cfg.WorkersPerNode
		if !cl.isAlive(machine) {
			if out != nil {
				t.Fatalf("dead machine %d produced output", machine)
			}
			continue
		}
		if out == nil {
			t.Fatalf("alive worker %d produced no output", w)
		}
		if !tensor.Equal(out, ref[w]) {
			t.Fatalf("worker %d output differs from expert-centric reference", w)
		}
	}
}

// The headline scenario: machine 2 dies permanently at step 2. The
// cluster rides the outage on stale weights, declares the machine dead
// within the dead-man budget, re-homes its experts from the last
// checkpoint, and finishes the run at full fidelity — bit-identical to
// the uninterrupted expert-centric reference on every surviving worker.
func TestPermanentKillFailsOverFromCheckpoint(t *testing.T) {
	inj := faultinject.New(1)
	inj.Kill(MachineLabel(2), 2, 0) // dead forever from step 2
	dir := t.TempDir()
	cl, err := Start(failoverCfg(inj, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	// Step 1: healthy. Commits the checkpoint failover will restore.
	res, err := cl.RunDataCentric()
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded() || res.AliveMachines != 3 {
		t.Fatalf("healthy step: %+v", res)
	}
	if res.Robust.Checkpoints != 1 || res.Robust.CheckpointBytes <= 0 {
		t.Fatalf("step 1 checkpoint counters: %+v", res.Robust)
	}
	checkSurvivors(t, cl, res, ref)

	// Steps 2-3: machine 2 unreachable, inside the dead-man budget.
	// The cluster degrades to stale weights but keeps computing.
	sawDegraded := false
	for s := 2; s <= 3; s++ {
		res, err = cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		checkSurvivors(t, cl, res, ref)
		sawDegraded = sawDegraded || res.Degraded()
		if res.Robust.Failovers > 0 && res.AliveMachines != 2 {
			t.Fatalf("step %d: failover without membership change", s)
		}
	}
	if !sawDegraded {
		t.Fatal("no degraded step inside the dead-man window")
	}
	if cl.AliveMachines() != 2 {
		t.Fatalf("machine 2 not declared dead after the dead-man budget (alive=%d)", cl.AliveMachines())
	}

	// Ownership: every expert homed on machine 2 now lives on a
	// survivor, chosen by the seeded rendezvous hash.
	owners := cl.OwnerView()
	for e := 6; e < 9; e++ {
		want := rendezvousOwner(cl.cfg.Seed, e, []int{0, 1})
		if owners[e] != want {
			t.Fatalf("expert %d owner = %d, want rendezvous pick %d", e, owners[e], want)
		}
	}
	totals := cl.RobustnessTotals()
	if totals.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", totals.Failovers)
	}
	if totals.RehomedExperts != 3 {
		t.Fatalf("rehomed = %d, want 3", totals.RehomedExperts)
	}
	if totals.Restores != 3 {
		t.Fatalf("checkpoint restores = %d, want 3", totals.Restores)
	}

	// Post-failover steps run at full fidelity: no stale serves, no
	// dropped grads, outputs still bit-identical.
	for s := 4; s <= 6; s++ {
		res, err = cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if res.Degraded() {
			t.Fatalf("step %d still degraded after failover: %+v", s, res)
		}
		checkSurvivors(t, cl, res, ref)
	}

	// Survivors push exactly one gradient per external expert per step,
	// including to the re-homed experts' new owners.
	for m := 0; m < 2; m++ {
		cl.stores[m].mu.Lock()
		for id, n := range cl.stores[m].grads {
			if int(id.Expert) >= 6 && n == 0 {
				t.Errorf("re-homed expert %v received no gradients", id)
			}
		}
		cl.stores[m].mu.Unlock()
	}
}

// With no checkpoint configured, failover falls back to the newest
// stale replica a survivor holds — staleness accounted — and still
// completes bit-identically (weights are static in this harness).
func TestFailoverFromNewestReplicaWithoutCheckpoint(t *testing.T) {
	inj := faultinject.New(2)
	inj.Kill(MachineLabel(2), 2, 0)
	cl, err := Start(failoverCfg(inj, "")) // no checkpoint dir
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	var last Result
	for s := 1; s <= 5; s++ {
		last, err = cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		checkSurvivors(t, cl, last, ref)
		if s == 3 && last.Robust.Failovers == 1 && last.MaxStalenessSteps == 0 {
			t.Fatal("replica recovery did not account staleness")
		}
	}
	totals := cl.RobustnessTotals()
	if totals.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", totals.Failovers)
	}
	if totals.Restores != 0 {
		t.Fatalf("restores = %d, want 0 without a checkpoint", totals.Restores)
	}
	if totals.RehomedExperts == 0 {
		t.Fatal("no experts re-homed from replicas")
	}
	if totals.Checkpoints != 0 {
		t.Fatalf("checkpoints = %d with checkpointing disabled", totals.Checkpoints)
	}
}

// A machine killed for a bounded window is declared dead, fails over,
// then rejoins when its server answers again — and reclaims its home
// experts, with the interim owners dropping their copies.
func TestRejoinReclaimsHomeExperts(t *testing.T) {
	inj := faultinject.New(3)
	inj.Kill(MachineLabel(2), 2, 5) // back from step 5 on
	dir := t.TempDir()
	cl, err := Start(failoverCfg(inj, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	for s := 1; s <= 6; s++ {
		res, err := cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		checkSurvivors(t, cl, res, ref)
	}
	if cl.AliveMachines() != 3 {
		t.Fatalf("machine did not rejoin (alive=%d)", cl.AliveMachines())
	}
	owners := cl.OwnerView()
	for e := range owners {
		if owners[e] != cl.homeMachine(e) {
			t.Fatalf("expert %d owner = %d after rejoin, want home %d", e, owners[e], cl.homeMachine(e))
		}
	}
	// Interim owners no longer host the reclaimed experts.
	for e := 6; e < 9; e++ {
		id := transport.ExpertID{Expert: uint32(e)}
		for m := 0; m < 2; m++ {
			if _, ok := cl.stores[m].get(id); ok {
				t.Fatalf("machine %d still hosts reclaimed expert %d", m, e)
			}
		}
		if _, ok := cl.stores[2].get(id); !ok {
			t.Fatalf("rejoined machine does not host its home expert %d", e)
		}
	}
	totals := cl.RobustnessTotals()
	if totals.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", totals.Failovers)
	}
	// 3 experts re-homed out, then 3 reclaimed back.
	if totals.RehomedExperts != 6 {
		t.Fatalf("rehomed = %d, want 6", totals.RehomedExperts)
	}
}

// The whole failover scenario — membership transitions, ownership
// views, degradation profile, counters — replays identically from the
// seed.
func TestFailoverDeterministicReplay(t *testing.T) {
	type profile struct {
		degraded, alive  int
		stale            int64
		owners           []int
		failovers, homed int64
	}
	run := func(dir string) profile {
		inj := faultinject.New(7)
		inj.Kill(MachineLabel(2), 2, 0)
		cl, err := Start(failoverCfg(inj, dir))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var p profile
		for s := 1; s <= 5; s++ {
			res, err := cl.RunDataCentric()
			if err != nil {
				t.Fatalf("step %d: %v", s, err)
			}
			p.degraded += res.DegradedSteps
			p.stale += res.StaleFetches
		}
		p.alive = cl.AliveMachines()
		p.owners = cl.OwnerView()
		totals := cl.RobustnessTotals()
		p.failovers, p.homed = totals.Failovers, totals.RehomedExperts
		return p
	}
	p1 := run(t.TempDir())
	p2 := run(t.TempDir())
	if p1.degraded != p2.degraded || p1.stale != p2.stale ||
		p1.alive != p2.alive || p1.failovers != p2.failovers || p1.homed != p2.homed {
		t.Fatalf("failover profile not reproducible:\n%+v\n%+v", p1, p2)
	}
	for e := range p1.owners {
		if p1.owners[e] != p2.owners[e] {
			t.Fatalf("ownership view not reproducible at expert %d: %v vs %v", e, p1.owners, p2.owners)
		}
	}
}

// A corrupted newest checkpoint must not poison failover: the restore
// path rejects it and falls back to the previous committed version.
func TestFailoverSkipsCorruptCheckpoint(t *testing.T) {
	inj := faultinject.New(4)
	inj.Kill(MachineLabel(2), 2, 0)
	dir := t.TempDir()
	cl, err := Start(failoverCfg(inj, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	// Steps 1-2: two checkpoints committed (the view still includes
	// machine 2 at step 2, so both cover all nine experts).
	for s := 1; s <= 2; s++ {
		if _, err := cl.RunDataCentric(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	// Bit-flip an expert entry in the newest checkpoint (v2).
	entry := filepath.Join(dir, "v00000002", "expert-00000006.bin")
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(entry, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Load(dir, 2); err == nil {
		t.Fatal("corrupted checkpoint still loads")
	}

	// Step 3: dead-man budget exhausted → failover. The restore path
	// must reject the torn v2 and fall back to v1 — Restores==3 proves
	// the checkpoint path (not the replica path, which would leave
	// Restores at 0) recovered every expert despite the corruption.
	var last Result
	for s := 3; s <= 5; s++ {
		last, err = cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	checkSurvivors(t, cl, last, ref)
	totals := cl.RobustnessTotals()
	if totals.Failovers != 1 || totals.Restores != 3 {
		t.Fatalf("failovers=%d restores=%d, want 1 and 3 (from the older valid checkpoint)",
			totals.Failovers, totals.Restores)
	}
}

// The checkpoint on disk round-trips the dense parameters and the step
// counter alongside the expert entries.
func TestCheckpointCarriesDenseAndStep(t *testing.T) {
	dir := t.TempDir()
	cfg := failoverCfg(nil, dir)
	cfg.Injector = nil
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for s := 1; s <= 2; s++ {
		if _, err := cl.RunDataCentric(); err != nil {
			t.Fatal(err)
		}
	}
	snap, v, err := checkpoint.LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || snap.Step != 2 {
		t.Fatalf("latest checkpoint = v%d step %d, want 2", v, snap.Step)
	}
	if len(snap.Experts) != cl.cfg.NumExperts {
		t.Fatalf("checkpoint covers %d experts, want %d", len(snap.Experts), cl.cfg.NumExperts)
	}
	gate, err := decodeMatrix(snap.Dense)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(gate, cl.layer.Gate.W) {
		t.Fatal("dense entry does not round-trip the gate weights")
	}
	for e := 0; e < cl.cfg.NumExperts; e++ {
		ex, err := decodeExpert(snap.Experts[uint32(e)])
		if err != nil {
			t.Fatalf("expert %d: %v", e, err)
		}
		if !tensor.Equal(ex.W1, cl.layer.Experts[e].W1) || !tensor.Equal(ex.W2, cl.layer.Experts[e].W2) {
			t.Fatalf("expert %d weights do not round-trip", e)
		}
	}
}

// Rendezvous assignment is a pure function of (seed, expert,
// candidates): stable across calls, within range, and minimally
// disruptive — removing one machine only moves the experts it owned.
func TestRendezvousOwnerProperties(t *testing.T) {
	all := []int{0, 1, 2, 3}
	for e := 0; e < 64; e++ {
		m1 := rendezvousOwner(99, e, all)
		if m1 != rendezvousOwner(99, e, all) {
			t.Fatal("rendezvous not deterministic")
		}
		if m1 < 0 || m1 > 3 {
			t.Fatalf("owner %d out of range", m1)
		}
		// Remove a machine the expert is NOT on: assignment must hold.
		var without []int
		for _, m := range all {
			if m != (m1+1)%4 {
				without = append(without, m)
			}
		}
		if got := rendezvousOwner(99, e, without); got != m1 {
			t.Fatalf("expert %d moved (%d→%d) though its owner survived", e, m1, got)
		}
	}
	// Different seeds shuffle the assignment.
	diff := false
	for e := 0; e < 64 && !diff; e++ {
		diff = rendezvousOwner(1, e, all) != rendezvousOwner(2, e, all)
	}
	if !diff {
		t.Fatal("seed does not influence rendezvous assignment")
	}
}

// An expert count not divisible across machines is legal now: the
// balanced home split keeps every index in range and every machine
// covered (joins and migrations make counts uneven regardless).
func TestValidateAcceptsUnevenMachineSplit(t *testing.T) {
	cfg := defaultCfg()
	cfg.Machines = 3
	cfg.WorkersPerNode = 1
	cfg.NumExperts = 8 // 8 % 3 != 0: machines get 3/3/2 experts
	if err := cfg.Validate(); err != nil {
		t.Fatalf("uneven expert/machine split rejected: %v", err)
	}
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	perMachine := make([]int, cfg.Machines)
	for e := 0; e < cfg.NumExperts; e++ {
		home := cl.homeMachine(e)
		if home < 0 || home >= cfg.Machines {
			t.Fatalf("expert %d homed out of range on machine %d", e, home)
		}
		perMachine[home]++
	}
	for m, n := range perMachine {
		if n == 0 {
			t.Fatalf("machine %d homes no experts", m)
		}
	}
	if out, err := cl.RunDataCentric(); err != nil {
		t.Fatal(err)
	} else if len(out.Outputs) != cfg.Machines*cfg.WorkersPerNode {
		t.Fatalf("got %d outputs", len(out.Outputs))
	}
}
