// Elastic membership: live machine join and fenced expert migration.
//
// Join protocol: a new machine comes up empty, dials any current member
// and sends JOIN; a member with quorum answers ADMIT with its epoch and
// membership snapshot. The joiner adopts that epoch and view (excluding
// itself from the ownership recompute — it becomes a rendezvous
// candidate only once the majority observes it). The running heartbeat
// does the rest without restart: the next round, every quorum machine
// sees the newcomer answering and runs the standard rejoin transition —
// epoch bump, canonical recompute — and the round after that the joiner
// reconciles onto the new epoch. Pre-join views are fenced by the epoch
// bump exactly like a zombie ex-member's.
//
// Migration protocol (three-phase fenced handoff):
//
//	TRANSFER  the source streams the expert's weights (checkpoint wire
//	          format) to the target, which stages them without serving.
//	          Any failure here rolls back cleanly: staged bytes are
//	          inert, no view changed.
//	COMMIT    the target installs the staged weights at the transferred
//	          version. Still before the fence — views route every pull
//	          and gradient to the source, so the copy is invisible.
//	FENCE     one critical section bumps every authoritative view's
//	          epoch and flips the expert's owner, and the override pins
//	          the expert to its new home. The old owner is fenced before
//	          the new owner can accept its first gradient; a crash
//	          before this line leaves ownership exactly as it was.
//	RELEASE   the source demotes its copy to a stale replica (the
//	          freshest recovery point should the target die) and stops
//	          hosting. A crash before this leaves an un-routed copy on
//	          the source — never served, eventually overwritten.
package livecluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"janus/internal/checkpoint"
	"janus/internal/moe"
	"janus/internal/transport"
)

// numMachines is the current membership size: the configured machines
// plus every machine admitted by Join. Compute paths stay on
// cfg.Machines (joined machines host experts but run no workers, which
// is what keeps the gradient fold schedule — and therefore the final
// weights — bitwise identical to a static run).
func (cl *Cluster) numMachines() int { return len(cl.stores) }

// errMigrationAbandoned marks a test-injected driver crash mid-handoff.
var errMigrationAbandoned = errors.New("livecluster: migration abandoned")

// stagedExpert is a migrated-in expert parked between TRANSFER and
// COMMIT: decoded weights, the canonical wire encoding (so the target
// serves byte-identical payloads to what the source served), and the
// version the weights are at.
type stagedExpert struct {
	ex  *moe.Expert
	enc []byte
	ver uint64
}

// AcceptMigration implements transport.MigrationSink: it validates and
// stages a migration stream carrying exactly one expert. Staging is
// idempotent (a retried TRANSFER overwrites) and inert — nothing is
// served or merged until commitStaged.
func (s *machineStore) AcceptMigration(id transport.ExpertID, payload []byte) error {
	snap, err := checkpoint.DecodeStream(payload)
	if err != nil {
		return err
	}
	if len(snap.Experts) != 1 {
		return fmt.Errorf("livecluster: migration stream carries %d experts, want 1", len(snap.Experts))
	}
	raw, ok := snap.Experts[id.Expert]
	if !ok {
		return fmt.Errorf("livecluster: migration stream does not carry expert %v", id)
	}
	ex, err := decodeExpert(raw)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.staged == nil {
		s.staged = make(map[transport.ExpertID]*stagedExpert)
	}
	s.staged[id] = &stagedExpert{ex: ex, enc: raw, ver: uint64(snap.Step)}
	return nil
}

// commitStaged installs a staged expert at its transferred version.
// Runs strictly before the ownership fence, so no request can route
// here until the weights are in place.
func (s *machineStore) commitStaged(id transport.ExpertID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.staged[id]
	if !ok {
		return fmt.Errorf("livecluster: no staged weights for %v", id)
	}
	delete(s.staged, id)
	s.experts[id] = st.ex
	s.invalidateEncLocked(id) // next serve re-encodes into a pooled buffer
	s.sorted = nil
	if s.trainOn {
		if s.ver == nil {
			s.ver = make(map[transport.ExpertID]uint64)
			s.pending = make(map[transport.ExpertID][]*pendingMerge)
		}
		s.ver[id] = st.ver
		s.releasePendingLocked(id)
	}
	s.cond.Broadcast()
	return nil
}

// exportExpert returns the canonical encoding and current version of a
// hosted expert — the TRANSFER phase's source read. Always a fresh
// copy: migration and replication callers retain the bytes past the
// call, which the refcounted serving memo does not allow.
func (s *machineStore) exportExpert(id transport.ExpertID) ([]byte, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.experts[id]
	if !ok {
		return nil, 0, fmt.Errorf("livecluster: expert %v not hosted", id)
	}
	return encodeExpert(e), s.ver[id], nil
}

// joinGate adapts one machine's membership view to the transport
// server's JOIN handler: a machine may admit a joiner only while it is
// on the authoritative side (quorum, not fenced, not catching up).
type joinGate struct {
	cl *Cluster
	m  int
}

func (g *joinGate) AdmitJoin(sender uint32, payload []byte) (uint64, []byte, error) {
	cl := g.cl
	cl.viewMu.Lock()
	v := cl.views[g.m]
	if !v.quorum || v.frozen || v.catch {
		cl.viewMu.Unlock()
		return 0, nil, fmt.Errorf("livecluster: machine %d cannot admit joins outside the authoritative side", g.m)
	}
	members := make([]transport.MemberInfo, len(v.alive))
	for t := range v.alive {
		addr := ""
		if t < len(cl.addrs) {
			addr = cl.addrs[t]
		}
		members[t] = transport.MemberInfo{ID: uint32(t), Addr: addr, Alive: v.alive[t]}
	}
	epoch := v.epoch
	cl.viewMu.Unlock()
	admit, err := transport.EncodeAdmit(members)
	if err != nil {
		return 0, nil, err
	}
	return epoch, admit, nil
}

// Join admits one new machine into the running cluster, seeded through
// the member with the given index, and returns the new machine's index.
// The joiner comes up hosting nothing and running no workers; it starts
// heartbeating immediately and becomes a migration target once the
// majority has observed it (one heartbeat round later). Requires
// FailoverEnabled — membership is meaningless without the heartbeat.
//
// Not safe for concurrent use with a running step; call it between
// steps (the trainer's JoinAfterStep hook does exactly that).
func (cl *Cluster) Join(seed int) (int, error) {
	cfg := cl.cfg
	if !cfg.FailoverEnabled {
		return -1, errors.New("livecluster: join requires FailoverEnabled")
	}
	if seed < 0 || seed >= cl.numMachines() {
		return -1, fmt.Errorf("livecluster: join seed machine %d out of range", seed)
	}
	j := cl.numMachines()
	store := &machineStore{
		experts: make(map[transport.ExpertID]*moe.Expert),
		enc:     make(map[transport.ExpertID]*encEntry),
		grads:   make(map[transport.ExpertID]int),
		h:       cfg.Hidden,
	}
	store.cond = sync.NewCond(&store.mu)
	srv := transport.NewServer(store)
	addr, err := cl.startServer(srv, j)
	if err != nil {
		srv.Close()
		return -1, err
	}
	client := cl.newClient(j)

	// Register before the wire JOIN: the admitting member's handler
	// snapshots membership under viewMu, so the joiner must already be
	// a (not-yet-alive) row in every view when ADMIT is built.
	cl.viewMu.Lock()
	cl.stores = append(cl.stores, store)
	cl.servers = append(cl.servers, srv)
	cl.addrs = append(cl.addrs, addr)
	cl.clients = append(cl.clients, client)
	cl.stale = append(cl.stale, make(map[int]*staleEntry))
	for _, v := range cl.views {
		v.alive = append(v.alive, false)
		v.missed = append(v.missed, 0)
	}
	jv := &memberView{
		self:   j,
		alive:  make([]bool, j+1),
		missed: make([]int, j+1),
		owner:  make([]int, cfg.NumExperts),
	}
	cl.views = append(cl.views, jv)
	seedAddr := cl.addrs[seed]
	cl.viewMu.Unlock()

	info, err := client.Join(context.Background(), seedAddr, addr)
	if err != nil {
		// Roll back the registration: the cluster is exactly as it was.
		cl.viewMu.Lock()
		cl.stores = cl.stores[:j]
		cl.servers = cl.servers[:j]
		cl.addrs = cl.addrs[:j]
		cl.clients = cl.clients[:j]
		cl.stale = cl.stale[:j]
		cl.views = cl.views[:j]
		for _, v := range cl.views {
			v.alive = v.alive[:j]
			v.missed = v.missed[:j]
		}
		cl.viewMu.Unlock()
		client.Close()
		srv.Close()
		return -1, fmt.Errorf("livecluster: join via machine %d: %w", seed, err)
	}

	// Adopt the admitter's epoch and liveness, and recompute ownership
	// excluding ourselves: the joiner becomes a rendezvous candidate
	// only when the majority's rejoin transition observes it, so until
	// then its view matches the majority's bit for bit.
	cl.viewMu.Lock()
	jv.epoch = info.Epoch
	for _, mem := range info.Members {
		if int(mem.ID) < len(jv.alive) {
			jv.alive[mem.ID] = mem.Alive
		}
	}
	jv.alive[j] = true
	var aliveList []int
	for mm, a := range jv.alive {
		if a && mm != j {
			aliveList = append(aliveList, mm)
		}
	}
	for e := range jv.owner {
		jv.owner[e] = cl.canonicalOwnerLocked(e, aliveList)
	}
	jv.quorum = true
	cl.viewMu.Unlock()
	client.SetEpoch(info.Epoch)
	srv.SetJoinHandler(&joinGate{cl: cl, m: j})
	if !cfg.FencingDisabled {
		srv.SetEpochGate(&epochGate{cl: cl, m: j})
	}
	if cl.train != nil {
		// Mid-training join: arm the store so migrated-in experts merge
		// gradients under the same contributor table and version clock
		// as everyone else.
		st := cl.train
		store.enableTraining(st.expect, st.expectIdx, st.lr, st.countTrigger, &st.pipe, uint64(st.steps))
	}
	cl.robust.AddJoin()
	return j, nil
}

// abandonAt consults the test-only crash hook after a migration phase.
func (cl *Cluster) abandonAt(phase int) bool {
	return cl.migrateAbandon != nil && cl.migrateAbandon(phase)
}

// MigrateExpert moves one expert to a new owner through the fenced
// three-phase handoff documented at the top of this file. A failure (or
// injected crash) before the fence rolls back completely; after the
// fence the handoff is already in effect and only the source-side
// cleanup can be lost. Ownership never forks either way.
func (cl *Cluster) MigrateExpert(e, to int) error {
	if from := cl.currentOwner(e); from == to {
		return nil // already there
	}
	fenced, err := cl.migrateExpert(e, to)
	if err != nil {
		if fenced {
			cl.robust.AddMigration()
		} else {
			cl.robust.AddMigrationRollback()
		}
		return err
	}
	cl.robust.AddMigration()
	return nil
}

// migrateExpert runs the handoff; fenced reports whether the FENCE
// phase committed (after which the move is in effect regardless of err).
func (cl *Cluster) migrateExpert(e, to int) (fenced bool, err error) {
	cfg := cl.cfg
	if e < 0 || e >= cfg.NumExperts {
		return false, fmt.Errorf("livecluster: expert %d out of range", e)
	}
	if to < 0 || to >= cl.numMachines() {
		return false, fmt.Errorf("livecluster: migration target %d out of range", to)
	}
	from := cl.currentOwner(e)
	if !cl.isAlive(from) || !cl.isAlive(to) {
		return false, fmt.Errorf("livecluster: migration %d->%d needs both ends alive", from, to)
	}
	id := transport.ExpertID{Expert: uint32(e)}

	// TRANSFER: stream the source's current weights to the target.
	payload, ver, err := cl.stores[from].exportExpert(id)
	if err != nil {
		return false, err
	}
	stream, err := checkpoint.EncodeStream(&checkpoint.Snapshot{
		Step:    int(ver),
		Experts: map[uint32][]byte{uint32(e): payload},
	})
	if err != nil {
		return false, err
	}
	if err := cl.clients[from].Migrate(context.Background(), cl.addrs[to], id, stream); err != nil {
		return false, fmt.Errorf("livecluster: transfer expert %d to machine %d: %w", e, to, err)
	}
	if cl.abandonAt(1) {
		return false, errMigrationAbandoned
	}

	// COMMIT: install the staged weights at the transferred version —
	// before the fence, so a pull can never race an empty target.
	if err := cl.stores[to].commitStaged(id); err != nil {
		return false, err
	}
	if cl.abandonAt(2) {
		return false, errMigrationAbandoned
	}

	// FENCE: one critical section transitions every authoritative view,
	// so the old owner is fenced before the new owner can be asked for
	// its first gradient; stale-epoch traffic bounces off the wire gate.
	cl.viewMu.Lock()
	cl.overrides[e] = to
	// Atomic replica-set retarget, inside the same critical section as
	// the ownership flip: the new owner cannot back itself up, so it
	// leaves the replica set and the old owner takes the vacated slot —
	// RELEASE fills it with the copy it just streamed, and if the
	// handoff dies before RELEASE the anti-entropy sweep re-streams the
	// missing entry. Either way the set never forks.
	retargeted := false
	if set := cl.replicas[e]; len(set) > 0 {
		for i, r := range set {
			if r == to {
				set[i] = from
				retargeted = true
			}
		}
		if retargeted {
			sort.Ints(set)
		}
	}
	type bumped struct {
		m     int
		epoch uint64
	}
	var bumps []bumped
	for m, v := range cl.views {
		if v.quorum && !v.frozen && !v.catch {
			v.epoch++
			v.owner[e] = to
			bumps = append(bumps, bumped{m, v.epoch})
		}
	}
	cl.viewMu.Unlock()
	for _, b := range bumps {
		cl.clients[b.m].SetEpoch(b.epoch)
	}
	if retargeted {
		// The new owner's live copy supersedes its replica entry the
		// moment the fence commits.
		cl.stores[to].dropReplica(id)
		cl.robust.AddReplRetarget()
	}
	if cl.abandonAt(3) {
		return true, errMigrationAbandoned
	}

	// RELEASE: demote the source copy to a stale replica — the freshest
	// recovery point if the new owner dies — and stop hosting it.
	if ex, ok := cl.stores[from].get(id); ok {
		cl.staleMu.Lock()
		cl.stale[from][e] = &staleEntry{ex: ex, payload: payload, step: int(ver)}
		cl.staleMu.Unlock()
		if retargeted {
			// Fill the vacated replica slot immediately: the source's
			// copy is exactly the transferred version, so the new
			// replica starts in sync instead of waiting for a stream.
			cl.stores[from].setReplica(id, ex, payload, ver)
			cl.setReplAcked(e, from, ver)
		}
		cl.stores[from].remove(id)
	}
	return true, nil
}

// ViewConsistency verifies the elastic-membership safety invariant at
// a step boundary: no two machines on the authoritative side (quorum,
// not fenced, not catching up) that share a membership epoch disagree
// on any expert's owner. A non-nil error means ownership forked — the
// one thing the fenced handoff and the epoch bump exist to prevent.
func (cl *Cluster) ViewConsistency() error {
	cl.viewMu.Lock()
	defer cl.viewMu.Unlock()
	auth := func(v *memberView) bool { return v.quorum && !v.frozen && !v.catch }
	for i, vi := range cl.views {
		if !auth(vi) {
			continue
		}
		for j := i + 1; j < len(cl.views); j++ {
			vj := cl.views[j]
			if !auth(vj) || vi.epoch != vj.epoch {
				continue
			}
			for e := range vi.owner {
				if vi.owner[e] != vj.owner[e] {
					return fmt.Errorf("livecluster: ownership fork at epoch %d: machines %d and %d disagree on expert %d (%d vs %d)",
						vi.epoch, i, j, e, vi.owner[e], vj.owner[e])
				}
			}
		}
	}
	// Replica invariants: a replica set never contains its expert's
	// owner (the failure domain would silently collapse), a replica's
	// version never leads the owner's (a replica cannot hold merges the
	// owner has not published), and every recorded promotion happened
	// inside a fenced epoch no newer than the authoritative view's.
	rep := cl.repViewLocked()
	for e, set := range cl.replicas {
		o := rep.owner[e]
		for _, r := range set {
			if r == o {
				return fmt.Errorf("livecluster: expert %d replica set %v contains owner %d", e, set, o)
			}
		}
		if o < 0 || o >= len(cl.stores) || o >= len(rep.alive) || !rep.alive[o] {
			continue // an ownerless expert has no version to lag behind
		}
		id := transport.ExpertID{Expert: uint32(e)}
		over := cl.stores[o].versionOf(id)
		for _, r := range set {
			if r < 0 || r >= len(cl.stores) {
				return fmt.Errorf("livecluster: expert %d replica set %v references unknown machine %d", e, set, r)
			}
			if ent, ok := cl.stores[r].replicaAt(id); ok && ent.ver > over {
				return fmt.Errorf("livecluster: expert %d replica on machine %d at version %d leads owner %d at %d",
					e, r, ent.ver, o, over)
			}
		}
	}
	for _, p := range cl.promotions {
		if p.epoch == 0 || p.epoch > rep.epoch {
			return fmt.Errorf("livecluster: promotion of expert %d to machine %d outside the fenced epoch (%d vs view %d)",
				p.expert, p.machine, p.epoch, rep.epoch)
		}
	}
	return nil
}

// recordExpertLoad folds one executed step's routing counts into the
// popularity signal: every token a running machine's workers routed to
// an expert counts toward that expert.
func (cl *Cluster) recordExpertLoad() {
	// Routing is static, so each machine's per-expert totals are
	// precomputed at Start (cl.loadTotals) — the per-step work is one
	// add per (running machine, routed expert).
	for m := 0; m < cl.cfg.Machines; m++ {
		if !cl.machineRuns(m) {
			continue
		}
		for _, lc := range cl.loadTotals[m] {
			cl.load.AddRouted(int(lc.e), lc.n)
		}
	}
}

// ExpertLoadCounts returns the cumulative routed-token count per expert.
func (cl *Cluster) ExpertLoadCounts() []int64 { return cl.load.Counts() }

// Move is one planned expert handoff.
type Move struct {
	Expert, From, To int
}

// PlanRebalance plans up to maxMoves migrations greedily: repeatedly
// take the hottest expert off the most-loaded alive machine and hand it
// to the least-loaded one, as long as the move strictly shrinks the
// gap. Entirely deterministic — ties break toward the lowest machine
// and expert index — so seeded runs replay identical schedules.
func (cl *Cluster) PlanRebalance(maxMoves int) []Move {
	counts := cl.load.Counts()
	cl.viewMu.Lock()
	rep := cl.repViewLocked()
	owner := append([]int(nil), rep.owner...)
	alive := append([]bool(nil), rep.alive...)
	reps := make(map[int][]int, len(cl.replicas))
	for e, set := range cl.replicas {
		reps[e] = append([]int(nil), set...)
	}
	cl.viewMu.Unlock()

	load := make([]int64, len(alive))
	owned := make([][]int, len(alive))
	for e, o := range owner {
		if o >= 0 && o < len(alive) && alive[o] {
			load[o] += counts[e]
			owned[o] = append(owned[o], e)
		}
	}
	var moves []Move
	for len(moves) < maxMoves {
		hi, lo := -1, -1
		for m := range alive {
			if !alive[m] {
				continue
			}
			if hi == -1 || load[m] > load[hi] {
				hi = m
			}
			if lo == -1 || load[m] < load[lo] {
				lo = m
			}
		}
		if hi == -1 || hi == lo {
			break
		}
		best, bestAt, bestW := -1, -1, int64(-1)
		for i, e := range owned[hi] {
			// Never migrate an expert onto a machine holding its replica:
			// owner and backup on one machine silently collapses the
			// failure domain replication paid for.
			holdsReplica := false
			for _, r := range reps[e] {
				if r == lo {
					holdsReplica = true
					break
				}
			}
			if holdsReplica {
				continue
			}
			if w := counts[e]; w > bestW && load[lo]+w < load[hi] {
				best, bestAt, bestW = e, i, w
			}
		}
		if best == -1 {
			break
		}
		moves = append(moves, Move{Expert: best, From: hi, To: lo})
		load[hi] -= bestW
		load[lo] += bestW
		owned[hi] = append(owned[hi][:bestAt], owned[hi][bestAt+1:]...)
		owned[lo] = append(owned[lo], best)
	}
	return moves
}

// Rebalance plans and executes up to maxMoves popularity-weighted
// migrations, returning how many completed. A failed handoff rolls back
// and does not stop the rest.
func (cl *Cluster) Rebalance(maxMoves int) (int, error) {
	done := 0
	var firstErr error
	for _, mv := range cl.PlanRebalance(maxMoves) {
		if err := cl.MigrateExpert(mv.Expert, mv.To); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		done++
	}
	return done, firstErr
}
