package livecluster

import (
	"runtime/debug"
	"testing"
)

// allocsRetry measures fn's steady-state allocations, retrying while
// nonzero: AllocsPerRun counts process-global mallocs, so a stray
// allocation from another test's winding-down goroutine can pollute
// one measurement. A real per-op leak (>= 1 alloc every run) fails
// every attempt deterministically.
func allocsRetry(runs int, fn func()) float64 {
	var n float64
	for attempt := 0; attempt < 3; attempt++ {
		n = testing.AllocsPerRun(runs, fn)
		if n == 0 {
			return 0
		}
	}
	return n
}

// TestTrainSteadyStateZeroAlloc is the tentpole's regression gate: one
// full pipelined Train call on a warmed cluster — version pulls,
// routing/gather, fused forward/backward, JGR1 pushes, merges, SGD
// applies, across all 8 machines' clients, servers, and stores — must
// perform zero heap allocations. Every buffer the iteration touches
// comes from a pool or a slot on the persistent train runtime; this
// test pins that property bitwise-visibly (allocation count, not
// bytes, so a single escaped local fails it).
//
// GC is disabled for the measurement window because sync.Pool empties
// its victim caches on every cycle — a GC mid-run would force pool
// refills that are amortized noise in benchmarks but spurious failures
// in an exact gate.
func TestTrainSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	cl, err := Start(trainBenchCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	opts := TrainOptions{Steps: benchTrainSteps, Microbatches: 2, Pipelined: true, ReuseOutputs: true}
	train := func() {
		if _, err := cl.Train(opts); err != nil {
			t.Fatal(err)
		}
	}
	train() // warm plan, runtime, connections
	train() // fill every recycled-buffer pool
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := allocsRetry(5, train); n != 0 {
		t.Fatalf("pipelined Train: %v allocs/op in steady state, want 0", n)
	}
}

// TestTrainLockstepSteadyStateZeroAlloc gates the barriered schedule
// on the same runtime: the two schedules share slots and pools, so
// both must hold the invariant.
func TestTrainLockstepSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	cl, err := Start(trainBenchCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	opts := TrainOptions{Steps: benchTrainSteps, Microbatches: 2, Pipelined: false, ReuseOutputs: true}
	train := func() {
		if _, err := cl.Train(opts); err != nil {
			t.Fatal(err)
		}
	}
	train()
	train()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := allocsRetry(5, train); n != 0 {
		t.Fatalf("lockstep Train: %v allocs/op in steady state, want 0", n)
	}
}
