package livecluster

import (
	"testing"
	"time"

	"janus/internal/faultinject"
)

// BenchmarkIteration measures one steady-state data-centric iteration
// of a small live cluster: real TCP pulls, forward compute, and
// gradient pushes. The ISSUE 3 fast path (static routing index, pooled
// scratch, memoized expert encodings, overlapped prefetch and pushes)
// is what this guards.
func BenchmarkIteration(b *testing.B) {
	benchIteration(b, nil)
}

// BenchmarkIterationRTT is the same workload with 100µs injected on
// every socket read and write (~0.4ms per round trip), approximating a
// datacenter network instead of kernel loopback. This is the regime
// the overlap optimizations target: with real latency, sequential
// pulls and pushes stack round trips that the prefetch wave and the
// parallel gradient pushes hide.
func BenchmarkIterationRTT(b *testing.B) {
	inj := faultinject.New(7)
	inj.AddRule(faultinject.Rule{Fault: faultinject.Fault{Delay: 100 * time.Microsecond}})
	benchIteration(b, inj)
}

func benchIteration(b *testing.B, inj *faultinject.Injector) {
	cl, err := Start(Config{
		Machines:        8,
		WorkersPerNode:  1,
		NumExperts:      32,
		TopK:            2,
		Hidden:          32,
		TokensPerWorker: 8,
		Seed:            42,
		Credits:         16,
		Injector:        inj,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err != nil { // warm caches and connections
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.RunDataCentric(); err != nil {
			b.Fatal(err)
		}
	}
}
