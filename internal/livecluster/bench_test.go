package livecluster

import (
	"testing"
	"time"

	"janus/internal/faultinject"
)

// BenchmarkIteration measures one steady-state data-centric iteration
// of a small live cluster: real TCP pulls, forward compute, and
// gradient pushes. The ISSUE 3 fast path (static routing index, pooled
// scratch, memoized expert encodings, overlapped prefetch and pushes)
// is what this guards.
func BenchmarkIteration(b *testing.B) {
	benchIteration(b, nil)
}

// BenchmarkIterationRTT is the same workload with 100µs injected on
// every socket read and write (~0.4ms per round trip), approximating a
// datacenter network instead of kernel loopback. This is the regime
// the overlap optimizations target: with real latency, sequential
// pulls and pushes stack round trips that the prefetch wave and the
// parallel gradient pushes hide.
func BenchmarkIterationRTT(b *testing.B) {
	inj := faultinject.New(7)
	inj.AddRule(faultinject.Rule{Fault: faultinject.Fault{Delay: 100 * time.Microsecond}})
	benchIteration(b, inj)
}

func benchIteration(b *testing.B, inj *faultinject.Injector) {
	cl, err := Start(benchCfg(inj))
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err != nil { // warm caches and connections
		b.Fatal(err)
	}
	if _, err := cl.RunDataCentric(); err != nil { // second pass fills every recycled-buffer pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.RunDataCentric(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCfg(inj *faultinject.Injector) Config {
	return Config{
		Machines:        8,
		WorkersPerNode:  1,
		NumExperts:      32,
		TopK:            2,
		Hidden:          32,
		TokensPerWorker: 8,
		Seed:            42,
		Credits:         16,
		Injector:        inj,
	}
}

// benchTrainSteps is the per-op step count of the training benchmarks:
// long enough for the pipeline to fill (> depth) and drain.
const benchTrainSteps = 8

// trainBenchCfg is the training-benchmark cluster: same topology as the
// iteration benchmarks but a lighter per-step batch, so the workload is
// dominated by the pulls and pushes the pipeline exists to hide rather
// than by single-core matmul time (the box runs GOMAXPROCS=1 — compute
// cannot overlap compute, only waiting).
func trainBenchCfg(inj *faultinject.Injector) Config {
	cfg := benchCfg(inj)
	cfg.TokensPerWorker = 2
	cfg.Hidden = 16
	return cfg
}

// BenchmarkTrainLockstep measures the barriered reference trainer on
// kernel loopback: per step it fetches every expert, computes every
// microbatch, pushes every gradient, then merges at a global barrier.
func BenchmarkTrainLockstep(b *testing.B) {
	benchTrain(b, nil, false)
}

// BenchmarkTrainPipelined is the same training workload with microbatch
// streaming and cross-step overlap (depth 2).
func BenchmarkTrainPipelined(b *testing.B) {
	benchTrain(b, nil, true)
}

// BenchmarkTrainLockstepRTT adds 100µs per socket read/write — the
// regime where the lockstep schedule stacks round trips serially.
func BenchmarkTrainLockstepRTT(b *testing.B) {
	benchTrain(b, delayInjector(), false)
}

// BenchmarkTrainPipelinedRTT is the headline comparison: with real
// latency the pipelined schedule hides pulls and pushes behind compute
// and behind each other across steps.
func BenchmarkTrainPipelinedRTT(b *testing.B) {
	benchTrain(b, delayInjector(), true)
}

func delayInjector() *faultinject.Injector {
	inj := faultinject.New(7)
	inj.AddRule(faultinject.Rule{Fault: faultinject.Fault{Delay: 100 * time.Microsecond}})
	return inj
}

// BenchmarkTrainPipelined32 is the live-cluster scale point: 32 real
// machines (each a TCP server + client + store) training pipelined on
// loopback — the largest size the CI smoke tier tolerates. Together
// with the fabric A2AScale/AdmissionScale series (256 and 1024
// machines in simulation) it anchors the scaling curve in
// BENCH_5.json.
func BenchmarkTrainPipelined32(b *testing.B) {
	cfg := trainBenchCfg(nil)
	cfg.Machines = 32
	cfg.NumExperts = 64
	benchTrainCfg(b, cfg, true)
}

func benchTrain(b *testing.B, inj *faultinject.Injector, pipelined bool) {
	benchTrainCfg(b, trainBenchCfg(inj), pipelined)
}

func benchTrainCfg(b *testing.B, cfg Config, pipelined bool) {
	cl, err := Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	opts := TrainOptions{Steps: benchTrainSteps, Microbatches: 2, Pipelined: pipelined, ReuseOutputs: true}
	if _, err := cl.Train(opts); err != nil { // warm plan, caches, connections
		b.Fatal(err)
	}
	if _, err := cl.Train(opts); err != nil { // second pass fills every recycled-buffer pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ReportMetric(float64(cfg.Machines), "machines")
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Train(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N*benchTrainSteps)/el, "steps/sec")
	}
}
