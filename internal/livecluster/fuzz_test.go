package livecluster

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"janus/internal/moe"
)

// FuzzDecodeTrainGrad throws arbitrary payloads at the JGR1 gradient
// decoder: it must never panic regardless of length or content, must
// reject everything whose length does not match the hidden size
// exactly, and must round-trip every payload it accepts.
func FuzzDecodeTrainGrad(f *testing.F) {
	const h = 2
	mk := func(step uint64, source int, fill float32) []byte {
		g := moe.NewExpertGrad(h)
		for i := range g.DW1.Data {
			g.DW1.Data[i] = fill + float32(i)
		}
		for i := range g.DW2.Data {
			g.DW2.Data[i] = -fill - float32(i)
		}
		return encodeTrainGrad(step, source, g)
	}
	// Valid corpus, plus the PR 1 corruption shapes: truncation, a
	// flipped magic, a flipped float byte (decodes fine — content is
	// opaque), an oversized tail, and the legacy 8-byte synthetic grad.
	valid := mk(3, 1, 0.5)
	f.Add(valid)
	f.Add(mk(0, 0, 0))
	f.Add(mk(^uint64(0), 255, float32(math.Inf(1))))
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:trainGradHeaderBytes])
	flippedMagic := append([]byte{}, valid...)
	flippedMagic[0] ^= 0xFF
	f.Add(flippedMagic)
	flippedFloat := append([]byte{}, valid...)
	flippedFloat[trainGradHeaderBytes] ^= 0x80
	f.Add(flippedFloat)
	f.Add(append(append([]byte{}, valid...), 0xEE))
	f.Add(binary.LittleEndian.AppendUint64(nil, 7))
	f.Add([]byte{})

	want := trainGradHeaderBytes + 4*(2*h*4*h)
	f.Fuzz(func(t *testing.T, payload []byte) {
		step, source, g, err := decodeTrainGrad(payload, h)
		if err != nil {
			if len(payload) == want && isTrainGrad(payload) {
				t.Fatalf("well-formed payload rejected: %v", err)
			}
			return
		}
		if len(payload) != want {
			t.Fatalf("accepted %d-byte payload, decoder requires exactly %d", len(payload), want)
		}
		if len(g.DW1.Data) != h*4*h || len(g.DW2.Data) != h*4*h {
			t.Fatalf("decoded gradient has wrong shape: %d/%d", len(g.DW1.Data), len(g.DW2.Data))
		}
		// Round-trip: bit patterns survive, even NaN payloads (compare
		// bytes, not floats).
		if reenc := encodeTrainGrad(step, source, g); !bytes.Equal(reenc, payload) {
			t.Fatal("decode/encode round trip changed the payload bytes")
		}
	})
}

// The magic sniffer must never confuse the legacy 8-byte synthetic
// gradient with a JGR1 frame, and must accept every encoded one.
func TestIsTrainGradSniffsFormats(t *testing.T) {
	g := moe.NewExpertGrad(2)
	if !isTrainGrad(encodeTrainGrad(1, 0, g)) {
		t.Fatal("encoded training gradient not recognised")
	}
	legacy := make([]byte, 8)
	binary.LittleEndian.PutUint64(legacy, 5)
	if isTrainGrad(legacy) {
		t.Fatal("legacy synthetic gradient misread as training format")
	}
	if isTrainGrad(nil) {
		t.Fatal("nil payload misread as training format")
	}
}
