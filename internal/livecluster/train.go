// Training-side state of the live cluster: versioned expert weights,
// deterministic gradient merging, and the static microbatch plan the
// pipelined trainer streams through.
//
// Bit-identity discipline (the contract the differential tests pin):
// an expert's weights advance through integer versions, version s being
// the weights after the step-s merge. A merge folds the per-machine
// pre-reduced gradients in ascending source-machine order, and each
// machine pre-reduces its partial gradients in ascending (worker,
// microbatch) order — both orders are fixed by the static plan, never
// by arrival timing. Forward outputs are microbatch-invariant bitwise
// (every kernel is per-output-row), but gradient sums are not float-
// reassociation-free, so lockstep and pipelined runs must use the same
// microbatch count to compare bitwise — they then do, by construction,
// because timing can only reorder work between the fixed fold points.
//
// Allocation discipline (the contract the zero-alloc gates pin): the
// steady-state merge path allocates nothing. Wire gradients decode into
// pooled ExpertGrads, contributions collect in reusable dense
// pendingMerge slots (indexed by the shared expect table), the merge
// accumulator is pooled, and the published encodings live in a
// per-store refcounted buffer freelist (see livecluster.go).
package livecluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"janus/internal/metrics"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// trainGradMagic prefixes training gradient payloads on the wire,
// distinguishing them from the legacy 8-byte synthetic gradients.
const trainGradMagic = 0x4A475231 // "JGR1"

// trainGradHeaderBytes is magic + step (u64) + source machine (u32).
const trainGradHeaderBytes = 4 + 8 + 4

// encodeTrainGradInto serialises one pre-reduced gradient contribution
// into buf (grown only when too small): header, then DW1 and DW2 as
// little-endian float32 bit patterns, so a decode reproduces the exact
// bits that were folded on the sender. Returns the filled slice.
func encodeTrainGradInto(buf []byte, step uint64, source int, g *moe.ExpertGrad) []byte {
	n1, n2 := len(g.DW1.Data), len(g.DW2.Data)
	need := trainGradHeaderBytes + 4*(n1+n2)
	if cap(buf) < need {
		buf = make([]byte, need)
	}
	buf = buf[:need]
	binary.BigEndian.PutUint32(buf[0:4], trainGradMagic)
	binary.BigEndian.PutUint64(buf[4:12], step)
	binary.BigEndian.PutUint32(buf[12:16], uint32(source))
	off := trainGradHeaderBytes
	for _, v := range g.DW1.Data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	for _, v := range g.DW2.Data {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

// encodeTrainGrad is the allocating variant (cold paths and tests).
func encodeTrainGrad(step uint64, source int, g *moe.ExpertGrad) []byte {
	return encodeTrainGradInto(nil, step, source, g)
}

// isTrainGrad reports whether a gradient payload carries the training
// format (the legacy synthetic payload is 8 bytes, shorter than the
// training header, so the check cannot misfire).
func isTrainGrad(payload []byte) bool {
	return len(payload) >= trainGradHeaderBytes &&
		binary.BigEndian.Uint32(payload[0:4]) == trainGradMagic
}

// parseTrainGradHeader validates a training gradient payload for hidden
// size h and returns its header fields without decoding the floats.
func parseTrainGradHeader(payload []byte, h int) (step uint64, source int, err error) {
	if !isTrainGrad(payload) {
		return 0, 0, fmt.Errorf("livecluster: bad training gradient magic")
	}
	n1 := h * 4 * h
	n2 := n1
	if len(payload) != trainGradHeaderBytes+4*(n1+n2) {
		return 0, 0, fmt.Errorf("livecluster: training gradient %d bytes, want %d",
			len(payload), trainGradHeaderBytes+4*(n1+n2))
	}
	return binary.BigEndian.Uint64(payload[4:12]), int(binary.BigEndian.Uint32(payload[12:16])), nil
}

// decodeTrainGradInto fills g (already the right shape) with the float
// payload of a validated training gradient. Every element is
// overwritten, so g may come from GetExpertGradUninit.
func decodeTrainGradInto(g *moe.ExpertGrad, payload []byte) {
	off := trainGradHeaderBytes
	for i := range g.DW1.Data {
		g.DW1.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	for i := range g.DW2.Data {
		g.DW2.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
}

// decodeTrainGrad parses a training gradient payload for hidden size h,
// copying the floats out (the transport recycles the payload buffer
// after the store call returns). Allocating variant for cold paths and
// the fuzz round-trip; the hot wire path decodes into a pooled grad.
func decodeTrainGrad(payload []byte, h int) (step uint64, source int, g *moe.ExpertGrad, err error) {
	step, source, err = parseTrainGradHeader(payload, h)
	if err != nil {
		return 0, 0, nil, err
	}
	g = moe.NewExpertGrad(h)
	decodeTrainGradInto(g, payload)
	return step, source, g, nil
}

// pendingMerge collects the contributions for one (expert, step) merge
// in a dense slice indexed by the expert's expect-table position, so the
// fold order is the slice order and the buffer is reusable step after
// step. Inactive entries stay on the expert's list for reuse.
type pendingMerge struct {
	step   uint64
	got    []*moe.ExpertGrad // dense by expect index; pooled, store-owned
	n      int               // contributions present
	active bool
}

// enableTraining switches the store into versioned-training mode.
// expect is the shared contributor table (expert index → ascending
// machines that route tokens to it — ownership-independent, so it
// survives failover re-homes) and expectIdx its dense inverse (expert →
// machine → position in expect, -1 when absent); startVer seeds every
// hosted expert's version on first enable (later calls keep the
// versions already reached). countTrigger selects the merge trigger:
// true applies a step's merge the moment every expected contribution
// arrived (the free-running overlap mode), false leaves merging to
// flushTo at the step barrier (lockstep and step-synced modes).
func (s *machineStore) enableTraining(expect [][]int, expectIdx [][]int32, lr float32, countTrigger bool, pipe *metrics.Pipeline, startVer uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trainOn = true
	s.aborted = false
	s.countTrigger = countTrigger
	s.lr = lr
	s.expect = expect
	s.expectIdx = expectIdx
	s.pipe = pipe
	if s.ver == nil {
		s.ver = make(map[transport.ExpertID]uint64, len(s.experts))
		s.pending = make(map[transport.ExpertID][]*pendingMerge)
		for id := range s.experts {
			s.ver[id] = startVer
		}
	}
	s.cond.Broadcast()
}

// abortTraining permanently unblocks every version waiter with an
// error; the next enableTraining call re-arms the store.
func (s *machineStore) abortTraining() {
	s.mu.Lock()
	s.aborted = true
	if s.cond != nil {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// detachExperts replaces every hosted expert with a deep copy, so SGD
// updates never write through to the seed layer the expert-centric
// reference computes from.
func (s *machineStore) detachExperts() {
	s.mu.Lock()
	for id, e := range s.experts {
		s.experts[id] = e.Clone()
	}
	s.mu.Unlock()
}

var errTrainAborted = errors.New("livecluster: training aborted")

// ExpertBytesAt implements transport.VersionedStore: it serves the
// expert's encoded weights at exactly the requested version, parking
// the caller until the owner's merge publishes it. The park is the
// pipeline's backpressure — a puller one step ahead waits here, inside
// its own server handler goroutine, instead of receiving torn weights.
// The returned buffer is refcounted; the transport releases it after
// the copy to the wire (see ReleaseExpertBytes).
func (s *machineStore) ExpertBytesAt(id transport.ExpertID, version uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var waitStart time.Time
	for {
		if s.aborted || !s.trainOn {
			return nil, errTrainAborted
		}
		e, ok := s.experts[id]
		if !ok {
			// Surfaces as a RemoteError so the puller re-resolves
			// ownership (the expert may have been re-homed).
			return nil, fmt.Errorf("livecluster: expert %v not hosted", id)
		}
		switch v := s.ver[id]; {
		case v == version:
			if !waitStart.IsZero() {
				s.pipe.AddVersionWait(time.Since(waitStart).Nanoseconds())
			}
			return s.encRefLocked(id, e), nil
		case v > version:
			// The pull⟺contribute invariant makes this unreachable in a
			// correct run: a version can only pass `version` after the
			// puller's own contribution for version+1 arrived, which it
			// sends only after this pull returns.
			return nil, fmt.Errorf("livecluster: expert %v version %d superseded by %d", id, version, v)
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		s.cond.Wait()
	}
}

// waitLocalAt is the owner-local analogue of ExpertBytesAt: it blocks
// until the expert reaches the version, then returns the live object.
// Safe to compute with without a copy: the next merge that would mutate
// it cannot apply until this machine's own contribution for that merge
// is delivered, which happens only after the compute using this object
// finished.
func (s *machineStore) waitLocalAt(id transport.ExpertID, version uint64) (*moe.Expert, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var waitStart time.Time
	for {
		if s.aborted || !s.trainOn {
			return nil, errTrainAborted
		}
		e, ok := s.experts[id]
		if !ok {
			return nil, fmt.Errorf("livecluster: expert %v not hosted", id)
		}
		switch v := s.ver[id]; {
		case v == version:
			if !waitStart.IsZero() {
				s.pipe.AddVersionWait(time.Since(waitStart).Nanoseconds())
			}
			return e, nil
		case v > version:
			return nil, fmt.Errorf("livecluster: expert %v version %d superseded by %d", id, version, v)
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		s.cond.Wait()
	}
}

// claimPendingLocked returns the active pendingMerge for (id, step),
// reviving an inactive buffer from the expert's list (or appending one)
// when none is. want is the expert's expected contributor count.
func (s *machineStore) claimPendingLocked(id transport.ExpertID, step uint64, want int) *pendingMerge {
	var free *pendingMerge
	for _, pm := range s.pending[id] {
		if pm.active && pm.step == step {
			return pm
		}
		if !pm.active && free == nil {
			free = pm
		}
	}
	if free == nil {
		free = &pendingMerge{}
		s.pending[id] = append(s.pending[id], free)
	}
	free.step = step
	free.active = true
	free.n = 0
	if cap(free.got) < want {
		free.got = make([]*moe.ExpertGrad, want)
	} else {
		free.got = free.got[:want]
		for i := range free.got {
			free.got[i] = nil
		}
	}
	return free
}

// findPendingLocked returns the active merge buffer for (id, step), or
// nil when no contribution for that step has arrived.
func (s *machineStore) findPendingLocked(id transport.ExpertID, step uint64) *pendingMerge {
	for _, pm := range s.pending[id] {
		if pm.active && pm.step == step {
			return pm
		}
	}
	return nil
}

// releasePendingLocked drops every buffered contribution for id,
// returning the pooled gradients — the install/remove/re-home path.
func (s *machineStore) releasePendingLocked(id transport.ExpertID) {
	for _, pm := range s.pending[id] {
		if !pm.active {
			continue
		}
		for i, g := range pm.got {
			if g != nil {
				moe.PutExpertGrad(g)
				pm.got[i] = nil
			}
		}
		pm.n = 0
		pm.active = false
	}
}

// addTrainGrad records one machine's pre-reduced contribution for
// (expert, step). On success the store owns g (it is recycled by the
// merge); on error the caller keeps ownership. In count-trigger mode it
// applies the merge chain as soon as a step's expected set completes.
func (s *machineStore) addTrainGrad(id transport.ExpertID, step uint64, source int, g *moe.ExpertGrad) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.trainOn || s.aborted {
		return errTrainAborted
	}
	if _, ok := s.experts[id]; !ok {
		return fmt.Errorf("livecluster: expert %v not hosted", id)
	}
	if step <= s.ver[id] {
		return fmt.Errorf("livecluster: gradient for step %d but expert %v already at version %d", step, id, s.ver[id])
	}
	e := int(id.Expert)
	if e >= len(s.expectIdx) {
		return fmt.Errorf("livecluster: gradient for unknown expert %v", id)
	}
	row := s.expectIdx[e]
	if source < 0 || source >= len(row) || row[source] < 0 {
		// A contributor outside the static expect set (a corrupted or
		// forged source field) can never complete a merge — reject it
		// instead of burying it in a buffer that would skew the count
		// trigger.
		return fmt.Errorf("livecluster: machine %d is not an expected contributor for expert %v", source, id)
	}
	di := row[source]
	pm := s.claimPendingLocked(id, step, len(s.expect[e]))
	if pm.got[di] != nil {
		return fmt.Errorf("livecluster: duplicate gradient from machine %d for %v step %d", source, id, step)
	}
	pm.got[di] = g
	pm.n++
	if s.countTrigger {
		s.advanceLocked(id)
	}
	return nil
}

// addTrainGradWire decodes a wire-format training gradient into a
// pooled buffer and records it. The payload is only valid during the
// call (transport contract), so the floats are copied out here.
func (s *machineStore) addTrainGradWire(id transport.ExpertID, payload []byte) error {
	step, source, err := parseTrainGradHeader(payload, s.h)
	if err != nil {
		return err
	}
	g := moe.GetExpertGradUninit(s.h)
	decodeTrainGradInto(g, payload)
	if err := s.addTrainGrad(id, step, source, g); err != nil {
		moe.PutExpertGrad(g)
		return err
	}
	return nil
}

// advanceLocked applies complete pending merges in step order: version
// v+1 applies once every machine in the expert's expected contributor
// set has delivered its step-(v+1) gradient.
func (s *machineStore) advanceLocked(id transport.ExpertID) {
	e := int(id.Expert)
	for {
		next := s.ver[id] + 1
		pm := s.findPendingLocked(id, next)
		if pm == nil || pm.n < len(s.expect[e]) {
			return
		}
		s.applyMergeLocked(id, pm, true)
	}
}

// applyMergeLocked folds one step's contributions in ascending source-
// machine order (the dense buffer's slice order — the deterministic
// merge), applies SGD, and publishes the next version. A nil or empty
// buffer (contributions lost to faults or a dead sender) publishes the
// version with unchanged weights — the trainer's analogue of a skipped
// micro-update, and what keeps parked pullers from deadlocking on a
// step whose gradients died with a machine.
func (s *machineStore) applyMergeLocked(id transport.ExpertID, pm *pendingMerge, countTriggered bool) {
	next := s.ver[id] + 1
	if pm != nil && pm.n > 0 {
		acc := moe.GetExpertGrad(s.h)
		for i, g := range pm.got {
			if g != nil {
				acc.Accumulate(g)
				moe.PutExpertGrad(g)
				pm.got[i] = nil
			}
		}
		s.experts[id].ApplySGD(acc, s.lr)
		moe.PutExpertGrad(acc)
		s.invalidateEncLocked(id)
	}
	if pm != nil {
		pm.n = 0
		pm.active = false
	}
	s.ver[id] = next
	if countTriggered {
		s.pipe.AddMerge()
	} else {
		s.pipe.AddFlush()
	}
	s.cond.Broadcast()
}

// flushTo advances every hosted expert to the target version at a step
// barrier, folding whatever contributions arrived (ascending expert
// order for a deterministic iteration). This is the lockstep merge and
// the step-synced pipeline's merge; under count-trigger mode it is a
// no-op for experts that already advanced.
func (s *machineStore) flushTo(target uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.trainOn || s.aborted {
		return
	}
	for _, id := range s.sortedLocked() {
		for s.ver[id] < target {
			s.applyMergeLocked(id, s.findPendingLocked(id, s.ver[id]+1), false)
		}
	}
}

// sortedLocked returns the hosted expert ids in ascending order,
// rebuilt only when hosting changed (install/remove/commit invalidate
// it) so the per-step flush does not re-sort an unchanged set.
func (s *machineStore) sortedLocked() []transport.ExpertID {
	if s.sorted == nil {
		s.sorted = make([]transport.ExpertID, 0, len(s.experts))
		for id := range s.experts {
			s.sorted = append(s.sorted, id)
		}
		sort.Slice(s.sorted, func(i, j int) bool {
			if s.sorted[i].Block != s.sorted[j].Block {
				return s.sorted[i].Block < s.sorted[j].Block
			}
			return s.sorted[i].Expert < s.sorted[j].Expert
		})
	}
	return s.sorted
}

// installAt is install plus version bookkeeping: the failover re-home
// path during training publishes the restored (possibly stale) weights
// at the current step's expected version so parked pullers proceed
// deterministically.
func (s *machineStore) installAt(id transport.ExpertID, e *moe.Expert, ver uint64) {
	s.mu.Lock()
	s.experts[id] = e
	s.invalidateEncLocked(id)
	s.sorted = nil
	if s.trainOn {
		s.ver[id] = ver
		s.releasePendingLocked(id)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// trainState is the cluster's cross-call training bookkeeping.
type trainState struct {
	steps    int // training steps completed (the version clock)
	detached bool
	douts    []*tensor.Matrix // per worker: deterministic upstream gradient
	expect   [][]int          // expert -> ascending contributor machines
	// expectIdx is expect's dense inverse: expert -> machine -> position
	// in expect[e], -1 when the machine is not a contributor. Shared by
	// every store so the wire-gradient fast path is an array lookup.
	expectIdx [][]int32
	plan      *microPlan
	pipe      metrics.Pipeline

	// rt is the persistent execution runtime (worker pools, step-run
	// rings, scratch) the per-step drivers schedule onto; rebuilt only
	// when the plan shape or depth window changes (see runtime.go).
	rt *trainRuntime

	// lr and countTrigger mirror the last trainInit's arming arguments,
	// so a machine joining mid-Train can arm its store identically.
	lr           float32
	countTrigger bool
}

// microPlan is the static decomposition of every worker's batch into M
// contiguous-token microbatches, with everything the per-step loop
// needs precomputed: sliced inputs, combine terms, per-expert gradient
// slot assignments in the deterministic (worker, microbatch) fold
// order.
type microPlan struct {
	m      int
	pieces [][]*workPiece // machine -> its pieces, (worker asc, microbatch asc)
	slots  []map[int]int  // machine -> expert -> number of contributing pieces
}

// workPiece is one (worker, microbatch) unit of streamed work.
type workPiece struct {
	w      int // global worker index
	lo, hi int // token range [lo, hi)
	exps   []*pieceExpert
	comb   []combOp // output combine ops, (token asc, expert asc)
}

// pieceExpert is one expert's share of a piece.
type pieceExpert struct {
	e    int
	x    *tensor.Matrix // view into the pre-gathered xes rows for this range
	toks []int          // the tokens of those rows (ascending)
	ws   []float32      // combine weight of (token, e), aligned with toks
	slot int            // index in the machine's per-expert fold order
	pidx int32          // index into the machine runtime's pushExperts
}

// combOp adds one weighted expert-output row into an output token row.
type combOp struct {
	t, expIdx, row int
	weight         float32
}

// buildMicroPlan cuts every worker's batch into m contiguous token
// ranges and precomputes each range's per-expert input views, combine
// terms and gradient fold slots. Pure function of the static routing —
// identical across modes, which is half the bit-identity argument.
func (cl *Cluster) buildMicroPlan(m int) *microPlan {
	cfg := cl.cfg
	plan := &microPlan{
		m:      m,
		pieces: make([][]*workPiece, cfg.Machines),
		slots:  make([]map[int]int, cfg.Machines),
	}
	for mach := 0; mach < cfg.Machines; mach++ {
		slots := make(map[int]int)
		for lw := 0; lw < cfg.WorkersPerNode; lw++ {
			w := mach*cfg.WorkersPerNode + lw
			ri := cl.rindex[w]
			routing := cl.routings[w]
			T := cfg.TokensPerWorker
			for b := 0; b < m; b++ {
				lo, hi := b*T/m, (b+1)*T/m
				if hi == lo {
					continue
				}
				p := &workPiece{w: w, lo: lo, hi: hi}
				epos := make(map[int]int) // expert -> index in p.exps
				xlos := make(map[int]int) // expert -> row offset of the slice
				for _, e := range ri.needed {
					toks := ri.tokens[e]
					xlo := sort.SearchInts(toks, lo)
					xhi := sort.SearchInts(toks, hi)
					if xhi == xlo {
						continue
					}
					pe := &pieceExpert{
						e:    e,
						x:    cl.xes[w][e].RowSlice(xlo, xhi),
						toks: toks[xlo:xhi],
						slot: slots[e],
					}
					slots[e]++
					for _, t := range pe.toks {
						for k, te := range routing.Experts[t] {
							if te == e {
								pe.ws = append(pe.ws, routing.Weights[t][k])
							}
						}
					}
					epos[e] = len(p.exps)
					xlos[e] = xlo
					p.exps = append(p.exps, pe)
				}
				for t := lo; t < hi; t++ {
					for _, c := range ri.byToken[t] {
						p.comb = append(p.comb, combOp{
							t:      t,
							expIdx: epos[c.expert],
							row:    c.row - xlos[c.expert],
							weight: c.weight,
						})
					}
				}
				plan.pieces[mach] = append(plan.pieces[mach], p)
			}
		}
		plan.slots[mach] = slots
	}
	return plan
}

// trainInit builds (or refreshes) the cluster's training state for one
// Train call: detach store weights from the seed layer (once), build
// the contributor table and upstream gradients (once), (re)build the
// microbatch plan and execution runtime when their shape changed, and
// arm every store.
func (cl *Cluster) trainInit(opts TrainOptions, countTrigger bool) {
	cfg := cl.cfg
	if cl.train == nil {
		st := &trainState{}
		st.douts = make([]*tensor.Matrix, cfg.numWorkers())
		for w := range st.douts {
			st.douts[w] = tensor.NewRandom(cfg.TokensPerWorker, cfg.Hidden, 1, cfg.Seed+5000+int64(w))
		}
		st.expect = make([][]int, cfg.NumExperts)
		for m := 0; m < cfg.Machines; m++ {
			for _, e := range cl.needs[m] {
				st.expect[e] = append(st.expect[e], m)
			}
		}
		st.expectIdx = make([][]int32, cfg.NumExperts)
		for e := range st.expectIdx {
			row := make([]int32, cfg.Machines)
			for i := range row {
				row[i] = -1
			}
			for di, m := range st.expect[e] {
				row[m] = int32(di)
			}
			st.expectIdx[e] = row
		}
		cl.train = st
	}
	st := cl.train
	if st.plan == nil || st.plan.m != opts.Microbatches {
		st.plan = cl.buildMicroPlan(opts.Microbatches)
		if st.rt != nil {
			st.rt.shutdown()
			st.rt = nil
		}
	}
	if st.rt == nil || st.rt.depthCap < opts.Depth {
		if st.rt != nil {
			st.rt.shutdown()
		}
		st.rt = newTrainRuntime(cl, st.plan, max(opts.Depth, DefaultPipelineDepth))
	}
	if !st.detached {
		for _, s := range cl.stores {
			s.detachExperts()
		}
		st.detached = true
	}
	st.lr = opts.LR
	st.countTrigger = countTrigger
	for _, s := range cl.stores {
		s.enableTraining(st.expect, st.expectIdx, opts.LR, countTrigger, &st.pipe, uint64(st.steps))
	}
	st.rt.cs.reset()
	st.rt.deg.reset()
}

// ExpertState returns every expert's current encoded weights, read from
// its current owner — the differential tests' bitwise comparison point.
// Each encoding is a fresh copy the caller owns outright (the pooled
// serving buffers stay inside the stores).
func (cl *Cluster) ExpertState() ([][]byte, error) {
	out := make([][]byte, cl.cfg.NumExperts)
	for e := range out {
		owner := cl.currentOwner(e)
		b, err := cl.stores[owner].expertBytesCopy(transport.ExpertID{Expert: uint32(e)})
		if err != nil {
			return nil, err
		}
		out[e] = b
	}
	return out, nil
}

// TrainSteps returns how many training steps the cluster has completed.
func (cl *Cluster) TrainSteps() int {
	if cl.train == nil {
		return 0
	}
	return cl.train.steps
}

// PipelineStats returns the cumulative pipeline counters.
func (cl *Cluster) PipelineStats() metrics.PipelineSnapshot {
	if cl.train == nil {
		return metrics.PipelineSnapshot{}
	}
	return cl.train.pipe.Snapshot()
}
