package livecluster

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"janus/internal/faultinject"
	"janus/internal/transport"
)

// replCfg is elasticCfg plus synchronous replication: every expert
// keeps one in-sync copy besides its owner.
func replCfg() Config {
	cfg := elasticCfg()
	cfg.Replicas = 1
	cfg.StaleFallback = true
	return cfg
}

// The headline differential: the owner of a replicated expert is killed
// permanently mid-train and the run continues bitwise identical to an
// unfailed twin — weights, outputs, and zero staleness — because
// failover promotes a replica that acked the dead owner's last merged
// version. The dead machine is a joiner (it hosts a migrated expert but
// runs no workers), so its death costs no gradient contributions and
// bitwise identity is actually achievable; what the test pins is that
// the promotion path loses none of the merges the owner had folded.
func TestReplicatedFailoverLossless(t *testing.T) {
	opts := TrainOptions{Steps: 8, LR: 0.05}
	refState, _, refOuts := runTrain(t, elasticCfg, opts)

	drill := func(replicas int) (*Cluster, TrainResult) {
		t.Helper()
		inj := faultinject.New(11)
		inj.Kill("m3", 6, 0) // the joiner dies permanently at step 6
		inj.Kill("m3.client", 6, 0)
		cfg := elasticCfg()
		cfg.Injector = inj
		cfg.Replicas = replicas
		cfg.StaleFallback = true
		// One missed round declares death, so failover (and promotion)
		// run at the top of the kill step, before any pull needs m3.
		cfg.DeadManSteps = 1
		cl, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cl.Close)
		eopts := opts
		eopts.JoinAfterStep = 2
		eopts.Migrations = []TrainMigration{{AfterStep: 3, Expert: 4, To: 3}}
		res, err := cl.Train(eopts)
		if err != nil {
			t.Fatalf("replicas=%d: train: %v", replicas, err)
		}
		if err := cl.ViewConsistency(); err != nil {
			t.Fatalf("replicas=%d: %v", replicas, err)
		}
		return cl, res
	}

	// Replicated run: lossless. The promoted replica acked version 5 —
	// the dead owner's last merge — so nothing degrades and the final
	// state matches the unfailed static twin bit for bit.
	cl, res := drill(2)
	state, err := cl.ExpertState()
	if err != nil {
		t.Fatalf("ExpertState: %v", err)
	}
	assertSameState(t, "replicated kill vs unfailed twin", state, refState)
	assertSameOutputs(t, "replicated kill vs unfailed twin", res.FinalOutputs, refOuts)
	if res.MaxStalenessSteps != 0 || res.StaleFetches != 0 {
		t.Fatalf("lossless failover degraded: staleness=%d staleFetches=%d",
			res.MaxStalenessSteps, res.StaleFetches)
	}
	if res.DroppedGrads != 0 {
		t.Fatalf("lossless failover dropped %d gradients", res.DroppedGrads)
	}
	tot := cl.RobustnessTotals()
	if tot.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", tot.Promotions)
	}
	if tot.ReplPushes == 0 {
		t.Fatal("no replica streams recorded")
	}
	if got := cl.currentOwner(4); got == 3 {
		t.Fatal("expert 4 still owned by the dead machine")
	}

	// Unreplicated control: the same kill falls back to the stale copy
	// the migration RELEASE left behind (version 3), so recovery is
	// survivable but lossy — staleness must be visible.
	_, ctrl := drill(0)
	if ctrl.MaxStalenessSteps == 0 {
		t.Fatal("control run shows no staleness — the differential proves nothing")
	}
}

// Killing a replica machine mid-stream must never fork the replica set:
// streams to it fail (observable lag), and once it heals the
// anti-entropy sweep re-streams the missed versions.
func TestReplicaDeathMidStreamRepairs(t *testing.T) {
	inj := faultinject.New(9)
	inj.Kill("m2", 3, 5) // dead during steps 3-4, heals at 5
	inj.Kill("m2.client", 3, 5)
	cfg := replCfg()
	cfg.Injector = inj
	cfg.AntiEntropyEvery = 2
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	step := TrainOptions{Steps: 1, LR: 0.05}
	for s := 1; s <= 8; s++ {
		if _, err := cl.Train(step); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if err := cl.ViewConsistency(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	tot := cl.RobustnessTotals()
	if tot.ReplFailures == 0 {
		t.Fatal("no replication failures recorded while the replica was dead")
	}
	if tot.ReplRepairs == 0 {
		t.Fatal("anti-entropy repaired nothing after the replica healed")
	}
	// After the last sync every replica of every expert must be back at
	// its owner's version — divergence repaired, not papered over.
	for e, set := range cl.ReplicaView() {
		o := cl.currentOwner(e)
		id := transport.ExpertID{Expert: uint32(e)}
		want := cl.stores[o].versionOf(id)
		for _, r := range set {
			ent, ok := cl.stores[r].replicaAt(id)
			if !ok || ent.ver != want {
				t.Fatalf("expert %d replica on machine %d not repaired (have %v, want version %d)",
					e, r, ok, want)
			}
		}
	}
}

// A migration onto a machine holding the expert's replica must
// atomically retarget the replica set inside the FENCE — and a driver
// crash right after the fence (phase 3, RELEASE lost) must leave a set
// that anti-entropy can finish repairing, never a forked one.
func TestMigrationFenceRetargetsReplicaSet(t *testing.T) {
	cfg := replCfg()
	cfg.AntiEntropyEvery = 2
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Train(TrainOptions{Steps: 2, LR: 0.05}); err != nil {
		t.Fatal(err)
	}

	// Pick a replicated expert and migrate it onto its own replica.
	var expert, to = -1, -1
	for e, set := range cl.ReplicaView() {
		if len(set) > 0 && cl.currentOwner(e) != set[0] {
			expert, to = e, set[0]
			break
		}
	}
	if expert < 0 {
		t.Fatal("no replicated expert to migrate")
	}
	from := cl.currentOwner(expert)

	cl.migrateAbandon = func(phase int) bool { return phase == 3 }
	if err := cl.MigrateExpert(expert, to); err == nil {
		t.Fatal("abandoned migration reported success")
	}
	cl.migrateAbandon = nil

	// The fence committed: ownership moved, and the set swapped the new
	// owner out for the old one in the same critical section.
	if got := cl.currentOwner(expert); got != to {
		t.Fatalf("owner = %d, want %d (fence committed before the crash)", got, to)
	}
	set := cl.ReplicaView()[expert]
	for _, r := range set {
		if r == to {
			t.Fatalf("replica set %v still contains the new owner %d", set, to)
		}
	}
	found := false
	for _, r := range set {
		if r == from {
			found = true
		}
	}
	if !found {
		t.Fatalf("replica set %v did not adopt the old owner %d", set, from)
	}
	if err := cl.ViewConsistency(); err != nil {
		t.Fatal(err)
	}

	// RELEASE was lost, so the old owner's replica entry is missing —
	// train past an anti-entropy boundary and the sweep must close it.
	if _, err := cl.Train(TrainOptions{Steps: 2, LR: 0.05}); err != nil {
		t.Fatal(err)
	}
	id := transport.ExpertID{Expert: uint32(expert)}
	ent, ok := cl.stores[from].replicaAt(id)
	if !ok {
		t.Fatal("anti-entropy never re-streamed the lost replica")
	}
	if want := cl.stores[to].versionOf(id); ent.ver != want {
		t.Fatalf("repaired replica at version %d, owner at %d", ent.ver, want)
	}
	if tot := cl.RobustnessTotals(); tot.ReplRetargets == 0 {
		t.Fatal("no replica retarget recorded for the fenced migration")
	}
	if err := cl.ViewConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A hedge won by an in-sync replica is a lossless serve: it must count
// as an in-sync hedge, never as a stale fetch, and never trip
// degradation mode.
func TestHedgeInSyncReplicaNotStale(t *testing.T) {
	inj := faultinject.New(5)
	inj.Slow("m1", 25*time.Millisecond, 0, 1)
	cfg := replCfg()
	cfg.Replicas = 2 // every machine backs up every foreign expert
	cfg.Injector = inj
	cfg.SlowAfter = time.Millisecond
	cfg.HedgeDelay = 4 * time.Millisecond
	cfg.PullTimeout = time.Second
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var stale int64
	degraded := 0
	for i := 0; i < 4; i++ {
		res, err := cl.RunDataCentric()
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		stale += res.StaleFetches
		degraded += res.DegradedSteps
	}
	tot := cl.RobustnessTotals()
	if tot.InSyncHedges == 0 {
		t.Fatalf("no in-sync hedges recorded (hedged=%d won=%d)", tot.HedgedPulls, tot.HedgesWon)
	}
	if stale != 0 || tot.StaleServes != 0 {
		t.Fatalf("in-sync hedges counted as stale: fetches=%d serves=%d", stale, tot.StaleServes)
	}
	if degraded != 0 {
		t.Fatalf("in-sync hedges tripped degradation mode (%d degraded iterations)", degraded)
	}
}

// The replica planner is deterministic, owner-disjoint, and duplicate
// free, and honors the ReplicateTop restriction.
func TestPlanReplicasDeterministic(t *testing.T) {
	cfg := replCfg()
	cfg.Replicas = 2
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Skew popularity so the ordering has a real signal.
	for e := 0; e < cfg.NumExperts; e++ {
		cl.load.AddRouted(e, int64(100-10*e))
	}

	plan := cl.PlanReplicas()
	if again := cl.PlanReplicas(); !reflect.DeepEqual(plan, again) {
		t.Fatalf("planner not deterministic:\n%v\n%v", plan, again)
	}
	if len(plan) != cfg.NumExperts {
		t.Fatalf("planned %d experts, want %d", len(plan), cfg.NumExperts)
	}
	for e, set := range plan {
		if len(set) != cfg.Replicas {
			t.Fatalf("expert %d replica set %v, want %d machines", e, set, cfg.Replicas)
		}
		owner := cl.currentOwner(e)
		seen := map[int]bool{}
		for _, r := range set {
			if r == owner {
				t.Fatalf("expert %d replica set %v contains owner %d", e, set, owner)
			}
			if seen[r] || r < 0 || r >= cfg.Machines {
				t.Fatalf("expert %d replica set %v malformed", e, set)
			}
			seen[r] = true
		}
	}

	cl.cfg.ReplicateTop = 3
	top := cl.PlanReplicas()
	if len(top) != 3 {
		t.Fatalf("ReplicateTop=3 planned %d experts", len(top))
	}
	for _, e := range []int{0, 1, 2} { // the three hottest by the skew above
		if _, ok := top[e]; !ok {
			t.Fatalf("hottest expert %d missing from top-restricted plan %v", e, top)
		}
	}
}

// The rebalancer must never migrate an expert onto a machine already
// holding its replica — the move would silently collapse the failure
// domain — and must stay deterministic with the filter applied.
func TestPlanRebalanceReplicaAware(t *testing.T) {
	cl, err := Start(replCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Load skew: machine 0's expert 0 is by far the hottest, machine 2
	// is the cold sink the planner would normally hand it to.
	cl.load.AddRouted(0, 1000)
	cl.load.AddRouted(1, 40)
	cl.load.AddRouted(2, 30)
	for e := 3; e < 6; e++ {
		cl.load.AddRouted(e, 50) // machine 1 mid-loaded
	}

	// Without a replica in the way, the hot expert goes to the sink.
	cl.viewMu.Lock()
	cl.replicas[0] = nil
	cl.viewMu.Unlock()
	moves := cl.PlanRebalance(1)
	if len(moves) != 1 || moves[0].Expert != 0 || moves[0].To != 2 {
		t.Fatalf("baseline plan = %v, want expert 0 -> machine 2", moves)
	}

	// Pin expert 0's replica onto the sink: the collapse case. The
	// planner must skip it and move the next-best expert instead.
	cl.viewMu.Lock()
	cl.replicas[0] = []int{2}
	cl.viewMu.Unlock()
	moves = cl.PlanRebalance(1)
	if again := cl.PlanRebalance(1); !reflect.DeepEqual(moves, again) {
		t.Fatalf("filtered plan not deterministic: %v vs %v", moves, again)
	}
	for _, mv := range moves {
		if mv.Expert == 0 && mv.To == 2 {
			t.Fatalf("plan %v migrates expert 0 onto its replica holder", moves)
		}
	}

	// Ping-pong guard: executing the filtered plan and planning again
	// must not bounce anything straight back.
	if _, err := cl.Rebalance(1); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	first := moves
	moves = cl.PlanRebalance(1)
	for _, mv := range moves {
		for _, prev := range first {
			if mv.Expert == prev.Expert && mv.To == prev.From {
				t.Fatalf("ping-pong: %v reverses %v", mv, prev)
			}
		}
	}
}

// Seeded sanity for the promotion bookkeeping across several kills: the
// promotion log only ever records fenced epochs, and replica invariants
// hold after every failover (ViewConsistency is called inside).
func TestPromotionRecordsFencedEpochs(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := faultinject.New(seed)
			inj.Kill("m2", 3, 0)
			inj.Kill("m2.client", 3, 0)
			cfg := replCfg()
			cfg.Injector = inj
			cfg.DeadManSteps = 1
			cl, err := Start(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for s := 1; s <= 6; s++ {
				if _, err := cl.Train(TrainOptions{Steps: 1, LR: 0.05}); err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
				if err := cl.ViewConsistency(); err != nil {
					t.Fatalf("step %d: %v", s, err)
				}
			}
			// m2's experts had replicas synced through step 2; the kill at
			// step 3 wants version 2, so every one of them promotes.
			if tot := cl.RobustnessTotals(); tot.Promotions == 0 {
				t.Fatal("permanent kill with in-sync replicas promoted nothing")
			}
			cl.viewMu.Lock()
			n := len(cl.promotions)
			cl.viewMu.Unlock()
			if n == 0 {
				t.Fatal("promotion log empty despite promotions counted")
			}
		})
	}
}
