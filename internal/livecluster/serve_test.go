package livecluster

import (
	"context"
	"testing"
	"time"

	"janus/internal/tensor"
	"janus/internal/transport"
)

// serveCfg is a small replicated cluster for the serving-path tests:
// three machines, replicas on, failover on so membership epochs are
// live.
func serveCfg() Config {
	cfg := elasticCfg()
	cfg.Replicas = 1
	cfg.StaleFallback = true
	return cfg
}

// refForward computes the reference output of an expert over a request
// batch straight from a machine store's weights.
func refForward(t *testing.T, cl *Cluster, expert int, rows int, data []float32) []float32 {
	t.Helper()
	owner := cl.currentOwner(expert)
	ex, ok := cl.stores[owner].get(transport.ExpertID{Expert: uint32(expert)})
	if !ok {
		t.Fatalf("expert %d missing from owner %d", expert, owner)
	}
	x := tensor.New(rows, cl.cfg.Hidden)
	copy(x.Data, data)
	y, cache := ex.Forward(x)
	cache.Release()
	out := append([]float32(nil), y.Data...)
	tensor.Put(y)
	tensor.Put(x)
	return out
}

// Owner and replica copies answer the same SERVE batch with matching
// provenance and bitwise-identical outputs — the property the
// degradation ladder's replica rung depends on.
func TestServeOwnerAndReplicaProvenance(t *testing.T) {
	cl, err := Start(serveCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	cl.SyncReplicas()
	b := cl.ServeBackend()
	t.Cleanup(b.Close)

	const expert, rows = 4, 3
	h := b.Hidden()
	x := tensor.NewRandom(rows, h, 1, 77)
	payload, err := transport.EncodeServe(uint64(time.Second/time.Microsecond), rows, h, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	want := refForward(t, cl, expert, rows, x.Data)

	ownerAddr, ok := b.OwnerAddr(expert)
	if !ok {
		t.Fatal("expert has no alive owner")
	}
	ctx := context.Background()
	prov, got, err := b.Serve(ctx, ownerAddr, expert, payload)
	if err != nil {
		t.Fatalf("owner serve: %v", err)
	}
	if prov != transport.ProvOwner {
		t.Fatalf("owner serve provenance = %#x", prov)
	}
	if len(got) != len(want) {
		t.Fatalf("owner serve returned %d floats, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("owner serve output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}

	replAddr, ok := b.ReplicaAddr(expert)
	if !ok {
		t.Fatal("expert has no alive replica")
	}
	if replAddr == ownerAddr {
		t.Fatal("replica addr is the owner")
	}
	prov, got, err = b.Serve(ctx, replAddr, expert, payload)
	if err != nil {
		t.Fatalf("replica serve: %v", err)
	}
	if prov != transport.ProvReplica {
		t.Fatalf("replica serve provenance = %#x", prov)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replica serve output differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// A SERVE whose budget runs out during the server-side compute is
// cancelled there — the error round-trips as a deadline expiry, not a
// generic failure, so the front-end counts it at the right stage.
func TestServeBudgetExpiresDuringCompute(t *testing.T) {
	cfg := serveCfg()
	cfg.PullRetries = 1 // expiry must not be retried into a second sleep
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	b := cl.ServeBackend()
	t.Cleanup(b.Close)

	const expert, rows = 2, 1
	h := b.Hidden()
	addr, ok := b.OwnerAddr(expert)
	if !ok {
		t.Fatal("expert has no alive owner")
	}
	cl.SetServeDelay(cl.currentOwner(expert), 30*time.Millisecond)

	x := tensor.NewRandom(rows, h, 1, 78)
	payload, err := transport.EncodeServe(1000 /* 1ms budget */, rows, h, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = b.Serve(context.Background(), addr, expert, payload)
	if err == nil {
		t.Fatal("expired serve answered")
	}
	if !transport.IsServeExpired(err) {
		t.Fatalf("expiry surfaced as %v, want serve-expired", err)
	}

	// Clearing the delay restores service with a sane budget.
	cl.SetServeDelay(cl.currentOwner(expert), 0)
	payload, err = transport.EncodeServe(uint64(time.Second/time.Microsecond), rows, h, x.Data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Serve(context.Background(), addr, expert, payload); err != nil {
		t.Fatalf("recovered serve: %v", err)
	}
}

// ExportSnapshot → DecodeExpertPlane round-trips the live weights: the
// decoded canary plane computes bitwise-identical outputs to the
// cluster it was captured from.
func TestExportSnapshotPlaneMatchesLiveWeights(t *testing.T) {
	cl, err := Start(serveCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	snap := cl.ExportSnapshot(7, 2)
	if snap.Step != 7 || snap.ModelVersion != 2 {
		t.Fatalf("snapshot stamped %d/%d, want 7/2", snap.Step, snap.ModelVersion)
	}
	if len(snap.Experts) != cl.cfg.NumExperts {
		t.Fatalf("snapshot has %d experts, want %d", len(snap.Experts), cl.cfg.NumExperts)
	}
	plane, err := DecodeExpertPlane(snap)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 2
	h := cl.cfg.Hidden
	for e := 0; e < cl.cfg.NumExperts; e++ {
		x := tensor.NewRandom(rows, h, 1, int64(100+e))
		want := refForward(t, cl, e, rows, x.Data)
		ex, ok := plane[e]
		if !ok {
			t.Fatalf("plane missing expert %d", e)
		}
		xc := tensor.New(rows, h)
		copy(xc.Data, x.Data)
		y, cache := ex.Forward(xc)
		cache.Release()
		for i := range want {
			if y.Data[i] != want[i] {
				t.Fatalf("expert %d plane output differs at %d", e, i)
			}
		}
		tensor.Put(y)
		tensor.Put(xc)
		tensor.Put(x)
	}
}
