package livecluster

import (
	"bytes"
	"testing"
	"time"

	"janus/internal/faultinject"
	"janus/internal/tensor"
)

// runTrain starts a fresh cluster from mkcfg, trains it, and returns
// the final expert weights (encoded), the result, and the outputs.
// mkcfg must build a fresh Config (injectors are stateful).
func runTrain(t *testing.T, mkcfg func() Config, opts TrainOptions) ([][]byte, TrainResult, []*tensor.Matrix) {
	t.Helper()
	cl, err := Start(mkcfg())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer cl.Close()
	res, err := cl.Train(opts)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	state, err := cl.ExpertState()
	if err != nil {
		t.Fatalf("ExpertState: %v", err)
	}
	return state, res, res.FinalOutputs
}

func assertSameState(t *testing.T, name string, a, b [][]byte) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: expert count %d vs %d", name, len(a), len(b))
	}
	for e := range a {
		if !bytes.Equal(a[e], b[e]) {
			t.Fatalf("%s: expert %d weights differ bitwise", name, e)
		}
	}
}

func assertSameOutputs(t *testing.T, name string, a, b []*tensor.Matrix) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: worker count %d vs %d", name, len(a), len(b))
	}
	for w := range a {
		switch {
		case a[w] == nil && b[w] == nil:
		case a[w] == nil || b[w] == nil:
			t.Fatalf("%s: worker %d output nil mismatch", name, w)
		case !tensor.Equal(a[w], b[w]):
			t.Fatalf("%s: worker %d outputs differ bitwise", name, w)
		}
	}
}

// TestTrainPipelinedBitIdentical is the headline differential: on a
// clean cluster the pipelined schedule must reproduce the lockstep
// weights and outputs bitwise, for single and multi-microbatch plans.
func TestTrainPipelinedBitIdentical(t *testing.T) {
	for _, m := range []int{1, 3} {
		opts := TrainOptions{Steps: 4, Microbatches: m}
		lockState, _, lockOut := runTrain(t, defaultCfg, opts)
		opts.Pipelined = true
		pipeState, pres, pipeOut := runTrain(t, defaultCfg, opts)
		assertSameState(t, "clean", lockState, pipeState)
		assertSameOutputs(t, "clean", lockOut, pipeOut)
		if pres.Synced {
			t.Fatalf("M=%d: clean pipelined run unexpectedly step-synced", m)
		}
		if pres.Pipeline.Merges == 0 {
			t.Fatalf("M=%d: overlap mode applied no count-triggered merges", m)
		}
	}
}

// TestTrainSplitCallsMatchSingleCall pins that the version clock
// continues across Train calls: 2+2 steps equals 4 steps bitwise.
func TestTrainSplitCallsMatchSingleCall(t *testing.T) {
	oneState, _, _ := runTrain(t, defaultCfg, TrainOptions{Steps: 4, Microbatches: 2, Pipelined: true})

	cl, err := Start(defaultCfg())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer cl.Close()
	opts := TrainOptions{Steps: 2, Microbatches: 2, Pipelined: true}
	if _, err := cl.Train(opts); err != nil {
		t.Fatalf("Train 1: %v", err)
	}
	if _, err := cl.Train(opts); err != nil {
		t.Fatalf("Train 2: %v", err)
	}
	if got := cl.TrainSteps(); got != 4 {
		t.Fatalf("TrainSteps = %d, want 4", got)
	}
	splitState, err := cl.ExpertState()
	if err != nil {
		t.Fatalf("ExpertState: %v", err)
	}
	assertSameState(t, "split", oneState, splitState)
}

// TestTrainFirstStepMicrobatchInvariant: a single step's forward runs
// on the untouched initial weights, and forward is bitwise microbatch-
// invariant (per-row kernels), so the step-1 outputs must not depend
// on M even though later weight trajectories do.
func TestTrainFirstStepMicrobatchInvariant(t *testing.T) {
	_, _, out1 := runTrain(t, defaultCfg, TrainOptions{Steps: 1, Microbatches: 1})
	_, _, out4 := runTrain(t, defaultCfg, TrainOptions{Steps: 1, Microbatches: 4, Pipelined: true})
	assertSameOutputs(t, "first-step", out1, out4)
}

// TestTrainOverlapUnderDelay: a pure-delay injector is outcome-neutral,
// so the pipelined run keeps free cross-step overlap and must still
// match lockstep bitwise.
func TestTrainOverlapUnderDelay(t *testing.T) {
	mkcfg := func() Config {
		cfg := defaultCfg()
		in := faultinject.New(7)
		in.AddRule(faultinject.Rule{Fault: faultinject.Fault{Delay: 200 * time.Microsecond}})
		cfg.Injector = in
		return cfg
	}
	opts := TrainOptions{Steps: 3, Microbatches: 2}
	lockState, _, _ := runTrain(t, mkcfg, opts)
	opts.Pipelined = true
	pipeState, pres, _ := runTrain(t, mkcfg, opts)
	assertSameState(t, "delay", lockState, pipeState)
	if pres.Synced {
		t.Fatal("delay-only injector should not force the step-synced schedule")
	}
}

// TestTrainKillWindowDifferential: a transient owner kill with stale
// fallback degrades both schedules identically — the pipelined run
// drops to step-synced (kill rules are step-gated) and the surviving
// fold is still bitwise equal.
func TestTrainKillWindowDifferential(t *testing.T) {
	mkcfg := func() Config {
		cfg := defaultCfg()
		in := faultinject.New(7)
		in.Kill("m1", 2, 4)
		cfg.Injector = in
		cfg.StaleFallback = true
		cfg.PullTimeout = 500 * time.Millisecond
		return cfg
	}
	opts := TrainOptions{Steps: 5, Microbatches: 2}
	lockState, lres, _ := runTrain(t, mkcfg, opts)
	opts.Pipelined = true
	pipeState, pres, _ := runTrain(t, mkcfg, opts)
	assertSameState(t, "kill-window", lockState, pipeState)
	if !pres.Synced {
		t.Fatal("kill rules must force the step-synced schedule")
	}
	for name, res := range map[string]TrainResult{"lockstep": lres, "pipelined": pres} {
		if res.StaleFetches == 0 && res.DroppedGrads == 0 {
			t.Fatalf("%s: kill window caused no degradation (test not exercising the fallback)", name)
		}
		if res.DegradedSteps == 0 {
			t.Fatalf("%s: degraded steps not counted", name)
		}
	}
	if lres.StaleFetches != pres.StaleFetches || lres.DroppedGrads != pres.DroppedGrads {
		t.Fatalf("degradation telemetry diverged: lockstep %d/%d vs pipelined %d/%d",
			lres.StaleFetches, lres.DroppedGrads, pres.StaleFetches, pres.DroppedGrads)
	}
}

// TestTrainFailoverDifferential: a permanent machine death with
// failover, checkpoints and stale fallback must still produce bitwise
// equal weights in both schedules (the pipelined run is step-synced, so
// membership changes only at step boundaries in both).
func TestTrainFailoverDifferential(t *testing.T) {
	mkcfg := func(dir string) func() Config {
		return func() Config {
			cfg := defaultCfg()
			cfg.Machines = 3
			cfg.WorkersPerNode = 1
			cfg.NumExperts = 9
			in := faultinject.New(7)
			in.Kill("m2", 2, 0)
			in.Kill("m2.client", 2, 0)
			cfg.Injector = in
			cfg.StaleFallback = true
			cfg.FailoverEnabled = true
			cfg.HeartbeatTimeout = 100 * time.Millisecond
			cfg.PullTimeout = 500 * time.Millisecond
			cfg.CheckpointDir = dir
			cfg.CheckpointEvery = 1
			return cfg
		}
	}
	opts := TrainOptions{Steps: 6, Microbatches: 2}
	lockState, lres, _ := runTrain(t, mkcfg(t.TempDir()), opts)
	opts.Pipelined = true
	pipeState, pres, _ := runTrain(t, mkcfg(t.TempDir()), opts)
	assertSameState(t, "failover", lockState, pipeState)
	if !pres.Synced {
		t.Fatal("failover must force the step-synced schedule")
	}
	for name, res := range map[string]TrainResult{"lockstep": lres, "pipelined": pres} {
		if res.AliveMachines != 2 {
			t.Fatalf("%s: alive=%d, want 2 (machine 2 permanently dead)", name, res.AliveMachines)
		}
	}
	if lres.AliveMachines != pres.AliveMachines {
		t.Fatalf("membership diverged: %d vs %d", lres.AliveMachines, pres.AliveMachines)
	}
}

// TestTrainPipelineCounters sanity-checks the new telemetry: microbatch
// count matches the plan, and the lockstep run merges only via flush.
func TestTrainPipelineCounters(t *testing.T) {
	_, res, _ := runTrain(t, defaultCfg, TrainOptions{Steps: 2, Microbatches: 3})
	if res.Pipeline.Merges != 0 {
		t.Fatalf("lockstep run applied %d count-triggered merges, want 0", res.Pipeline.Merges)
	}
	if res.Pipeline.Flushes == 0 {
		t.Fatal("lockstep run recorded no flush merges")
	}
	cfg := defaultCfg()
	wantPieces := int64(cfg.numWorkers()) * 3 * 2 // workers × microbatches × steps
	if res.Pipeline.Microbatches != wantPieces {
		t.Fatalf("microbatch pieces = %d, want %d", res.Pipeline.Microbatches, wantPieces)
	}
}
