package livecluster

import (
	"math"
	"testing"
	"time"

	"janus/internal/faultinject"
	"janus/internal/tensor"
)

// faultCfg tunes the retry budget for test speed: failures against a
// killed server surface as fast connection errors, so the timeout only
// bounds the rare hung-write case.
func faultCfg(inj *faultinject.Injector) Config {
	cfg := defaultCfg()
	cfg.Injector = inj
	cfg.StaleFallback = true
	cfg.PullTimeout = 300 * time.Millisecond
	cfg.PullRetries = 2
	cfg.RetryBackoff = 2 * time.Millisecond
	return cfg
}

func finite(m *tensor.Matrix) bool {
	for _, v := range m.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}

// The acceptance scenario: machine 1's server is killed for steps 2-3.
// The cluster must complete those iterations in stale-weights mode
// (degraded, finite outputs) and recover to clean iterations when the
// server returns at step 4.
func TestKillServerStaleFallbackAndRecovery(t *testing.T) {
	inj := faultinject.New(1)
	inj.Kill(MachineLabel(1), 2, 4)
	cl, err := Start(faultCfg(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	check := func(step int, wantDegraded bool) Result {
		t.Helper()
		res, err := cl.RunDataCentric()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got := res.DegradedSteps > 0; got != wantDegraded {
			t.Fatalf("step %d: degraded=%v, want %v (robust: %v)", step, got, wantDegraded, res.Robust)
		}
		for w, out := range res.Outputs {
			if out == nil {
				t.Fatalf("step %d: worker %d produced no output", step, w)
			}
			if !finite(out) {
				t.Fatalf("step %d: worker %d output not finite", step, w)
			}
			// Weights never change in this harness, so even stale-mode
			// outputs must match the reference exactly.
			if !tensor.Equal(out, ref[w]) {
				t.Fatalf("step %d: worker %d output differs from reference", step, w)
			}
		}
		return res
	}

	// Step 1: healthy — warms every machine's durable expert cache.
	res := check(1, false)
	if res.StaleFetches != 0 || res.Robust.Retries != 0 {
		t.Fatalf("healthy step reported faults: %+v", res.Robust)
	}

	// Steps 2-3: machine 1 dead. Machine 0 serves its externals stale.
	res = check(2, true)
	if res.StaleFetches == 0 {
		t.Fatal("no stale fetches during outage")
	}
	if res.Robust.Retries == 0 {
		t.Fatal("no retries during outage")
	}
	res = check(3, true)
	if res.MaxStalenessSteps < 2 {
		t.Fatalf("staleness = %d at step 3, want >= 2 (cache from step 1)", res.MaxStalenessSteps)
	}

	// Step 4: server back. Fresh pulls, zero degraded steps.
	res = check(4, false)
	if res.StaleFetches != 0 || res.DroppedGrads != 0 {
		t.Fatalf("post-recovery step still degraded: %+v", res)
	}
	if res.Robust.Reconnects == 0 {
		t.Fatal("recovery did not reconnect to the restored server")
	}
}

// Without StaleFallback the same outage is a hard error — the previous
// fail-fast contract is preserved for callers that want it.
func TestKillWithoutFallbackFails(t *testing.T) {
	inj := faultinject.New(2)
	inj.Kill(MachineLabel(1), 1, 0)
	cfg := faultCfg(inj)
	cfg.StaleFallback = false
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err == nil {
		t.Fatal("iteration against a dead owner succeeded without fallback")
	}
}

// A cold outage (no warmed cache) cannot degrade gracefully: the error
// must surface rather than fabricating weights.
func TestColdOutageStillErrors(t *testing.T) {
	inj := faultinject.New(3)
	inj.Kill(MachineLabel(1), 1, 0) // dead from the very first step
	cl, err := Start(faultCfg(inj))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err == nil {
		t.Fatal("iteration succeeded with no cached copy of a dead owner's experts")
	}
}

// Dropped-write faults (lost acks) must not double-apply gradients:
// each machine still registers exactly one gradient per external
// expert thanks to the retransmission tokens.
func TestLostAcksDoNotDoubleApplyGrads(t *testing.T) {
	inj := faultinject.New(4)
	// Drop a handful of server writes across the run; retries recover.
	inj.AddRule(faultinject.Rule{Label: MachineLabel(0), Times: 2, Fault: faultinject.Fault{DropProb: 0.2}})
	inj.AddRule(faultinject.Rule{Label: MachineLabel(1), Times: 2, Fault: faultinject.Fault{DropProb: 0.2}})
	cfg := faultCfg(inj)
	cfg.PullTimeout = 150 * time.Millisecond
	cfg.PullRetries = 4
	cl, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.RunDataCentric(); err != nil {
		t.Fatal(err)
	}
	for m, s := range cl.stores {
		s.mu.Lock()
		for id, n := range s.grads {
			if n != 1 {
				t.Errorf("machine %d: expert %v gradient applied %d times, want 1", m, id, n)
			}
		}
		s.mu.Unlock()
	}
}

// Fault runs are reproducible: the same seed and policy produce the
// same degradation profile.
func TestFaultRunDeterministicDegradation(t *testing.T) {
	run := func() (int, int64) {
		inj := faultinject.New(7)
		inj.Kill(MachineLabel(1), 2, 3)
		cl, err := Start(faultCfg(inj))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		degraded, stale := 0, int64(0)
		for s := 0; s < 3; s++ {
			res, err := cl.RunDataCentric()
			if err != nil {
				t.Fatal(err)
			}
			degraded += res.DegradedSteps
			stale += res.StaleFetches
		}
		return degraded, stale
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("degradation profile not reproducible: (%d,%d) vs (%d,%d)", d1, s1, d2, s2)
	}
	if d1 != 1 {
		t.Fatalf("degraded steps = %d, want exactly 1 (the kill window)", d1)
	}
}
