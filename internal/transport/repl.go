package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// REPL payload: the owner's post-merge weights for one expert, stamped
// with the merge version they belong to, streamed to a replica machine
// after every gradient merge. The explicit byte length makes torn or
// padded streams detectable — a replica must either apply a whole
// versioned snapshot or none of it.
//
//	uint64 version (the owner's merge counter these bytes belong to)
//	uint32 length  (of the expert bytes that follow)
//	bytes  expert  (the owner's canonical wire encoding)

// replHeaderBytes is the fixed prefix of a REPL payload.
const replHeaderBytes = 8 + 4

// maxReplBytes bounds the expert bytes a REPL decoder will accept, so a
// corrupt length cannot force an unbounded allocation. A REPL payload
// rides inside one frame, so the frame limit is the natural bound.
const maxReplBytes = maxFrameBytes - frameHeaderBytes - replHeaderBytes

// EncodeRepl serialises a REPL payload.
func EncodeRepl(version uint64, expert []byte) ([]byte, error) {
	if len(expert) > maxReplBytes {
		return nil, fmt.Errorf("transport: replica payload %d exceeds limit", len(expert))
	}
	buf := make([]byte, replHeaderBytes+len(expert))
	binary.BigEndian.PutUint64(buf[0:8], version)
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(expert)))
	copy(buf[replHeaderBytes:], expert)
	return buf, nil
}

// DecodeRepl parses a REPL payload. Truncation, an oversized or
// mismatched length, or trailing bytes fail the decode — a torn replica
// stream is rejected whole rather than applied partially. The returned
// expert bytes alias raw; callers that keep them must copy.
func DecodeRepl(raw []byte) (version uint64, expert []byte, err error) {
	if len(raw) < replHeaderBytes {
		return 0, nil, errors.New("transport: replica payload truncated")
	}
	version = binary.BigEndian.Uint64(raw[0:8])
	n := binary.BigEndian.Uint32(raw[8:12])
	if int64(n) > maxReplBytes {
		return 0, nil, fmt.Errorf("transport: replica claims %d expert bytes", n)
	}
	if int(n) != len(raw)-replHeaderBytes {
		return 0, nil, fmt.Errorf("transport: replica has %d expert bytes, header claims %d",
			len(raw)-replHeaderBytes, n)
	}
	return version, raw[replHeaderBytes:], nil
}

// Replicate streams one versioned expert snapshot (an EncodeRepl
// payload) to the replica machine at addr, which applies it to its
// replica store and acks. Retries are safe: replica application is
// idempotent and version-monotone. Like every non-JOIN frame the
// request is epoch-fenced, so a zombie ex-owner cannot overwrite a
// replica after failover moved the cluster past it.
func (c *Client) Replicate(ctx context.Context, addr string, id ExpertID, payload []byte) error {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := c.do(ctx, addr, frame{typ: msgRepl, id: id, payload: payload})
	if err != nil {
		return err
	}
	if resp.typ != msgReplAck {
		resp.recycle()
		return fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	return nil
}
