package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"janus/internal/faultinject"
)

// These tests pin the PR 3 no-retain contract under per-peer batched
// writes (the group-commit flush): a flushed batch carries several
// senders' frames in one socket write, so one faulted write fails many
// logical requests at once, and every sender's payload buffer is free
// for recycling the moment its writeFrameBuffered returns — not when
// the batch flushes.

// TestBatchedGradsExactlyOnceUnderFaults drops and corrupts whole
// client->server writes — each potentially a group-commit batch of
// many GRAD frames — and checks that after every push's retries
// settle, each gradient was applied exactly once. Deterministic seed;
// per-message dedup tokens (not per-connection request ids) are what
// makes the batched retry exactly-once.
func TestBatchedGradsExactlyOnceUnderFaults(t *testing.T) {
	in := faultinject.New(11)
	// Each faulted op burns one Times credit, so the schedule is
	// finite: the first 2 matched client writes vanish wholesale
	// (every frame batched into them times out upstream and retries),
	// the next 2 get a corrupted length prefix (the server's bounded
	// reader drops the connection, failing the whole batch at once).
	in.AddRule(faultinject.Rule{Label: "cli", Times: 2, Fault: faultinject.Fault{DropProb: 1}})
	in.AddRule(faultinject.Rule{Label: "cli", Times: 2, Fault: faultinject.Fault{CorruptProb: 1}})

	store := newMemStore()
	const senders = 16
	ids := make([]ExpertID, senders)
	for i := range ids {
		ids[i] = ExpertID{Expert: uint32(i + 1)}
		store.experts[ids[i]] = []byte{1}
	}
	srv, addr := startServer(t, store)

	c := NewClientOptions(Options{
		Credits: senders,
		Dial: func(addr string) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, time.Second)
			if err != nil {
				return nil, err
			}
			return in.WrapConn(conn, "cli"), nil
		},
		RequestTimeout: 200 * time.Millisecond,
		MaxAttempts:    6,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	})
	defer c.Close()

	const rounds = 4
	var wg sync.WaitGroup
	errs := make([]error, senders)
	for i := 0; i < senders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := c.PushGradient(ctx, addr, ids[i], []byte{byte(r)}); err != nil {
					errs[i] = fmt.Errorf("round %d: %w", r, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sender %d: %v", i, err)
		}
	}
	store.mu.Lock()
	defer store.mu.Unlock()
	for i, id := range ids {
		if store.grads[id] != rounds {
			t.Fatalf("sender %d: gradient applied %d times, want exactly %d",
				i, store.grads[id], rounds)
		}
	}
	if srv.GradsAccepted() != senders*rounds {
		t.Fatalf("server accepted %d grads, want %d", srv.GradsAccepted(), senders*rounds)
	}
	if c.Robust.Snapshot().Retries == 0 {
		t.Fatal("no retries recorded — the injected faults never hit a batch, so exactly-once was not exercised")
	}
}

// TestBatchedWriteBuffersNotRetained recycles (overwrites) every
// payload buffer the instant its push returns, while other senders on
// the same connection are still batching and flushing. If the
// transport kept a reference past writeFrameBuffered's return — say a
// background flusher reading the slice after the sender's timeout —
// the concurrent overwrite is a data race, and the race tier
// (go test -race) fails this test. The cross-check that payloads
// arrived intact catches single-threaded aliasing too.
func TestBatchedWriteBuffersNotRetained(t *testing.T) {
	store := newMemStore()
	const senders = 8
	ids := make([]ExpertID, senders)
	for i := range ids {
		ids[i] = ExpertID{Expert: uint32(i + 1)}
		store.experts[ids[i]] = []byte{1}
	}
	var mu sync.Mutex
	seen := make(map[ExpertID][]byte)
	store.gradHook = func(id ExpertID, payload []byte) {
		cp := append([]byte(nil), payload...)
		mu.Lock()
		seen[id] = cp
		mu.Unlock()
	}
	_, addr := startServer(t, store)
	c := NewClientOptions(Options{Credits: senders, RequestTimeout: 5 * time.Second})
	defer c.Close()

	const rounds = 32
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			for r := 0; r < rounds; r++ {
				for j := range buf {
					buf[j] = byte(i)
				}
				if err := c.PushGradient(ctx, addr, ids[i], buf); err != nil {
					t.Errorf("sender %d round %d: %v", i, r, err)
					return
				}
				// The no-retain contract says buf is ours again right
				// now, mid-group-commit or not: scribble over it.
				for j := range buf {
					buf[j] = 0xFF
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, id := range ids {
		payload := seen[id]
		if payload == nil {
			t.Fatalf("sender %d: no gradient arrived", i)
		}
		for _, b := range payload {
			if b != byte(i) {
				t.Fatalf("sender %d: payload byte %#x, want %#x — a recycled batch buffer was read late", i, b, byte(i))
			}
		}
	}
}
