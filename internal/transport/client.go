package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"janus/internal/metrics"
)

// Client issues pulls and gradient pushes to remote Servers. It keeps
// one connection per peer address, pipelines requests over it, merges
// concurrent pulls for the same expert into a single wire request
// (the Cache-Manager single flight of §5.1.2), and bounds concurrent
// in-flight pulls with a credit window (§5.1.1's credit-based buffer).
//
// Failure handling: every request attempt runs under a deadline, a
// peer connection whose read loop failed is evicted and re-dialed on
// next use, and failed attempts are retried with capped exponential
// backoff plus deterministic jitter. PULL is idempotent and retried
// as-is; GRAD retries carry a stable 16-byte token so the server
// applies a retransmitted gradient exactly once. Remote application
// errors (the server answered, the store said no) are never retried.
type Client struct {
	credits  chan struct{}
	closedCh chan struct{}

	dial        DialFunc
	reqTimeout  time.Duration
	maxAttempts int
	backoffBase time.Duration
	backoffMax  time.Duration

	mu       sync.Mutex
	peers    map[string]*peerConn
	known    map[string]bool // addrs successfully dialed at least once
	inflight map[pullKey]*pullCall
	closed   bool

	rngMu sync.Mutex
	rng   *rand.Rand

	clientID uint64
	gradSeq  atomic.Uint64

	// epoch is stamped into every outgoing request; the membership
	// layer bumps it at each transition so fencing servers can tell a
	// current member from a zombie. machineID identifies the sender.
	epoch     atomic.Uint64
	machineID uint32

	// Per-peer EWMA latency/loss scores for gray-failure detection.
	slowAfter time.Duration
	scoreMu   sync.Mutex
	scores    map[string]*peerScore

	// Multiplexed in-flight accounting: how many pulls and gradient
	// pushes currently hold the wire (across all peers), so the pipeline
	// can observe how deep its overlap actually runs.
	inflightPulls atomic.Int64
	inflightGrads atomic.Int64

	Counters Counters
	// Robust counts retries, per-attempt timeouts and reconnects.
	Robust metrics.Robustness
}

// DialFunc opens a connection to a peer address. Wrapping it is the
// client-side fault-injection hook.
type DialFunc func(addr string) (net.Conn, error)

// ErrClosed is returned by calls on a closed client. Callers blocked
// on credits or backoff when Close runs fail fast with it.
var ErrClosed = errors.New("transport: client closed")

// RemoteError is an application-level failure reported by the server
// (e.g. "expert not hosted"). It is terminal: the request reached the
// server and was answered, so retrying cannot help.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// ErrFencedEpoch is the sentinel wrapped by every epoch-fencing
// rejection: the server's membership view has moved past the epoch the
// request was stamped with. Terminal like RemoteError — retrying with
// the same stale epoch can never succeed; the sender must reconcile
// with the membership layer first.
var ErrFencedEpoch = errors.New("transport: request fenced: stale membership epoch")

// FencedEpochError reports an epoch-fencing rejection with the
// server's current epoch and whether the server's membership view
// already readmitted the sender (the post-heal rejoin signal).
type FencedEpochError struct {
	RemoteEpoch uint64
	Readmitted  bool
}

func (e *FencedEpochError) Error() string {
	return fmt.Sprintf("%v (server epoch %d, readmitted %v)", ErrFencedEpoch, e.RemoteEpoch, e.Readmitted)
}

func (e *FencedEpochError) Unwrap() error { return ErrFencedEpoch }

// Options configures a Client beyond the credit window.
type Options struct {
	// Credits bounds in-flight pulls (<=0 means DefaultCredits).
	Credits int
	// Dial opens peer connections; nil means TCP with the request
	// timeout as dial timeout.
	Dial DialFunc
	// RequestTimeout bounds each attempt (dial + round trip);
	// <=0 means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxAttempts bounds tries per logical request (first try plus
	// retries); <=0 means DefaultMaxAttempts.
	MaxAttempts int
	// BackoffBase is the first retry delay, doubled each retry up to
	// BackoffMax, then multiplied by a jitter draw from [0.5, 1.5).
	// <=0 means DefaultBackoffBase / DefaultBackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes backoff jitter deterministic; 0 uses a fixed seed
	// (determinism is the default here — pass distinct seeds to
	// decorrelate many clients).
	Seed int64
	// MachineID stamps every request's sender field, letting a fencing
	// server report whether this machine has been readmitted.
	MachineID uint32
	// SlowAfter flags a peer as a gray failure when its EWMA request
	// latency exceeds this bound (or its EWMA loss rate exceeds 1/2).
	// Zero disables peer scoring.
	SlowAfter time.Duration
}

// Defaults for Options fields left zero.
const (
	DefaultCredits        = 4
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxAttempts    = 3
	DefaultBackoffBase    = 50 * time.Millisecond
	DefaultBackoffMax     = 2 * time.Second
)

// clientSeq disambiguates gradient tokens between clients in-process.
var clientSeq atomic.Uint64

// timerPool recycles the per-attempt deadline timers so the steady-state
// request path does not allocate a timer (or a context) per attempt.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

// putTimer stops and drains t before pooling it; a fired-but-undrained
// timer would trip the next user's deadline instantly.
func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// respChPool recycles roundTrip's response channels. A channel is only
// re-pooled on the clean-receive path: after a timeout the read loop may
// still deliver a late response into it, and after a connection failure
// it is closed — either way it must be abandoned to the GC, never
// reused.
var respChPool = sync.Pool{New: func() any { return make(chan frame, 1) }}

// NewClient returns a client with the given credit count (<=0 means
// DefaultCredits) and default failure handling.
func NewClient(credits int) *Client {
	return NewClientOptions(Options{Credits: credits})
}

// NewClientOptions returns a client configured by opts.
func NewClientOptions(opts Options) *Client {
	if opts.Credits <= 0 {
		opts.Credits = DefaultCredits
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = DefaultBackoffMax
	}
	c := &Client{
		credits:     make(chan struct{}, opts.Credits),
		closedCh:    make(chan struct{}),
		dial:        opts.Dial,
		reqTimeout:  opts.RequestTimeout,
		maxAttempts: opts.MaxAttempts,
		backoffBase: opts.BackoffBase,
		backoffMax:  opts.BackoffMax,
		peers:       make(map[string]*peerConn),
		known:       make(map[string]bool),
		inflight:    make(map[pullKey]*pullCall),
		rng:         rand.New(rand.NewSource(opts.Seed)),
		clientID:    clientSeq.Add(1),
		machineID:   opts.MachineID,
		slowAfter:   opts.SlowAfter,
		scores:      make(map[string]*peerScore),
	}
	for i := 0; i < opts.Credits; i++ {
		c.credits <- struct{}{}
	}
	if c.dial == nil {
		c.dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, c.reqTimeout)
		}
	}
	return c
}

// SetEpoch installs the membership epoch stamped into every
// subsequent request. The membership layer calls this at each
// transition (failover, rejoin, reconcile).
func (c *Client) SetEpoch(e uint64) { c.epoch.Store(e) }

// Epoch returns the membership epoch currently stamped on requests.
func (c *Client) Epoch() uint64 { return c.epoch.Load() }

// peerScore is the EWMA latency/loss record of one peer address.
type peerScore struct {
	lat  float64 // EWMA of successful round-trip latency, nanoseconds
	loss float64 // EWMA of the per-attempt failure indicator
	init bool
}

// scoreAlpha weighs the newest observation in the EWMA scores.
const scoreAlpha = 0.3

// noteAttempt folds one request attempt into addr's score. Failed
// attempts count toward loss only; latency tracks successes so a
// timeout's deadline does not masquerade as a measured round trip.
func (c *Client) noteAttempt(addr string, d time.Duration, failed bool) {
	if c.slowAfter <= 0 {
		return
	}
	c.scoreMu.Lock()
	defer c.scoreMu.Unlock()
	s := c.scores[addr]
	if s == nil {
		s = &peerScore{}
		c.scores[addr] = s
	}
	fail := 0.0
	if failed {
		fail = 1.0
	}
	if !s.init {
		s.init = true
		s.loss = fail
		if !failed {
			s.lat = float64(d)
		}
		return
	}
	s.loss = (1-scoreAlpha)*s.loss + scoreAlpha*fail
	if !failed {
		if s.lat == 0 {
			s.lat = float64(d)
		} else {
			s.lat = (1-scoreAlpha)*s.lat + scoreAlpha*float64(d)
		}
	}
}

// PeerSlow reports whether addr is flagged as a gray failure: scoring
// enabled and its EWMA latency above the SlowAfter bound or its EWMA
// loss rate above 1/2.
func (c *Client) PeerSlow(addr string) bool {
	if c.slowAfter <= 0 {
		return false
	}
	c.scoreMu.Lock()
	defer c.scoreMu.Unlock()
	s := c.scores[addr]
	if s == nil || !s.init {
		return false
	}
	return s.lat > float64(c.slowAfter) || s.loss > 0.5
}

// PeerLatencyEWMA returns addr's smoothed request latency (0 if the
// peer has no successful samples yet or scoring is disabled).
func (c *Client) PeerLatencyEWMA(addr string) time.Duration {
	c.scoreMu.Lock()
	defer c.scoreMu.Unlock()
	if s := c.scores[addr]; s != nil {
		return time.Duration(s.lat)
	}
	return 0
}

type pullKey struct {
	addr string
	id   ExpertID
	// versioned pulls single-flight per requested version: a pull of
	// version v and one of v+1 are different requests and must not be
	// merged, while the unversioned key keeps its PR 3 behaviour.
	ver       uint64
	versioned bool
}

type pullCall struct {
	done    chan struct{}
	payload []byte
	err     error
}

// peerConn is one pipelined connection: a writer lock for request
// frames and a reader goroutine dispatching responses by request id.
type peerConn struct {
	conn net.Conn
	w    *bufio.Writer
	wmu  sync.Mutex
	// fg group-commits flushes: concurrent senders coalesce their small
	// request frames (grad pushes, acks, pulls) into one framed write
	// per flush quantum — see flushGroup in transport.go.
	fg flushGroup
	// shard is this connection's lane in the sharded byte counters.
	shard uint32

	// lastRead is the wall-clock UnixNano of the most recent frame the
	// read loop delivered. A timed-out attempt consults it to tell a
	// hung connection (evict and re-dial) from a live one that merely
	// lost this request's frame (retry in place) — on a pipelined
	// connection, evicting kills every other in-flight request, so a
	// single lost frame must not take down the whole window.
	lastRead atomic.Int64

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan frame
	err     error
	closed  chan struct{}
}

// peer returns a live connection to addr, evicting and re-dialing a
// cached connection whose read loop has failed (a poisoned entry must
// never be served again — satellite fix for the permanent-poisoning
// bug). The dial happens outside the client lock so one slow peer
// cannot stall requests to others.
func (c *Client) peer(addr string) (*peerConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if p, ok := c.peers[addr]; ok {
		if !p.failed() {
			c.mu.Unlock()
			return p, nil
		}
		delete(c.peers, addr)
	}
	redial := c.known[addr]
	c.mu.Unlock()

	conn, err := c.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	p := &peerConn{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 1<<16),
		shard:   nextCounterShard(),
		waiting: make(map[uint64]chan frame),
		closed:  make(chan struct{}),
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	if cur, ok := c.peers[addr]; ok && !cur.failed() {
		// Someone else re-dialed while we were; use theirs.
		c.mu.Unlock()
		conn.Close()
		return cur, nil
	}
	c.peers[addr] = p
	c.known[addr] = true
	c.mu.Unlock()
	if redial {
		c.Robust.AddReconnect()
	}
	go p.readLoop(&c.Counters)
	return p, nil
}

// evict drops p from the peer cache (if still cached) and fails it.
func (c *Client) evict(addr string, p *peerConn, err error) {
	c.mu.Lock()
	if cur, ok := c.peers[addr]; ok && cur == p {
		delete(c.peers, addr)
	}
	c.mu.Unlock()
	p.fail(err)
}

func (p *peerConn) failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err != nil
}

func (p *peerConn) readLoop(counters *Counters) {
	r := bufio.NewReaderSize(p.conn, 1<<16)
	for {
		f, err := readFrame(r)
		if err != nil {
			p.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		counters.addReceived(p.shard, 4+frameHeaderBytes+len(f.payload))
		p.lastRead.Store(time.Now().UnixNano())
		p.mu.Lock()
		ch, ok := p.waiting[f.reqID]
		delete(p.waiting, f.reqID)
		p.mu.Unlock()
		if ok {
			ch <- f
		} else {
			// Response for a caller that gave up (deadline passed):
			// nobody will read the payload, recycle its buffer.
			f.recycle()
		}
	}
}

func (p *peerConn) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
		close(p.closed)
	}
	waiting := p.waiting
	p.waiting = make(map[uint64]chan frame)
	p.mu.Unlock()
	for _, ch := range waiting {
		close(ch)
	}
	p.conn.Close()
}

// roundTrip sends a request frame and waits for its response, the
// attempt timeout firing, or the context, whichever comes first. The
// timeout channel is a pooled timer owned by the caller; firing maps to
// context.DeadlineExceeded so do()'s progress-aware eviction logic sees
// the same error shape the old per-attempt context produced. The write
// is group-committed: the frame is copied into the buffered writer
// under the lock (so the caller's payload is never retained — the PR 3
// no-retain contract holds for batched writes too), and whichever
// concurrent sender drains the pending count to zero flushes the
// coalesced batch.
func (p *peerConn) roundTrip(ctx context.Context, timeout <-chan time.Time, deadline time.Time, f frame, counters *Counters) (frame, error) {
	ch := respChPool.Get().(chan frame)
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		respChPool.Put(ch)
		return frame{}, err
	}
	p.nextID++
	f.reqID = p.nextID
	p.waiting[f.reqID] = ch
	p.mu.Unlock()

	p.fg.enter()
	p.wmu.Lock()
	if !deadline.IsZero() {
		p.conn.SetWriteDeadline(deadline)
	}
	err := writeFrameBuffered(p.w, f)
	if p.fg.exit() && err == nil {
		err = p.w.Flush()
	}
	p.wmu.Unlock()
	if err != nil {
		p.fail(err)
		return frame{}, err
	}
	counters.addSent(p.shard, 4+frameHeaderBytes+len(f.payload))

	select {
	case resp, ok := <-ch:
		if !ok {
			// Closed by fail(); a closed channel can never be pooled.
			p.mu.Lock()
			err := p.err
			p.mu.Unlock()
			if err == nil {
				err = errors.New("transport: connection closed")
			}
			return frame{}, err
		}
		respChPool.Put(ch)
		if resp.typ == msgError {
			msg := string(resp.payload) // copies; buffer can go back
			resp.recycle()
			return frame{}, &RemoteError{Msg: msg}
		}
		if resp.typ == msgFenced {
			fe := &FencedEpochError{RemoteEpoch: resp.epoch}
			if len(resp.payload) >= 1 {
				fe.Readmitted = resp.payload[0]&pongFlagReadmitted != 0
			}
			resp.recycle()
			return frame{}, fe
		}
		return resp, nil
	case <-timeout:
		// Abandon ch: the read loop may have popped the waiting entry
		// already and be about to deliver into it.
		p.mu.Lock()
		delete(p.waiting, f.reqID)
		p.mu.Unlock()
		return frame{}, context.DeadlineExceeded
	case <-ctx.Done():
		p.mu.Lock()
		delete(p.waiting, f.reqID)
		p.mu.Unlock()
		return frame{}, ctx.Err()
	}
}

// do runs one logical request with per-attempt deadlines, eviction of
// the failed connection, and capped jittered exponential backoff
// between attempts.
func (c *Client) do(ctx context.Context, addr string, req frame) (frame, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts; attempt++ {
		if attempt > 0 {
			c.Robust.AddRetry()
			if err := c.sleepBackoff(ctx, attempt); err != nil {
				return frame{}, lastErr
			}
		}
		select {
		case <-c.closedCh:
			return frame{}, ErrClosed
		default:
		}
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return frame{}, lastErr
		}

		attemptStart := time.Now()
		p, err := c.peer(addr)
		if err == nil {
			// Per-attempt deadline from a pooled timer instead of a
			// context.WithTimeout: same semantics (the timer firing
			// surfaces as context.DeadlineExceeded, ctx cancellation
			// still aborts the wait), zero allocations per attempt.
			deadline := attemptStart.Add(c.reqTimeout)
			if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
				deadline = d
			}
			t := getTimer(time.Until(deadline))
			// Stamp the sender identity and the freshest membership
			// epoch per attempt — a reconcile between retries must not
			// leave the request carrying a fenceable stale epoch.
			req.epoch = c.epoch.Load()
			req.sender = c.machineID
			var resp frame
			resp, err = p.roundTrip(ctx, t.C, deadline, req, &c.Counters)
			putTimer(t)
			if err == nil {
				c.noteAttempt(addr, time.Since(attemptStart), false)
				return resp, nil
			}
			var re *RemoteError
			if errors.As(err, &re) {
				c.noteAttempt(addr, time.Since(attemptStart), false)
				return frame{}, err
			}
			var fe *FencedEpochError
			if errors.As(err, &fe) {
				// Fencing is terminal: the server answered, it just
				// refuses our epoch. The connection stays healthy.
				c.noteAttempt(addr, time.Since(attemptStart), false)
				return frame{}, err
			}
			c.noteAttempt(addr, time.Since(attemptStart), true)
			evictConn := true
			if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				c.Robust.AddTimeout()
				if p.lastRead.Load() >= attemptStart.UnixNano() {
					// The connection delivered other responses during
					// this attempt, so it is alive; only this request's
					// frame (or its response) was lost. Retry on the
					// same connection rather than evicting it, which
					// would abort every other request pipelined on it.
					evictConn = false
				}
			}
			if evictConn {
				// The connection is suspect (lost, reset, or hung past
				// its deadline): evict so the next attempt re-dials.
				c.evict(addr, p, fmt.Errorf("transport: evicted after: %w", err))
			}
		} else {
			// A failed dial is a lost attempt for the peer score.
			c.noteAttempt(addr, time.Since(attemptStart), true)
		}
		if errors.Is(err, ErrClosed) {
			return frame{}, err
		}
		lastErr = err
	}
	return frame{}, lastErr
}

// sleepBackoff waits before retry number attempt (1-based), honouring
// cancellation and client close.
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.backoffBase << (attempt - 1)
	if d > c.backoffMax || d <= 0 {
		d = c.backoffMax
	}
	c.rngMu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-c.closedCh:
		return ErrClosed
	}
}

// Pull fetches an expert's bytes from addr. Concurrent pulls of the
// same (addr, expert) share a single wire request; every pull consumes
// one credit while its wire request is outstanding. Transient failures
// are retried up to the attempt budget; ctx bounds the whole call.
func (c *Client) Pull(ctx context.Context, addr string, id ExpertID) ([]byte, error) {
	return c.pull(ctx, addr, pullKey{addr: addr, id: id})
}

// PullVersion fetches an expert's bytes at exactly the given version.
// The server parks the request until the owner publishes that version
// (see VersionedStore), which both guarantees the pipelined trainer
// reads the step's exact weights and provides natural backpressure on
// cross-step prefetching. Single flight is per (addr, expert, version).
func (c *Client) PullVersion(ctx context.Context, addr string, id ExpertID, version uint64) ([]byte, error) {
	return c.pull(ctx, addr, pullKey{addr: addr, id: id, ver: version, versioned: true})
}

// InflightPulls returns how many pulls currently hold the wire.
func (c *Client) InflightPulls() int64 { return c.inflightPulls.Load() }

// InflightGrads returns how many gradient pushes currently hold the
// wire.
func (c *Client) InflightGrads() int64 { return c.inflightGrads.Load() }

func (c *Client) pull(ctx context.Context, addr string, key pullKey) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-call.done:
			return call.payload, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &pullCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	// Acquire a credit, failing fast if the client closes or the
	// caller gives up while blocked (satellite fix: Close used to
	// deadlock callers parked here with credits exhausted).
	select {
	case <-c.credits:
		call.payload, call.err = c.pullWire(ctx, addr, key)
		c.credits <- struct{}{}
	case <-c.closedCh:
		call.err = ErrClosed
	case <-ctx.Done():
		call.err = ctx.Err()
	}

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.payload, call.err
}

func (c *Client) pullWire(ctx context.Context, addr string, key pullKey) ([]byte, error) {
	req := frame{typ: msgPull, id: key.id}
	var verBuf *[]byte
	if key.versioned {
		// Pooled payload: do() copies it into the connection buffer
		// synchronously per attempt, so it is dead once do() returns.
		verBuf = getFrameBuf(versionedPullBytes)
		binary.BigEndian.PutUint64(*verBuf, key.ver)
		req = frame{typ: msgPullV, id: key.id, payload: *verBuf}
	}
	c.inflightPulls.Add(1)
	resp, err := c.do(ctx, addr, req)
	c.inflightPulls.Add(-1)
	if verBuf != nil {
		frameBufPool.Put(verBuf)
	}
	if err != nil {
		return nil, err
	}
	if resp.typ != msgExpert {
		resp.recycle()
		return nil, fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	return resp.payload, nil
}

// PullVersionInto fetches an expert's bytes at exactly the given
// version, appending the payload into dst (grown as needed) and
// recycling the transport receive buffer before returning, so the
// steady-state pipelined trainer's version pulls allocate nothing once
// dst has warmed to the expert's encoded size. Unlike PullVersion it
// does not single-flight: the pipelined trainer already dedups its own
// fetches, and consecutive steps pull distinct versions, so the merge
// window never materialises — the single-flight map insert/delete would
// be pure overhead on the hot path. Credits are still consumed.
func (c *Client) PullVersionInto(ctx context.Context, addr string, id ExpertID, version uint64, dst []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-c.credits:
	case <-c.closedCh:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { c.credits <- struct{}{} }()
	verBuf := getFrameBuf(versionedPullBytes)
	binary.BigEndian.PutUint64(*verBuf, version)
	req := frame{typ: msgPullV, id: id, payload: *verBuf}
	c.inflightPulls.Add(1)
	resp, err := c.do(ctx, addr, req)
	c.inflightPulls.Add(-1)
	frameBufPool.Put(verBuf)
	if err != nil {
		return nil, err
	}
	if resp.typ != msgExpert {
		resp.recycle()
		return nil, fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	dst = append(dst[:0], resp.payload...)
	resp.recycle()
	return dst, nil
}

// PushGradient delivers one gradient contribution to the expert's
// owner and waits for the ack. Retries reuse one retransmission token,
// so the server applies the gradient exactly once even if an ack was
// lost and the push retried over a new connection.
func (c *Client) PushGradient(ctx context.Context, addr string, id ExpertID, payload []byte) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Pooled token+payload staging buffer: do() copies it into the
	// connection buffer synchronously per attempt (batched writes
	// included), so it can be recycled as soon as do() returns. The
	// dedup token itself is per logical push and survives retries.
	bp := getFrameBuf(gradTokenBytes + len(payload))
	buf := *bp
	binary.BigEndian.PutUint64(buf[0:8], c.clientID)
	binary.BigEndian.PutUint64(buf[8:16], c.gradSeq.Add(1))
	copy(buf[gradTokenBytes:], payload)
	c.inflightGrads.Add(1)
	resp, err := c.do(ctx, addr, frame{typ: msgGrad, id: id, payload: buf})
	c.inflightGrads.Add(-1)
	frameBufPool.Put(bp)
	if err != nil {
		return err
	}
	if resp.typ != msgGradAck {
		resp.recycle()
		return fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	return nil
}

// PingInfo is what a heartbeat learns about the probed peer: the
// membership epoch its server answers with and whether that server's
// view considers this client's machine alive (the readmission signal a
// fenced machine waits for after a partition heals). A FENCED answer
// fills both fields alongside the returned error.
type PingInfo struct {
	Epoch      uint64
	Readmitted bool
}

// Ping probes addr's liveness with a single attempt — no retries and
// no backoff, because a heartbeat's whole job is to report the current
// state quickly; the caller's dead-man counter supplies the tolerance
// a retry budget would. The attempt runs under the request timeout (or
// the ctx deadline, whichever is sooner), piggybacks on the same
// pipelined connection as pulls, and evicts the connection on failure
// so the next probe re-dials.
func (c *Client) Ping(ctx context.Context, addr string) (PingInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := c.peer(addr)
	if err != nil {
		c.noteAttempt(addr, 0, true) // unreachable: score it as loss
		return PingInfo{}, err
	}
	start := time.Now()
	deadline := start.Add(c.reqTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	t := getTimer(time.Until(deadline))
	defer putTimer(t)
	req := frame{typ: msgPing, epoch: c.epoch.Load(), sender: c.machineID}
	resp, err := p.roundTrip(ctx, t.C, deadline, req, &c.Counters)
	if err != nil {
		var fe *FencedEpochError
		if errors.As(err, &fe) {
			// The peer is alive — it answered — but our epoch is stale.
			c.noteAttempt(addr, time.Since(start), false)
			return PingInfo{Epoch: fe.RemoteEpoch, Readmitted: fe.Readmitted}, err
		}
		var re *RemoteError
		if !errors.As(err, &re) {
			c.evict(addr, p, fmt.Errorf("transport: evicted after: %w", err))
		}
		c.noteAttempt(addr, time.Since(start), true)
		return PingInfo{}, err
	}
	c.noteAttempt(addr, time.Since(start), false)
	if resp.typ != msgPong {
		resp.recycle()
		return PingInfo{}, fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	info := PingInfo{Epoch: resp.epoch, Readmitted: true}
	if len(resp.payload) >= 1 {
		info.Readmitted = resp.payload[0]&pongFlagReadmitted != 0
	}
	resp.recycle()
	return info, nil
}

// Close tears down all peer connections. In-flight calls fail, and
// callers blocked on credits or backoff fail fast.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	peers := c.peers
	c.peers = make(map[string]*peerConn)
	c.mu.Unlock()
	for _, p := range peers {
		p.fail(ErrClosed)
	}
	return nil
}
