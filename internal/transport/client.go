package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client issues pulls and gradient pushes to remote Servers. It keeps
// one connection per peer address, pipelines requests over it, merges
// concurrent pulls for the same expert into a single wire request
// (the Cache-Manager single flight of §5.1.2), and bounds concurrent
// in-flight pulls with a credit window (§5.1.1's credit-based buffer).
type Client struct {
	credits chan struct{}

	mu       sync.Mutex
	peers    map[string]*peerConn
	inflight map[pullKey]*pullCall
	closed   bool

	Counters Counters
}

type pullKey struct {
	addr string
	id   ExpertID
}

type pullCall struct {
	done    chan struct{}
	payload []byte
	err     error
}

// NewClient returns a client whose pulls are bounded by the given
// credit count (<=0 means DefaultCredits).
func NewClient(credits int) *Client {
	if credits <= 0 {
		credits = DefaultCredits
	}
	ch := make(chan struct{}, credits)
	for i := 0; i < credits; i++ {
		ch <- struct{}{}
	}
	return &Client{
		credits:  ch,
		peers:    make(map[string]*peerConn),
		inflight: make(map[pullKey]*pullCall),
	}
}

// DefaultCredits is the default in-flight pull window.
const DefaultCredits = 4

// peerConn is one pipelined connection: a writer lock for request
// frames and a reader goroutine dispatching responses by request id.
type peerConn struct {
	conn net.Conn
	w    *bufio.Writer
	wmu  sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan frame
	err     error
	closed  chan struct{}
}

func (c *Client) peer(addr string) (*peerConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("transport: client closed")
	}
	if p, ok := c.peers[addr]; ok {
		return p, nil
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	p := &peerConn{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 1<<16),
		waiting: make(map[uint64]chan frame),
		closed:  make(chan struct{}),
	}
	c.peers[addr] = p
	go p.readLoop(&c.Counters)
	return p, nil
}

func (p *peerConn) readLoop(counters *Counters) {
	r := bufio.NewReaderSize(p.conn, 1<<16)
	for {
		f, err := readFrame(r)
		if err != nil {
			p.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		counters.addReceived(4 + frameHeaderBytes + len(f.payload))
		p.mu.Lock()
		ch, ok := p.waiting[f.reqID]
		delete(p.waiting, f.reqID)
		p.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

func (p *peerConn) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
		close(p.closed)
	}
	waiting := p.waiting
	p.waiting = make(map[uint64]chan frame)
	p.mu.Unlock()
	for _, ch := range waiting {
		close(ch)
	}
	p.conn.Close()
}

// roundTrip sends a request frame and waits for its response.
func (p *peerConn) roundTrip(f frame, counters *Counters) (frame, error) {
	ch := make(chan frame, 1)
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return frame{}, err
	}
	p.nextID++
	f.reqID = p.nextID
	p.waiting[f.reqID] = ch
	p.mu.Unlock()

	p.wmu.Lock()
	err := writeFrame(p.w, f)
	p.wmu.Unlock()
	if err != nil {
		p.fail(err)
		return frame{}, err
	}
	counters.addSent(4 + frameHeaderBytes + len(f.payload))

	resp, ok := <-ch
	if !ok {
		p.mu.Lock()
		err := p.err
		p.mu.Unlock()
		if err == nil {
			err = errors.New("transport: connection closed")
		}
		return frame{}, err
	}
	if resp.typ == msgError {
		return frame{}, fmt.Errorf("transport: remote error: %s", resp.payload)
	}
	return resp, nil
}

// Pull fetches an expert's bytes from addr. Concurrent pulls of the
// same (addr, expert) share a single wire request; every pull consumes
// one credit while its wire request is outstanding.
func (c *Client) Pull(addr string, id ExpertID) ([]byte, error) {
	key := pullKey{addr, id}
	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-call.done
		return call.payload, call.err
	}
	call := &pullCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	<-c.credits
	call.payload, call.err = c.pullWire(addr, id)
	c.credits <- struct{}{}

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.payload, call.err
}

func (c *Client) pullWire(addr string, id ExpertID) ([]byte, error) {
	p, err := c.peer(addr)
	if err != nil {
		return nil, err
	}
	resp, err := p.roundTrip(frame{typ: msgPull, id: id}, &c.Counters)
	if err != nil {
		return nil, err
	}
	if resp.typ != msgExpert {
		return nil, fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	return resp.payload, nil
}

// PushGradient delivers one gradient contribution to the expert's
// owner and waits for the ack.
func (c *Client) PushGradient(addr string, id ExpertID, payload []byte) error {
	p, err := c.peer(addr)
	if err != nil {
		return err
	}
	resp, err := p.roundTrip(frame{typ: msgGrad, id: id, payload: payload}, &c.Counters)
	if err != nil {
		return err
	}
	if resp.typ != msgGradAck {
		return fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	return nil
}

// Close tears down all peer connections. In-flight calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	peers := c.peers
	c.peers = make(map[string]*peerConn)
	c.mu.Unlock()
	for _, p := range peers {
		p.fail(errors.New("transport: client closed"))
	}
	return nil
}
