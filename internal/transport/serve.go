package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// SERVE payload: one inference micro-batch for one expert, stamped with
// the remaining deadline budget. The budget travels as a duration (not
// an absolute wall-clock deadline) so no clock synchronisation between
// front-end and expert machine is assumed — the receiver restarts the
// countdown from its own arrival time, which can only over-grant by the
// one-way wire latency, never expire early.
//
//	uint64 budget (remaining deadline, microseconds)
//	uint32 rows   (token rows in the micro-batch)
//	uint32 cols   (hidden width of each row)
//	float32[rows*cols] row-major token activations, little-endian
//
// SERVEOUT payload: the expert outputs for one SERVE micro-batch.
//
//	uint8 provenance (ProvOwner or ProvReplica)
//	float32[rows*cols] row-major outputs, little-endian (same shape)

// Answer provenance markers carried in a SERVEOUT payload: which rung
// of the degradation ladder produced the bytes.
const (
	ProvOwner   = 0x00 // computed on the expert's current owner
	ProvReplica = 0x01 // computed from an in-sync replica copy
)

// serveHeaderBytes is the fixed prefix of a SERVE payload.
const serveHeaderBytes = 8 + 4 + 4

// serveOutHeaderBytes is the fixed prefix of a SERVEOUT payload.
const serveOutHeaderBytes = 1

// maxServeBytes bounds the activation bytes a SERVE decoder will
// accept, so a corrupt shape cannot force an unbounded allocation. A
// SERVE payload rides inside one frame, so the frame limit is the
// natural bound.
const maxServeBytes = maxFrameBytes - frameHeaderBytes - serveHeaderBytes

// ErrServeExpired is the error a ServingStore returns when a
// micro-batch's budget was already spent on arrival. It crosses the
// wire as a msgError payload, so the client-side check is on the
// message text (see IsServeExpired), mirroring how every other remote
// error travels.
var ErrServeExpired = errors.New("transport: serve budget expired")

// IsServeExpired reports whether err is (or wraps, locally or across
// the wire) a serve-budget expiry.
func IsServeExpired(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrServeExpired) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, ErrServeExpired.Error())
}

// EncodeServe serialises a SERVE payload: the remaining budget and the
// micro-batch rows. rows must be rectangular rows×cols float32 data.
func EncodeServe(budgetMicros uint64, rows, cols int, data []float32) ([]byte, error) {
	if rows <= 0 || cols <= 0 || rows*cols != len(data) {
		return nil, fmt.Errorf("transport: serve shape %dx%d does not hold %d values", rows, cols, len(data))
	}
	if 4*len(data) > maxServeBytes {
		return nil, fmt.Errorf("transport: serve payload %d exceeds limit", 4*len(data))
	}
	buf := make([]byte, serveHeaderBytes+4*len(data))
	binary.BigEndian.PutUint64(buf[0:8], budgetMicros)
	binary.BigEndian.PutUint32(buf[8:12], uint32(rows))
	binary.BigEndian.PutUint32(buf[12:16], uint32(cols))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[serveHeaderBytes+4*i:], math.Float32bits(v))
	}
	return buf, nil
}

// DecodeServe parses a SERVE payload. Truncation, a zero or oversized
// shape, or a shape that disagrees with the byte count fail the decode
// — a torn micro-batch is rejected whole. The returned values are a
// fresh slice; raw may be recycled afterwards.
func DecodeServe(raw []byte) (budgetMicros uint64, rows, cols int, data []float32, err error) {
	if len(raw) < serveHeaderBytes {
		return 0, 0, 0, nil, errors.New("transport: serve payload truncated")
	}
	budgetMicros = binary.BigEndian.Uint64(raw[0:8])
	r := binary.BigEndian.Uint32(raw[8:12])
	c := binary.BigEndian.Uint32(raw[12:16])
	if r == 0 || c == 0 {
		return 0, 0, 0, nil, errors.New("transport: serve batch has empty shape")
	}
	n := int64(r) * int64(c) * 4
	if n > maxServeBytes {
		return 0, 0, 0, nil, fmt.Errorf("transport: serve claims %dx%d rows", r, c)
	}
	if int(n) != len(raw)-serveHeaderBytes {
		return 0, 0, 0, nil, fmt.Errorf("transport: serve has %d data bytes, shape claims %d",
			len(raw)-serveHeaderBytes, n)
	}
	data = make([]float32, int(r)*int(c))
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[serveHeaderBytes+4*i:]))
	}
	return budgetMicros, int(r), int(c), data, nil
}

// EncodeServeOut serialises a SERVEOUT payload: the answer provenance
// byte followed by the output rows.
func EncodeServeOut(provenance byte, data []float32) ([]byte, error) {
	if provenance != ProvOwner && provenance != ProvReplica {
		return nil, fmt.Errorf("transport: unknown serve provenance %#x", provenance)
	}
	if 4*len(data) > maxServeBytes {
		return nil, fmt.Errorf("transport: serve output %d exceeds limit", 4*len(data))
	}
	buf := make([]byte, serveOutHeaderBytes+4*len(data))
	buf[0] = provenance
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[serveOutHeaderBytes+4*i:], math.Float32bits(v))
	}
	return buf, nil
}

// DecodeServeOut parses a SERVEOUT payload. The data length must be a
// whole number of float32s; the caller validates the shape against the
// request it sent.
func DecodeServeOut(raw []byte) (provenance byte, data []float32, err error) {
	if len(raw) < serveOutHeaderBytes {
		return 0, nil, errors.New("transport: serve output truncated")
	}
	provenance = raw[0]
	if provenance != ProvOwner && provenance != ProvReplica {
		return 0, nil, fmt.Errorf("transport: unknown serve provenance %#x", provenance)
	}
	body := raw[serveOutHeaderBytes:]
	if len(body)%4 != 0 {
		return 0, nil, fmt.Errorf("transport: serve output has %d trailing bytes", len(body)%4)
	}
	data = make([]float32, len(body)/4)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return provenance, data, nil
}

// ServeExpert sends one inference micro-batch (an EncodeServe payload)
// to the expert machine at addr and returns the decoded outputs plus
// their provenance. Like every non-JOIN frame the request is
// epoch-fenced, so a front-end with a stale membership view can never
// read weights from a deposed owner. Retries are safe: serving is
// read-only. A budget already expired at the server is surfaced as a
// RemoteError recognised by IsServeExpired.
func (c *Client) ServeExpert(ctx context.Context, addr string, id ExpertID, payload []byte) (provenance byte, data []float32, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := c.do(ctx, addr, frame{typ: msgServe, id: id, payload: payload})
	if err != nil {
		return 0, nil, err
	}
	if resp.typ != msgServeOut {
		resp.recycle()
		return 0, nil, fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	provenance, data, err = DecodeServeOut(resp.payload)
	resp.recycle()
	return provenance, data, err
}
