package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// verStore is a VersionedStore whose ExpertBytesAt blocks until the
// requested version is published via advance().
type verStore struct {
	*memStore
	mu    sync.Mutex
	cond  *sync.Cond
	ver   map[ExpertID]uint64
	calls map[uint64]int // version -> ExpertBytesAt invocations
}

func newVerStore() *verStore {
	s := &verStore{memStore: newMemStore(), ver: make(map[ExpertID]uint64), calls: make(map[uint64]int)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *verStore) advance(id ExpertID, to uint64) {
	s.mu.Lock()
	s.ver[id] = to
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *verStore) ExpertBytesAt(id ExpertID, version uint64) ([]byte, error) {
	s.mu.Lock()
	s.calls[version]++
	for s.ver[id] < version {
		s.cond.Wait()
	}
	if s.ver[id] > version {
		s.mu.Unlock()
		return nil, fmt.Errorf("version %d superseded by %d", version, s.ver[id])
	}
	s.mu.Unlock()
	return s.memStore.ExpertBytes(id)
}

// TestPullVersionBlocksUntilPublished: a versioned pull parks server-
// side until the store publishes the requested version — the wire-level
// backpressure the pipelined trainer relies on.
func TestPullVersionBlocksUntilPublished(t *testing.T) {
	store := newVerStore()
	id := ExpertID{Expert: 3}
	want := bytes.Repeat([]byte{0x5A}, 4096)
	store.experts[id] = want
	_, addr := startServer(t, store)

	c := NewClient(4)
	defer c.Close()

	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = c.PullVersion(ctx, addr, id, 2)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("pull for unpublished version returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	store.advance(id, 2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(want))
	}
}

// TestPullVersionSingleFlight: concurrent pulls of the same (expert,
// version) collapse into one wire request, but distinct versions do not
// share flights.
func TestPullVersionSingleFlight(t *testing.T) {
	store := newVerStore()
	id := ExpertID{Expert: 1}
	store.experts[id] = []byte{1, 2, 3, 4}
	_, addr := startServer(t, store)

	c := NewClient(8)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.PullVersion(ctx, addr, id, 5); err != nil {
				t.Error(err)
			}
		}()
	}
	// The version stays unpublished until every goroutine had time to
	// join the in-flight pull, so the flight provably stays open.
	time.Sleep(30 * time.Millisecond)
	store.advance(id, 5)
	wg.Wait()
	store.mu.Lock()
	calls := store.calls[5]
	store.mu.Unlock()
	if calls != 1 {
		t.Fatalf("version 5 served %d times, want 1 (single flight)", calls)
	}
	// An unversioned pull of the same expert must not join the
	// versioned flight's cache key.
	if _, err := c.Pull(ctx, addr, id); err != nil {
		t.Fatal(err)
	}
}

// TestPullVersionUnversionedStore: a versioned pull against a store
// that cannot serve versions is a remote error, not a hang.
func TestPullVersionUnversionedStore(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 2}
	store.experts[id] = []byte{9}
	_, addr := startServer(t, store)

	c := newFastClient(4, 1)
	defer c.Close()
	_, err := c.PullVersion(ctx, addr, id, 1)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError for unversioned store", err)
	}
}

// TestInflightGauges: the pull/gradient in-flight gauges rise during
// multiplexed requests and settle back to zero.
func TestInflightGauges(t *testing.T) {
	store := newVerStore()
	id := ExpertID{Expert: 4}
	store.experts[id] = []byte{7}
	_, addr := startServer(t, store)

	c := NewClient(4)
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.PullVersion(ctx, addr, id, 1)
		done <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.InflightPulls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight pull gauge never rose")
		}
		time.Sleep(time.Millisecond)
	}
	store.advance(id, 1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := c.PushGradient(ctx, addr, id, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if got := c.InflightPulls(); got != 0 {
		t.Fatalf("inflight pulls = %d after completion, want 0", got)
	}
	if got := c.InflightGrads(); got != 0 {
		t.Fatalf("inflight grads = %d after completion, want 0", got)
	}
}
