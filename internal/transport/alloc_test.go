package transport

import (
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"
)

// The zero-alloc wire gates: a warmed gradient push (the GRAD write +
// server read/dedup/apply path) and a warmed versioned pull into a
// caller buffer (the read path replication and failover serve from)
// must not touch the heap. These pin the PR's framing changes — header
// bytes built inside the bufio buffer, Peek/Discard length reads, the
// preallocated dedup window — against regression.

// allocStore serves one fixed payload at any version and counts
// gradients, allocation-free.
type allocStore struct {
	payload []byte
	grads   atomic.Int64
}

func (s *allocStore) ExpertBytes(id ExpertID) ([]byte, error) { return s.payload, nil }

func (s *allocStore) ExpertBytesAt(id ExpertID, version uint64) ([]byte, error) {
	return s.payload, nil
}

func (s *allocStore) AddGradient(id ExpertID, payload []byte) error {
	s.grads.Add(1)
	return nil
}

// allocsRetry measures fn's steady-state allocations, retrying while
// nonzero: AllocsPerRun counts process-global mallocs, so a stray
// allocation from another test's winding-down goroutine can pollute
// one measurement. A real per-op leak (>= 1 alloc every run) fails
// every attempt deterministically.
func allocsRetry(runs int, fn func()) float64 {
	var n float64
	for attempt := 0; attempt < 3; attempt++ {
		n = testing.AllocsPerRun(runs, fn)
		if n == 0 {
			return 0
		}
	}
	return n
}

func allocGateClient(t *testing.T) (*Client, string) {
	t.Helper()
	store := &allocStore{payload: make([]byte, 512)}
	_, addr := startServer(t, store)
	c := NewClientOptions(Options{Credits: 4, RequestTimeout: 5 * time.Second})
	t.Cleanup(func() { c.Close() })
	return c, addr
}

func TestGradPushZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	c, addr := allocGateClient(t)
	id := ExpertID{Expert: 1}
	payload := make([]byte, 256)
	push := func() {
		if err := c.PushGradient(ctx, addr, id, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ { // warm conn, frame pools, dedup window map
		push()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := allocsRetry(100, push); n != 0 {
		t.Fatalf("PushGradient round trip: %v allocs/op in steady state, want 0", n)
	}
}

func TestPullVersionIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	c, addr := allocGateClient(t)
	id := ExpertID{Expert: 2}
	var dst []byte
	pull := func() {
		got, err := c.PullVersionInto(ctx, addr, id, 0, dst)
		if err != nil {
			t.Fatal(err)
		}
		dst = got // keep the (possibly grown) buffer for the next pull
	}
	for i := 0; i < 8; i++ { // warm conn, frame pools, and size dst
		pull()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if n := allocsRetry(100, pull); n != 0 {
		t.Fatalf("PullVersionInto round trip: %v allocs/op in steady state, want 0", n)
	}
}
