// Package transport implements the Janus pull protocol over real TCP
// sockets: the §6 implementation split of a socket control plane and a
// streamed data plane, reduced to one connection per peer pair (TCP
// carries both planes here, where the paper used a socket plus an RDMA
// queue pair — the protocol structure is identical, only the constants
// change).
//
// A Server owns experts and serves two request types: PULL (return the
// current bytes of an expert) and GRAD (accept a gradient contribution
// for an expert). A Client maintains one connection per remote peer,
// pipelines requests over it, merges concurrent pulls of the same
// expert (single flight, the Cache Manager behaviour of §5.1.2), and
// bounds its in-flight pulls with a credit window (§5.1.1).
//
// All exported types are safe for concurrent use.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Message types on the wire.
const (
	msgPull       = 0x01 // client -> server: request expert bytes
	msgExpert     = 0x02 // server -> client: expert payload
	msgGrad       = 0x03 // client -> server: gradient payload
	msgGradAck    = 0x04 // server -> client: gradient accepted
	msgPing       = 0x05 // client -> server: liveness probe (heartbeat)
	msgPong       = 0x06 // server -> client: liveness answer
	msgPullV      = 0x07 // client -> server: request expert bytes at a version
	msgFenced     = 0x08 // server -> client: request rejected, sender's epoch is stale
	msgJoin       = 0x09 // client -> server: new machine asks to be admitted
	msgAdmit      = 0x0A // server -> client: membership snapshot for an admitted joiner
	msgMigrate    = 0x0B // client -> server: stage a migrated expert's weights
	msgMigrateAck = 0x0C // server -> client: migrated weights staged
	msgRepl       = 0x0D // client -> server: versioned replica weight stream
	msgReplAck    = 0x0E // server -> client: replica stream applied
	msgServe      = 0x0F // client -> server: inference micro-batch with a deadline budget
	msgServeOut   = 0x10 // server -> client: expert outputs with answer provenance
	msgError      = 0x7F // server -> client: request failed
)

// pongFlagReadmitted is set in a PONG/FENCED payload when the server's
// membership view considers the probing machine alive — the signal a
// previously fenced machine uses to rejoin after a partition heals.
const pongFlagReadmitted = 0x01

// maxFrameBytes bounds a frame so a corrupt length prefix cannot make
// a reader allocate unbounded memory. Experts in this repository are at
// most 8·1024²·4 bytes; 64 MiB leaves ample headroom.
const maxFrameBytes = 64 << 20

// ExpertID names one expert instance of one block.
type ExpertID struct {
	Block  uint32
	Expert uint32
}

func (id ExpertID) String() string { return fmt.Sprintf("b%d/e%d", id.Block, id.Expert) }

// frame is the unit of the wire protocol:
//
//	uint32 length (of everything after this field)
//	uint8  type
//	uint64 request id
//	uint64 membership epoch (sender's view on requests, server's on responses)
//	uint32 sender machine id
//	uint32 block, uint32 expert
//	payload bytes
type frame struct {
	typ     byte
	reqID   uint64
	epoch   uint64
	sender  uint32
	id      ExpertID
	payload []byte
	// buf is the pooled backing store of payload, set only when the
	// frame was read with a recyclable buffer. recycle() returns it to
	// the pool; payloads that escape to callers (msgExpert) leave buf
	// unrecycled, which is safe — the pool never requires a Put.
	buf *[]byte
}

const frameHeaderBytes = 1 + 8 + 8 + 4 + 4 + 4

// frameBufPool recycles frame read buffers. Header-only frames (PULL,
// PING, PONG, GRADACK) return their buffer inside readFrame; GRAD
// payloads are recycled by the server once the store has consumed them.
// Buffers are held behind a pointer so Put does not allocate.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4+frameHeaderBytes); return &b }}

func getFrameBuf(n int) *[]byte {
	bp := frameBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// recycle returns the frame's pooled read buffer, if any. The caller
// must not touch f.payload afterwards.
func (f *frame) recycle() {
	if f.buf != nil {
		frameBufPool.Put(f.buf)
		f.buf, f.payload = nil, nil
	}
}

// writeFrame serialises f into w and flushes it.
//
// Concurrent senders on one connection batch flushes by group commit
// instead (see flushGroup): each sender copies its frame into the
// buffered writer under the write lock via writeFrameBuffered, and only
// the last sender in the window issues the Flush. An earlier
// optimization that queued frames for a background flusher was reverted
// because a timed-out sender could recycle a payload the flusher had
// yet to write; group commit keeps the copy synchronous in the sender —
// when writeFrameBuffered returns, the payload bytes are owned by the
// bufio buffer (or already on the socket) and the caller may recycle
// them, so the PR 3 no-retain contract extends to batched payloads
// unchanged. A faulted flush still fails several senders' frames at
// once, but each failed request retries under its own budget with its
// own dedup token, so fault-injection retransmission semantics are the
// same as with one flush per frame.
func writeFrame(w *bufio.Writer, f frame) error {
	if err := writeFrameBuffered(w, f); err != nil {
		return err
	}
	return w.Flush()
}

// flushGroup implements the group-commit flush rule: senders increment
// pending before taking the write lock, copy their frame into the
// buffered writer, then decrement; whoever decrements to zero flushes.
// A sender that skips its flush is guaranteed a later one: its
// decrement was non-zero only because another sender had already
// incremented, and that sender (or one that delays *it*) must reach its
// own decrement inside the lock after writing.
type flushGroup struct{ pending atomic.Int32 }

func (g *flushGroup) enter() { g.pending.Add(1) }

// exit reports whether the caller is the last sender in the window and
// must flush. Call while holding the connection's write lock.
func (g *flushGroup) exit() bool { return g.pending.Add(-1) == 0 }

// writeFrameBuffered serialises f into w without flushing. On return
// the payload has been copied out (bufio buffers it or wrote it
// through), so the caller may recycle f.payload immediately.
func writeFrameBuffered(w *bufio.Writer, f frame) error {
	if len(f.payload) > maxFrameBytes-frameHeaderBytes {
		return fmt.Errorf("transport: frame payload %d exceeds limit", len(f.payload))
	}
	// Build the header inside the bufio.Writer's own buffer: a local
	// array would escape to the heap (w.Write hands the slice to the
	// underlying io.Writer interface), costing one allocation per
	// frame on the steady-state path. If the buffer is too full to
	// hold a header, flush first — that only moves bytes the group
	// commit would have flushed moments later anyway.
	if w.Available() < 4+frameHeaderBytes {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	hdr := w.AvailableBuffer()[:4+frameHeaderBytes]
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameHeaderBytes+len(f.payload)))
	hdr[4] = f.typ
	binary.BigEndian.PutUint64(hdr[5:13], f.reqID)
	binary.BigEndian.PutUint64(hdr[13:21], f.epoch)
	binary.BigEndian.PutUint32(hdr[21:25], f.sender)
	binary.BigEndian.PutUint32(hdr[25:29], f.id.Block)
	binary.BigEndian.PutUint32(hdr[29:33], f.id.Expert)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
	}
	return nil
}

func readFrame(r *bufio.Reader) (frame, error) {
	// Peek/Discard instead of io.ReadFull into a local array: the
	// array would escape through the io.Reader interface and allocate
	// once per frame received.
	lenBuf, err := r.Peek(4)
	if err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf)
	r.Discard(4)
	if n < frameHeaderBytes || n > maxFrameBytes {
		return frame{}, fmt.Errorf("transport: invalid frame length %d", n)
	}
	bp := getFrameBuf(int(n))
	buf := *bp
	if _, err := io.ReadFull(r, buf); err != nil {
		frameBufPool.Put(bp)
		return frame{}, err
	}
	f := frame{
		typ:    buf[0],
		reqID:  binary.BigEndian.Uint64(buf[1:9]),
		epoch:  binary.BigEndian.Uint64(buf[9:17]),
		sender: binary.BigEndian.Uint32(buf[17:21]),
		id: ExpertID{
			Block:  binary.BigEndian.Uint32(buf[21:25]),
			Expert: binary.BigEndian.Uint32(buf[25:29]),
		},
	}
	if n > frameHeaderBytes {
		f.payload = buf[frameHeaderBytes:]
		f.buf = bp
	} else {
		// Header-only frame: nothing aliases the buffer, recycle now.
		frameBufPool.Put(bp)
	}
	return f, nil
}

// Store is the server-side source of truth the transport serves.
type Store interface {
	// ExpertBytes returns the current serialized weights of an expert,
	// or an error if the expert is not hosted here.
	ExpertBytes(id ExpertID) ([]byte, error)
	// AddGradient accepts one gradient contribution for a hosted expert.
	// The payload slice is only valid for the duration of the call — the
	// transport recycles its backing buffer afterwards — so an
	// implementation that needs the bytes later must copy them.
	AddGradient(id ExpertID, payload []byte) error
}

// BytesReleaser is an optional extension of Store for stores that
// refcount the buffers ExpertBytes/ExpertBytesAt hand out. The server
// calls ReleaseExpertBytes exactly once per successfully answered pull,
// after the payload has been copied to the wire — the store may then
// recycle the buffer once its own references drop. Stores without this
// extension keep the old contract: returned bytes are retained
// indefinitely by nobody and garbage-collected.
type BytesReleaser interface {
	ReleaseExpertBytes(id ExpertID, b []byte)
}

// VersionedStore is an optional extension of Store for stores whose
// expert weights advance through numbered versions (the live trainer's
// double-buffered cache manager). ExpertBytesAt may block until the
// requested version is published — that wait is the pipeline's
// backpressure: a puller one step ahead parks server-side until the
// owner's merge for the previous step lands, instead of spinning or
// receiving torn weights. An implementation must unblock waiters (with
// an error) when it stops hosting the expert or shuts down. The server
// runs each request in its own goroutine, so a parked versioned pull
// never head-of-line blocks the connection.
type VersionedStore interface {
	Store
	ExpertBytesAt(id ExpertID, version uint64) ([]byte, error)
}

// versionedPullBytes is the payload of a msgPullV request: the wanted
// version as a big-endian uint64.
const versionedPullBytes = 8

// counterShards spreads the per-frame traffic counters across cache
// lines. Every frame on every connection bumps these, so a single
// atomic pair becomes a contended line once many connections share one
// Counters value; each connection instead picks a shard at birth and
// reads fold the shards. (The per-token pipeline counters get the same
// treatment in metrics — see metrics.Pipeline's batched adders.)
const counterShards = 8

type counterShard struct {
	sent, received atomic.Int64
	_              [48]byte // pad to a cache line
}

// Counters tracks wire traffic in bytes, usable concurrently. Writers
// add through a per-connection shard; readers sum the shards.
type Counters struct {
	shards [counterShards]counterShard
}

// counterSeq hands out shard indices to connections round-robin.
var counterSeq atomic.Uint32

func nextCounterShard() uint32 { return counterSeq.Add(1) % counterShards }

// Sent returns total payload+header bytes written.
func (c *Counters) Sent() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].sent.Load()
	}
	return n
}

// Received returns total payload+header bytes read.
func (c *Counters) Received() int64 {
	var n int64
	for i := range c.shards {
		n += c.shards[i].received.Load()
	}
	return n
}

func (c *Counters) addSent(shard uint32, n int)     { c.shards[shard].sent.Add(int64(n)) }
func (c *Counters) addReceived(shard uint32, n int) { c.shards[shard].received.Add(int64(n)) }

// gradDedupWindow bounds the server's memory of recently seen gradient
// request ids. A retransmit arriving after its id was evicted would be
// re-applied, so the window is sized far beyond any plausible number of
// in-flight-plus-retried gradients.
const gradDedupWindow = 4096

// gradTokenBytes prefixes every GRAD payload: 8 bytes of client id and
// 8 bytes of per-client sequence number. The token survives
// reconnection (unlike the per-connection request id), which is what
// makes a retried gradient safe: the server remembers the token and
// replays the original outcome instead of applying the payload twice.
const gradTokenBytes = 16

// gradEntry is the server's record of one gradient token: done closes
// when the first application finishes, err is its outcome. Entries are
// pooled: refs counts the dedup window's reference plus any duplicate
// waiters, so an entry returns to the freelist only after it has been
// evicted from the window AND every waiter has read the outcome —
// never while a late retransmission still holds a pointer to it.
// Completion is signalled on the server-wide gradCond instead of a
// per-entry channel: a closed channel cannot be reused, and the
// original per-push make(chan) was one heap allocation per gradient on
// the steady-state path.
type gradEntry struct {
	err  error
	done bool
	refs int32
}

// JoinHandler is the server's hook for admitting new machines. A JOIN
// frame (the only frame exempt from epoch fencing — a joiner has no
// epoch yet) carries the joiner's listen address; the handler decides
// admission (typically: only if this member's view holds quorum) and
// returns its membership epoch plus an encoded membership snapshot the
// joiner bootstraps from. Servers without a handler reject JOIN.
type JoinHandler interface {
	AdmitJoin(sender uint32, payload []byte) (epoch uint64, admit []byte, err error)
}

// MigrationSink is an optional extension of Store for stores that can
// stage a migrated expert's weights ahead of an ownership handoff. The
// payload (a checkpoint wire stream) is only valid for the duration of
// the call; implementations must copy what they keep.
type MigrationSink interface {
	AcceptMigration(id ExpertID, payload []byte) error
}

// ReplicationSink is an optional extension of Store for stores that can
// hold synchronously replicated copies of experts they do not own. The
// payload (an EncodeRepl stream: version + canonical expert bytes) is
// only valid for the duration of the call; implementations must copy
// what they keep, and must apply version streams monotonically so a
// delayed retransmission can never roll a replica backwards.
type ReplicationSink interface {
	AcceptReplica(id ExpertID, payload []byte) error
}

// ServingStore is an optional extension of Store for stores that can
// run inference micro-batches through a hosted (or in-sync replicated)
// expert. The payload is an EncodeServe stream — remaining deadline
// budget plus token rows — valid only for the duration of the call; the
// response is an EncodeServeOut stream (provenance + output rows) the
// transport writes to the wire and does not retain. A store must refuse
// (with an error wrapping ErrServeExpired's message) work whose budget
// has already expired on arrival rather than compute and discard it.
type ServingStore interface {
	ServeExpert(id ExpertID, payload []byte) ([]byte, error)
}

// EpochGate is the server's hook into a membership layer. When set,
// every request carrying an epoch older than Epoch() is rejected with
// a FENCED response instead of touching the store — a zombie ex-owner
// that missed a failover can therefore never merge stale gradients.
// MachineAlive feeds the readmission bit in PONG/FENCED responses so a
// fenced machine learns when the membership view has taken it back.
type EpochGate interface {
	Epoch() uint64
	MachineAlive(machine uint32) bool
}

// Server answers pull and gradient requests for the experts in a Store.
type Server struct {
	store Store

	mu         sync.Mutex
	ln         net.Listener
	conns      map[net.Conn]struct{}
	closed     bool
	wg         sync.WaitGroup
	pulls      atomic.Int64
	grads      atomic.Int64
	gradDups   atomic.Int64
	pings      atomic.Int64
	fenced     atomic.Int64
	joins      atomic.Int64
	migrations atomic.Int64
	repls      atomic.Int64
	serves     atomic.Int64
	gate       atomic.Value // EpochGate
	joiner     atomic.Value // JoinHandler
	Counters   Counters

	gradMu    sync.Mutex
	gradCond  sync.Cond // completion signal for in-flight gradEntries
	gradSeen  map[[gradTokenBytes]byte]*gradEntry
	gradOrder [][gradTokenBytes]byte // FIFO ring once gradDedupWindow is reached
	gradHead  int                    // ring head: next slot to evict/overwrite
	gradFree  []*gradEntry           // recycled entries (see gradEntry)
}

// NewServer returns a server that will answer from store once started.
func NewServer(store Store) *Server {
	s := &Server{
		store:     store,
		conns:     make(map[net.Conn]struct{}),
		gradSeen:  make(map[[gradTokenBytes]byte]*gradEntry, gradDedupWindow),
		gradOrder: make([][gradTokenBytes]byte, 0, gradDedupWindow),
		gradFree:  make([]*gradEntry, gradDedupWindow),
	}
	s.gradCond.L = &s.gradMu
	// Pre-fill the freelist with one slab of entries. The dedup window
	// holds at most gradDedupWindow entries, and eviction recycles one
	// entry per insert once it is full, so this slab makes the
	// steady-state gradient path allocation-free from the first push —
	// without it, the freelist only starts paying off after the window
	// has turned over once.
	slab := make([]gradEntry, gradDedupWindow)
	for i := range slab {
		s.gradFree[i] = &slab[i]
	}
	return s
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port)
// and serving in background goroutines. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	return s.StartListener(ln)
}

// StartListener serves on an already-bound listener — the hook that
// lets a fault injector (or any other wrapper) sit between the server
// and the network. The server takes ownership of ln.
func (s *Server) StartListener(ln net.Listener) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("transport: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// PullsServed returns how many pull requests this server answered.
func (s *Server) PullsServed() int64 { return s.pulls.Load() }

// GradsAccepted returns how many gradient pushes this server accepted.
func (s *Server) GradsAccepted() int64 { return s.grads.Load() }

// GradsDeduped returns how many gradient retransmits the server
// recognised and answered without re-applying.
func (s *Server) GradsDeduped() int64 { return s.gradDups.Load() }

// PingsServed returns how many heartbeat probes this server answered.
func (s *Server) PingsServed() int64 { return s.pings.Load() }

// SetEpochGate arms (or, with nil semantics unavailable, replaces)
// epoch fencing: requests older than the gate's epoch are rejected.
// Servers without a gate accept every epoch, which keeps the plain
// transport protocol unchanged.
func (s *Server) SetEpochGate(g EpochGate) { s.gate.Store(g) }

func (s *Server) epochGate() EpochGate {
	if g, ok := s.gate.Load().(EpochGate); ok {
		return g
	}
	return nil
}

// FencedRequests returns how many requests this server rejected for
// carrying a stale membership epoch.
func (s *Server) FencedRequests() int64 { return s.fenced.Load() }

// SetJoinHandler arms the JOIN admission path. Servers without a
// handler reject JOIN frames with an error.
func (s *Server) SetJoinHandler(h JoinHandler) { s.joiner.Store(h) }

func (s *Server) joinHandler() JoinHandler {
	if h, ok := s.joiner.Load().(JoinHandler); ok {
		return h
	}
	return nil
}

// JoinsServed returns how many JOIN requests this server admitted.
func (s *Server) JoinsServed() int64 { return s.joins.Load() }

// MigrationsStaged returns how many MIGRATE payloads this server's
// store accepted.
func (s *Server) MigrationsStaged() int64 { return s.migrations.Load() }

// ReplicasApplied returns how many REPL streams this server's store
// accepted.
func (s *Server) ReplicasApplied() int64 { return s.repls.Load() }

// ServesAnswered returns how many SERVE micro-batches this server's
// store computed and answered.
func (s *Server) ServesAnswered() int64 { return s.serves.Load() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// pongFlags holds the two possible PONG/FENCED flag payloads as static
// storage, so the hot ping/fence answers never allocate.
var pongFlags = [2][1]byte{{0}, {pongFlagReadmitted}}

func pongFlagPayload(readmitted bool) []byte {
	if readmitted {
		return pongFlags[1][:]
	}
	return pongFlags[0][:]
}

// connTask is one request dispatched to a connection worker.
type connTask struct {
	f     frame
	epoch uint64
}

// connState is the per-connection serving state: the buffered writer
// with its group-commit flush window, and a grow-on-demand worker pool.
//
// Workers replace the old goroutine-per-request dispatch so the steady
// state spawns nothing: an idle worker is popped from the stack and fed
// the frame over its private channel. The pool must grow without bound
// on demand — versioned pulls park inside the store until the wanted
// version publishes, so a fixed-size pool would deadlock the pipeline's
// backpressure — but in steady state the population settles at the peak
// number of concurrently parked-plus-busy requests and is reused.
type connState struct {
	s     *Server
	conn  net.Conn
	w     *bufio.Writer
	wmu   sync.Mutex
	fg    flushGroup
	shard uint32
	rel   BytesReleaser // non-nil when the store refcounts pull payloads

	idleMu   sync.Mutex
	idle     []chan connTask
	done     chan struct{} // closed when the read loop exits
	handlers sync.WaitGroup
}

// respond serialises one response under the write lock, group-commit
// batching the flush with any concurrent responders on this connection.
func (cs *connState) respond(resp frame) {
	cs.fg.enter()
	cs.wmu.Lock()
	err := writeFrameBuffered(cs.w, resp)
	if cs.fg.exit() && err == nil {
		err = cs.w.Flush()
	}
	cs.wmu.Unlock()
	if err != nil {
		cs.conn.Close() // unblocks the read loop
		return
	}
	cs.s.Counters.addSent(cs.shard, 4+frameHeaderBytes+len(resp.payload))
}

// dispatch hands one request to an idle worker, spawning a new one only
// when none is parked.
func (cs *connState) dispatch(f frame, epoch uint64) {
	cs.idleMu.Lock()
	var ch chan connTask
	if n := len(cs.idle); n > 0 {
		ch = cs.idle[n-1]
		cs.idle = cs.idle[:n-1]
	}
	cs.idleMu.Unlock()
	if ch == nil {
		ch = make(chan connTask, 1)
		cs.handlers.Add(1)
		go cs.worker(ch)
	}
	ch <- connTask{f: f, epoch: epoch}
}

func (cs *connState) worker(ch chan connTask) {
	defer cs.handlers.Done()
	for {
		select {
		case t := <-ch:
			cs.handle(t.f, t.epoch)
			cs.idleMu.Lock()
			cs.idle = append(cs.idle, ch)
			cs.idleMu.Unlock()
		case <-cs.done:
			return
		}
	}
}

// handle serves one dispatched request. It runs on a pool worker, so a
// slow store lookup (or a parked versioned pull) cannot head-of-line
// block the pipelined connection; the client matches responses by
// request id, so ordering is free to vary.
func (cs *connState) handle(f frame, epoch uint64) {
	s := cs.s
	switch f.typ {
	case msgPull:
		payload, err := s.store.ExpertBytes(f.id)
		if err != nil {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())})
			return
		}
		cs.respond(frame{typ: msgExpert, reqID: f.reqID, epoch: epoch, id: f.id, payload: payload})
		if cs.rel != nil {
			cs.rel.ReleaseExpertBytes(f.id, payload)
		}
	case msgPullV:
		version := binary.BigEndian.Uint64(f.payload[:versionedPullBytes])
		f.recycle()
		vs, ok := s.store.(VersionedStore)
		if !ok {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: store is not versioned")})
			return
		}
		payload, err := vs.ExpertBytesAt(f.id, version)
		if err != nil {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())})
			return
		}
		cs.respond(frame{typ: msgExpert, reqID: f.reqID, epoch: epoch, id: f.id, payload: payload})
		if cs.rel != nil {
			cs.rel.ReleaseExpertBytes(f.id, payload)
		}
	case msgGrad:
		err := s.applyGradient(f)
		// The store has consumed (or rejected) the payload and may not
		// retain it, so the read buffer can go back.
		f.recycle()
		if err != nil {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())})
			return
		}
		cs.respond(frame{typ: msgGradAck, reqID: f.reqID, epoch: epoch, id: f.id})
	case msgJoin:
		h := s.joinHandler()
		viewEpoch, admit, err := h.AdmitJoin(f.sender, f.payload)
		f.recycle()
		if err != nil {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, payload: []byte(err.Error())})
			return
		}
		s.joins.Add(1)
		cs.respond(frame{typ: msgAdmit, reqID: f.reqID, epoch: viewEpoch, payload: admit})
	case msgMigrate:
		sink := s.store.(MigrationSink)
		err := sink.AcceptMigration(f.id, f.payload)
		f.recycle()
		if err != nil {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())})
			return
		}
		s.migrations.Add(1)
		cs.respond(frame{typ: msgMigrateAck, reqID: f.reqID, epoch: epoch, id: f.id})
	case msgRepl:
		sink := s.store.(ReplicationSink)
		err := sink.AcceptReplica(f.id, f.payload)
		f.recycle()
		if err != nil {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())})
			return
		}
		s.repls.Add(1)
		cs.respond(frame{typ: msgReplAck, reqID: f.reqID, epoch: epoch, id: f.id})
	case msgServe:
		sv := s.store.(ServingStore)
		out, err := sv.ServeExpert(f.id, f.payload)
		f.recycle()
		if err != nil {
			cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())})
			return
		}
		s.serves.Add(1)
		cs.respond(frame{typ: msgServeOut, reqID: f.reqID, epoch: epoch, id: f.id, payload: out})
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	cs := &connState{
		s:     s,
		conn:  conn,
		w:     bufio.NewWriterSize(conn, 1<<16),
		shard: nextCounterShard(),
		done:  make(chan struct{}),
	}
	cs.rel, _ = s.store.(BytesReleaser)
	r := bufio.NewReaderSize(conn, 1<<16)
	defer cs.handlers.Wait()
	defer close(cs.done)

	for {
		f, err := readFrame(r)
		if err != nil {
			return
		}
		s.Counters.addReceived(cs.shard, 4+frameHeaderBytes+len(f.payload))

		// Epoch fence: a request stamped with a membership epoch older
		// than the gate's is answered FENCED before it can touch the
		// store. The response carries the server's epoch plus the
		// readmission bit, so a healed ex-member can catch up.
		// JOIN is exempt: a joiner bootstraps with epoch 0 by definition,
		// so fencing it would make admission impossible.
		gate := s.epochGate()
		var epoch uint64
		if gate != nil {
			epoch = gate.Epoch()
			if f.epoch < epoch && f.typ != msgJoin {
				s.fenced.Add(1)
				readmitted := gate.MachineAlive(f.sender)
				f.recycle()
				cs.respond(frame{typ: msgFenced, reqID: f.reqID, epoch: epoch, id: f.id, payload: pongFlagPayload(readmitted)})
				continue
			}
		}
		switch f.typ {
		case msgPull:
			s.pulls.Add(1)
			cs.dispatch(f, epoch)
		case msgPullV:
			s.pulls.Add(1)
			if len(f.payload) < versionedPullBytes {
				f.recycle()
				cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: short versioned pull")})
				continue
			}
			cs.dispatch(f, epoch)
		case msgGrad:
			cs.dispatch(f, epoch)
		case msgJoin:
			if s.joinHandler() == nil {
				f.recycle()
				cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, payload: []byte("transport: join not supported here")})
				continue
			}
			cs.dispatch(f, epoch)
		case msgMigrate:
			if _, ok := s.store.(MigrationSink); !ok {
				f.recycle()
				cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: store cannot stage migrations")})
				continue
			}
			cs.dispatch(f, epoch)
		case msgRepl:
			if _, ok := s.store.(ReplicationSink); !ok {
				f.recycle()
				cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: store cannot hold replicas")})
				continue
			}
			cs.dispatch(f, epoch)
		case msgServe:
			if _, ok := s.store.(ServingStore); !ok {
				f.recycle()
				cs.respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: store cannot serve inference")})
				continue
			}
			cs.dispatch(f, epoch)
		case msgPing:
			// Heartbeats piggyback on the data connection and never
			// touch the store; answer inline so liveness is observed
			// even while store handlers are busy. The PONG carries the
			// server's epoch and whether it considers the prober alive.
			s.pings.Add(1)
			readmitted := gate == nil || gate.MachineAlive(f.sender)
			cs.respond(frame{typ: msgPong, reqID: f.reqID, epoch: epoch, payload: pongFlagPayload(readmitted)})
		default:
			return // protocol violation: drop the connection
		}
	}
}

// applyGradient applies one GRAD frame exactly once. The payload
// starts with a 16-byte retransmission token; a token seen before is
// answered with the original outcome (waiting for it if the first
// application is still in flight) without touching the store.
func (s *Server) applyGradient(f frame) error {
	if len(f.payload) < gradTokenBytes {
		return fmt.Errorf("transport: gradient frame missing %d-byte token", gradTokenBytes)
	}
	var key [gradTokenBytes]byte
	copy(key[:], f.payload[:gradTokenBytes])

	s.gradMu.Lock()
	if e, ok := s.gradSeen[key]; ok {
		s.gradDups.Add(1)
		e.refs++
		for !e.done {
			s.gradCond.Wait()
		}
		err := e.err
		s.gradUnrefLocked(e)
		s.gradMu.Unlock()
		return err
	}
	e := s.gradEntryLocked()
	s.gradSeen[key] = e
	if len(s.gradOrder) < gradDedupWindow {
		s.gradOrder = append(s.gradOrder, key)
	} else {
		// The window is full: evict the oldest token in place. The ring
		// overwrite (rather than gradOrder[1:] plus append) keeps the
		// backing array fixed — front-slicing made every subsequent
		// append reallocate the whole window.
		old := s.gradOrder[s.gradHead]
		if oe, ok := s.gradSeen[old]; ok {
			delete(s.gradSeen, old)
			s.gradUnrefLocked(oe)
		}
		s.gradOrder[s.gradHead] = key
		s.gradHead++
		if s.gradHead == gradDedupWindow {
			s.gradHead = 0
		}
	}
	s.gradMu.Unlock()

	err := s.store.AddGradient(f.id, f.payload[gradTokenBytes:])
	if err == nil {
		s.grads.Add(1)
	}
	s.gradMu.Lock()
	e.err = err
	e.done = true
	if e.refs == 0 {
		// Already evicted with no waiters: recycle now. (Possible only
		// if the window turned over entirely while AddGradient ran.)
		s.gradFree = append(s.gradFree, e)
	} else {
		s.gradCond.Broadcast()
	}
	s.gradMu.Unlock()
	return err
}

// gradEntryLocked returns a fresh in-flight entry, reusing a recycled
// one when available. refs starts at 1: the dedup window's reference.
func (s *Server) gradEntryLocked() *gradEntry {
	if n := len(s.gradFree); n > 0 {
		e := s.gradFree[n-1]
		s.gradFree = s.gradFree[:n-1]
		e.err, e.done, e.refs = nil, false, 1
		return e
	}
	return &gradEntry{refs: 1}
}

// gradUnrefLocked drops one reference (a departing waiter or the
// window eviction) and recycles the entry once nothing can touch it.
func (s *Server) gradUnrefLocked(e *gradEntry) {
	e.refs--
	if e.refs == 0 && e.done {
		s.gradFree = append(s.gradFree, e)
	}
}

// Close stops the listener and all connections, waiting for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
