// Package transport implements the Janus pull protocol over real TCP
// sockets: the §6 implementation split of a socket control plane and a
// streamed data plane, reduced to one connection per peer pair (TCP
// carries both planes here, where the paper used a socket plus an RDMA
// queue pair — the protocol structure is identical, only the constants
// change).
//
// A Server owns experts and serves two request types: PULL (return the
// current bytes of an expert) and GRAD (accept a gradient contribution
// for an expert). A Client maintains one connection per remote peer,
// pipelines requests over it, merges concurrent pulls of the same
// expert (single flight, the Cache Manager behaviour of §5.1.2), and
// bounds its in-flight pulls with a credit window (§5.1.1).
//
// All exported types are safe for concurrent use.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Message types on the wire.
const (
	msgPull       = 0x01 // client -> server: request expert bytes
	msgExpert     = 0x02 // server -> client: expert payload
	msgGrad       = 0x03 // client -> server: gradient payload
	msgGradAck    = 0x04 // server -> client: gradient accepted
	msgPing       = 0x05 // client -> server: liveness probe (heartbeat)
	msgPong       = 0x06 // server -> client: liveness answer
	msgPullV      = 0x07 // client -> server: request expert bytes at a version
	msgFenced     = 0x08 // server -> client: request rejected, sender's epoch is stale
	msgJoin       = 0x09 // client -> server: new machine asks to be admitted
	msgAdmit      = 0x0A // server -> client: membership snapshot for an admitted joiner
	msgMigrate    = 0x0B // client -> server: stage a migrated expert's weights
	msgMigrateAck = 0x0C // server -> client: migrated weights staged
	msgRepl       = 0x0D // client -> server: versioned replica weight stream
	msgReplAck    = 0x0E // server -> client: replica stream applied
	msgError      = 0x7F // server -> client: request failed
)

// pongFlagReadmitted is set in a PONG/FENCED payload when the server's
// membership view considers the probing machine alive — the signal a
// previously fenced machine uses to rejoin after a partition heals.
const pongFlagReadmitted = 0x01

// maxFrameBytes bounds a frame so a corrupt length prefix cannot make
// a reader allocate unbounded memory. Experts in this repository are at
// most 8·1024²·4 bytes; 64 MiB leaves ample headroom.
const maxFrameBytes = 64 << 20

// ExpertID names one expert instance of one block.
type ExpertID struct {
	Block  uint32
	Expert uint32
}

func (id ExpertID) String() string { return fmt.Sprintf("b%d/e%d", id.Block, id.Expert) }

// frame is the unit of the wire protocol:
//
//	uint32 length (of everything after this field)
//	uint8  type
//	uint64 request id
//	uint64 membership epoch (sender's view on requests, server's on responses)
//	uint32 sender machine id
//	uint32 block, uint32 expert
//	payload bytes
type frame struct {
	typ     byte
	reqID   uint64
	epoch   uint64
	sender  uint32
	id      ExpertID
	payload []byte
	// buf is the pooled backing store of payload, set only when the
	// frame was read with a recyclable buffer. recycle() returns it to
	// the pool; payloads that escape to callers (msgExpert) leave buf
	// unrecycled, which is safe — the pool never requires a Put.
	buf *[]byte
}

const frameHeaderBytes = 1 + 8 + 8 + 4 + 4 + 4

// frameBufPool recycles frame read buffers. Header-only frames (PULL,
// PING, PONG, GRADACK) return their buffer inside readFrame; GRAD
// payloads are recycled by the server once the store has consumed them.
// Buffers are held behind a pointer so Put does not allocate.
var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4+frameHeaderBytes); return &b }}

func getFrameBuf(n int) *[]byte {
	bp := frameBufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// recycle returns the frame's pooled read buffer, if any. The caller
// must not touch f.payload afterwards.
func (f *frame) recycle() {
	if f.buf != nil {
		frameBufPool.Put(f.buf)
		f.buf, f.payload = nil, nil
	}
}

// writeFrame serialises f into w and flushes it. One flush per frame
// is deliberate: a previous optimization coalesced concurrent senders'
// flushes into one syscall, but a single faulted Write then swallowed
// a whole burst of frames at once, correlating losses across requests
// and defeating the per-request retry budget under fault injection.
func writeFrame(w *bufio.Writer, f frame) error {
	if len(f.payload) > maxFrameBytes-frameHeaderBytes {
		return fmt.Errorf("transport: frame payload %d exceeds limit", len(f.payload))
	}
	var hdr [4 + frameHeaderBytes]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameHeaderBytes+len(f.payload)))
	hdr[4] = f.typ
	binary.BigEndian.PutUint64(hdr[5:13], f.reqID)
	binary.BigEndian.PutUint64(hdr[13:21], f.epoch)
	binary.BigEndian.PutUint32(hdr[21:25], f.sender)
	binary.BigEndian.PutUint32(hdr[25:29], f.id.Block)
	binary.BigEndian.PutUint32(hdr[29:33], f.id.Expert)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < frameHeaderBytes || n > maxFrameBytes {
		return frame{}, fmt.Errorf("transport: invalid frame length %d", n)
	}
	bp := getFrameBuf(int(n))
	buf := *bp
	if _, err := io.ReadFull(r, buf); err != nil {
		frameBufPool.Put(bp)
		return frame{}, err
	}
	f := frame{
		typ:    buf[0],
		reqID:  binary.BigEndian.Uint64(buf[1:9]),
		epoch:  binary.BigEndian.Uint64(buf[9:17]),
		sender: binary.BigEndian.Uint32(buf[17:21]),
		id: ExpertID{
			Block:  binary.BigEndian.Uint32(buf[21:25]),
			Expert: binary.BigEndian.Uint32(buf[25:29]),
		},
	}
	if n > frameHeaderBytes {
		f.payload = buf[frameHeaderBytes:]
		f.buf = bp
	} else {
		// Header-only frame: nothing aliases the buffer, recycle now.
		frameBufPool.Put(bp)
	}
	return f, nil
}

// Store is the server-side source of truth the transport serves.
type Store interface {
	// ExpertBytes returns the current serialized weights of an expert,
	// or an error if the expert is not hosted here.
	ExpertBytes(id ExpertID) ([]byte, error)
	// AddGradient accepts one gradient contribution for a hosted expert.
	// The payload slice is only valid for the duration of the call — the
	// transport recycles its backing buffer afterwards — so an
	// implementation that needs the bytes later must copy them.
	AddGradient(id ExpertID, payload []byte) error
}

// VersionedStore is an optional extension of Store for stores whose
// expert weights advance through numbered versions (the live trainer's
// double-buffered cache manager). ExpertBytesAt may block until the
// requested version is published — that wait is the pipeline's
// backpressure: a puller one step ahead parks server-side until the
// owner's merge for the previous step lands, instead of spinning or
// receiving torn weights. An implementation must unblock waiters (with
// an error) when it stops hosting the expert or shuts down. The server
// runs each request in its own goroutine, so a parked versioned pull
// never head-of-line blocks the connection.
type VersionedStore interface {
	Store
	ExpertBytesAt(id ExpertID, version uint64) ([]byte, error)
}

// versionedPullBytes is the payload of a msgPullV request: the wanted
// version as a big-endian uint64.
const versionedPullBytes = 8

// Counters tracks wire traffic in bytes, usable concurrently.
type Counters struct {
	sent, received atomic.Int64
}

// Sent returns total payload+header bytes written.
func (c *Counters) Sent() int64 { return c.sent.Load() }

// Received returns total payload+header bytes read.
func (c *Counters) Received() int64 { return c.received.Load() }

func (c *Counters) addSent(n int)     { c.sent.Add(int64(n)) }
func (c *Counters) addReceived(n int) { c.received.Add(int64(n)) }

// gradDedupWindow bounds the server's memory of recently seen gradient
// request ids. A retransmit arriving after its id was evicted would be
// re-applied, so the window is sized far beyond any plausible number of
// in-flight-plus-retried gradients.
const gradDedupWindow = 4096

// gradTokenBytes prefixes every GRAD payload: 8 bytes of client id and
// 8 bytes of per-client sequence number. The token survives
// reconnection (unlike the per-connection request id), which is what
// makes a retried gradient safe: the server remembers the token and
// replays the original outcome instead of applying the payload twice.
const gradTokenBytes = 16

// gradEntry is the server's record of one gradient token: done closes
// when the first application finishes, err is its outcome.
type gradEntry struct {
	done chan struct{}
	err  error
}

// JoinHandler is the server's hook for admitting new machines. A JOIN
// frame (the only frame exempt from epoch fencing — a joiner has no
// epoch yet) carries the joiner's listen address; the handler decides
// admission (typically: only if this member's view holds quorum) and
// returns its membership epoch plus an encoded membership snapshot the
// joiner bootstraps from. Servers without a handler reject JOIN.
type JoinHandler interface {
	AdmitJoin(sender uint32, payload []byte) (epoch uint64, admit []byte, err error)
}

// MigrationSink is an optional extension of Store for stores that can
// stage a migrated expert's weights ahead of an ownership handoff. The
// payload (a checkpoint wire stream) is only valid for the duration of
// the call; implementations must copy what they keep.
type MigrationSink interface {
	AcceptMigration(id ExpertID, payload []byte) error
}

// ReplicationSink is an optional extension of Store for stores that can
// hold synchronously replicated copies of experts they do not own. The
// payload (an EncodeRepl stream: version + canonical expert bytes) is
// only valid for the duration of the call; implementations must copy
// what they keep, and must apply version streams monotonically so a
// delayed retransmission can never roll a replica backwards.
type ReplicationSink interface {
	AcceptReplica(id ExpertID, payload []byte) error
}

// EpochGate is the server's hook into a membership layer. When set,
// every request carrying an epoch older than Epoch() is rejected with
// a FENCED response instead of touching the store — a zombie ex-owner
// that missed a failover can therefore never merge stale gradients.
// MachineAlive feeds the readmission bit in PONG/FENCED responses so a
// fenced machine learns when the membership view has taken it back.
type EpochGate interface {
	Epoch() uint64
	MachineAlive(machine uint32) bool
}

// Server answers pull and gradient requests for the experts in a Store.
type Server struct {
	store Store

	mu         sync.Mutex
	ln         net.Listener
	conns      map[net.Conn]struct{}
	closed     bool
	wg         sync.WaitGroup
	pulls      atomic.Int64
	grads      atomic.Int64
	gradDups   atomic.Int64
	pings      atomic.Int64
	fenced     atomic.Int64
	joins      atomic.Int64
	migrations atomic.Int64
	repls      atomic.Int64
	gate       atomic.Value // EpochGate
	joiner     atomic.Value // JoinHandler
	Counters   Counters

	gradMu    sync.Mutex
	gradSeen  map[[gradTokenBytes]byte]*gradEntry
	gradOrder [][gradTokenBytes]byte
}

// NewServer returns a server that will answer from store once started.
func NewServer(store Store) *Server {
	return &Server{
		store:    store,
		conns:    make(map[net.Conn]struct{}),
		gradSeen: make(map[[gradTokenBytes]byte]*gradEntry),
	}
}

// Start begins listening on addr ("127.0.0.1:0" for an ephemeral port)
// and serving in background goroutines. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	return s.StartListener(ln)
}

// StartListener serves on an already-bound listener — the hook that
// lets a fault injector (or any other wrapper) sit between the server
// and the network. The server takes ownership of ln.
func (s *Server) StartListener(ln net.Listener) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("transport: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// PullsServed returns how many pull requests this server answered.
func (s *Server) PullsServed() int64 { return s.pulls.Load() }

// GradsAccepted returns how many gradient pushes this server accepted.
func (s *Server) GradsAccepted() int64 { return s.grads.Load() }

// GradsDeduped returns how many gradient retransmits the server
// recognised and answered without re-applying.
func (s *Server) GradsDeduped() int64 { return s.gradDups.Load() }

// PingsServed returns how many heartbeat probes this server answered.
func (s *Server) PingsServed() int64 { return s.pings.Load() }

// SetEpochGate arms (or, with nil semantics unavailable, replaces)
// epoch fencing: requests older than the gate's epoch are rejected.
// Servers without a gate accept every epoch, which keeps the plain
// transport protocol unchanged.
func (s *Server) SetEpochGate(g EpochGate) { s.gate.Store(g) }

func (s *Server) epochGate() EpochGate {
	if g, ok := s.gate.Load().(EpochGate); ok {
		return g
	}
	return nil
}

// FencedRequests returns how many requests this server rejected for
// carrying a stale membership epoch.
func (s *Server) FencedRequests() int64 { return s.fenced.Load() }

// SetJoinHandler arms the JOIN admission path. Servers without a
// handler reject JOIN frames with an error.
func (s *Server) SetJoinHandler(h JoinHandler) { s.joiner.Store(h) }

func (s *Server) joinHandler() JoinHandler {
	if h, ok := s.joiner.Load().(JoinHandler); ok {
		return h
	}
	return nil
}

// JoinsServed returns how many JOIN requests this server admitted.
func (s *Server) JoinsServed() int64 { return s.joins.Load() }

// MigrationsStaged returns how many MIGRATE payloads this server's
// store accepted.
func (s *Server) MigrationsStaged() int64 { return s.migrations.Load() }

// ReplicasApplied returns how many REPL streams this server's store
// accepted.
func (s *Server) ReplicasApplied() int64 { return s.repls.Load() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	r := bufio.NewReaderSize(conn, 1<<16)
	w := bufio.NewWriterSize(conn, 1<<16)
	var wmu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()

	// Each request is handled in its own goroutine so a slow store
	// lookup cannot head-of-line block the pipelined connection; the
	// client matches responses by request id, so ordering is free to
	// vary. The write path is serialised by wmu.
	respond := func(resp frame) {
		wmu.Lock()
		err := writeFrame(w, resp)
		wmu.Unlock()
		if err != nil {
			conn.Close() // unblocks the read loop
			return
		}
		s.Counters.addSent(4 + frameHeaderBytes + len(resp.payload))
	}
	for {
		f, err := readFrame(r)
		if err != nil {
			return
		}
		s.Counters.addReceived(4 + frameHeaderBytes + len(f.payload))

		// Epoch fence: a request stamped with a membership epoch older
		// than the gate's is answered FENCED before it can touch the
		// store. The response carries the server's epoch plus the
		// readmission bit, so a healed ex-member can catch up.
		// JOIN is exempt: a joiner bootstraps with epoch 0 by definition,
		// so fencing it would make admission impossible.
		gate := s.epochGate()
		var epoch uint64
		if gate != nil {
			epoch = gate.Epoch()
			if f.epoch < epoch && f.typ != msgJoin {
				s.fenced.Add(1)
				var flags byte
				if gate.MachineAlive(f.sender) {
					flags = pongFlagReadmitted
				}
				f.recycle()
				respond(frame{typ: msgFenced, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte{flags}})
				continue
			}
		}
		switch f.typ {
		case msgPull:
			s.pulls.Add(1)
			handlers.Add(1)
			go func(f frame, epoch uint64) {
				defer handlers.Done()
				payload, err := s.store.ExpertBytes(f.id)
				resp := frame{typ: msgExpert, reqID: f.reqID, epoch: epoch, id: f.id, payload: payload}
				if err != nil {
					resp = frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())}
				}
				respond(resp)
			}(f, epoch)
		case msgPullV:
			s.pulls.Add(1)
			if len(f.payload) < versionedPullBytes {
				respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: short versioned pull")})
				f.recycle()
				continue
			}
			version := binary.BigEndian.Uint64(f.payload[:versionedPullBytes])
			f.recycle()
			vs, ok := s.store.(VersionedStore)
			if !ok {
				respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: store is not versioned")})
				continue
			}
			handlers.Add(1)
			go func(f frame, epoch uint64) {
				defer handlers.Done()
				payload, err := vs.ExpertBytesAt(f.id, version)
				resp := frame{typ: msgExpert, reqID: f.reqID, epoch: epoch, id: f.id, payload: payload}
				if err != nil {
					resp = frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())}
				}
				respond(resp)
			}(f, epoch)
		case msgGrad:
			handlers.Add(1)
			go func(f frame, epoch uint64) {
				defer handlers.Done()
				err := s.applyGradient(f)
				// The store has consumed (or rejected) the payload and
				// may not retain it, so the read buffer can go back.
				f.recycle()
				resp := frame{typ: msgGradAck, reqID: f.reqID, epoch: epoch, id: f.id}
				if err != nil {
					resp = frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())}
				}
				respond(resp)
			}(f, epoch)
		case msgJoin:
			h := s.joinHandler()
			if h == nil {
				f.recycle()
				respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, payload: []byte("transport: join not supported here")})
				continue
			}
			handlers.Add(1)
			go func(f frame) {
				defer handlers.Done()
				viewEpoch, admit, err := h.AdmitJoin(f.sender, f.payload)
				f.recycle()
				if err != nil {
					respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, payload: []byte(err.Error())})
					return
				}
				s.joins.Add(1)
				respond(frame{typ: msgAdmit, reqID: f.reqID, epoch: viewEpoch, payload: admit})
			}(f)
		case msgMigrate:
			sink, ok := s.store.(MigrationSink)
			if !ok {
				f.recycle()
				respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: store cannot stage migrations")})
				continue
			}
			handlers.Add(1)
			go func(f frame, epoch uint64) {
				defer handlers.Done()
				err := sink.AcceptMigration(f.id, f.payload)
				f.recycle()
				resp := frame{typ: msgMigrateAck, reqID: f.reqID, epoch: epoch, id: f.id}
				if err != nil {
					resp = frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())}
				} else {
					s.migrations.Add(1)
				}
				respond(resp)
			}(f, epoch)
		case msgRepl:
			sink, ok := s.store.(ReplicationSink)
			if !ok {
				f.recycle()
				respond(frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte("transport: store cannot hold replicas")})
				continue
			}
			handlers.Add(1)
			go func(f frame, epoch uint64) {
				defer handlers.Done()
				err := sink.AcceptReplica(f.id, f.payload)
				f.recycle()
				resp := frame{typ: msgReplAck, reqID: f.reqID, epoch: epoch, id: f.id}
				if err != nil {
					resp = frame{typ: msgError, reqID: f.reqID, epoch: epoch, id: f.id, payload: []byte(err.Error())}
				} else {
					s.repls.Add(1)
				}
				respond(resp)
			}(f, epoch)
		case msgPing:
			// Heartbeats piggyback on the data connection and never
			// touch the store; answer inline so liveness is observed
			// even while store handlers are busy. The PONG carries the
			// server's epoch and whether it considers the prober alive.
			s.pings.Add(1)
			flags := byte(pongFlagReadmitted)
			if gate != nil && !gate.MachineAlive(f.sender) {
				flags = 0
			}
			respond(frame{typ: msgPong, reqID: f.reqID, epoch: epoch, payload: []byte{flags}})
		default:
			return // protocol violation: drop the connection
		}
	}
}

// applyGradient applies one GRAD frame exactly once. The payload
// starts with a 16-byte retransmission token; a token seen before is
// answered with the original outcome (waiting for it if the first
// application is still in flight) without touching the store.
func (s *Server) applyGradient(f frame) error {
	if len(f.payload) < gradTokenBytes {
		return fmt.Errorf("transport: gradient frame missing %d-byte token", gradTokenBytes)
	}
	var key [gradTokenBytes]byte
	copy(key[:], f.payload[:gradTokenBytes])

	s.gradMu.Lock()
	if e, ok := s.gradSeen[key]; ok {
		s.gradMu.Unlock()
		s.gradDups.Add(1)
		<-e.done
		return e.err
	}
	e := &gradEntry{done: make(chan struct{})}
	s.gradSeen[key] = e
	s.gradOrder = append(s.gradOrder, key)
	if len(s.gradOrder) > gradDedupWindow {
		delete(s.gradSeen, s.gradOrder[0])
		s.gradOrder = s.gradOrder[1:]
	}
	s.gradMu.Unlock()

	e.err = s.store.AddGradient(f.id, f.payload[gradTokenBytes:])
	if e.err == nil {
		s.grads.Add(1)
	}
	close(e.done)
	return e.err
}

// Close stops the listener and all connections, waiting for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}
