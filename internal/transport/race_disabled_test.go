//go:build !race

package transport

// raceEnabled gates the allocation-regression tests; see the race
// variant of this file.
const raceEnabled = false
