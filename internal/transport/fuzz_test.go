package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes serialises a frame the way the wire does, for seeding.
func frameBytes(f frame) []byte {
	var out bytes.Buffer
	if err := writeFrame(bufio.NewWriter(&out), f); err != nil {
		panic(err)
	}
	return out.Bytes()
}

// FuzzReadFrame throws arbitrary byte streams at the frame decoder: it
// must never panic, never allocate from a hostile length prefix, and
// must round-trip every frame it does accept through writeFrame
// byte-identically.
func FuzzReadFrame(f *testing.F) {
	valid := []frame{
		{typ: msgPull, reqID: 1, epoch: 7, sender: 2, id: ExpertID{Block: 1, Expert: 9}},
		{typ: msgGrad, reqID: 2, epoch: 0, sender: 0, id: ExpertID{Expert: 3},
			payload: bytes.Repeat([]byte{0xAB}, gradTokenBytes+4)},
		{typ: msgPong, reqID: 3, epoch: 42, payload: []byte{pongFlagReadmitted}},
		{typ: msgFenced, reqID: 4, epoch: 9, payload: []byte{0}},
		{typ: msgExpert, reqID: 5, payload: []byte{1, 2, 3, 4}},
	}
	var seeds [][]byte
	for _, fr := range valid {
		seeds = append(seeds, frameBytes(fr))
	}
	// Two frames back to back: decoding must resynchronise correctly.
	seeds = append(seeds, append(append([]byte{}, seeds[0]...), seeds[2]...))
	// PR 1 corruption corpus: truncations, zero/huge/undersized length
	// prefixes, and flipped type bytes.
	seeds = append(seeds,
		seeds[0][:3],
		seeds[1][:len(seeds[1])-2],
		[]byte{0, 0, 0, 0},
		[]byte{0xFF, 0xFF, 0xFF, 0xFF, 1},
		[]byte{0, 0, 0, 5, 9, 9, 9, 9, 9},
	)
	if len(seeds) > 0 {
		corrupted := append([]byte{}, seeds[0]...)
		corrupted[4] ^= 0xFF
		seeds = append(seeds, corrupted)
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 4; i++ {
			fr, err := readFrame(r)
			if err != nil {
				return // rejection is fine; panics and hangs are not
			}
			if len(fr.payload) > maxFrameBytes {
				t.Fatalf("decoded payload of %d bytes past the frame cap", len(fr.payload))
			}
			// Round-trip: re-encoding an accepted frame must reproduce
			// the exact bytes the decoder consumed.
			reenc := frameBytes(fr)
			consumed := 4 + frameHeaderBytes + len(fr.payload)
			if !bytes.Equal(reenc, data[:consumed]) {
				t.Fatalf("round-trip mismatch: %x != %x", reenc, data[:consumed])
			}
			data = data[consumed:]
			fr.recycle()
		}
	})
}

// FuzzReadFrame's length check is load-bearing: make sure the constant
// matches the writer (a drifting header would silently corrupt every
// frame, and the fuzzer's round-trip property depends on it).
func TestFrameHeaderConstantMatchesWriter(t *testing.T) {
	b := frameBytes(frame{typ: msgPull})
	if len(b) != 4+frameHeaderBytes {
		t.Fatalf("header-only frame is %d bytes, want %d", len(b), 4+frameHeaderBytes)
	}
	if got := binary.BigEndian.Uint32(b[0:4]); got != frameHeaderBytes {
		t.Fatalf("length prefix %d, want %d", got, frameHeaderBytes)
	}
}
