package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
)

func TestReplRoundTrip(t *testing.T) {
	expert := []byte{9, 8, 7, 6, 5, 4}
	raw, err := EncodeRepl(42, expert)
	if err != nil {
		t.Fatal(err)
	}
	ver, got, err := DecodeRepl(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 42 {
		t.Fatalf("version %d, want 42", ver)
	}
	if !bytes.Equal(got, expert) {
		t.Fatalf("expert bytes %v, want %v", got, expert)
	}
	// Zero-length snapshots are legal (an expert with no parameters is
	// degenerate but must not crash the decoder).
	raw, err = EncodeRepl(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, got, err = DecodeRepl(raw); err != nil || len(got) != 0 {
		t.Fatalf("empty snapshot: got %v, %v", got, err)
	}
}

func TestReplRejectsCorruption(t *testing.T) {
	raw, err := EncodeRepl(7, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(raw); i++ {
		if _, _, err := DecodeRepl(raw[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	if _, _, err := DecodeRepl(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	// A hostile length must be rejected before allocating or slicing.
	bad := append([]byte{}, raw...)
	binary.BigEndian.PutUint32(bad[8:12], 0xFFFFFFFF)
	if _, _, err := DecodeRepl(bad); err == nil {
		t.Fatal("hostile length decoded successfully")
	}
}

// replStore is a memStore that also accepts replica streams.
type replStore struct {
	*memStore
	mu       sync.Mutex
	replicas map[ExpertID][]byte
	versions map[ExpertID]uint64
}

func (s *replStore) AcceptReplica(id ExpertID, payload []byte) error {
	ver, expert, err := DecodeRepl(payload)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replicas == nil {
		s.replicas = make(map[ExpertID][]byte)
		s.versions = make(map[ExpertID]uint64)
	}
	if cur, ok := s.versions[id]; ok && ver < cur {
		return nil // stale retransmission: monotone, idempotent
	}
	cp := make([]byte, len(expert))
	copy(cp, expert)
	s.replicas[id] = cp
	s.versions[id] = ver
	return nil
}

func TestReplicateAppliesStream(t *testing.T) {
	store := &replStore{memStore: newMemStore()}
	srv, addr := startServer(t, store)

	c := NewClient(2)
	defer c.Close()
	id := ExpertID{Block: 1, Expert: 4}
	expert := []byte{10, 20, 30}
	payload, err := EncodeRepl(3, expert)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replicate(ctx, addr, id, payload); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	got, ver := store.replicas[id], store.versions[id]
	store.mu.Unlock()
	if !bytes.Equal(got, expert) || ver != 3 {
		t.Fatalf("replica %v@%d, want %v@3", got, ver, expert)
	}
	if srv.ReplicasApplied() != 1 {
		t.Fatalf("ReplicasApplied = %d, want 1", srv.ReplicasApplied())
	}

	// An older version arriving late must not roll the replica back.
	older, err := EncodeRepl(2, []byte{99})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replicate(ctx, addr, id, older); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	got, ver = store.replicas[id], store.versions[id]
	store.mu.Unlock()
	if !bytes.Equal(got, expert) || ver != 3 {
		t.Fatalf("stale stream regressed replica to %v@%d", got, ver)
	}
}

func TestReplicateToPlainStoreIsRemoteError(t *testing.T) {
	_, addr := startServer(t, newMemStore())
	c := newFastClient(2, 3)
	defer c.Close()
	err := c.Replicate(ctx, addr, ExpertID{Expert: 1}, []byte{9})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestReplicateIsFenced(t *testing.T) {
	store := &replStore{memStore: newMemStore()}
	srv, addr := startServer(t, store)
	srv.SetEpochGate(epochStamp(5))

	c := newFastClient(2, 1)
	defer c.Close()
	payload, err := EncodeRepl(1, []byte{9})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Replicate(ctx, addr, ExpertID{Expert: 1}, payload); !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("err = %v, want fenced", err)
	}
	c.SetEpoch(5)
	if err := c.Replicate(ctx, addr, ExpertID{Expert: 1}, payload); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeRepl drives the REPL decoder with arbitrary bytes: it must
// never panic or over-allocate, and anything it accepts must re-encode
// to the identical canonical payload.
func FuzzDecodeRepl(f *testing.F) {
	if raw, err := EncodeRepl(7, []byte{1, 2, 3, 4}); err == nil {
		f.Add(raw)
	}
	if raw, err := EncodeRepl(0, nil); err == nil {
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ver, expert, err := DecodeRepl(raw)
		if err != nil {
			return
		}
		re, err := EncodeRepl(ver, expert)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d bytes out", len(raw), len(re))
		}
	})
}
