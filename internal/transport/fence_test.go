package transport

import (
	"errors"
	"testing"
	"time"
)

// stubGate is a fixed membership view for fencing tests.
type stubGate struct {
	epoch uint64
	alive map[uint32]bool
}

func (g stubGate) Epoch() uint64              { return g.epoch }
func (g stubGate) MachineAlive(m uint32) bool { return g.alive[m] }

// A gated server rejects every request type stamped with a stale epoch
// as a typed, terminal ErrFencedEpoch carrying the server's epoch and
// the sender's readmission state — and burns no retry budget doing it.
func TestEpochFencingOnWire(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 3}
	store.experts[id] = []byte{1, 2, 3}
	srv, addr := startServer(t, store)
	srv.SetEpochGate(stubGate{epoch: 5, alive: map[uint32]bool{1: true}})

	c := NewClientOptions(Options{
		Credits: 2, MaxAttempts: 3, RequestTimeout: 2 * time.Second, MachineID: 2,
	})
	defer c.Close()
	c.SetEpoch(4) // one behind the server

	var fe *FencedEpochError
	if _, err := c.Pull(ctx, addr, id); !errors.As(err, &fe) {
		t.Fatalf("stale-epoch pull error = %v, want FencedEpochError", err)
	} else if !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("FencedEpochError does not unwrap to ErrFencedEpoch: %v", err)
	} else if fe.RemoteEpoch != 5 || fe.Readmitted {
		t.Fatalf("fence reported epoch %d readmitted %v, want 5/false", fe.RemoteEpoch, fe.Readmitted)
	}
	if err := c.PushGradient(ctx, addr, id, []byte{0xAA}); !errors.As(err, &fe) {
		t.Fatalf("stale-epoch push error = %v, want FencedEpochError", err)
	}
	if info, err := c.Ping(ctx, addr); !errors.As(err, &fe) {
		t.Fatalf("stale-epoch ping error = %v, want FencedEpochError", err)
	} else if info.Epoch != 5 {
		t.Fatalf("fenced ping reported epoch %d, want 5", info.Epoch)
	}

	// Fencing is terminal: one rejection per request, no retries.
	if got := srv.FencedRequests(); got != 3 {
		t.Fatalf("FencedRequests = %d, want 3 (fence must not burn the retry budget)", got)
	}
	// The store never saw the fenced push.
	store.mu.Lock()
	applied := store.grads[id]
	store.mu.Unlock()
	if applied != 0 {
		t.Fatalf("fenced gradient reached the store %d times", applied)
	}

	// A readmitted sender is told so — the rejoin signal.
	c2 := NewClientOptions(Options{Credits: 2, RequestTimeout: 2 * time.Second, MachineID: 1})
	defer c2.Close()
	c2.SetEpoch(4)
	if _, err := c2.Ping(ctx, addr); !errors.As(err, &fe) {
		t.Fatalf("readmitted stale ping error = %v, want FencedEpochError", err)
	} else if !fe.Readmitted {
		t.Fatal("readmitted sender's fence did not carry the readmitted flag")
	}

	// Adopting the server's epoch unfences the same connection.
	c.SetEpoch(5)
	payload, err := c.Pull(ctx, addr, id)
	if err != nil {
		t.Fatalf("current-epoch pull after fence: %v", err)
	}
	if len(payload) != 3 {
		t.Fatalf("pull after unfence returned %d bytes, want 3", len(payload))
	}

	// An ungated server keeps accepting any epoch (plain deployments).
	srv2, addr2 := startServer(t, store)
	c.SetEpoch(0)
	if _, err := c.Pull(ctx, addr2, id); err != nil {
		t.Fatalf("ungated server rejected epoch 0: %v", err)
	}
	if srv2.FencedRequests() != 0 {
		t.Fatal("ungated server counted fenced requests")
	}
}

// Per-peer EWMA scoring flags a gray failure — high smoothed latency or
// loss — and stays quiet for healthy peers and when disabled.
func TestPeerScoringFlagsSlowAndLossyPeers(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 1}
	store.experts[id] = []byte{9}
	_, addr := startServer(t, store)

	// SlowAfter of 1ns: any real round trip exceeds it.
	c := NewClientOptions(Options{Credits: 2, RequestTimeout: time.Second, SlowAfter: time.Nanosecond})
	defer c.Close()
	if c.PeerSlow(addr) {
		t.Fatal("peer flagged slow before any observation")
	}
	if _, err := c.Pull(ctx, addr, id); err != nil {
		t.Fatal(err)
	}
	if !c.PeerSlow(addr) {
		t.Fatalf("peer not flagged with EWMA latency %v over a 1ns bound", c.PeerLatencyEWMA(addr))
	}
	if c.PeerLatencyEWMA(addr) <= 0 {
		t.Fatal("EWMA latency not recorded")
	}

	// A generous bound keeps a healthy peer unflagged.
	c2 := NewClientOptions(Options{Credits: 2, RequestTimeout: time.Second, SlowAfter: time.Hour})
	defer c2.Close()
	if _, err := c2.Pull(ctx, addr, id); err != nil {
		t.Fatal(err)
	}
	if c2.PeerSlow(addr) {
		t.Fatal("healthy peer flagged slow under a 1h bound")
	}

	// Loss-based flagging: repeated failures push the EWMA loss rate
	// past 1/2 even when no latency sample ever lands.
	dead := "127.0.0.1:1"
	for i := 0; i < 4; i++ {
		c2.Ping(ctx, dead)
	}
	if !c2.PeerSlow(dead) {
		t.Fatal("unreachable peer not flagged by EWMA loss")
	}

	// Scoring disabled (SlowAfter zero): never flagged.
	c3 := NewClientOptions(Options{Credits: 2, RequestTimeout: time.Second})
	defer c3.Close()
	if _, err := c3.Pull(ctx, addr, id); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c3.Ping(ctx, dead)
	}
	if c3.PeerSlow(addr) || c3.PeerSlow(dead) {
		t.Fatal("peer flagged slow with scoring disabled")
	}
}
