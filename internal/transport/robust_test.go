package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"janus/internal/faultinject"
)

// startInjectedServer starts a server whose listener is wrapped by the
// injector under label.
func startInjectedServer(t *testing.T, store Store, in *faultinject.Injector, label string) (*Server, string) {
	t.Helper()
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.StartListener(in.WrapListener(ln, label))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// Satellite regression: a peerConn whose read loop failed must be
// evicted, so a server restart on the same address is transparent to
// an existing client.
func TestServerRestartBetweenPulls(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 3}
	store.experts[id] = []byte{1, 2, 3}
	srv1 := NewServer(store)
	addr, err := srv1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := newFastClient(4, 4)
	defer c.Close()
	if _, err := c.Pull(ctx, addr, id); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	srv2 := NewServer(store)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	got, err := c.Pull(ctx, addr, id)
	if err != nil {
		t.Fatalf("pull after server restart: %v", err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("wrong payload %v", got)
	}
	if c.Robust.Snapshot().Reconnects == 0 {
		t.Fatal("restart not counted as a reconnect")
	}
}

// Satellite regression: Close must fail fast callers blocked on the
// credit window instead of deadlocking them.
func TestCloseUnblocksCreditWaiters(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 1}
	store.experts[id] = []byte{1}
	gate := make(chan struct{})
	store.serveHook = func() { <-gate }
	_, addr := startServer(t, store)
	t.Cleanup(func() { close(gate) })

	c := NewClientOptions(Options{Credits: 1, RequestTimeout: 10 * time.Second})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct experts so the single flight doesn't merge them;
			// all but one block on the exhausted credit window.
			_, errs[i] = c.Pull(ctx, addr, ExpertID{Expert: uint32(i + 1)})
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the pulls park
	done := make(chan struct{})
	go func() { c.Close(); wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close left Pull callers blocked on credits")
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("pull %d succeeded after close", i)
		}
	}
}

// A mid-frame connection reset is retried transparently: the injector
// writes half the response frame and kills the connection; the retry
// over a fresh connection succeeds.
func TestMidFrameResetRetried(t *testing.T) {
	in := faultinject.New(3)
	in.AddRule(faultinject.Rule{Label: "srv", Times: 1, Fault: faultinject.Fault{ResetProb: 1}})
	store := newMemStore()
	id := ExpertID{Expert: 5}
	store.experts[id] = bytes.Repeat([]byte{9}, 256<<10) // spans several writes
	_, addr := startInjectedServer(t, store, in, "srv")

	c := newFastClient(4, 4)
	defer c.Close()
	got, err := c.Pull(ctx, addr, id)
	if err != nil {
		t.Fatalf("pull did not survive mid-frame reset: %v", err)
	}
	if !bytes.Equal(got, store.experts[id]) {
		t.Fatal("payload mismatch after retry")
	}
	snap := c.Robust.Snapshot()
	if snap.Retries == 0 || snap.Reconnects == 0 {
		t.Fatalf("expected retry+reconnect, got %v", snap)
	}
}

// A corrupted response frame (flipped length prefix) is rejected by the
// client's bounded reader and the pull is retried.
func TestCorruptFrameRejectedAndRetried(t *testing.T) {
	in := faultinject.New(4)
	in.AddRule(faultinject.Rule{Label: "srv", Times: 1, Fault: faultinject.Fault{CorruptProb: 1}})
	store := newMemStore()
	id := ExpertID{Expert: 6}
	store.experts[id] = []byte{4, 5, 6}
	_, addr := startInjectedServer(t, store, in, "srv")

	c := newFastClient(4, 4)
	defer c.Close()
	got, err := c.Pull(ctx, addr, id)
	if err != nil {
		t.Fatalf("pull did not survive corrupt frame: %v", err)
	}
	if !bytes.Equal(got, []byte{4, 5, 6}) {
		t.Fatalf("wrong payload %v", got)
	}
	if c.Robust.Snapshot().Retries == 0 {
		t.Fatal("corrupt frame did not trigger a retry")
	}
}

// The server's reader drops a connection that announces an oversized
// frame, before allocating for it.
func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := startServer(t, newMemStore())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xFFFFFFF0)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	} else if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		// Any prompt close is fine; a timeout would mean it hung.
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			t.Fatal("server hung instead of dropping the connection")
		}
	}
}

// Exactly-once gradients: the injector drops the first ack, the client
// times out and retries with the same retransmission token, and the
// server recognises the duplicate — the store applies it once.
func TestGradRetriedAppliedOnce(t *testing.T) {
	in := faultinject.New(5)
	in.AddRule(faultinject.Rule{Label: "srv", Times: 1, Fault: faultinject.Fault{DropProb: 1}})
	store := newMemStore()
	id := ExpertID{Expert: 2}
	store.experts[id] = []byte{1}
	srv, addr := startInjectedServer(t, store, in, "srv")

	c := NewClientOptions(Options{
		Credits:        2,
		RequestTimeout: 150 * time.Millisecond,
		MaxAttempts:    4,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	})
	defer c.Close()
	if err := c.PushGradient(ctx, addr, id, []byte{0xAA}); err != nil {
		t.Fatalf("push did not survive a lost ack: %v", err)
	}
	store.mu.Lock()
	applied := store.grads[id]
	store.mu.Unlock()
	if applied != 1 {
		t.Fatalf("gradient applied %d times, want exactly 1", applied)
	}
	if srv.GradsAccepted() != 1 {
		t.Fatalf("server accepted %d grads, want 1", srv.GradsAccepted())
	}
	if srv.GradsDeduped() == 0 {
		t.Fatal("retransmit was not recognised as a duplicate")
	}
	if c.Robust.Snapshot().Timeouts == 0 {
		t.Fatal("lost ack did not register as a timeout")
	}
}

// Raw wire check: two GRAD frames with the same token are acked twice
// but applied once, independent of client retry timing.
func TestGradDedupOnWire(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 7}
	store.experts[id] = []byte{1}
	srv, addr := startServer(t, store)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	payload := make([]byte, gradTokenBytes+1)
	payload[gradTokenBytes] = 0x55 // token = 16 zero bytes, same both times
	send := func(reqID uint64) {
		n := uint32(frameHeaderBytes + len(payload))
		buf := make([]byte, 4+n)
		binary.BigEndian.PutUint32(buf[0:4], n)
		buf[4] = msgGrad
		binary.BigEndian.PutUint64(buf[5:13], reqID)
		// epoch [13:21] stays zero: no gate is installed on this server.
		binary.BigEndian.PutUint32(buf[21:25], 0) // sender
		binary.BigEndian.PutUint32(buf[25:29], id.Block)
		binary.BigEndian.PutUint32(buf[29:33], id.Expert)
		copy(buf[33:], payload)
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	recvAck := func() {
		hdr := make([]byte, 4)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := io.ReadFull(conn, hdr); err != nil {
			t.Fatal(err)
		}
		rest := make([]byte, binary.BigEndian.Uint32(hdr))
		if _, err := io.ReadFull(conn, rest); err != nil {
			t.Fatal(err)
		}
		if rest[0] != msgGradAck {
			t.Fatalf("response type %#x, want ack", rest[0])
		}
	}
	send(1)
	recvAck()
	send(2)
	recvAck()
	store.mu.Lock()
	applied := store.grads[id]
	store.mu.Unlock()
	if applied != 1 {
		t.Fatalf("gradient applied %d times, want 1", applied)
	}
	if srv.GradsDeduped() != 1 {
		t.Fatalf("deduped = %d, want 1", srv.GradsDeduped())
	}
}

// A hung server trips the per-attempt deadline and the timeout counter.
func TestPullTimeoutCounted(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 8}
	store.experts[id] = []byte{1}
	gate := make(chan struct{})
	store.serveHook = func() { <-gate }
	_, addr := startServer(t, store)
	t.Cleanup(func() { close(gate) })

	c := NewClientOptions(Options{
		Credits:        2,
		RequestTimeout: 50 * time.Millisecond,
		MaxAttempts:    2,
		BackoffBase:    2 * time.Millisecond,
	})
	defer c.Close()
	if _, err := c.Pull(ctx, addr, id); err == nil {
		t.Fatal("pull against a hung server succeeded")
	}
	snap := c.Robust.Snapshot()
	if snap.Timeouts == 0 {
		t.Fatalf("no timeouts recorded: %v", snap)
	}
	if snap.Retries == 0 {
		t.Fatalf("no retries recorded: %v", snap)
	}
}

// A caller-supplied context cancels a pull promptly.
func TestPullHonoursContext(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 9}
	store.experts[id] = []byte{1}
	gate := make(chan struct{})
	store.serveHook = func() { <-gate }
	_, addr := startServer(t, store)
	t.Cleanup(func() { close(gate) })

	c := NewClient(2)
	defer c.Close()
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Pull(cctx, addr, id); err == nil {
		t.Fatal("cancelled pull succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancellation was not prompt")
	}
}

// PULLs race server restarts: every pull eventually succeeds because
// failed connections are evicted and redialed.
func TestPullsRaceReconnection(t *testing.T) {
	store := newMemStore()
	const experts = 8
	for i := 0; i < experts; i++ {
		store.experts[ExpertID{Expert: uint32(i)}] = []byte{byte(i)}
	}
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c := NewClientOptions(Options{
		Credits:        4,
		RequestTimeout: 500 * time.Millisecond,
		MaxAttempts:    3,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
	})
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				id := ExpertID{Expert: uint32((g + i) % experts)}
				// App-level persistence across restarts: retry until the
				// deadline; the transport's own retries do the heavy
				// lifting inside each call.
				deadline := time.Now().Add(5 * time.Second)
				for {
					got, err := c.Pull(ctx, addr, id)
					if err == nil {
						if got[0] != byte(id.Expert) {
							fail <- "wrong payload"
						}
						break
					}
					if time.Now().After(deadline) {
						fail <- "pull never succeeded: " + err.Error()
						break
					}
				}
			}
		}()
	}
	// Restart the server twice under the load.
	for r := 0; r < 2; r++ {
		time.Sleep(30 * time.Millisecond)
		srv.Close()
		time.Sleep(10 * time.Millisecond)
		srv = NewServer(store)
		if _, err := srv.Start(addr); err != nil {
			t.Fatalf("restart %d: %v", r, err)
		}
	}
	wg.Wait()
	close(stop)
	srv.Close()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}

// Pulls racing Close never hang and never return stale success after
// the client reports closed.
func TestConcurrentPullAndClose(t *testing.T) {
	store := newMemStore()
	for i := 0; i < 8; i++ {
		store.experts[ExpertID{Expert: uint32(i)}] = []byte{byte(i)}
	}
	_, addr := startServer(t, store)
	c := newFastClient(2, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				c.Pull(ctx, addr, ExpertID{Expert: uint32((g + i) % 8)})
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	c.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pulls racing Close hung")
	}
	if _, err := c.Pull(ctx, addr, ExpertID{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("pull on closed client: %v, want ErrClosed", err)
	}
}
