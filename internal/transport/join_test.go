package transport

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// admitFixture is a small mixed-liveness membership snapshot.
func admitFixture() []MemberInfo {
	return []MemberInfo{
		{ID: 0, Addr: "127.0.0.1:1000", Alive: true},
		{ID: 1, Addr: "127.0.0.1:1001", Alive: false},
		{ID: 2, Addr: "", Alive: true},
	}
}

func TestAdmitRoundTrip(t *testing.T) {
	want := admitFixture()
	raw, err := EncodeAdmit(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAdmit(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("member %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAdmitRejectsCorruption(t *testing.T) {
	raw, err := EncodeAdmit(admitFixture())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(raw); i++ {
		if _, err := DecodeAdmit(raw[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	if _, err := DecodeAdmit(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	// A hostile member count must be rejected before allocating.
	bad := append([]byte{}, raw...)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeAdmit(bad); err == nil {
		t.Fatal("hostile member count decoded successfully")
	}
}

// joinRecorder is a JoinHandler that admits everyone with a canned
// snapshot and records what it saw.
type joinRecorder struct {
	mu      sync.Mutex
	senders []uint32
	addrs   []string
	refuse  error
}

func (j *joinRecorder) AdmitJoin(sender uint32, payload []byte) (uint64, []byte, error) {
	j.mu.Lock()
	j.senders = append(j.senders, sender)
	j.addrs = append(j.addrs, string(payload))
	refuse := j.refuse
	j.mu.Unlock()
	if refuse != nil {
		return 0, nil, refuse
	}
	admit, err := EncodeAdmit(admitFixture())
	if err != nil {
		return 0, nil, err
	}
	return 7, admit, nil
}

func TestJoinRoundTrip(t *testing.T) {
	store := newMemStore()
	srv, addr := startServer(t, store)
	rec := &joinRecorder{}
	srv.SetJoinHandler(rec)

	c := NewClientOptions(Options{MachineID: 3})
	defer c.Close()
	info, err := c.Join(ctx, addr, "127.0.0.1:2000")
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 7 {
		t.Fatalf("epoch %d, want 7", info.Epoch)
	}
	if len(info.Members) != 3 {
		t.Fatalf("%d members, want 3", len(info.Members))
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.senders) != 1 || rec.senders[0] != 3 {
		t.Fatalf("handler saw senders %v, want [3]", rec.senders)
	}
	if rec.addrs[0] != "127.0.0.1:2000" {
		t.Fatalf("handler saw addr %q", rec.addrs[0])
	}
	if srv.JoinsServed() != 1 {
		t.Fatalf("JoinsServed = %d, want 1", srv.JoinsServed())
	}
}

func TestJoinRefusalIsRemoteError(t *testing.T) {
	_, addr := startServer(t, newMemStore())
	// No handler installed: JOIN must fail terminally, not retry.
	c := newFastClient(2, 3)
	defer c.Close()
	_, err := c.Join(ctx, addr, "127.0.0.1:2000")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if got := c.Robust.Snapshot().Retries; got != 0 {
		t.Fatalf("join refusal was retried %d times", got)
	}
}

// epochStamp is a fixed-epoch gate for fencing tests.
type epochStamp uint64

func (e epochStamp) Epoch() uint64              { return uint64(e) }
func (e epochStamp) MachineAlive(m uint32) bool { return true }

func TestJoinBypassesEpochFence(t *testing.T) {
	srv, addr := startServer(t, newMemStore())
	srv.SetEpochGate(epochStamp(5))
	rec := &joinRecorder{}
	srv.SetJoinHandler(rec)

	// A joiner's epoch is 0 — older than the gate — yet JOIN must pass.
	c := newFastClient(2, 1)
	defer c.Close()
	if _, err := c.Join(ctx, addr, "x"); err != nil {
		t.Fatalf("join was fenced: %v", err)
	}
	// A plain pull with the same stale epoch must still be fenced.
	_, err := c.Pull(ctx, addr, ExpertID{Expert: 1})
	if !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("pull err = %v, want fenced", err)
	}
}

// migStore is a memStore that also stages migrations.
type migStore struct {
	*memStore
	mu     sync.Mutex
	staged map[ExpertID][]byte
	fail   error
}

func (s *migStore) AcceptMigration(id ExpertID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return s.fail
	}
	if s.staged == nil {
		s.staged = make(map[ExpertID][]byte)
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	s.staged[id] = cp
	return nil
}

func TestMigrateStagesPayload(t *testing.T) {
	store := &migStore{memStore: newMemStore()}
	srv, addr := startServer(t, store)

	c := NewClient(2)
	defer c.Close()
	id := ExpertID{Block: 1, Expert: 4}
	payload := []byte{1, 2, 3, 4, 5}
	if err := c.Migrate(ctx, addr, id, payload); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	got := store.staged[id]
	store.mu.Unlock()
	if !bytes.Equal(got, payload) {
		t.Fatalf("staged %v, want %v", got, payload)
	}
	if srv.MigrationsStaged() != 1 {
		t.Fatalf("MigrationsStaged = %d, want 1", srv.MigrationsStaged())
	}
}

func TestMigrateToPlainStoreIsRemoteError(t *testing.T) {
	_, addr := startServer(t, newMemStore())
	c := newFastClient(2, 3)
	defer c.Close()
	err := c.Migrate(ctx, addr, ExpertID{Expert: 1}, []byte{9})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestMigrateIsFenced(t *testing.T) {
	store := &migStore{memStore: newMemStore()}
	srv, addr := startServer(t, store)
	srv.SetEpochGate(epochStamp(5))

	c := newFastClient(2, 1)
	defer c.Close()
	err := c.Migrate(ctx, addr, ExpertID{Expert: 1}, []byte{9})
	if !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("err = %v, want fenced", err)
	}
	c.SetEpoch(5)
	if err := c.Migrate(ctx, addr, ExpertID{Expert: 1}, []byte{9}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeAdmit drives the ADMIT decoder with arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to the identical canonical payload.
func FuzzDecodeAdmit(f *testing.F) {
	if raw, err := EncodeAdmit(admitFixture()); err == nil {
		f.Add(raw)
	}
	if raw, err := EncodeAdmit(nil); err == nil {
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		members, err := DecodeAdmit(raw)
		if err != nil {
			return
		}
		re, err := EncodeAdmit(members)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d bytes out", len(raw), len(re))
		}
	})
}
