package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
)

// MemberInfo is one machine in an ADMIT membership snapshot.
type MemberInfo struct {
	ID    uint32
	Addr  string
	Alive bool
}

// JoinInfo is what an admitted joiner bootstraps from: the admitting
// member's membership epoch and its view of the cluster.
type JoinInfo struct {
	Epoch   uint64
	Members []MemberInfo
}

// maxAdmitMembers bounds the member count a decoder will accept, so a
// corrupt count cannot force an unbounded allocation. Far above any
// cluster this simulator runs.
const maxAdmitMembers = 1 << 16

// memberMinBytes is the wire size of one member with an empty address.
const memberMinBytes = 4 + 1 + 2

// EncodeAdmit serialises an ADMIT payload: a member count followed by
// each member's id, liveness bit, and listen address. The epoch is not
// in the payload — it travels in the frame header like every response.
func EncodeAdmit(members []MemberInfo) ([]byte, error) {
	if len(members) > maxAdmitMembers {
		return nil, fmt.Errorf("transport: %d members exceeds admit limit", len(members))
	}
	n := 4
	for _, m := range members {
		if len(m.Addr) > 0xFFFF {
			return nil, fmt.Errorf("transport: member %d address too long", m.ID)
		}
		n += memberMinBytes + len(m.Addr)
	}
	buf := make([]byte, 0, n)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(members)))
	buf = append(buf, u32[:]...)
	for _, m := range members {
		binary.BigEndian.PutUint32(u32[:], m.ID)
		buf = append(buf, u32[:]...)
		alive := byte(0)
		if m.Alive {
			alive = 1
		}
		buf = append(buf, alive)
		var u16 [2]byte
		binary.BigEndian.PutUint16(u16[:], uint16(len(m.Addr)))
		buf = append(buf, u16[:]...)
		buf = append(buf, m.Addr...)
	}
	return buf, nil
}

// DecodeAdmit parses an ADMIT payload. Truncation, trailing bytes, an
// oversized count, or a bad liveness flag fail the decode.
func DecodeAdmit(raw []byte) ([]MemberInfo, error) {
	if len(raw) < 4 {
		return nil, errors.New("transport: admit payload truncated")
	}
	count := binary.BigEndian.Uint32(raw)
	off := 4
	if count > maxAdmitMembers || int64(count)*memberMinBytes > int64(len(raw)-off) {
		return nil, fmt.Errorf("transport: admit claims %d members in %d bytes", count, len(raw)-off)
	}
	members := make([]MemberInfo, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(raw)-off < memberMinBytes {
			return nil, errors.New("transport: admit member truncated")
		}
		id := binary.BigEndian.Uint32(raw[off:])
		flag := raw[off+4]
		if flag > 1 {
			return nil, fmt.Errorf("transport: admit bad liveness flag %d", flag)
		}
		addrLen := int(binary.BigEndian.Uint16(raw[off+5:]))
		off += memberMinBytes
		if len(raw)-off < addrLen {
			return nil, errors.New("transport: admit address truncated")
		}
		members = append(members, MemberInfo{
			ID:    id,
			Addr:  string(raw[off : off+addrLen]),
			Alive: flag == 1,
		})
		off += addrLen
	}
	if off != len(raw) {
		return nil, fmt.Errorf("transport: admit has %d trailing bytes", len(raw)-off)
	}
	return members, nil
}

// Join asks the member at addr to admit this machine into the running
// cluster. selfAddr is the joiner's own listen address, which the
// admitting member folds into its membership view. On success the
// returned JoinInfo carries the admitter's epoch and membership
// snapshot. Join frames are exempt from epoch fencing server-side; a
// refusal (no quorum, frozen admitter) surfaces as a RemoteError.
func (c *Client) Join(ctx context.Context, addr, selfAddr string) (JoinInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := c.do(ctx, addr, frame{typ: msgJoin, payload: []byte(selfAddr)})
	if err != nil {
		return JoinInfo{}, err
	}
	if resp.typ != msgAdmit {
		resp.recycle()
		return JoinInfo{}, fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	members, err := DecodeAdmit(resp.payload)
	info := JoinInfo{Epoch: resp.epoch, Members: members}
	resp.recycle()
	if err != nil {
		return JoinInfo{}, err
	}
	return info, nil
}

// Migrate ships a migrated expert's weights (a checkpoint wire stream)
// to the prospective new owner at addr, which stages them pending the
// ownership handoff. Retries are safe: staging is idempotent.
func (c *Client) Migrate(ctx context.Context, addr string, id ExpertID, payload []byte) error {
	if ctx == nil {
		ctx = context.Background()
	}
	resp, err := c.do(ctx, addr, frame{typ: msgMigrate, id: id, payload: payload})
	if err != nil {
		return err
	}
	if resp.typ != msgMigrateAck {
		resp.recycle()
		return fmt.Errorf("transport: unexpected response type %#x", resp.typ)
	}
	return nil
}
