package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// ctx is the background context shared by tests that don't exercise
// cancellation.
var ctx = context.Background()

// newFastClient returns a client whose failure handling is tuned for
// test speed: short per-attempt deadlines and millisecond backoff.
func newFastClient(credits, attempts int) *Client {
	return NewClientOptions(Options{
		Credits:        credits,
		RequestTimeout: 500 * time.Millisecond,
		MaxAttempts:    attempts,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	})
}

// memStore is a Store over an in-memory map with gradient accumulation
// counting.
type memStore struct {
	mu      sync.Mutex
	experts map[ExpertID][]byte
	grads   map[ExpertID]int
	// serveDelayHook, if set, runs on every ExpertBytes call (used to
	// widen race windows in the single-flight test).
	serveHook func()
	// gradHook, if set, observes every applied gradient's payload
	// while it is still valid (used by the no-retain batch tests).
	gradHook func(id ExpertID, payload []byte)
}

func newMemStore() *memStore {
	return &memStore{experts: make(map[ExpertID][]byte), grads: make(map[ExpertID]int)}
}

func (s *memStore) ExpertBytes(id ExpertID) ([]byte, error) {
	if s.serveHook != nil {
		s.serveHook()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.experts[id]
	if !ok {
		return nil, fmt.Errorf("expert %v not hosted", id)
	}
	return b, nil
}

func (s *memStore) AddGradient(id ExpertID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.experts[id]; !ok {
		return fmt.Errorf("expert %v not hosted", id)
	}
	s.grads[id]++
	if s.gradHook != nil {
		s.gradHook(id, payload)
	}
	return nil
}

func startServer(t *testing.T, store Store) (*Server, string) {
	t.Helper()
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestPullRoundTrip(t *testing.T) {
	store := newMemStore()
	want := bytes.Repeat([]byte{0xAB}, 1<<20)
	id := ExpertID{Block: 3, Expert: 7}
	store.experts[id] = want
	_, addr := startServer(t, store)

	c := NewClient(4)
	defer c.Close()
	got, err := c.Pull(ctx, addr, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(want))
	}
}

func TestPullUnknownExpert(t *testing.T) {
	_, addr := startServer(t, newMemStore())
	c := NewClient(4)
	defer c.Close()
	if _, err := c.Pull(ctx, addr, ExpertID{Block: 1, Expert: 1}); err == nil {
		t.Fatal("pull of unknown expert succeeded")
	}
}

func TestGradientPush(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Block: 0, Expert: 2}
	store.experts[id] = []byte{1, 2, 3}
	srv, addr := startServer(t, store)
	c := NewClient(4)
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.PushGradient(ctx, addr, id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if store.grads[id] != 5 {
		t.Fatalf("grads = %d, want 5", store.grads[id])
	}
	if srv.GradsAccepted() != 5 {
		t.Fatalf("server grads = %d", srv.GradsAccepted())
	}
}

// Single flight: N concurrent pulls of the same expert produce exactly
// one wire request.
func TestPullSingleFlight(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Block: 1, Expert: 4}
	store.experts[id] = bytes.Repeat([]byte{7}, 4096)
	gate := make(chan struct{})
	var served atomic.Int32
	store.serveHook = func() {
		served.Add(1)
		<-gate // hold the first request open until all pulls are queued
	}
	srv, addr := startServer(t, store)
	c := NewClient(8)
	defer c.Close()

	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Pull(ctx, addr, id)
		}()
	}
	// Wait for the wire request to reach the server, then release it.
	for served.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
	}
	if got := srv.PullsServed(); got != 1 {
		t.Fatalf("server saw %d pulls, want 1 (single flight)", got)
	}
}

// Distinct experts pull concurrently and pipelining preserves
// request/response pairing.
func TestConcurrentDistinctPulls(t *testing.T) {
	store := newMemStore()
	const n = 64
	for i := 0; i < n; i++ {
		store.experts[ExpertID{Block: 0, Expert: uint32(i)}] = []byte{byte(i), byte(i >> 8)}
	}
	srv, addr := startServer(t, store)
	c := NewClient(8)
	defer c.Close()
	var wg sync.WaitGroup
	fail := make(chan string, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := ExpertID{Block: 0, Expert: uint32(i)}
			got, err := c.Pull(ctx, addr, id)
			if err != nil {
				fail <- err.Error()
				return
			}
			if len(got) != 2 || got[0] != byte(i) {
				fail <- fmt.Sprintf("expert %d: wrong payload %v", i, got)
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
	if srv.PullsServed() != n {
		t.Fatalf("server pulls = %d, want %d", srv.PullsServed(), n)
	}
}

// The credit window bounds concurrent wire pulls.
func TestCreditWindowBound(t *testing.T) {
	store := newMemStore()
	const n = 32
	for i := 0; i < n; i++ {
		store.experts[ExpertID{Expert: uint32(i)}] = []byte{1}
	}
	var cur, max atomic.Int32
	release := make(chan struct{})
	store.serveHook = func() {
		v := cur.Add(1)
		for {
			m := max.Load()
			if v <= m || max.CompareAndSwap(m, v) {
				break
			}
		}
		<-release
		cur.Add(-1)
	}
	_, addr := startServer(t, store)
	const credits = 3
	c := NewClient(credits)
	defer c.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Pull(ctx, addr, ExpertID{Expert: uint32(i)})
		}()
	}
	// Let pulls accumulate to the window, then drain.
	for cur.Load() < credits {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := max.Load(); got > credits {
		t.Fatalf("max concurrent wire pulls %d exceeds credit window %d", got, credits)
	}
}

func TestCountersBalance(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 9}
	store.experts[id] = bytes.Repeat([]byte{5}, 1000)
	srv, addr := startServer(t, store)
	c := NewClient(2)
	defer c.Close()
	if _, err := c.Pull(ctx, addr, id); err != nil {
		t.Fatal(err)
	}
	if err := c.PushGradient(ctx, addr, id, bytes.Repeat([]byte{6}, 500)); err != nil {
		t.Fatal(err)
	}
	if c.Counters.Sent() != srv.Counters.Received() {
		t.Fatalf("client sent %d, server received %d", c.Counters.Sent(), srv.Counters.Received())
	}
	if c.Counters.Received() != srv.Counters.Sent() {
		t.Fatalf("client received %d, server sent %d", c.Counters.Received(), srv.Counters.Sent())
	}
	if c.Counters.Received() < 1000 {
		t.Fatal("pull payload not accounted")
	}
}

func TestServerCloseFailsPendingAndFuture(t *testing.T) {
	store := newMemStore()
	id := ExpertID{Expert: 1}
	store.experts[id] = []byte{1}
	srv, addr := startServer(t, store)
	c := newFastClient(2, 2)
	defer c.Close()
	if _, err := c.Pull(ctx, addr, id); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.Pull(ctx, addr, id); err == nil {
		t.Fatal("pull after server close succeeded")
	}
}

func TestClientCloseRejectsNewCalls(t *testing.T) {
	store := newMemStore()
	store.experts[ExpertID{}] = []byte{1}
	_, addr := startServer(t, store)
	c := NewClient(2)
	if _, err := c.Pull(ctx, addr, ExpertID{}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Pull(ctx, addr, ExpertID{}); err == nil {
		t.Fatal("pull on closed client succeeded")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(typ byte, reqID uint64, block, expert uint32, payload []byte) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		in := frame{typ: typ, reqID: reqID, id: ExpertID{block, expert}, payload: payload}
		if err := writeFrame(w, in); err != nil {
			return false
		}
		out, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return out.typ == in.typ && out.reqID == in.reqID && out.id == in.id &&
			bytes.Equal(out.payload, in.payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsBadLength(t *testing.T) {
	// Length below the header size must error, not allocate or hang.
	buf := bytes.NewReader([]byte{0, 0, 0, 1, 0})
	if _, err := readFrame(bufio.NewReader(buf)); err == nil {
		t.Fatal("undersized frame accepted")
	}
	// A huge length must be rejected before allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestDialFailure(t *testing.T) {
	c := newFastClient(2, 2)
	defer c.Close()
	_, err := c.Pull(ctx, "127.0.0.1:1", ExpertID{}) // port 1: nothing listening
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	var opErr error = err
	if opErr == nil || !errors.Is(err, err) {
		t.Fatal("unreachable")
	}
}

func TestPingRoundTripAndFailure(t *testing.T) {
	srv, addr := startServer(t, newMemStore())
	c := newFastClient(4, 1)
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, err := c.Ping(ctx, addr); err != nil {
			t.Fatalf("ping %d: %v", i, err)
		}
	}
	if got := srv.PingsServed(); got != 3 {
		t.Fatalf("PingsServed = %d, want 3", got)
	}

	// A ping is a liveness probe, not a request: it gets exactly one
	// attempt, so a dead server surfaces as an error immediately.
	srv.Close()
	if _, err := c.Ping(ctx, addr); err == nil {
		t.Fatal("ping of a closed server succeeded")
	}
	// And an expired context fails without touching the wire.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Ping(cctx, addr); err == nil {
		t.Fatal("ping with cancelled context succeeded")
	}
}
