package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestServeRoundTrip(t *testing.T) {
	data := []float32{1, -2, 3.5, 0, 0.25, -0.125}
	raw, err := EncodeServe(1500, 2, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	budget, rows, cols, got, err := DecodeServe(raw)
	if err != nil {
		t.Fatal(err)
	}
	if budget != 1500 || rows != 2 || cols != 3 {
		t.Fatalf("header %d/%dx%d, want 1500/2x3", budget, rows, cols)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("data[%d] = %v, want %v", i, got[i], data[i])
		}
	}
	out, err := EncodeServeOut(ProvReplica, data)
	if err != nil {
		t.Fatal(err)
	}
	prov, dec, err := DecodeServeOut(out)
	if err != nil {
		t.Fatal(err)
	}
	if prov != ProvReplica || len(dec) != len(data) || dec[2] != 3.5 {
		t.Fatalf("serve output decoded to %#x/%v", prov, dec)
	}
}

func TestServeRejectsCorruption(t *testing.T) {
	raw, err := EncodeServe(9, 1, 2, []float32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(raw); i++ {
		if _, _, _, _, err := DecodeServe(raw[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	if _, _, _, _, err := DecodeServe(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
	// A hostile shape must be rejected before allocating.
	bad := append([]byte{}, raw...)
	binary.BigEndian.PutUint32(bad[8:12], 0xFFFFFFFF)
	binary.BigEndian.PutUint32(bad[12:16], 0xFFFFFFFF)
	if _, _, _, _, err := DecodeServe(bad); err == nil {
		t.Fatal("hostile shape decoded successfully")
	}
	// Empty shapes are not a legal micro-batch.
	bad = append([]byte{}, raw[:serveHeaderBytes]...)
	binary.BigEndian.PutUint32(bad[8:12], 0)
	binary.BigEndian.PutUint32(bad[12:16], 0)
	if _, _, _, _, err := DecodeServe(bad); err == nil {
		t.Fatal("empty shape decoded successfully")
	}
	// Shape/data mismatch at encode time.
	if _, err := EncodeServe(1, 2, 2, []float32{1}); err == nil {
		t.Fatal("mismatched encode shape accepted")
	}
	// Output corruption: unknown provenance and ragged float bytes.
	out, err := EncodeServeOut(ProvOwner, []float32{1})
	if err != nil {
		t.Fatal(err)
	}
	bad = append([]byte{}, out...)
	bad[0] = 0x7E
	if _, _, err := DecodeServeOut(bad); err == nil {
		t.Fatal("unknown provenance decoded successfully")
	}
	if _, _, err := DecodeServeOut(out[:len(out)-1]); err == nil {
		t.Fatal("ragged output decoded successfully")
	}
	if _, _, err := DecodeServeOut(nil); err == nil {
		t.Fatal("empty output decoded successfully")
	}
	if _, err := EncodeServeOut(0x55, nil); err == nil {
		t.Fatal("unknown provenance encoded successfully")
	}
}

// servingStore is a memStore that also answers inference micro-batches
// by echoing each row scaled by 2 — enough structure for the wire tests
// to verify shape and content end to end.
type servingStore struct {
	*memStore
	mu      sync.Mutex
	served  int
	expired int
}

func (s *servingStore) ServeExpert(id ExpertID, payload []byte) ([]byte, error) {
	budget, _, _, data, err := DecodeServe(payload)
	if err != nil {
		return nil, err
	}
	if budget == 0 {
		s.mu.Lock()
		s.expired++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: b%d/e%d", ErrServeExpired, id.Block, id.Expert)
	}
	out := make([]float32, len(data))
	for i, v := range data {
		out[i] = 2 * v
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	return EncodeServeOut(ProvOwner, out)
}

func TestServeExpertEndToEnd(t *testing.T) {
	store := &servingStore{memStore: newMemStore()}
	srv, addr := startServer(t, store)
	c := newFastClient(2, 3)
	defer c.Close()

	payload, err := EncodeServe(50_000, 2, 2, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	prov, out, err := c.ServeExpert(ctx, addr, ExpertID{Expert: 1}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if prov != ProvOwner {
		t.Fatalf("provenance %#x, want owner", prov)
	}
	want := []float32{2, 4, 6, 8}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if srv.ServesAnswered() != 1 {
		t.Fatalf("ServesAnswered = %d, want 1", srv.ServesAnswered())
	}

	// An expired budget is refused server-side, not computed.
	payload, err = EncodeServe(0, 1, 1, []float32{1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.ServeExpert(ctx, addr, ExpertID{Expert: 1}, payload)
	if !IsServeExpired(err) {
		t.Fatalf("err = %v, want serve-expired", err)
	}
	store.mu.Lock()
	served, expired := store.served, store.expired
	store.mu.Unlock()
	if served != 1 || expired != 1 {
		t.Fatalf("served/expired = %d/%d, want 1/1", served, expired)
	}
	if srv.ServesAnswered() != 1 {
		t.Fatalf("expired serve counted as answered: %d", srv.ServesAnswered())
	}
}

func TestServeToPlainStoreIsRemoteError(t *testing.T) {
	_, addr := startServer(t, newMemStore())
	c := newFastClient(2, 3)
	defer c.Close()
	payload, err := EncodeServe(1000, 1, 1, []float32{1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.ServeExpert(ctx, addr, ExpertID{Expert: 1}, payload)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if IsServeExpired(err) {
		t.Fatal("capability error misread as budget expiry")
	}
}

func TestServeIsFenced(t *testing.T) {
	store := &servingStore{memStore: newMemStore()}
	srv, addr := startServer(t, store)
	srv.SetEpochGate(epochStamp(5))
	c := newFastClient(2, 1)
	defer c.Close()
	payload, err := EncodeServe(1000, 1, 1, []float32{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ServeExpert(ctx, addr, ExpertID{Expert: 1}, payload); !errors.Is(err, ErrFencedEpoch) {
		t.Fatalf("err = %v, want fenced", err)
	}
	c.SetEpoch(5)
	if _, _, err := c.ServeExpert(ctx, addr, ExpertID{Expert: 1}, payload); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeServe drives the SERVE decoder with arbitrary bytes: it
// must never panic or over-allocate, and anything it accepts must
// re-encode to the identical canonical payload.
func FuzzDecodeServe(f *testing.F) {
	if raw, err := EncodeServe(1234, 2, 3, []float32{1, 2, 3, 4, 5, 6}); err == nil {
		f.Add(raw)
	}
	if raw, err := EncodeServe(0, 1, 1, []float32{0}); err == nil {
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		budget, rows, cols, data, err := DecodeServe(raw)
		if err != nil {
			return
		}
		re, err := EncodeServe(budget, rows, cols, data)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d bytes out", len(raw), len(re))
		}
	})
}
