package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"testing"
)

// benchFrameStream serialises one frame and returns its wire bytes.
func benchFrameBytes(b *testing.B, f frame) []byte {
	b.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, f); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkReadFrameGrad measures the per-frame read cost for a
// gradient-sized payload. With buffer pooling the steady state should
// be allocation-free: the GRAD handler recycles the payload buffer and
// the next read reuses it.
func BenchmarkReadFrameGrad(b *testing.B) {
	payload := make([]byte, gradTokenBytes+64*1024)
	raw := benchFrameBytes(b, frame{typ: msgGrad, reqID: 7, payload: payload})
	br := bytes.NewReader(raw)
	r := bufio.NewReaderSize(br, 1<<16)
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Seek(0, io.SeekStart)
		r.Reset(br)
		f, err := readFrame(r)
		if err != nil {
			b.Fatal(err)
		}
		f.recycle() // what the server does after the store consumed it
	}
}

// BenchmarkReadFrameHeaderOnly measures the hot heartbeat/ack path:
// readFrame recycles the buffer internally, so no allocation at all.
func BenchmarkReadFrameHeaderOnly(b *testing.B) {
	raw := benchFrameBytes(b, frame{typ: msgPing, reqID: 7})
	br := bytes.NewReader(raw)
	r := bufio.NewReaderSize(br, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Seek(0, io.SeekStart)
		r.Reset(br)
		if _, err := readFrame(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPushGradientLoopback measures a full client→server gradient
// round trip over TCP loopback, allocations included (frame pool on
// both the server's GRAD read path and the client's ack read path).
func BenchmarkPushGradientLoopback(b *testing.B) {
	store := newMemStore()
	id := ExpertID{Block: 1, Expert: 2}
	store.experts[id] = []byte{1}
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(4)
	defer c.Close()
	payload := make([]byte, 64*1024)
	ctx := context.Background()
	if err := c.PushGradient(ctx, addr, id, payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.PushGradient(ctx, addr, id, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPullLoopback measures a full pull round trip over TCP
// loopback. The expert payload escapes to the caller by contract, so
// this path keeps one allocation per pull for the returned bytes.
func BenchmarkPullLoopback(b *testing.B) {
	store := newMemStore()
	id := ExpertID{Block: 1, Expert: 2}
	store.experts[id] = make([]byte, 64*1024)
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(4)
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Pull(ctx, addr, id); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(store.experts[id])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Pull(ctx, addr, id); err != nil {
			b.Fatal(err)
		}
	}
}

// sanity check for the benchmark fixtures: a grad frame round-trips.
func TestBenchFixtureRoundTrip(t *testing.T) {
	payload := make([]byte, gradTokenBytes+128)
	binary.BigEndian.PutUint64(payload[0:8], 11)
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, frame{typ: msgGrad, reqID: 3, payload: payload}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if f.typ != msgGrad || f.reqID != 3 || !bytes.Equal(f.payload, payload) {
		t.Fatalf("frame mismatch: %+v", f)
	}
	f.recycle()
	if f.payload != nil || f.buf != nil {
		t.Fatal("recycle did not clear the frame")
	}
}
