package core

import (
	"testing"

	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/engine"
	"janus/internal/expertcentric"
	"janus/internal/topology"
)

// The hierarchical-fetch ablation: without the Cache Manager, every
// worker pulls its external experts across the NICs itself, so the
// cross-node fetch volume inflates by roughly m (the per-machine worker
// count) — the quantitative content of §5.1.2.
func TestDisableCacheInflatesTraffic(t *testing.T) {
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)

	with := mustRun(t, Config{Model: model, Spec: spec, TopoAware: true, Prefetch: true})
	without := mustRun(t, Config{Model: model, Spec: spec, TopoAware: true, Prefetch: true,
		DisableCache: true})

	costs := engine.NewCosts(spec, model)
	arCross := float64(2*31) * 4 * costs.DenseGradBytes(32) / 32
	fetchWith := with.InterNodeEgressBytes - arCross
	fetchWithout := without.InterNodeEgressBytes - arCross

	// Forward fetches inflate by m=8; backward gradient pushes are
	// still pre-reduced per machine in both runs, so the overall ratio
	// sits between 1 and 8: (8·fwd + bwd)/(fwd + bwd) = 4.5 here.
	ratio := fetchWithout / fetchWith
	if ratio < 3.5 || ratio > 5.5 {
		t.Fatalf("no-cache traffic ratio = %.2f, want ~4.5 (8x forward, 1x backward)", ratio)
	}
	if without.IterationTime <= with.IterationTime {
		t.Fatal("removing the cache did not cost time")
	}
	t.Logf("fetch traffic: cache %.2f GiB, no cache %.2f GiB (%.1fx); iter %.1f -> %.1f ms",
		fetchWith/(1<<30), fetchWithout/(1<<30), ratio,
		with.IterationTime*1e3, without.IterationTime*1e3)
}

// Inference mode (§9): a forward-only iteration moves only the forward
// half of the traffic and ends without gradient work.
func TestForwardOnlyInference(t *testing.T) {
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)

	train := mustRun(t, Config{Model: model, Spec: spec, TopoAware: true, Prefetch: true})
	infer := mustRun(t, Config{Model: model, Spec: spec, TopoAware: true, Prefetch: true,
		ForwardOnly: true})

	if infer.IterationTime >= train.IterationTime {
		t.Fatalf("inference %.1fms not faster than training %.1fms",
			infer.IterationTime*1e3, train.IterationTime*1e3)
	}
	// Inference fetch traffic = exactly the forward half: each machine
	// pulls each external expert once, no gradient pushes, no AllReduce.
	wantFetch := costmodel.CommDCForwardPerMachine(model.H, 1, 8, 4) * 4
	got := infer.InterNodeEgressBytes
	if rel := (got - wantFetch) / wantFetch; rel > 0.001 || rel < -0.001 {
		t.Fatalf("inference inter-node bytes = %.0f, want %.0f", got, wantFetch)
	}
	if infer.BackwardTime > 1e-9 {
		t.Fatalf("inference has backward time %.3fms", infer.BackwardTime*1e3)
	}
}

// ForwardOnly under the expert-centric paradigm too: the unified engine
// must support inference for blocks it keeps on All-to-All.
func TestForwardOnlyExpertCentricBlocks(t *testing.T) {
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)
	ec := config.ExpertCentric
	infer := mustRun(t, Config{Model: model, Spec: spec, ForceParadigm: &ec, ForwardOnly: true})
	if infer.IterationTime <= 0 {
		t.Fatal("EC inference did not complete")
	}
	// Exactly two All-to-Alls (dispatch+combine) for the single MoE
	// block: 2·mHT(n−1)/n bytes per machine, n machines, plus nothing.
	want := costmodel.CommECForwardPerMachine(model.B, model.S, model.K, model.H, 8, 4) * 4
	got := infer.InterNodeEgressBytes
	if rel := (got - want) / want; rel > 0.001 || rel < -0.001 {
		t.Fatalf("EC inference bytes = %.0f, want %.0f", got, want)
	}
}

// DisableCache still computes the same result set (every needed expert
// arrives); the invariant checked here is completion + credit hygiene.
func TestDisableCacheCompletesCleanly(t *testing.T) {
	cfg := Config{Model: config.MoETransformerXL(16), Spec: topology.DefaultSpec(2),
		TopoAware: true, Prefetch: true, DisableCache: true}
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.run()
	for _, w := range r.workers {
		if w.outstanding != 0 || len(w.queue) != 0 {
			t.Fatalf("worker %d left %d outstanding, %d queued", w.idx, w.outstanding, len(w.queue))
		}
	}
	for _, ms := range r.machines {
		if len(ms.fetchStarted) != 0 {
			t.Fatalf("cache manager used while disabled: %d fetches", len(ms.fetchStarted))
		}
	}
}

// The unified engine forced to pure expert-centric must closely match
// the standalone baseline engine — they implement the same paradigm on
// the same fabric and cost model (they share the collective and the
// AllReduce), so a divergence indicates an engine bug.
func TestForcedECMatchesBaselineEngine(t *testing.T) {
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)
	ec := config.ExpertCentric
	unified := mustRun(t, Config{Model: model, Spec: spec, ForceParadigm: &ec})
	base, err := expertcentric.Run(expertcentric.Config{Model: model, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	rel := (unified.IterationTime - base.IterationTime) / base.IterationTime
	if rel > 0.05 || rel < -0.05 {
		t.Fatalf("forced-EC %.1fms vs baseline %.1fms (%.1f%% apart)",
			unified.IterationTime*1e3, base.IterationTime*1e3, rel*100)
	}
	relB := (unified.InterNodeEgressBytes - base.InterNodeEgressBytes) / base.InterNodeEgressBytes
	if relB > 0.001 || relB < -0.001 {
		t.Fatalf("forced-EC bytes %.0f vs baseline %.0f",
			unified.InterNodeEgressBytes, base.InterNodeEgressBytes)
	}
}
