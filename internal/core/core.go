// Package core implements Janus: the unified, data-centric MoE training
// engine that is the paper's primary contribution.
//
// One simulated iteration proceeds exactly as §4-§5 describe. Each MoE
// block is assigned a paradigm up front from the gain metric
// R = BSk/(4nHE): blocks with R above the policy threshold run
// data-centric, the rest run classic expert-centric All-to-All. For
// data-centric blocks, every worker keeps its tokens and pulls experts
// through the Janus Task Queue:
//
//   - Fine-grained asynchronous fetch (§5.1.1): one task per (worker,
//     expert), gated by a credit-based buffer of C expert slots; the
//     computation of an arrived expert overlaps the fetch of the next.
//   - Hierarchical communication (§5.1.2): an Inter-Node Scheduler per
//     machine pulls each external expert across the NICs once into a
//     CPU-side Cache Manager and serves all local workers from it; in
//     backward, it pre-reduces the local workers' expert gradients and
//     sends one gradient per expert per machine back to the owner.
//   - Topology-aware priority (§5.2): internal experts are pulled in
//     the staggered ring order of Algorithm 1 so each source GPU serves
//     one puller at a time; cached external experts are split between
//     the two GPUs of a PCIe switch, each half copied over PCIe by its
//     designated GPU and the other half relayed between the peers over
//     NVLink.
//   - Provident prefetch (§5.3): all pull requests are issued at
//     iteration start, so fetches ride the links while the early dense
//     blocks compute.
//
// Workers do not synchronise during forward/backward of data-centric
// blocks; the only global joins are the All-to-Alls of expert-centric
// blocks and the end-of-iteration gradient sync.
package core

import (
	"fmt"

	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/engine"
	"janus/internal/gate"
	"janus/internal/topology"
	"janus/internal/trace"
)

// DefaultCreditSize is the default capacity (in experts) of each
// worker's credit-based buffer.
const DefaultCreditSize = 4

// Config describes one simulated Janus iteration.
type Config struct {
	Model config.Model
	Spec  topology.Spec

	// Policy chooses the paradigm per MoE block from its R. The zero
	// value behaves like config.NominalPolicy().
	Policy config.Policy

	// ForceParadigm, when non-nil, overrides the policy for every MoE
	// block (used for the pure-paradigm comparisons of Figure 17 and
	// the expert-centric baseline of Figure 12).
	ForceParadigm *config.Paradigm

	// Assignment returns the token routing of an MoE block; nil means
	// balanced.
	Assignment func(block int) gate.Assignment

	// CreditSize is the credit-based buffer capacity per worker, in
	// experts; 0 means DefaultCreditSize.
	CreditSize int

	// TopoAware enables the §5.2 priority strategy (Algorithm 1
	// staggered order + PCIe-switch-aware peering). Off, internal
	// experts are pulled in plain index order by every worker (the
	// contended schedule of Figure 7a) and every cached expert is
	// copied over PCIe directly.
	TopoAware bool

	// Prefetch enables the §5.3 provident prefetch: all fetch requests
	// enter the task queue at iteration start. Off, a block's requests
	// are issued only when its gate completes.
	Prefetch bool

	SkipMemoryCheck bool
	Trace           bool

	// ComputeFactors optionally slows individual GPUs: the compute time
	// of global rank i is multiplied by ComputeFactors[i] (nil or 1.0
	// means nominal). Data-centric blocks never synchronise workers, so
	// a straggler only delays itself until the end-of-iteration
	// gradient sync — the §3.2 "less synchronization" claim.
	ComputeFactors []float64

	// Jitter adds uniform per-op compute noise in [1, 1+Jitter],
	// deterministic from JitterSeed. Data-centric workers absorb it
	// (each pays only its own sum); expert-centric blocks pay the
	// per-block maximum.
	Jitter     float64
	JitterSeed int64

	// DisableCache turns off the Inter-Node Scheduler's Cache Manager:
	// every worker pulls its external experts straight across the NICs
	// (GPU to GPU over GDR), so an expert crosses a machine boundary
	// once per *worker* instead of once per *machine*. Ablation for the
	// hierarchical communication mechanism of §5.1.2 — expect the
	// cross-node fetch traffic to inflate by roughly m.
	DisableCache bool

	// ForwardOnly runs inference instead of training: no backward pass,
	// no gradients, no optimizer (§9 argues the same design serves
	// inference, where the communication pattern is the forward half).
	ForwardOnly bool
}

// factor returns the compute slowdown of a rank.
func (c Config) factor(rank int) float64 {
	if rank < len(c.ComputeFactors) && c.ComputeFactors[rank] > 0 {
		return c.ComputeFactors[rank]
	}
	return 1
}

func (c Config) creditSize() int {
	if c.CreditSize > 0 {
		return c.CreditSize
	}
	return DefaultCreditSize
}

// Paradigms returns the per-block paradigm choice this config makes on
// the given cluster shape, without running the simulation.
func Paradigms(cfg Config, numMachines, numWorkers int) []config.Paradigm {
	pol := cfg.Policy
	if pol.RThreshold == 0 {
		pol = config.NominalPolicy()
	}
	out := make([]config.Paradigm, len(cfg.Model.Blocks))
	for i, b := range cfg.Model.Blocks {
		if b.Kind != config.MoE {
			out[i] = config.ExpertCentric
			continue
		}
		if cfg.ForceParadigm != nil {
			out[i] = *cfg.ForceParadigm
			continue
		}
		out[i] = pol.Choose(cfg.Model.GainR(i, numMachines, numWorkers))
	}
	return out
}

// Run simulates one Janus training iteration.
func Run(cfg Config) (engine.Report, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return engine.Report{}, err
	}
	if r.report.OOM {
		return r.report, nil
	}
	r.run()
	return r.report, nil
}

// newRunner builds a runner with everything validated and scheduled to
// begin at t=0, without running the simulation. Split from Run so tests
// can inspect internal state after the run.
func newRunner(cfg Config) (*runner, error) {
	if err := cfg.Model.Validate(cfg.Spec.TotalGPUs()); err != nil {
		return nil, err
	}
	c, err := topology.New(cfg.Spec)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:   cfg,
		c:     c,
		costs: engine.NewCosts(cfg.Spec, cfg.Model),
		tl:    &trace.Timeline{},
	}
	r.report.Model = cfg.Model.Name
	r.report.NumGPUs = c.NumGPUs()
	r.report.Timeline = r.tl
	r.report.Paradigms = Paradigms(cfg, len(c.Machines), c.NumGPUs())

	in := r.costs.FootprintInput(c.NumGPUs())
	in.CreditSize = cfg.creditSize()
	// Memory footprint: data-centric buffers for DC blocks; if any block
	// runs expert-centric, its token buffers count too.
	mem := costmodel.WorkerFootprintDC(in, costmodel.DefaultMemoryParams())
	for _, p := range r.report.Paradigms {
		if p == config.ExpertCentric {
			// At least one EC block: charge the EC buffer set instead
			// (it dominates the DC one).
			ecBlocks := 0
			for i, q := range r.report.Paradigms {
				if q == config.ExpertCentric && cfg.Model.Blocks[i].Kind == config.MoE {
					ecBlocks++
				}
			}
			inEC := in
			inEC.MoEBlocks = ecBlocks
			mem = costmodel.WorkerFootprintDC(in, costmodel.DefaultMemoryParams()) +
				costmodel.ECBufferBytes(inEC, costmodel.DefaultMemoryParams())
			break
		}
	}
	r.report.PeakMemBytes = mem
	if !cfg.SkipMemoryCheck && mem > cfg.Spec.GPUMemBytes {
		r.report.OOM = true
		return r, nil
	}

	r.assign = make(map[int]gate.Assignment)
	for _, bi := range cfg.Model.MoEBlockIndices() {
		var a gate.Assignment
		if cfg.Assignment != nil {
			a = cfg.Assignment(bi)
		} else {
			a = gate.Balanced(c.NumGPUs(), cfg.Model.Blocks[bi].NumExperts, int(cfg.Model.TokensPerWorker()))
		}
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("core: block %d assignment: %w", bi, err)
		}
		r.assign[bi] = a
	}

	r.setup()
	return r, nil
}

// run executes the prepared iteration to completion.
func (r *runner) run() {
	r.start()
	r.c.Engine.Run()
	r.finish()
}
