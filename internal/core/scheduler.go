package core

import (
	"fmt"
	"math/rand"

	"janus/internal/collective"
	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/engine"
	"janus/internal/fabric"
	"janus/internal/gate"
	"janus/internal/topology"
	"janus/internal/trace"
)

// expertKey identifies one expert instance of one MoE block.
type expertKey struct {
	block  int
	expert int
}

// signal is a one-shot event with subscribers. Waiting on a fired
// signal invokes the callback immediately.
type signal struct {
	fired   bool
	waiters []func()
}

func (s *signal) wait(f func()) {
	if s.fired {
		f()
		return
	}
	s.waiters = append(s.waiters, f)
}

func (s *signal) fire() {
	if s.fired {
		return
	}
	s.fired = true
	ws := s.waiters
	s.waiters = nil
	for _, f := range ws {
		f()
	}
}

type signalMap map[expertKey]*signal

func (m signalMap) get(k expertKey) *signal {
	s, ok := m[k]
	if !ok {
		s = &signal{}
		m[k] = s
	}
	return s
}

// taskKind is the flavour of a fetch task in a worker's queue.
type taskKind int

const (
	taskInternal     taskKind = iota // pull from a local GPU over NVLink
	taskExternalPCIe                 // copy from the Cache Manager over PCIe
	taskExternalPeer                 // relay from the PCIe-switch peer over NVLink
	taskReload                       // backward: reload an offloaded expert over PCIe
	taskExternalGDR                  // DisableCache ablation: pull straight from the remote GPU
)

// fetchTask is one entry of an Intra-Node Scheduler's queue: pull one
// expert. Tasks are issued strictly in queue order as credits permit —
// the fine-grained scheduling of §5.1.
type fetchTask struct {
	key      expertKey
	kind     taskKind
	backward bool
}

// runner drives one simulated iteration.
type runner struct {
	cfg    Config
	c      *topology.Cluster
	costs  engine.Costs
	tl     *trace.Timeline
	report engine.Report
	assign map[int]gate.Assignment

	workers  []*worker
	machines []*machineSched
	ec       map[int]*ecBlock
	jrng     *rand.Rand

	pendingGrads       int
	workersBwdDone     int
	optimizerSubmitted bool
	backwardStarted    bool

	// Batched flow admission: specs accumulated inside a batched()
	// region are admitted through one fabric.StartFlows call per flush,
	// so a pump() that issues a whole prefetch wave costs the fabric a
	// single settlement instead of one per task.
	batchDepth   int
	pendingNow   []fabric.FlowSpec // admitted at the current instant
	pendingPulls []fabric.FlowSpec // admitted after the control-plane round trip
}

// batched runs fn with flow admission deferred; the outermost region
// flushes everything fn (and its nested calls) issued as two batches.
func (r *runner) batched(fn func()) {
	r.batchDepth++
	fn()
	r.batchDepth--
	if r.batchDepth == 0 {
		r.flushFlows()
	}
}

func (r *runner) flushFlows() {
	if len(r.pendingNow) > 0 {
		specs := r.pendingNow
		r.pendingNow = nil
		r.c.Net.StartFlows(specs)
	}
	if len(r.pendingPulls) > 0 {
		specs := r.pendingPulls
		r.pendingPulls = nil
		r.c.Engine.After(r.cfg.Spec.PullLatency, func() { r.c.Net.StartFlows(specs) })
	}
}

// worker is one GPU's view: its compute chain, its Intra-Node Scheduler
// (queue + credits), and its buffer signals.
type worker struct {
	r   *runner
	g   *topology.GPU
	idx int

	credits int
	queue   []fetchTask

	onGPUFwd  signalMap // expert present in the credit buffer (forward)
	onGPUBwd  signalMap // expert reloaded for backward
	offloaded signalMap // expert offloaded to host after forward use

	stallTime float64
	fwdDoneAt float64

	outstanding    int // issued pulls not yet credited back
	maxOutstanding int
}

// machineSched is the Inter-Node Scheduler of one machine: the Cache
// Manager (single-flight external fetches) and the gradient pre-reduce.
type machineSched struct {
	r *runner
	m *topology.Machine

	cacheArrived signalMap
	fetchStarted map[expertKey]bool
	gradArrived  map[expertKey]int
}

// --- setup -------------------------------------------------------------

func (r *runner) setup() {
	r.jrng = rand.New(rand.NewSource(r.cfg.JitterSeed + 1))
	for _, g := range r.c.GPUs() {
		w := &worker{
			r: r, g: g, idx: g.Global,
			credits:   r.cfg.creditSize(),
			onGPUFwd:  make(signalMap),
			onGPUBwd:  make(signalMap),
			offloaded: make(signalMap),
		}
		r.workers = append(r.workers, w)
	}
	for _, m := range r.c.Machines {
		r.machines = append(r.machines, &machineSched{
			r: r, m: m,
			cacheArrived: make(signalMap),
			fetchStarted: make(map[expertKey]bool),
			gradArrived:  make(map[expertKey]int),
		})
	}
	r.ec = make(map[int]*ecBlock)
	if r.cfg.Trace {
		for _, g := range r.c.GPUs() {
			g := g
			g.Compute.OnSpan = func(name string, s, e float64) {
				r.tl.AddSpan(g.String(), name, s, e)
			}
		}
	}
}

func (r *runner) start() {
	if r.cfg.Prefetch {
		// Provident prefetch (§5.3): every data-centric block's fetch
		// requests enter the task queues at iteration start, and the
		// Inter-Node Schedulers begin pulling external experts at once.
		// One batched() region spans every worker, so the entire
		// cluster-wide prefetch wave is two flow admissions.
		r.batched(func() {
			for _, b := range r.cfg.Model.MoEBlockIndices() {
				if r.report.Paradigms[b] != config.DataCentric {
					continue
				}
				for _, w := range r.workers {
					w.enqueueForwardFetches(b)
				}
			}
			for _, w := range r.workers {
				w.pump()
			}
		})
	}
	for _, w := range r.workers {
		w.startForward(0)
	}
}

func (r *runner) finish() {
	if r.workersBwdDone != len(r.workers) || r.pendingGrads != 0 || !r.optimizerSubmitted {
		// The event queue drained with the iteration incomplete: a
		// scheduling deadlock (e.g. credits captured by unreachable
		// blocks). Failing loudly beats reporting a nonsense time.
		panic(fmt.Sprintf("core: iteration deadlocked at t=%v: %d/%d workers finished backward, %d gradients pending",
			r.c.Engine.Now(), r.workersBwdDone, len(r.workers), r.pendingGrads))
	}
	r.report.IterationTime = r.c.Engine.Now()
	var fwdMax, stallSum float64
	for _, w := range r.workers {
		if w.fwdDoneAt > fwdMax {
			fwdMax = w.fwdDoneAt
		}
		stallSum += w.stallTime
	}
	r.report.ForwardTime = fwdMax
	r.report.BackwardTime = r.report.IterationTime - fwdMax
	r.report.CommBlockedTime = stallSum / float64(len(r.workers))
	r.report.FinishTraffic(r.c)
}

// --- per-block helpers --------------------------------------------------

func (r *runner) ownerOf(block, expert int) int {
	e := r.cfg.Model.ExpertsPerWorker(block, r.c.NumGPUs())
	return expert / e
}

func (r *runner) expertBytes() float64 { return costmodel.ExpertBytes(r.cfg.Model.H) }

// dur applies a rank's straggler factor and the per-op jitter draw to
// a nominal compute duration.
func (r *runner) dur(rank int, d float64) float64 {
	d *= r.cfg.factor(rank)
	if r.cfg.Jitter > 0 {
		d *= 1 + r.cfg.Jitter*r.jrng.Float64()
	}
	return d
}

// fetchOpTime is the per-fetched-expert framework cost (§6's FetchOp):
// a fixed sync/poll component plus a staging cost proportional to the
// expert's size.
func (r *runner) fetchOpTime() float64 {
	t := r.cfg.Spec.FetchOpLatency
	if r.cfg.Spec.FetchOpBps > 0 {
		t += r.expertBytes() / r.cfg.Spec.FetchOpBps
	}
	return t
}

// needs reports whether worker w has tokens for expert e of block b.
func (r *runner) needs(w int, b, e int) bool {
	return r.assign[b].Counts[w][e] > 0
}

func (w *worker) machine() *machineSched { return w.r.machines[w.g.Machine.Index] }

// peer returns the GPU sharing this worker's PCIe switch, or nil.
func (w *worker) peer() *worker {
	peers := w.g.Peers()
	if len(peers) == 0 {
		return nil
	}
	return w.r.workers[peers[0].Global]
}

// --- Intra-Node Scheduler: queue and credits ----------------------------

// pump issues queued tasks in priority order while credits remain.
// Within the head task's block, blocked tasks (waiting for the Cache
// Manager, a peer relay, or an offload) do not head-of-line block ready
// tasks behind them: the scheduler issues the first ready task of that
// block and subscribes to the signals of the blocked ones it skipped.
//
// Skipping never crosses a block boundary. That restriction is the
// credit-liveness argument: every issued-but-uncomputed expert belongs
// to the block the worker is about to execute (or has reached), whose
// gate is reachable by compute alone, so held credits are always
// eventually released. Unrestricted skipping lets later blocks' fetches
// capture every credit while an earlier block's external expert starves
// — a deadlock the tests for this package provoke.
func (w *worker) pump() {
	w.r.batched(w.pumpTasks)
}

func (w *worker) pumpTasks() {
	for w.credits > 0 {
		issued := false
		for i := 0; i < len(w.queue); i++ {
			t := w.queue[i]
			if t.key.block != w.queue[0].key.block || t.backward != w.queue[0].backward {
				break
			}
			if sig := w.blockedOn(t); sig != nil {
				sig.wait(func() { w.pump() })
				continue
			}
			w.queue = append(w.queue[:i], w.queue[i+1:]...)
			w.credits--
			w.outstanding++
			if w.outstanding > w.maxOutstanding {
				w.maxOutstanding = w.outstanding
			}
			w.issue(t)
			issued = true
			break
		}
		if !issued {
			return
		}
	}
}

// blockedOn returns the signal the task is waiting for, or nil if it
// can be issued now.
func (w *worker) blockedOn(t fetchTask) *signal {
	switch t.kind {
	case taskInternal:
		return nil
	case taskExternalPCIe:
		if s := w.machine().cacheArrived.get(t.key); !s.fired {
			return s
		}
		return nil
	case taskExternalPeer:
		if s := w.peer().onGPUFwd.get(t.key); !s.fired {
			return s
		}
		return nil
	case taskReload:
		if s := w.offloaded.get(t.key); !s.fired {
			return s
		}
		return nil
	case taskExternalGDR:
		return nil
	}
	panic("core: unknown task kind")
}

// pullFlow starts a pull-style transfer after the control-plane round
// trip: the requester messages the holder over the socket control
// plane, and the data flows once the holder schedules the send (§6).
// Inside a batched() region the admission is coalesced with every other
// pull issued at this instant.
func (r *runner) pullFlow(name string, bytes float64, path []*fabric.Link, then func()) {
	r.pendingPulls = append(r.pendingPulls, fabric.FlowSpec{
		Name: name, Size: bytes, Eff: r.cfg.Spec.PullEfficiency, Path: path,
		OnComplete: func(*fabric.Flow) { then() },
	})
	if r.batchDepth == 0 {
		r.flushFlows()
	}
}

// memcpyFlow starts a local staging copy (host<->device or peer
// device): no control-plane round trip, near-line-rate goodput.
func (r *runner) memcpyFlow(name string, bytes float64, path []*fabric.Link, then func()) {
	r.pendingNow = append(r.pendingNow, fabric.FlowSpec{
		Name: name, Size: bytes, Eff: r.cfg.Spec.MemcpyEfficiency, Path: path,
		OnComplete: func(*fabric.Flow) { then() },
	})
	if r.batchDepth == 0 {
		r.flushFlows()
	}
}

func (w *worker) releaseCredit() {
	w.credits++
	w.outstanding--
	w.pump()
}

// issue starts the transfer for a task. Arrival fires the buffer signal
// the compute side waits on.
func (w *worker) issue(t fetchTask) {
	r := w.r
	bytes := r.expertBytes()
	arrive := func() {
		if t.backward {
			w.onGPUBwd.get(t.key).fire()
		} else {
			if r.cfg.Trace && w.idx == 0 {
				r.tl.AddMark(fmt.Sprintf("expert.block%d.ep%d.arrived", t.key.block, t.key.expert), r.c.Engine.Now())
			}
			w.onGPUFwd.get(t.key).fire()
		}
	}
	name := fmt.Sprintf("fetch.b%d.e%d.%v", t.key.block, t.key.expert, w.g)
	switch t.kind {
	case taskInternal:
		owner := r.c.GPU(r.ownerOf(t.key.block, t.key.expert))
		r.pullFlow(name, bytes, r.c.PathGPUToGPU(owner, w.g), arrive)
	case taskExternalPCIe:
		r.memcpyFlow(name, bytes, r.c.PathLocalCPUToGPU(w.g), arrive)
	case taskExternalPeer:
		r.memcpyFlow(name, bytes, r.c.PathGPUToGPU(w.peer().g, w.g), arrive)
	case taskReload:
		r.memcpyFlow(name, bytes, r.c.PathLocalCPUToGPU(w.g), arrive)
	case taskExternalGDR:
		owner := r.c.GPU(r.ownerOf(t.key.block, t.key.expert))
		r.pullFlow(name, bytes, r.c.PathGPUToGPU(owner, w.g), arrive)
	}
}

// enqueueForwardFetches builds the priority-ordered fetch list of one
// data-centric block for this worker and registers the block's external
// experts with the Inter-Node Scheduler.
func (w *worker) enqueueForwardFetches(b int) {
	r := w.r
	model := r.cfg.Model
	ePerWorker := model.ExpertsPerWorker(b, r.c.NumGPUs())
	m := r.cfg.Spec.GPUsPerNode
	machineBase := w.g.Machine.Index * m * ePerWorker
	machineExperts := m * ePerWorker
	localRank := w.g.Local

	// Internal experts: Algorithm 1 staggered order when topology-aware,
	// plain ascending order otherwise (the contended schedule of Fig 7a).
	var internal []int
	appendIfNeeded := func(pos int) {
		e := machineBase + pos
		if r.ownerOf(b, e) != w.idx && r.needs(w.idx, b, e) {
			internal = append(internal, e)
		}
	}
	if r.cfg.TopoAware {
		for i := (localRank + 1) * ePerWorker; i < machineExperts; i++ {
			appendIfNeeded(i)
		}
		for i := 0; i < localRank*ePerWorker; i++ {
			appendIfNeeded(i)
		}
	} else {
		for i := 0; i < machineExperts; i++ {
			appendIfNeeded(i)
		}
	}
	for _, e := range internal {
		w.queue = append(w.queue, fetchTask{key: expertKey{b, e}, kind: taskInternal})
	}

	// External experts: register the machine-level pull (single flight
	// in the Cache Manager), then order the stage-2 copies. With the
	// PCIe-switch-aware strategy, the two peers split the list in two
	// groups and interleave own-group PCIe copies with peer relays.
	numExperts := model.Blocks[b].NumExperts
	var externals []int
	for e := 0; e < numExperts; e++ {
		if r.ownerOf(b, e)/m == w.g.Machine.Index {
			continue // internal or own
		}
		if !r.needs(w.idx, b, e) {
			continue
		}
		if r.cfg.DisableCache {
			w.queue = append(w.queue, fetchTask{key: expertKey{b, e}, kind: taskExternalGDR})
			continue
		}
		externals = append(externals, e)
		w.machine().requestCache(expertKey{b, e})
	}
	peer := w.peer()
	if r.cfg.TopoAware && peer != nil {
		var mine, theirs []fetchTask
		for rank, e := range externals {
			k := expertKey{b, e}
			if rank%2 == localRank%2 {
				mine = append(mine, fetchTask{key: k, kind: taskExternalPCIe})
			} else if r.needs(peer.idx, b, e) {
				theirs = append(theirs, fetchTask{key: k, kind: taskExternalPeer})
			} else {
				mine = append(mine, fetchTask{key: k, kind: taskExternalPCIe})
			}
		}
		for i := 0; i < len(mine) || i < len(theirs); i++ {
			if i < len(mine) {
				w.queue = append(w.queue, mine[i])
			}
			if i < len(theirs) {
				w.queue = append(w.queue, theirs[i])
			}
		}
	} else {
		for _, e := range externals {
			w.queue = append(w.queue, fetchTask{key: expertKey{b, e}, kind: taskExternalPCIe})
		}
	}
}

// enqueueBackwardReloads queues the PCIe reloads of every expert this
// worker fetched (and offloaded) during the forward pass of block b.
func (w *worker) enqueueBackwardReloads(b int) {
	r := w.r
	numExperts := r.cfg.Model.Blocks[b].NumExperts
	for e := 0; e < numExperts; e++ {
		if r.ownerOf(b, e) == w.idx || !r.needs(w.idx, b, e) {
			continue
		}
		w.queue = append(w.queue, fetchTask{key: expertKey{b, e}, kind: taskReload, backward: true})
	}
}

// --- Inter-Node Scheduler ------------------------------------------------

// requestCache asks the Cache Manager for an external expert. The first
// request starts the cross-machine pull (striped over the machine's
// NICs); later requests coalesce onto the same arrival signal — the
// hierarchical fetch that makes each expert cross the NICs once per
// machine per iteration (§5.1.2).
func (ms *machineSched) requestCache(k expertKey) {
	if ms.fetchStarted[k] {
		return
	}
	ms.fetchStarted[k] = true
	r := ms.r
	owner := r.c.GPU(r.ownerOf(k.block, k.expert))
	via := k.expert % len(ms.m.Switches)
	name := fmt.Sprintf("cachefetch.b%d.e%d.m%d", k.block, k.expert, ms.m.Index)
	r.pullFlow(name, r.expertBytes(), r.c.PathGPUToRemoteCPU(owner, ms.m, via), func() {
		ms.cacheArrived.get(k).fire()
	})
}

// localContributors counts the machine's workers holding tokens for an
// expert — the number of gradients the pre-reduce waits for.
func (ms *machineSched) localContributors(k expertKey) int {
	n := 0
	for _, g := range ms.m.GPUs {
		if ms.r.needs(g.Global, k.block, k.expert) {
			n++
		}
	}
	return n
}

// gradArrive records one local worker's gradient reaching host memory.
// When the last local contribution lands, the CPU pre-reduces them and
// pushes a single gradient to the expert's owner.
func (ms *machineSched) gradArrive(k expertKey) {
	ms.gradArrived[k]++
	if ms.gradArrived[k] < ms.localContributors(k) {
		return
	}
	r := ms.r
	n := ms.gradArrived[k]
	// The reduce+push pipeline counts as one outstanding delivery from
	// the moment the last contribution lands, so the iteration cannot
	// appear finished while the CPU is still reducing.
	r.pendingGrads++
	ms.m.CPU.Submit(fmt.Sprintf("prereduce.b%d.e%d", k.block, k.expert),
		r.costs.GradReduce(n), func() {
			owner := r.c.GPU(r.ownerOf(k.block, k.expert))
			via := k.expert % len(ms.m.Switches)
			r.pullFlow(fmt.Sprintf("gradpush.b%d.e%d.m%d", k.block, k.expert, ms.m.Index),
				r.expertBytes(), r.c.PathCPUToRemoteGPU(ms.m, via, owner),
				r.gradDelivered)
		})
}

// --- iteration end -------------------------------------------------------

func (r *runner) gradDelivered() {
	r.pendingGrads--
	r.maybeFinishIteration()
}

func (r *runner) workerBackwardDone() {
	r.workersBwdDone++
	r.maybeFinishIteration()
}

// maybeFinishIteration runs the final synchronisation of §5.1.1: once
// every worker finished backward and every gradient reached its owner,
// all workers apply the optimizer step (and the cache is cleared, which
// costs nothing in the model).
func (r *runner) maybeFinishIteration() {
	if r.workersBwdDone < len(r.workers) || r.pendingGrads > 0 || r.optimizerSubmitted {
		return
	}
	r.optimizerSubmitted = true
	if r.cfg.ForwardOnly {
		return // inference: no parameter update
	}
	dur := r.costs.OptimizerStep(r.c.NumGPUs())
	for _, w := range r.workers {
		w.g.Compute.Submit("optimizer", dur, nil)
	}
}

// startDenseAllReduce launches the data-parallel AllReduce of the dense
// gradients, overlapped with backward compute like real frameworks do.
func (r *runner) startDenseAllReduce() {
	if r.backwardStarted {
		return
	}
	r.backwardStarted = true
	collective.RingAllReduce(r.c, r.c.GPUs(), r.costs.DenseGradBytes(r.c.NumGPUs()),
		"allreduce.dense", nil)
}
