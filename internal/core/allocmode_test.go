package core

import (
	"math"
	"testing"

	"janus/internal/config"
	"janus/internal/fabric"
	"janus/internal/topology"
)

// The allocator mode must not be observable from a full training run:
// an end-to-end iteration (gate, fetch pipeline, collectives, gradient
// push) over the real topology produces bitwise-identical times and
// traffic under the hierarchical allocator as under the incremental
// default. This pins the fabric-level bit-identity contract at the
// highest call site in the repository.
func TestRunAllocModeDifferential(t *testing.T) {
	model := config.MoEBERT(32)
	run := func(mode fabric.AllocMode) Config {
		spec := topology.DefaultSpec(4)
		spec.AllocMode = mode
		return Config{Model: model, Spec: spec, TopoAware: true, Prefetch: true}
	}
	inc := mustRun(t, run(fabric.ModeIncremental))
	hier := mustRun(t, run(fabric.ModeHierarchical))
	pairs := [][2]float64{
		{inc.IterationTime, hier.IterationTime},
		{inc.ForwardTime, hier.ForwardTime},
		{inc.BackwardTime, hier.BackwardTime},
		{inc.CommBlockedTime, hier.CommBlockedTime},
		{inc.InterNodeEgressBytes, hier.InterNodeEgressBytes},
		{inc.PeakMemBytes, hier.PeakMemBytes},
	}
	for i, m := range inc.PerMachineEgress {
		pairs = append(pairs, [2]float64{m, hier.PerMachineEgress[i]})
	}
	for i, p := range pairs {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Errorf("sample %d: incremental=%v hierarchical=%v", i, p[0], p[1])
		}
	}
	for class, v := range inc.TrafficByClass {
		if math.Float64bits(v) != math.Float64bits(hier.TrafficByClass[class]) {
			t.Errorf("traffic[%s]: incremental=%v hierarchical=%v", class, v, hier.TrafficByClass[class])
		}
	}
}
