package core

import (
	"math"
	"testing"

	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/engine"
	"janus/internal/expertcentric"
	"janus/internal/gate"
	"janus/internal/topology"
)

func mustRun(t *testing.T, cfg Config) engine.Report {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func janusCfg(model config.Model, machines int) Config {
	return Config{
		Model: model, Spec: topology.DefaultSpec(machines),
		TopoAware: true, Prefetch: true,
	}
}

func TestRunCompletesAndChoosesDC(t *testing.T) {
	r := mustRun(t, janusCfg(config.MoEBERT(32), 4))
	if r.OOM {
		t.Fatal("unexpected OOM")
	}
	if r.IterationTime <= 0 || r.ForwardTime <= 0 || r.ForwardTime >= r.IterationTime {
		t.Fatalf("times: iter=%v fwd=%v", r.IterationTime, r.ForwardTime)
	}
	for _, bi := range config.MoEBERT(32).MoEBlockIndices() {
		if r.Paradigms[bi] != config.DataCentric {
			t.Fatalf("block %d paradigm = %v, want data-centric (R=5.33)", bi, r.Paradigms[bi])
		}
	}
}

// The Table 1 headline: Janus's inter-node traffic matches the
// Comm_DC closed form — each machine pulls each external expert once
// per block per direction, plus the analytic AllReduce cross-bytes.
func TestTrafficMatchesCommDC(t *testing.T) {
	model := config.MoEBERT(32)
	spec := topology.DefaultSpec(4)
	r := mustRun(t, Config{Model: model, Spec: spec, TopoAware: true, Prefetch: true})

	costs := engine.NewCosts(spec, model)
	nGPU, n := 32, 4
	dgb := costs.DenseGradBytes(nGPU)
	arCross := float64(2*(nGPU-1)) * float64(n) * dgb / float64(nGPU)
	// Forward fetch + backward gradient push, per machine, times n
	// machines, times MoE blocks.
	moe := 2 * costmodel.CommDCForwardPerMachine(model.H, 1, 8, n) * float64(n) * 4
	want := moe + arCross
	if math.Abs(r.InterNodeEgressBytes-want)/want > 0.001 {
		t.Fatalf("inter-node bytes = %.0f, want %.0f (moe %.0f + ar %.0f)",
			r.InterNodeEgressBytes, want, moe, arCross)
	}
}

// The Figure 14 shape: Janus beats the expert-centric baseline on all
// three Table-1 models at 32 GPUs, and the advantage is largest for
// Transformer-XL (R=16) — matching the paper's 1.28/1.48/1.52 ordering.
func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	spec := topology.DefaultSpec(4)
	speedups := map[string]float64{}
	for _, model := range []config.Model{config.MoEBERT(32), config.MoEGPT(32), config.MoETransformerXL(32)} {
		base, err := expertcentric.Run(expertcentric.Config{Model: model, Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		janus := mustRun(t, janusCfg(model, 4))
		sp := base.IterationTime / janus.IterationTime
		speedups[model.Name] = sp
		t.Logf("%s: tutel %.1fms janus %.1fms speedup %.2fx",
			model.Name, base.IterationTime*1e3, janus.IterationTime*1e3, sp)
		if sp <= 1.05 {
			t.Errorf("%s: Janus not faster (%.2fx)", model.Name, sp)
		}
	}
	if !(speedups["MoE-TransformerXL"] > speedups["MoE-BERT"]) {
		t.Errorf("speedup ordering wrong: %+v", speedups)
	}
}

// The Figure 12 ablation shape: plain data-centric already wins, and
// topo-aware + prefetch each add something (or at least do not hurt).
func TestFig12AblationOrdering(t *testing.T) {
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)
	ec := config.ExpertCentric
	base := mustRun(t, Config{Model: model, Spec: spec, ForceParadigm: &ec})
	dc := mustRun(t, Config{Model: model, Spec: spec})
	topo := mustRun(t, Config{Model: model, Spec: spec, TopoAware: true})
	full := mustRun(t, Config{Model: model, Spec: spec, TopoAware: true, Prefetch: true})

	t.Logf("ec=%.1fms dc=%.1fms +topo=%.1fms +prefetch=%.1fms",
		base.IterationTime*1e3, dc.IterationTime*1e3, topo.IterationTime*1e3, full.IterationTime*1e3)
	if !(dc.IterationTime < base.IterationTime) {
		t.Error("data-centric not faster than expert-centric baseline")
	}
	if topo.IterationTime > dc.IterationTime*1.001 {
		t.Error("topo-aware slowed things down")
	}
	if full.IterationTime > topo.IterationTime*1.001 {
		t.Error("prefetch slowed things down")
	}
	if !(full.IterationTime < dc.IterationTime) {
		t.Error("topo+prefetch gave no improvement at all")
	}
}

// Credit invariant: no worker ever holds more than C outstanding pulls.
func TestCreditBufferInvariant(t *testing.T) {
	for _, credits := range []int{1, 2, 4, 8} {
		cfg := janusCfg(config.MoEGPT(16), 2)
		cfg.CreditSize = credits
		r, err := newRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r.run()
		for _, w := range r.workers {
			if w.maxOutstanding > credits {
				t.Fatalf("C=%d: worker %d reached %d outstanding pulls", credits, w.idx, w.maxOutstanding)
			}
			if w.outstanding != 0 {
				t.Fatalf("C=%d: worker %d ended with %d outstanding", credits, w.idx, w.outstanding)
			}
			if len(w.queue) != 0 {
				t.Fatalf("C=%d: worker %d ended with %d queued tasks", credits, w.idx, len(w.queue))
			}
		}
	}
}

// Cache Manager single-flight: each machine fetches each external
// expert exactly once per iteration.
func TestCacheManagerSingleFlight(t *testing.T) {
	model := config.MoETransformerXL(16)
	cfg := janusCfg(model, 2)
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.run()
	// 16 experts per block, 8 per machine, so 8 external per machine per
	// block; 12 blocks.
	wantPerMachine := 8 * 12
	for mi, ms := range r.machines {
		if got := len(ms.fetchStarted); got != wantPerMachine {
			t.Fatalf("machine %d started %d cache fetches, want %d", mi, got, wantPerMachine)
		}
	}
}

// Figure 16 contrast: the data-centric engine does NOT OOM at the
// S=512 configuration that kills the expert-centric baseline.
func TestNoOOMWhereTutelOOMs(t *testing.T) {
	model := config.MoEBERT(32)
	model.S = 512
	model.K = 4
	base, err := expertcentric.Run(expertcentric.Config{Model: model, Spec: topology.DefaultSpec(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !base.OOM {
		t.Fatal("baseline should OOM at S=512")
	}
	r := mustRun(t, janusCfg(model, 4))
	if r.OOM {
		t.Fatal("Janus should not OOM at S=512")
	}
	if r.IterationTime <= 0 {
		t.Fatal("Janus S=512 run did not complete")
	}
}

// Figure 17 shape: on PR-MoE, the unified engine (conservative policy)
// is at least as fast as both pure paradigms at both cluster scales.
func TestFig17UnifiedWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	cases := []struct {
		name     string
		model    config.Model
		machines int
	}{
		{"16GPU", config.PRMoETransformerXL(16, 64, 32), 4},  // 4 machines x 4 GPUs
		{"32GPU", config.PRMoETransformerXL(32, 128, 64), 4}, // 4 machines x 8 GPUs
	}
	for _, tc := range cases {
		spec := topology.DefaultSpec(tc.machines)
		if tc.name == "16GPU" {
			spec.GPUsPerNode = 4
		}
		model := tc.model
		workers := spec.TotalGPUs()
		mk := func(force *config.Paradigm) engine.Report {
			return mustRun(t, Config{
				Model: model, Spec: spec,
				Policy:        config.ConservativePolicy(),
				ForceParadigm: force,
				TopoAware:     true, Prefetch: true,
				// A realistically skewed gate: the imbalance penalises the
				// synchronous A2A of expert-centric blocks (hardest for the
				// shallow, few-expert blocks), which is the regime §7.5
				// evaluates.
				Assignment: func(block int) gate.Assignment {
					return gate.Zipf(workers, model.Blocks[block].NumExperts,
						int(model.TokensPerWorker()), 0.3, int64(block))
				},
			})
		}
		ec, dc := config.ExpertCentric, config.DataCentric
		pureEC := mk(&ec)
		pureDC := mk(&dc)
		unified := mk(nil)
		t.Logf("%s: pureEC=%.1fms pureDC=%.1fms unified=%.1fms (%.2fx over EC)",
			tc.name, pureEC.IterationTime*1e3, pureDC.IterationTime*1e3,
			unified.IterationTime*1e3, pureEC.IterationTime/unified.IterationTime)
		if unified.IterationTime > pureEC.IterationTime*1.001 {
			t.Errorf("%s: unified slower than pure expert-centric", tc.name)
		}
		if unified.IterationTime > pureDC.IterationTime*1.001 {
			t.Errorf("%s: unified slower than pure data-centric", tc.name)
		}
		// The unified run must actually mix paradigms.
		sawEC, sawDC := false, false
		for _, bi := range tc.model.MoEBlockIndices() {
			switch unified.Paradigms[bi] {
			case config.ExpertCentric:
				sawEC = true
			case config.DataCentric:
				sawDC = true
			}
		}
		if !sawEC || !sawDC {
			t.Errorf("%s: unified did not mix paradigms: %v", tc.name, unified.Paradigms)
		}
	}
}

// Prefetch moves fetch time under the dense blocks: with prefetch, the
// first MoE block's experts should already be arriving before its gate
// finishes (Figure 13's overlap).
func TestFig13PrefetchOverlap(t *testing.T) {
	model := config.MoEGPT(32)
	cfg := janusCfg(model, 4)
	cfg.Trace = true
	r := mustRun(t, cfg)
	arrivals := r.Timeline.MarksNamed("expert.block10.ep")
	if len(arrivals) == 0 {
		t.Fatal("no expert arrival marks recorded")
	}
	gateDone, ok := r.Timeline.MarkAt("fwd.block9.done")
	if !ok {
		t.Fatal("missing block 9 completion mark")
	}
	early := 0
	for _, m := range arrivals {
		if m.At < gateDone {
			early++
		}
	}
	if early == 0 {
		t.Fatalf("prefetch produced no early arrivals (gate at %.3f, first arrival %.3f)",
			gateDone, arrivals[0].At)
	}
	t.Logf("%d/%d experts arrived before block 9 completed", early, len(arrivals))
}

func TestDeterminism(t *testing.T) {
	cfg := janusCfg(config.MoEBERT(16), 2)
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.IterationTime != b.IterationTime || a.InterNodeEgressBytes != b.InterNodeEgressBytes {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v",
			a.IterationTime, a.InterNodeEgressBytes, b.IterationTime, b.InterNodeEgressBytes)
	}
}

func TestImbalancedGateStillCorrectTraffic(t *testing.T) {
	// With a skewed gate, data-centric traffic must not exceed the
	// balanced closed form: workers that need fewer experts pull less.
	model := config.MoEGPT(32)
	spec := topology.DefaultSpec(4)
	skew := mustRun(t, Config{
		Model: model, Spec: spec, TopoAware: true, Prefetch: true,
		Assignment: func(block int) gate.Assignment {
			return gate.Zipf(32, 32, int(model.TokensPerWorker()), 1.5, 3)
		},
	})
	bal := mustRun(t, janusCfg(model, 4))
	if skew.InterNodeEgressBytes > bal.InterNodeEgressBytes*1.001 {
		t.Fatalf("skewed traffic %.0f exceeds balanced %.0f",
			skew.InterNodeEgressBytes, bal.InterNodeEgressBytes)
	}
	// And unlike the expert-centric A2A, the iteration time barely moves
	// with skew (the fetch volume is load-independent).
	if skew.IterationTime > bal.IterationTime*1.25 {
		t.Fatalf("skew hurt data-centric too much: %.4f vs %.4f",
			skew.IterationTime, bal.IterationTime)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := Run(janusCfg(config.MoEBERT(16), 4)); err == nil {
		t.Fatal("16 experts on 32 GPUs accepted")
	}
}

func TestParadigmsHelper(t *testing.T) {
	cfg := Config{Model: config.PRMoETransformerXL(16, 64, 32), Policy: config.ConservativePolicy()}
	p := Paradigms(cfg, 4, 16)
	if p[2] != config.DataCentric || p[5] != config.DataCentric {
		t.Errorf("shallow blocks (R=4) should be data-centric: %v", p)
	}
	if p[8] != config.ExpertCentric || p[11] != config.ExpertCentric {
		t.Errorf("deep blocks (R=1) should be expert-centric: %v", p)
	}
	if p[0] != config.ExpertCentric {
		t.Errorf("dense block paradigm should default to expert-centric")
	}
}
