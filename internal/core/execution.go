package core

import (
	"fmt"

	"janus/internal/collective"
	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/fabric"
)

// --- per-worker forward chain -------------------------------------------

func (w *worker) startForward(b int) {
	r := w.r
	model := r.cfg.Model
	if b == len(model.Blocks) {
		w.fwdDoneAt = r.c.Engine.Now()
		if r.cfg.Trace && w.idx == 0 {
			r.tl.AddMark("fwd.done", w.fwdDoneAt)
		}
		if r.cfg.ForwardOnly {
			// Inference: the iteration ends when every worker's forward
			// pass completes; there is no gradient work.
			r.workerBackwardDone()
			return
		}
		r.startDenseAllReduce()
		if r.cfg.Prefetch {
			// Backward prefetch: all reload requests enter the queue at
			// backward start, in the order backward will need them.
			for i := len(model.Blocks) - 1; i >= 0; i-- {
				if model.Blocks[i].Kind == config.MoE && r.report.Paradigms[i] == config.DataCentric {
					w.enqueueBackwardReloads(i)
				}
			}
			w.pump()
		}
		w.startBackward(len(model.Blocks) - 1)
		return
	}
	blk := model.Blocks[b]
	done := func() {
		if r.cfg.Trace && w.idx == 0 {
			r.tl.AddMark(fmt.Sprintf("fwd.block%d.done", b), r.c.Engine.Now())
		}
		w.startForward(b + 1)
	}
	w.g.Compute.Submit(fmt.Sprintf("attn.fwd.%d", b), r.dur(w.idx, r.costs.AttentionFwd()), func() {
		if blk.Kind == config.Dense {
			w.g.Compute.Submit(fmt.Sprintf("ffn.fwd.%d", b), r.dur(w.idx, r.costs.DenseFFNFwd()), done)
			return
		}
		w.g.Compute.Submit(fmt.Sprintf("gate.fwd.%d", b), r.dur(w.idx, r.costs.GateFwd(blk.NumExperts)), func() {
			switch r.report.Paradigms[b] {
			case config.ExpertCentric:
				r.ecState(b).fwd.join(r, b, w, done, false)
			case config.DataCentric:
				w.runExpertPhaseForward(b, done)
			}
		})
	})
}

// neededExperts lists this worker's experts for a block, split by
// residency.
func (w *worker) neededExperts(b int) (own, fetched []int) {
	a := w.r.assign[b]
	for e := 0; e < a.NumExperts; e++ {
		if !w.r.needs(w.idx, b, e) {
			continue
		}
		if w.r.ownerOf(b, e) == w.idx {
			own = append(own, e)
		} else {
			fetched = append(fetched, e)
		}
	}
	return own, fetched
}

// runExpertPhaseForward executes a data-centric block's expert layer on
// one worker: each needed expert's compute is submitted as soon as the
// expert is resident, the used expert is offloaded to the host and its
// credit released, and the block finishes with the weighted combine.
func (w *worker) runExpertPhaseForward(b int, done func()) {
	r := w.r
	if !r.cfg.Prefetch {
		w.enqueueForwardFetches(b)
		w.pump()
	}
	own, fetched := w.neededExperts(b)
	phaseStart := r.c.Engine.Now()
	pending := len(own) + len(fetched)
	computeSum := 0.0
	combineDur := r.dur(w.idx, r.costs.Combine())
	finishPhase := func() {
		w.g.Compute.Submit(fmt.Sprintf("combine.fwd.%d", b), combineDur, func() {
			stall := (r.c.Engine.Now() - phaseStart) - computeSum - combineDur
			if stall > 0 {
				w.stallTime += stall
			}
			done()
		})
	}
	if pending == 0 {
		finishPhase()
		return
	}
	a := r.assign[b]
	runExpert := func(e int, isFetched bool) {
		key := expertKey{b, e}
		dur := r.dur(w.idx, r.costs.ExpertFwd(a.Counts[w.idx][e]))
		if isFetched {
			dur += r.fetchOpTime()
		}
		w.g.Compute.Submit(fmt.Sprintf("expert.fwd.%d.e%d", b, e), dur, func() {
			computeSum += dur
			if isFetched {
				// Offload to host memory for backward reuse; the buffer
				// slot frees as soon as the compute finishes (§5.1.1).
				w.releaseCredit()
				key := key
				r.memcpyFlow(fmt.Sprintf("offload.b%d.e%d.%v", b, e, w.g),
					r.expertBytes(), r.c.PathGPUToLocalCPU(w.g), func() {
						w.offloaded.get(key).fire()
					})
			}
			pending--
			if pending == 0 {
				finishPhase()
			}
		})
	}
	for _, e := range own {
		runExpert(e, false)
	}
	for _, e := range fetched {
		e := e
		w.onGPUFwd.get(expertKey{b, e}).wait(func() { runExpert(e, true) })
	}
}

// --- per-worker backward chain --------------------------------------------

func (w *worker) startBackward(b int) {
	r := w.r
	if b < 0 {
		r.workerBackwardDone()
		return
	}
	blk := r.cfg.Model.Blocks[b]
	next := func() { w.startBackward(b - 1) }
	if blk.Kind == config.Dense {
		w.g.Compute.Submit(fmt.Sprintf("dense.bwd.%d", b),
			r.dur(w.idx, r.costs.AttentionBwd()+r.costs.DenseFFNBwd()), next)
		return
	}
	afterExperts := func() {
		w.g.Compute.Submit(fmt.Sprintf("attn.bwd.%d", b), r.dur(w.idx, r.costs.AttentionBwd()), next)
	}
	switch r.report.Paradigms[b] {
	case config.ExpertCentric:
		r.ecState(b).bwd.join(r, b, w, afterExperts, true)
	case config.DataCentric:
		w.runExpertPhaseBackward(b, afterExperts)
	}
}

// runExpertPhaseBackward mirrors the forward phase: experts are
// reloaded from the host (credit-gated), each expert's gradient is
// computed over this worker's token slice and shipped toward the
// expert's owner, with external gradients pre-reduced per machine.
func (w *worker) runExpertPhaseBackward(b int, done func()) {
	r := w.r
	if !r.cfg.Prefetch {
		w.enqueueBackwardReloads(b)
		w.pump()
	}
	own, fetched := w.neededExperts(b)
	phaseStart := r.c.Engine.Now()
	pending := len(own) + len(fetched)
	computeSum := 0.0
	finishPhase := func() {
		stall := (r.c.Engine.Now() - phaseStart) - computeSum
		if stall > 0 {
			w.stallTime += stall
		}
		done()
	}
	if pending == 0 {
		finishPhase()
		return
	}
	a := r.assign[b]
	runExpert := func(e int, isFetched bool) {
		dur := r.dur(w.idx, r.costs.ExpertBwd(a.Counts[w.idx][e]))
		if isFetched {
			dur += r.fetchOpTime()
		}
		w.g.Compute.Submit(fmt.Sprintf("expert.bwd.%d.e%d", b, e), dur, func() {
			computeSum += dur
			if isFetched {
				w.releaseCredit()
			}
			w.sendGrad(b, e)
			pending--
			if pending == 0 {
				finishPhase()
			}
		})
	}
	for _, e := range own {
		runExpert(e, false)
	}
	for _, e := range fetched {
		e := e
		w.onGPUBwd.get(expertKey{b, e}).wait(func() { runExpert(e, true) })
	}
}

// sendGrad routes one expert gradient toward its owner: accumulated
// locally for own experts, pushed over NVLink for internal experts,
// and staged through the Inter-Node Scheduler's pre-reduce for
// external ones (§5.1.2 backward).
func (w *worker) sendGrad(b, e int) {
	r := w.r
	owner := r.ownerOf(b, e)
	if owner == w.idx {
		return
	}
	key := expertKey{b, e}
	bytes := r.expertBytes()
	ownerGPU := r.c.GPU(owner)
	if ownerGPU.Machine == w.g.Machine {
		r.pendingGrads++
		r.pendingNow = append(r.pendingNow, fabric.FlowSpec{
			Name: fmt.Sprintf("grad.b%d.e%d.%v", b, e, w.g),
			Size: bytes, Eff: r.cfg.Spec.PullEfficiency,
			Path:       r.c.PathGPUToGPU(w.g, ownerGPU),
			OnComplete: func(*fabric.Flow) { r.gradDelivered() },
		})
		if r.batchDepth == 0 {
			r.flushFlows()
		}
		return
	}
	r.pendingGrads++
	ms := w.machine()
	r.memcpyFlow(fmt.Sprintf("gradstage.b%d.e%d.%v", b, e, w.g),
		bytes, r.c.PathGPUToLocalCPU(w.g), func() {
			ms.gradArrive(key)
			r.gradDelivered()
		})
}

// --- expert-centric blocks inside Janus ------------------------------------

// ecBlock coordinates the synchronous All-to-All phases of a block the
// policy kept expert-centric.
type ecBlock struct {
	fwd ecPhase
	bwd ecPhase
}

type ecPhase struct {
	workers []*worker
	conts   []func()
	joinAt  []float64
}

func (r *runner) ecState(b int) *ecBlock {
	eb, ok := r.ec[b]
	if !ok {
		eb = &ecBlock{}
		r.ec[b] = eb
	}
	return eb
}

// join registers a worker at the phase barrier; the last arrival runs
// the A2A → expert compute → A2A sequence and then releases everyone.
func (p *ecPhase) join(r *runner, b int, w *worker, cont func(), backward bool) {
	p.workers = append(p.workers, w)
	p.conts = append(p.conts, cont)
	p.joinAt = append(p.joinAt, r.c.Engine.Now())
	if len(p.workers) < len(r.workers) {
		return
	}
	r.runECPhase(b, p, backward)
}

func (r *runner) runECPhase(b int, p *ecPhase, backward bool) {
	a := r.assign[b]
	nw := r.c.NumGPUs()
	tokB := costmodel.TokenBytes(r.cfg.Model.H)
	dispatch := make([][]float64, nw)
	recv := make([]int, nw)
	for w := 0; w < nw; w++ {
		dispatch[w] = make([]float64, nw)
		for e := 0; e < a.NumExperts; e++ {
			v := r.ownerOf(b, e)
			if v != w {
				dispatch[w][v] += float64(a.Counts[w][e]) * tokB
			}
		}
	}
	computeDur := make([]float64, nw)
	for e := 0; e < a.NumExperts; e++ {
		owner := r.ownerOf(b, e)
		load := a.ExpertLoad(e)
		recv[owner] += load
		if backward {
			computeDur[owner] += r.costs.ExpertBwd(load)
		} else {
			computeDur[owner] += r.costs.ExpertFwd(load)
		}
	}
	phase := "fwd"
	if backward {
		phase = "bwd"
	}
	start := r.c.Engine.Now()
	release := func() {
		now := r.c.Engine.Now()
		if r.cfg.Trace {
			r.tl.AddSpan("net", fmt.Sprintf("a2a.%s.%d", phase, b), start, now)
		}
		for i, w := range p.workers {
			stall := (now - p.joinAt[i]) - computeDur[w.idx]
			if stall > 0 {
				w.stallTime += stall
			}
		}
		conts := p.conts
		for _, c := range conts {
			c()
		}
	}
	name := fmt.Sprintf("a2a.%s.%d", phase, b)
	collective.AllToAll(r.c, r.c.GPUs(), dispatch, name+".in", func() {
		barrier := len(r.workers)
		for _, w := range p.workers {
			w.g.Compute.Submit(fmt.Sprintf("expert.%s.%d", phase, b),
				r.dur(w.idx, computeDur[w.idx]), func() {
					barrier--
					if barrier == 0 {
						collective.AllToAll(r.c, r.c.GPUs(), transpose(dispatch), name+".out", release)
					}
				})
		}
	})
}

func transpose(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range out {
		out[i] = make([]float64, len(m))
		for j := range m {
			out[i][j] = m[j][i]
		}
	}
	return out
}
