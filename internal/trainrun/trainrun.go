// Package trainrun drives multi-iteration training simulations: the
// paper's methodology ("we train a large number of iterations and
// report the average statistics", §3.1) applied to either engine, with
// a gate whose routing drifts across iterations the way real MoE gates
// do during training.
//
// Each iteration is an independent deterministic simulation (expert
// weights do not influence timing, only the gate's histogram does), so
// a run is simply a seeded sequence of per-iteration reports plus
// their aggregation.
package trainrun

import (
	"fmt"

	"janus/internal/config"
	"janus/internal/core"
	"janus/internal/engine"
	"janus/internal/expertcentric"
	"janus/internal/gate"
	"janus/internal/metrics"
	"janus/internal/topology"
)

// Engine selects which system trains.
type Engine int

const (
	// Tutel is the expert-centric baseline.
	Tutel Engine = iota
	// Janus is the unified data-centric engine with all optimizations.
	Janus
)

func (e Engine) String() string {
	if e == Tutel {
		return "tutel"
	}
	return "janus"
}

// Config describes a training run.
type Config struct {
	Engine     Engine
	Model      config.Model
	Spec       topology.Spec
	Iterations int

	// Gate drift: iteration i routes with Zipf skew interpolated from
	// SkewStart to SkewEnd (real gates start near-uniform and
	// specialise over training).
	SkewStart, SkewEnd float64
	Seed               int64

	// Janus-only knobs.
	Policy     config.Policy
	CreditSize int
	TopoAware  bool
	Prefetch   bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Iterations < 1 {
		return fmt.Errorf("trainrun: Iterations %d < 1", c.Iterations)
	}
	if c.SkewStart < 0 || c.SkewEnd < 0 {
		return fmt.Errorf("trainrun: negative skew")
	}
	return c.Model.Validate(c.Spec.TotalGPUs())
}

// Result aggregates a run.
type Result struct {
	Engine     Engine
	Iterations int

	// Per-iteration series.
	IterationTimes []float64
	CommBlocked    []float64
	Imbalance      []float64 // gate imbalance factor per iteration

	// Aggregates.
	Time        metrics.Summary
	Comm        metrics.Summary
	TotalBytes  float64 // inter-node bytes across the run
	TokensTotal float64 // tokens processed across the run (all workers)
}

// Throughput returns tokens per second over the whole run.
func (r Result) Throughput() float64 {
	if r.Time.Sum == 0 {
		return 0
	}
	return r.TokensTotal / r.Time.Sum
}

// Run executes the configured number of iterations and aggregates.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	workers := cfg.Spec.TotalGPUs()
	res := Result{Engine: cfg.Engine, Iterations: cfg.Iterations}

	for i := 0; i < cfg.Iterations; i++ {
		frac := 0.0
		if cfg.Iterations > 1 {
			frac = float64(i) / float64(cfg.Iterations-1)
		}
		skew := cfg.SkewStart + (cfg.SkewEnd-cfg.SkewStart)*frac
		seed := cfg.Seed + int64(i)*1000
		assign := func(block int) gate.Assignment {
			return gate.Zipf(workers, cfg.Model.Blocks[block].NumExperts,
				int(cfg.Model.TokensPerWorker()), skew, seed+int64(block))
		}
		// Record the imbalance of the first MoE block as the iteration's
		// representative gate state.
		first := cfg.Model.MoEBlockIndices()[0]
		res.Imbalance = append(res.Imbalance, assign(first).ImbalanceFactor())

		var rep engine.Report
		var err error
		switch cfg.Engine {
		case Tutel:
			rep, err = expertcentric.Run(expertcentric.Config{
				Model: cfg.Model, Spec: cfg.Spec, Assignment: assign,
				SkipMemoryCheck: true,
			})
		case Janus:
			rep, err = core.Run(core.Config{
				Model: cfg.Model, Spec: cfg.Spec, Assignment: assign,
				Policy: cfg.Policy, CreditSize: cfg.CreditSize,
				TopoAware: cfg.TopoAware, Prefetch: cfg.Prefetch,
				SkipMemoryCheck: true,
			})
		default:
			return Result{}, fmt.Errorf("trainrun: unknown engine %d", cfg.Engine)
		}
		if err != nil {
			return Result{}, fmt.Errorf("trainrun: iteration %d: %w", i, err)
		}
		res.IterationTimes = append(res.IterationTimes, rep.IterationTime)
		res.CommBlocked = append(res.CommBlocked, rep.CommBlockedTime)
		res.TotalBytes += rep.InterNodeEgressBytes
		res.TokensTotal += float64(cfg.Model.B) * float64(cfg.Model.S) * float64(workers)
	}
	res.Time = metrics.Summarize(res.IterationTimes)
	res.Comm = metrics.Summarize(res.CommBlocked)
	return res, nil
}

// Render summarises the run like the paper's averaged profiles.
func (r Result) Render() string {
	return fmt.Sprintf(`%s: %d iterations
iteration time  mean %.1f ms  p50 %.1f ms  p99 %.1f ms  (min %.1f, max %.1f)
comm-blocked    mean %.1f ms  (%.0f%% of mean iteration)
throughput      %.2f Mtokens/s
inter-node      %.2f GiB total
`, r.Engine, r.Iterations,
		r.Time.Mean*1e3, r.Time.P50*1e3, r.Time.P99*1e3, r.Time.Min*1e3, r.Time.Max*1e3,
		r.Comm.Mean*1e3, 100*r.Comm.Mean/r.Time.Mean,
		r.Throughput()/1e6, metrics.GiB(r.TotalBytes))
}
