package trainrun

import (
	"strings"
	"testing"

	"janus/internal/config"
	"janus/internal/topology"
)

func cfg(e Engine) Config {
	return Config{
		Engine: e, Model: config.MoEGPT(16), Spec: topology.DefaultSpec(2),
		Iterations: 4, SkewStart: 0.1, SkewEnd: 0.8, Seed: 11,
		TopoAware: true, Prefetch: true,
	}
}

func TestRunAggregates(t *testing.T) {
	res, err := Run(cfg(Janus))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterationTimes) != 4 || len(res.Imbalance) != 4 {
		t.Fatalf("series lengths: %d, %d", len(res.IterationTimes), len(res.Imbalance))
	}
	if res.Time.Mean <= 0 || res.Throughput() <= 0 || res.TotalBytes <= 0 {
		t.Fatalf("degenerate aggregates: %+v", res.Time)
	}
	if !strings.Contains(res.Render(), "janus: 4 iterations") {
		t.Fatalf("render:\n%s", res.Render())
	}
}

// The gate drift makes routing more imbalanced over the run; the
// synchronous baseline's iteration times drift up with it while Janus
// stays nearly flat (the paper's balance claim over a whole run).
func TestDriftHurtsBaselineMore(t *testing.T) {
	tutel, err := Run(cfg(Tutel))
	if err != nil {
		t.Fatal(err)
	}
	janus, err := Run(cfg(Janus))
	if err != nil {
		t.Fatal(err)
	}
	if !(tutel.Imbalance[3] > tutel.Imbalance[0]) {
		t.Fatal("gate drift did not increase imbalance")
	}
	tGrow := tutel.IterationTimes[3] / tutel.IterationTimes[0]
	jGrow := janus.IterationTimes[3] / janus.IterationTimes[0]
	if !(tGrow > jGrow) {
		t.Fatalf("baseline growth %.3f not above janus growth %.3f", tGrow, jGrow)
	}
	if !(janus.Time.Mean < tutel.Time.Mean) {
		t.Fatal("janus not faster on average")
	}
	t.Logf("tutel mean %.1fms (grew %.2fx), janus mean %.1fms (grew %.2fx)",
		tutel.Time.Mean*1e3, tGrow, janus.Time.Mean*1e3, jGrow)
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(cfg(Janus))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg(Janus))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IterationTimes {
		if a.IterationTimes[i] != b.IterationTimes[i] {
			t.Fatal("runs nondeterministic")
		}
	}
}

func TestValidate(t *testing.T) {
	bad := cfg(Janus)
	bad.Iterations = 0
	if _, err := Run(bad); err == nil {
		t.Fatal("zero iterations accepted")
	}
	bad = cfg(Janus)
	bad.SkewStart = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative skew accepted")
	}
	bad = cfg(Janus)
	bad.Model = config.MoEBERT(16)
	bad.Spec = topology.DefaultSpec(4)
	if _, err := Run(bad); err == nil {
		t.Fatal("invalid partition accepted")
	}
	bad = cfg(Engine(99))
	if _, err := Run(bad); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
