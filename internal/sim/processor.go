package sim

// Processor models a serial compute resource: a GPU executes one kernel
// at a time, so submitted work items run strictly in FIFO order with no
// overlap. Communication, modelled elsewhere, can overlap with compute
// because it uses different resources (links).
type Processor struct {
	eng  *Engine
	name string

	busy    bool
	queue   []workItem
	busyAcc float64 // total busy seconds, for utilization accounting
	curEnd  Time

	// OnSpan, if set, is called when a work item finishes, with the item
	// name and its [start, end) interval. Used by the trace recorder.
	OnSpan func(name string, start, end Time)
}

type workItem struct {
	name   string
	dur    float64
	onDone func()
}

// NewProcessor returns an idle processor bound to eng.
func NewProcessor(eng *Engine, name string) *Processor {
	return &Processor{eng: eng, name: name}
}

// Name returns the processor's name.
func (p *Processor) Name() string { return p.name }

// BusySeconds returns the cumulative time spent executing work.
func (p *Processor) BusySeconds() float64 { return p.busyAcc }

// QueueLen returns the number of queued (not yet started) items.
func (p *Processor) QueueLen() int { return len(p.queue) }

// Busy reports whether the processor is currently executing an item.
func (p *Processor) Busy() bool { return p.busy }

// Submit enqueues a work item of the given duration. onDone (may be nil)
// fires when the item completes. Zero-duration items are legal and
// complete via a zero-delay event, preserving FIFO ordering.
func (p *Processor) Submit(name string, dur float64, onDone func()) {
	if dur < 0 {
		panic("sim: negative work duration")
	}
	p.queue = append(p.queue, workItem{name: name, dur: dur, onDone: onDone})
	if !p.busy {
		p.startNext()
	}
}

func (p *Processor) startNext() {
	if len(p.queue) == 0 {
		p.busy = false
		return
	}
	item := p.queue[0]
	p.queue = p.queue[1:]
	p.busy = true
	start := p.eng.Now()
	p.curEnd = start + item.dur
	p.eng.After(item.dur, func() {
		p.busyAcc += item.dur
		if p.OnSpan != nil {
			p.OnSpan(item.name, start, p.eng.Now())
		}
		done := item.onDone
		p.startNext()
		if done != nil {
			done()
		}
	})
}
