package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of order: pos %d got %d", i, v)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.After(1, func() {
		trace = append(trace, e.Now())
		e.After(2, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Fatalf("trace = %v, want [1 3]", trace)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Steps() != 0 {
		t.Fatalf("steps = %d, want 0", e.Steps())
	}
}

func TestEngineCancelWhileOthersPending(t *testing.T) {
	e := NewEngine()
	var got []int
	ev := e.At(2, func() { got = append(got, 2) })
	e.At(1, func() {
		got = append(got, 1)
		e.Cancel(ev)
	})
	e.At(3, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(1, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events", fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v, want 5 events", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want clock advanced to 10", e.Now())
	}
}

// Property: events always fire in non-decreasing timestamp order, no
// matter the insertion order.
func TestEngineMonotonicProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			at := rng.Float64() * 100
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired) && len(fired) == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: determinism — two engines fed the same schedule produce the
// same firing sequence.
func TestEngineDeterminismProperty(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []Time
		for i := 0; i < 50; i++ {
			e.At(rng.Float64()*10, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		return fired
	}
	prop := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProcessorSerializes(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, "gpu0")
	var spans [][2]Time
	p.OnSpan = func(_ string, s, en Time) { spans = append(spans, [2]Time{s, en}) }
	p.Submit("a", 2, nil)
	p.Submit("b", 3, nil)
	p.Submit("c", 1, nil)
	e.Run()
	want := [][2]Time{{0, 2}, {2, 5}, {5, 6}}
	if len(spans) != len(want) {
		t.Fatalf("spans = %v", spans)
	}
	for i := range want {
		if spans[i] != want[i] {
			t.Fatalf("span %d = %v, want %v", i, spans[i], want[i])
		}
	}
	if p.BusySeconds() != 6 {
		t.Fatalf("busy = %v, want 6", p.BusySeconds())
	}
}

func TestProcessorCompletionOrderAndCallbacks(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, "gpu0")
	var order []string
	p.Submit("a", 1, func() { order = append(order, "a") })
	// Submit from within a completion callback: must queue behind nothing
	// and run immediately after.
	p.Submit("b", 1, func() {
		order = append(order, "b")
		p.Submit("d", 1, func() { order = append(order, "d") })
	})
	p.Submit("c", 1, func() { order = append(order, "c") })
	e.Run()
	want := "abcd"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
	if e.Now() != 4 {
		t.Fatalf("Now = %v, want 4", e.Now())
	}
}

func TestProcessorZeroDuration(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, "gpu0")
	done := 0
	for i := 0; i < 10; i++ {
		p.Submit("z", 0, func() { done++ })
	}
	e.Run()
	if done != 10 {
		t.Fatalf("done = %d, want 10", done)
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %v, want 0", e.Now())
	}
}

// Property: for random workloads, total busy time equals the sum of
// durations and the processor finishes at exactly that sum (work
// conservation for a serial resource fed at t=0).
func TestProcessorWorkConservationProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		p := NewProcessor(e, "gpu")
		count := int(n%32) + 1
		var sum float64
		for i := 0; i < count; i++ {
			d := rng.Float64()
			sum += d
			p.Submit("w", d, nil)
		}
		e.Run()
		const eps = 1e-9
		return abs(p.BusySeconds()-sum) < eps && abs(e.Now()-sum) < eps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
