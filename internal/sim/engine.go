// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled (FIFO tie-breaking), which makes every simulation in this
// repository fully deterministic: the same inputs always produce the
// same timeline, bit for bit.
//
// Time is modelled as float64 seconds. All durations in the repository
// are derived from byte counts divided by bandwidths or FLOP counts
// divided by throughputs, so float64 precision (~15 significant digits)
// is far beyond what the model claims.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback. It is returned by At and After so the
// caller can cancel it before it fires.
type Event struct {
	at       Time
	seq      uint64 // FIFO tie-breaker for events at the same instant
	fn       func()
	canceled bool
	index    int // heap index, -1 when not queued
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stepped uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return e.queue.Len() }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.stepped }

// At schedules fn to run at virtual time t. Scheduling in the past
// (t < Now) panics: it always indicates a logic error in a model, and
// silently clamping would hide it.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an event that already fired
// or was already cancelled is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
		ev.index = -1
	}
}

// Step executes the next pending event and advances the clock to its
// timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = -1
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.stepped++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t (even if no event fired at t).
func (e *Engine) RunUntil(t Time) {
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
