package serving

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"janus/internal/metrics"
	"janus/internal/moe"
	"janus/internal/transport"
)

// fakeBackend gives the ladder tests full control over every rung's
// entry condition: which experts have alive owners, which have
// replicas, which addresses are gray-slow, and how slow the owner-side
// compute is. Serve computes real outputs from a truth plane so the
// differential assertions are bitwise.
type fakeBackend struct {
	n, h int

	mu         sync.Mutex
	experts    map[int]*moe.Expert
	step       int
	ownerDown  map[int]bool
	replicaUp  map[int]bool
	slow       map[string]bool
	ownerDelay time.Duration
	ownerErr   error
	ownerProv  byte
	fetchErr   error
}

func newFakeBackend(n, h int, seed int64) *fakeBackend {
	b := &fakeBackend{
		n: n, h: h,
		experts:   make(map[int]*moe.Expert, n),
		ownerDown: make(map[int]bool),
		replicaUp: make(map[int]bool),
		slow:      make(map[string]bool),
		ownerProv: transport.ProvOwner,
	}
	for e := 0; e < n; e++ {
		b.experts[e] = moe.NewExpert(h, seed+int64(10*e))
	}
	return b
}

func (b *fakeBackend) plane() map[int]*moe.Expert {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]*moe.Expert, b.n)
	for e, ex := range b.experts {
		out[e] = ex.Clone()
	}
	return out
}

func (b *fakeBackend) NumExperts() int { return b.n }
func (b *fakeBackend) Hidden() int     { return b.h }

func (b *fakeBackend) Step() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.step
}

func (b *fakeBackend) OwnerAddr(e int) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.ownerDown[e] {
		return "", false
	}
	return fmt.Sprintf("owner:%d", e), true
}

func (b *fakeBackend) ReplicaAddr(e int) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.replicaUp[e] {
		return "", false
	}
	return fmt.Sprintf("replica:%d", e), true
}

func (b *fakeBackend) PeerSlow(addr string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.slow[addr]
}

func (b *fakeBackend) Serve(ctx context.Context, addr string, e int, payload []byte) (byte, []float32, error) {
	_, rows, cols, data, err := transport.DecodeServe(payload)
	if err != nil {
		return 0, nil, err
	}
	b.mu.Lock()
	ex := b.experts[e]
	delay, oerr, prov := b.ownerDelay, b.ownerErr, b.ownerProv
	b.mu.Unlock()
	if strings.HasPrefix(addr, "owner:") {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			}
		}
		if oerr != nil {
			return 0, nil, oerr
		}
	} else {
		prov = transport.ProvReplica
	}
	return prov, forwardLocal(ex, rows, cols, data), nil
}

func (b *fakeBackend) FetchExpert(e int) (*moe.Expert, int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fetchErr != nil {
		return nil, 0, b.fetchErr
	}
	return b.experts[e].Clone(), b.step, nil
}

func testConfig(b Backend) Config {
	return Config{
		Backend: b, Seed: 9, TopK: 2, Zipf: 0.8,
		RowsPerRequest: 2, QueueCap: 8,
		Deadline: 2 * time.Second, Workers: 1, MaxBatch: 4,
		MaxStalenessSteps: 3,
	}
}

// mustAnswer submits and requires an answered terminal.
func mustAnswer(t *testing.T, f *Frontend, id uint64) Result {
	t.Helper()
	res := f.Submit(context.Background(), id)
	if res.Err != nil {
		t.Fatalf("req %d: %v", id, res.Err)
	}
	return res
}

// The ladder, one transition per row: each case arranges exactly one
// rung's entry condition and pins the terminal rung, the counter that
// moved, and (for answered rungs) that the output is the bitwise
// reference. serveBatch is driven directly so queue pressure is a
// controlled input rather than a race.
func TestLadderTransitions(t *testing.T) {
	cases := []struct {
		name     string
		arrange  func(b *fakeBackend, f *Frontend)
		pressure int
		wantRung int
		wantErr  error
	}{
		{
			name:     "full: owner answers",
			arrange:  func(b *fakeBackend, f *Frontend) {},
			wantRung: metrics.RungFull,
		},
		{
			name: "replica by provenance: owner address serves a replica copy",
			arrange: func(b *fakeBackend, f *Frontend) {
				b.mu.Lock()
				b.ownerProv = transport.ProvReplica
				b.mu.Unlock()
			},
			wantRung: metrics.RungReplica,
		},
		{
			name: "replica by address: owner dead, replica alive",
			arrange: func(b *fakeBackend, f *Frontend) {
				b.mu.Lock()
				for e := 0; e < b.n; e++ {
					b.ownerDown[e] = true
					b.replicaUp[e] = true
				}
				b.mu.Unlock()
			},
			wantRung: metrics.RungReplica,
		},
		{
			name: "stale: owner and replica dead, cache fresh enough",
			arrange: func(b *fakeBackend, f *Frontend) {
				b.mu.Lock()
				for e := 0; e < b.n; e++ {
					b.ownerDown[e] = true
				}
				b.step = 3 // cache warmed at step 0; within MaxStalenessSteps
				b.mu.Unlock()
			},
			wantRung: metrics.RungStale,
		},
		{
			name:     "top1: queue pressure degrades routing",
			arrange:  func(b *fakeBackend, f *Frontend) {},
			pressure: 5,
			wantRung: metrics.RungTop1,
		},
		{
			name: "top1 beats stale: pressured and degraded",
			arrange: func(b *fakeBackend, f *Frontend) {
				b.mu.Lock()
				for e := 0; e < b.n; e++ {
					b.ownerDown[e] = true
				}
				b.step = 2
				b.mu.Unlock()
			},
			pressure: 5,
			wantRung: metrics.RungTop1,
		},
		{
			name: "shed: ladder exhausted",
			arrange: func(b *fakeBackend, f *Frontend) {
				b.mu.Lock()
				for e := 0; e < b.n; e++ {
					b.ownerDown[e] = true
				}
				b.step = 99 // cache hopelessly stale
				b.mu.Unlock()
			},
			wantRung: metrics.RungShed,
			wantErr:  ErrShed,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newFakeBackend(6, 8, 21)
			cfg := testConfig(b)
			cfg.Top1Pressure = 4
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tc.arrange(b, f)

			const reqID = 7
			req := &request{
				id: reqID, start: time.Now(),
				deadline: time.Now().Add(cfg.Deadline),
				pressure: tc.pressure,
				done:     make(chan Result, 1),
			}
			h := f.cfg.Metrics.Handle()
			before := f.Stats()
			f.serveBatch(h, []*request{req})
			res := <-req.done
			d := f.Stats().Sub(before)

			if res.Rung != tc.wantRung && tc.wantErr == nil {
				t.Fatalf("rung = %s, want %s", metrics.RungName(res.Rung), metrics.RungName(tc.wantRung))
			}
			if !errors.Is(res.Err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", res.Err, tc.wantErr)
			}
			if d.Answered[tc.wantRung] != 1 {
				t.Fatalf("rung counter delta = %+v, want %s=1", d, metrics.RungName(tc.wantRung))
			}
			if tc.wantErr != nil {
				if d.Shed != 1 || res.Out != nil {
					t.Fatalf("shed terminal wrong: delta=%+v out=%v", d, res.Out)
				}
				return
			}
			if d.Shed != 0 {
				t.Fatalf("answered request also shed: %+v", d)
			}
			want, err := Reference(b.plane(), f.sampler, cfg.Seed, reqID,
				cfg.RowsPerRequest, b.h, tc.wantRung == metrics.RungTop1)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Out) != len(want) {
				t.Fatalf("answer has %d floats, want %d", len(res.Out), len(want))
			}
			for i := range want {
				if res.Out[i] != want[i] {
					t.Fatalf("answer differs from reference at %d: %v vs %v", i, res.Out[i], want[i])
				}
			}
		})
	}
}

// Degraded answers are bitwise identical to the no-load full-quality
// control when the weights are in sync — the property that makes
// "replica" and "stale" quality-preserving rungs rather than quality
// losses.
func TestDegradedAnswersBitwiseMatchControl(t *testing.T) {
	const reqs = 12
	answers := func(arrange func(b *fakeBackend)) ([]Result, metrics.ServingSnapshot) {
		b := newFakeBackend(6, 8, 33)
		arrange(b)
		f, err := New(testConfig(b))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		out := make([]Result, reqs)
		for i := range out {
			out[i] = mustAnswer(t, f, uint64(i+1))
		}
		return out, f.Stats()
	}

	control, cs := answers(func(b *fakeBackend) {})
	replica, rs := answers(func(b *fakeBackend) {
		for e := 0; e < b.n; e++ {
			b.ownerDown[e] = true
			b.replicaUp[e] = true
		}
	})
	stale, ss := answers(func(b *fakeBackend) {
		for e := 0; e < b.n; e++ {
			b.ownerDown[e] = true
		}
	})

	if cs.Answered[metrics.RungFull] != reqs {
		t.Fatalf("control not all full: %v", cs)
	}
	if rs.Answered[metrics.RungReplica] != reqs {
		t.Fatalf("replica run not all replica rung: %v", rs)
	}
	if ss.Answered[metrics.RungStale] != reqs {
		t.Fatalf("stale run not all stale rung: %v", ss)
	}
	for i := range control {
		for j := range control[i].Out {
			if replica[i].Out[j] != control[i].Out[j] {
				t.Fatalf("replica answer %d differs from control at %d", i, j)
			}
			if stale[i].Out[j] != control[i].Out[j] {
				t.Fatalf("stale answer %d differs from control at %d", i, j)
			}
		}
	}
}

// Admission control: a full queue sheds instead of blocking, and a
// queue whose estimated wait exceeds the deadline sheds with a
// retry-after hint — both count shed once and never answer.
func TestAdmissionSheds(t *testing.T) {
	t.Run("infeasible wait", func(t *testing.T) {
		b := newFakeBackend(4, 8, 5)
		f, err := New(testConfig(b))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		// A cold frontend admits; teach it that one request costs more
		// than the whole deadline.
		f.svcNanos.Store(int64(3 * time.Second))
		res := f.Submit(context.Background(), 1)
		if !errors.Is(res.Err, ErrShed) || res.RetryAfter <= 0 {
			t.Fatalf("infeasible submit = %+v, want shed with retry-after", res)
		}
		s := f.Stats()
		if s.Shed != 1 || s.Answered[metrics.RungShed] != 1 || s.Admitted != 0 {
			t.Fatalf("shed accounting: %v", s)
		}
	})

	t.Run("queue full", func(t *testing.T) {
		b := newFakeBackend(4, 8, 6)
		b.ownerDelay = 50 * time.Millisecond // pin the worker on req 1
		cfg := testConfig(b)
		cfg.QueueCap = 1
		cfg.MaxBatch = 1
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); f.Submit(context.Background(), 1) }()
		// Wait until the worker owns req 1 (queue drained), then fill
		// the queue with req 2 and overflow with req 3.
		deadline := time.Now().Add(time.Second)
		for len(f.queue) != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		go func() { defer wg.Done(); f.Submit(context.Background(), 2) }()
		for len(f.queue) != 1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		res := f.Submit(context.Background(), 3)
		wg.Wait()
		if !errors.Is(res.Err, ErrShed) {
			t.Fatalf("overflow submit = %+v, want shed", res)
		}
		s := f.Stats()
		if s.Shed != 1 || s.Admitted != 2 {
			t.Fatalf("accounting after overflow: %v", s)
		}
		if s.AnsweredTotal() != 2 {
			t.Fatalf("admitted requests not all answered: %v", s)
		}
	})
}

// Deadline propagation stage 4: an answer computed past its budget is
// cancelled at emission, not delivered late.
func TestDeadlineExpiresAtEmission(t *testing.T) {
	b := newFakeBackend(4, 8, 7)
	b.ownerDelay = 40 * time.Millisecond
	cfg := testConfig(b)
	cfg.Deadline = 10 * time.Millisecond
	cfg.MaxStalenessSteps = 0
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res := f.Submit(context.Background(), 1)
	if !errors.Is(res.Err, ErrExpired) || res.Out != nil {
		t.Fatalf("late answer = %+v, want expired with no output", res)
	}
	s := f.Stats()
	if s.DeadlineExpired == 0 || s.AnsweredTotal() != 0 {
		t.Fatalf("expiry accounting: %v", s)
	}
}

// A gray-slow owner is hedged: the replica leg answers well before the
// owner would have, and the hedge is counted.
func TestHedgedReadBeatsSlowOwner(t *testing.T) {
	b := newFakeBackend(4, 8, 8)
	b.ownerDelay = 200 * time.Millisecond
	for e := 0; e < b.n; e++ {
		b.replicaUp[e] = true
		b.slow[fmt.Sprintf("owner:%d", e)] = true
	}
	cfg := testConfig(b)
	cfg.HedgeDelay = 2 * time.Millisecond
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	res := mustAnswer(t, f, 1)
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("hedged answer took %v, owner delay not bypassed", el)
	}
	if res.Rung != metrics.RungReplica {
		t.Fatalf("hedged answer rung = %s, want replica", metrics.RungName(res.Rung))
	}
	if s := f.Stats(); s.Hedged == 0 {
		t.Fatalf("hedge not counted: %v", s)
	}
}

// Terminal-state arithmetic over a mixed run: every submitted request
// lands in exactly one of answered/expired/shed, and the shed counter
// equals the shed-rung terminal count (no shed request also answered).
func TestTerminalInvariants(t *testing.T) {
	b := newFakeBackend(6, 8, 10)
	// Half the experts lose their owner (stale rung picks them up).
	for e := 0; e < b.n; e += 2 {
		b.ownerDown[e] = true
	}
	f, err := New(testConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	const reqs = 40
	for i := 0; i < reqs; i++ {
		f.Submit(context.Background(), uint64(i+1))
	}
	s := f.Stats()
	if got := s.AnsweredTotal() + s.DeadlineExpired + s.Shed; got != reqs {
		t.Fatalf("terminals = %d, want %d: %v", got, reqs, s)
	}
	if s.Shed != s.Answered[metrics.RungShed] {
		t.Fatalf("shed %d != shed-rung terminals %d", s.Shed, s.Answered[metrics.RungShed])
	}
	if s.Admitted != s.AnsweredTotal()+s.DeadlineExpired {
		t.Fatalf("admitted %d, terminals %d+%d", s.Admitted, s.AnsweredTotal(), s.DeadlineExpired)
	}
}

func TestSubmitAfterCloseRejects(t *testing.T) {
	b := newFakeBackend(4, 8, 11)
	f, err := New(testConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if res := f.Submit(context.Background(), 1); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("submit after close = %+v", res)
	}
}

func TestConfigValidation(t *testing.T) {
	b := newFakeBackend(4, 8, 12)
	bad := []Config{
		{},
		{Backend: b, TopK: 9, RowsPerRequest: 1, QueueCap: 1, Deadline: time.Second, Workers: 1, MaxBatch: 1},
		{Backend: b, TopK: 1, RowsPerRequest: 0, QueueCap: 1, Deadline: time.Second, Workers: 1, MaxBatch: 1},
		{Backend: b, TopK: 1, RowsPerRequest: 1, QueueCap: 1, Deadline: 0, Workers: 1, MaxBatch: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}
