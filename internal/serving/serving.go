// Package serving is the overload-robust inference plane over a live
// Janus cluster: a request front-end that admits (or sheds) simulated
// user requests, batches them into bounded micro-batches, routes each
// through the serving gate, and pulls expert outputs over the wire —
// surviving overload and machine failure by walking an explicit SLO
// degradation ladder instead of collapsing.
//
// The ladder, best rung first:
//
//	full    — every expert pull answered by its owner, fresh weights
//	replica — at least one pull served from an in-sync replica
//	stale   — frontend-local weights at most MaxStalenessSteps old
//	top1    — routed top-1 instead of top-k under queue pressure
//	shed    — rejected with retry-after; never answered
//
// Every request ends in exactly one terminal state — answered at the
// rung that produced its bytes, deadline-expired, or shed — and each
// terminal is counted once, so "a shed request never also answered" is
// checkable as an arithmetic invariant over the counters.
//
// Deadlines propagate end to end: the request carries a total budget,
// expert pulls inherit the minimum remaining budget of their batch
// through the wire header, and expired work is cancelled at every
// stage — admission, batch formation, inside the remote store, and
// answer emission.
package serving

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"janus/internal/gate"
	"janus/internal/metrics"
	"janus/internal/moe"
	"janus/internal/tensor"
	"janus/internal/transport"
)

// Backend is the cluster surface the front-end serves from.
// livecluster's ServeBackend implements it; tests substitute fakes to
// drive every ladder transition deterministically.
type Backend interface {
	// NumExperts is the width of the expert plane.
	NumExperts() int
	// Hidden is the model's hidden width H (request row width).
	Hidden() int
	// Step is the training-step clock the stale cache ages against.
	Step() int
	// OwnerAddr returns the dial address of an expert's alive owner.
	OwnerAddr(expert int) (string, bool)
	// ReplicaAddr returns the dial address of an alive in-sync replica
	// holder (never the owner).
	ReplicaAddr(expert int) (string, bool)
	// PeerSlow reports the gray-failure verdict for a dial address.
	PeerSlow(addr string) bool
	// Serve runs one SERVE round trip: micro-batch in, expert outputs
	// and provenance (transport.ProvOwner or ProvReplica) out.
	Serve(ctx context.Context, addr string, expert int, payload []byte) (byte, []float32, error)
	// FetchExpert clones an expert's current weights for the stale
	// cache, stamped with the step the copy was taken at.
	FetchExpert(expert int) (*moe.Expert, int, error)
}

// Terminal errors a Result carries.
var (
	// ErrShed marks a request rejected by admission control or left
	// unservable by every ladder rung; Result.RetryAfter suggests when
	// to retry.
	ErrShed = errors.New("serving: request shed, retry later")
	// ErrExpired marks work cancelled because its deadline budget ran
	// out before an answer could be emitted.
	ErrExpired = errors.New("serving: deadline expired")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("serving: frontend closed")
)

// Config shapes a Frontend.
type Config struct {
	Backend Backend
	// Seed drives request routing, request content, and canary
	// membership; equal seeds replay identical traffic.
	Seed int64
	// TopK experts are routed per request (degraded to 1 under
	// pressure); Zipf is the popularity exponent (0 = uniform).
	TopK int
	Zipf float64
	// RowsPerRequest is each request's token-batch height.
	RowsPerRequest int
	// QueueCap bounds the admission queue; a full queue sheds.
	QueueCap int
	// Deadline is each request's total latency budget.
	Deadline time.Duration
	// Workers drain the queue; MaxBatch bounds one micro-batch.
	Workers  int
	MaxBatch int
	// MaxStalenessSteps bounds the stale rung: cached weights older
	// than this many steps are unusable (0 = only perfectly fresh).
	MaxStalenessSteps int
	// Top1Pressure is the admission-time queue depth at which routing
	// degrades to top-1 (0 = never degrade routing).
	Top1Pressure int
	// HedgeDelay arms hedged reads: a pull whose owner is flagged
	// gray-slow races the owner against a replica started after this
	// delay (0 = never hedge).
	HedgeDelay time.Duration
	// Metrics receives the serving counter family (nil = private).
	Metrics *metrics.Serving
}

func (c Config) validate() error {
	switch {
	case c.Backend == nil:
		return errors.New("serving: nil backend")
	case c.TopK < 1 || c.TopK > c.Backend.NumExperts():
		return fmt.Errorf("serving: TopK %d over %d experts", c.TopK, c.Backend.NumExperts())
	case c.RowsPerRequest < 1:
		return errors.New("serving: RowsPerRequest < 1")
	case c.QueueCap < 1:
		return errors.New("serving: QueueCap < 1")
	case c.Deadline <= 0:
		return errors.New("serving: Deadline <= 0")
	case c.Workers < 1 || c.MaxBatch < 1:
		return errors.New("serving: Workers/MaxBatch < 1")
	case c.Zipf < 0 || c.MaxStalenessSteps < 0 || c.Top1Pressure < 0 || c.HedgeDelay < 0:
		return errors.New("serving: negative knob")
	}
	return nil
}

// Result is a request's terminal state.
type Result struct {
	ReqID uint64
	// Rung is the ladder rung that produced the answer (RungShed for
	// shed requests; RungFull reported on expiry for lack of better).
	Rung int
	// Out is the answer (nil when shed or expired).
	Out []float32
	// Latency is Submit-to-terminal time.
	Latency time.Duration
	// RetryAfter is the shed back-off hint (zero otherwise).
	RetryAfter time.Duration
	// Canary marks an answer computed from the canary checkpoint.
	Canary bool
	// Err is nil for answered requests, ErrShed or ErrExpired else.
	Err error
}

// request is one admitted unit of work.
type request struct {
	id       uint64
	start    time.Time
	deadline time.Time
	pressure int // queue depth observed at admission
	done     chan Result
}

type staleEntry struct {
	ex   *moe.Expert
	step int
}

// Frontend is the serving plane's request front-end.
type Frontend struct {
	cfg     Config
	sampler *gate.Sampler

	mu     sync.RWMutex // guards queue close vs Submit
	closed bool
	queue  chan *request
	wg     sync.WaitGroup

	// svcNanos is the EWMA of per-request service time, the admission
	// feasibility estimate.
	svcNanos atomic.Int64

	staleMu sync.RWMutex
	stale   map[int]staleEntry

	admitH *metrics.ServingHandle

	// Canary plane (canary.go). canaryGen is the rollout fence: it
	// advances on every StartCanary and every rollback, and a canary
	// answer is emitted only if the generation it was computed under is
	// still current.
	canary    atomic.Pointer[canaryState]
	canaryGen atomic.Uint64
}

// New builds a Frontend, warms its stale-weights cache (best effort),
// and starts the worker pool. Callers must Close it.
func New(cfg Config) (*Frontend, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &metrics.Serving{}
	}
	f := &Frontend{
		cfg:     cfg,
		sampler: gate.NewSampler(cfg.Backend.NumExperts(), cfg.TopK, cfg.Zipf, cfg.Seed),
		queue:   make(chan *request, cfg.QueueCap),
		stale:   make(map[int]staleEntry, cfg.Backend.NumExperts()),
		admitH:  cfg.Metrics.Handle(),
	}
	f.RefreshStale()
	for w := 0; w < cfg.Workers; w++ {
		f.wg.Add(1)
		go f.worker()
	}
	return f, nil
}

// Close drains the workers and rejects further Submits.
func (f *Frontend) Close() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.queue)
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// Stats folds the serving counters.
func (f *Frontend) Stats() metrics.ServingSnapshot { return f.cfg.Metrics.Snapshot() }

// RefreshStale re-pulls every expert's current weights into the local
// stale cache (best effort: experts without a reachable owner keep
// their previous entry).
func (f *Frontend) RefreshStale() {
	for e := 0; e < f.cfg.Backend.NumExperts(); e++ {
		ex, step, err := f.cfg.Backend.FetchExpert(e)
		if err != nil {
			continue
		}
		f.staleMu.Lock()
		f.stale[e] = staleEntry{ex: ex, step: step}
		f.staleMu.Unlock()
	}
}

// serviceEstimate is the EWMA per-request service time (zero until the
// first batch completes, so a cold frontend admits freely).
func (f *Frontend) serviceEstimate() time.Duration {
	return time.Duration(f.svcNanos.Load())
}

// observeService folds one per-request service-time sample into the
// admission estimate.
func (f *Frontend) observeService(d time.Duration) {
	const alpha = 0.3
	old := f.svcNanos.Load()
	if old == 0 {
		f.svcNanos.Store(int64(d))
		return
	}
	f.svcNanos.Store(old + int64(alpha*float64(int64(d)-old)))
}

// Submit runs one request to its terminal state: shed at admission,
// answered at some ladder rung, or deadline-expired. It blocks until
// the terminal (bounded by the deadline budget plus scheduling slack)
// and is safe for concurrent use.
func (f *Frontend) Submit(ctx context.Context, reqID uint64) Result {
	start := time.Now()
	depth := len(f.queue)

	// Deadline-feasibility bound: if the queue ahead of this request is
	// already estimated to eat the whole budget, answering late is
	// strictly worse than an honest early reject — shed with the
	// estimate as the retry hint.
	if est := time.Duration(depth+1) * f.serviceEstimate(); est > f.cfg.Deadline {
		return f.shedResult(reqID, start, est)
	}
	req := &request{
		id:       reqID,
		start:    start,
		deadline: start.Add(f.cfg.Deadline),
		pressure: depth,
		done:     make(chan Result, 1),
	}
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return Result{ReqID: reqID, Rung: metrics.RungShed, Err: ErrClosed}
	}
	select {
	case f.queue <- req:
		f.mu.RUnlock()
	default:
		// Queue bound: full means shed, never block the caller.
		f.mu.RUnlock()
		return f.shedResult(reqID, start, f.cfg.Deadline)
	}
	f.admitH.AddAdmitted()
	select {
	case res := <-req.done:
		return res
	case <-ctx.Done():
		// The worker will still drive the request to a terminal and
		// count it; the caller just stops waiting.
		return Result{ReqID: reqID, Rung: metrics.RungShed, Err: ctx.Err()}
	}
}

// shedResult counts and shapes an admission-time shed.
func (f *Frontend) shedResult(reqID uint64, start time.Time, retryAfter time.Duration) Result {
	f.admitH.AddShed()
	f.admitH.AddAnswered(metrics.RungShed)
	return Result{
		ReqID:      reqID,
		Rung:       metrics.RungShed,
		Latency:    time.Since(start),
		RetryAfter: retryAfter,
		Err:        ErrShed,
	}
}

// worker drains the queue in micro-batches: one blocking receive, then
// up to MaxBatch-1 opportunistic drains, so batches grow exactly when
// load does.
func (f *Frontend) worker() {
	defer f.wg.Done()
	h := f.cfg.Metrics.Handle()
	for first := range f.queue {
		batch := make([]*request, 1, f.cfg.MaxBatch)
		batch[0] = first
	fill:
		for len(batch) < f.cfg.MaxBatch {
			select {
			case r, ok := <-f.queue:
				if !ok {
					break fill
				}
				batch = append(batch, r)
			default:
				break fill
			}
		}
		t0 := time.Now()
		f.serveBatch(h, batch)
		f.observeService(time.Since(t0) / time.Duration(len(batch)))
	}
}

// groupMember locates one request's rows inside an expert group.
type groupMember struct {
	reqIdx int
	offset int // row offset inside the group's stacked input
}

// expertGroup is the stacked per-expert work of one micro-batch.
type expertGroup struct {
	expert  int
	members []groupMember
	rows    []float32 // stacked request rows, RowsPerRequest per member
	out     []float32 // stacked outputs after resolve
	rung    int
	failed  bool
}

// serveBatch drives every request of one micro-batch to a terminal.
func (f *Frontend) serveBatch(h *metrics.ServingHandle, batch []*request) {
	now := time.Now()
	rows, hid := f.cfg.RowsPerRequest, f.cfg.Backend.Hidden()

	type plan struct {
		req     *request
		experts []int // ascending combine order
		top1    bool
		canary  *canaryState
		dead    bool
	}
	plans := make([]plan, 0, len(batch))
	for _, req := range batch {
		// Stage 2 cancellation: budget spent waiting in the queue.
		if now.After(req.deadline) {
			h.AddDeadlineExpired()
			req.done <- Result{ReqID: req.id, Latency: time.Since(req.start), Err: ErrExpired}
			continue
		}
		p := plan{req: req}
		if st := f.canaryFor(req.id); st != nil {
			p.canary = st
		}
		drawn := f.sampler.Experts(req.id)
		p.top1 = f.cfg.Top1Pressure > 0 && req.pressure >= f.cfg.Top1Pressure
		if p.top1 {
			drawn = drawn[:1] // the draw-order primary expert
		}
		p.experts = append([]int(nil), drawn...)
		sort.Ints(p.experts)
		plans = append(plans, p)
	}

	// Canary members are computed whole from the canary plane
	// (canary.go); everything else stacks into per-expert groups.
	groups := make(map[int]*expertGroup)
	for i := range plans {
		p := &plans[i]
		if p.canary != nil {
			f.serveCanary(h, p.req, p.experts, p.top1, p.canary)
			p.dead = true
			continue
		}
		data := RequestRows(f.cfg.Seed, p.req.id, rows, hid)
		for _, e := range p.experts {
			g := groups[e]
			if g == nil {
				g = &expertGroup{expert: e}
				groups[e] = g
			}
			g.members = append(g.members, groupMember{reqIdx: i, offset: len(g.rows) / hid})
			g.rows = append(g.rows, data...)
		}
	}

	// Resolve groups in ascending expert order so wire traffic and
	// fallbacks replay identically run to run.
	order := make([]int, 0, len(groups))
	for e := range groups {
		order = append(order, e)
	}
	sort.Ints(order)
	for _, e := range order {
		g := groups[e]
		budget := time.Duration(0)
		for i, m := range g.members {
			rem := time.Until(plans[m.reqIdx].req.deadline)
			if i == 0 || rem < budget {
				budget = rem
			}
		}
		f.resolveGroup(h, g, budget)
	}

	// Emission: combine each request's groups ascending, re-check the
	// deadline, and count the terminal exactly once.
	for i := range plans {
		p := &plans[i]
		if p.dead {
			continue
		}
		req := p.req
		rung := metrics.RungFull
		if p.top1 {
			rung = metrics.RungTop1
		}
		var out []float32
		unservable := false
		for _, e := range p.experts {
			g := groups[e]
			if g.failed {
				unservable = true
				break
			}
			if g.rung > rung {
				rung = g.rung
			}
			var off int
			for _, m := range g.members {
				if m.reqIdx == i {
					off = m.offset * hid
					break
				}
			}
			slice := g.out[off : off+rows*hid]
			if out == nil {
				out = append([]float32(nil), slice...)
			} else {
				for j, v := range slice {
					out[j] += v
				}
			}
		}
		switch {
		case unservable:
			// Bottom of the ladder: no owner, no replica, no usable
			// stale weights. Shed post-admission.
			h.AddShed()
			h.AddAnswered(metrics.RungShed)
			req.done <- Result{
				ReqID: req.id, Rung: metrics.RungShed,
				Latency: time.Since(req.start), RetryAfter: f.cfg.Deadline, Err: ErrShed,
			}
		case time.Now().After(req.deadline):
			// Stage 4 cancellation: the answer exists but arrived past
			// the budget; a late answer is a broken SLO, not a success.
			h.AddDeadlineExpired()
			req.done <- Result{ReqID: req.id, Latency: time.Since(req.start), Err: ErrExpired}
		default:
			h.AddAnswered(rung)
			req.done <- Result{
				ReqID: req.id, Rung: rung, Out: out, Latency: time.Since(req.start),
			}
		}
	}
}

// resolveGroup walks one expert group down the ladder: owner over the
// wire (hedged when the owner is gray-slow), then an in-sync replica
// over the wire, then frontend-local stale weights. Failure of every
// rung marks the group failed (members shed at emission).
func (f *Frontend) resolveGroup(h *metrics.ServingHandle, g *expertGroup, budget time.Duration) {
	rows := len(g.rows) / f.cfg.Backend.Hidden()
	if budget > 0 {
		if payload, err := transport.EncodeServe(uint64(budget/time.Microsecond), rows, f.cfg.Backend.Hidden(), g.rows); err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			ownerAddr, ownerOK := f.cfg.Backend.OwnerAddr(g.expert)
			replAddr, replOK := f.cfg.Backend.ReplicaAddr(g.expert)
			if ownerOK {
				var prov byte
				var data []float32
				var err error
				if f.cfg.HedgeDelay > 0 && replOK && f.cfg.Backend.PeerSlow(ownerAddr) {
					h.AddHedged()
					prov, data, err = f.hedgedServe(ctx, ownerAddr, replAddr, g.expert, payload)
				} else {
					prov, data, err = f.cfg.Backend.Serve(ctx, ownerAddr, g.expert, payload)
				}
				if err == nil {
					g.out = data
					g.rung = metrics.RungFull
					if prov == transport.ProvReplica {
						g.rung = metrics.RungReplica
					}
					cancel()
					return
				}
				// Stage 3 cancellation already happened remotely for
				// expired work; anything else falls down the ladder.
			}
			if replOK {
				if _, data, err := f.cfg.Backend.Serve(ctx, replAddr, g.expert, payload); err == nil {
					g.out = data
					g.rung = metrics.RungReplica
					cancel()
					return
				}
			}
			cancel()
		}
	}
	// Stale rung: local weights no older than MaxStalenessSteps.
	f.staleMu.RLock()
	ent, ok := f.stale[g.expert]
	f.staleMu.RUnlock()
	if ok && f.cfg.Backend.Step()-ent.step <= f.cfg.MaxStalenessSteps {
		g.out = forwardLocal(ent.ex, rows, f.cfg.Backend.Hidden(), g.rows)
		g.rung = metrics.RungStale
		return
	}
	g.failed = true
}

// hedgedServe races the gray-slow owner against a replica started
// HedgeDelay later; the first clean answer wins, and losing legs are
// abandoned to the context.
func (f *Frontend) hedgedServe(ctx context.Context, ownerAddr, replAddr string, expert int, payload []byte) (byte, []float32, error) {
	type leg struct {
		prov byte
		data []float32
		err  error
	}
	ch := make(chan leg, 2)
	call := func(addr string) {
		p, d, err := f.cfg.Backend.Serve(ctx, addr, expert, payload)
		ch <- leg{p, d, err}
	}
	go call(ownerAddr)
	timer := time.NewTimer(f.cfg.HedgeDelay)
	defer timer.Stop()
	pending, hedged := 1, false
	var lastErr error
	for pending > 0 {
		select {
		case l := <-ch:
			pending--
			if l.err == nil {
				return l.prov, l.data, nil
			}
			lastErr = l.err
			if !hedged {
				hedged = true
				pending++
				go call(replAddr)
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				pending++
				go call(replAddr)
			}
		}
	}
	return 0, nil, lastErr
}

// forwardLocal runs one expert forward pass over stacked rows and
// copies the output out of the tensor pool.
func forwardLocal(ex *moe.Expert, rows, hid int, data []float32) []float32 {
	x := tensor.New(rows, hid)
	copy(x.Data, data)
	y, cache := ex.Forward(x)
	cache.Release()
	out := append([]float32(nil), y.Data...)
	tensor.Put(y)
	tensor.Put(x)
	return out
}

// RequestRows is the deterministic content of request reqID: the
// front-end, the in-process reference, and the differential tests all
// derive a request's rows from (seed, reqID) alone so answers are
// comparable bitwise across processes and runs.
func RequestRows(seed int64, reqID uint64, rows, hid int) []float32 {
	m := tensor.NewRandom(rows, hid, 1, seed+int64(reqID))
	return m.Data
}

// Reference computes the full-quality answer of request reqID straight
// from an expert plane — the oracle the differential tests and the
// canary compute path share. Expert outputs combine in ascending
// expert order, matching the front-end exactly.
func Reference(plane map[int]*moe.Expert, sp *gate.Sampler, seed int64, reqID uint64, rows, hid int, top1 bool) ([]float32, error) {
	drawn := sp.Experts(reqID)
	if top1 {
		drawn = drawn[:1]
	}
	experts := append([]int(nil), drawn...)
	sort.Ints(experts)
	data := RequestRows(seed, reqID, rows, hid)
	var out []float32
	for _, e := range experts {
		ex, ok := plane[e]
		if !ok {
			return nil, fmt.Errorf("serving: reference plane missing expert %d", e)
		}
		y := forwardLocal(ex, rows, hid, data)
		if out == nil {
			out = y
		} else {
			for j, v := range y {
				out[j] += v
			}
		}
	}
	return out, nil
}
