package serving

import (
	"math"
	"testing"

	"janus/internal/faultinject"
)

func TestTrafficDiurnalAndMean(t *testing.T) {
	tr := Traffic{BaseRate: 4, DiurnalAmp: 0.5, DiurnalPeriod: 40, Seed: 3}
	var total int
	minRate, maxRate := math.Inf(1), math.Inf(-1)
	const ticks = 4000
	for i := 0; i < ticks; i++ {
		r := tr.Rate(i)
		minRate = math.Min(minRate, r)
		maxRate = math.Max(maxRate, r)
		total += tr.Arrivals(i)
	}
	if minRate < 1.9 || maxRate > 6.1 {
		t.Fatalf("diurnal swing [%v, %v], want ~[2, 6]", minRate, maxRate)
	}
	mean := float64(total) / ticks
	if math.Abs(mean-4) > 0.2 {
		t.Fatalf("long-run mean %v, want ~4 (dither must be unbiased)", mean)
	}
}

func TestTrafficBurstMultiplies(t *testing.T) {
	inj := faultinject.New(1)
	inj.Burst("serve", 10, 20, 4)
	tr := Traffic{BaseRate: 2, Injector: inj, Label: "serve", Seed: 5}
	inj.SetStep(5)
	if got := tr.Rate(0); got != 2 {
		t.Fatalf("pre-burst rate = %v", got)
	}
	inj.SetStep(10)
	if got := tr.Rate(0); got != 8 {
		t.Fatalf("in-burst rate = %v, want 8", got)
	}
	inj.SetStep(20)
	if got := tr.Rate(0); got != 2 {
		t.Fatalf("post-burst rate = %v", got)
	}
}

func TestTrafficDeterministic(t *testing.T) {
	a := Traffic{BaseRate: 2.5, DiurnalAmp: 0.3, DiurnalPeriod: 17, Seed: 9}
	b := a
	for i := 0; i < 500; i++ {
		if a.Arrivals(i) != b.Arrivals(i) {
			t.Fatalf("arrivals diverge at tick %d", i)
		}
	}
	c := Traffic{BaseRate: 2.5, DiurnalAmp: 0.3, DiurnalPeriod: 17, Seed: 10}
	same := true
	for i := 0; i < 500; i++ {
		if a.Arrivals(i) != c.Arrivals(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds dithered identically for 500 ticks")
	}
}

func TestRequestRowsDeterministic(t *testing.T) {
	a := RequestRows(7, 42, 3, 8)
	b := RequestRows(7, 42, 3, 8)
	if len(a) != 24 {
		t.Fatalf("rows length %d, want 24", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay differs at %d", i)
		}
	}
	c := RequestRows(7, 43, 3, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct requests got identical rows")
	}
}
