// Seeded open-loop traffic: the drills offer load at a rate the
// front-end does not control (arrivals keep coming whether or not
// earlier requests finished — the regime where admission control
// matters), shaped by a diurnal ramp and by faultinject Burst windows
// for flash crowds. Expert popularity itself is Zipf via the routing
// Sampler; Traffic only decides how many requests arrive per tick.
package serving

import (
	"math"

	"janus/internal/faultinject"
)

// Traffic generates per-tick arrival counts as a pure function of
// (seed, tick) and the injector's step-gated Burst rules.
type Traffic struct {
	// BaseRate is the mean arrivals per tick before shaping.
	BaseRate float64
	// DiurnalAmp in [0,1) scales a sinusoidal ramp: rate swings between
	// BaseRate·(1−amp) and BaseRate·(1+amp) over DiurnalPeriod ticks
	// (0 = flat).
	DiurnalAmp    float64
	DiurnalPeriod int
	// Injector and Label hook flash crowds in: the effective rate is
	// multiplied by Injector.RateMultiplier(Label), the product of the
	// Burst rules active at the injector's current step (nil = 1).
	Injector *faultinject.Injector
	Label    string
	// Seed dithers fractional rates deterministically.
	Seed int64
}

// Rate returns the effective (possibly fractional) arrival rate at a
// tick.
func (tr Traffic) Rate(tick int) float64 {
	r := tr.BaseRate
	if tr.DiurnalAmp > 0 && tr.DiurnalPeriod > 0 {
		r *= 1 + tr.DiurnalAmp*math.Sin(2*math.Pi*float64(tick)/float64(tr.DiurnalPeriod))
	}
	if tr.Injector != nil {
		r *= tr.Injector.RateMultiplier(tr.Label)
	}
	if r < 0 {
		r = 0
	}
	return r
}

// Arrivals returns the integer arrival count at a tick: the floor of
// Rate plus a seeded Bernoulli draw on the fractional part, so the
// long-run mean matches the rate without any shared RNG state.
func (tr Traffic) Arrivals(tick int) int {
	r := tr.Rate(tick)
	n := int(r)
	frac := r - float64(n)
	if frac > 0 {
		u := float64(splitmixServe(uint64(tr.Seed)^uint64(tick)*0x9E3779B97F4A7C15)>>11) / (1 << 53)
		if u < frac {
			n++
		}
	}
	return n
}
