package serving

import (
	"context"
	"testing"
	"time"

	"janus/internal/metrics"
	"janus/internal/moe"
)

// healthyCanary is a candidate plane built from distinct weights so a
// canary answer is distinguishable from a baseline answer bitwise.
func healthyCanary(n, h int, frac float64) (map[int]*moe.Expert, Canary) {
	plane := make(map[int]*moe.Expert, n)
	for e := 0; e < n; e++ {
		plane[e] = moe.NewExpert(h, int64(5000+7*e))
	}
	return plane, Canary{Version: 2, Plane: plane, Frac: frac}
}

// A healthy canary serves its seeded fraction from the candidate
// plane: members answer candidate bytes (bitwise pinned), non-members
// answer baseline bytes, and membership replays.
func TestCanaryServesSeededFraction(t *testing.T) {
	b := newFakeBackend(5, 8, 40)
	cfg := testConfig(b)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plane, c := healthyCanary(b.n, b.h, 0.5)
	if err := f.StartCanary(c); err != nil {
		t.Fatal(err)
	}
	if v, ok := f.CanaryVersion(); !ok || v != 2 {
		t.Fatalf("CanaryVersion = %d/%v", v, ok)
	}

	base := b.plane()
	var members, others int
	for i := 1; i <= 30; i++ {
		res := mustAnswer(t, f, uint64(i))
		src := base
		if res.Canary {
			members++
			src = plane
		} else {
			others++
		}
		want, err := Reference(src, f.sampler, cfg.Seed, uint64(i), cfg.RowsPerRequest, b.h, false)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if res.Out[j] != want[j] {
				t.Fatalf("req %d (canary=%v) differs from its plane at %d", i, res.Canary, j)
			}
		}
	}
	if members == 0 || others == 0 {
		t.Fatalf("fraction split degenerate: %d canary, %d baseline", members, others)
	}
	s := f.Stats()
	if s.CanaryServed != int64(members) || s.RolledBack != 0 {
		t.Fatalf("canary accounting: %v, want canary=%d", s, members)
	}
}

// The headline rollback drill, seeded: a canary with an injected
// latency regression is auto-rolled-back after the strike budget, and
// after the fence not a single further answer comes from the
// candidate.
func TestCanaryAutoRollbackOnRegression(t *testing.T) {
	b := newFakeBackend(5, 8, 41)
	cfg := testConfig(b)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, c := healthyCanary(b.n, b.h, 1.0) // every request canaries
	c.SLO = 2 * time.Millisecond
	c.Delay = 10 * time.Millisecond // the injected regression
	c.Strikes = 2
	if err := f.StartCanary(c); err != nil {
		t.Fatal(err)
	}

	var canaryAnswers int
	for i := 1; i <= 20; i++ {
		if mustAnswer(t, f, uint64(i)).Canary {
			canaryAnswers++
		}
	}
	s := f.Stats()
	if s.RolledBack != 1 {
		t.Fatalf("rollbacks = %d, want 1: %v", s.RolledBack, s)
	}
	if canaryAnswers != int(c.Strikes) {
		t.Fatalf("candidate answered %d requests, want exactly the strike budget %d", canaryAnswers, c.Strikes)
	}
	if s.CanaryServed != int64(canaryAnswers) {
		t.Fatalf("canary-served counter %d != observed %d", s.CanaryServed, canaryAnswers)
	}
	if _, ok := f.CanaryVersion(); ok {
		t.Fatal("canary still live after rollback")
	}

	// Post-fence: more traffic, zero candidate answers, counter frozen.
	for i := 21; i <= 40; i++ {
		if mustAnswer(t, f, uint64(i)).Canary {
			t.Fatalf("request %d answered by rolled-back canary", i)
		}
	}
	if after := f.Stats(); after.CanaryServed != s.CanaryServed {
		t.Fatalf("canary-served moved after rollback: %d -> %d", s.CanaryServed, after.CanaryServed)
	}
}

// The generation fence catches in-flight work: a canary answer whose
// generation was fenced mid-compute is discarded at emission and the
// request re-answers from the baseline's stale plane — candidate bytes
// never escape.
func TestCanaryFenceDiscardsInFlightAnswer(t *testing.T) {
	b := newFakeBackend(5, 8, 42)
	cfg := testConfig(b)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, c := healthyCanary(b.n, b.h, 1.0)
	if err := f.StartCanary(c); err != nil {
		t.Fatal(err)
	}
	st := f.canary.Load()

	// Fence the generation as a concurrent rollback would, then emit a
	// request that was already computing under the old generation.
	f.RollbackCanary()
	const reqID = 3
	req := &request{
		id: reqID, start: time.Now(),
		deadline: time.Now().Add(cfg.Deadline),
		done:     make(chan Result, 1),
	}
	h := f.cfg.Metrics.Handle()
	f.serveCanary(h, req, f.sampler.Experts(reqID), false, st)
	res := <-req.done
	if res.Canary {
		t.Fatal("fenced canary answer was emitted")
	}
	if res.Err != nil {
		t.Fatalf("fenced request not re-answered: %v", res.Err)
	}
	if res.Rung != metrics.RungStale {
		t.Fatalf("fenced fallback rung = %s, want stale", metrics.RungName(res.Rung))
	}
	want, err := Reference(b.plane(), f.sampler, cfg.Seed, reqID, cfg.RowsPerRequest, b.h, false)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if res.Out[j] != want[j] {
			t.Fatalf("fenced fallback differs from baseline at %d", j)
		}
	}
	if s := f.Stats(); s.CanaryServed != 0 {
		t.Fatalf("fenced answer counted as canary-served: %v", s)
	}
}

func TestStartCanaryValidates(t *testing.T) {
	b := newFakeBackend(5, 8, 43)
	f, err := New(testConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plane, _ := healthyCanary(b.n, b.h, 1)
	if err := f.StartCanary(Canary{Plane: plane, Frac: 0}); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if err := f.StartCanary(Canary{Plane: plane, Frac: 1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	delete(plane, 2)
	if err := f.StartCanary(Canary{Plane: plane, Frac: 0.5}); err == nil {
		t.Fatal("incomplete plane accepted")
	}
}

// RollbackCanary is idempotent per generation: a double rollback (the
// monitor and an operator racing) counts exactly one.
func TestRollbackIdempotent(t *testing.T) {
	b := newFakeBackend(5, 8, 44)
	f, err := New(testConfig(b))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	plane, c := healthyCanary(b.n, b.h, 1)
	_ = plane
	if err := f.StartCanary(c); err != nil {
		t.Fatal(err)
	}
	st := f.canary.Load()
	f.RollbackCanary()
	f.RollbackCanary()
	f.rollbackCanary(f.admitH, st) // stale pointer: must be a no-op
	if s := f.Stats(); s.RolledBack != 1 {
		t.Fatalf("rollbacks = %d, want 1", s.RolledBack)
	}
	if err := f.StartCanary(c); err != nil {
		t.Fatal(err)
	}
	_ = f.Submit(context.Background(), 1)
	f.RollbackCanary()
	if s := f.Stats(); s.RolledBack != 2 {
		t.Fatalf("second rollout rollbacks = %d, want 2", s.RolledBack)
	}
}
