// Canary checkpoint rollout: a seeded fraction of traffic is answered
// from a candidate model version while an SLO monitor compares it to
// the baseline; a regression rolls the canary back automatically, and
// a generation fence guarantees a rolled-back canary never answers
// another request — in-flight canary work is discarded at emission.
package serving

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"janus/internal/metrics"
	"janus/internal/moe"
)

// Canary configures one rollout.
type Canary struct {
	// Version is the candidate's model version (checkpoint manifest
	// model_version).
	Version int
	// Plane holds the candidate's expert weights; it must cover every
	// expert so any routed request is computable.
	Plane map[int]*moe.Expert
	// Frac in (0,1] is the seeded fraction of requests answered from
	// the candidate. Membership is a pure function of (seed, reqID), so
	// replays canary the same requests.
	Frac float64
	// SLO is the per-answer latency bound; a canary answer over it (or
	// an expired canary request) is one strike (0 = the deadline).
	SLO time.Duration
	// Strikes is how many consecutive strikes trigger auto-rollback
	// (0 = DefaultCanaryStrikes).
	Strikes int
	// Delay injects extra compute latency into every canary answer —
	// the drills' knob for a regressed candidate.
	Delay time.Duration
}

// DefaultCanaryStrikes is the consecutive-strike budget before
// auto-rollback.
const DefaultCanaryStrikes = 3

type canaryState struct {
	cfg     Canary
	gen     uint64       // generation this rollout was started under
	strikes atomic.Int64 // consecutive SLO strikes across workers
}

// StartCanary begins routing a seeded fraction of traffic to the
// candidate plane. A running canary is replaced (its generation is
// fenced off exactly as a rollback would).
func (f *Frontend) StartCanary(c Canary) error {
	if c.Frac <= 0 || c.Frac > 1 {
		return fmt.Errorf("serving: canary fraction %v outside (0,1]", c.Frac)
	}
	if c.Delay < 0 || c.SLO < 0 {
		return errors.New("serving: negative canary knob")
	}
	for e := 0; e < f.cfg.Backend.NumExperts(); e++ {
		if c.Plane[e] == nil {
			return fmt.Errorf("serving: canary plane missing expert %d", e)
		}
	}
	if c.SLO == 0 {
		c.SLO = f.cfg.Deadline
	}
	if c.Strikes == 0 {
		c.Strikes = DefaultCanaryStrikes
	}
	st := &canaryState{cfg: c, gen: f.canaryGen.Add(1)}
	f.canary.Store(st)
	return nil
}

// CanaryVersion reports the live candidate's model version, if any.
func (f *Frontend) CanaryVersion() (int, bool) {
	if st := f.canary.Load(); st != nil {
		return st.cfg.Version, true
	}
	return 0, false
}

// RollbackCanary fences off the live rollout (no-op when none is
// running or st is no longer current). Automatic rollback and the
// operator path share it.
func (f *Frontend) RollbackCanary() {
	if st := f.canary.Load(); st != nil {
		f.rollbackCanary(f.admitH, st)
	}
}

func (f *Frontend) rollbackCanary(h *metrics.ServingHandle, st *canaryState) {
	// The CAS makes rollback idempotent per generation: only the caller
	// that actually unseats the plane advances the fence and counts.
	if f.canary.CompareAndSwap(st, nil) {
		f.canaryGen.Add(1)
		h.AddRolledBack()
	}
}

// splitmixServe is the local splitmix64 finalizer for canary
// membership draws (a different stream constant than routing, so
// canary membership and expert picks stay independent).
func splitmixServe(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// canaryFor returns the live canary state when reqID is a seeded
// member of the canary fraction.
func (f *Frontend) canaryFor(reqID uint64) *canaryState {
	st := f.canary.Load()
	if st == nil {
		return nil
	}
	u := float64(splitmixServe(uint64(f.cfg.Seed)*0x9E3779B97F4A7C15^reqID^0xC2B2AE3D27D4EB4F)>>11) / (1 << 53)
	if u < st.cfg.Frac {
		return st
	}
	return nil
}

// combineFromPlane sums the selected experts' outputs (ascending
// order, matching Reference) over one request's rows.
func combineFromPlane(plane map[int]*moe.Expert, experts []int, rows, hid int, data []float32) []float32 {
	var out []float32
	for _, e := range experts {
		y := forwardLocal(plane[e], rows, hid, data)
		if out == nil {
			out = y
		} else {
			for j, v := range y {
				out[j] += v
			}
		}
	}
	return out
}

// serveCanary drives one canary-member request to its terminal: the
// answer is computed from the candidate plane, the generation fence is
// re-checked at emission, and the SLO monitor strikes (and eventually
// rolls back) on regressed answers. experts arrive ascending and
// already top-1-trimmed.
func (f *Frontend) serveCanary(h *metrics.ServingHandle, req *request, experts []int, top1 bool, st *canaryState) {
	data := RequestRows(f.cfg.Seed, req.id, f.cfg.RowsPerRequest, f.cfg.Backend.Hidden())
	if st.cfg.Delay > 0 {
		time.Sleep(st.cfg.Delay) // the injected regression
	}
	out := combineFromPlane(st.cfg.Plane, experts, f.cfg.RowsPerRequest, f.cfg.Backend.Hidden(), data)
	rung := metrics.RungFull
	if top1 {
		rung = metrics.RungTop1
	}

	if f.canaryGen.Load() != st.gen {
		// Fenced: the rollout was rolled back (or replaced) while this
		// answer was in flight. The candidate's bytes must never reach
		// a user — discard them and re-answer from the baseline's stale
		// plane when the budget still allows.
		f.answerFromStale(h, req, experts, rung)
		return
	}
	lat := time.Since(req.start)
	expired := time.Now().After(req.deadline)

	// SLO monitor: consecutive over-SLO (or expired) canary answers
	// trip auto-rollback. strikes is only touched here, after the gen
	// check, so a fenced generation can't keep striking.
	if expired || lat > st.cfg.SLO {
		if st.strikes.Add(1) >= int64(st.cfg.Strikes) {
			f.rollbackCanary(h, st)
		}
	} else {
		st.strikes.Store(0)
	}

	if expired {
		h.AddDeadlineExpired()
		req.done <- Result{ReqID: req.id, Latency: lat, Err: ErrExpired}
		return
	}
	h.AddCanaryServed()
	h.AddAnswered(rung)
	req.done <- Result{ReqID: req.id, Rung: rung, Out: out, Latency: lat, Canary: true}
}

// answerFromStale is the fenced-canary fallback: recompute from the
// frontend's local stale cache at the stale rung, or shed when the
// cache can't serve. It never emits candidate bytes.
func (f *Frontend) answerFromStale(h *metrics.ServingHandle, req *request, experts []int, floor int) {
	hid := f.cfg.Backend.Hidden()
	data := RequestRows(f.cfg.Seed, req.id, f.cfg.RowsPerRequest, hid)
	plane := make(map[int]*moe.Expert, len(experts))
	f.staleMu.RLock()
	usable := true
	for _, e := range experts {
		ent, ok := f.stale[e]
		if !ok || f.cfg.Backend.Step()-ent.step > f.cfg.MaxStalenessSteps {
			usable = false
			break
		}
		plane[e] = ent.ex
	}
	f.staleMu.RUnlock()
	if !usable {
		h.AddShed()
		h.AddAnswered(metrics.RungShed)
		req.done <- Result{
			ReqID: req.id, Rung: metrics.RungShed,
			Latency: time.Since(req.start), RetryAfter: f.cfg.Deadline, Err: ErrShed,
		}
		return
	}
	out := combineFromPlane(plane, experts, f.cfg.RowsPerRequest, hid, data)
	if time.Now().After(req.deadline) {
		h.AddDeadlineExpired()
		req.done <- Result{ReqID: req.id, Latency: time.Since(req.start), Err: ErrExpired}
		return
	}
	rung := metrics.RungStale
	if floor > rung {
		rung = floor
	}
	h.AddAnswered(rung)
	req.done <- Result{ReqID: req.id, Rung: rung, Out: out, Latency: time.Since(req.start)}
}
