package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

const gib = 1024 * 1024 * 1024

func approx(got, want, relTol float64) bool {
	return math.Abs(got-want) <= relTol*math.Abs(want)
}

// TestTable1Traffic verifies every traffic entry of the paper's Table 1
// from the closed forms: element size 2 bytes, per-machine traffic,
// forward+backward, times the number of MoE blocks, expressed in GiB.
// The paper rounds to 2-3 significant digits; we allow 2 % slack beyond
// its printed precision.
func TestTable1Traffic(t *testing.T) {
	cases := []struct {
		name              string
		b, s, k, h        int
		moeBlocks         int
		numExperts, nGPUs int
		wantEC, wantDC    float64 // GiB, paper Table 1
		tol               float64
	}{
		{"MoE-BERT/16", 256, 128, 2, 768, 4, 16, 16, 6, 0.56, 0.08},
		{"MoE-BERT/32", 256, 128, 2, 768, 4, 32, 32, 9, 1.69, 0.08},
		{"MoE-GPT/16", 256, 64, 4, 768, 1, 16, 16, 1.5, 0.14, 0.08},
		{"MoE-GPT/32", 256, 64, 4, 768, 1, 32, 32, 2.25, 0.42, 0.08},
		{"MoE-TransformerXL/16", 64, 512, 2, 256, 12, 16, 16, 6, 0.19, 0.08},
		{"MoE-TransformerXL/32", 64, 512, 2, 256, 12, 32, 32, 9, 0.56, 0.08},
	}
	const m = 8
	for _, c := range cases {
		n := c.nGPUs / m
		e := c.numExperts / c.nGPUs
		// Forward + backward are equal in both paradigms (§5.1.3).
		ec := 2 * CommECForwardPerMachine(c.b, c.s, c.k, c.h, m, n) * float64(c.moeBlocks) / gib
		dc := 2 * CommDCForwardPerMachine(c.h, e, m, n) * float64(c.moeBlocks) / gib
		if !approx(ec, c.wantEC, c.tol) {
			t.Errorf("%s: EC traffic = %.3f GiB, paper %v", c.name, ec, c.wantEC)
		}
		if !approx(dc, c.wantDC, c.tol) {
			t.Errorf("%s: DC traffic = %.3f GiB, paper %v", c.name, dc, c.wantDC)
		}
	}
}

// TestGainRPaperValues verifies the R values quoted in §7.3 and §7.5.
func TestGainRPaperValues(t *testing.T) {
	cases := []struct {
		name             string
		b, s, k, n, h, e int
		want             float64
	}{
		{"MoE-BERT fig14", 256, 128, 2, 4, 768, 1, 5.33},
		{"MoE-GPT fig14", 256, 64, 4, 4, 768, 1, 5.33},
		{"MoE-TransformerXL fig14", 64, 512, 2, 4, 256, 1, 16},
		{"PR-MoE 16GPU shallow", 32, 256, 2, 4, 256, 1, 4},
		{"PR-MoE 16GPU deep", 32, 256, 2, 4, 256, 4, 1},
		{"GPT-3 discussion", 8192, 2048, 1, 128, 12288, 1, 2.666},
	}
	for _, c := range cases {
		got := GainR(c.b, c.s, c.k, c.n, c.h, c.e)
		if !approx(got, c.want, 0.01) {
			t.Errorf("%s: R = %.3f, want %v", c.name, got, c.want)
		}
	}
}

// The §9 discussion computes R = 20.35 for a GPT-3-scale config; the
// paper's arithmetic there relies on the per-worker batch from a 1M-token
// global batch at DP=128: B·S = 2^20/128 · 2048? The text's inputs are
// underspecified, so we instead check monotonicity: R grows linearly in
// B, S, k and shrinks in n, H, E.
func TestGainRMonotonicityProperty(t *testing.T) {
	prop := func(b, s, k, n, h, e uint8) bool {
		bb, ss, kk := int(b%64)+1, int(s%64)+1, int(k%8)+1
		nn, hh, ee := int(n%8)+1, int(h%64)+1, int(e%8)+1
		r := GainR(bb, ss, kk, nn, hh, ee)
		if GainR(bb*2, ss, kk, nn, hh, ee) <= r {
			return false
		}
		if GainR(bb, ss, kk, nn*2, hh, ee) >= r {
			return false
		}
		if GainR(bb, ss, kk, nn, hh*2, ee) >= r {
			return false
		}
		return approx(GainR(bb*2, ss, kk, nn, hh, ee), 2*r, 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ratio of the two closed-form traffic volumes equals R
// exactly (the paper derives R as that ratio).
func TestRMatchesTrafficRatioProperty(t *testing.T) {
	prop := func(b, s, k, h, e, m, n uint8) bool {
		bb, ss, kk := int(b)*2+1, int(s)*2+1, int(k%8)+1
		hh, ee := (int(h%8)+1)*128, int(e%4)+1
		mm, nn := int(m%8)+1, int(n%7)+2
		ec := CommECForwardPerMachine(bb, ss, kk, hh, mm, nn)
		dc := CommDCForwardPerMachine(hh, ee, mm, nn)
		r := GainR(bb, ss, kk, nn, hh, ee)
		return approx(ec/dc, r, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestExpertSizes(t *testing.T) {
	if got := ExpertParams(768); got != 8*768*768 {
		t.Fatalf("ExpertParams(768) = %v", got)
	}
	if got := ExpertBytes(256); got != 8*256*256*2 {
		t.Fatalf("ExpertBytes(256) = %v", got)
	}
	if got := TokenBytes(768); got != 1536 {
		t.Fatalf("TokenBytes(768) = %v", got)
	}
	if got := TokensPerWorker(256, 128, 2); got != 65536 {
		t.Fatalf("TokensPerWorker = %v", got)
	}
}

func TestComputeTime(t *testing.T) {
	if got := ComputeTime(1e12, 20e12, 10e-6); !approx(got, 0.05+10e-6, 1e-12) {
		t.Fatalf("ComputeTime = %v", got)
	}
	if got := ComputeTime(0, 20e12, 10e-6); got != 10e-6 {
		t.Fatalf("zero-flop ComputeTime = %v, want overhead", got)
	}
}

func TestFlopCountsPositiveAndScale(t *testing.T) {
	a := AttentionFwdFlops(32, 128, 768)
	if a <= 0 {
		t.Fatal("attention flops not positive")
	}
	// Attention has an S² term: doubling S more than doubles FLOPs.
	if AttentionFwdFlops(32, 256, 768) <= 2*a {
		t.Fatal("attention flops missing S² growth")
	}
	f := DenseFFNFwdFlops(32, 128, 768)
	if !approx(DenseFFNFwdFlops(64, 128, 768), 2*f, 1e-12) {
		t.Fatal("FFN flops not linear in B")
	}
	if ExpertFwdFlopsPerToken(768) != 16*768*768 {
		t.Fatal("expert per-token flops wrong")
	}
	if GateFwdFlops(32, 128, 768, 64) <= 0 {
		t.Fatal("gate flops not positive")
	}
}

// TestFig16OOMShape reproduces the Figure 16 memory asymmetry: with the
// default memory model, MoE-BERT at S=512 exceeds 80 GB under the
// expert-centric paradigm but stays under it with the data-centric
// paradigm, and both fit at S=256.
func TestFig16OOMShape(t *testing.T) {
	p := DefaultMemoryParams()
	mk := func(s int) FootprintInput {
		return FootprintInput{
			B: 256, S: s, H: 768,
			NumBlocks: 12, MoEBlocks: 4,
			ExpertsPer: 1, NumExperts: 32, TopK: 4,
			NumWorkers: 32, CreditSize: 4,
		}
	}
	const gpuMem = 80e9
	ec256 := WorkerFootprintEC(mk(256), p)
	dc256 := WorkerFootprintDC(mk(256), p)
	ec512 := WorkerFootprintEC(mk(512), p)
	dc512 := WorkerFootprintDC(mk(512), p)
	if ec256 >= gpuMem || dc256 >= gpuMem {
		t.Fatalf("S=256 should fit: EC=%.1f GB DC=%.1f GB", ec256/1e9, dc256/1e9)
	}
	if ec512 < gpuMem {
		t.Fatalf("EC S=512 should OOM: %.1f GB", ec512/1e9)
	}
	if dc512 >= gpuMem {
		t.Fatalf("DC S=512 should fit: %.1f GB", dc512/1e9)
	}
}

// Property: the data-centric buffer footprint is independent of the
// token count T (it depends only on C and H), while the expert-centric
// buffer grows linearly with B.
func TestBufferScalingProperty(t *testing.T) {
	p := DefaultMemoryParams()
	prop := func(b8 uint8) bool {
		b := (int(b8%16) + 1) * 32
		in := FootprintInput{B: b, S: 128, H: 512, NumBlocks: 12, MoEBlocks: 4,
			ExpertsPer: 1, NumExperts: 16, TopK: 2, NumWorkers: 16, CreditSize: 4}
		in2 := in
		in2.B = 2 * b
		ec1, ec2 := ECBufferBytes(in, p), ECBufferBytes(in2, p)
		if !approx(ec2, 2*ec1, 1e-9) {
			return false
		}
		// DC credit-buffer component is constant; total DC buffer grows
		// strictly slower than EC.
		dc1, dc2 := DCBufferBytes(in, p), DCBufferBytes(in2, p)
		return dc2-dc1 < ec2-ec1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
