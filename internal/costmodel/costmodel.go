// Package costmodel holds the closed-form size and compute math shared
// by every engine and experiment: expert/token byte sizes, the paper's
// traffic formulas (§5.1.3), per-op FLOP counts, and the GPU memory
// footprint model used to reproduce the out-of-memory behaviour in
// Figure 16.
//
// All byte formulas follow the paper's accounting, which Table 1 pins
// down exactly: element size is 2 bytes (fp16) and an expert FFN is the
// two Linear weight matrices, 8H² elements. With those two facts, every
// number in Table 1 reproduces from the formulas below (verified in the
// package tests).
package costmodel

// BytesPerElem is the training element size. The paper trains in fp16;
// Table 1's traffic numbers are only consistent with 2-byte elements.
const BytesPerElem = 2

// ExpertParams returns the parameter count of one expert FFN: two
// Linear layers H×4H and 4H×H (biases are omitted, matching the
// paper's 8H² accounting).
func ExpertParams(h int) float64 { return 8 * float64(h) * float64(h) }

// ExpertBytes returns the wire size of one expert module.
func ExpertBytes(h int) float64 { return ExpertParams(h) * BytesPerElem }

// TokenBytes returns the wire size of one token activation.
func TokenBytes(h int) float64 { return float64(h) * BytesPerElem }

// TokensPerWorker returns T = B·S·k, the number of (replicated) tokens
// a worker emits toward the expert layer each iteration (§5.1.3).
func TokensPerWorker(b, s, k int) float64 { return float64(b) * float64(s) * float64(k) }

// CommDCForwardPerMachine returns the inter-node traffic one machine
// *receives* in the forward pass of one MoE block under the data-centric
// paradigm: Comm_DC = 8H²·E·m·(n−1) elements (§5.1.3). m here is the
// number of workers per machine, E experts per worker, n machines.
// Each machine pulls each of the (n−1)·E·m external experts exactly once
// thanks to the Cache Manager.
func CommDCForwardPerMachine(h, e, m, n int) float64 {
	return ExpertBytes(h) * float64(e) * float64(m) * float64(n-1)
}

// CommECForwardPerMachine returns the inter-node traffic one machine
// sends in the forward pass of one MoE block under the expert-centric
// paradigm with a balanced gate: Comm_EC = 2·m·H·T·(n−1)/n elements
// (§5.1.3) — two All-to-All operations (dispatch and combine), of which
// the fraction (n−1)/n crosses machines.
func CommECForwardPerMachine(b, s, k, h, m, n int) float64 {
	t := TokensPerWorker(b, s, k)
	return 2 * float64(m) * TokenBytes(h) * t * float64(n-1) / float64(n)
}

// GainR returns the paper's paradigm-selection metric
// R = B·S·k / (4·n·H·E) (equation 1). R > 1 means the data-centric
// paradigm moves fewer inter-node bytes for the block.
func GainR(b, s, k, n, h, e int) float64 {
	return float64(b) * float64(s) * float64(k) / (4 * float64(n) * float64(h) * float64(e))
}

// --- FLOP counts -----------------------------------------------------
//
// Forward FLOPs per token, standard Transformer accounting (a matmul of
// shape [1,a]×[a,b] is 2ab FLOPs). Backward is counted as 2× forward
// (grad w.r.t. inputs and weights each replay the matmuls).

// AttentionFwdFlops returns forward FLOPs for one attention layer over a
// local batch: QKV and output projections (8H² per token) plus the two
// S-length attention matmuls (4SH per token).
func AttentionFwdFlops(b, s, h int) float64 {
	perToken := 8*float64(h)*float64(h) + 4*float64(s)*float64(h)
	return float64(b) * float64(s) * perToken
}

// DenseFFNFwdFlops returns forward FLOPs for one dense FFN layer over a
// local batch: 16H² per token (two H↔4H matmuls).
func DenseFFNFwdFlops(b, s, h int) float64 {
	return float64(b) * float64(s) * 16 * float64(h) * float64(h)
}

// GateFwdFlops returns forward FLOPs for the MoE gate: one H×numExperts
// projection per token plus top-k selection (counted as numExperts ops).
func GateFwdFlops(b, s, h, numExperts int) float64 {
	return float64(b) * float64(s) * (2*float64(h)*float64(numExperts) + float64(numExperts))
}

// ExpertFwdFlopsPerToken returns forward FLOPs for pushing one token
// through one expert FFN: 16H².
func ExpertFwdFlopsPerToken(h int) float64 { return 16 * float64(h) * float64(h) }

// BackwardFactor scales a forward FLOP count to its backward cost.
const BackwardFactor = 2.0

// --- Compute-time model ----------------------------------------------

// ComputeTime converts FLOPs to seconds on a GPU with the given
// effective throughput, adding a fixed per-kernel overhead. Zero-FLOP
// ops still pay the overhead (they are real kernel launches).
func ComputeTime(flops, gpuFlops, kernelOverhead float64) float64 {
	if flops < 0 {
		panic("costmodel: negative flops")
	}
	return flops/gpuFlops + kernelOverhead
}

// --- Memory model (Figure 16 OOM reproduction) ------------------------
//
// The memory model tracks the components that matter for the paper's
// S=512 MoE-BERT OOM under the expert-centric paradigm: parameter and
// optimizer state, activations retained for backward (including the
// O(S²) attention score matrices), and the All-to-All receive buffers
// whose size grows with T = B·S·k. The data-centric paradigm replaces
// the token buffers with the credit-based expert buffer, which is
// O(C·8H²) and independent of T — that asymmetry is the entire Fig. 16
// story.

// MemoryParams configures the footprint model.
type MemoryParams struct {
	BytesPerParam    float64 // param + grad + Adam moments; mixed precision ≈ 16
	AttentionHeads   int     // for the S×S score matrices
	ActTensorsPerBlk float64 // retained activation tensors of size B·S·H per block
	CapacityFactor   float64 // Tutel buffer padding over the balanced share
	AllocatorSlack   float64 // multiplicative allocator fragmentation slack
}

// DefaultMemoryParams models PyTorch mixed-precision training with Adam
// and no activation checkpointing, which is the configuration whose OOM
// the paper reports.
func DefaultMemoryParams() MemoryParams {
	return MemoryParams{
		BytesPerParam:    16,
		AttentionHeads:   12,
		ActTensorsPerBlk: 12,
		CapacityFactor:   2.0,
		AllocatorSlack:   1.15,
	}
}

// FootprintInput describes one worker's view of the model for the
// memory model.
type FootprintInput struct {
	B, S, H    int
	NumBlocks  int
	MoEBlocks  int // how many blocks are MoE blocks
	ExpertsPer int // experts resident per worker per MoE block (E)
	NumExperts int // experts per MoE block globally
	TopK       int
	NumWorkers int // global worker count
	CreditSize int // data-centric credit buffer size, in experts
}

// DenseParamsPerWorker returns the per-worker parameter count of the
// non-expert part of the model: for every block an attention layer
// (4H²) and for dense blocks an FFN (8H²), replicated on every worker.
func DenseParamsPerWorker(in FootprintInput) float64 {
	h2 := float64(in.H) * float64(in.H)
	dense := float64(in.NumBlocks-in.MoEBlocks) * (4*h2 + 8*h2)
	moe := float64(in.MoEBlocks) * 4 * h2 // attention part of MoE blocks
	return dense + moe
}

// ExpertParamsPerWorker returns the per-worker parameter count of the
// resident experts across all MoE blocks.
func ExpertParamsPerWorker(in FootprintInput) float64 {
	return float64(in.MoEBlocks) * float64(in.ExpertsPer) * ExpertParams(in.H)
}

// ActivationBytes returns the bytes of activations retained for
// backward: per block, ActTensorsPerBlk tensors of B·S·H fp16 elements
// plus the attention score matrices B·heads·S·S (the S² term).
func ActivationBytes(in FootprintInput, p MemoryParams) float64 {
	bsh := float64(in.B) * float64(in.S) * float64(in.H) * BytesPerElem
	scores := float64(in.B) * float64(p.AttentionHeads) * float64(in.S) * float64(in.S) * BytesPerElem
	return float64(in.NumBlocks) * (p.ActTensorsPerBlk*bsh + scores)
}

// ECBufferBytes returns the expert-centric token-buffer bytes live on a
// worker: per MoE block, the dispatch send buffer (T tokens), the padded
// receive buffer (capacity-factor times the balanced share of global
// tokens routed to this worker's experts), and the 4H expert
// intermediate for the received tokens. These are activations of the
// expert layer, retained for backward, so every MoE block's buffers are
// live simultaneously — the count is multiplied by MoEBlocks. This
// T-proportional retained state is exactly what the data-centric
// paradigm avoids, and is why Tutel OOMs first in Figure 16.
func ECBufferBytes(in FootprintInput, p MemoryParams) float64 {
	t := TokensPerWorker(in.B, in.S, in.TopK)
	// Balanced share of global tokens landing on this worker's experts.
	globalTokens := t * float64(in.NumWorkers)
	recvTokens := globalTokens * float64(in.ExpertsPer) / float64(in.NumExperts) * p.CapacityFactor
	tokBytes := TokenBytes(in.H)
	send := t * tokBytes
	recv := recvTokens * tokBytes
	intermediate := recvTokens * 4 * float64(in.H) * BytesPerElem
	combine := t * tokBytes
	return float64(in.MoEBlocks) * (send + recv + intermediate + combine)
}

// DCBufferBytes returns the data-centric buffer bytes: one credit-based
// expert buffer (C experts, shared by all blocks since it is drained
// block by block), plus per MoE block the worker's own T-token expert
// output retained for backward and the per-expert 4H intermediate slice
// (computed expert by expert, so only one expert's slice is live per
// block). Used experts are offloaded to host memory, and the Cache
// Manager lives in host memory, so neither occupies the GPU.
func DCBufferBytes(in FootprintInput, p MemoryParams) float64 {
	t := TokensPerWorker(in.B, in.S, in.TopK)
	credit := float64(in.CreditSize) * ExpertBytes(in.H)
	out := t * TokenBytes(in.H)
	perExpertSlice := t / float64(in.NumExperts) * 4 * float64(in.H) * BytesPerElem * p.CapacityFactor
	return credit + float64(in.MoEBlocks)*(out+perExpertSlice)
}

// WorkerFootprintEC returns the modelled peak GPU bytes for a worker
// training under the expert-centric paradigm.
func WorkerFootprintEC(in FootprintInput, p MemoryParams) float64 {
	params := DenseParamsPerWorker(in) + ExpertParamsPerWorker(in)
	base := params*p.BytesPerParam + ActivationBytes(in, p) + ECBufferBytes(in, p)
	return base * p.AllocatorSlack
}

// WorkerFootprintDC returns the modelled peak GPU bytes for a worker
// training under the data-centric paradigm.
func WorkerFootprintDC(in FootprintInput, p MemoryParams) float64 {
	params := DenseParamsPerWorker(in) + ExpertParamsPerWorker(in)
	base := params*p.BytesPerParam + ActivationBytes(in, p) + DCBufferBytes(in, p)
	return base * p.AllocatorSlack
}
