// Package moe executes a real (numeric) Mixture-of-Experts layer under
// both communication paradigms and shows they compute the same thing.
//
// The Janus paper argues (§3.2, §5.1.1) that the data-centric paradigm
// is "strictly equivalent" to the expert-centric paradigm: whether
// tokens travel to experts or experts travel to tokens, the same
// per-token matrix products are evaluated. This package makes that
// argument executable: it implements a gate, expert FFNs, and the two
// execution orders over an explicit partition of tokens among workers,
// with deterministic float32 arithmetic.
//
// Exactness: per-token results (outputs and input gradients) are
// bit-identical between paradigms because each token's computation is
// independent and contributions are combined in a fixed expert-index
// order. Weight gradients are sums over tokens, and the two paradigms
// group that sum differently (one batch per expert vs. one partial per
// worker), so they agree to float32 reassociation tolerance rather than
// bit-for-bit — the same caveat that applies to the real systems on
// GPUs.
package moe

import (
	"fmt"
	"sync"

	"janus/internal/tensor"
)

// Expert is one FFN expert: Y = GeLU(X·W1)·W2 with W1 of shape H×4H and
// W2 of shape 4H×H (the paper's 8H² parameter accounting; biases are
// omitted to match it).
type Expert struct {
	W1, W2 *tensor.Matrix
}

// NewExpert returns an expert with deterministic random weights.
func NewExpert(h int, seed int64) *Expert {
	return &Expert{
		W1: tensor.NewRandom(h, 4*h, 0.1, seed),
		W2: tensor.NewRandom(4*h, h, 0.1, seed+1),
	}
}

// Clone deep-copies the expert (a "fetched" expert in the data-centric
// paradigm is exactly such a copy).
func (e *Expert) Clone() *Expert {
	return &Expert{W1: e.W1.Clone(), W2: e.W2.Clone()}
}

// ExpertCache holds the activations an expert's backward pass needs.
// H1 and A come from the tensor scratch pool; call Release once the
// backward pass (or the cache) is finished with them.
type ExpertCache struct {
	X  *tensor.Matrix // input tokens
	H1 *tensor.Matrix // pre-activation X·W1
	A  *tensor.Matrix // GeLU(H1)
}

// Release recycles the cache's pooled activations. The cache must not
// be used afterwards; X is caller-owned and untouched.
func (c *ExpertCache) Release() {
	tensor.Put(c.H1)
	tensor.Put(c.A)
	c.H1, c.A = nil, nil
}

// Forward computes Y = GeLU(X·W1)·W2, returning the output and the
// cache for backward. X has one token per row.
func (e *Expert) Forward(x *tensor.Matrix) (*tensor.Matrix, *ExpertCache) {
	h1 := tensor.Get(x.Rows, e.W1.Cols)
	tensor.MatMulInto(x, e.W1, h1)
	a := tensor.GetUninit(h1.Rows, h1.Cols)
	tensor.GeLUInto(h1, a)
	y := tensor.Get(a.Rows, e.W2.Cols)
	tensor.MatMulInto(a, e.W2, y)
	return y, &ExpertCache{X: x, H1: h1, A: a}
}

// ExpertGrad holds the weight gradients of one expert.
type ExpertGrad struct {
	DW1, DW2 *tensor.Matrix
}

// NewExpertGrad returns a zero gradient of the right shape.
func NewExpertGrad(h int) *ExpertGrad {
	return &ExpertGrad{DW1: tensor.New(h, 4*h), DW2: tensor.New(4*h, h)}
}

// gradPool recycles ExpertGrad headers; the DW matrices ride the tensor
// scratch pool. Together they make per-step gradient staging
// allocation-free once warm.
var gradPool = sync.Pool{New: func() any { return new(ExpertGrad) }}

// GetExpertGrad returns a pooled zero gradient of the right shape,
// indistinguishable from NewExpertGrad. Pair with PutExpertGrad.
func GetExpertGrad(h int) *ExpertGrad {
	g := gradPool.Get().(*ExpertGrad)
	g.DW1 = tensor.Get(h, 4*h)
	g.DW2 = tensor.Get(4*h, h)
	return g
}

// GetExpertGradUninit is GetExpertGrad without the zero fill — for
// callers that overwrite every element (e.g. wire decode).
func GetExpertGradUninit(h int) *ExpertGrad {
	g := gradPool.Get().(*ExpertGrad)
	g.DW1 = tensor.GetUninit(h, 4*h)
	g.DW2 = tensor.GetUninit(4*h, h)
	return g
}

// PutExpertGrad recycles a gradient obtained from GetExpertGrad (or any
// gradient the caller owns outright). The caller must not use g after.
func PutExpertGrad(g *ExpertGrad) {
	if g == nil {
		return
	}
	tensor.Put(g.DW1)
	tensor.Put(g.DW2)
	g.DW1, g.DW2 = nil, nil
	gradPool.Put(g)
}

// Accumulate adds other into g.
func (g *ExpertGrad) Accumulate(other *ExpertGrad) {
	g.DW1.AddInPlace(other.DW1)
	g.DW2.AddInPlace(other.DW2)
}

// Backward computes input and weight gradients given the forward cache
// and the upstream gradient dY. The intermediate dA/dH1 matrices live
// in the scratch pool only for the duration of the call.
func (e *Expert) Backward(cache *ExpertCache, dy *tensor.Matrix) (dx *tensor.Matrix, grad *ExpertGrad) {
	da := tensor.GetUninit(dy.Rows, e.W2.Rows)
	tensor.MatMulTransBInto(dy, e.W2, da) // dA = dY·W2ᵀ
	dh1 := tensor.GetUninit(cache.H1.Rows, cache.H1.Cols)
	tensor.GeLUGradInto(cache.H1, da, dh1)   // dH1 = dA ⊙ gelu'(H1)
	tensor.Put(da)
	dw1 := tensor.MatMulTransA(cache.X, dh1) // dW1 = Xᵀ·dH1
	dw2 := tensor.MatMulTransA(cache.A, dy)  // dW2 = Aᵀ·dY
	dx = tensor.MatMulTransB(dh1, e.W1)      // dX = dH1·W1ᵀ
	tensor.Put(dh1)
	return dx, &ExpertGrad{DW1: dw1, DW2: dw2}
}

// ForwardBackward fuses Forward with the weight-gradient half of
// Backward, skipping the dX product the live trainer never consumes.
// The returned output and gradients are bit-identical to
// Forward+Backward on the same inputs (same kernels, same order); the
// activations never escape the call, so intermediates stay in the
// scratch pool and the whole fused pass allocates nothing once the
// pools are warm. The caller owns y (Put it when done) and grad
// (PutExpertGrad it when done).
func (e *Expert) ForwardBackward(x, dy *tensor.Matrix) (y *tensor.Matrix, grad *ExpertGrad) {
	// Forward, inlined so no activation-cache header is allocated.
	h1 := tensor.Get(x.Rows, e.W1.Cols)
	tensor.MatMulInto(x, e.W1, h1)
	a := tensor.GetUninit(h1.Rows, h1.Cols)
	tensor.GeLUInto(h1, a)
	y = tensor.Get(a.Rows, e.W2.Cols)
	tensor.MatMulInto(a, e.W2, y)

	da := tensor.GetUninit(dy.Rows, e.W2.Rows)
	tensor.MatMulTransBInto(dy, e.W2, da) // dA = dY·W2ᵀ
	dh1 := tensor.GetUninit(h1.Rows, h1.Cols)
	tensor.GeLUGradInto(h1, da, dh1) // dH1 = dA ⊙ gelu'(H1)
	tensor.Put(da)
	grad = GetExpertGrad(e.W1.Rows)
	tensor.MatMulTransAInto(x, dh1, grad.DW1) // dW1 = Xᵀ·dH1
	tensor.MatMulTransAInto(a, dy, grad.DW2)  // dW2 = Aᵀ·dY
	tensor.Put(dh1)
	tensor.Put(h1)
	tensor.Put(a)
	return y, grad
}

// clonePooled is Clone backed by the tensor scratch pool; pair with
// release. A pooled copy computes bit-identically to the original.
func (e *Expert) clonePooled() *Expert {
	w1 := tensor.GetUninit(e.W1.Rows, e.W1.Cols)
	copy(w1.Data, e.W1.Data)
	w2 := tensor.GetUninit(e.W2.Rows, e.W2.Cols)
	copy(w2.Data, e.W2.Data)
	return &Expert{W1: w1, W2: w2}
}

func (e *Expert) release() {
	tensor.Put(e.W1)
	tensor.Put(e.W2)
	e.W1, e.W2 = nil, nil
}

// ApplySGD updates the expert in place: W -= lr·dW.
func (e *Expert) ApplySGD(g *ExpertGrad, lr float32) {
	for i := range e.W1.Data {
		e.W1.Data[i] -= lr * g.DW1.Data[i]
	}
	for i := range e.W2.Data {
		e.W2.Data[i] -= lr * g.DW2.Data[i]
	}
}

// Gate is the MoE router: a linear projection to one score per expert
// followed by top-k selection with softmax combine weights over the
// selected scores.
type Gate struct {
	W    *tensor.Matrix // H × numExperts
	TopK int
}

// NewGate returns a gate with deterministic random weights.
func NewGate(h, numExperts, topK int, seed int64) *Gate {
	if topK < 1 || topK > numExperts {
		panic(fmt.Sprintf("moe: topK %d out of range for %d experts", topK, numExperts))
	}
	return &Gate{W: tensor.NewRandom(h, numExperts, 0.1, seed), TopK: topK}
}

// Routing is a gate decision for a batch of tokens: for each token, the
// selected expert indices and their combine weights.
type Routing struct {
	Experts [][]int
	Weights [][]float32
}

// Assign routes each row of x.
func (g *Gate) Assign(x *tensor.Matrix) Routing {
	scores := tensor.MatMul(x, g.W)
	r := Routing{
		Experts: make([][]int, x.Rows),
		Weights: make([][]float32, x.Rows),
	}
	for t := 0; t < x.Rows; t++ {
		idx := tensor.TopKRow(scores, t, g.TopK)
		sel := tensor.New(1, g.TopK)
		for i, e := range idx {
			sel.Set(0, i, scores.At(t, e))
		}
		w := tensor.SoftmaxRows(sel)
		r.Experts[t] = idx
		r.Weights[t] = append([]float32(nil), w.Row(0)...)
	}
	return r
}

// CountsPerExpert returns how many (token, expert) assignments land on
// each expert — the histogram both training paradigms communicate by.
func (r Routing) CountsPerExpert(numExperts int) []int {
	counts := make([]int, numExperts)
	for _, idx := range r.Experts {
		for _, e := range idx {
			counts[e]++
		}
	}
	return counts
}

// Layer is a full MoE expert layer.
type Layer struct {
	H       int
	Experts []*Expert
	Gate    *Gate
}

// NewLayer builds a layer with numExperts deterministic experts.
func NewLayer(h, numExperts, topK int, seed int64) *Layer {
	l := &Layer{H: h, Gate: NewGate(h, numExperts, topK, seed)}
	for e := 0; e < numExperts; e++ {
		l.Experts = append(l.Experts, NewExpert(h, seed+int64(100+2*e)))
	}
	return l
}

// Result is the outcome of one forward+backward execution of the layer
// over a worker partition of tokens.
type Result struct {
	Outputs    []*tensor.Matrix // per worker, same shape as its input
	InputGrads []*tensor.Matrix // per worker
	Grads      []*ExpertGrad    // per expert
}

// routeAll runs the gate on every worker's tokens.
func (l *Layer) routeAll(tokensByWorker []*tensor.Matrix) []Routing {
	routes := make([]Routing, len(tokensByWorker))
	for w, x := range tokensByWorker {
		routes[w] = l.Gate.Assign(x)
	}
	return routes
}

// ForwardBackwardExpertCentric executes the layer the way All-to-All
// systems do: tokens are gathered per expert (ordered by worker, then
// token), each expert processes one batch, results scatter back, and
// the backward pass mirrors it. dOutByWorker is the upstream gradient
// of each worker's output (pass nil to skip backward).
func (l *Layer) ForwardBackwardExpertCentric(tokensByWorker, dOutByWorker []*tensor.Matrix) Result {
	routes := l.routeAll(tokensByWorker)
	numExperts := len(l.Experts)
	type slot struct {
		worker, token, k int // destination of a gathered row
	}
	gathered := make([][]slot, numExperts)
	for w, x := range tokensByWorker {
		for t := 0; t < x.Rows; t++ {
			for k, e := range routes[w].Experts[t] {
				gathered[e] = append(gathered[e], slot{w, t, k})
			}
		}
	}

	res := Result{
		Outputs: make([]*tensor.Matrix, len(tokensByWorker)),
		Grads:   make([]*ExpertGrad, numExperts),
	}
	for w, x := range tokensByWorker {
		res.Outputs[w] = tensor.New(x.Rows, l.H)
	}
	backward := dOutByWorker != nil
	if backward {
		res.InputGrads = make([]*tensor.Matrix, len(tokensByWorker))
		for w, x := range tokensByWorker {
			res.InputGrads[w] = tensor.New(x.Rows, l.H)
		}
	}

	// expertOut[e] row i is expert e's output for gathered[e][i]; kept so
	// the combine can run in expert-index order per token.
	for e, slots := range gathered {
		if len(slots) == 0 {
			res.Grads[e] = NewExpertGrad(l.H)
			continue
		}
		xe := tensor.GetUninit(len(slots), l.H)
		for i, s := range slots {
			xe.CopyRow(i, tokensByWorker[s.worker], s.token)
		}
		ye, cache := l.Experts[e].Forward(xe)
		for i, s := range slots {
			wgt := routes[s.worker].Weights[s.token][s.k]
			res.Outputs[s.worker].AddScaledRow(s.token, ye.Row(i), wgt)
		}
		tensor.Put(ye)
		if backward {
			dye := tensor.Get(len(slots), l.H)
			for i, s := range slots {
				wgt := routes[s.worker].Weights[s.token][s.k]
				dye.AddScaledRow(i, dOutByWorker[s.worker].Row(s.token), wgt)
			}
			dxe, grad := l.Experts[e].Backward(cache, dye)
			tensor.Put(dye)
			res.Grads[e] = grad
			for i, s := range slots {
				res.InputGrads[s.worker].AddScaledRow(s.token, dxe.Row(i), 1)
			}
			tensor.Put(dxe)
		} else {
			res.Grads[e] = NewExpertGrad(l.H)
		}
		cache.Release()
		tensor.Put(xe)
	}
	return res
}

// ForwardBackwardDataCentric executes the layer the Janus way: every
// worker keeps its tokens, iterates over (fetched) experts in the given
// per-worker order, computes its own tokens' slice for each expert, and
// each machine's partial weight gradients are pre-reduced before being
// accumulated into the expert's gradient in worker order. fetchOrder
// gives, per worker, the order in which experts are processed (nil means
// index order); the result is independent of that order by construction,
// which the tests verify — this mirrors Janus's claim that the
// topology-aware scheduling cannot change the math.
func (l *Layer) ForwardBackwardDataCentric(tokensByWorker, dOutByWorker []*tensor.Matrix, fetchOrder [][]int) Result {
	routes := l.routeAll(tokensByWorker)
	numExperts := len(l.Experts)
	res := Result{
		Outputs: make([]*tensor.Matrix, len(tokensByWorker)),
		Grads:   make([]*ExpertGrad, numExperts),
	}
	for e := range res.Grads {
		res.Grads[e] = NewExpertGrad(l.H)
	}
	backward := dOutByWorker != nil
	if backward {
		res.InputGrads = make([]*tensor.Matrix, len(tokensByWorker))
	}

	// Per-worker partial weight grads, accumulated into res.Grads in
	// worker order afterwards (the Inter-Node Scheduler's pre-reduce).
	partials := make([][]*ExpertGrad, len(tokensByWorker))

	for w, x := range tokensByWorker {
		res.Outputs[w] = tensor.New(x.Rows, l.H)
		if backward {
			res.InputGrads[w] = tensor.New(x.Rows, l.H)
		}
		partials[w] = make([]*ExpertGrad, numExperts)

		order := make([]int, numExperts)
		for i := range order {
			order[i] = i
		}
		if fetchOrder != nil {
			copy(order, fetchOrder[w])
		}

		// Per-(token,k) expert outputs, buffered so the combine can run
		// in expert-index order no matter the fetch order.
		type contrib struct {
			rows map[int]int // token -> row in ye
			ye   *tensor.Matrix
			dxe  *tensor.Matrix
		}
		contribs := make([]*contrib, numExperts)

		for _, e := range order {
			// The worker "fetches" expert e: in the real system a copy
			// arrives in the credit buffer; numerically a pooled clone
			// computes identically to the original.
			expert := l.Experts[e].clonePooled()
			var myTokens []int
			var myK []int
			for t := 0; t < x.Rows; t++ {
				for k, te := range routes[w].Experts[t] {
					if te == e {
						myTokens = append(myTokens, t)
						myK = append(myK, k)
					}
				}
			}
			if len(myTokens) == 0 {
				expert.release()
				continue
			}
			xe := tensor.GetUninit(len(myTokens), l.H)
			for i, t := range myTokens {
				xe.CopyRow(i, x, t)
			}
			ye, cache := expert.Forward(xe)
			c := &contrib{rows: make(map[int]int, len(myTokens)), ye: ye}
			for i, t := range myTokens {
				c.rows[t] = i
				_ = myK[i]
			}
			contribs[e] = c
			if backward {
				dye := tensor.Get(len(myTokens), l.H)
				for i, t := range myTokens {
					wgt := routes[w].Weights[t][myK[i]]
					dye.AddScaledRow(i, dOutByWorker[w].Row(t), wgt)
				}
				dxe, grad := expert.Backward(cache, dye)
				tensor.Put(dye)
				c.dxe = dxe
				partials[w][e] = grad
			}
			cache.Release()
			tensor.Put(xe)
			expert.release()
		}

		// Combine in ascending expert-index order per token — the same
		// summation order as the expert-centric scatter (whose outer
		// loop ascends over experts), so outputs are bit-identical.
		for t := 0; t < x.Rows; t++ {
			ks := make([]int, len(routes[w].Experts[t]))
			for i := range ks {
				ks[i] = i
			}
			// Insertion sort of the k slots by expert index (topK <= 8).
			for i := 1; i < len(ks); i++ {
				for j := i; j > 0 && routes[w].Experts[t][ks[j]] < routes[w].Experts[t][ks[j-1]]; j-- {
					ks[j], ks[j-1] = ks[j-1], ks[j]
				}
			}
			for _, k := range ks {
				e := routes[w].Experts[t][k]
				c := contribs[e]
				if c == nil {
					continue
				}
				i := c.rows[t]
				wgt := routes[w].Weights[t][k]
				res.Outputs[w].AddScaledRow(t, c.ye.Row(i), wgt)
				if backward && c.dxe != nil {
					res.InputGrads[w].AddScaledRow(t, c.dxe.Row(i), 1)
				}
			}
		}
		for _, c := range contribs {
			if c == nil {
				continue
			}
			tensor.Put(c.ye)
			tensor.Put(c.dxe)
		}
	}

	if backward {
		for e := 0; e < numExperts; e++ {
			for w := range tokensByWorker {
				if partials[w][e] != nil {
					res.Grads[e].Accumulate(partials[w][e])
				}
			}
		}
	}
	return res
}
