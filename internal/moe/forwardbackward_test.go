package moe

import (
	"testing"

	"janus/internal/tensor"
)

// TestForwardBackwardMatchesSeparate pins the fused kernel to the
// reference pair bitwise: same output, same weight gradients (the dX
// product is the only thing it may skip).
func TestForwardBackwardMatchesSeparate(t *testing.T) {
	e := NewExpert(16, 7)
	x := tensor.NewRandom(9, 16, 1, 21)
	dy := tensor.NewRandom(9, 16, 1, 22)

	wantY, cache := e.Forward(x)
	_, wantG := e.Backward(cache, dy)
	cache.Release()

	gotY, gotG := e.ForwardBackward(x, dy)
	if !tensor.Equal(gotY, wantY) {
		t.Fatal("fused forward output differs from Forward")
	}
	if !tensor.Equal(gotG.DW1, wantG.DW1) || !tensor.Equal(gotG.DW2, wantG.DW2) {
		t.Fatal("fused weight gradients differ from Backward")
	}
	tensor.Put(gotY)
}

// TestForwardBackwardMicrobatchOutputInvariant: forward outputs are
// per-row, so computing a batch in slices reproduces the full-batch
// rows bitwise. (Weight gradients intentionally are not sliced-
// invariant — float sums reassociate — which is why the trainer fixes
// one microbatch count per comparison.)
func TestForwardBackwardMicrobatchOutputInvariant(t *testing.T) {
	e := NewExpert(8, 3)
	x := tensor.NewRandom(10, 8, 1, 31)
	dy := tensor.NewRandom(10, 8, 1, 32)

	full, grad := e.ForwardBackward(x, dy)
	for _, cut := range []int{3, 7} {
		lo, hi := 0, cut
		for _, r := range [][2]int{{0, cut}, {cut, 10}} {
			lo, hi = r[0], r[1]
			y, g := e.ForwardBackward(x.RowSlice(lo, hi), dy.RowSlice(lo, hi))
			for i := 0; i < hi-lo; i++ {
				fr, sr := full.Row(lo+i), y.Row(i)
				for c := range sr {
					if fr[c] != sr[c] {
						t.Fatalf("cut %d: row %d col %d differs", cut, lo+i, c)
					}
				}
			}
			tensor.Put(y)
			_ = g
		}
	}
	tensor.Put(full)
	_ = grad
}
