package moe

import (
	"math/rand"
	"testing"
	"testing/quick"

	"janus/internal/tensor"
)

func workers(numWorkers, tokens, h int, seed int64) []*tensor.Matrix {
	out := make([]*tensor.Matrix, numWorkers)
	for w := range out {
		out[w] = tensor.NewRandom(tokens, h, 1, seed+int64(w))
	}
	return out
}

func TestExpertForwardBackwardShapes(t *testing.T) {
	e := NewExpert(8, 1)
	x := tensor.NewRandom(5, 8, 1, 2)
	y, cache := e.Forward(x)
	if y.Rows != 5 || y.Cols != 8 {
		t.Fatalf("y shape %dx%d", y.Rows, y.Cols)
	}
	dy := tensor.NewRandom(5, 8, 1, 3)
	dx, grad := e.Backward(cache, dy)
	if dx.Rows != 5 || dx.Cols != 8 {
		t.Fatalf("dx shape %dx%d", dx.Rows, dx.Cols)
	}
	if grad.DW1.Rows != 8 || grad.DW1.Cols != 32 || grad.DW2.Rows != 32 || grad.DW2.Cols != 8 {
		t.Fatal("grad shapes wrong")
	}
}

// Numeric gradient check of the expert FFN: perturb one weight, compare
// loss delta against the analytic gradient. Loss = sum(Y).
func TestExpertGradNumeric(t *testing.T) {
	const h = 4
	e := NewExpert(h, 7)
	x := tensor.NewRandom(3, h, 1, 8)
	ones := tensor.New(3, h)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	_, cache := e.Forward(x)
	_, grad := e.Backward(cache, ones)

	sumY := func(ex *Expert) float64 {
		y, _ := ex.Forward(x)
		var s float64
		for _, v := range y.Data {
			s += float64(v)
		}
		return s
	}
	const eps = 1e-3
	for _, probe := range []struct {
		w  *tensor.Matrix
		dw *tensor.Matrix
		i  int
	}{
		{e.W1, grad.DW1, 5},
		{e.W2, grad.DW2, 9},
	} {
		orig := probe.w.Data[probe.i]
		probe.w.Data[probe.i] = orig + eps
		plus := sumY(e)
		probe.w.Data[probe.i] = orig - eps
		minus := sumY(e)
		probe.w.Data[probe.i] = orig
		numeric := (plus - minus) / (2 * eps)
		analytic := float64(probe.dw.Data[probe.i])
		if diff := numeric - analytic; diff > 1e-2 || diff < -1e-2 {
			t.Fatalf("grad mismatch: numeric %v analytic %v", numeric, analytic)
		}
	}
}

func TestGateAssign(t *testing.T) {
	g := NewGate(8, 4, 2, 1)
	x := tensor.NewRandom(10, 8, 1, 2)
	r := g.Assign(x)
	if len(r.Experts) != 10 {
		t.Fatalf("routing rows = %d", len(r.Experts))
	}
	for tk := range r.Experts {
		if len(r.Experts[tk]) != 2 || len(r.Weights[tk]) != 2 {
			t.Fatal("topK selection wrong size")
		}
		if r.Experts[tk][0] == r.Experts[tk][1] {
			t.Fatal("duplicate expert selected")
		}
		wsum := r.Weights[tk][0] + r.Weights[tk][1]
		if wsum < 0.999 || wsum > 1.001 {
			t.Fatalf("combine weights sum %v", wsum)
		}
	}
	counts := r.CountsPerExpert(4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 20 {
		t.Fatalf("counts total = %d, want 20", total)
	}
}

func TestGateTopKValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("topK > numExperts did not panic")
		}
	}()
	NewGate(8, 4, 5, 1)
}

// The headline equivalence test: both paradigms produce bit-identical
// outputs and input gradients, and weight gradients equal to float32
// reassociation tolerance (§3.2's "strictly equivalent" claim).
func TestParadigmEquivalence(t *testing.T) {
	const h, numExperts, topK, numWorkers, tokens = 16, 8, 2, 4, 12
	layer := NewLayer(h, numExperts, topK, 42)
	xs := workers(numWorkers, tokens, h, 100)
	douts := workers(numWorkers, tokens, h, 200)

	ec := layer.ForwardBackwardExpertCentric(xs, douts)
	dc := layer.ForwardBackwardDataCentric(xs, douts, nil)

	for w := range xs {
		if !tensor.Equal(ec.Outputs[w], dc.Outputs[w]) {
			t.Fatalf("worker %d outputs differ: max diff %v", w,
				tensor.MaxAbsDiff(ec.Outputs[w], dc.Outputs[w]))
		}
		if !tensor.Equal(ec.InputGrads[w], dc.InputGrads[w]) {
			t.Fatalf("worker %d input grads differ: max diff %v", w,
				tensor.MaxAbsDiff(ec.InputGrads[w], dc.InputGrads[w]))
		}
	}
	for e := range layer.Experts {
		if d := tensor.MaxAbsDiff(ec.Grads[e].DW1, dc.Grads[e].DW1); d > 1e-4 {
			t.Fatalf("expert %d dW1 diff %v", e, d)
		}
		if d := tensor.MaxAbsDiff(ec.Grads[e].DW2, dc.Grads[e].DW2); d > 1e-4 {
			t.Fatalf("expert %d dW2 diff %v", e, d)
		}
	}
}

// Property: data-centric results are independent of the fetch order —
// the topology-aware scheduler cannot change the math.
func TestFetchOrderInvarianceProperty(t *testing.T) {
	const h, numExperts, topK, numWorkers, tokens = 8, 6, 2, 3, 6
	layer := NewLayer(h, numExperts, topK, 5)
	xs := workers(numWorkers, tokens, h, 50)
	douts := workers(numWorkers, tokens, h, 60)
	base := layer.ForwardBackwardDataCentric(xs, douts, nil)

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := make([][]int, numWorkers)
		for w := range order {
			order[w] = rng.Perm(numExperts)
		}
		got := layer.ForwardBackwardDataCentric(xs, douts, order)
		for w := range xs {
			if !tensor.Equal(base.Outputs[w], got.Outputs[w]) {
				return false
			}
			if !tensor.Equal(base.InputGrads[w], got.InputGrads[w]) {
				return false
			}
		}
		for e := range layer.Experts {
			if !tensor.Equal(base.Grads[e].DW1, got.Grads[e].DW1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: equivalence holds across random layer shapes.
func TestParadigmEquivalenceProperty(t *testing.T) {
	prop := func(seed int64, h8, e8, w8, t8 uint8) bool {
		h := (int(h8%4) + 1) * 4
		numExperts := int(e8%6) + 2
		topK := 1 + int(seed)&1
		if topK > numExperts {
			topK = numExperts
		}
		numWorkers := int(w8%4) + 1
		tokens := int(t8%8) + 1
		layer := NewLayer(h, numExperts, topK, seed)
		xs := workers(numWorkers, tokens, h, seed+1000)
		douts := workers(numWorkers, tokens, h, seed+2000)
		ec := layer.ForwardBackwardExpertCentric(xs, douts)
		dc := layer.ForwardBackwardDataCentric(xs, douts, nil)
		for w := range xs {
			if !tensor.Equal(ec.Outputs[w], dc.Outputs[w]) {
				return false
			}
			if !tensor.Equal(ec.InputGrads[w], dc.InputGrads[w]) {
				return false
			}
		}
		for e := range layer.Experts {
			if tensor.MaxAbsDiff(ec.Grads[e].DW1, dc.Grads[e].DW1) > 1e-3 {
				return false
			}
			if tensor.MaxAbsDiff(ec.Grads[e].DW2, dc.Grads[e].DW2) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A full training step under each paradigm keeps weights in lockstep:
// apply SGD with each paradigm's gradients and verify the updated
// experts agree within float tolerance — the "does not affect
// convergence" claim, one step at a time.
func TestTrainingStepEquivalence(t *testing.T) {
	const h, numExperts, topK, numWorkers, tokens = 8, 4, 2, 2, 8
	mkLayer := func() *Layer { return NewLayer(h, numExperts, topK, 77) }
	xs := workers(numWorkers, tokens, h, 300)
	douts := workers(numWorkers, tokens, h, 400)

	lec := mkLayer()
	ec := lec.ForwardBackwardExpertCentric(xs, douts)
	for e, ex := range lec.Experts {
		ex.ApplySGD(ec.Grads[e], 0.01)
	}

	ldc := mkLayer()
	dc := ldc.ForwardBackwardDataCentric(xs, douts, nil)
	for e, ex := range ldc.Experts {
		ex.ApplySGD(dc.Grads[e], 0.01)
	}

	for e := range lec.Experts {
		if d := tensor.MaxAbsDiff(lec.Experts[e].W1, ldc.Experts[e].W1); d > 1e-5 {
			t.Fatalf("expert %d W1 diverged after one step: %v", e, d)
		}
		if d := tensor.MaxAbsDiff(lec.Experts[e].W2, ldc.Experts[e].W2); d > 1e-5 {
			t.Fatalf("expert %d W2 diverged after one step: %v", e, d)
		}
	}
}

func TestForwardOnlyMode(t *testing.T) {
	layer := NewLayer(8, 4, 2, 9)
	xs := workers(2, 4, 8, 10)
	ec := layer.ForwardBackwardExpertCentric(xs, nil)
	dc := layer.ForwardBackwardDataCentric(xs, nil, nil)
	if ec.InputGrads != nil || dc.InputGrads != nil {
		t.Fatal("forward-only produced grads")
	}
	for w := range xs {
		if !tensor.Equal(ec.Outputs[w], dc.Outputs[w]) {
			t.Fatal("forward-only outputs differ")
		}
	}
}

func TestExpertCloneIsDeep(t *testing.T) {
	e := NewExpert(4, 1)
	c := e.Clone()
	c.W1.Data[0] += 1
	if e.W1.Data[0] == c.W1.Data[0] {
		t.Fatal("clone shares weight storage")
	}
}
