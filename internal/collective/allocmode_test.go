package collective

import (
	"math"
	"testing"

	"janus/internal/fabric"
	"janus/internal/topology"
)

// runCollectives drives an All-to-All wave, a hierarchical All-to-All
// and a ring AllReduce back to back on a cluster built with the given
// allocator mode, and returns the bit-exact observables: finish time of
// each phase and the per-machine egress bytes at the end.
func runCollectives(t *testing.T, mode fabric.AllocMode, machines int) []float64 {
	t.Helper()
	spec := topology.DefaultSpec(machines)
	spec.AllocMode = mode
	c, err := topology.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	gpus := c.GPUs()
	var out []float64
	AllToAll(c, gpus, uniformSizes(len(gpus), 2e6), "a2a", func() {
		out = append(out, c.Engine.Now())
		HierarchicalAllToAll(c, uniformSizes(len(gpus), 1e6), "ha2a", func() {
			out = append(out, c.Engine.Now())
			RingAllReduce(c, gpus, 4e6, "ar", func() {
				out = append(out, c.Engine.Now())
			})
		})
	})
	c.Engine.Run()
	if len(out) != 3 {
		t.Fatalf("collective chain incomplete: %d/3 phases finished", len(out))
	}
	for mi := 0; mi < machines; mi++ {
		out = append(out, c.MachineEgressBytes(mi))
	}
	return out
}

// The hierarchical allocator must be an implementation detail: a full
// collective workload over the real cluster topology (NIC links marked
// trunk by the builder) produces a bitwise-identical timeline and
// byte accounting under every allocator mode.
func TestCollectivesAllocModeDifferential(t *testing.T) {
	const machines = 3
	inc := runCollectives(t, fabric.ModeIncremental, machines)
	hier := runCollectives(t, fabric.ModeHierarchical, machines)
	oracle := runCollectives(t, fabric.ModeOracle, machines)
	for i := range inc {
		if math.Float64bits(inc[i]) != math.Float64bits(hier[i]) {
			t.Errorf("sample %d: incremental=%v hierarchical=%v", i, inc[i], hier[i])
		}
		if math.Float64bits(inc[i]) != math.Float64bits(oracle[i]) {
			t.Errorf("sample %d: incremental=%v oracle=%v", i, inc[i], oracle[i])
		}
	}
}
