// Package collective implements the communication collectives the
// training engines use, as flow programs on the fabric: flat and
// hierarchical All-to-All (the expert-centric dispatch/combine), ring
// AllReduce (data-parallel gradient sync of the dense parameters), and
// broadcast.
//
// All collectives are *synchronous* in the sense the paper criticises:
// the completion callback fires only when every constituent flow has
// finished, so the slowest sender/receiver pins the whole operation.
//
// Flow completions are delivered by simulation events, never
// synchronously from StartFlow, so a collective can safely count its
// flows before any of them finishes.
package collective

import (
	"fmt"

	"janus/internal/fabric"
	"janus/internal/topology"
)

// joinCounter invokes done after n calls to its method.
type joinCounter struct {
	n    int
	done func()
}

func (j *joinCounter) arrive() {
	j.n--
	if j.n == 0 && j.done != nil {
		j.done()
	}
}

// AllToAll moves sizes[i][j] bytes from gpus[i] to gpus[j] concurrently
// and calls onDone when every transfer has completed. Diagonal entries
// (i == j) are local and free. This is the flat algorithm: one flow per
// (src, dst) pair with nonzero payload.
func AllToAll(c *topology.Cluster, gpus []*topology.GPU, sizes [][]float64, name string, onDone func()) {
	if len(sizes) != len(gpus) {
		panic(fmt.Sprintf("collective: sizes has %d rows for %d gpus", len(sizes), len(gpus)))
	}
	var flows []func(*joinCounter)
	for i, src := range gpus {
		if len(sizes[i]) != len(gpus) {
			panic(fmt.Sprintf("collective: sizes row %d has %d cols for %d gpus", i, len(sizes[i]), len(gpus)))
		}
		for j, dst := range gpus {
			if i == j || sizes[i][j] <= 0 {
				continue
			}
			src, dst, size := src, dst, sizes[i][j]
			flows = append(flows, func(join *joinCounter) {
				c.Net.StartFlowEff(fmt.Sprintf("%s:%v->%v", name, src, dst), size,
					c.Spec.A2AEfficiency, c.PathGPUToGPU(src, dst),
					func(*fabric.Flow) { join.arrive() })
			})
		}
	}
	if len(flows) == 0 {
		if onDone != nil {
			// Keep the "completion is asynchronous" contract even when
			// nothing moves.
			c.Engine.After(0, onDone)
		}
		return
	}
	join := &joinCounter{n: len(flows), done: onDone}
	for _, f := range flows {
		f(join)
	}
}

// HierarchicalAllToAll implements the 2D algorithm Tutel and SE-MoE
// use: (1) intra-node phase — data from GPU (M, r) bound for GPU
// (M', r') is first moved over NVLink to the local GPU with rank r';
// (2) inter-node phase — every GPU exchanges one aggregated flow per
// remote machine with its same-rank counterpart, after which every
// payload is already at its final destination. Total bytes are
// unchanged (the tests assert it), but cross-node flows shrink from
// O((nm)²) to O(n²m) aggregated ones, each at full NIC stripe.
//
// sizes is indexed by global rank, like AllToAll over all cluster GPUs.
func HierarchicalAllToAll(c *topology.Cluster, sizes [][]float64, name string, onDone func()) {
	gpus := c.GPUs()
	m := c.Spec.GPUsPerNode
	if len(sizes) != len(gpus) {
		panic(fmt.Sprintf("collective: sizes has %d rows for %d gpus", len(sizes), len(gpus)))
	}

	intraBytes := make(map[[2]int]float64) // (src, local relay) -> bytes
	interBytes := make(map[[2]int]float64) // (relay, dst) -> bytes
	for i := range gpus {
		for j := range gpus {
			sz := sizes[i][j]
			if sz <= 0 || i == j {
				continue
			}
			srcM, dstM := i/m, j/m
			if srcM == dstM {
				intraBytes[[2]int{i, j}] += sz
				continue
			}
			relay := srcM*m + j%m // local GPU with the destination's rank
			if relay != i {
				intraBytes[[2]int{i, relay}] += sz
			}
			interBytes[[2]int{relay, j}] += sz
		}
	}

	runPhase := func(pairs map[[2]int]float64, phase string, then func()) {
		if len(pairs) == 0 {
			c.Engine.After(0, then)
			return
		}
		// Deterministic iteration order over the map.
		keys := make([][2]int, 0, len(pairs))
		for k := range pairs {
			keys = append(keys, k)
		}
		sortPairs(keys)
		join := &joinCounter{n: len(keys), done: then}
		for _, k := range keys {
			src, dst := gpus[k[0]], gpus[k[1]]
			c.Net.StartFlowEff(fmt.Sprintf("%s.%s:%v->%v", name, phase, src, dst),
				pairs[k], c.Spec.A2AEfficiency, c.PathGPUToGPU(src, dst),
				func(*fabric.Flow) { join.arrive() })
		}
	}
	runPhase(intraBytes, "intra", func() {
		runPhase(interBytes, "inter", func() {
			if onDone != nil {
				onDone()
			}
		})
	})
}

func sortPairs(keys [][2]int) {
	// insertion sort: tiny inputs, avoids importing sort for a tuple type
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a[0] < b[0] || (a[0] == b[0] && a[1] <= b[1]) {
				break
			}
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
}

// RingAllReduce reduces bytesPerGPU bytes across the given GPUs with
// the standard ring algorithm: 2·(N−1) steps, each moving bytes/N per
// GPU to its ring successor, with a barrier between steps. onDone fires
// when the last step completes. The ring order is global-rank order,
// which places machine boundaries at exactly n points — the usual
// topology-friendly ring.
func RingAllReduce(c *topology.Cluster, gpus []*topology.GPU, bytesPerGPU float64, name string, onDone func()) {
	nGPU := len(gpus)
	if nGPU < 2 || bytesPerGPU <= 0 {
		c.Engine.After(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	chunk := bytesPerGPU / float64(nGPU)
	steps := 2 * (nGPU - 1)
	var runStep func(s int)
	runStep = func(s int) {
		if s == steps {
			if onDone != nil {
				onDone()
			}
			return
		}
		join := &joinCounter{n: nGPU, done: func() { runStep(s + 1) }}
		for i, src := range gpus {
			dst := gpus[(i+1)%nGPU]
			c.Net.StartFlowEff(fmt.Sprintf("%s.step%d:%v->%v", name, s, src, dst),
				chunk, c.Spec.AllReduceEfficiency, c.PathGPUToGPU(src, dst),
				func(*fabric.Flow) { join.arrive() })
		}
	}
	runStep(0)
}

// Broadcast sends size bytes from root to every other listed GPU
// concurrently (the flat algorithm; adequate for the expert-push use).
func Broadcast(c *topology.Cluster, root *topology.GPU, gpus []*topology.GPU, size float64, name string, onDone func()) {
	var targets []*topology.GPU
	for _, g := range gpus {
		if g != root {
			targets = append(targets, g)
		}
	}
	if len(targets) == 0 || size <= 0 {
		c.Engine.After(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	join := &joinCounter{n: len(targets), done: onDone}
	for _, dst := range targets {
		c.Net.StartFlowEff(fmt.Sprintf("%s:%v->%v", name, root, dst), size,
			c.Spec.PullEfficiency, c.PathGPUToGPU(root, dst),
			func(*fabric.Flow) { join.arrive() })
	}
}
