// Package collective implements the communication collectives the
// training engines use, as flow programs on the fabric: flat and
// hierarchical All-to-All (the expert-centric dispatch/combine), ring
// AllReduce (data-parallel gradient sync of the dense parameters), and
// broadcast.
//
// All collectives are *synchronous* in the sense the paper criticises:
// the completion callback fires only when every constituent flow has
// finished, so the slowest sender/receiver pins the whole operation.
//
// Flow completions are delivered by simulation events, never
// synchronously from StartFlows, so a collective can safely count its
// flows before any of them finishes.
//
// Every collective admits each wave of flows through one batched
// fabric.StartFlows call, so an n-GPU All-to-All costs the fabric a
// single rate settlement instead of n(n−1).
package collective

import (
	"fmt"

	"janus/internal/fabric"
	"janus/internal/topology"
)

// joinCounter invokes done after n calls to its method.
type joinCounter struct {
	n    int
	done func()
}

func (j *joinCounter) arrive() {
	j.n--
	if j.n == 0 && j.done != nil {
		j.done()
	}
}

// AllToAll moves sizes[i][j] bytes from gpus[i] to gpus[j] concurrently
// and calls onDone when every transfer has completed. Diagonal entries
// (i == j) are local and free. This is the flat algorithm: one flow per
// (src, dst) pair with nonzero payload, all admitted in one batch.
func AllToAll(c *topology.Cluster, gpus []*topology.GPU, sizes [][]float64, name string, onDone func()) {
	if len(sizes) != len(gpus) {
		panic(fmt.Sprintf("collective: sizes has %d rows for %d gpus", len(sizes), len(gpus)))
	}
	var specs []fabric.FlowSpec
	for i, src := range gpus {
		if len(sizes[i]) != len(gpus) {
			panic(fmt.Sprintf("collective: sizes row %d has %d cols for %d gpus", i, len(sizes[i]), len(gpus)))
		}
		for j, dst := range gpus {
			if i == j || sizes[i][j] <= 0 {
				continue
			}
			specs = append(specs, fabric.FlowSpec{
				Name: fmt.Sprintf("%s:%v->%v", name, src, dst),
				Size: sizes[i][j], Eff: c.Spec.A2AEfficiency,
				Path: c.PathGPUToGPU(src, dst),
			})
		}
	}
	startWave(c, specs, onDone)
}

// startWave admits specs as one batch, wiring each flow's completion
// into a join that fires onDone once the whole wave has drained. An
// empty wave still completes asynchronously, keeping the contract that
// onDone never fires inside the caller's stack frame.
func startWave(c *topology.Cluster, specs []fabric.FlowSpec, onDone func()) {
	if len(specs) == 0 {
		if onDone != nil {
			c.Engine.After(0, onDone)
		}
		return
	}
	join := &joinCounter{n: len(specs), done: onDone}
	for i := range specs {
		specs[i].OnComplete = func(*fabric.Flow) { join.arrive() }
	}
	c.Net.StartFlows(specs)
}

// HierarchicalAllToAll implements the 2D algorithm Tutel and SE-MoE
// use: (1) intra-node phase — data from GPU (M, r) bound for GPU
// (M', r') is first moved over NVLink to the local GPU with rank r';
// (2) inter-node phase — every GPU exchanges one aggregated flow per
// remote machine with its same-rank counterpart, after which every
// payload is already at its final destination. Total bytes are
// unchanged (the tests assert it), but cross-node flows shrink from
// O((nm)²) to O(n²m) aggregated ones, each at full NIC stripe.
//
// sizes is indexed by global rank, like AllToAll over all cluster GPUs.
func HierarchicalAllToAll(c *topology.Cluster, sizes [][]float64, name string, onDone func()) {
	gpus := c.GPUs()
	m := c.Spec.GPUsPerNode
	if len(sizes) != len(gpus) {
		panic(fmt.Sprintf("collective: sizes has %d rows for %d gpus", len(sizes), len(gpus)))
	}

	intraBytes := make(map[[2]int]float64) // (src, local relay) -> bytes
	interBytes := make(map[[2]int]float64) // (relay, dst) -> bytes
	for i := range gpus {
		for j := range gpus {
			sz := sizes[i][j]
			if sz <= 0 || i == j {
				continue
			}
			srcM, dstM := i/m, j/m
			if srcM == dstM {
				intraBytes[[2]int{i, j}] += sz
				continue
			}
			relay := srcM*m + j%m // local GPU with the destination's rank
			if relay != i {
				intraBytes[[2]int{i, relay}] += sz
			}
			interBytes[[2]int{relay, j}] += sz
		}
	}

	runPhase := func(pairs map[[2]int]float64, phase string, then func()) {
		// Deterministic iteration order over the map.
		keys := make([][2]int, 0, len(pairs))
		for k := range pairs {
			keys = append(keys, k)
		}
		sortPairs(keys)
		specs := make([]fabric.FlowSpec, 0, len(keys))
		for _, k := range keys {
			src, dst := gpus[k[0]], gpus[k[1]]
			specs = append(specs, fabric.FlowSpec{
				Name: fmt.Sprintf("%s.%s:%v->%v", name, phase, src, dst),
				Size: pairs[k], Eff: c.Spec.A2AEfficiency,
				Path: c.PathGPUToGPU(src, dst),
			})
		}
		startWave(c, specs, then)
	}
	runPhase(intraBytes, "intra", func() {
		runPhase(interBytes, "inter", func() {
			if onDone != nil {
				onDone()
			}
		})
	})
}

func sortPairs(keys [][2]int) {
	// insertion sort: tiny inputs, avoids importing sort for a tuple type
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a[0] < b[0] || (a[0] == b[0] && a[1] <= b[1]) {
				break
			}
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
}

// RingAllReduce reduces bytesPerGPU bytes across the given GPUs with
// the standard ring algorithm: 2·(N−1) steps, each moving bytes/N per
// GPU to its ring successor, with a barrier between steps. onDone fires
// when the last step completes. The ring order is global-rank order,
// which places machine boundaries at exactly n points — the usual
// topology-friendly ring. Each step is one admission batch.
func RingAllReduce(c *topology.Cluster, gpus []*topology.GPU, bytesPerGPU float64, name string, onDone func()) {
	nGPU := len(gpus)
	if nGPU < 2 || bytesPerGPU <= 0 {
		c.Engine.After(0, func() {
			if onDone != nil {
				onDone()
			}
		})
		return
	}
	chunk := bytesPerGPU / float64(nGPU)
	steps := 2 * (nGPU - 1)
	var runStep func(s int)
	runStep = func(s int) {
		if s == steps {
			if onDone != nil {
				onDone()
			}
			return
		}
		specs := make([]fabric.FlowSpec, 0, nGPU)
		for i, src := range gpus {
			dst := gpus[(i+1)%nGPU]
			specs = append(specs, fabric.FlowSpec{
				Name: fmt.Sprintf("%s.step%d:%v->%v", name, s, src, dst),
				Size: chunk, Eff: c.Spec.AllReduceEfficiency,
				Path: c.PathGPUToGPU(src, dst),
			})
		}
		startWave(c, specs, func() { runStep(s + 1) })
	}
	runStep(0)
}

// Broadcast sends size bytes from root to every other listed GPU
// concurrently (the flat algorithm; adequate for the expert-push use).
func Broadcast(c *topology.Cluster, root *topology.GPU, gpus []*topology.GPU, size float64, name string, onDone func()) {
	var specs []fabric.FlowSpec
	if size > 0 {
		for _, dst := range gpus {
			if dst == root {
				continue
			}
			specs = append(specs, fabric.FlowSpec{
				Name: fmt.Sprintf("%s:%v->%v", name, root, dst),
				Size: size, Eff: c.Spec.PullEfficiency,
				Path: c.PathGPUToGPU(root, dst),
			})
		}
	}
	startWave(c, specs, onDone)
}
