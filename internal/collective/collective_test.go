package collective

import (
	"math"
	"testing"
	"testing/quick"

	"janus/internal/topology"
)

func cluster(t testing.TB, machines int) *topology.Cluster {
	t.Helper()
	c, err := topology.New(topology.DefaultSpec(machines))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func uniformSizes(n int, bytes float64) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			if i != j {
				s[i][j] = bytes
			}
		}
	}
	return s
}

func TestAllToAllCompletes(t *testing.T) {
	c := cluster(t, 2)
	gpus := c.GPUs()
	done := false
	AllToAll(c, gpus, uniformSizes(len(gpus), 1e6), "a2a", func() { done = true })
	c.Engine.Run()
	if !done {
		t.Fatal("AllToAll never completed")
	}
	if c.Engine.Now() <= 0 {
		t.Fatal("AllToAll took no time")
	}
}

func TestAllToAllTrafficAccounting(t *testing.T) {
	c := cluster(t, 2)
	gpus := c.GPUs()
	const bytes = 1e6
	AllToAll(c, gpus, uniformSizes(len(gpus), bytes), "a2a", nil)
	c.Engine.Run()
	// Cross-machine bytes: each GPU sends to the 8 GPUs of the other
	// machine => 16 GPUs x 8 x 1e6 over NICs (egress side).
	got := c.InterNodeEgressBytes()
	want := 16 * 8 * bytes
	if math.Abs(got-want) > 1 {
		t.Fatalf("inter-node egress = %v, want %v", got, want)
	}
}

func TestAllToAllEmpty(t *testing.T) {
	c := cluster(t, 1)
	done := false
	AllToAll(c, c.GPUs(), uniformSizes(c.NumGPUs(), 0), "a2a", func() { done = true })
	c.Engine.Run()
	if !done {
		t.Fatal("empty AllToAll never completed")
	}
}

func TestAllToAllIsSynchronous(t *testing.T) {
	// One oversized pair transfer must delay the completion of the whole
	// collective (the imbalance effect of §3.1).
	c := cluster(t, 1)
	gpus := c.GPUs()
	sizes := uniformSizes(len(gpus), 1e6)
	balancedDone := 0.0
	AllToAll(c, gpus, sizes, "bal", nil)
	c.Engine.Run()
	balancedDone = c.Engine.Now()

	c2 := cluster(t, 1)
	gpus2 := c2.GPUs()
	sizes2 := uniformSizes(len(gpus2), 1e6)
	sizes2[0][1] = 64e6 // hot pair
	var skewDone float64
	AllToAll(c2, gpus2, sizes2, "skew", func() { skewDone = c2.Engine.Now() })
	c2.Engine.Run()
	if skewDone <= balancedDone*2 {
		t.Fatalf("skewed A2A (%.6fs) not gated by hot pair (balanced %.6fs)", skewDone, balancedDone)
	}
}

func TestHierarchicalAllToAllConservesBytes(t *testing.T) {
	c := cluster(t, 2)
	const bytes = 1e6
	n := c.NumGPUs()
	HierarchicalAllToAll(c, uniformSizes(n, bytes), "h", nil)
	c.Engine.Run()
	// Inter-node volume is identical to flat: every byte bound for the
	// other machine crosses the NICs exactly once.
	got := c.InterNodeEgressBytes()
	want := 16 * 8 * bytes
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("hierarchical inter-node egress = %v, want %v", got, want)
	}
}

func TestHierarchicalCompletesAndOrdersPhases(t *testing.T) {
	c := cluster(t, 4)
	done := false
	HierarchicalAllToAll(c, uniformSizes(c.NumGPUs(), 1e5), "h", func() { done = true })
	c.Engine.Run()
	if !done {
		t.Fatal("hierarchical A2A never completed")
	}
}

func TestHierarchicalFewerCrossNodeFlows(t *testing.T) {
	// With 4 machines x 8 GPUs, flat A2A creates 32*24=768 cross flows;
	// hierarchical creates one aggregated flow per (srcM,dstM) pair: 12.
	// We verify indirectly: hierarchical must not be slower than ~2x
	// flat for uniform sizes (it adds intra hops but they are fast).
	cFlat := cluster(t, 4)
	AllToAll(cFlat, cFlat.GPUs(), uniformSizes(32, 1e6), "flat", nil)
	cFlat.Engine.Run()
	flat := cFlat.Engine.Now()

	cH := cluster(t, 4)
	HierarchicalAllToAll(cH, uniformSizes(32, 1e6), "hier", nil)
	cH.Engine.Run()
	hier := cH.Engine.Now()
	if hier > 3*flat {
		t.Fatalf("hierarchical %.6fs suspiciously slow vs flat %.6fs", hier, flat)
	}
}

func TestRingAllReduceTime(t *testing.T) {
	c := cluster(t, 2)
	gpus := c.GPUs()
	const bytes = 16e6
	var doneAt float64
	RingAllReduce(c, gpus, bytes, "ar", func() { doneAt = c.Engine.Now() })
	c.Engine.Run()
	if doneAt <= 0 {
		t.Fatal("allreduce did not complete")
	}
	// Lower bound: 2(N-1)/N × bytes must cross the two machine-boundary
	// ring edges; each step is gated by the NIC hop.
	nGPU := float64(len(gpus))
	minTime := 2 * (nGPU - 1) / nGPU * bytes / c.Spec.NICBps
	if doneAt < minTime {
		t.Fatalf("allreduce %.6fs faster than NIC bound %.6fs", doneAt, minTime)
	}
}

func TestRingAllReduceDegenerate(t *testing.T) {
	c := cluster(t, 1)
	done := false
	RingAllReduce(c, c.GPUs()[:1], 1e6, "ar", func() { done = true })
	c.Engine.Run()
	if !done {
		t.Fatal("single-GPU allreduce should complete immediately")
	}
}

func TestBroadcast(t *testing.T) {
	c := cluster(t, 2)
	gpus := c.GPUs()
	var doneAt float64
	Broadcast(c, gpus[0], gpus, 1e6, "bc", func() { doneAt = c.Engine.Now() })
	c.Engine.Run()
	if doneAt <= 0 {
		t.Fatal("broadcast did not complete")
	}
	// Root egress carried (m-1) intra + striped NIC... at minimum the
	// NVLink egress carried 7 copies.
	c.Net.Sync()
	if got := gpus[0].NVOut.CarriedBytes(); got < 7e6-1 {
		t.Fatalf("root NVLink egress = %v, want >= 7e6", got)
	}
}

func TestBroadcastDegenerate(t *testing.T) {
	c := cluster(t, 1)
	done := false
	Broadcast(c, c.GPU(0), []*topology.GPU{c.GPU(0)}, 1e6, "bc", func() { done = true })
	c.Engine.Run()
	if !done {
		t.Fatal("self-broadcast should complete")
	}
}

// Property: for random sparse size matrices, flat and hierarchical
// all-to-all carry identical inter-node byte totals.
func TestFlatVsHierarchicalTrafficProperty(t *testing.T) {
	prop := func(seed int64) bool {
		sizes := uniformSizes(16, 0)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64((s>>33)&0xFFFF) * 100
		}
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				if i != j {
					sizes[i][j] = next()
				}
			}
		}
		cF := cluster(t, 2)
		AllToAll(cF, cF.GPUs(), sizes, "f", nil)
		cF.Engine.Run()
		cH := cluster(t, 2)
		HierarchicalAllToAll(cH, sizes, "h", nil)
		cH.Engine.Run()
		a, b := cF.InterNodeEgressBytes(), cH.InterNodeEgressBytes()
		if a == 0 && b == 0 {
			return true
		}
		return math.Abs(a-b)/math.Max(a, 1) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
