package experiments

import (
	"fmt"
	"strings"

	"janus/internal/costmodel"
	"janus/internal/engine"
	"janus/internal/fabric"
	"janus/internal/topology"
)

// --- Figure 7: same-order vs staggered internal pulls -----------------------

// Fig7Result compares the two internal-pull schedules of Figure 7 on
// one machine: every worker pulls every other worker's expert over
// NVLink, either all in the same ascending order (7a) or in the
// Algorithm-1 staggered order (7b), with a credit window of C.
type Fig7Result struct {
	Workers     int
	ExpertMiB   float64
	Credits     int
	SameOrderMs float64
	StaggeredMs float64
	Speedup     float64
	// MaxEgressShare is the peak number of simultaneous pullers a single
	// source GPU served in each schedule — the contention Figure 7a shows.
	SameOrderMaxPullers int
	StaggeredMaxPullers int
}

// Fig7 runs both schedules and reports completion times.
func Fig7() (*Fig7Result, error) {
	const h = 768
	const credits = 2
	run := func(staggered bool) (float64, int, error) {
		c, err := topology.New(topology.DefaultSpec(1))
		if err != nil {
			return 0, 0, err
		}
		m := c.NumGPUs()
		bytes := costmodel.ExpertBytes(h)
		active := make([]int, m) // concurrent pullers per source
		maxActive := 0
		var pending int
		for w := 0; w < m; w++ {
			var order []int
			if staggered {
				for i := w + 1; i < m; i++ {
					order = append(order, i)
				}
				for i := 0; i < w; i++ {
					order = append(order, i)
				}
			} else {
				for i := 0; i < m; i++ {
					if i != w {
						order = append(order, i)
					}
				}
			}
			// Credit-windowed in-order issue per worker.
			w := w
			next := 0
			inFlight := 0
			var issue func()
			issue = func() {
				for inFlight < credits && next < len(order) {
					src := order[next]
					next++
					inFlight++
					pending++
					active[src]++
					if active[src] > maxActive {
						maxActive = active[src]
					}
					c.Net.StartFlowEff(fmt.Sprintf("pull.%d<-%d", w, src), bytes,
						c.Spec.PullEfficiency,
						c.PathGPUToGPU(c.GPU(src), c.GPU(w)), func(f *fabric.Flow) {
							active[src]--
							inFlight--
							pending--
							issue()
						})
				}
			}
			issue()
		}
		c.Engine.Run()
		return c.Engine.Now(), maxActive, nil
	}
	same, sameMax, err := run(false)
	if err != nil {
		return nil, err
	}
	stag, stagMax, err := run(true)
	if err != nil {
		return nil, err
	}
	return &Fig7Result{
		Workers: 8, ExpertMiB: costmodel.ExpertBytes(h) / (1 << 20), Credits: credits,
		SameOrderMs: same * 1e3, StaggeredMs: stag * 1e3, Speedup: same / stag,
		SameOrderMaxPullers: sameMax, StaggeredMaxPullers: stagMax,
	}, nil
}

func (r *Fig7Result) Render() string {
	return fmt.Sprintf(`Figure 7 — internal expert pull schedules (1 machine, %d workers, %.1f MiB experts, C=%d)
same order (7a):  %8.2f ms   peak pullers per source: %d
staggered  (7b):  %8.2f ms   peak pullers per source: %d
staggered speedup: %.2fx
`, r.Workers, r.ExpertMiB, r.Credits,
		r.SameOrderMs, r.SameOrderMaxPullers,
		r.StaggeredMs, r.StaggeredMaxPullers, r.Speedup)
}

// --- Figure 9: PCIe-switch-aware stage-2 copies ------------------------------

// Fig9Result compares stage-2 schedules for copying K cached external
// experts from host memory to both GPUs of one PCIe switch: the naive
// schedule copies every expert to each GPU over the shared PCIe lanes;
// the switch-aware schedule has each GPU copy half over PCIe and relay
// the other half from its peer over NVLink (Figure 8/9).
type Fig9Result struct {
	Experts   int
	ExpertMiB float64
	NaiveMs   float64
	PairedMs  float64
	Speedup   float64
}

// Fig9 measures both schedules on one PCIe-switch GPU pair.
func Fig9() (*Fig9Result, error) {
	const h = 768
	const k = 16 // cached external experts
	bytes := costmodel.ExpertBytes(h)

	naive, err := fig9Run(h, k, false)
	if err != nil {
		return nil, err
	}
	paired, err := fig9Run(h, k, true)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		Experts: k, ExpertMiB: bytes / (1 << 20),
		NaiveMs: naive * 1e3, PairedMs: paired * 1e3, Speedup: naive / paired,
	}, nil
}

func fig9Run(h, k int, paired bool) (float64, error) {
	c, err := topology.New(topology.DefaultSpec(1))
	if err != nil {
		return 0, err
	}
	bytes := costmodel.ExpertBytes(h)
	g0, g1 := c.GPU(0), c.GPU(1) // the pair on PCIe switch 0
	gpus := []*topology.GPU{g0, g1}

	if !paired {
		done := engine.NewBarrier(2*k, nil)
		for _, g := range gpus {
			for e := 0; e < k; e++ {
				c.Net.StartFlowEff(fmt.Sprintf("copy.e%d.%v", e, g), bytes,
					c.Spec.MemcpyEfficiency, c.PathLocalCPUToGPU(g),
					func(*fabric.Flow) { done.Arrive() })
			}
		}
		c.Engine.Run()
		return c.Engine.Now(), nil
	}

	// Paired: GPU i owns the experts with e%2==i; it copies those over
	// PCIe and relays the others from its peer once the peer has them.
	arrived := make([]map[int]*chanSignal, 2)
	for i := range arrived {
		arrived[i] = make(map[int]*chanSignal)
		for e := 0; e < k; e++ {
			arrived[i][e] = &chanSignal{}
		}
	}
	for gi, g := range gpus {
		gi, g := gi, g
		for e := 0; e < k; e++ {
			e := e
			if e%2 == gi {
				c.Net.StartFlowEff(fmt.Sprintf("pcie.e%d.%v", e, g), bytes,
					c.Spec.MemcpyEfficiency, c.PathLocalCPUToGPU(g),
					func(*fabric.Flow) { arrived[gi][e].fire() })
			} else {
				peer := 1 - gi
				arrived[peer][e].wait(func() {
					c.Net.StartFlowEff(fmt.Sprintf("peer.e%d.%v", e, g), bytes,
						c.Spec.MemcpyEfficiency, c.PathGPUToGPU(gpus[peer], g),
						func(*fabric.Flow) { arrived[gi][e].fire() })
				})
			}
		}
	}
	c.Engine.Run()
	return c.Engine.Now(), nil
}

// chanSignal is a tiny one-shot signal (the core package has its own,
// unexported one; experiments only needs this microbench-local copy).
type chanSignal struct {
	fired   bool
	waiters []func()
}

func (s *chanSignal) fire() {
	if s.fired {
		return
	}
	s.fired = true
	for _, f := range s.waiters {
		f()
	}
	s.waiters = nil
}

func (s *chanSignal) wait(f func()) {
	if s.fired {
		f()
		return
	}
	s.waiters = append(s.waiters, f)
}

func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — stage-2 copies of %d cached experts (%.1f MiB each) to a PCIe-switch pair\n",
		r.Experts, r.ExpertMiB)
	fmt.Fprintf(&b, "naive (PCIe only):      %8.2f ms\n", r.NaiveMs)
	fmt.Fprintf(&b, "switch-aware (Fig. 8):  %8.2f ms\n", r.PairedMs)
	fmt.Fprintf(&b, "speedup:                %8.2fx\n", r.Speedup)
	return b.String()
}
