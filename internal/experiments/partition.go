package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"time"

	"janus/internal/faultinject"
	"janus/internal/livecluster"
)

// PartitionRow is one training step of the asymmetric-partition drill
// (the fenced one-way run — the scenario under test).
type PartitionRow struct {
	Step            int
	WallMs          float64
	AliveMachines   int
	Partitioned     int
	Degraded        bool
	FenceRejections int64 // stale-epoch requests rejected this step
	QuorumStalls    int64 // minority rounds frozen this step
	DroppedGrads    int64
}

// PartitionResult quantifies the split-brain defence. Three seeded
// trials of the same training schedule through a 2-vs-1 partition:
//
//   - fenced one-way: the minority's writes still arrive (zombie
//     writer) but carry a stale membership epoch, so the majority
//     fences every one;
//   - two-way reference: zombie traffic physically cannot arrive —
//     the single-owner ground truth;
//   - unfenced one-way: the same zombie writes are accepted, showing
//     what the fence prevents.
//
// The headline numbers are the per-expert weight divergences against
// the reference after heal: 0 with fencing, >0 without.
type PartitionResult struct {
	Machines         int
	Minority         int // the machine cut off from the majority
	PartFrom, PartTo int // 1-based step window of the partition
	Steps            int
	Rows             []PartitionRow
	Failovers        int64
	RehomedExperts   int64
	Restores         int64
	FenceRejections  int64
	QuorumStalls     int64
	HealedStep       int // first step the full membership was back
	NumExperts       int
	DivergedFenced   int // experts differing from the reference, fencing on
	DivergedUnfenced int // experts differing from the reference, fencing off
}

// partitionTrial is one seeded run of the drill schedule.
type partitionTrial struct {
	state  [][]byte
	rows   []PartitionRow
	res    *PartitionResult // totals filled from the cluster
	healed int
}

func runPartitionTrial(steps, partFrom, partTo int, oneWay, fencingDisabled bool) (*partitionTrial, error) {
	ckptDir, err := os.MkdirTemp("", "janus-partition-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ckptDir)

	const minority = 2
	inj := faultinject.New(17)
	if oneWay {
		inj.PartitionOneWay(livecluster.MachineLabel(0), livecluster.MachineLabel(minority), partFrom, partTo)
		inj.PartitionOneWay(livecluster.MachineLabel(1), livecluster.MachineLabel(minority), partFrom, partTo)
	} else {
		inj.Partition(livecluster.MachineLabel(0), livecluster.MachineLabel(minority), partFrom, partTo)
		inj.Partition(livecluster.MachineLabel(1), livecluster.MachineLabel(minority), partFrom, partTo)
	}
	cfg := livecluster.Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 24, Seed: 42, Credits: 4,
		Injector:         inj,
		StaleFallback:    true,
		PullTimeout:      120 * time.Millisecond,
		PullRetries:      2,
		RetryBackoff:     2 * time.Millisecond,
		FailoverEnabled:  true,
		DeadManSteps:     1,
		HeartbeatTimeout: 150 * time.Millisecond,
		CheckpointDir:    ckptDir,
		CheckpointEvery:  1,
		FencingDisabled:  fencingDisabled,
	}
	cl, err := livecluster.Start(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	tr := &partitionTrial{res: &PartitionResult{
		Machines: cfg.Machines, Minority: minority,
		PartFrom: partFrom, PartTo: partTo, Steps: steps,
		NumExperts: cfg.NumExperts,
	}}
	for s := 1; s <= steps; s++ {
		start := time.Now()
		step, err := cl.Train(livecluster.TrainOptions{Steps: 1})
		if err != nil {
			return nil, fmt.Errorf("partition step %d: %w", s, err)
		}
		tr.rows = append(tr.rows, PartitionRow{
			Step:            s,
			WallMs:          float64(time.Since(start).Microseconds()) / 1e3,
			AliveMachines:   step.AliveMachines,
			Partitioned:     step.PartitionedMachines,
			Degraded:        step.DegradedSteps > 0,
			FenceRejections: step.Robust.FenceRejections,
			QuorumStalls:    step.Robust.QuorumStalls,
			DroppedGrads:    step.DroppedGrads,
		})
		if s >= partFrom && tr.healed == 0 &&
			step.AliveMachines == cfg.Machines && step.PartitionedMachines == 0 {
			tr.healed = s
		}
	}
	tr.state, err = cl.ExpertState()
	if err != nil {
		return nil, err
	}
	totals := cl.RobustnessTotals()
	tr.res.Failovers = totals.Failovers
	tr.res.RehomedExperts = totals.RehomedExperts
	tr.res.Restores = totals.Restores
	tr.res.FenceRejections = totals.FenceRejections
	tr.res.QuorumStalls = totals.QuorumStalls
	return tr, nil
}

// Partition runs the asymmetric network-partition drill: six seeded
// training steps with machine 2 cut off from the majority for steps
// 2-3 while its own writes keep arriving. The fenced run must land
// bitwise on the two-way reference (exactly one side made accepted
// progress); the unfenced control shows the divergence the epoch fence
// prevents.
func Partition() (*PartitionResult, error) {
	const (
		steps    = 6
		partFrom = 2
		partTo   = 4
	)
	fenced, err := runPartitionTrial(steps, partFrom, partTo, true, false)
	if err != nil {
		return nil, err
	}
	reference, err := runPartitionTrial(steps, partFrom, partTo, false, false)
	if err != nil {
		return nil, err
	}
	unfenced, err := runPartitionTrial(steps, partFrom, partTo, true, true)
	if err != nil {
		return nil, err
	}

	res := fenced.res
	res.Rows = fenced.rows
	res.HealedStep = fenced.healed
	for e := range fenced.state {
		if !bytes.Equal(fenced.state[e], reference.state[e]) {
			res.DivergedFenced++
		}
		if !bytes.Equal(unfenced.state[e], reference.state[e]) {
			res.DivergedUnfenced++
		}
	}
	// The differential is the experiment's contract, so violating it is
	// an error, not a data point: with fencing the zombie must leave no
	// trace, and without it the control must show the corruption the
	// fence prevents (a control with no divergence means the zombie's
	// writes never arrived and the drill proved nothing).
	if res.DivergedFenced != 0 {
		return nil, fmt.Errorf("partition: %d/%d experts diverged from the single-owner reference despite fencing",
			res.DivergedFenced, res.NumExperts)
	}
	if res.DivergedUnfenced == 0 {
		return nil, fmt.Errorf("partition: unfenced control shows no divergence; zombie writes never reached the majority")
	}
	return res, nil
}

func (r *PartitionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — asymmetric partition with quorum gating and epoch fencing (%d machines, machine %d cut off for steps %d-%d, zombie writes still arriving)\n",
		r.Machines, r.Minority, r.PartFrom, r.PartTo-1)
	fmt.Fprintf(&b, "%4s %9s %6s %7s %9s %7s %7s %6s\n",
		"step", "wall(ms)", "alive", "parted", "degraded", "fenced", "stalls", "drops")
	for _, row := range r.Rows {
		deg := "no"
		if row.Degraded {
			deg = "yes"
		}
		fmt.Fprintf(&b, "%4d %9.1f %6d %7d %9s %7d %7d %6d\n",
			row.Step, row.WallMs, row.AliveMachines, row.Partitioned, deg,
			row.FenceRejections, row.QuorumStalls, row.DroppedGrads)
	}
	fmt.Fprintf(&b, "membership: 1 failover (quorum side), %d experts re-homed, %d restored from checkpoint, healed at step %d; minority froze %d rounds instead of forking ownership\n",
		r.RehomedExperts, r.Restores, r.HealedStep, r.QuorumStalls)
	fmt.Fprintf(&b, "epoch fence: %d stale-epoch requests rejected; final weights vs single-owner reference: %d/%d experts diverged with fencing ON, %d/%d with fencing OFF\n",
		r.FenceRejections, r.DivergedFenced, r.NumExperts, r.DivergedUnfenced, r.NumExperts)
	return b.String()
}
