package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig3", "goodput", "fig7", "fig9", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "straggler", "faultsweep", "failover", "partition", "churn", "replication", "serving"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry ids = %v, want %v", got, want)
		}
	}
	if _, ok := ByID("fig14"); !ok {
		t.Fatal("ByID(fig14) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) found")
	}
}

// Table 1: analytic numbers must match the paper to its printed
// precision, and measured numbers must match the analytic closed form.
func TestTable1MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if rel(row.ECAnalyticGiB, row.PaperECGiB) > 0.08 {
			t.Errorf("%s/%d: EC analytic %.2f vs paper %.2f", row.Model, row.NumGPUs, row.ECAnalyticGiB, row.PaperECGiB)
		}
		if rel(row.DCAnalyticGiB, row.PaperDCGiB) > 0.08 {
			t.Errorf("%s/%d: DC analytic %.2f vs paper %.2f", row.Model, row.NumGPUs, row.DCAnalyticGiB, row.PaperDCGiB)
		}
		if rel(row.ECMeasuredGiB, row.ECAnalyticGiB) > 0.01 {
			t.Errorf("%s/%d: EC measured %.3f vs analytic %.3f", row.Model, row.NumGPUs, row.ECMeasuredGiB, row.ECAnalyticGiB)
		}
		if rel(row.DCMeasuredGiB, row.DCAnalyticGiB) > 0.01 {
			t.Errorf("%s/%d: DC measured %.3f vs analytic %.3f", row.Model, row.NumGPUs, row.DCMeasuredGiB, row.DCAnalyticGiB)
		}
	}
	if !strings.Contains(res.Render(), "Table 1") {
		t.Error("render missing title")
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFig3SharesInBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.A2AShare < 0.25 || row.A2AShare > 0.88 {
			t.Errorf("%s/%d: share %.2f outside band", row.Model, row.NumGPUs, row.A2AShare)
		}
		t.Logf("%s/%d iter=%.1fms share=%.1f%%", row.Model, row.NumGPUs, row.IterMs, row.A2AShare*100)
	}
}

func TestGoodputRatio(t *testing.T) {
	res, err := Goodput()
	if err != nil {
		t.Fatal(err)
	}
	if !(res.IntraGbps > res.InterGbps*5) {
		t.Fatalf("intra %.1f not ≫ inter %.1f", res.IntraGbps, res.InterGbps)
	}
	// The paper measured an 18x gap; the simulated fabric must land in
	// the same decade.
	if res.Ratio < 6 || res.Ratio > 60 {
		t.Fatalf("intra/inter ratio %.1f implausible vs paper's 18x", res.Ratio)
	}
	t.Log(strings.TrimSpace(res.Render()))
}

func TestFig7StaggeredWins(t *testing.T) {
	res, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.2 {
		t.Fatalf("staggered speedup %.2f too small", res.Speedup)
	}
	// Same-order sends every worker to the same source at once (peak m-1
	// pullers); staggering keeps the peak near the credit window since
	// workers start on distinct sources and only drift together slowly.
	if res.SameOrderMaxPullers != res.Workers-1 {
		t.Fatalf("same-order peak pullers = %d, want %d", res.SameOrderMaxPullers, res.Workers-1)
	}
	if res.StaggeredMaxPullers >= res.SameOrderMaxPullers {
		t.Fatalf("contention not visible: same=%d staggered=%d",
			res.SameOrderMaxPullers, res.StaggeredMaxPullers)
	}
	t.Log(strings.TrimSpace(res.Render()))
}

func TestFig9PairedWins(t *testing.T) {
	res, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup <= 1.3 {
		t.Fatalf("switch-aware speedup %.2f, want ~2x", res.Speedup)
	}
	if res.Speedup > 2.5 {
		t.Fatalf("switch-aware speedup %.2f implausibly high", res.Speedup)
	}
	t.Log(strings.TrimSpace(res.Render()))
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.DataCentric <= 1 {
			t.Errorf("%s: data-centric speedup %.2f <= 1", row.Model, row.DataCentric)
		}
		if row.PlusTopo < row.DataCentric*0.98 {
			t.Errorf("%s: topo made it worse (%.2f -> %.2f)", row.Model, row.DataCentric, row.PlusTopo)
		}
		if row.PlusPrefetch < row.PlusTopo*0.98 {
			t.Errorf("%s: prefetch made it worse (%.2f -> %.2f)", row.Model, row.PlusTopo, row.PlusPrefetch)
		}
		t.Logf("%s: dc=%.2fx topo=%.2fx pref=%.2fx (paper %.2f -> %.2f)",
			row.Model, row.DataCentric, row.PlusTopo, row.PlusPrefetch,
			row.PaperDataCentric, row.PaperAll)
	}
}

func TestFig13Overlap(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BlockDoneMs) != 12 {
		t.Fatalf("block marks = %d", len(res.BlockDoneMs))
	}
	if res.ExpertsEarly == 0 {
		t.Fatal("no experts arrived before the gate — prefetch not visible")
	}
	if res.OverlapMs <= 0 {
		t.Fatalf("overlap %.1fms, want positive", res.OverlapMs)
	}
	if res.ForwardSpeedup <= 1 {
		t.Fatalf("forward speedup %.2f", res.ForwardSpeedup)
	}
	t.Logf("fwd=%.1fms overlap=%.1fms speedup=%.2fx early=%d (paper 210.4ms / 74.9ms / 1.36x / 12)",
		res.ForwardMs, res.OverlapMs, res.ForwardSpeedup, res.ExpertsEarly)
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Speedup <= 1.1 {
			t.Errorf("%s: speedup %.2f", row.Model, row.Speedup)
		}
		t.Logf("%s: %.2fx (paper %.2fx)", row.Model, row.Speedup, row.PaperSpeedup)
	}
}

func TestFig15BatchShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	// Group rows per model: time grows with B in both systems and the
	// speedup grows with B (Tutel more sensitive).
	byModel := map[string][]SensitivityRow{}
	for _, row := range res.Rows {
		byModel[row.Model] = append(byModel[row.Model], row)
	}
	for model, rows := range byModel {
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", model, len(rows))
		}
		small, big := rows[0], rows[1]
		if !(big.TutelMs > small.TutelMs && big.JanusMs > small.JanusMs) {
			t.Errorf("%s: time did not grow with batch", model)
		}
		if !(big.Speedup >= small.Speedup-0.02) {
			t.Errorf("%s: speedup fell with batch: %.2f -> %.2f", model, small.Speedup, big.Speedup)
		}
		t.Logf("%s: B=%d %.2fx, B=%d %.2fx", model, small.Value, small.Speedup, big.Value, big.Speedup)
	}
}

func TestFig16SeqShapeAndOOM(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	sawOOM := false
	for _, row := range res.Rows {
		if row.Model == "MoE-BERT" && row.Value == 512 {
			if !row.TutelOOM {
				t.Error("MoE-BERT S=512 should OOM under Tutel")
			}
			sawOOM = true
			if row.JanusMs <= 0 {
				t.Error("Janus should complete at S=512")
			}
		} else if row.TutelOOM {
			t.Errorf("unexpected OOM: %s %s=%d", row.Model, row.Param, row.Value)
		}
	}
	if !sawOOM {
		t.Fatal("OOM row missing")
	}
	t.Log("\n" + res.Render())
}

func TestFig17UnifiedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Fig17()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.UnifiedMs > row.PureECMs*1.001 || row.UnifiedMs > row.PureDCMs*1.001 {
			t.Errorf("%s: unified (%.1f) not <= pure EC (%.1f) and pure DC (%.1f)",
				row.Scale, row.UnifiedMs, row.PureECMs, row.PureDCMs)
		}
		if !strings.Contains(row.Paradigms, "expe") || !strings.Contains(row.Paradigms, "data") {
			t.Errorf("%s: paradigms not mixed: %s", row.Scale, row.Paradigms)
		}
		t.Logf("%s: EC=%.1f DC=%.1f unified=%.1f speedup=%.2fx (paper %.2fx)",
			row.Scale, row.PureECMs, row.PureDCMs, row.UnifiedMs, row.SpeedupEC, row.PaperSpeedup)
	}
}

// The jitter extension: per-op compute noise must hurt the synchronous
// baseline strictly more than Janus (the §3.2 async claim), and the
// penalty must grow with the amplitude.
func TestStragglerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size simulation sweep; skipped under -short")
	}
	res, err := Straggler()
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	if !(last.TutelAddedMs > last.JanusAddedMs) {
		t.Fatalf("jitter cost: tutel +%.1fms vs janus +%.1fms — async advantage missing",
			last.TutelAddedMs, last.JanusAddedMs)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].TutelAddedMs < res.Rows[i-1].TutelAddedMs-0.5 {
			t.Fatal("tutel jitter cost not monotone")
		}
	}
	t.Log("\n" + res.Render())
}

// The fault sweep degrades exactly inside the kill window and recovers
// after it — never aborting a step.
func TestFaultSweepDegradationWindow(t *testing.T) {
	res, err := FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		inWindow := row.Step >= res.KillFrom && row.Step < res.KillTo
		if row.Degraded != inWindow {
			t.Errorf("step %d: degraded=%v, want %v", row.Step, row.Degraded, inWindow)
		}
		if inWindow {
			if row.StaleFetches == 0 {
				t.Errorf("step %d: no stale fetches during outage", row.Step)
			}
			if row.Retries == 0 {
				t.Errorf("step %d: no retries during outage", row.Step)
			}
		} else if row.StaleFetches != 0 || row.DroppedGrads != 0 {
			t.Errorf("step %d: degradation outside the kill window: %+v", row.Step, row)
		}
	}
	if res.DegradedSteps != res.ECStalledSteps {
		t.Errorf("degraded %d steps but EC would stall %d", res.DegradedSteps, res.ECStalledSteps)
	}
	if !strings.Contains(res.Render(), "STALLED") {
		t.Error("render missing the expert-centric stall verdict")
	}
	t.Log("\n" + res.Render())
}

// Every registered experiment runs end to end and renders non-empty.
func TestAllExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			out := res.Render()
			if len(out) < 40 {
				t.Fatalf("render too short:\n%s", out)
			}
		})
	}
}

func TestFailoverExperiment(t *testing.T) {
	res, err := Failover()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Detection lands within the dead-man budget of the kill.
	if res.FailoverStep == 0 || res.FailoverStep > res.KillFrom+res.DeadManSteps {
		t.Fatalf("failover at step %d, want within %d steps of the kill at %d",
			res.FailoverStep, res.DeadManSteps, res.KillFrom)
	}
	for _, row := range res.Rows {
		if !row.SurvivorsExact {
			t.Errorf("step %d: surviving outputs diverged from the reference", row.Step)
		}
		switch {
		case row.Step < res.KillFrom:
			if row.Degraded || row.AliveMachines != res.Machines {
				t.Errorf("healthy step %d degraded or lost a machine: %+v", row.Step, row)
			}
		case row.Step > res.FailoverStep:
			// Post-failover: survivors run at full fidelity again.
			if row.Degraded {
				t.Errorf("step %d still degraded after failover: %+v", row.Step, row)
			}
			if row.AliveMachines != res.Machines-1 {
				t.Errorf("step %d: alive=%d, want %d", row.Step, row.AliveMachines, res.Machines-1)
			}
		}
	}
	if res.RehomedExperts == 0 || res.Restores == 0 {
		t.Errorf("no rehoming/restores recorded: %+v", res)
	}
	if res.Checkpoints == 0 || res.CheckpointBytes == 0 {
		t.Errorf("no checkpoints recorded: %+v", res)
	}
	if res.PostFailoverOK == 0 {
		t.Error("no post-failover step completed at full fidelity")
	}
	out := res.Render()
	for _, frag := range []string{"STALLED", "re-homed", "restored from checkpoint"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	t.Log("\n" + out)
}

func TestPartitionExperiment(t *testing.T) {
	res, err := Partition()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != res.Steps {
		t.Fatalf("rows = %d, want %d", len(res.Rows), res.Steps)
	}
	// The headline differential: with fencing the zombie's writes leave
	// no trace — bitwise identical to the run where they never arrived —
	// and without fencing they provably corrupt the majority.
	if res.DivergedFenced != 0 {
		t.Errorf("fencing on: %d experts diverged from the single-owner reference", res.DivergedFenced)
	}
	if res.DivergedUnfenced == 0 {
		t.Error("fencing off: zombie pushes left no divergence, the control proves nothing")
	}
	if res.FenceRejections == 0 {
		t.Error("no stale-epoch requests fenced during the partition")
	}
	if res.QuorumStalls == 0 {
		t.Error("minority never froze on lost quorum")
	}
	if res.Failovers != 1 {
		t.Errorf("failovers = %d, want exactly 1 (quorum side only)", res.Failovers)
	}
	if res.HealedStep == 0 || res.HealedStep < res.PartTo {
		t.Errorf("heal at step %d, want at/after the window end %d", res.HealedStep, res.PartTo)
	}
	for _, row := range res.Rows {
		if row.Step >= res.HealedStep && (row.AliveMachines != res.Machines || row.Partitioned != 0 || row.Degraded) {
			t.Errorf("step %d not clean after heal: %+v", row.Step, row)
		}
	}
	out := res.Render()
	for _, frag := range []string{"diverged with fencing ON", "stale-epoch", "froze"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	t.Log("\n" + out)
}

func TestReplicationExperiment(t *testing.T) {
	res, err := Replication()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != res.Steps {
		t.Fatalf("rows = %d, want %d", len(res.Rows), res.Steps)
	}
	// The headline differential: the replicated kill is lossless, the
	// unreplicated control of the same schedule is not.
	if res.MaxStaleness != 0 {
		t.Errorf("replicated run leaked staleness %d", res.MaxStaleness)
	}
	if res.ControlMaxStaleness == 0 {
		t.Error("control run shows no staleness — the differential proves nothing")
	}
	if res.Promotions != 1 || res.Diverged != 0 {
		t.Errorf("promotions=%d diverged=%d, want 1/0", res.Promotions, res.Diverged)
	}
	if res.Streams == 0 {
		t.Error("no replica streams recorded")
	}
	// Streams keep flowing after the kill (surviving owners still sync)
	// and the promotion lands exactly at the kill step.
	kill := replicationSchedule.killAt
	if res.Rows[kill-1].Promos != 1 || res.Rows[kill-2].Promos != 0 {
		t.Errorf("promotion not recorded at the kill step %d: %+v", kill, res.Rows)
	}
	if res.Rows[res.Steps-1].Streams <= res.Rows[kill-1].Streams {
		t.Error("replica streams stopped after the failover")
	}
	out := res.Render()
	for _, frag := range []string{"synchronous replication", "machine 3 killed", "lossless gate", "max staleness 0"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	t.Log("\n" + out)
}

func TestChurnExperiment(t *testing.T) {
	res, err := Churn()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != res.Steps {
		t.Fatalf("rows = %d, want %d", len(res.Rows), res.Steps)
	}
	if res.Joins != 1 || res.Migrations != 3 || res.Rollbacks != 0 {
		t.Errorf("join/migration counters = %d/%d/%d, want 1/3/0", res.Joins, res.Migrations, res.Rollbacks)
	}
	if res.Diverged != 0 {
		t.Errorf("%d experts diverged bitwise from the static twin", res.Diverged)
	}
	// The joiner must be absorbed and carry experts by the end.
	last := res.Rows[len(res.Rows)-1]
	if last.Members != res.Machines+1 || last.Alive != res.Machines+1 {
		t.Errorf("final membership %d/%d alive, want %d both", last.Members, last.Alive, res.Machines+1)
	}
	hosted := 0
	for _, o := range res.Owners {
		if o == res.Machines { // the joiner's index
			hosted++
		}
	}
	if hosted != 2 {
		t.Errorf("joiner hosts %d experts, want 2", hosted)
	}
	out := res.Render()
	for _, frag := range []string{"elastic membership", "join machine 3", "bitwise identical"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	t.Log("\n" + out)
}

func TestServingExperiment(t *testing.T) {
	res, err := Serving()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(servingSweep.mults) {
		t.Fatalf("sweep rows = %d, want %d", len(res.Rows), len(servingSweep.mults))
	}
	if res.DiffChecked == 0 {
		t.Error("differential gate checked nothing")
	}
	// The knee behaviour: past saturation the plane sheds instead of
	// collapsing, so the heaviest point both sheds a lot and keeps
	// goodput near peak (the 80% gate already ran in-run).
	last := res.Rows[len(res.Rows)-1]
	if last.Shed == 0 {
		t.Errorf("4x offered load shed nothing: %+v", last)
	}
	for _, row := range res.Rows {
		if row.P99Ms > res.DeadlineMs {
			t.Errorf("%gx p99 %.2fms over deadline", row.Mult, row.P99Ms)
		}
	}
	if res.RolledBack != 1 || res.PostFenceCanary != 0 {
		t.Errorf("canary drill: rollbacks=%d postFence=%d, want 1/0", res.RolledBack, res.PostFenceCanary)
	}
	if res.CanaryServed == 0 {
		t.Error("canary answered nothing before the rollback")
	}
	out := res.Render()
	for _, frag := range []string{"calibrated knee", "goodput/s", "auto-rollback", "bitwise"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q", frag)
		}
	}
	t.Log("\n" + out)
}
