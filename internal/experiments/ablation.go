package experiments

import (
	"fmt"
	"strings"

	"janus/internal/config"
	"janus/internal/trace"
)

// --- Figure 12: ablation of the three optimizations -------------------------

// Fig12Row is one model's bar group in Figure 12: speedups over the
// expert-centric paradigm inside Janus.
type Fig12Row struct {
	Model            string
	BaselineMs       float64 // expert-centric inside Janus
	DataCentric      float64 // speedup with fine-grained scheduling only
	PlusTopo         float64 // + topology-aware priority
	PlusPrefetch     float64 // + prefetch (all optimizations)
	PaperDataCentric float64
	PaperAll         float64
}

// Fig12Result reproduces the ablation study.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 measures the three cumulative configurations against the
// expert-centric baseline, per §7.2.1, on the 32-GPU scenarios.
func Fig12() (*Fig12Result, error) {
	paper := map[string][2]float64{
		"MoE-BERT":          {1.26, 1.31},
		"MoE-GPT":           {1.58, 1.63},
		"MoE-TransformerXL": {1.79, 1.81},
	}
	res := &Fig12Result{}
	for _, model := range []config.Model{
		config.MoEBERT(32), config.MoEGPT(32), config.MoETransformerXL(32),
	} {
		spec := table1Spec(32)
		assign := skewedAssignment(model, 32)
		ecPar := config.ExpertCentric
		base, err := coreRun(coreConfig{model: model, spec: spec, force: &ecPar,
			assignment: assign, skipMem: true})
		if err != nil {
			return nil, err
		}
		dc, err := coreRun(coreConfig{model: model, spec: spec,
			assignment: assign, skipMem: true})
		if err != nil {
			return nil, err
		}
		topo, err := coreRun(coreConfig{model: model, spec: spec, topo: true,
			assignment: assign, skipMem: true})
		if err != nil {
			return nil, err
		}
		full, err := coreRun(coreConfig{model: model, spec: spec, topo: true, prefetch: true,
			assignment: assign, skipMem: true})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig12Row{
			Model:            model.Name,
			BaselineMs:       base.IterationTime * 1e3,
			DataCentric:      base.IterationTime / dc.IterationTime,
			PlusTopo:         base.IterationTime / topo.IterationTime,
			PlusPrefetch:     base.IterationTime / full.IterationTime,
			PaperDataCentric: paper[model.Name][0],
			PaperAll:         paper[model.Name][1],
		})
	}
	return res, nil
}

func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12 — speedup over the expert-centric paradigm in Janus\n")
	fmt.Fprintf(&b, "%-20s %10s  %8s %8s %8s  %12s %9s\n",
		"model", "base(ms)", "D.C.", "+topo", "+pref", "paper D.C.", "paper all")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %10.1f  %7.2fx %7.2fx %7.2fx  %11.2fx %8.2fx\n",
			row.Model, row.BaselineMs, row.DataCentric, row.PlusTopo, row.PlusPrefetch,
			row.PaperDataCentric, row.PaperAll)
	}
	return b.String()
}

// --- Figure 13: computation/communication overlap ----------------------------

// Fig13Result reproduces the MoE-GPT forward-phase trace: block
// completion timestamps, expert arrival timestamps, the overlap the
// prefetch wins, and the forward speedup against the no-prefetch run.
type Fig13Result struct {
	BlockDoneMs    []float64 // per block, worker 0
	ExpertArriveMs []float64 // fetched experts of the MoE block, worker 0
	ForwardMs      float64   // with prefetch
	NoPrefetchMs   float64   // forward without prefetch
	OverlapMs      float64   // fetch time hidden under dense compute
	ForwardSpeedup float64
	ExpertsEarly   int // arrivals before the MoE block's gate
	Timeline       *trace.Timeline
}

// Fig13 traces MoE-GPT (32 experts, 32 GPUs) with prefetch on and
// topology-aware off, exactly the §7.2.2 configuration. The credit
// buffer is sized at 12 to match the 12 pre-arrived experts the paper's
// trace shows.
func Fig13() (*Fig13Result, error) {
	model := config.MoEGPT(32)
	spec := table1Spec(32)
	assign := skewedAssignment(model, 32)

	withPrefetch, err := coreRun(coreConfig{model: model, spec: spec,
		prefetch: true, credit: 12, trace: true, assignment: assign, skipMem: true})
	if err != nil {
		return nil, err
	}
	without, err := coreRun(coreConfig{model: model, spec: spec,
		credit: 12, assignment: assign, skipMem: true})
	if err != nil {
		return nil, err
	}

	res := &Fig13Result{
		ForwardMs:      withPrefetch.ForwardTime * 1e3,
		NoPrefetchMs:   without.ForwardTime * 1e3,
		OverlapMs:      (without.ForwardTime - withPrefetch.ForwardTime) * 1e3,
		ForwardSpeedup: without.ForwardTime / withPrefetch.ForwardTime,
		Timeline:       withPrefetch.Timeline,
	}
	for b := 0; b < len(model.Blocks); b++ {
		if at, ok := withPrefetch.Timeline.MarkAt(fmt.Sprintf("fwd.block%d.done", b)); ok {
			res.BlockDoneMs = append(res.BlockDoneMs, at*1e3)
		}
	}
	gateDone := 0.0
	if len(res.BlockDoneMs) > 10 {
		gateDone = res.BlockDoneMs[9] // block 9 completion ~ block 10 gate time
	}
	for _, m := range withPrefetch.Timeline.MarksNamed("expert.block10.ep") {
		res.ExpertArriveMs = append(res.ExpertArriveMs, m.At*1e3)
		if m.At*1e3 < gateDone {
			res.ExpertsEarly++
		}
	}
	return res, nil
}

func (r *Fig13Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 13 — MoE-GPT forward trace with prefetch (worker 0)\n")
	b.WriteString("block completions (ms): ")
	for i, t := range r.BlockDoneMs {
		fmt.Fprintf(&b, "b%d=%.1f ", i, t)
	}
	b.WriteString("\nexpert arrivals (ms):   ")
	for i, t := range r.ExpertArriveMs {
		fmt.Fprintf(&b, "e%d=%.1f ", i, t)
	}
	fmt.Fprintf(&b, "\nexperts arrived before the MoE gate: %d\n", r.ExpertsEarly)
	fmt.Fprintf(&b, "forward: %.1f ms with prefetch, %.1f ms without; overlap %.1f ms; speedup %.2fx\n",
		r.ForwardMs, r.NoPrefetchMs, r.OverlapMs, r.ForwardSpeedup)
	b.WriteString("(paper: forward 210.4 ms, overlap ~74.9 ms, forward speedup 1.36x)\n")
	return b.String()
}
