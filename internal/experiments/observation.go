package experiments

import (
	"fmt"
	"strings"

	"janus/internal/collective"
	"janus/internal/config"
	"janus/internal/costmodel"
	"janus/internal/expertcentric"
	"janus/internal/metrics"
	"janus/internal/topology"
)

// --- Table 1 ---------------------------------------------------------------

// Table1Row is one column of the paper's Table 1.
type Table1Row struct {
	Model      string
	NumExperts int
	NumGPUs    int
	R          float64
	// Per-machine inter-node traffic across one iteration (fwd+bwd, all
	// MoE blocks), GiB.
	ECAnalyticGiB float64
	DCAnalyticGiB float64
	// The same quantities measured from simulated runs (MoE traffic
	// only; the dense AllReduce share is subtracted analytically).
	ECMeasuredGiB float64
	DCMeasuredGiB float64
	PaperECGiB    float64
	PaperDCGiB    float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 computes analytic and measured per-machine traffic for the six
// Table-1 scenarios.
func Table1() (*Table1Result, error) {
	paper := map[string][2]float64{ // model/num -> {EC, DC} GiB from Table 1
		"MoE-BERT/16":          {6, 0.56},
		"MoE-BERT/32":          {9, 1.69},
		"MoE-GPT/16":           {1.5, 0.14},
		"MoE-GPT/32":           {2.25, 0.42},
		"MoE-TransformerXL/16": {6, 0.19},
		"MoE-TransformerXL/32": {9, 0.56},
	}
	res := &Table1Result{}
	for _, sc := range config.Table1Scenarios() {
		model := sc.Model
		spec := table1Spec(sc.NumGPUs)
		n := spec.NumMachines
		m := spec.GPUsPerNode
		e := model.Blocks[model.MoEBlockIndices()[0]].NumExperts / sc.NumGPUs
		blocks := float64(model.NumMoEBlocks())

		ecA := 2 * costmodel.CommECForwardPerMachine(model.B, model.S, model.K, model.H, m, n) * blocks
		dcA := 2 * costmodel.CommDCForwardPerMachine(model.H, e, m, n) * blocks

		ecMeasured, dcMeasured, err := measuredMoETraffic(model, spec)
		if err != nil {
			return nil, err
		}

		key := fmt.Sprintf("%s/%d", model.Name, sc.NumGPUs)
		row := Table1Row{
			Model: model.Name, NumExperts: sc.NumGPUs, NumGPUs: sc.NumGPUs,
			R:             model.GainR(model.MoEBlockIndices()[0], n, sc.NumGPUs),
			ECAnalyticGiB: metrics.GiB(ecA), DCAnalyticGiB: metrics.GiB(dcA),
			ECMeasuredGiB: metrics.GiB(ecMeasured), DCMeasuredGiB: metrics.GiB(dcMeasured),
			PaperECGiB: paper[key][0], PaperDCGiB: paper[key][1],
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measuredMoETraffic runs both engines with balanced gates and returns
// per-machine MoE inter-node bytes (AllReduce subtracted analytically).
func measuredMoETraffic(model config.Model, spec topology.Spec) (ec, dc float64, err error) {
	arCross := allReduceCrossBytes(model, spec)
	base, err := expertcentric.Run(expertcentric.Config{Model: model, Spec: spec, SkipMemoryCheck: true})
	if err != nil {
		return 0, 0, err
	}
	ec = (base.InterNodeEgressBytes - arCross) / float64(spec.NumMachines)

	janus, err := coreRun(coreConfig{model: model, spec: spec, topo: true, prefetch: true, skipMem: true})
	if err != nil {
		return 0, 0, err
	}
	dc = (janus.InterNodeEgressBytes - arCross) / float64(spec.NumMachines)
	return ec, dc, nil
}

func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — per-machine inter-node traffic per iteration (GiB)\n")
	fmt.Fprintf(&b, "%-24s %5s %6s  %9s %9s  %9s %9s  %9s %9s\n",
		"model/gpus", "R", "", "EC paper", "DC paper", "EC model", "DC model", "EC meas.", "DC meas.")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %5.2f %6s  %9.2f %9.2f  %9.2f %9.2f  %9.2f %9.2f\n",
			fmt.Sprintf("%s/%d", row.Model, row.NumGPUs), row.R, "",
			row.PaperECGiB, row.PaperDCGiB,
			row.ECAnalyticGiB, row.DCAnalyticGiB,
			row.ECMeasuredGiB, row.DCMeasuredGiB)
	}
	return b.String()
}

// --- Figure 3 ---------------------------------------------------------------

// Fig3Row is one bar pair of Figure 3.
type Fig3Row struct {
	Model    string
	NumGPUs  int
	IterMs   float64
	A2AMs    float64
	A2AShare float64
}

// Fig3Result reproduces Figure 3.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 profiles the six Table-1 configs under the expert-centric
// paradigm with mildly skewed gates and reports the A2A share.
func Fig3() (*Fig3Result, error) {
	res := &Fig3Result{}
	for _, sc := range config.Table1Scenarios() {
		model := sc.Model
		spec := table1Spec(sc.NumGPUs)
		rep, err := expertcentric.Run(expertcentric.Config{
			Model: model, Spec: spec, SkipMemoryCheck: true,
			Assignment: skewedAssignment(model, sc.NumGPUs),
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig3Row{
			Model: model.Name, NumGPUs: sc.NumGPUs,
			IterMs: rep.IterationTime * 1e3, A2AMs: rep.CommBlockedTime * 1e3,
			A2AShare: rep.CommShare(),
		})
	}
	return res, nil
}

func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3 — iteration latency and All-to-All share (expert-centric)\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %8s\n", "model/gpus", "iter(ms)", "a2a(ms)", "share")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %10.1f %10.1f %7.1f%%\n",
			fmt.Sprintf("%s/%d", row.Model, row.NumGPUs), row.IterMs, row.A2AMs, row.A2AShare*100)
	}
	b.WriteString("(paper band: 38.5% - 68.4%)\n")
	return b.String()
}

// --- §3.1 goodput -------------------------------------------------------------

// GoodputResult reproduces the §3.1 stress test.
type GoodputResult struct {
	IntraGbps      float64 // single machine, NVLink A2A
	InterGbps      float64 // four machines, per-machine cross-node goodput
	Ratio          float64
	PaperIntraGbps float64
	PaperInterGbps float64
}

// Goodput stress-tests the All-to-All primitive like §3.1: first inside
// one 8-GPU machine, then across four machines, reporting algorithm
// goodput (bytes moved / wall time).
func Goodput() (*GoodputResult, error) {
	const perPair = 64 << 20 // 64 MiB per (src,dst) pair

	// Intra-machine.
	c1, err := topology.New(topology.DefaultSpec(1))
	if err != nil {
		return nil, err
	}
	sizes := uniform(c1.NumGPUs(), perPair)
	collective.AllToAll(c1, c1.GPUs(), sizes, "stress.intra", nil)
	c1.Engine.Run()
	intraBytes := float64(c1.NumGPUs()*(c1.NumGPUs()-1)) * perPair
	intra := metrics.Gbps(intraBytes, c1.Engine.Now())

	// Inter-machine: only cross-node bytes count, per machine.
	c4, err := topology.New(topology.DefaultSpec(4))
	if err != nil {
		return nil, err
	}
	sizes4 := uniform(c4.NumGPUs(), perPair)
	collective.AllToAll(c4, c4.GPUs(), sizes4, "stress.inter", nil)
	c4.Engine.Run()
	crossPerMachine := c4.InterNodeEgressBytes() / float64(len(c4.Machines))
	inter := metrics.Gbps(crossPerMachine, c4.Engine.Now())

	return &GoodputResult{
		IntraGbps: intra, InterGbps: inter, Ratio: intra / inter,
		PaperIntraGbps: 1846.58, PaperInterGbps: 101.9,
	}, nil
}

func uniform(n int, bytes float64) [][]float64 {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			if i != j {
				s[i][j] = bytes
			}
		}
	}
	return s
}

func (r *GoodputResult) Render() string {
	return fmt.Sprintf(`§3.1 — All-to-All goodput stress test
                     measured      paper
intra-machine   %9.1f Gbps  %8.1f Gbps
inter-machine   %9.1f Gbps  %8.1f Gbps   (per machine)
intra/inter ratio   %6.1fx  %8.1fx
`, r.IntraGbps, r.PaperIntraGbps, r.InterGbps, r.PaperInterGbps,
		r.Ratio, r.PaperIntraGbps/r.PaperInterGbps)
}
