package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"janus/internal/faultinject"
	"janus/internal/gate"
	"janus/internal/livecluster"
	"janus/internal/metrics"
	"janus/internal/serving"
)

// ServingRow is one offered-load point of the overload sweep.
type ServingRow struct {
	Mult      float64 // offered load as a multiple of the calibrated knee
	OfferedPS float64 // offered requests/sec
	Submitted int
	Answered  int64
	Shed      int64
	Expired   int64
	Degraded  int64 // answers below full quality
	GoodputPS float64
	P50Ms     float64
	P99Ms     float64
}

// ServingResult is the overload-robustness drill on the live cluster:
// a seeded open-loop traffic generator (Zipf popularity, diurnal ramp,
// flash-crowd burst) drives the serving front-end across offered loads
// from half the calibrated knee to 4x past it. The headline is the
// goodput curve: with admission control and the degradation ladder,
// answered-per-second holds near capacity as offered load quadruples,
// instead of collapsing. A canary-rollback phase then rolls out a
// latency-regressed checkpoint and pins the auto-rollback fence.
type ServingResult struct {
	Machines   int
	NumExperts int
	TopK       int
	DeadlineMs float64
	KneePS     float64 // calibrated closed-loop capacity, requests/sec
	Rows       []ServingRow

	// Differential gate: low-load answers vs the in-process reference.
	DiffChecked int

	// Canary-rollback drill.
	CanaryServed    int64 // candidate answers before the fence
	RolledBack      int64 // must be exactly 1
	PostFenceCanary int64 // candidate answers after the fence (must be 0)
}

// servingSweep is the drill's fixed seeded shape.
var servingSweep = struct {
	mults      []float64
	ticks      int
	tick       time.Duration
	burstFrom  int     // burst window inside the top point, in ticks
	burstTo    int
	burstMult  float64
	diurnalAmp float64
}{
	mults:      []float64{0.5, 1, 2, 4},
	ticks:      60,
	tick:       5 * time.Millisecond,
	burstFrom:  20,
	burstTo:    40,
	burstMult:  1.5,
	diurnalAmp: 0.25,
}

func servingClusterCfg(inj *faultinject.Injector) livecluster.Config {
	return livecluster.Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 24, Seed: 42, Credits: 8,
		Injector:         inj,
		PullTimeout:      300 * time.Millisecond,
		PullRetries:      2,
		RetryBackoff:     2 * time.Millisecond,
		FailoverEnabled:  true,
		HeartbeatTimeout: 200 * time.Millisecond,
		Replicas:         1,
	}
}

func servingFrontendCfg(b serving.Backend) serving.Config {
	return serving.Config{
		Backend: b, Seed: 77, TopK: 2, Zipf: 1.1,
		RowsPerRequest: 2, QueueCap: 64,
		Deadline: 150 * time.Millisecond,
		Workers:  2, MaxBatch: 8,
		MaxStalenessSteps: 5,
		Top1Pressure:      32,
	}
}

// Serving runs the overload drill and the canary-rollback drill with
// every invariant gated in-run.
func Serving() (*ServingResult, error) {
	inj := faultinject.New(7)
	cl, err := livecluster.Start(servingClusterCfg(inj))
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	cl.SyncReplicas()
	backend := cl.ServeBackend()
	defer backend.Close()

	fcfg := servingFrontendCfg(backend)
	front, err := serving.New(fcfg)
	if err != nil {
		return nil, err
	}
	defer front.Close()

	res := &ServingResult{
		Machines:   3,
		NumExperts: 9,
		TopK:       fcfg.TopK,
		DeadlineMs: float64(fcfg.Deadline) / float64(time.Millisecond),
	}

	// Differential gate first, at zero load: front-end answers must be
	// bitwise the in-process reference computed from the exported
	// weight plane.
	plane, err := livecluster.DecodeExpertPlane(cl.ExportSnapshot(0, 1))
	if err != nil {
		return nil, err
	}
	sampler := gate.NewSampler(9, fcfg.TopK, fcfg.Zipf, fcfg.Seed)
	for id := uint64(1); id <= 16; id++ {
		got := front.Submit(context.Background(), id)
		if got.Err != nil {
			return nil, fmt.Errorf("serving: low-load request %d: %w", id, got.Err)
		}
		want, err := serving.Reference(plane, sampler, fcfg.Seed, id, fcfg.RowsPerRequest, 16, false)
		if err != nil {
			return nil, err
		}
		for j := range want {
			if got.Out[j] != want[j] {
				return nil, fmt.Errorf("serving: request %d differs from reference at %d (%v vs %v)",
					id, j, got.Out[j], want[j])
			}
		}
		res.DiffChecked++
	}

	// Knee calibration: closed-loop sequential throughput.
	kneeStart := time.Now()
	const kneeReqs = 200
	for id := uint64(1000); id < 1000+kneeReqs; id++ {
		if r := front.Submit(context.Background(), id); r.Err != nil {
			return nil, fmt.Errorf("serving: knee calibration: %w", r.Err)
		}
	}
	res.KneePS = kneeReqs / time.Since(kneeStart).Seconds()

	// Offered-load sweep. Each point is open-loop: arrivals keep coming
	// at the offered rate whatever the front-end does with them.
	nextID := uint64(10000)
	for pi, mult := range servingSweep.mults {
		tr := serving.Traffic{
			BaseRate:      mult * res.KneePS * servingSweep.tick.Seconds(),
			DiurnalAmp:    servingSweep.diurnalAmp,
			DiurnalPeriod: servingSweep.ticks,
			Injector:      inj,
			Label:         "traffic",
			Seed:          int64(300 + pi),
		}
		if mult == servingSweep.mults[len(servingSweep.mults)-1] {
			// Flash crowd rides on top of the heaviest point.
			inj.Burst("traffic", servingSweep.burstFrom, servingSweep.burstTo, servingSweep.burstMult)
		}
		before := front.Stats()
		var (
			mu        sync.Mutex
			latencies []float64
			wg        sync.WaitGroup
			submitted int
		)
		sweepStart := time.Now()
		for tick := 0; tick < servingSweep.ticks; tick++ {
			inj.SetStep(tick)
			n := tr.Arrivals(tick)
			for i := 0; i < n; i++ {
				id := nextID
				nextID++
				submitted++
				wg.Add(1)
				go func(id uint64) {
					defer wg.Done()
					r := front.Submit(context.Background(), id)
					if r.Err == nil {
						mu.Lock()
						latencies = append(latencies, float64(r.Latency)/float64(time.Millisecond))
						mu.Unlock()
					}
				}(id)
			}
			time.Sleep(servingSweep.tick)
		}
		wg.Wait()
		elapsed := time.Since(sweepStart).Seconds()
		inj.SetStep(0) // close any burst window before the next point
		d := front.Stats().Sub(before)

		lat := metrics.Summarize(latencies)
		row := ServingRow{
			Mult:      mult,
			OfferedPS: float64(submitted) / elapsed,
			Submitted: submitted,
			Answered:  d.AnsweredTotal(),
			Shed:      d.Shed,
			Expired:   d.DeadlineExpired,
			Degraded:  d.DegradedTotal(),
			GoodputPS: float64(d.AnsweredTotal()) / elapsed,
			P50Ms:     lat.P50,
			P99Ms:     lat.P99,
		}
		res.Rows = append(res.Rows, row)

		// In-run invariant gates.
		if got := d.AnsweredTotal() + d.DeadlineExpired + d.Shed; got != int64(submitted) {
			return nil, fmt.Errorf("serving: %gx point lost requests: %d terminals of %d submitted (%v)",
				mult, got, submitted, d)
		}
		if d.Shed != d.Answered[metrics.RungShed] {
			return nil, fmt.Errorf("serving: %gx point: shed %d but shed-rung terminals %d — a shed request answered",
				mult, d.Shed, d.Answered[metrics.RungShed])
		}
		if int64(len(latencies)) != d.AnsweredTotal() {
			return nil, fmt.Errorf("serving: %gx point: %d answers but %d latency samples",
				mult, d.AnsweredTotal(), len(latencies))
		}
		if lat.P99 > res.DeadlineMs {
			return nil, fmt.Errorf("serving: %gx point: p99 %.2fms over the %.0fms deadline",
				mult, lat.P99, res.DeadlineMs)
		}
	}

	// Goodput must not collapse past the knee: the heaviest point keeps
	// at least 80%% of the best point's answered-per-second.
	var peak float64
	for _, row := range res.Rows {
		if row.GoodputPS > peak {
			peak = row.GoodputPS
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if last.GoodputPS < 0.8*peak {
		return nil, fmt.Errorf("serving: goodput collapsed past the knee: %.0f/s at %gx vs %.0f/s peak",
			last.GoodputPS, last.Mult, peak)
	}

	// Canary-rollback drill: roll out a latency-regressed candidate
	// (version 2 of the same weights plus an injected delay), let the
	// SLO monitor trip, and pin the fence.
	canaryPlane, err := livecluster.DecodeExpertPlane(cl.ExportSnapshot(0, 2))
	if err != nil {
		return nil, err
	}
	err = front.StartCanary(serving.Canary{
		Version: 2, Plane: canaryPlane, Frac: 0.5,
		SLO: 2 * time.Millisecond, Strikes: 3,
		Delay: 20 * time.Millisecond, // the injected regression
	})
	if err != nil {
		return nil, err
	}
	preRoll := front.Stats()
	for i := 0; i < 200; i++ {
		front.Submit(context.Background(), nextID)
		nextID++
		if front.Stats().RolledBack > preRoll.RolledBack {
			break
		}
	}
	afterRoll := front.Stats()
	res.RolledBack = afterRoll.RolledBack - preRoll.RolledBack
	res.CanaryServed = afterRoll.CanaryServed - preRoll.CanaryServed
	if res.RolledBack != 1 {
		return nil, fmt.Errorf("serving: regressed canary not rolled back (rollbacks=%d)", res.RolledBack)
	}

	// Post-fence: more traffic; the rolled-back candidate must answer
	// exactly nothing.
	fenced := front.Stats()
	for i := 0; i < 60; i++ {
		r := front.Submit(context.Background(), nextID)
		nextID++
		if r.Canary {
			res.PostFenceCanary++
		}
	}
	res.PostFenceCanary += front.Stats().CanaryServed - fenced.CanaryServed
	if res.PostFenceCanary != 0 {
		return nil, fmt.Errorf("serving: %d answers from the rolled-back canary", res.PostFenceCanary)
	}
	return res, nil
}

// Render formats the sweep and the canary drill.
func (r *ServingResult) Render() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Overload-robust serving plane: %d machines, %d experts, top-%d, %.0fms deadline\n",
		r.Machines, r.NumExperts, r.TopK, r.DeadlineMs)
	fmt.Fprintf(&b, "calibrated knee: %.0f req/s; differential vs reference: %d/%d bitwise\n\n",
		r.KneePS, r.DiffChecked, r.DiffChecked)
	fmt.Fprintf(&b, "%6s %10s %9s %9s %7s %8s %9s %10s %8s %8s\n",
		"load", "offered/s", "submitted", "answered", "shed", "expired", "degraded", "goodput/s", "p50 ms", "p99 ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%5.1fx %10.0f %9d %9d %7d %8d %9d %10.0f %8.2f %8.2f\n",
			row.Mult, row.OfferedPS, row.Submitted, row.Answered, row.Shed,
			row.Expired, row.Degraded, row.GoodputPS, row.P50Ms, row.P99Ms)
	}
	fmt.Fprintf(&b, "\ncanary rollout: %d candidate answers before auto-rollback (rollbacks=%d), %d after the fence\n",
		r.CanaryServed, r.RolledBack, r.PostFenceCanary)
	return b.String()
}
