package experiments

import (
	"fmt"
	"strings"

	"janus/internal/config"
	"janus/internal/expertcentric"
	"janus/internal/topology"
)

// --- Figure 14: end-to-end Janus vs Tutel -----------------------------------

// Fig14Row is one model's bar pair in Figure 14.
type Fig14Row struct {
	Model        string
	R            float64
	TutelMs      float64
	JanusMs      float64
	Speedup      float64
	PaperSpeedup float64
}

// Fig14Result reproduces the end-to-end comparison.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 compares Janus (all optimizations, nominal policy) against the
// Tutel-like expert-centric baseline on the three 32-GPU Table-1
// models with profiled (mildly skewed) gates.
func Fig14() (*Fig14Result, error) {
	paper := map[string]float64{
		"MoE-BERT": 1.28, "MoE-GPT": 1.48, "MoE-TransformerXL": 1.52,
	}
	res := &Fig14Result{}
	for _, model := range []config.Model{
		config.MoEBERT(32), config.MoEGPT(32), config.MoETransformerXL(32),
	} {
		spec := table1Spec(32)
		assign := skewedAssignment(model, 32)
		tutel, err := expertcentric.Run(expertcentric.Config{
			Model: model, Spec: spec, Assignment: assign, SkipMemoryCheck: true,
		})
		if err != nil {
			return nil, err
		}
		janus, err := coreRun(coreConfig{model: model, spec: spec,
			topo: true, prefetch: true, assignment: assign, skipMem: true})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig14Row{
			Model:        model.Name,
			R:            model.GainR(model.MoEBlockIndices()[0], spec.NumMachines, 32),
			TutelMs:      tutel.IterationTime * 1e3,
			JanusMs:      janus.IterationTime * 1e3,
			Speedup:      tutel.IterationTime / janus.IterationTime,
			PaperSpeedup: paper[model.Name],
		})
	}
	return res, nil
}

func (r *Fig14Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 14 — end-to-end iteration time, Janus vs Tutel (32 GPUs)\n")
	fmt.Fprintf(&b, "%-20s %6s %11s %11s %9s %9s\n", "model", "R", "tutel(ms)", "janus(ms)", "speedup", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-20s %6.2f %11.1f %11.1f %8.2fx %8.2fx\n",
			row.Model, row.R, row.TutelMs, row.JanusMs, row.Speedup, row.PaperSpeedup)
	}
	return b.String()
}

// --- Figures 15/16: sensitivity ----------------------------------------------

// SensitivityRow is one (model, value) cell of Figures 15/16.
type SensitivityRow struct {
	Model    string
	Param    string // "B" or "S"
	Value    int
	TutelMs  float64
	JanusMs  float64
	Speedup  float64
	TutelOOM bool
}

// SensitivityResult holds a sweep.
type SensitivityResult struct {
	Title string
	Note  string
	Rows  []SensitivityRow
}

// fig15Configs returns the §7.4 batch-size sweep configs: fixed (S, k)
// per model, 32 experts on 32 GPUs.
func fig15Configs() []config.Model {
	bert := config.MoEBERT(32)
	bert.S, bert.K = 256, 4
	gpt := config.MoEGPT(32)
	gpt.S, gpt.K = 128, 8
	xl := config.MoETransformerXL(32)
	xl.S, xl.K = 256, 2
	return []config.Model{bert, gpt, xl}
}

// Fig15 sweeps the per-worker batch size over {64, 128}.
func Fig15() (*SensitivityResult, error) {
	res := &SensitivityResult{
		Title: "Figure 15 — batch-size sensitivity (32 GPUs)",
		Note:  "paper shape: iteration time grows with B in both systems; Tutel grows faster, so the speedup grows with B",
	}
	for _, base := range fig15Configs() {
		for _, batch := range []int{64, 128} {
			model := base
			model.B = batch
			row, err := sensitivityPoint(model, "B", batch)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// fig16Configs returns the §7.4 sequence-length sweep configs: fixed
// (B, k) per model.
func fig16Configs() []config.Model {
	bert := config.MoEBERT(32)
	bert.B, bert.K = 256, 4
	gpt := config.MoEGPT(32)
	gpt.B, gpt.K = 32, 8
	xl := config.MoETransformerXL(32)
	xl.B, xl.K = 64, 2
	return []config.Model{bert, gpt, xl}
}

// Fig16 sweeps the sequence length over {256, 512}, with the memory
// check enabled — MoE-BERT at S=512 must OOM under Tutel but not Janus.
func Fig16() (*SensitivityResult, error) {
	res := &SensitivityResult{
		Title: "Figure 16 — sequence-length sensitivity (32 GPUs)",
		Note:  "paper shape: Tutel OOMs on MoE-BERT at S=512; Janus does not (experts, not tokens, cross the wire)",
	}
	for _, base := range fig16Configs() {
		for _, seq := range []int{256, 512} {
			model := base
			model.S = seq
			row, err := sensitivityPoint(model, "S", seq)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func sensitivityPoint(model config.Model, param string, value int) (SensitivityRow, error) {
	spec := table1Spec(32)
	assign := skewedAssignment(model, 32)
	row := SensitivityRow{Model: model.Name, Param: param, Value: value}
	tutel, err := expertcentric.Run(expertcentric.Config{
		Model: model, Spec: spec, Assignment: assign,
	})
	if err != nil {
		return row, err
	}
	if tutel.OOM {
		row.TutelOOM = true
	} else {
		row.TutelMs = tutel.IterationTime * 1e3
	}
	janus, err := coreRun(coreConfig{model: model, spec: spec,
		topo: true, prefetch: true, assignment: assign})
	if err != nil {
		return row, err
	}
	if janus.OOM {
		return row, fmt.Errorf("experiments: Janus unexpectedly OOM on %s %s=%d", model.Name, param, value)
	}
	row.JanusMs = janus.IterationTime * 1e3
	if !row.TutelOOM {
		row.Speedup = row.TutelMs / row.JanusMs
	}
	return row, nil
}

func (r *SensitivityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-20s %6s %11s %11s %9s\n", "model", "param", "tutel(ms)", "janus(ms)", "speedup")
	for _, row := range r.Rows {
		tutel := fmt.Sprintf("%.1f", row.TutelMs)
		speedup := fmt.Sprintf("%.2fx", row.Speedup)
		if row.TutelOOM {
			tutel, speedup = "OOM", "-"
		}
		fmt.Fprintf(&b, "%-20s %3s=%-3d %11s %11.1f %9s\n",
			row.Model, row.Param, row.Value, tutel, row.JanusMs, speedup)
	}
	fmt.Fprintf(&b, "(%s)\n", r.Note)
	return b.String()
}

// --- Figure 17: unified paradigm on PR-MoE -----------------------------------

// Fig17Row is one cluster scale of Figure 17.
type Fig17Row struct {
	Scale        string
	PureECMs     float64
	PureDCMs     float64
	UnifiedMs    float64
	SpeedupEC    float64 // unified over pure expert-centric
	PaperSpeedup float64
	Paradigms    string
}

// Fig17Result reproduces the PR-MoE unified-paradigm experiment.
type Fig17Result struct {
	Rows []Fig17Row
}

// Fig17 runs PR-MoE-Transformer-XL at both scales under pure
// expert-centric, pure data-centric, and the unified conservative
// policy (§7.5). The 16-GPU run uses 4 machines of 4 GPUs, matching
// the paper's R=4 (shallow) and R=1 (deep) quoted gains.
func Fig17() (*Fig17Result, error) {
	cases := []struct {
		scale       string
		model       config.Model
		gpusPerNode int
		paper       float64
	}{
		{"16 GPUs", config.PRMoETransformerXL(16, 64, 32), 4, 2.06},
		{"32 GPUs", config.PRMoETransformerXL(32, 128, 64), 8, 1.44},
	}
	res := &Fig17Result{}
	for _, tc := range cases {
		spec := topology.DefaultSpec(4)
		spec.GPUsPerNode = tc.gpusPerNode
		assign := skewedAssignment(tc.model, spec.TotalGPUs())
		run := func(force *config.Paradigm) (float64, string, error) {
			rep, err := coreRun(coreConfig{model: tc.model, spec: spec,
				topo: true, prefetch: true, skipMem: true,
				policy: config.ConservativePolicy(), force: force, assignment: assign})
			if err != nil {
				return 0, "", err
			}
			var ps []string
			for _, bi := range tc.model.MoEBlockIndices() {
				ps = append(ps, rep.Paradigms[bi].String()[:4])
			}
			return rep.IterationTime, strings.Join(ps, ","), nil
		}
		ec, dc := config.ExpertCentric, config.DataCentric
		tEC, _, err := run(&ec)
		if err != nil {
			return nil, err
		}
		tDC, _, err := run(&dc)
		if err != nil {
			return nil, err
		}
		tU, paradigms, err := run(nil)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig17Row{
			Scale: tc.scale, PureECMs: tEC * 1e3, PureDCMs: tDC * 1e3, UnifiedMs: tU * 1e3,
			SpeedupEC: tEC / tU, PaperSpeedup: tc.paper, Paradigms: paradigms,
		})
	}
	return res, nil
}

func (r *Fig17Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 17 — PR-MoE-Transformer-XL: pure paradigms vs unified Janus\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %12s %9s %7s  %s\n",
		"scale", "pure EC(ms)", "pure DC(ms)", "unified(ms)", "speedup", "paper", "MoE-block paradigms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %12.1f %8.2fx %6.2fx  %s\n",
			row.Scale, row.PureECMs, row.PureDCMs, row.UnifiedMs,
			row.SpeedupEC, row.PaperSpeedup, row.Paradigms)
	}
	return b.String()
}
