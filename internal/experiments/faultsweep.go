package experiments

import (
	"fmt"
	"strings"
	"time"

	"janus/internal/faultinject"
	"janus/internal/livecluster"
)

// FaultSweepRow is one live iteration of the fault sweep.
type FaultSweepRow struct {
	Step         int
	WallMs       float64
	Degraded     bool
	StaleFetches int64
	DroppedGrads int64
	Retries      int64
	Timeouts     int64
	Reconnects   int64
	// ECStalled marks steps a synchronous expert-centric iteration
	// could not have completed: its All-to-All needs every machine, so
	// the whole cluster stalls for the full outage.
	ECStalled bool
}

// FaultSweepResult quantifies the failure-friendliness argument of
// §5.1/§6: under the pull-based data-centric paradigm a worker that
// loses an expert owner degrades to cached weights and keeps training,
// where the expert-centric All-to-All would stall every worker until
// the owner returns. The numbers come from a real loopback deployment
// with a deterministic fault injector killing one machine's server for
// a window of steps.
type FaultSweepResult struct {
	Machines            int
	KillMachine         int
	KillFrom, KillTo    int // [KillFrom, KillTo) in 1-based steps
	Rows                []FaultSweepRow
	DegradedSteps       int
	ECStalledSteps      int
	HealthyMs, OutageMs float64 // mean wall time per step, in/out of the window
}

// FaultSweep runs a 2-machine live cluster for six steps, kills
// machine 1's server for steps 3-4, and records how the data-centric
// protocol rides through the outage (retries, reconnects, stale
// serves) versus the synchronous baseline's unavoidable stall.
func FaultSweep() (*FaultSweepResult, error) {
	const (
		steps    = 6
		killFrom = 3
		killTo   = 5
		killM    = 1
	)
	inj := faultinject.New(11)
	inj.Kill(livecluster.MachineLabel(killM), killFrom, killTo)
	cfg := livecluster.Config{
		Machines: 2, WorkersPerNode: 2,
		NumExperts: 8, TopK: 2, Hidden: 16,
		TokensPerWorker: 32, Seed: 42, Credits: 4,
		Injector:      inj,
		PullTimeout:   150 * time.Millisecond,
		PullRetries:   2,
		RetryBackoff:  2 * time.Millisecond,
		StaleFallback: true,
	}
	cl, err := livecluster.Start(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	res := &FaultSweepResult{
		Machines: cfg.Machines, KillMachine: killM,
		KillFrom: killFrom, KillTo: killTo,
	}
	var healthySum, outageSum float64
	var healthyN, outageN int
	for s := 1; s <= steps; s++ {
		start := time.Now()
		step, err := cl.RunDataCentric()
		if err != nil {
			return nil, fmt.Errorf("faultsweep step %d: %w", s, err)
		}
		wall := float64(time.Since(start).Microseconds()) / 1e3
		inWindow := s >= killFrom && s < killTo
		row := FaultSweepRow{
			Step: s, WallMs: wall,
			Degraded:     step.DegradedSteps > 0,
			StaleFetches: step.StaleFetches,
			DroppedGrads: step.DroppedGrads,
			Retries:      step.Robust.Retries,
			Timeouts:     step.Robust.Timeouts,
			Reconnects:   step.Robust.Reconnects,
			ECStalled:    inWindow,
		}
		res.Rows = append(res.Rows, row)
		if row.Degraded {
			res.DegradedSteps++
		}
		if inWindow {
			res.ECStalledSteps++
			outageSum += wall
			outageN++
		} else {
			healthySum += wall
			healthyN++
		}
	}
	if healthyN > 0 {
		res.HealthyMs = healthySum / float64(healthyN)
	}
	if outageN > 0 {
		res.OutageMs = outageSum / float64(outageN)
	}
	return res, nil
}

func (r *FaultSweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — fault sweep on the live cluster (%d machines, machine %d killed steps %d-%d)\n",
		r.Machines, r.KillMachine, r.KillFrom, r.KillTo-1)
	fmt.Fprintf(&b, "%4s %9s %9s %6s %6s %8s %8s %10s %10s\n",
		"step", "wall(ms)", "degraded", "stale", "drops", "retries", "timeouts", "reconnects", "EC verdict")
	for _, row := range r.Rows {
		deg := "no"
		if row.Degraded {
			deg = "yes"
		}
		ec := "completes"
		if row.ECStalled {
			ec = "STALLED"
		}
		fmt.Fprintf(&b, "%4d %9.1f %9s %6d %6d %8d %8d %10d %10s\n",
			row.Step, row.WallMs, deg, row.StaleFetches, row.DroppedGrads,
			row.Retries, row.Timeouts, row.Reconnects, ec)
	}
	fmt.Fprintf(&b, "data-centric: %d/%d steps completed (%d degraded on stale weights, mean %.1fms healthy vs %.1fms in-outage)\n",
		len(r.Rows), len(r.Rows), r.DegradedSteps, r.HealthyMs, r.OutageMs)
	fmt.Fprintf(&b, "expert-centric: the synchronous All-to-All needs every machine, so all workers stall for the full %d-step outage\n",
		r.ECStalledSteps)
	b.WriteString("(§5.1/§6: pull-based data movement degrades per-expert instead of failing the collective)\n")
	return b.String()
}
