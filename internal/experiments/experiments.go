// Package experiments contains one runner per table and figure of the
// Janus paper's evaluation (§3, §7). Each runner builds the paper's
// workload on the simulated cluster, executes the relevant engines, and
// returns a typed result that renders as the same rows/series the paper
// reports. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"janus/internal/config"
	"janus/internal/core"
	"janus/internal/engine"
	"janus/internal/gate"
	"janus/internal/topology"
)

// Result is a rendered experiment outcome.
type Result interface {
	// Render returns the human-readable table/series.
	Render() string
}

// Experiment is a registry entry.
type Experiment struct {
	ID    string // "table1", "fig14", ...
	Title string
	Run   func() (Result, error)
}

// Registry lists every reproducible table and figure, in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table 1: model configs and per-machine inter-node traffic (E.C. vs D.C.)", func() (Result, error) { return Table1() }},
		{"fig3", "Figure 3: iteration latency and All-to-All share under the expert-centric paradigm", func() (Result, error) { return Fig3() }},
		{"goodput", "§3.1: All-to-All goodput, intra-machine vs inter-machine", func() (Result, error) { return Goodput() }},
		{"fig7", "Figure 7: same-order vs staggered internal expert pulls", func() (Result, error) { return Fig7() }},
		{"fig9", "Figure 9: PCIe-switch-aware scheduling of cached-expert copies", func() (Result, error) { return Fig9() }},
		{"fig12", "Figure 12: ablation of data-centric, topology-aware and prefetch", func() (Result, error) { return Fig12() }},
		{"fig13", "Figure 13: computation/communication overlap on MoE-GPT with prefetch", func() (Result, error) { return Fig13() }},
		{"fig14", "Figure 14: end-to-end Janus vs Tutel", func() (Result, error) { return Fig14() }},
		{"fig15", "Figure 15: batch-size sensitivity", func() (Result, error) { return Fig15() }},
		{"fig16", "Figure 16: sequence-length sensitivity (incl. OOM)", func() (Result, error) { return Fig16() }},
		{"fig17", "Figure 17: unified paradigm on PR-MoE", func() (Result, error) { return Fig17() }},
		{"straggler", "Extension: straggler sensitivity under both paradigms (§3.2 claim)", func() (Result, error) { return Straggler() }},
		{"faultsweep", "Extension: injected machine failure — data-centric degradation vs synchronous stall (§5.1/§6)", func() (Result, error) { return FaultSweep() }},
		{"failover", "Extension: permanent machine loss — checkpointed failover vs unrecoverable stall (§3.2)", func() (Result, error) { return Failover() }},
		{"partition", "Extension: asymmetric partition — quorum-gated failover and epoch fencing vs split brain", func() (Result, error) { return Partition() }},
		{"churn", "Extension: elastic membership — live join, fenced expert migration, and flap survival vs a static twin", func() (Result, error) { return Churn() }},
		{"replication", "Extension: synchronous hot-expert replication — lossless failover vs stale-fallback control", func() (Result, error) { return Replication() }},
		{"serving", "Extension: overload-robust serving plane — admission control, deadline propagation, SLO ladder, canary rollback", func() (Result, error) { return Serving() }},
	}
}

// ByID returns the registered experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted as registered.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// --- shared workload helpers ---------------------------------------------

// StdSkew is the Zipf exponent used for "profiled" gates throughout the
// experiments: mild skew matching the imbalance the paper observes
// without degenerating into one hot expert.
const StdSkew = 0.3

// skewedAssignment builds the standard per-block routing for a model on
// a cluster: Zipf(StdSkew), deterministic per block.
func skewedAssignment(model config.Model, numWorkers int) func(block int) gate.Assignment {
	return func(block int) gate.Assignment {
		return gate.Zipf(numWorkers, model.Blocks[block].NumExperts,
			int(model.TokensPerWorker()), StdSkew, int64(block)+1)
	}
}

// table1Spec returns the testbed shape for a Table-1 scenario: 8-GPU
// machines (the paper uses 2 machines for 16 GPUs, 4 for 32).
func table1Spec(numGPUs int) topology.Spec {
	return topology.DefaultSpec(numGPUs / 8)
}

// coreConfig condenses the core.Config knobs the experiments vary.
type coreConfig struct {
	model          config.Model
	spec           topology.Spec
	topo           bool
	prefetch       bool
	skipMem        bool
	trace          bool
	credit         int
	force          *config.Paradigm
	policy         config.Policy
	assignment     func(block int) gate.Assignment
	computeFactors []float64
}

func coreRun(cc coreConfig) (engine.Report, error) {
	return core.Run(core.Config{
		Model: cc.model, Spec: cc.spec,
		Policy: cc.policy, ForceParadigm: cc.force,
		Assignment: cc.assignment, CreditSize: cc.credit,
		TopoAware: cc.topo, Prefetch: cc.prefetch,
		SkipMemoryCheck: cc.skipMem, Trace: cc.trace,
		ComputeFactors: cc.computeFactors,
	})
}

// allReduceCrossBytes returns the cross-machine bytes of the dense
// gradient ring AllReduce for a model on a spec: 2(N−1) steps, each
// crossing the n machine boundaries with a chunk of bytes/N.
func allReduceCrossBytes(model config.Model, spec topology.Spec) float64 {
	n := spec.TotalGPUs()
	if n < 2 {
		return 0
	}
	dgb := engine.NewCosts(spec, model).DenseGradBytes(n)
	return float64(2*(n-1)) * float64(spec.NumMachines) * dgb / float64(n)
}
