package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"janus/internal/faultinject"
	"janus/internal/livecluster"
	"janus/internal/tensor"
)

// ChurnRow is one training step of the elastic-membership drill.
type ChurnRow struct {
	Step       int
	WallMs     float64
	Members    int // machines in the membership (grows on join)
	Alive      int
	Epoch      int
	Migrations int64 // cumulative completed handoffs
	Event      string
}

// ChurnResult quantifies churn survival: one seeded training run takes
// a live machine join, a gray flap on the newcomer, a gray-slow member,
// and three fenced expert migrations (two onto the joiner) — and must
// land bitwise on an undisturbed static-placement twin. The bitwise
// gate proves no gradient was lost and no weight forked; the per-step
// view check proves ownership never forked either.
type ChurnResult struct {
	Machines         int
	Steps            int
	NumExperts       int
	Rows             []ChurnRow
	Joins            int64
	Migrations       int64
	Rollbacks        int64
	FinalEpoch       int
	Owners           []int              // final expert -> machine placement
	PlannedRebalance []livecluster.Move // the popularity-weighted plan at the end
	Diverged         int                // experts differing bitwise from the static twin (must be 0)
}

// churnSchedule is the drill's fixed seeded event script.
var churnSchedule = struct {
	steps, joinAfter                   int
	flapFrom, flapTo, flapDown, flapUp int
	migrations                         []livecluster.TrainMigration
}{
	steps:     10,
	joinAfter: 2,
	// The joiner flaps grayly while it still hosts nothing: its pongs
	// vanish every other step, staying under the dead-man budget, so
	// membership must ride it out without a failover.
	flapFrom: 3, flapTo: 7, flapDown: 1, flapUp: 1,
	migrations: []livecluster.TrainMigration{
		{AfterStep: 7, Expert: 0, To: 3},
		{AfterStep: 8, Expert: 4, To: 3},
		{AfterStep: 9, Expert: 8, To: 0},
	},
}

func churnCfg(inj *faultinject.Injector) livecluster.Config {
	return livecluster.Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 24, Seed: 42, Credits: 4,
		Injector:         inj,
		PullTimeout:      300 * time.Millisecond,
		PullRetries:      3,
		RetryBackoff:     2 * time.Millisecond,
		FailoverEnabled:  true,
		DeadManSteps:     2,
		HeartbeatTimeout: 200 * time.Millisecond,
	}
}

// Churn runs the elastic-membership drill. Every invariant is a gate,
// not a data point: a forked view, a lost migration, or a single
// diverged byte against the static twin fails the experiment.
func Churn() (*ChurnResult, error) {
	sched := churnSchedule

	// The static twin: same model, same schedule length, no injector,
	// no membership events — the single-placement ground truth.
	ref, err := livecluster.Start(churnCfg(nil))
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	refRes, err := ref.Train(livecluster.TrainOptions{Steps: sched.steps, LR: 0.05})
	if err != nil {
		return nil, fmt.Errorf("churn twin: %w", err)
	}
	refState, err := ref.ExpertState()
	if err != nil {
		return nil, err
	}

	inj := faultinject.New(23)
	inj.Slow(livecluster.MachineLabel(1), 2*time.Millisecond, time.Millisecond, 1)
	inj.Flap(livecluster.MachineLabel(3), sched.flapFrom, sched.flapTo, sched.flapDown, sched.flapUp)
	cl, err := livecluster.Start(churnCfg(inj))
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	res := &ChurnResult{
		Machines: 3, Steps: sched.steps, NumExperts: 9,
	}
	var outputs []*tensor.Matrix
	for s := 1; s <= sched.steps; s++ {
		opts := livecluster.TrainOptions{Steps: 1, LR: 0.05}
		event := ""
		if s == sched.joinAfter {
			opts.JoinAfterStep = s
			event = "join machine 3"
		}
		for _, mg := range sched.migrations {
			if mg.AfterStep == s {
				opts.Migrations = append(opts.Migrations, mg)
				event = fmt.Sprintf("migrate expert %d -> machine %d", mg.Expert, mg.To)
			}
		}
		if s >= sched.flapFrom && s < sched.flapTo && event == "" {
			event = "machine 3 flapping"
		}
		start := time.Now()
		step, err := cl.Train(opts)
		if err != nil {
			return nil, fmt.Errorf("churn step %d: %w", s, err)
		}
		if err := cl.ViewConsistency(); err != nil {
			return nil, fmt.Errorf("churn step %d: %w", s, err)
		}
		tot := cl.RobustnessTotals()
		res.Rows = append(res.Rows, ChurnRow{
			Step:       s,
			WallMs:     float64(time.Since(start).Microseconds()) / 1e3,
			Alive:      step.AliveMachines,
			Epoch:      cl.Epoch(),
			Migrations: tot.Migrations,
			Event:      event,
		})
		if s == sched.steps {
			outputs = step.FinalOutputs
		}
	}
	// Members per row: before the join the membership is the seed size.
	for i := range res.Rows {
		if res.Rows[i].Step <= sched.joinAfter {
			res.Rows[i].Members = res.Machines
		} else {
			res.Rows[i].Members = res.Machines + 1
		}
	}

	totals := cl.RobustnessTotals()
	res.Joins = totals.Joins
	res.Migrations = totals.Migrations
	res.Rollbacks = totals.MigrationRollbacks
	res.FinalEpoch = cl.Epoch()
	res.Owners = cl.OwnerView()
	res.PlannedRebalance = cl.PlanRebalance(2)

	if res.Joins != 1 {
		return nil, fmt.Errorf("churn: %d joins recorded, want 1", res.Joins)
	}
	if res.Migrations != int64(len(sched.migrations)) || res.Rollbacks != 0 {
		return nil, fmt.Errorf("churn: %d migrations / %d rollbacks, want %d/0",
			res.Migrations, res.Rollbacks, len(sched.migrations))
	}
	for _, mg := range sched.migrations {
		if res.Owners[mg.Expert] != mg.To {
			return nil, fmt.Errorf("churn: expert %d landed on machine %d, want %d",
				mg.Expert, res.Owners[mg.Expert], mg.To)
		}
	}
	state, err := cl.ExpertState()
	if err != nil {
		return nil, err
	}
	for e := range state {
		if !bytes.Equal(state[e], refState[e]) {
			res.Diverged++
		}
	}
	if res.Diverged != 0 {
		return nil, fmt.Errorf("churn: %d/%d experts diverged bitwise from the static twin — a gradient was lost or forked",
			res.Diverged, res.NumExperts)
	}
	for w := range refRes.FinalOutputs {
		if !tensor.Equal(outputs[w], refRes.FinalOutputs[w]) {
			return nil, fmt.Errorf("churn: worker %d final output diverged from the static twin", w)
		}
	}
	return res, nil
}

func (r *ChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — elastic membership: live join, gray flap, and %d fenced expert migrations under training (%d seed machines, %d steps)\n",
		r.Migrations, r.Machines, r.Steps)
	fmt.Fprintf(&b, "%4s %9s %8s %6s %6s %5s  %s\n",
		"step", "wall(ms)", "members", "alive", "epoch", "migr", "event")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%4d %9.1f %8d %6d %6d %5d  %s\n",
			row.Step, row.WallMs, row.Members, row.Alive, row.Epoch, row.Migrations, row.Event)
	}
	fmt.Fprintf(&b, "membership: %d join, %d migrations (0 rollbacks), final epoch %d, owners %v\n",
		r.Joins, r.Migrations, r.FinalEpoch, r.Owners)
	if len(r.PlannedRebalance) > 0 {
		fmt.Fprintf(&b, "rebalancer: next popularity-weighted plan %+v\n", r.PlannedRebalance)
	}
	fmt.Fprintf(&b, "invariants: views never forked, weights and outputs bitwise identical to the static twin (%d/%d experts diverged)\n",
		r.Diverged, r.NumExperts)
	return b.String()
}
