package experiments

import (
	"fmt"
	"strings"

	"janus/internal/config"
	"janus/internal/core"
	"janus/internal/expertcentric"
)

// StragglerRow is one noise-amplitude point of the jitter sweep.
type StragglerRow struct {
	Jitter       float64 // per-op slowdown drawn uniformly from [1, 1+Jitter]
	TutelMs      float64
	JanusMs      float64
	TutelAddedMs float64 // wall time added over the noise-free run
	JanusAddedMs float64
}

// StragglerResult quantifies §3.2's "less synchronization between
// workers" claim, which the paper argues but never measures. Every
// compute op is stretched by an independent uniform draw from
// [1, 1+J]. Under the synchronous All-to-All, each MoE block waits for
// the *slowest* worker, so the iteration accumulates a sum of per-block
// maxima (≈1+J each). Data-centric workers never meet inside the model,
// so each pays only its own average (≈1+J/2), and the iteration pays
// one max at the final gradient sync.
type StragglerResult struct {
	Rows []StragglerRow
}

// Straggler sweeps the jitter amplitude on MoE-GPT/32. The metric is
// *added wall time*: the same noise distribution costs the synchronous
// baseline more milliseconds than Janus, because every barrier turns
// the noise into its maximum while asynchronous workers average it.
func Straggler() (*StragglerResult, error) {
	model := config.MoEGPT(32)
	spec := table1Spec(32)
	assign := skewedAssignment(model, 32)

	run := func(jitter float64) (tutel, janus float64, err error) {
		base, err := expertcentric.Run(expertcentric.Config{
			Model: model, Spec: spec, Assignment: assign,
			SkipMemoryCheck: true, Jitter: jitter, JitterSeed: 7,
		})
		if err != nil {
			return 0, 0, err
		}
		rep, err := core.Run(core.Config{
			Model: model, Spec: spec, Assignment: assign,
			TopoAware: true, Prefetch: true, SkipMemoryCheck: true,
			Jitter: jitter, JitterSeed: 7,
		})
		if err != nil {
			return 0, 0, err
		}
		return base.IterationTime, rep.IterationTime, nil
	}

	t0, j0, err := run(0)
	if err != nil {
		return nil, err
	}
	res := &StragglerResult{}
	for _, jit := range []float64{0, 0.25, 0.5, 1.0} {
		t, j, err := run(jit)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, StragglerRow{
			Jitter: jit, TutelMs: t * 1e3, JanusMs: j * 1e3,
			TutelAddedMs: (t - t0) * 1e3, JanusAddedMs: (j - j0) * 1e3,
		})
	}
	return res, nil
}

func (r *StragglerResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — per-op compute jitter sensitivity (MoE-GPT, 32 GPUs)\n")
	fmt.Fprintf(&b, "%8s %11s %11s %13s %13s\n",
		"jitter", "tutel(ms)", "janus(ms)", "tutel +ms", "janus +ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%7.0f%% %11.1f %11.1f %13.1f %13.1f\n",
			row.Jitter*100, row.TutelMs, row.JanusMs, row.TutelAddedMs, row.JanusAddedMs)
	}
	b.WriteString("(§3.2 claim: the synchronous baseline pays the per-block maximum of the noise;\n data-centric workers only pay their own draw — less synchronization, smaller penalty)\n")
	return b.String()
}
