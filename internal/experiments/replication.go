package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"janus/internal/faultinject"
	"janus/internal/livecluster"
	"janus/internal/tensor"
)

// ReplicationRow is one training step of the lossless-failover drill.
type ReplicationRow struct {
	Step    int
	WallMs  float64
	Alive   int
	Streams int64 // cumulative replica streams acked
	Promos  int64 // cumulative in-sync promotions
	Event   string
}

// ReplicationResult quantifies synchronous hot-expert replication: a
// seeded run admits a joiner, migrates a hot expert onto it, keeps
// every expert's replicas in sync at each step barrier, then kills the
// joiner permanently mid-train. Failover promotes a replica that acked
// the dead owner's last merged version, so the run must land bitwise on
// an undisturbed static twin with zero staleness — while the identical
// drill with replication off (the control) survives only by degrading
// to a stale copy, and the staleness gap is the experiment's headline.
type ReplicationResult struct {
	Machines   int
	Steps      int
	NumExperts int
	Replicas   int
	Rows       []ReplicationRow
	Streams    int64 // replica snapshots streamed and acked
	Failures   int64 // streams that failed (observable lag)
	Promotions int64
	Repairs    int64 // anti-entropy re-streams
	Diverged   int   // experts differing bitwise from the twin (must be 0)
	// Staleness of the replicated drill (must be 0) vs the unreplicated
	// control run of the same schedule (must be > 0).
	MaxStaleness        int
	ControlMaxStaleness int
}

// replicationSchedule is the drill's fixed seeded event script: the
// joiner takes over a hot expert at step 3 and dies at step 6, four
// merged versions after the handoff.
var replicationSchedule = struct {
	steps, joinAfter, killAt int
	migration                livecluster.TrainMigration
}{
	steps:     8,
	joinAfter: 2,
	killAt:    6,
	migration: livecluster.TrainMigration{AfterStep: 3, Expert: 4, To: 3},
}

func replicationCfg(inj *faultinject.Injector, replicas int) livecluster.Config {
	cfg := livecluster.Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 24, Seed: 42, Credits: 4,
		Injector:         inj,
		PullTimeout:      300 * time.Millisecond,
		PullRetries:      3,
		RetryBackoff:     2 * time.Millisecond,
		FailoverEnabled:  true,
		HeartbeatTimeout: 200 * time.Millisecond,
		Replicas:         replicas,
	}
	if inj != nil {
		cfg.StaleFallback = true
		// One missed round declares death: promotion runs at the top of
		// the kill step, before any pull needs the dead owner.
		cfg.DeadManSteps = 1
	}
	return cfg
}

// replicationDrill runs the join + migrate + kill schedule with the
// given replication factor and returns the cluster, per-step rows, and
// the worst staleness any step reported.
func replicationDrill(replicas int) (*livecluster.Cluster, []ReplicationRow, []*tensor.Matrix, int, error) {
	sched := replicationSchedule
	inj := faultinject.New(11)
	inj.Kill(livecluster.MachineLabel(3), sched.killAt, 0)
	inj.Kill(livecluster.MachineLabel(3)+".client", sched.killAt, 0)
	cl, err := livecluster.Start(replicationCfg(inj, replicas))
	if err != nil {
		return nil, nil, nil, 0, err
	}

	var rows []ReplicationRow
	var outputs []*tensor.Matrix
	maxStale := 0
	for s := 1; s <= sched.steps; s++ {
		opts := livecluster.TrainOptions{Steps: 1, LR: 0.05}
		event := ""
		if s == sched.joinAfter {
			opts.JoinAfterStep = s
			event = "join machine 3"
		}
		if sched.migration.AfterStep == s {
			opts.Migrations = []livecluster.TrainMigration{sched.migration}
			event = fmt.Sprintf("migrate expert %d -> machine %d", sched.migration.Expert, sched.migration.To)
		}
		if s == sched.killAt {
			event = "machine 3 killed (permanent)"
		}
		start := time.Now()
		step, err := cl.Train(opts)
		if err != nil {
			cl.Close()
			return nil, nil, nil, 0, fmt.Errorf("replication step %d (replicas=%d): %w", s, replicas, err)
		}
		if err := cl.ViewConsistency(); err != nil {
			cl.Close()
			return nil, nil, nil, 0, fmt.Errorf("replication step %d (replicas=%d): %w", s, replicas, err)
		}
		if step.MaxStalenessSteps > maxStale {
			maxStale = step.MaxStalenessSteps
		}
		tot := cl.RobustnessTotals()
		rows = append(rows, ReplicationRow{
			Step:    s,
			WallMs:  float64(time.Since(start).Microseconds()) / 1e3,
			Alive:   step.AliveMachines,
			Streams: tot.ReplPushes,
			Promos:  tot.Promotions,
			Event:   event,
		})
		if s == sched.steps {
			outputs = step.FinalOutputs
		}
	}
	return cl, rows, outputs, maxStale, nil
}

// Replication runs the lossless-failover drill. Every invariant is a
// gate: a missed promotion, a single leaked stale step, or one diverged
// byte against the unfailed twin fails the experiment — and so does a
// control run that fails to show the staleness replication removes.
func Replication() (*ReplicationResult, error) {
	sched := replicationSchedule

	// The unfailed static twin: same model and step count, no injector,
	// no membership events — the ground truth the drill must hit bitwise.
	ref, err := livecluster.Start(replicationCfg(nil, 0))
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	refRes, err := ref.Train(livecluster.TrainOptions{Steps: sched.steps, LR: 0.05})
	if err != nil {
		return nil, fmt.Errorf("replication twin: %w", err)
	}
	refState, err := ref.ExpertState()
	if err != nil {
		return nil, err
	}

	const replicas = 2
	cl, rows, outputs, maxStale, err := replicationDrill(replicas)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	res := &ReplicationResult{
		Machines: 3, Steps: sched.steps, NumExperts: 9,
		Replicas:     replicas,
		Rows:         rows,
		MaxStaleness: maxStale,
	}
	totals := cl.RobustnessTotals()
	res.Streams = totals.ReplPushes
	res.Failures = totals.ReplFailures
	res.Promotions = totals.Promotions
	res.Repairs = totals.ReplRepairs

	if res.Promotions != 1 {
		return nil, fmt.Errorf("replication: %d promotions, want exactly 1 (the migrated hot expert)", res.Promotions)
	}
	if res.Streams == 0 {
		return nil, fmt.Errorf("replication: no replica streams recorded")
	}
	if res.MaxStaleness != 0 {
		return nil, fmt.Errorf("replication: lossless failover leaked staleness %d", res.MaxStaleness)
	}
	state, err := cl.ExpertState()
	if err != nil {
		return nil, err
	}
	for e := range state {
		if !bytes.Equal(state[e], refState[e]) {
			res.Diverged++
		}
	}
	if res.Diverged != 0 {
		return nil, fmt.Errorf("replication: %d/%d experts diverged bitwise from the unfailed twin — a merge was lost",
			res.Diverged, res.NumExperts)
	}
	for w := range refRes.FinalOutputs {
		if !tensor.Equal(outputs[w], refRes.FinalOutputs[w]) {
			return nil, fmt.Errorf("replication: worker %d final output diverged from the unfailed twin", w)
		}
	}

	// The control: identical schedule, replication off. It must survive
	// (stale fallback) but cannot be lossless — visible staleness is
	// exactly what the replicated run's zero proves away.
	ctl, _, _, ctlStale, err := replicationDrill(0)
	if err != nil {
		return nil, fmt.Errorf("replication control: %w", err)
	}
	ctl.Close()
	res.ControlMaxStaleness = ctlStale
	if res.ControlMaxStaleness == 0 {
		return nil, fmt.Errorf("replication: control run shows no staleness — the drill exercises nothing")
	}
	return res, nil
}

func (r *ReplicationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — synchronous replication: %d in-sync replicas per expert, owner killed mid-train (%d machines + joiner, %d steps)\n",
		r.Replicas, r.Machines, r.Steps)
	fmt.Fprintf(&b, "%4s %9s %6s %8s %7s  %s\n",
		"step", "wall(ms)", "alive", "streams", "promos", "event")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%4d %9.1f %6d %8d %7d  %s\n",
			row.Step, row.WallMs, row.Alive, row.Streams, row.Promos, row.Event)
	}
	fmt.Fprintf(&b, "replication: %d streams acked, %d failures, %d promotion, %d anti-entropy repairs\n",
		r.Streams, r.Failures, r.Promotions, r.Repairs)
	fmt.Fprintf(&b, "lossless gate: max staleness %d (replicated) vs %d (unreplicated control); %d/%d experts diverged from the unfailed twin\n",
		r.MaxStaleness, r.ControlMaxStaleness, r.Diverged, r.NumExperts)
	return b.String()
}
