package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"janus/internal/faultinject"
	"janus/internal/livecluster"
	"janus/internal/tensor"
)

// FailoverRow is one live iteration of the permanent-failure scenario.
type FailoverRow struct {
	Step          int
	WallMs        float64
	AliveMachines int
	Degraded      bool
	StaleFetches  int64
	DroppedGrads  int64
	Failovers     int64 // this step
	Rehomed       int64 // experts re-homed this step
	Restores      int64 // experts restored from checkpoint this step
	// SurvivorsExact reports whether every alive worker's output was
	// bit-identical to the uninterrupted expert-centric reference.
	SurvivorsExact bool
	// ECStalled marks steps the synchronous expert-centric All-to-All
	// cannot complete. A permanently lost machine never comes back, so
	// from the kill on, the baseline stalls forever.
	ECStalled bool
}

// FailoverResult quantifies what the fault sweep cannot: surviving a
// *permanent* machine loss. The data-centric cluster checkpoints every
// step, declares the lost machine dead after its heartbeat dead-man
// budget, deterministically re-homes its experts onto survivors from
// the last committed checkpoint, and keeps training at full fidelity —
// while the expert-centric baseline's collective can never form again.
type FailoverResult struct {
	Machines         int
	KillMachine      int
	KillFrom         int // 1-based step the machine dies, forever
	DeadManSteps     int
	Rows             []FailoverRow
	FailoverStep     int // step the membership view declared the loss
	RehomedExperts   int64
	Restores         int64
	Checkpoints      int64
	CheckpointBytes  int64
	DegradedSteps    int
	PostFailoverOK   int // post-failover steps at full fidelity, outputs exact
	ECCompletedSteps int
}

// Failover runs a 3-machine live cluster for eight steps with per-step
// checkpoints, permanently kills machine 2's server at step 3, and
// records the failover: detection within the dead-man budget, expert
// re-homing via seeded rendezvous, checkpoint restores, and the
// bit-exactness of every surviving worker against the expert-centric
// reference.
func Failover() (*FailoverResult, error) {
	const (
		steps    = 8
		killFrom = 3
		killM    = 2
		deadman  = 2
	)
	ckptDir, err := os.MkdirTemp("", "janus-failover-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(ckptDir)

	inj := faultinject.New(11)
	inj.Kill(livecluster.MachineLabel(killM), killFrom, 0) // never returns
	cfg := livecluster.Config{
		Machines: 3, WorkersPerNode: 1,
		NumExperts: 9, TopK: 3, Hidden: 16,
		TokensPerWorker: 32, Seed: 42, Credits: 4,
		Injector:         inj,
		PullTimeout:      150 * time.Millisecond,
		PullRetries:      2,
		RetryBackoff:     2 * time.Millisecond,
		StaleFallback:    true,
		FailoverEnabled:  true,
		DeadManSteps:     deadman,
		HeartbeatTimeout: 150 * time.Millisecond,
		CheckpointDir:    ckptDir,
		CheckpointEvery:  1,
	}
	cl, err := livecluster.Start(cfg)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	ref := cl.RunExpertCentricReference()

	res := &FailoverResult{
		Machines: cfg.Machines, KillMachine: killM,
		KillFrom: killFrom, DeadManSteps: deadman,
	}
	for s := 1; s <= steps; s++ {
		start := time.Now()
		step, err := cl.RunDataCentric()
		if err != nil {
			return nil, fmt.Errorf("failover step %d: %w", s, err)
		}
		wall := float64(time.Since(start).Microseconds()) / 1e3
		exact := true
		for w, out := range step.Outputs {
			if out == nil {
				continue // a dead machine's worker computes nothing
			}
			if !tensor.Equal(out, ref[w]) {
				exact = false
			}
		}
		row := FailoverRow{
			Step: s, WallMs: wall,
			AliveMachines:  step.AliveMachines,
			Degraded:       step.Degraded(),
			StaleFetches:   step.StaleFetches,
			DroppedGrads:   step.DroppedGrads,
			Failovers:      step.Robust.Failovers,
			Rehomed:        step.Robust.RehomedExperts,
			Restores:       step.Robust.Restores,
			SurvivorsExact: exact,
			ECStalled:      s >= killFrom,
		}
		res.Rows = append(res.Rows, row)
		if row.Failovers > 0 && res.FailoverStep == 0 {
			res.FailoverStep = s
		}
		if row.Degraded {
			res.DegradedSteps++
		}
		if res.FailoverStep > 0 && s > res.FailoverStep && !row.Degraded && exact {
			res.PostFailoverOK++
		}
		if !row.ECStalled {
			res.ECCompletedSteps++
		}
	}
	totals := cl.RobustnessTotals()
	res.RehomedExperts = totals.RehomedExperts
	res.Restores = totals.Restores
	res.Checkpoints = totals.Checkpoints
	res.CheckpointBytes = totals.CheckpointBytes
	return res, nil
}

func (r *FailoverResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — permanent machine loss with checkpointed failover (%d machines, machine %d dies at step %d, dead-man budget %d)\n",
		r.Machines, r.KillMachine, r.KillFrom, r.DeadManSteps)
	fmt.Fprintf(&b, "%4s %9s %6s %9s %6s %6s %9s %8s %9s %7s %10s\n",
		"step", "wall(ms)", "alive", "degraded", "stale", "drops", "failovers", "rehomed", "restores", "exact", "EC verdict")
	for _, row := range r.Rows {
		deg, exact := "no", "yes"
		if row.Degraded {
			deg = "yes"
		}
		if !row.SurvivorsExact {
			exact = "NO"
		}
		ec := "completes"
		if row.ECStalled {
			ec = "STALLED"
		}
		fmt.Fprintf(&b, "%4d %9.1f %6d %9s %6d %6d %9d %8d %9d %7s %10s\n",
			row.Step, row.WallMs, row.AliveMachines, deg, row.StaleFetches,
			row.DroppedGrads, row.Failovers, row.Rehomed, row.Restores, exact, ec)
	}
	fmt.Fprintf(&b, "data-centric: failover at step %d (%d experts re-homed, %d restored from checkpoint); %d post-failover steps at full fidelity, survivors bit-identical throughout\n",
		r.FailoverStep, r.RehomedExperts, r.Restores, r.PostFailoverOK)
	fmt.Fprintf(&b, "checkpoints: %d committed, %d bytes total, crash-consistent (CRC-verified atomic-rename versions)\n",
		r.Checkpoints, r.CheckpointBytes)
	fmt.Fprintf(&b, "expert-centric: completes only %d/%d steps — a permanent loss leaves the All-to-All without a participant forever\n",
		r.ECCompletedSteps, len(r.Rows))
	b.WriteString("(§3.2: experts as independently pullable objects make per-expert recovery possible; a collective has no such unit)\n")
	return b.String()
}
