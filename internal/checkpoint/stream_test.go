package checkpoint

import (
	"bytes"
	"testing"
)

func streamFixture() *Snapshot {
	return &Snapshot{
		Step: 17,
		Experts: map[uint32][]byte{
			3: {1, 2, 3, 4},
			0: {},
			9: {0xFF, 0x00, 0xAA},
		},
		Dense: []byte{5, 6, 7},
	}
}

func TestStreamRoundTrip(t *testing.T) {
	snap := streamFixture()
	raw, err := EncodeStream(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStream(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != snap.Step {
		t.Fatalf("step %d, want %d", got.Step, snap.Step)
	}
	if len(got.Experts) != len(snap.Experts) {
		t.Fatalf("%d experts, want %d", len(got.Experts), len(snap.Experts))
	}
	for id, data := range snap.Experts {
		if !bytes.Equal(got.Experts[id], data) {
			t.Fatalf("expert %d: %v, want %v", id, got.Experts[id], data)
		}
	}
	if !bytes.Equal(got.Dense, snap.Dense) {
		t.Fatalf("dense %v, want %v", got.Dense, snap.Dense)
	}
}

func TestStreamRoundTripNoDense(t *testing.T) {
	snap := &Snapshot{Step: 0, Experts: map[uint32][]byte{7: {9}}}
	raw, err := EncodeStream(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeStream(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dense != nil {
		t.Fatalf("dense should stay nil, got %v", got.Dense)
	}
}

func TestStreamRejectsCorruption(t *testing.T) {
	raw, err := EncodeStream(streamFixture())
	if err != nil {
		t.Fatal(err)
	}
	// Flip every byte in turn; no single-bit-flipped stream may decode.
	for i := range raw {
		bad := make([]byte, len(raw))
		copy(bad, raw)
		bad[i] ^= 0xFF
		if _, err := DecodeStream(bad); err == nil {
			t.Fatalf("flipping byte %d decoded successfully", i)
		}
	}
	// Truncations must fail too.
	for i := 0; i < len(raw); i++ {
		if _, err := DecodeStream(raw[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", i)
		}
	}
	// Trailing garbage is not a valid stream either.
	if _, err := DecodeStream(append(append([]byte{}, raw...), 0)); err == nil {
		t.Fatal("trailing garbage decoded successfully")
	}
}

func TestStreamRejectsNilAndNegative(t *testing.T) {
	if _, err := EncodeStream(nil); err == nil {
		t.Fatal("nil snapshot encoded")
	}
	if _, err := EncodeStream(&Snapshot{Step: -1}); err == nil {
		t.Fatal("negative step encoded")
	}
}
