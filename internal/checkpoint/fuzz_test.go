package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecodeStream drives the wire-snapshot decoder with arbitrary
// bytes: it must never panic or over-allocate, and anything it accepts
// must re-encode to the identical canonical byte stream.
func FuzzDecodeStream(f *testing.F) {
	if raw, err := EncodeStream(streamFixture()); err == nil {
		f.Add(raw)
	}
	if raw, err := EncodeStream(&Snapshot{Experts: map[uint32][]byte{}}); err == nil {
		f.Add(raw)
	}
	f.Add([]byte("JSTRM1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		snap, err := DecodeStream(raw)
		if err != nil {
			return
		}
		re, err := EncodeStream(snap)
		if err != nil {
			t.Fatalf("accepted stream failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, raw) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d bytes out", len(raw), len(re))
		}
	})
}
