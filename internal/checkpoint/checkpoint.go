// Package checkpoint provides versioned, crash-consistent snapshots of
// training state: expert weights (one opaque entry per expert), the
// dense parameters, and the step counter. It is the durability layer
// the livecluster failover leans on — when a machine is lost
// permanently, survivors reload the dead owner's experts from the
// freshest readable checkpoint.
//
// Crash consistency comes from the classic temp+fsync+rename recipe:
// every entry is written into a hidden temp directory, fsynced, the
// manifest (which carries a CRC per entry and its own CRC) is written
// last, and the whole directory is atomically renamed to its version
// name. A reader therefore either sees a complete committed version or
// none at all; a crash mid-write leaves only an ignorable temp
// directory. Restore verifies sizes and CRCs, so torn, truncated, or
// bit-flipped files are rejected rather than loaded, and LoadLatest
// falls back to the newest version that still verifies.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot is one checkpointable training state.
type Snapshot struct {
	// Step is the training iteration the snapshot was taken after; it
	// doubles as the checkpoint version number.
	Step int
	// Experts maps expert id to its serialized weights. The encoding is
	// the caller's (the checkpoint layer treats entries as opaque).
	Experts map[uint32][]byte
	// Dense holds the serialized dense (non-expert) parameters.
	Dense []byte
	// ModelVersion distinguishes model lineages sharing a directory:
	// a canary rollout saves its candidate weights with a bumped
	// ModelVersion so the serving plane can tell baseline and canary
	// generations apart (and fence a rolled-back one) without decoding
	// any weights. Zero for snapshots that predate the field — the
	// manifest omits it when zero, so old checkpoints stay readable
	// and new baseline checkpoints stay byte-compatible.
	ModelVersion int
}

// ErrNoCheckpoint is returned by LoadLatest when no committed,
// verifiable checkpoint exists under the directory.
var ErrNoCheckpoint = errors.New("checkpoint: no readable checkpoint")

const (
	manifestName  = "MANIFEST"
	denseEntry    = "dense.bin"
	formatVersion = 1
	// maxManifestBytes bounds the manifest a reader will buffer, so a
	// corrupt length field cannot force an unbounded allocation.
	maxManifestBytes = 16 << 20
)

// magic starts every manifest file.
var magic = []byte("JCKPT1\n")

// manifest describes one committed checkpoint version.
type manifest struct {
	FormatVersion int     `json:"format_version"`
	Step          int     `json:"step"`
	ModelVersion  int     `json:"model_version,omitempty"`
	Entries       []entry `json:"entries"`
}

// entry records the integrity data of one payload file.
type entry struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32"`
}

func versionDir(version int) string { return fmt.Sprintf("v%08d", version) }

func expertEntry(id uint32) string { return fmt.Sprintf("expert-%08d.bin", id) }

// parseVersion inverts versionDir; ok is false for foreign names
// (including temp directories).
func parseVersion(name string) (int, bool) {
	if len(name) != 9 || name[0] != 'v' {
		return 0, false
	}
	v := 0
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
	}
	return v, true
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so the rename/creation of its children is
// durable. Errors are ignored: some filesystems refuse to fsync
// directories, and the commit point (the rename) is already ordered
// after the file fsyncs.
func syncDir(path string) {
	if d, err := os.Open(path); err == nil {
		d.Sync()
		d.Close()
	}
}

// encodeManifest wraps the manifest JSON in the integrity envelope:
// magic, CRC32 of the body, body length, body.
func encodeManifest(m manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(magic)+8+len(body))
	buf = append(buf, magic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	return buf, nil
}

// decodeManifest verifies the envelope and returns the manifest. Any
// truncation or bit flip fails the magic, length, or CRC check.
func decodeManifest(raw []byte) (manifest, error) {
	var m manifest
	if len(raw) < len(magic)+8 {
		return m, fmt.Errorf("checkpoint: manifest truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(magic)]) != string(magic) {
		return m, errors.New("checkpoint: bad manifest magic")
	}
	wantCRC := binary.LittleEndian.Uint32(raw[len(magic) : len(magic)+4])
	bodyLen := binary.LittleEndian.Uint32(raw[len(magic)+4 : len(magic)+8])
	body := raw[len(magic)+8:]
	if bodyLen > maxManifestBytes || int(bodyLen) != len(body) {
		return m, fmt.Errorf("checkpoint: manifest body %d bytes, header says %d", len(body), bodyLen)
	}
	if crc := crc32.ChecksumIEEE(body); crc != wantCRC {
		return m, fmt.Errorf("checkpoint: manifest CRC mismatch (%08x != %08x)", crc, wantCRC)
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return m, fmt.Errorf("checkpoint: manifest decode: %w", err)
	}
	if m.FormatVersion != formatVersion {
		return m, fmt.Errorf("checkpoint: unsupported format version %d", m.FormatVersion)
	}
	return m, nil
}

// Save commits snap under dir as version snap.Step, atomically:
// a reader never observes a partially written version. An existing
// version with the same step is replaced. It returns the total payload
// bytes written (entries plus manifest).
func Save(dir string, snap *Snapshot) (int64, error) {
	if snap == nil {
		return 0, errors.New("checkpoint: nil snapshot")
	}
	if snap.Step < 0 {
		return 0, fmt.Errorf("checkpoint: negative step %d", snap.Step)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp := filepath.Join(dir, fmt.Sprintf(".tmp-%s", versionDir(snap.Step)))
	if err := os.RemoveAll(tmp); err != nil {
		return 0, err
	}
	if err := os.Mkdir(tmp, 0o755); err != nil {
		return 0, err
	}
	cleanup := true
	defer func() {
		if cleanup {
			os.RemoveAll(tmp)
		}
	}()

	m := manifest{FormatVersion: formatVersion, Step: snap.Step, ModelVersion: snap.ModelVersion}
	var written int64
	put := func(name string, data []byte) error {
		if err := writeFileSync(filepath.Join(tmp, name), data); err != nil {
			return err
		}
		m.Entries = append(m.Entries, entry{Name: name, Size: int64(len(data)), CRC: crc32.ChecksumIEEE(data)})
		written += int64(len(data))
		return nil
	}
	ids := make([]uint32, 0, len(snap.Experts))
	for id := range snap.Experts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := put(expertEntry(id), snap.Experts[id]); err != nil {
			return 0, err
		}
	}
	if snap.Dense != nil {
		if err := put(denseEntry, snap.Dense); err != nil {
			return 0, err
		}
	}

	raw, err := encodeManifest(m)
	if err != nil {
		return 0, err
	}
	if err := writeFileSync(filepath.Join(tmp, manifestName), raw); err != nil {
		return 0, err
	}
	written += int64(len(raw))
	syncDir(tmp)

	final := filepath.Join(dir, versionDir(snap.Step))
	if err := os.RemoveAll(final); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return 0, err
	}
	cleanup = false
	syncDir(dir)
	return written, nil
}

// Load reads and fully verifies one committed version. Every entry's
// size and CRC must match the manifest; any torn, truncated, or
// bit-flipped file fails the load.
func Load(dir string, version int) (*Snapshot, error) {
	vdir := filepath.Join(dir, versionDir(version))
	raw, err := os.ReadFile(filepath.Join(vdir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: v%d: %w", version, err)
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: v%d: %w", version, err)
	}
	if m.Step != version {
		return nil, fmt.Errorf("checkpoint: v%d: manifest claims step %d", version, m.Step)
	}
	snap := &Snapshot{Step: m.Step, ModelVersion: m.ModelVersion, Experts: make(map[uint32][]byte, len(m.Entries))}
	for _, e := range m.Entries {
		if e.Name != filepath.Base(e.Name) || e.Name == manifestName {
			return nil, fmt.Errorf("checkpoint: v%d: illegal entry name %q", version, e.Name)
		}
		data, err := os.ReadFile(filepath.Join(vdir, e.Name))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: v%d: %w", version, err)
		}
		if int64(len(data)) != e.Size {
			return nil, fmt.Errorf("checkpoint: v%d: entry %s is %d bytes, manifest says %d",
				version, e.Name, len(data), e.Size)
		}
		if crc := crc32.ChecksumIEEE(data); crc != e.CRC {
			return nil, fmt.Errorf("checkpoint: v%d: entry %s CRC mismatch (%08x != %08x)",
				version, e.Name, crc, e.CRC)
		}
		switch {
		case e.Name == denseEntry:
			snap.Dense = data
		case strings.HasPrefix(e.Name, "expert-"):
			var id uint32
			if _, err := fmt.Sscanf(e.Name, "expert-%08d.bin", &id); err != nil {
				return nil, fmt.Errorf("checkpoint: v%d: bad expert entry %q", version, e.Name)
			}
			snap.Experts[id] = data
		default:
			return nil, fmt.Errorf("checkpoint: v%d: unknown entry %q", version, e.Name)
		}
	}
	return snap, nil
}

// Versions lists the committed version numbers under dir, ascending.
// Temp directories and foreign files are ignored. Listing does not
// verify integrity; Load does.
func Versions(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if v, ok := parseVersion(e.Name()); ok {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// LoadLatest returns the newest version that verifies completely,
// skipping (but not deleting) versions that fail integrity checks.
// It returns ErrNoCheckpoint when nothing under dir is loadable.
func LoadLatest(dir string) (*Snapshot, int, error) {
	versions, err := Versions(dir)
	if err != nil {
		return nil, 0, err
	}
	for i := len(versions) - 1; i >= 0; i-- {
		snap, err := Load(dir, versions[i])
		if err == nil {
			return snap, versions[i], nil
		}
	}
	return nil, 0, ErrNoCheckpoint
}

const (
	// maxStreamBytes bounds the stream body a reader will accept, so a
	// corrupt length field cannot force an unbounded allocation.
	maxStreamBytes = 64 << 20
)

// streamMagic starts every wire-encoded snapshot stream.
var streamMagic = []byte("JSTRM1\n")

// EncodeStream serializes snap into the self-verifying wire form used
// to ship expert weights between machines during live migration:
// magic, CRC32 of the body, body length, body. The body is the step,
// the experts in ascending id order (id, length, bytes each), then an
// optional dense section. The same integrity discipline as the on-disk
// manifest applies — a receiver either decodes the exact snapshot that
// was sent or rejects the stream.
func EncodeStream(snap *Snapshot) ([]byte, error) {
	if snap == nil {
		return nil, errors.New("checkpoint: nil snapshot")
	}
	if snap.Step < 0 {
		return nil, fmt.Errorf("checkpoint: negative step %d", snap.Step)
	}
	ids := make([]uint32, 0, len(snap.Experts))
	n := 8 + 4 + 1 + 4
	for id, data := range snap.Experts {
		ids = append(ids, id)
		n += 8 + len(data)
	}
	n += len(snap.Dense)
	if n > maxStreamBytes {
		return nil, fmt.Errorf("checkpoint: stream body %d bytes exceeds limit", n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	body := make([]byte, 0, n)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(snap.Step))
	body = append(body, u64[:]...)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(ids)))
	body = append(body, u32[:]...)
	for _, id := range ids {
		data := snap.Experts[id]
		binary.LittleEndian.PutUint32(u32[:], id)
		body = append(body, u32[:]...)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(data)))
		body = append(body, u32[:]...)
		body = append(body, data...)
	}
	if snap.Dense != nil {
		body = append(body, 1)
		binary.LittleEndian.PutUint32(u32[:], uint32(len(snap.Dense)))
		body = append(body, u32[:]...)
		body = append(body, snap.Dense...)
	} else {
		body = append(body, 0)
		binary.LittleEndian.PutUint32(u32[:], 0)
		body = append(body, u32[:]...)
	}

	buf := make([]byte, 0, len(streamMagic)+8+len(body))
	buf = append(buf, streamMagic...)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(body)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	return buf, nil
}

// DecodeStream verifies and decodes a wire-encoded snapshot stream.
// Any truncation, trailing garbage, or bit flip fails the magic,
// length, or CRC check; duplicate or descending expert ids are
// rejected so the encoding is canonical.
func DecodeStream(raw []byte) (*Snapshot, error) {
	if len(raw) < len(streamMagic)+8 {
		return nil, fmt.Errorf("checkpoint: stream truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(streamMagic)]) != string(streamMagic) {
		return nil, errors.New("checkpoint: bad stream magic")
	}
	wantCRC := binary.LittleEndian.Uint32(raw[len(streamMagic) : len(streamMagic)+4])
	bodyLen := binary.LittleEndian.Uint32(raw[len(streamMagic)+4 : len(streamMagic)+8])
	body := raw[len(streamMagic)+8:]
	if bodyLen > maxStreamBytes || int(bodyLen) != len(body) {
		return nil, fmt.Errorf("checkpoint: stream body %d bytes, header says %d", len(body), bodyLen)
	}
	if crc := crc32.ChecksumIEEE(body); crc != wantCRC {
		return nil, fmt.Errorf("checkpoint: stream CRC mismatch (%08x != %08x)", crc, wantCRC)
	}
	if len(body) < 8+4 {
		return nil, errors.New("checkpoint: stream body truncated")
	}
	step := binary.LittleEndian.Uint64(body)
	if step > uint64(1)<<62 {
		return nil, fmt.Errorf("checkpoint: stream step %d out of range", step)
	}
	nExperts := binary.LittleEndian.Uint32(body[8:])
	off := 12
	// Each expert needs at least its 8-byte header; reject counts the
	// remaining bytes cannot possibly satisfy before allocating.
	if int64(nExperts)*8 > int64(len(body)-off) {
		return nil, fmt.Errorf("checkpoint: stream claims %d experts in %d bytes", nExperts, len(body)-off)
	}
	snap := &Snapshot{Step: int(step), Experts: make(map[uint32][]byte, nExperts)}
	prev := -1
	for i := uint32(0); i < nExperts; i++ {
		if len(body)-off < 8 {
			return nil, errors.New("checkpoint: stream expert header truncated")
		}
		id := binary.LittleEndian.Uint32(body[off:])
		size := binary.LittleEndian.Uint32(body[off+4:])
		off += 8
		if int(id) <= prev {
			return nil, fmt.Errorf("checkpoint: stream expert ids not strictly ascending at %d", id)
		}
		prev = int(id)
		if uint32(len(body)-off) < size {
			return nil, fmt.Errorf("checkpoint: stream expert %d truncated (%d of %d bytes)", id, len(body)-off, size)
		}
		data := make([]byte, size)
		copy(data, body[off:off+int(size)])
		snap.Experts[id] = data
		off += int(size)
	}
	if len(body)-off < 5 {
		return nil, errors.New("checkpoint: stream dense header truncated")
	}
	hasDense := body[off]
	denseLen := binary.LittleEndian.Uint32(body[off+1:])
	off += 5
	switch hasDense {
	case 0:
		if denseLen != 0 {
			return nil, errors.New("checkpoint: stream dense length set without dense payload")
		}
	case 1:
		if uint32(len(body)-off) < denseLen {
			return nil, fmt.Errorf("checkpoint: stream dense truncated (%d of %d bytes)", len(body)-off, denseLen)
		}
		snap.Dense = make([]byte, denseLen)
		copy(snap.Dense, body[off:off+int(denseLen)])
		off += int(denseLen)
	default:
		return nil, fmt.Errorf("checkpoint: stream bad dense flag %d", hasDense)
	}
	if off != len(body) {
		return nil, fmt.Errorf("checkpoint: stream has %d trailing bytes", len(body)-off)
	}
	return snap, nil
}

// Prune removes committed versions older than the newest keep ones
// (and any leftover temp directories). keep < 1 is treated as 1.
func Prune(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var versions []int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), ".tmp-") {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
			continue
		}
		if v, ok := parseVersion(e.Name()); ok {
			versions = append(versions, v)
		}
	}
	sort.Ints(versions)
	if len(versions) <= keep {
		return nil
	}
	for _, v := range versions[:len(versions)-keep] {
		if err := os.RemoveAll(filepath.Join(dir, versionDir(v))); err != nil {
			return err
		}
	}
	return nil
}
