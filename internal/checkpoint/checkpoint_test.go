package checkpoint

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testSnap builds a deterministic snapshot with nExperts payloads.
func testSnap(step, nExperts int, seed int64) *Snapshot {
	rng := rand.New(rand.NewSource(seed))
	s := &Snapshot{Step: step, Experts: make(map[uint32][]byte)}
	for e := 0; e < nExperts; e++ {
		buf := make([]byte, 64+rng.Intn(256))
		rng.Read(buf)
		s.Experts[uint32(e)] = buf
	}
	s.Dense = make([]byte, 128)
	rng.Read(s.Dense)
	return s
}

func mustSave(t *testing.T, dir string, s *Snapshot) int64 {
	t.Helper()
	n, err := Save(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("save reported %d bytes", n)
	}
	return n
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testSnap(7, 5, 1)
	mustSave(t, dir, want)

	got, err := Load(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != want.Step {
		t.Fatalf("step = %d, want %d", got.Step, want.Step)
	}
	if len(got.Experts) != len(want.Experts) {
		t.Fatalf("experts = %d, want %d", len(got.Experts), len(want.Experts))
	}
	for id, data := range want.Experts {
		if !bytes.Equal(got.Experts[id], data) {
			t.Fatalf("expert %d payload differs", id)
		}
	}
	if !bytes.Equal(got.Dense, want.Dense) {
		t.Fatal("dense payload differs")
	}
}

func TestLoadLatestPicksNewest(t *testing.T) {
	dir := t.TempDir()
	for _, step := range []int{3, 1, 9, 5} {
		mustSave(t, dir, testSnap(step, 2, int64(step)))
	}
	snap, v, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 || snap.Step != 9 {
		t.Fatalf("latest = v%d step %d, want 9", v, snap.Step)
	}
	vs, err := Versions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 || vs[0] != 1 || vs[3] != 9 {
		t.Fatalf("versions = %v", vs)
	}
}

func TestLoadLatestEmptyAndMissingDir(t *testing.T) {
	if _, _, err := LoadLatest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v", err)
	}
	if _, _, err := LoadLatest(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v", err)
	}
}

// corruptFile flips one seeded-random byte of the file — the
// faultinject idiom applied to storage: the damage site is a
// deterministic function of the seed, so every failure replays.
func corruptFile(t *testing.T, path string, seed int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	data[rng.Intn(len(data))] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsBitFlippedEntry(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		dir := t.TempDir()
		mustSave(t, dir, testSnap(4, 3, seed))
		corruptFile(t, filepath.Join(dir, versionDir(4), expertEntry(1)), seed)
		if _, err := Load(dir, 4); err == nil {
			t.Fatalf("seed %d: bit-flipped expert entry loaded", seed)
		}
	}
}

func TestLoadRejectsBitFlippedManifest(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		dir := t.TempDir()
		mustSave(t, dir, testSnap(4, 3, seed))
		corruptFile(t, filepath.Join(dir, versionDir(4), manifestName), seed)
		if _, err := Load(dir, 4); err == nil {
			t.Fatalf("seed %d: bit-flipped manifest loaded", seed)
		}
	}
}

func TestLoadRejectsTruncatedFiles(t *testing.T) {
	dir := t.TempDir()
	mustSave(t, dir, testSnap(2, 2, 1))
	vdir := filepath.Join(dir, versionDir(2))

	// Truncated entry: size check fires before the CRC.
	entry := filepath.Join(vdir, expertEntry(0))
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entry, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 2); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("truncated entry: err = %v", err)
	}

	// Torn manifest: a partial write of the envelope must be rejected.
	mustSave(t, dir, testSnap(2, 2, 1)) // restore, then tear the manifest
	man := filepath.Join(vdir, manifestName)
	raw, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(magic) + 4, len(raw) - 5} {
		if err := os.WriteFile(man, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir, 2); err == nil {
			t.Fatalf("torn manifest (%d bytes) loaded", cut)
		}
	}
}

func TestLoadRejectsMissingEntry(t *testing.T) {
	dir := t.TempDir()
	mustSave(t, dir, testSnap(3, 2, 1))
	if err := os.Remove(filepath.Join(dir, versionDir(3), expertEntry(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, 3); err == nil {
		t.Fatal("load succeeded with a missing entry")
	}
}

// A crash mid-save leaves only a temp directory; it must be invisible
// to readers and cleaned by Prune.
func TestTempDirIgnoredAndPruned(t *testing.T) {
	dir := t.TempDir()
	mustSave(t, dir, testSnap(1, 2, 1))
	tmp := filepath.Join(dir, ".tmp-"+versionDir(2))
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "expert-00000000.bin"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, v, err := LoadLatest(dir); err != nil || v != 1 {
		t.Fatalf("latest = v%d err %v, want v1", v, err)
	}
	if err := Prune(dir, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("prune left the temp directory behind")
	}
}

// When the newest version is damaged, LoadLatest falls back to the
// newest version that still verifies.
func TestLoadLatestFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	mustSave(t, dir, testSnap(1, 2, 1))
	mustSave(t, dir, testSnap(2, 2, 2))
	mustSave(t, dir, testSnap(3, 2, 3))
	corruptFile(t, filepath.Join(dir, versionDir(3), expertEntry(0)), 5)
	snap, v, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || snap.Step != 2 {
		t.Fatalf("latest = v%d, want fallback to v2", v)
	}
}

func TestSaveOverwritesSameVersion(t *testing.T) {
	dir := t.TempDir()
	mustSave(t, dir, testSnap(5, 2, 1))
	want := testSnap(5, 3, 9)
	mustSave(t, dir, want)
	got, err := Load(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Experts) != 3 || !bytes.Equal(got.Experts[2], want.Experts[2]) {
		t.Fatal("overwrite did not replace the version contents")
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for step := 1; step <= 5; step++ {
		mustSave(t, dir, testSnap(step, 1, int64(step)))
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	vs, err := Versions(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0] != 4 || vs[1] != 5 {
		t.Fatalf("versions after prune = %v, want [4 5]", vs)
	}
}

func TestModelVersionRoundTripAndBackCompat(t *testing.T) {
	dir := t.TempDir()
	// A canary snapshot carries its lineage through save/load.
	canary := &Snapshot{Step: 5, ModelVersion: 2,
		Experts: map[uint32][]byte{1: {9, 9}}, Dense: []byte{1}}
	if _, err := Save(dir, canary); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion != 2 {
		t.Fatalf("ModelVersion = %d, want 2", got.ModelVersion)
	}
	// A baseline snapshot (ModelVersion 0) writes a manifest without
	// the field at all, so pre-canary readers and checkpoints stay
	// byte-compatible.
	base := &Snapshot{Step: 6, Experts: map[uint32][]byte{1: {7}}}
	if _, err := Save(dir, base); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, versionDir(6), manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("model_version")) {
		t.Fatalf("zero ModelVersion serialized: %s", raw)
	}
	got, err = Load(dir, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.ModelVersion != 0 {
		t.Fatalf("ModelVersion = %d, want 0", got.ModelVersion)
	}
}
