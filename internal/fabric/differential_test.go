package fabric

import (
	"math"
	"math/rand"
	"testing"

	"janus/internal/sim"
)

// progSpec is a reproducible random workload: a topology plus a
// scheduled program of flow admissions (some batched, some single).
type progSpec struct {
	caps  []float64 // link capacities
	lats  []float64 // link latencies
	trunk []bool    // MarkTrunk flags (nil = all edge)
	// batches[t] admitted at time adTimes[t]
	adTimes []float64
	batches [][]progFlow
	single  []bool // admit batch i via StartFlowEff loop instead of StartFlows
	probes  []float64
}

type progFlow struct {
	size float64
	eff  float64
	path []int
}

// randProgram draws topologies/programs engineered to exercise ties:
// capacities and sizes come from small grids so distinct links hit
// bitwise-equal fair shares and distinct flows finish at bitwise-equal
// instants, and several admissions land at the same virtual time.
func randProgram(rng *rand.Rand) progSpec {
	nLinks := 3 + rng.Intn(10)
	capGrid := []float64{1e9, 2e9, 4e9, 1e9, 2e9}
	latGrid := []float64{0, 0, 1e-6, 5e-6}
	var p progSpec
	for i := 0; i < nLinks; i++ {
		p.caps = append(p.caps, capGrid[rng.Intn(len(capGrid))])
		p.lats = append(p.lats, latGrid[rng.Intn(len(latGrid))])
	}
	sizeGrid := []float64{1e6, 2e6, 4e6, 1e6, 8e6}
	effGrid := []float64{1, 1, 0.5, 0.85}
	timeGrid := []float64{0, 0, 0.001, 0.002, 0.005}
	nBatches := 1 + rng.Intn(4)
	for b := 0; b < nBatches; b++ {
		p.adTimes = append(p.adTimes, timeGrid[rng.Intn(len(timeGrid))])
		p.single = append(p.single, rng.Intn(3) == 0)
		nFlows := 1 + rng.Intn(8)
		var fl []progFlow
		for i := 0; i < nFlows; i++ {
			pathLen := 1 + rng.Intn(3)
			var path []int
			used := map[int]bool{}
			for len(path) < pathLen {
				li := rng.Intn(nLinks)
				if used[li] {
					continue
				}
				used[li] = true
				path = append(path, li)
			}
			size := sizeGrid[rng.Intn(len(sizeGrid))]
			if rng.Intn(10) == 0 {
				size = 0 // pure-latency flow
			}
			fl = append(fl, progFlow{size: size, eff: effGrid[rng.Intn(len(effGrid))], path: path})
		}
		p.batches = append(p.batches, fl)
	}
	for i := 0; i < 4; i++ {
		p.probes = append(p.probes, timeGrid[rng.Intn(len(timeGrid))]+float64(i)*0.0017)
	}
	return p
}

// progResult is everything observable about one run, captured so two
// runs can be compared float-for-float.
type progResult struct {
	finishAt []float64 // per flow, admission order
	carried  []float64 // per link, at end
	busy     []float64 // per link, at end
	probe    []float64 // flattened mid-run samples of Rate/Remaining/CarriedBytes
	order    []string  // completion callback order
}

func runProgram(p progSpec, mode AllocMode, fill ...FillStrategy) progResult {
	eng := sim.NewEngine()
	net := NewNetwork(eng)
	net.SetAllocMode(mode)
	if len(fill) > 0 {
		net.SetFillStrategy(fill[0])
	}
	var links []*Link
	for i := range p.caps {
		l := net.NewLink("l", "test", p.caps[i], p.lats[i])
		if i < len(p.trunk) && p.trunk[i] {
			l.MarkTrunk()
		}
		links = append(links, l)
	}
	var res progResult
	var flows []*Flow
	for b := range p.batches {
		b := b
		eng.At(p.adTimes[b], func() {
			var specs []FlowSpec
			for i, pf := range p.batches[b] {
				var path []*Link
				for _, li := range pf.path {
					path = append(path, links[li])
				}
				name := string(rune('a'+b)) + string(rune('0'+i))
				specs = append(specs, FlowSpec{Name: name, Size: pf.size, Eff: pf.eff, Path: path,
					OnComplete: func(f *Flow) { res.order = append(res.order, f.Name()) }})
			}
			if p.single[b] {
				for _, sp := range specs {
					flows = append(flows, net.StartFlowEff(sp.Name, sp.Size, sp.Eff, sp.Path, sp.OnComplete))
				}
			} else {
				flows = append(flows, net.StartFlows(specs)...)
			}
		})
	}
	for _, pt := range p.probes {
		eng.At(pt, func() {
			for _, f := range flows {
				res.probe = append(res.probe, f.Rate(), f.Remaining())
			}
			for _, l := range links {
				res.probe = append(res.probe, l.CarriedBytes(), l.BusySeconds())
			}
		})
	}
	eng.Run()
	for _, f := range flows {
		if !f.Done() {
			panic("flow not done at drain")
		}
		res.finishAt = append(res.finishAt, f.FinishedAt())
	}
	for _, l := range links {
		res.carried = append(res.carried, l.CarriedBytes())
		res.busy = append(res.busy, l.BusySeconds())
	}
	return res
}

func bitEqual(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// TestDifferentialOracleVsIncremental runs seeded random flow programs
// under both allocators and requires bit-identical completion times,
// completion order, link utilization, and mid-run rate/remaining
// samples. This is the contract that lets the incremental allocator
// replace the naive one without perturbing any experiment.
func TestDifferentialOracleVsIncremental(t *testing.T) {
	cases := 300
	if testing.Short() {
		cases = 60
	}
	// Every fill strategy of the incremental mode must match the oracle
	// bitwise — the adaptive default switches between scan and heap, so
	// both underlying fills are pinned explicitly too.
	strategies := []FillStrategy{FillAdaptive, FillScan, FillHeap}
	for seed := 0; seed < cases; seed++ {
		p := randProgram(rand.New(rand.NewSource(int64(seed))))
		oracle := runProgram(p, ModeOracle)
		for _, strat := range strategies {
			inc := runProgram(p, ModeIncremental, strat)
			if i, ok := bitEqual(oracle.finishAt, inc.finishAt); !ok {
				t.Fatalf("seed %d strat %d: completion time diverges at flow %d: oracle=%v inc=%v",
					seed, strat, i, oracle.finishAt[i], inc.finishAt[i])
			}
			if i, ok := bitEqual(oracle.carried, inc.carried); !ok {
				t.Fatalf("seed %d strat %d: carried bytes diverge at link %d: oracle=%v inc=%v",
					seed, strat, i, oracle.carried[i], inc.carried[i])
			}
			if i, ok := bitEqual(oracle.busy, inc.busy); !ok {
				t.Fatalf("seed %d strat %d: busy seconds diverge at link %d: oracle=%v inc=%v",
					seed, strat, i, oracle.busy[i], inc.busy[i])
			}
			if i, ok := bitEqual(oracle.probe, inc.probe); !ok {
				t.Fatalf("seed %d strat %d: mid-run probe diverges at sample %d: oracle=%v inc=%v",
					seed, strat, i, oracle.probe[i], inc.probe[i])
			}
			if len(oracle.order) != len(inc.order) {
				t.Fatalf("seed %d strat %d: completion count diverges: %d vs %d", seed, strat, len(oracle.order), len(inc.order))
			}
			for i := range oracle.order {
				if oracle.order[i] != inc.order[i] {
					t.Fatalf("seed %d strat %d: completion order diverges at %d: %q vs %q", seed, strat, i, oracle.order[i], inc.order[i])
				}
			}
		}
	}
}

// TestStartFlowsMatchesSingleAdmission checks that batched admission at
// one instant produces the same steady-state rates and completions as
// the equivalent sequence of StartFlowEff calls at that instant.
func TestStartFlowsMatchesSingleAdmission(t *testing.T) {
	for seed := 0; seed < 50; seed++ {
		p := randProgram(rand.New(rand.NewSource(int64(1000 + seed))))
		for i := range p.single {
			p.single[i] = false
		}
		batched := runProgram(p, ModeIncremental)
		for i := range p.single {
			p.single[i] = true
		}
		single := runProgram(p, ModeIncremental)
		if i, ok := bitEqual(batched.finishAt, single.finishAt); !ok {
			t.Fatalf("seed %d: batched vs single completion diverges at flow %d: %v vs %v",
				seed, i, batched.finishAt[i], single.finishAt[i])
		}
		if i, ok := bitEqual(batched.carried, single.carried); !ok {
			t.Fatalf("seed %d: batched vs single carried diverges at link %d: %v vs %v",
				seed, i, batched.carried[i], single.carried[i])
		}
	}
}
