package fabric

import (
	"runtime/debug"
	"testing"
)

// allocsRetry measures fn's steady-state allocations, retrying while
// nonzero: AllocsPerRun counts process-global mallocs, so a stray
// allocation from another test's winding-down goroutine can pollute
// one measurement. A real per-op leak (>= 1 alloc every run) fails
// every attempt deterministically.
func allocsRetry(runs int, fn func()) float64 {
	var n float64
	for attempt := 0; attempt < 3; attempt++ {
		n = testing.AllocsPerRun(runs, fn)
		if n == 0 {
			return 0
		}
	}
	return n
}

// gateNet builds a small fat-tree under the given mode, admits one
// sparse All-to-All of effectively infinite flows, and steps the
// engine until every flow is active and the initial settle has run.
// The returned trigger is one flow's path — the exact trigger shape a
// completion settle sees.
func gateNet(t *testing.T, mode AllocMode) (*benchTopo, []*Link) {
	t.Helper()
	topo := newBenchTopo(8, 4, mode)
	specs := topo.sparseA2ASpecs(0, 4, 1e18)
	flows := topo.net.StartFlows(specs)
	for topo.net.nActive < len(flows) || topo.net.settlePending {
		if !topo.eng.Step() {
			t.Fatal("engine drained before the admission settled")
		}
	}
	return topo, flows[0].path
}

// TestSettleSteadyStateZeroAlloc is the hierarchical allocator's
// allocation-regression gate: a warm settle — scope resolution,
// progressive filling, freeze-profile caps, scope memo, bottleneck
// cache — must perform zero heap allocations in every mode. All fill
// scratch (cap arrays, source buckets, share heap, domain lists, memo
// values) lives on the Network and grows once; this test pins that the
// warm path never falls off it (allocation count, not bytes, so a
// single escaped local fails it).
//
// The settle core is invoked directly, with the scratch restore the
// real settle performs, because a full engine-driven flow lifecycle
// legitimately allocates (Flow objects, event scheduling) — the gated
// invariant is the per-settle compute path, the term that multiplies
// with machine count.
//
// GC is disabled for the measurement window because a cycle mid-run
// would make the runtime's own bookkeeping show up in the count.
func TestSettleSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under the race runtime")
	}
	modes := []struct {
		name string
		mode AllocMode
	}{
		{"incremental", ModeIncremental},
		{"hierarchical", ModeHierarchical},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			topo, trig := gateNet(t, m.mode)
			net := topo.net
			settleOnce := func() {
				var scopeF []*Flow
				var scopeL []*Link
				if m.mode == ModeHierarchical {
					scopeF, scopeL = net.settleHier(trig)
				} else {
					scopeF, scopeL = net.scopeComponent(trig)
					net.resetFill(scopeF, scopeL)
					net.fillAdaptive(scopeF, scopeL)
				}
				net.scopeFlows = scopeF[:0]
				net.scopeLinks = scopeL[:0]
			}
			settleOnce() // warm scope memo and fill scratch
			settleOnce() // grow every reused slice to capacity
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			if n := allocsRetry(50, settleOnce); n != 0 {
				t.Fatalf("%s settle: %v allocs/op in steady state, want 0", m.name, n)
			}
		})
	}
}
