// Rate allocation. A "settle" resolves every arrival and completion
// that occurred at one virtual instant with a single progressive-filling
// pass and re-anchors only what actually changed.
//
// Bit-identity invariants (enforced by differential_test.go):
//
//  1. Component restriction is exact, not approximate. Progressive
//     filling touches a link's residual/nActive only through flows that
//     cross it, so the fill restricted to the connected component of
//     the perturbed links performs the identical float operations the
//     full fill performs on that component; flows outside it would
//     recompute to bitwise-equal rates, which re-anchoring then skips.
//
//  2. Bottleneck selection order within a component matches the naive
//     scan. The naive scan picks the first link (in flow-ord × path
//     order) achieving the minimum share, i.e. the lexicographic
//     minimum of (share, link index). The share-keyed heap uses exactly
//     that key, with stale entries skipped via allocVer. Selection
//     order *across* components never affects any computed value.
//
//  3. Accounting is anchored. A flow's remaining bytes and a link's
//     carried/busy integrals are closed-form between rate changes; the
//     anchors move only when a rate (or a link's rate sum) changes
//     bitwise. Both allocator modes therefore move anchors at identical
//     instants with identical values, making lazy and eager evaluation
//     indistinguishable.
package fabric

import (
	"fmt"
	"math"
	"slices"
)

// settle recomputes max-min rates for the scope perturbed by the
// arrivals/completions batched at the current instant, re-anchors what
// changed, reschedules the completion event, and fires the completion
// callbacks of flows retired at this instant.
func (n *Network) settle() {
	n.settlePending = false
	now := n.eng.Now()
	finished := n.pendingDone
	n.pendingDone = nil
	trig := n.trigLinks
	n.trigLinks = nil

	var scopeF []*Flow
	var scopeL []*Link
	switch n.mode {
	case ModeOracle:
		scopeF, scopeL = n.scopeOracle(trig)
		n.resetFill(scopeF, scopeL)
		fillOracle(scopeF)
	case ModeHierarchical:
		scopeF, scopeL = n.settleHier(trig)
	default:
		scopeF, scopeL = n.scopeComponent(trig)
		n.resetFill(scopeF, scopeL)
		n.fillAdaptive(scopeF, scopeL)
	}

	// Re-anchor exactly the flows whose rate changed bitwise. Using the
	// old goodput for the catch-up keeps the arithmetic identical to an
	// eager per-event integration at the same instants.
	for _, f := range scopeF {
		if f.newRate == f.rate {
			continue
		}
		if n.mode == ModeHierarchical {
			n.profUpdate(f)
		}
		rem := f.anchorRem - f.goodput*(now-f.anchorAt)
		if rem < 0 {
			rem = 0
		}
		f.anchorRem = rem
		f.anchorAt = now
		f.rate = f.newRate
		f.goodput = f.newRate * f.eff
		if f.goodput <= 0 {
			// Progressive filling always grants a positive share on
			// positive-capacity links; reaching here means the fill
			// terminated early and the flow would never complete.
			panic(fmt.Sprintf("fabric: flow %q settled with zero goodput", f.name))
		}
		f.finishAt = now + rem/f.goodput
		if f.heapIdx < 0 {
			n.pushCompletion(f)
		} else {
			n.fixCompletion(f)
		}
	}

	// Recompute the rate sums of scope links; sync the carried/busy
	// integrals only where a sum changed bitwise, so the integration
	// points coincide across alloc modes.
	for _, l := range scopeL {
		var sr, sg float64
		for _, ref := range l.flows {
			sr += ref.f.rate
			sg += ref.f.goodput
		}
		if sr != l.sumRate || sg != l.sumGoodput {
			dt := now - l.lastSync
			l.carried += l.sumGoodput * dt
			l.busyInt += l.sumRate * dt
			l.lastSync = now
			l.sumRate = sr
			l.sumGoodput = sg
		}
	}

	n.scopeFlows = scopeF[:0]
	n.scopeLinks = scopeL[:0]

	n.rescheduleCompletion()

	for _, f := range finished {
		n.finish(f)
	}
}

// scopeOracle is the reference scope: every active flow and every link
// they (or the retiring flows) cross.
func (n *Network) scopeOracle(trig []*Link) ([]*Flow, []*Link) {
	n.compGen++
	gen := n.compGen
	scopeF := n.scopeFlows[:0]
	scopeL := n.scopeLinks[:0]
	n.compact()
	for _, f := range n.active {
		f.compGen = gen
		scopeF = append(scopeF, f)
		for _, l := range f.path {
			if l.compGen != gen {
				l.compGen = gen
				scopeL = append(scopeL, l)
			}
		}
	}
	for _, l := range trig {
		if l.compGen != gen {
			l.compGen = gen
			scopeL = append(scopeL, l)
		}
	}
	return scopeF, scopeL
}

// scopeComponent closes the connected component of the trigger links:
// flows are the hyperedges joining links, so a BFS over link→flows→links
// closes the scope. The returned flows are in activation (ord) order.
func (n *Network) scopeComponent(trig []*Link) ([]*Flow, []*Link) {
	n.compGen++
	gen := n.compGen
	scopeF := n.scopeFlows[:0]
	scopeL := n.scopeLinks[:0]
	queue := n.bfsQueue[:0]
	for _, l := range trig {
		if l.compGen != gen {
			l.compGen = gen
			scopeL = append(scopeL, l)
			queue = append(queue, l)
		}
	}
	for len(queue) > 0 {
		l := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ref := range l.flows {
			f := ref.f
			if f.compGen == gen {
				continue
			}
			f.compGen = gen
			scopeF = append(scopeF, f)
			for _, pl := range f.path {
				if pl.compGen != gen {
					pl.compGen = gen
					scopeL = append(scopeL, pl)
					queue = append(queue, pl)
				}
			}
		}
	}
	n.bfsQueue = queue[:0]
	scopeF = n.orderScope(scopeF, gen)
	if n.nDead > 64 && n.nDead > n.nActive {
		n.compact()
	}
	n.scopeFlows = scopeF // keep the (possibly regrown) backing array
	return scopeF, scopeL
}

// orderScope puts a discovered scope-flow set into activation order.
// The naive scan visits flows in activation order; restricting it to a
// scope means iterating the scope's flows in that same (sub)order. When
// the scope covers most of the active population, re-collecting from
// the ord-ordered active list is cheaper than sorting the discovery
// order. (slices.SortFunc, unlike sort.Slice, boxes nothing: the
// comparison stays on the stack and the steady-state settle path stays
// allocation-free.)
func (n *Network) orderScope(scopeF []*Flow, gen uint64) []*Flow {
	if 4*len(scopeF) >= n.nActive+n.nDead {
		scopeF = scopeF[:0]
		for _, f := range n.active {
			if f.compGen == gen {
				scopeF = append(scopeF, f)
			}
		}
	} else {
		slices.SortFunc(scopeF, func(a, b *Flow) int {
			if a.ord < b.ord {
				return -1
			}
			if a.ord > b.ord {
				return 1
			}
			return 0
		})
	}
	return scopeF
}

// resetFill resets link fill state for a new waterfill. Bottleneck
// ties are broken by the links' creation index — a key that is stable
// across settles, which is what lets the hierarchical mode replay an
// external link's freeze in exactly the global tie order (see hier.go).
func (n *Network) resetFill(scopeF []*Flow, scopeL []*Link) {
	for _, l := range scopeL {
		l.nActive = 0
		l.residual = l.capacity
		l.allocVer++
		l.pushVer = l.allocVer - 1 // not yet pushed this fill
		l.hierSel = false
		l.newLevel = math.Inf(1)
	}
	for _, f := range scopeF {
		f.frozen = false
		f.newRate = 0
		for _, l := range f.path {
			l.nActive++
		}
	}
}

// fillAdaptive picks the incremental fill implementation. Dense
// components (flows outnumber links) make the lazy heap churn one entry
// per (frozen flow, path link); a scoped scan has no such churn and
// costs O(rounds·links). Sparse, link-heavy components are where the
// heap's O(log) selection wins. Either choice computes bit-identical
// rates.
func (n *Network) fillAdaptive(scopeF []*Flow, scopeL []*Link) {
	useScan := true
	switch n.fill {
	case FillAdaptive:
		useScan = 3*len(scopeF) >= len(scopeL)
	case FillHeap:
		useScan = false
	}
	if useScan {
		fillScan(scopeF, scopeL)
	} else {
		n.fillIncremental(scopeF)
	}
}

// fillOracle is the original naive progressive filling: rescan every
// flow's path for the minimum fair share, freeze the crossing flows,
// repeat. Kept verbatim as the reference oracle.
func fillOracle(scopeF []*Flow) {
	unfrozen := len(scopeF)
	for unfrozen > 0 {
		share := math.Inf(1)
		var bottleneck *Link
		for _, f := range scopeF {
			for _, l := range f.path {
				if l.nActive == 0 {
					continue
				}
				s := l.residual / float64(l.nActive)
				if s < share || (s == share && (bottleneck == nil || l.index < bottleneck.index)) {
					share = s
					bottleneck = l
				}
			}
		}
		if bottleneck == nil {
			break
		}
		for _, f := range scopeF {
			if f.frozen {
				continue
			}
			crosses := false
			for _, l := range f.path {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.frozen = true
			unfrozen--
			f.newRate = share
			for _, l := range f.path {
				l.residual -= share
				if l.residual < 0 {
					l.residual = 0
				}
				l.nActive--
			}
		}
	}
}

// fillScan is progressive filling over the component only: each round
// picks the lexicographic (share, link index) minimum across the scope
// links — the same tie-break the oracle's rescan implements — and
// freezes the flows crossing it. Freezing via the link's flow list
// instead of a scopeF rescan is value-identical: every frozen flow
// gets the same share, and the residual decrements it applies commute
// bitwise (same subtrahend, integer nActive).
func fillScan(scopeF []*Flow, scopeL []*Link) {
	unfrozen := len(scopeF)
	for unfrozen > 0 {
		share := math.Inf(1)
		var bottleneck *Link
		for _, l := range scopeL {
			if l.nActive == 0 {
				continue
			}
			s := l.residual / float64(l.nActive)
			if s < share || (s == share && (bottleneck == nil || l.index < bottleneck.index)) {
				share, bottleneck = s, l
			}
		}
		if bottleneck == nil {
			break
		}
		for _, ref := range bottleneck.flows {
			f := ref.f
			if f.frozen {
				continue
			}
			f.frozen = true
			unfrozen--
			f.newRate = share
			for _, pl := range f.path {
				pl.residual -= share
				if pl.residual < 0 {
					pl.residual = 0
				}
				pl.nActive--
			}
		}
	}
}

// fillIncremental selects bottlenecks through a (share, link index)-
// keyed min-heap with lazy invalidation: every time a link's
// residual/nActive change it gets a fresh entry (allocVer fences the
// stale ones), so the popped valid minimum is exactly the link the
// naive rescan would pick.
// Each link can be a valid bottleneck at most once per fill (its
// nActive drops to zero), so the fill costs O(flows·pathlen·log links)
// instead of O(rounds·flows·pathlen).
func (n *Network) fillIncremental(scopeF []*Flow) {
	h := n.lheap[:0]
	for _, f := range scopeF {
		for _, l := range f.path {
			if l.pushVer != l.allocVer {
				h = lheapPush(h, linkEntry{share: l.residual / float64(l.nActive), rank: l.index, ver: l.allocVer, link: l})
				l.pushVer = l.allocVer
			}
		}
	}
	unfrozen := len(scopeF)
	for unfrozen > 0 && len(h) > 0 {
		e := h[0]
		h = lheapPop(h)
		l := e.link
		if e.ver != l.allocVer || l.nActive == 0 {
			continue
		}
		share := e.share
		for _, ref := range l.flows {
			f := ref.f
			if f.frozen {
				continue
			}
			f.frozen = true
			unfrozen--
			f.newRate = share
			for _, pl := range f.path {
				pl.residual -= share
				if pl.residual < 0 {
					pl.residual = 0
				}
				pl.nActive--
				pl.allocVer++
			}
		}
		for _, ref := range l.flows {
			for _, pl := range ref.f.path {
				if pl.nActive > 0 && pl.pushVer != pl.allocVer {
					h = lheapPush(h, linkEntry{share: pl.residual / float64(pl.nActive), rank: pl.index, ver: pl.allocVer, link: pl})
					pl.pushVer = pl.allocVer
				}
			}
		}
	}
	n.lheap = h[:0]
}

// rescheduleCompletion keeps exactly one engine event pending, at the
// completion heap's minimum predicted finish time.
func (n *Network) rescheduleCompletion() {
	if len(n.fheap) == 0 {
		if n.nextEv != nil {
			n.eng.Cancel(n.nextEv)
			n.nextEv = nil
		}
		if n.nActive > 0 {
			// Active flows with zero rate can only happen if filling
			// terminated without freezing everything, which progressive
			// filling never does. Guard against silent deadlock anyway.
			panic("fabric: active flows but no completion schedulable")
		}
		return
	}
	top := n.fheap[0]
	if n.nextEv != nil && n.nextAt == top.finishAt {
		return
	}
	if n.nextEv != nil {
		n.eng.Cancel(n.nextEv)
	}
	n.nextAt = top.finishAt
	n.nextEv = n.eng.At(top.finishAt, n.onCompletionEvent)
}

// --- completion min-heap, keyed (finishAt, ord) ---------------------------

func flowLess(a, b *Flow) bool {
	if a.finishAt != b.finishAt {
		return a.finishAt < b.finishAt
	}
	return a.ord < b.ord
}

func (n *Network) pushCompletion(f *Flow) {
	f.heapIdx = len(n.fheap)
	n.fheap = append(n.fheap, f)
	n.siftUp(f.heapIdx)
}

func (n *Network) fixCompletion(f *Flow) {
	i := f.heapIdx
	if !n.siftDown(i) {
		n.siftUp(i)
	}
}

func (n *Network) popCompletion() *Flow {
	f := n.fheap[0]
	last := len(n.fheap) - 1
	n.fheap[0] = n.fheap[last]
	n.fheap[0].heapIdx = 0
	n.fheap[last] = nil
	n.fheap = n.fheap[:last]
	if last > 0 {
		n.siftDown(0)
	}
	f.heapIdx = -1
	return f
}

func (n *Network) siftUp(i int) {
	h := n.fheap
	for i > 0 {
		parent := (i - 1) / 2
		if !flowLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].heapIdx = i
		h[parent].heapIdx = parent
		i = parent
	}
}

// siftDown restores heap order below i; reports whether i moved.
func (n *Network) siftDown(i int) bool {
	h := n.fheap
	start := i
	for {
		kid := 2*i + 1
		if kid >= len(h) {
			break
		}
		if r := kid + 1; r < len(h) && flowLess(h[r], h[kid]) {
			kid = r
		}
		if !flowLess(h[kid], h[i]) {
			break
		}
		h[i], h[kid] = h[kid], h[i]
		h[i].heapIdx = i
		h[kid].heapIdx = kid
		i = kid
	}
	return i > start
}

// --- link min-heap, keyed (share, link index), lazy invalidation ----------

type linkEntry struct {
	share float64
	rank  int
	ver   uint32
	link  *Link
}

func lentryLess(a, b linkEntry) bool {
	if a.share != b.share {
		return a.share < b.share
	}
	return a.rank < b.rank
}

func lheapPush(h []linkEntry, e linkEntry) []linkEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !lentryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func lheapPop(h []linkEntry) []linkEntry {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= len(h) {
			break
		}
		if r := kid + 1; r < len(h) && lentryLess(h[r], h[kid]) {
			kid = r
		}
		if !lentryLess(h[kid], h[i]) {
			break
		}
		h[i], h[kid] = h[kid], h[i]
		i = kid
	}
	return h
}
